// Ablation: cost of compound synthesis steps (paper, section III.A).
//
// A compound retiming + logic-minimisation step is verified by a single
// transitivity rule whose cost is constant (pointer operations on shared
// structure), so the compound step costs the sum of its parts.  We measure
// the two steps and the composition separately; the composition row should
// be negligible no matter the circuit size.

#include <chrono>
#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/compound.h"
#include "hash/logic_opt.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  eda::thy::retiming_thm();
  std::printf("Ablation — compound step cost = sum of parts\n");
  std::printf("(rules = kernel theorem constructions, the paper's cost "
              "unit)\n\n");
  std::printf("%6s %12s %9s %12s %9s %12s %9s\n", "n", "retime (s)",
              "rules", "minimise (s)", "rules", "compose (s)", "rules");

  for (int n : {2, 4, 8, 16, 24, 32}) {
    auto fig2 = eda::bench_gen::make_fig2(n);

    std::uint64_t c0 = eda::kernel::Thm::theorems_constructed();
    auto t0 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult rt =
        eda::hash::formal_retime(fig2.rtl, fig2.good_cut);
    double retime_sec = seconds_since(t0);
    std::uint64_t c1 = eda::kernel::Thm::theorems_constructed();

    t0 = std::chrono::steady_clock::now();
    eda::hash::FormalOptResult op = eda::hash::formal_logic_opt(rt.retimed);
    double opt_sec = seconds_since(t0);
    std::uint64_t c2 = eda::kernel::Thm::theorems_constructed();

    t0 = std::chrono::steady_clock::now();
    eda::kernel::Thm compound =
        eda::hash::compose_steps(rt.theorem, op.theorem);
    double compose_sec = seconds_since(t0);
    std::uint64_t c3 = eda::kernel::Thm::theorems_constructed();
    (void)compound;

    std::printf("%6d %12.4f %9llu %12.4f %9llu %12.6f %9llu\n", n,
                retime_sec, static_cast<unsigned long long>(c1 - c0),
                opt_sec, static_cast<unsigned long long>(c2 - c1),
                compose_sec, static_cast<unsigned long long>(c3 - c2));
  }
  std::printf("\nthe compose column is constant in both time and rule "
              "applications,\nindependent of circuit size — the "
              "combinability argument, quantified.\n");
  return 0;
}
