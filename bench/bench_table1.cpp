// Table I of the paper: the scalable example circuit from figure 2 at
// increasing bitwidths n.  For each n the retiming is performed *formally*
// with HASH (time reported in the HASH column) and verified post-hoc with
// the SIS-style explicit FSM comparison and the SMV-style symbolic model
// checker.  A "-" marks a run that exceeded its resource budget, matching
// the dashes in the paper.
//
// Expected shape (paper, section V): SIS and SMV degrade quickly as the
// flip-flop count grows; HASH has a higher constant cost but grows only
// moderately with n because the RT-level term is width-independent except
// for the initial-value evaluation.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "hash/retime_step.h"
#include "kernel/parallel.h"
#include "theories/retiming_thm.h"
#include "verify/sis_fsm.h"
#include "verify/smv_mc.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string cell(bool completed, double sec) {
  if (!completed) return "      -";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%7.3f", sec);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double timeout = 5.0;
  int max_n = 40;
  // Default to serial: the per-engine wall-clock cells (and their timeout
  // verdicts) are the table's output, and concurrent rows competing for
  // cores would distort them.  `--jobs N` opts into the fan-out when
  // throughput matters more than per-cell fidelity.
  unsigned jobs = 1;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--timeout" && a + 1 < argc) timeout = std::stod(argv[++a]);
    if (arg == "--max-n" && a + 1 < argc) max_n = std::stoi(argv[++a]);
    if (arg == "--jobs" && a + 1 < argc) {
      jobs = static_cast<unsigned>(std::stoi(argv[++a]));
    }
  }
  // parallel_map's caller participates, so a pool of jobs-1 workers gives
  // exactly `jobs` concurrent streams (same accounting as bench_parallel).
  if (jobs > 1) eda::kernel::set_global_thread_count(jobs - 1);

  // Prove the universal theorem once up front (the paper's "once and for
  // all"); its cost is excluded from the per-circuit HASH column exactly
  // as the paper excludes it.
  auto t0 = std::chrono::steady_clock::now();
  eda::thy::retiming_thm();
  double thm_sec = seconds_since(t0);

  std::printf("Table I — example from figure 2 (scalable bitwidth n)\n");
  std::printf("universal retiming theorem proved once in %.3f s\n\n", thm_sec);
  std::printf("%4s %9s %7s | %7s %7s %7s\n", "n", "flipflop", "gates",
              "SIS", "SMV", "HASH");

  // Each row is an independent proof obligation; fan the whole table out
  // across the pool (HASH synthesis replays kernel inference concurrently
  // — the sharded interner is what makes this safe) and print in order at
  // the end.  Wall-clock timeouts stay meaningful per engine because each
  // engine run measures its own elapsed time.
  struct Row {
    int n = 0;
    int ff = 0, gates = 0;
    double hash_sec = 0.0;
    eda::verify::VerifyResult sis, smv;
  };
  std::vector<int> widths;
  for (int n = 1; n <= max_n; n = n < 8 ? n + 1 : n + (n < 16 ? 2 : 8)) {
    widths.push_back(n);
  }
  auto compute_row = [&](int n) {
    Row row;
    row.n = n;
    auto fig2 = eda::bench_gen::make_fig2(n);
    eda::circuit::GateNetlist ga = eda::circuit::bit_blast(fig2.rtl);
    row.ff = ga.ff_count();
    row.gates = ga.gate_count();

    // HASH: the formal synthesis step itself.
    auto t1 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult res =
        eda::hash::formal_retime(fig2.rtl, fig2.good_cut);
    row.hash_sec = seconds_since(t1);

    eda::circuit::GateNetlist gb = eda::circuit::bit_blast(res.retimed);
    eda::verify::VerifyOptions opts;
    opts.timeout_sec = timeout;
    row.sis = eda::verify::sis_fsm_check(ga, gb, opts);
    row.smv = eda::verify::smv_check(ga, gb, opts);
    return row;
  };
  std::vector<Row> rows;
  if (jobs <= 1) {
    for (int n : widths) rows.push_back(compute_row(n));
  } else {
    rows = eda::kernel::parallel_map(widths, compute_row);
  }
  for (const Row& row : rows) {
    std::printf("%4d %9d %7d | %s %s %s\n", row.n, row.ff, row.gates,
                cell(row.sis.completed, row.sis.seconds).c_str(),
                cell(row.smv.completed, row.smv.seconds).c_str(),
                cell(true, row.hash_sec).c_str());
  }
  return 0;
}
