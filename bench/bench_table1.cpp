// Table I of the paper: the scalable example circuit from figure 2 at
// increasing bitwidths n.  For each n the retiming is performed *formally*
// with HASH (time reported in the HASH column) and verified post-hoc with
// the SIS-style explicit FSM comparison and the SMV-style symbolic model
// checker.  A "-" marks a run that exceeded its resource budget, matching
// the dashes in the paper.
//
// Expected shape (paper, section V): SIS and SMV degrade quickly as the
// flip-flop count grows; HASH has a higher constant cost but grows only
// moderately with n because the RT-level term is width-independent except
// for the initial-value evaluation.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"
#include "verify/sis_fsm.h"
#include "verify/smv_mc.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string cell(bool completed, double sec) {
  if (!completed) return "      -";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%7.3f", sec);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double timeout = 5.0;
  int max_n = 40;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--timeout" && a + 1 < argc) timeout = std::stod(argv[++a]);
    if (arg == "--max-n" && a + 1 < argc) max_n = std::stoi(argv[++a]);
  }

  // Prove the universal theorem once up front (the paper's "once and for
  // all"); its cost is excluded from the per-circuit HASH column exactly
  // as the paper excludes it.
  auto t0 = std::chrono::steady_clock::now();
  eda::thy::retiming_thm();
  double thm_sec = seconds_since(t0);

  std::printf("Table I — example from figure 2 (scalable bitwidth n)\n");
  std::printf("universal retiming theorem proved once in %.3f s\n\n", thm_sec);
  std::printf("%4s %9s %7s | %7s %7s %7s\n", "n", "flipflop", "gates",
              "SIS", "SMV", "HASH");

  for (int n = 1; n <= max_n; n = n < 8 ? n + 1 : n + (n < 16 ? 2 : 8)) {
    auto fig2 = eda::bench_gen::make_fig2(n);
    eda::circuit::GateNetlist ga = eda::circuit::bit_blast(fig2.rtl);

    // HASH: the formal synthesis step itself.
    t0 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult res =
        eda::hash::formal_retime(fig2.rtl, fig2.good_cut);
    double hash_sec = seconds_since(t0);

    eda::circuit::GateNetlist gb = eda::circuit::bit_blast(res.retimed);
    eda::verify::VerifyOptions opts;
    opts.timeout_sec = timeout;

    eda::verify::VerifyResult sis = eda::verify::sis_fsm_check(ga, gb, opts);
    eda::verify::VerifyResult smv = eda::verify::smv_check(ga, gb, opts);

    std::printf("%4d %9d %7d | %s %s %s\n", n, ga.ff_count(),
                ga.gate_count(), cell(sis.completed, sis.seconds).c_str(),
                cell(smv.completed, smv.seconds).c_str(),
                cell(true, hash_sec).c_str());
  }
  return 0;
}
