// Table II of the paper: the IWLS'91 sequential benchmark set (synthetic
// stand-ins, see DESIGN.md) — columns Eijk, Eijk+, SIS and HASH.
//
// Expected shape: the multiplier family blows the traversal engines up as
// the bitwidth grows (the paper reports none of the model checkers could
// handle the 32-bit fractional multiplier), Eijk+ beats Eijk where the
// retimed registers are functions of the originals, and HASH scales
// through the whole set.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_gen/iwls.h"
#include "circuit/bitblast.h"
#include "hash/retime_step.h"
#include "kernel/parallel.h"
#include "theories/retiming_thm.h"
#include "verify/eijk.h"
#include "verify/parallel_verify.h"
#include "verify/sis_fsm.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string cell(bool completed, double sec) {
  if (!completed) return "      -";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%7.3f", sec);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double timeout = 5.0;
  // Serial by default so the per-engine cells stay undistorted; `--jobs N`
  // opts into the fan-out (see bench_table1.cpp).
  unsigned jobs = 1;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--timeout" && a + 1 < argc) timeout = std::stod(argv[++a]);
    if (arg == "--jobs" && a + 1 < argc) {
      jobs = static_cast<unsigned>(std::stoi(argv[++a]));
    }
  }
  // Caller participates in parallel_map: jobs-1 workers + caller = jobs
  // concurrent streams (same accounting as bench_parallel).
  if (jobs > 1) eda::kernel::set_global_thread_count(jobs - 1);

  auto t0 = std::chrono::steady_clock::now();
  eda::thy::retiming_thm();
  std::printf(
      "Table II — IWLS'91-style benchmarks (synthetic equivalents)\n");
  std::printf("universal retiming theorem proved once in %.3f s\n\n",
              seconds_since(t0));
  std::printf("%-8s %9s %7s | %7s %7s %7s %7s\n", "name", "flipflop",
              "gates", "Eijk", "Eijk+", "SIS", "HASH");

  // Rows are independent obligations and, within a row, the three model
  // checkers are independent of each other once the HASH step produced the
  // retimed netlist — fan everything out through the pool and print in
  // order.  The HASH steps replay kernel inference concurrently across
  // rows (sharded interner); each checker owns its BddManager / state
  // table (confinement, see bdd/bdd.h).
  struct Row {
    std::string name;
    int ff = 0, gates = 0;
    double hash_sec = 0.0;
    eda::verify::VerifyResult e1, e2, sis;
  };
  const auto benches = eda::bench_gen::iwls_benchmarks();
  auto compute_row = [&](const eda::bench_gen::BenchCircuit& bench) {
    Row row;
    row.name = bench.name;
    eda::circuit::GateNetlist ga = eda::circuit::bit_blast(bench.rtl);
    row.ff = ga.ff_count();
    row.gates = ga.gate_count();

    auto t1 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult res =
        eda::hash::formal_retime(bench.rtl, bench.cut);
    row.hash_sec = seconds_since(t1);

    eda::circuit::GateNetlist gb = eda::circuit::bit_blast(res.retimed);
    eda::verify::VerifyOptions opts;
    opts.timeout_sec = timeout;

    std::vector<eda::verify::CheckJob> checks{
        {&ga, &gb, eda::verify::Engine::Eijk, opts},
        {&ga, &gb, eda::verify::Engine::EijkPlus, opts},
        {&ga, &gb, eda::verify::Engine::SisFsm, opts}};
    std::vector<eda::verify::VerifyResult> out;
    if (jobs <= 1) {
      for (const auto& job : checks) out.push_back(eda::verify::run_check(job));
    } else {
      out = eda::verify::check_parallel(checks);
    }
    row.e1 = out[0];
    row.e2 = out[1];
    row.sis = out[2];
    return row;
  };
  std::vector<Row> rows;
  if (jobs <= 1) {
    for (const auto& bench : benches) rows.push_back(compute_row(bench));
  } else {
    rows = eda::kernel::parallel_map(benches, compute_row);
  }
  for (const Row& row : rows) {
    std::printf("%-8s %9d %7d | %s %s %s %s\n", row.name.c_str(), row.ff,
                row.gates, cell(row.e1.completed, row.e1.seconds).c_str(),
                cell(row.e2.completed, row.e2.seconds).c_str(),
                cell(row.sis.completed, row.sis.seconds).c_str(),
                cell(true, row.hash_sec).c_str());
  }
  return 0;
}
