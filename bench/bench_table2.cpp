// Table II of the paper: the IWLS'91 sequential benchmark set (synthetic
// stand-ins, see DESIGN.md) — columns Eijk, Eijk+, SIS and HASH.
//
// Expected shape: the multiplier family blows the traversal engines up as
// the bitwidth grows (the paper reports none of the model checkers could
// handle the 32-bit fractional multiplier), Eijk+ beats Eijk where the
// retimed registers are functions of the originals, and HASH scales
// through the whole set.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_gen/iwls.h"
#include "circuit/bitblast.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"
#include "verify/eijk.h"
#include "verify/sis_fsm.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string cell(bool completed, double sec) {
  if (!completed) return "      -";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%7.3f", sec);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double timeout = 5.0;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--timeout" && a + 1 < argc) timeout = std::stod(argv[++a]);
  }

  auto t0 = std::chrono::steady_clock::now();
  eda::thy::retiming_thm();
  std::printf(
      "Table II — IWLS'91-style benchmarks (synthetic equivalents)\n");
  std::printf("universal retiming theorem proved once in %.3f s\n\n",
              seconds_since(t0));
  std::printf("%-8s %9s %7s | %7s %7s %7s %7s\n", "name", "flipflop",
              "gates", "Eijk", "Eijk+", "SIS", "HASH");

  for (const auto& bench : eda::bench_gen::iwls_benchmarks()) {
    eda::circuit::GateNetlist ga = eda::circuit::bit_blast(bench.rtl);

    t0 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult res =
        eda::hash::formal_retime(bench.rtl, bench.cut);
    double hash_sec = seconds_since(t0);

    eda::circuit::GateNetlist gb = eda::circuit::bit_blast(res.retimed);
    eda::verify::VerifyOptions opts;
    opts.timeout_sec = timeout;

    eda::verify::VerifyResult e1 =
        eda::verify::eijk_check(ga, gb, opts, false);
    eda::verify::VerifyResult e2 =
        eda::verify::eijk_check(ga, gb, opts, true);
    eda::verify::VerifyResult sis = eda::verify::sis_fsm_check(ga, gb, opts);

    std::printf("%-8s %9d %7d | %s %s %s %s\n", bench.name.c_str(),
                ga.ff_count(), ga.gate_count(),
                cell(e1.completed, e1.seconds).c_str(),
                cell(e2.completed, e2.seconds).c_str(),
                cell(sis.completed, sis.seconds).c_str(),
                cell(true, hash_sec).c_str());
  }
  return 0;
}
