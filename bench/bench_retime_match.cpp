// Ablation: the retiming-specific verifier (paper ref [8], Huang/Cheng/
// Chen) against the general-purpose checkers and against HASH.
//
// Two messages from the related-work discussion are reproduced here:
//   1. On *pure retiming*, structural matching is very fast — it beats the
//      model checkers by orders of magnitude and scales like HASH.
//   2. On a *compound* retime+resynthesis step, the matcher gives up and
//      one must fall back to general verification, while HASH composes the
//      two steps' theorems for the cost of a transitivity application.

#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "hash/compound.h"
#include "hash/logic_opt.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"
#include "verify/retime_match.h"
#include "verify/smv_mc.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string cell(bool ok, double sec) {
  if (!ok) return "      -";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%7.3f", sec);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double timeout = 5.0;
  int max_n = 32;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--timeout" && a + 1 < argc) timeout = std::stod(argv[++a]);
    if (arg == "--max-n" && a + 1 < argc) max_n = std::stoi(argv[++a]);
  }
  eda::thy::retiming_thm();

  std::printf("Ablation — retiming-specific matching (ref [8]) vs SMV vs "
              "HASH (fig. 2)\n\n");
  std::printf("%4s | %9s %9s %9s | %s\n", "n", "match", "SMV", "HASH",
              "compound step: match / HASH");

  for (int n = 1; n <= max_n; n *= 2) {
    auto fig2 = eda::bench_gen::make_fig2(n);

    // --- pure retiming -----------------------------------------------------
    eda::circuit::Rtl retimed =
        eda::hash::conventional_retime(fig2.rtl, fig2.good_cut);

    auto t0 = std::chrono::steady_clock::now();
    eda::verify::RetimeMatchResult m =
        eda::verify::verify_retiming(fig2.rtl, retimed);
    double match_s = seconds_since(t0);

    // Measure HASH before the model checker: an SMV blow-up leaves the
    // heap full of dead BDD nodes and contaminates whatever runs next.
    t0 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult hash_res =
        eda::hash::formal_retime(fig2.rtl, fig2.good_cut);
    double hash_s = seconds_since(t0);

    // --- compound retime + logic optimisation ------------------------------
    // Give the optimiser something to remove: a mux with a constant-true
    // select on the output, as resynthesis fodder.  The compound step is
    // then a genuine retime-then-minimise chain.
    eda::circuit::Rtl padded;
    {
      std::map<eda::circuit::SignalId, eda::circuit::SignalId> ctx;
      const eda::circuit::Rtl& src = fig2.rtl;
      for (std::size_t k = 0; k < src.nodes().size(); ++k) {
        auto s = static_cast<eda::circuit::SignalId>(k);
        const eda::circuit::Node& nd = src.nodes()[k];
        switch (nd.op) {
          case eda::circuit::Op::Input:
            ctx[s] = padded.add_input(nd.name, nd.width);
            break;
          case eda::circuit::Op::Reg:
            ctx[s] = padded.add_reg(nd.name, nd.width, nd.value);
            break;
          case eda::circuit::Op::Const:
            ctx[s] = nd.width == 0 ? padded.add_const_flag(nd.value != 0)
                                   : padded.add_const(nd.width, nd.value);
            break;
          default: {
            std::vector<eda::circuit::SignalId> ops;
            for (auto o : nd.operands) ops.push_back(ctx.at(o));
            ctx[s] = padded.add_op(nd.op, std::move(ops));
          }
        }
      }
      for (auto r : src.regs()) {
        padded.set_reg_next(ctx.at(r), ctx.at(src.node(r).next));
      }
      for (const auto& o : src.outputs()) {
        auto always = padded.add_const_flag(true);
        padded.add_output(o.name,
                          padded.add_op(eda::circuit::Op::Mux,
                                        {always, ctx.at(o.signal),
                                         ctx.at(o.signal)}));
      }
    }
    t0 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult rt2 =
        eda::hash::formal_retime(padded, fig2.good_cut);
    eda::hash::FormalOptResult opt = eda::hash::formal_logic_opt(rt2.retimed);
    eda::kernel::Thm compound =
        eda::hash::compose_steps(rt2.theorem, opt.theorem);
    double hash_compound_s = seconds_since(t0);
    (void)compound;

    eda::verify::RetimeMatchResult mc =
        eda::verify::verify_retiming(padded, opt.optimized);

    eda::verify::VerifyOptions opts;
    opts.timeout_sec = timeout;
    eda::circuit::GateNetlist ga = eda::circuit::bit_blast(fig2.rtl);
    eda::circuit::GateNetlist gb = eda::circuit::bit_blast(retimed);
    eda::verify::VerifyResult smv = eda::verify::smv_check(ga, gb, opts);

    std::printf("%4d | %s %s %s |  %s      %7.3f\n", n,
                cell(m.equivalent, match_s).c_str(),
                cell(smv.completed, smv.seconds).c_str(),
                cell(true, hash_s).c_str(),
                mc.equivalent ? "accepts (!)" : "gives up  ",
                hash_compound_s);
  }
  std::printf("\n'gives up' = the matcher cannot handle the compound step "
              "(combinability drawback);\nHASH composes the theorems by one "
              "transitivity application.\n");
  return 0;
}
