// Ablation: forward vs backward formal retiming cost.
//
// The paper singles out backward retiming as "more complex since one has
// to find the q's corresponding to some expression representing f(q)".
// We quantify that: sweep the bitwidth of the figure-2 circuit, run the
// forward step, then undo it with the backward step, and report both
// runtimes plus the share the initial-state solver takes.  The derivation
// machinery is identical; the entire gap is step 2 (solving f(q0) = q)
// and it stays moderate because the solver inverts the cone instead of
// searching.

#include <chrono>
#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/backward.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  eda::thy::retiming_thm();  // prove once, outside the measurement

  std::printf("Ablation — forward vs backward formal retiming (fig. 2)\n\n");
  std::printf("%6s %12s %12s %12s\n", "n", "forward(s)", "backward(s)",
              "solve(s)");

  for (int n : {2, 4, 8, 12, 16, 24, 32}) {
    auto fig2 = eda::bench_gen::make_fig2(n);

    auto t0 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult fwd =
        eda::hash::formal_retime(fig2.rtl, fig2.good_cut);
    double fwd_s = seconds_since(t0);

    eda::hash::RetimeMapping map =
        eda::hash::conventional_retime_mapped(fig2.rtl, fig2.good_cut);
    eda::hash::BackwardCut inv =
        eda::hash::inverse_of_forward_cut(map, fig2.good_cut);

    t0 = std::chrono::steady_clock::now();
    eda::hash::BackwardSplit split =
        eda::hash::compile_backward_split(fwd.retimed, inv);
    auto q0 = eda::hash::solve_initial_state(fwd.retimed, inv, split.chi);
    double solve_s = seconds_since(t0);
    (void)q0;

    t0 = std::chrono::steady_clock::now();
    eda::hash::FormalBackwardResult bwd =
        eda::hash::formal_backward_retime(fwd.retimed, inv);
    double bwd_s = seconds_since(t0);
    (void)bwd;

    std::printf("%6d %12.4f %12.4f %12.4f\n", n, fwd_s, bwd_s, solve_s);
  }
  return 0;
}
