// Microbenchmarks for the BDD substrate: ite throughput and the growth of
// adder/multiplier output functions — the raw ingredients of the
// model-checking blow-up documented in the paper's tables.

#include <benchmark/benchmark.h>

#include "bdd/bdd.h"
#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "verify/symbolic.h"

namespace b = eda::bdd;

static void BM_IteChain(benchmark::State& state) {
  int nv = static_cast<int>(state.range(0));
  for (auto _ : state) {
    b::BddManager m(nv);
    b::BddId f = m.true_bdd();
    for (int k = 0; k < nv; ++k) f = m.lxor(f, m.var(k));
    benchmark::DoNotOptimize(f);
  }
}
BENCHMARK(BM_IteChain)->Arg(16)->Arg(64)->Arg(256);

static void BM_BuildFig2Machine(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto fig2 = eda::bench_gen::make_fig2(n);
  eda::circuit::GateNetlist net = eda::circuit::bit_blast(fig2.rtl);
  for (auto _ : state) {
    b::BddManager m(static_cast<int>(net.inputs().size()) +
                    2 * net.ff_count());
    int ni = static_cast<int>(net.inputs().size());
    auto machine = eda::verify::build_machine(
        m, net, [](int j) { return j; },
        [&](int k) { return ni + 2 * k; },
        [&](int k) { return ni + 2 * k + 1; });
    benchmark::DoNotOptimize(machine.outputs.size());
  }
}
BENCHMARK(BM_BuildFig2Machine)->Arg(4)->Arg(8)->Arg(12);

static void BM_Exists(benchmark::State& state) {
  int nv = 24;
  b::BddManager m(nv);
  b::BddId f = m.true_bdd();
  for (int k = 0; k + 1 < nv; k += 2) {
    f = m.land(f, m.lor(m.var(k), m.var(k + 1)));
  }
  std::vector<int> evens;
  for (int k = 0; k < nv; k += 2) evens.push_back(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.exists(f, evens));
  }
}
BENCHMARK(BM_Exists);

BENCHMARK_MAIN();
