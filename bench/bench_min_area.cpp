// Ablation for the conventional heuristic layer: min-period vs min-area
// retiming (Leiserson–Saxe, the paper's reference [11]).
//
// The cut fed to the formal step comes from an arbitrary external
// heuristic; this bench shows why the *choice* of heuristic matters for
// quality (registers spent) while never affecting correctness: min-period
// labels often scatter extra registers, min-area reclaims them at the
// same clock period.

#include <chrono>
#include <cstdio>
#include <random>

#include "retime/graph.h"
#include "retime/leiserson_saxe.h"
#include "retime/min_area.h"

namespace {

eda::retime::RetimeGraph random_graph(int n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  eda::retime::RetimeGraph g;
  g.delay.assign(static_cast<std::size_t>(n + 1), 0);
  g.vertex_signal.assign(static_cast<std::size_t>(n + 1), -1);
  for (int v = 1; v <= n; ++v) {
    g.delay[static_cast<std::size_t>(v)] = 1 + static_cast<int>(rng() % 4);
  }
  for (int v = 0; v <= n; ++v) {
    g.edges.push_back(
        {v, (v + 1) % (n + 1), 1 + static_cast<int>(rng() % 2)});
  }
  for (int k = 0; k < n; ++k) {
    int u = static_cast<int>(rng() % (n + 1));
    int v = static_cast<int>(rng() % (n + 1));
    if (u != v) g.edges.push_back({u, v, static_cast<int>(rng() % 3)});
  }
  return g;
}

}  // namespace

int main() {
  using namespace eda::retime;
  std::printf("Ablation — min-period vs min-area retiming "
              "(Leiserson–Saxe, ref [11])\n\n");
  std::printf("%6s %6s | %8s %10s | %10s %10s | %10s\n", "|V|", "|E|",
              "period0", "period*", "regs(LS)", "regs(area)", "time(s)");

  for (int n : {6, 10, 16, 24, 40, 64}) {
    long long regs_mp_total = 0, regs_ma_total = 0;
    int period0 = 0, period_star = 0;
    std::size_t edges = 0;
    double sec = 0;
    int trials = 0;
    for (std::uint32_t seed = 1; seed <= 5; ++seed) {
      RetimeGraph g =
          random_graph(n, seed * 977 + static_cast<std::uint32_t>(n));
      RetimingResult mp;
      try {
        mp = min_period_retiming(g);
      } catch (const eda::circuit::RtlError&) {
        continue;
      }
      auto t0 = std::chrono::steady_clock::now();
      MinAreaResult ma = min_area_retiming(g, mp.period);
      sec += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - t0)
                 .count();
      regs_mp_total += total_registers(apply_retiming(g, mp.r));
      regs_ma_total += ma.register_count;
      period0 += clock_period(g);
      period_star += mp.period;
      edges += g.edges.size();
      ++trials;
    }
    if (trials == 0) continue;
    std::printf("%6d %6zu | %8d %10d | %10lld %10lld | %10.4f\n", n,
                edges / static_cast<std::size_t>(trials),
                period0 / trials, period_star / trials,
                regs_mp_total / trials, regs_ma_total / trials,
                sec / trials);
  }
  std::printf("\nSame achieved period, fewer registers: the formal step "
              "certifies whichever labels the heuristic picks.\n");
  return 0;
}
