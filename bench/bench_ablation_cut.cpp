// Ablation: HASH runtime vs the size of the moved sub-function f.
//
// The paper (section V) observes: "the time consumption depends on the
// size of the circuit but is quite independent from the cut.  Due to step
// 3 it becomes a little slower for large sized functions f."  We sweep the
// number of incrementer stages included in f on the deep pipeline variant
// of the figure-2 circuit and report the formal-step runtime.

#include <chrono>
#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"

int main() {
  eda::thy::retiming_thm();  // prove once, outside the measurement

  const int n_bits = 8;
  const int stages = 10;
  std::printf("Ablation — HASH runtime vs cut size |f| "
              "(fig. 2 deep pipeline, %d-bit, %d stages)\n\n",
              n_bits, stages);
  std::printf("%6s %10s %12s\n", "|f|", "chi", "HASH (s)");

  auto deep = eda::bench_gen::make_fig2_deep(n_bits, stages);
  for (std::size_t m = 1; m <= deep.inc_nodes.size(); ++m) {
    eda::hash::Cut cut;
    cut.f_nodes.assign(deep.inc_nodes.begin(),
                       deep.inc_nodes.begin() + static_cast<long>(m));
    auto t0 = std::chrono::steady_clock::now();
    eda::hash::FormalRetimeResult res =
        eda::hash::formal_retime(deep.rtl, cut);
    double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%6zu %10zu %12.4f\n", m, res.chi.size(), sec);
  }
  return 0;
}
