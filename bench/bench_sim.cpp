// Benchmark for the bit-parallel simulation pre-filter (sim/bitsim.h).
//
// Three legs, one seeded corpus (base seed from testlib stimulus_seed(),
// so EDA_SEED reproduces a run exactly):
//
//   raw        BitSimulator step throughput on one medium netlist —
//              input vectors per second across the 64 lanes;
//   refute     sim::refute over a mixed corpus of design pairs with known
//              ground truth: refutations/second and the pre-filter hit
//              rate (fraction of the NONEQUIV pairs the simulation settles
//              before any engine would run);
//   service    the acceptance experiment: the same corpus pushed through
//              VerifyService twice, with and without the pre-filter, on a
//              majority-NONEQUIV mix — the shape where the pre-filter pays,
//              since every refuted pair skips a full BDD traversal.
//
// Results go to BENCH_sim.json; the machine-independent ratios live in the
// `sim_metrics` section for the bench_compare.py gate, and --check asserts
// the ISSUE acceptance bar: service throughput with the pre-filter at
// least 5x the --no-sim run on the >=50%-nonequivalent corpus, and every
// sim-refuted job carrying a concrete counterexample.
//
// Like bench_service, no google-benchmark dependency.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "io/blif.h"
#include "service/verify_service.h"
#include "sim/bitsim.h"
#include "testlib/gen.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

struct CorpusPair {
  std::string a_path, b_path;
  bool nonequiv = false;
  eda::circuit::GateNetlist a, b;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_sim.json";
  bool quick = false, check = false;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--out") {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "bench_sim: missing value after --out\n");
        return 2;
      }
      out_path = argv[++a];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else {
      std::fprintf(stderr, "usage: bench_sim [--quick] [--check] "
                           "[--out FILE]\n");
      return 2;
    }
  }

  const std::uint64_t seed = eda::testlib::stimulus_seed();
  using eda::testlib::ConeEdit;

  // --- Leg 1: raw step throughput -----------------------------------------
  const int kRawWords = quick ? 2'000 : 20'000;
  double raw_vec_per_sec = 0.0;
  {
    eda::circuit::GateNetlist net = eda::testlib::random_netlist(
        seed, /*inputs=*/16, /*gates=*/600, /*ffs=*/12);
    eda::sim::BitSimulator sim(net);
    std::vector<std::uint64_t> stim(net.inputs().size());
    std::mt19937_64 rng(seed);
    std::uint64_t sink = 0;
    auto t0 = Clock::now();
    for (int w = 0; w < kRawWords; ++w) {
      for (std::uint64_t& word : stim) word = rng();
      sim.step(stim);
      sink ^= sim.output(0).val;  // defeat dead-code elimination
    }
    double sec = seconds_since(t0);
    raw_vec_per_sec = sec > 0 ? kRawWords * 64.0 / sec : 0.0;
    std::printf(
        "bench_sim: raw %0.2f Mvec/s (%d words, 600-gate netlist, "
        "sink %llx)\n",
        raw_vec_per_sec / 1e6, kRawWords,
        static_cast<unsigned long long>(sink));
  }

  // --- Seeded mixed corpus ------------------------------------------------
  // Majority-NONEQUIV (satisfying the >=50% acceptance mix) because that
  // is the traffic the pre-filter is for; the opaque-EQUIV pair keeps the
  // runs honest — it must pass through to the engine in BOTH
  // configurations.  Each NONEQUIV pair mutates a *sim-observable* output,
  // probed with a one-word refute: a Different edit on an output that the
  // X-pessimistic init keeps permanently unknown (e.g. an XOR flop loop)
  // is invisible to ANY simulation sound against arbitrary initial state,
  // and such a pair measures the engine, not the pre-filter.  The hit-rate
  // metric is then a regression guard on the lane semantics: anything
  // below 1.0 means the simulator stopped seeing a bug it used to see.
  const int kPairs = quick ? 8 : 16;
  std::vector<CorpusPair> corpus;
  for (int i = 0; i < kPairs; ++i) {
    CorpusPair p;
    p.nonequiv = i != 0;
    std::uint64_t s = seed + static_cast<std::uint64_t>(i) + 1;
    for (int attempt = 0;; ++attempt, s += 1000003) {
      p.a = eda::testlib::random_netlist_multi(
          s, /*inputs=*/6, /*gates=*/300, /*ffs=*/10, /*outputs=*/4);
      if (!p.nonequiv) {
        p.b = eda::testlib::mutate_cone(p.a, 0, ConeEdit::EquivalentOpaque);
        break;
      }
      bool found = false;
      for (std::size_t idx = 0; idx < 4 && !found; ++idx) {
        eda::circuit::GateNetlist cand =
            eda::testlib::mutate_cone(p.a, idx, ConeEdit::Different);
        eda::sim::SimOptions probe;
        probe.seed = seed;
        probe.vectors = 64;
        if (eda::sim::refute(p.a, cand, probe).refuted) {
          p.b = std::move(cand);
          found = true;
        }
      }
      if (found) break;
      if (attempt >= 32) {
        std::fprintf(stderr,
                     "bench_sim: no sim-observable output found for pair "
                     "%d after %d designs\n",
                     i, attempt + 1);
        return 1;
      }
    }
    corpus.push_back(std::move(p));
  }
  int nonequiv_pairs = 0;
  for (const CorpusPair& p : corpus) nonequiv_pairs += p.nonequiv ? 1 : 0;

  // --- Leg 2: refutation throughput + pre-filter hit rate -----------------
  int refuted = 0;
  std::uint64_t refute_vectors = 0;
  double refute_sec = 0.0;
  {
    eda::sim::SimOptions sopts;
    sopts.seed = seed;
    auto t0 = Clock::now();
    for (const CorpusPair& p : corpus) {
      eda::sim::RefuteResult r = eda::sim::refute(p.a, p.b, sopts);
      refute_vectors += r.vectors;
      if (r.refuted) ++refuted;
    }
    refute_sec = seconds_since(t0);
  }
  double refutations_per_sec =
      refute_sec > 0 ? refuted / refute_sec : 0.0;
  double prefilter_hit_rate =
      nonequiv_pairs > 0
          ? static_cast<double>(refuted) / nonequiv_pairs
          : 0.0;
  std::printf(
      "bench_sim: refute %d/%d nonequiv pairs caught (hit rate %.2f), "
      "%.0f refutations/s, %llu vectors\n",
      refuted, nonequiv_pairs, prefilter_hit_rate, refutations_per_sec,
      static_cast<unsigned long long>(refute_vectors));

  // --- Leg 3: service with vs without the pre-filter ----------------------
  std::vector<eda::service::JobSpec> specs;
  std::vector<std::string> tmp_files;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    CorpusPair& p = corpus[i];
    p.a_path = out_path + ".pair" + std::to_string(i) + "_a.blif";
    p.b_path = out_path + ".pair" + std::to_string(i) + "_b.blif";
    if (!write_file(p.a_path, eda::io::write_blif(p.a, "sim_a")) ||
        !write_file(p.b_path, eda::io::write_blif(p.b, "sim_b"))) {
      std::fprintf(stderr, "bench_sim: cannot write corpus BLIFs\n");
      return 1;
    }
    tmp_files.push_back(p.a_path);
    tmp_files.push_back(p.b_path);
    eda::service::JobSpec spec;
    spec.circuit = "blif:" + p.a_path + "," + p.b_path;
    spec.method = eda::service::Method::Eijk;
    spec.timeout_sec = 60.0;
    spec.name = "pair" + std::to_string(i);
    specs.push_back(std::move(spec));
  }
  auto run_service = [&](bool use_sim, double& sec,
                         std::size_t& sim_refuted_jobs,
                         std::size_t& missing_cex, bool& all_ok) {
    eda::service::ServiceOptions sopts;
    sopts.cache.share = false;  // every pair proves itself, both configs
    sopts.sim.enabled = use_sim;
    sopts.sim.seed = seed;
    eda::service::VerifyService svc(sopts);
    auto t0 = Clock::now();
    std::vector<eda::service::JobResult> rs = svc.run_batch(specs);
    sec = seconds_since(t0);
    all_ok = true;
    sim_refuted_jobs = 0;
    missing_cex = 0;
    for (std::size_t i = 0; i < rs.size(); ++i) {
      bool expect_neq = corpus[i].nonequiv;
      if (!rs[i].ok || !rs[i].completed ||
          rs[i].equivalent == expect_neq) {
        all_ok = false;
        std::fprintf(stderr,
                     "bench_sim: job %s wrong verdict (use_sim=%d)\n",
                     rs[i].name.c_str(), use_sim ? 1 : 0);
      }
      if (rs[i].sim_refuted > 0) {
        ++sim_refuted_jobs;
        if (rs[i].counterexample.empty()) ++missing_cex;
      }
    }
  };
  double sim_sec = 0.0, nosim_sec = 0.0;
  std::size_t sim_refuted_jobs = 0, nosim_refuted_jobs = 0;
  std::size_t missing_cex = 0, nosim_missing = 0;
  bool sim_ok = false, nosim_ok = false;
  run_service(false, nosim_sec, nosim_refuted_jobs, nosim_missing,
              nosim_ok);
  run_service(true, sim_sec, sim_refuted_jobs, missing_cex, sim_ok);
  for (const std::string& f : tmp_files) std::remove(f.c_str());
  double prefilter_speedup = sim_sec > 0 ? nosim_sec / sim_sec : 0.0;
  std::printf(
      "bench_sim: service %.3f s with pre-filter (refuted %zu job(s)) vs "
      "%.3f s without -> %.1fx\n",
      sim_sec, sim_refuted_jobs, nosim_sec, prefilter_speedup);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_sim: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_sim\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"raw_vectors_per_sec\": %.0f,\n", raw_vec_per_sec);
  std::fprintf(f, "  \"corpus_pairs\": %d,\n", kPairs);
  std::fprintf(f, "  \"corpus_nonequiv\": %d,\n", nonequiv_pairs);
  std::fprintf(f, "  \"refutations_per_sec\": %.1f,\n",
               refutations_per_sec);
  std::fprintf(f, "  \"refute_vectors\": %llu,\n",
               static_cast<unsigned long long>(refute_vectors));
  std::fprintf(f, "  \"service_sim_seconds\": %.4f,\n", sim_sec);
  std::fprintf(f, "  \"service_nosim_seconds\": %.4f,\n", nosim_sec);
  std::fprintf(f, "  \"sim_refuted_jobs\": %zu,\n", sim_refuted_jobs);
  // Machine-independent ratios for the bench_compare.py gate
  // (--section sim_metrics --higher-is-better).
  std::fprintf(f, "  \"sim_metrics\": {\n");
  std::fprintf(f, "    \"prefilter_speedup\": %.3f,\n", prefilter_speedup);
  std::fprintf(f, "    \"prefilter_hit_rate\": %.3f\n", prefilter_hit_rate);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (check) {
    if (!sim_ok || !nosim_ok) {
      std::fprintf(stderr,
                   "bench_sim: --check: verdict mismatch against ground "
                   "truth (see above)\n");
      return 1;
    }
    if (prefilter_speedup < 5.0) {
      std::fprintf(stderr,
                   "bench_sim: --check: pre-filter speedup %.1fx < 5x "
                   "(with %.3f s, without %.3f s)\n",
                   prefilter_speedup, sim_sec, nosim_sec);
      return 1;
    }
    if (prefilter_hit_rate < 1.0) {
      // Corpus construction probed each NONEQUIV pair with the refute
      // leg's own first stimulus word, so anything below 1.0 is a lane-
      // semantics regression, not corpus bad luck.
      std::fprintf(stderr,
                   "bench_sim: --check: pre-filter hit rate %.3f < 1.0 on "
                   "a sim-observable corpus\n",
                   prefilter_hit_rate);
      return 1;
    }
    if (sim_refuted_jobs == 0 || missing_cex > 0) {
      std::fprintf(stderr,
                   "bench_sim: --check: %zu sim-refuted job(s), %zu "
                   "without a concrete counterexample\n",
                   sim_refuted_jobs, missing_cex);
      return 1;
    }
  }
  return 0;
}
