// Ablation: RT-level vs bit-level formal retiming (paper, section V).
//
// "This is due to the fact that we chose to perform the retiming on an
// RT-level representation which consists of n-bit circuits whereas the
// model checking techniques ... can only handle flat bit-level
// descriptions.  Operating at the RT-level reduces the complexity of
// steps 1-3.  The complexity of the initial state evaluation (step 4) is
// not affected."
//
// We run the same figure-2 retiming both ways: on the n-bit RT netlist
// (one register, word operators) and on the expanded bit-level netlist
// (n one-bit registers, explicit ripple incrementer).

#include <chrono>
#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"

namespace {

double time_retime(const eda::circuit::Rtl& rtl, const eda::hash::Cut& cut) {
  auto t0 = std::chrono::steady_clock::now();
  eda::hash::formal_retime(rtl, cut);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  eda::thy::retiming_thm();
  std::printf(
      "Ablation — RT-level vs bit-level formal retiming (fig. 2)\n\n");
  std::printf("%4s %14s %14s %9s\n", "n", "RT-level (s)", "bit-level (s)",
              "ratio");
  for (int n : {1, 2, 3, 4, 5}) {
    auto rt = eda::bench_gen::make_fig2(n);
    auto bits = eda::bench_gen::make_fig2_bitlevel(n);
    double rt_sec = time_retime(rt.rtl, rt.good_cut);
    double bit_sec = time_retime(bits.rtl, bits.cut);
    std::printf("%4d %14.4f %14.4f %8.1fx\n", n, rt_sec, bit_sec,
                bit_sec / rt_sec);
  }
  return 0;
}
