// Microbenchmarks backing the paper's cost model for formal synthesis:
// primitive rule applications are cheap pointer operations (section III),
// and TRANS in particular is constant-time on shared structure.

#include <benchmark/benchmark.h>

#include "kernel/terms.h"
#include "kernel/thm.h"
#include "logic/bool_thms.h"
#include "logic/rewrite.h"

namespace k = eda::kernel;
namespace l = eda::logic;
using k::Term;
using k::Thm;

namespace {

Term big_term(int depth) {
  Term t = Term::var("x", k::bool_ty());
  for (int i = 0; i < depth; ++i) t = k::mk_eq(t, t);
  return t;
}

}  // namespace

static void BM_TermConstruction(benchmark::State& state) {
  // Rebuild the same shared equality tower from scratch each iteration;
  // with hash-consing every node after the first pass is an intern-table
  // hit instead of an allocation.
  int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(big_term(depth));
  }
}
BENCHMARK(BM_TermConstruction)->Arg(16)->Arg(256);

static void BM_TypeConstruction(benchmark::State& state) {
  for (auto _ : state) {
    k::Type t = k::bool_ty();
    for (int i = 0; i < 32; ++i) t = k::fun_ty(t, k::bool_ty());
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_TypeConstruction);

static void BM_EqualityDistinctNodes(benchmark::State& state) {
  // Structurally equal terms built through two independent construction
  // paths; interning collapses them to one node, so comparison is a
  // pointer test instead of a full structural walk.
  int depth = static_cast<int>(state.range(0));
  Term t1 = big_term(depth);
  Term t2 = big_term(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(t1 == t2);
  }
}
BENCHMARK(BM_EqualityDistinctNodes)->Arg(12)->Arg(18);

static void BM_CompareDistinctNodes(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  Term t1 = big_term(depth);
  Term t2 = big_term(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Term::compare(t1, t2));
  }
}
BENCHMARK(BM_CompareDistinctNodes)->Arg(12)->Arg(18);

static void BM_FreeVars(benchmark::State& state) {
  // Wide shared DAG with many distinct leaves.
  std::vector<Term> leaves;
  for (int i = 0; i < 64; ++i) {
    leaves.push_back(Term::var("x" + std::to_string(i), k::bool_ty()));
  }
  Term t = leaves[0];
  for (int round = 0; round < 4; ++round) {
    for (const Term& leaf : leaves) t = k::mk_eq(t, leaf);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(k::free_vars(t));
  }
}
BENCHMARK(BM_FreeVars);

static void BM_Vsubst(benchmark::State& state) {
  Term x = Term::var("x", k::bool_ty());
  Term y = Term::var("y", k::bool_ty());
  Term t = big_term(static_cast<int>(state.range(0)));
  k::TermSubst theta;
  theta.emplace(x, y);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k::vsubst(theta, t));
  }
}
BENCHMARK(BM_Vsubst)->Arg(16)->Arg(256);

static void BM_Refl(benchmark::State& state) {
  Term t = big_term(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Thm::refl(t));
  }
}
BENCHMARK(BM_Refl)->Arg(1)->Arg(64)->Arg(1024);

static void BM_TransOnSharedStructure(benchmark::State& state) {
  Term big = big_term(static_cast<int>(state.range(0)));
  Term p = Term::var("p", big.type());
  Thm ab = Thm::assume(k::mk_eq(big, p));
  Thm bc = Thm::assume(k::mk_eq(p, big));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Thm::trans(ab, bc));
  }
}
BENCHMARK(BM_TransOnSharedStructure)->Arg(1)->Arg(64)->Arg(1024);

static void BM_MkComb(benchmark::State& state) {
  Term f = Term::var("f", k::fun_ty(k::bool_ty(), k::bool_ty()));
  Term x = Term::var("x", k::bool_ty());
  Thm fr = Thm::refl(f);
  Thm xr = Thm::refl(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Thm::mk_comb(fr, xr));
  }
}
BENCHMARK(BM_MkComb);

static void BM_Beta(benchmark::State& state) {
  Term x = Term::var("x", k::bool_ty());
  Term body = big_term(static_cast<int>(state.range(0)));
  Term redex = Term::comb(Term::abs(x, k::mk_eq(x, body)), x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Thm::beta(redex));
  }
}
BENCHMARK(BM_Beta)->Arg(8)->Arg(128);

static void BM_AlphaCompare(benchmark::State& state) {
  Term x = Term::var("x", k::bool_ty());
  Term y = Term::var("y", k::bool_ty());
  Term t1 = Term::abs(x, big_term(static_cast<int>(state.range(0))));
  Term t2 = Term::abs(y, big_term(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(t1 == t2);
  }
}
BENCHMARK(BM_AlphaCompare)->Arg(16)->Arg(256);

static void BM_RewrConv(benchmark::State& state) {
  l::init_bool();
  Term x = Term::var("x", k::bool_ty());
  Thm xx = Thm::assume(l::mk_conj(x, x));
  Thm rule = l::gen(
      x, Thm::deduct_antisym(l::conjunct1(xx),
                             l::conj(Thm::assume(x), Thm::assume(x))));
  Term target = l::mk_conj(Term::var("p", k::bool_ty()),
                           Term::var("p", k::bool_ty()));
  l::Conv conv = l::rewr_conv(rule);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv(target));
  }
}
BENCHMARK(BM_RewrConv);

BENCHMARK_MAIN();
