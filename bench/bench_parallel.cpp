// Parallel-scaling benchmark for the concurrent kernel (PR 3).
//
// Workload: a batch of independent proof obligations — formal retiming of
// the figure-2 circuit at several bitwidths followed by structural
// verification of the result — executed at increasing thread counts on the
// work-stealing pool.  This is exactly the multi-circuit traffic shape the
// ROADMAP's north star describes: every obligation replays synthesis steps
// through the inference kernel, so the run hammers the sharded interner,
// the concurrent memo tables and the per-node caches from all threads at
// once.
//
// Alongside the scaling curve the benchmark re-measures the single-thread
// kernel micro numbers (term construction, equality, free-vars) so one
// artifact tracks both regressions and scaling, and writes everything as
// machine-readable JSON (default BENCH_kernel.json; CI uploads it so the
// perf trajectory is visible PR-over-PR).
//
// No google-benchmark dependency: timing is steady_clock around explicit
// batches, which is accurate at these (micro- to second-scale) durations
// and keeps the tool buildable everywhere the examples build.

#include <chrono>
#include <cstdio>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_gen/fig2.h"
#include "hash/retime_step.h"
#include "kernel/parallel.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "theories/retiming_thm.h"
#include "verify/retime_match.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// --- Micro section (single-thread ns/op, regression tracking) -------------

eda::kernel::Term big_term(int depth) {
  eda::kernel::Term t = eda::kernel::Term::var("x", eda::kernel::bool_ty());
  for (int i = 0; i < depth; ++i) t = eda::kernel::mk_eq(t, t);
  return t;
}

double ns_per_op(int iters, const std::function<void()>& op) {
  // One warm-up call so interning/memo effects settle, then best-of-3
  // batches: the CI bench-regression gate compares these numbers against a
  // committed baseline, and the minimum is far more stable across noisy
  // shared runners than a single batch (same methodology as the ROADMAP's
  // interleaved A/B minima).
  op();
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) op();
    double ns = seconds_since(t0) * 1e9 / iters;
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

struct MicroResult {
  std::string name;
  double ns;
};

std::vector<MicroResult> run_micro() {
  namespace k = eda::kernel;
  std::vector<MicroResult> out;
  out.push_back({"term_construction_depth16",
                 ns_per_op(20000, [] { big_term(16); })});
  k::Term t1 = big_term(18);
  k::Term t2 = big_term(18);
  out.push_back({"equality_depth18", ns_per_op(1000000, [&] {
                   volatile bool eq = t1 == t2;
                   (void)eq;
                 })});
  k::Term wide = [] {
    std::vector<k::Term> leaves;
    for (int i = 0; i < 64; ++i) {
      leaves.push_back(
          k::Term::var("x" + std::to_string(i), k::bool_ty()));
    }
    k::Term t = leaves[0];
    for (int round = 0; round < 4; ++round) {
      for (const k::Term& leaf : leaves) t = k::mk_eq(t, leaf);
    }
    return t;
  }();
  out.push_back(
      {"free_vars_wide", ns_per_op(100000, [&] { k::free_vars(wide); })});
  k::Term r = k::Term::var("r", k::bool_ty());
  out.push_back({"refl", ns_per_op(1000000, [&] { k::Thm::refl(r); })});
  return out;
}

// --- Scaling section (multi-circuit verification workload) -----------------

struct Obligation {
  eda::circuit::Rtl original;
  eda::hash::Cut cut;
};

/// One proof obligation end-to-end: formal retime through the kernel, then
/// structural verification of the result.  Throws on any failure — the
/// benchmark only measures correct runs.
void run_obligation(const Obligation& ob) {
  eda::hash::FormalRetimeResult res =
      eda::hash::formal_retime(ob.original, ob.cut);
  eda::verify::RetimeMatchResult m =
      eda::verify::verify_retiming(ob.original, res.retimed);
  if (!m.equivalent) {
    throw std::runtime_error("bench_parallel: verification failed: " +
                             m.reason);
  }
}

struct ScalePoint {
  unsigned threads = 1;
  double seconds = 0.0;
  double speedup = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_kernel.json";
  int copies = 3;  // obligations per width; total = copies * |widths|
  std::vector<unsigned> thread_counts{1, 2, 4, 8};
  bool quick = false;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    if (arg == "--out" && a + 1 < argc) out_path = argv[++a];
    if (arg == "--copies" && a + 1 < argc) copies = std::stoi(argv[++a]);
    if (arg == "--quick") quick = true;
  }
  if (quick) copies = 1;

  // Prove the universal theorem and compile the circuits up front so the
  // timed region is purely the per-obligation work.
  eda::thy::retiming_thm();
  std::vector<int> widths = quick ? std::vector<int>{4, 6, 8}
                                  : std::vector<int>{4, 6, 8, 10, 12, 16};
  std::vector<Obligation> obligations;
  for (int copy = 0; copy < copies; ++copy) {
    for (int n : widths) {
      auto fig2 = eda::bench_gen::make_fig2(n);
      obligations.push_back({fig2.rtl, fig2.good_cut});
    }
  }

  // Warm-up pass: pays one-time interning/memo costs so every thread count
  // measures the same steady-state work (and validates the obligations).
  for (const Obligation& ob : obligations) run_obligation(ob);

  std::printf("bench_parallel: %zu obligations (fig2 widths x%d)\n",
              obligations.size(), copies);
  std::vector<ScalePoint> curve;
  double t1_sec = 0.0;
  for (unsigned threads : thread_counts) {
    auto t0 = Clock::now();
    if (threads == 1) {
      // True single stream — no pool, so the baseline is not quietly
      // caller+worker.
      for (const Obligation& ob : obligations) run_obligation(ob);
    } else {
      // parallel_for's caller participates, so a pool of threads-1
      // workers plus the caller gives exactly `threads` streams.  A fresh
      // pool per point pins the level; ThreadPool::global() stays
      // untouched.
      eda::kernel::ThreadPool pool(threads - 1);
      eda::kernel::parallel_for(
          obligations.size(),
          [&](std::size_t i) { run_obligation(obligations[i]); }, pool);
    }
    ScalePoint p;
    p.threads = threads;
    p.seconds = seconds_since(t0);
    if (threads == 1) t1_sec = p.seconds;
    p.speedup = t1_sec > 0 ? t1_sec / p.seconds : 1.0;
    curve.push_back(p);
    std::printf("  threads=%u  %.3f s  speedup %.2fx\n", threads, p.seconds,
                p.speedup);
  }

  std::vector<MicroResult> micro = run_micro();
  for (const MicroResult& m : micro) {
    std::printf("  micro %-28s %10.1f ns/op\n", m.name.c_str(), m.ns);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_parallel: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_parallel\",\n");
  std::fprintf(f, "  \"obligations\": %zu,\n", obligations.size());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               eda::kernel::default_thread_count());
  std::fprintf(f, "  \"micro_ns_per_op\": {\n");
  for (std::size_t i = 0; i < micro.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.1f%s\n", micro[i].name.c_str(),
                 micro[i].ns, i + 1 < micro.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"scaling\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    std::fprintf(
        f,
        "    {\"threads\": %u, \"seconds\": %.4f, \"speedup\": %.3f}%s\n",
        curve[i].threads, curve[i].seconds, curve[i].speedup,
        i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
