// Throughput benchmark for the multi-circuit verification service.
//
// Workload: a table1/table2-style parameter sweep (widths x methods, with
// `copies` duplicate submissions per cell — the production traffic shape
// where many clients resubmit the same netlists).  Two configurations run
// over the identical job list:
//
//   serial   one job at a time, no cross-job cache — the PR 3 world, where
//            each table row proves its own obligations;
//   batched  the VerifyService: all jobs in flight on the pool, one shared
//            theorem/verdict cache keyed on alpha-hashed goal terms;
//   warm     the batched service again, but warm-started from the cache
//            file the cold run saved — the service-restart scenario, where
//            every theorem and completed verdict is already present and
//            the run measures pure cache-replay throughput.
//
// The headline metrics are jobs/second for all three configurations and
// the shared-cache hit rates that explain the differences: on a
// single-core container the entire batched win is cache amortisation, on
// multi-core runners pool parallelism multiplies it, and the warm run
// shows what a restart costs once the cache persists.  Results go to
// BENCH_service.json (CI uploads the artifact; --check asserts batched >=
// serial and warm >= serial for the acceptance gate).
//
// Like bench_parallel, no google-benchmark dependency: steady_clock around
// explicit batches is accurate at these durations.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "io/blif.h"
#include "kernel/parallel.h"
#include "service/cache_server.h"
#include "service/sweep.h"
#include "service/verify_service.h"
#include "testlib/gen.h"
#include "theories/retiming_thm.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Nearest-rank percentile of per-job latencies (p in [0, 100]).
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  double rank = std::ceil(p / 100.0 * static_cast<double>(v.size()));
  std::size_t idx = rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  return v[std::min(idx, v.size() - 1)];
}

std::vector<double> latencies(
    const std::vector<eda::service::JobResult>& results) {
  std::vector<double> out;
  out.reserve(results.size());
  for (const eda::service::JobResult& r : results) {
    out.push_back(r.total_sec);
  }
  return out;
}

bool write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

/// (jobs, share) service options — the old flat positional init, regrouped.
eda::service::ServiceOptions service_opts(unsigned jobs, bool share) {
  eda::service::ServiceOptions opts;
  opts.jobs = jobs;
  opts.cache.share = share;
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  bool quick = false, check = false;
  unsigned jobs = 0;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "bench_service: missing value after %s\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--jobs") {
      std::string v = next();
      int n = 0;
      std::size_t used = 0;
      try {
        n = std::stoi(v, &used);
      } catch (const std::logic_error&) {
        used = 0;  // falls through to the range error below
      }
      if (used != v.size() || n < 1 || n > 1024) {
        std::fprintf(stderr,
                     "bench_service: --jobs must be an integer in "
                     "1..1024\n");
        return 2;
      }
      jobs = static_cast<unsigned>(n);
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--quick] [--check] [--jobs N] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  eda::service::SweepGrid grid;
  grid.widths = quick ? std::vector<int>{4, 6} : std::vector<int>{4, 6, 8};
  grid.depths = {1};
  grid.methods = {eda::service::Method::Hash, eda::service::Method::Match,
                  eda::service::Method::Eijk};
  grid.copies = quick ? 2 : 3;
  grid.timeout_sec = 10.0;
  std::vector<eda::service::JobSpec> specs = eda::service::make_sweep(grid);

  // One-time costs out of the timed region: the universal theorem and the
  // warm interner/memo state every configuration then sees identically.
  eda::thy::retiming_thm();
  {
    eda::service::VerifyService warm(service_opts(1, false));
    for (const eda::service::JobSpec& spec : specs) {
      eda::service::JobResult r = warm.run_one(spec);
      if (!r.ok) {
        std::fprintf(stderr, "bench_service: warm-up job %s failed: %s\n",
                     r.name.c_str(), r.error.c_str());
        return 1;
      }
    }
  }

  std::printf("bench_service: %zu jobs (widths x methods x %d copies)\n",
              specs.size(), grid.copies);

  // Serial loop, no shared cache.
  double serial_sec = 0.0;
  std::vector<double> serial_lat;
  {
    eda::service::VerifyService svc(service_opts(1, false));
    auto t0 = Clock::now();
    for (const eda::service::JobSpec& spec : specs) {
      serial_lat.push_back(svc.run_one(spec).total_sec);
    }
    serial_sec = seconds_since(t0);
  }

  // Batched service, shared cache (cold: nothing persisted yet).  Its
  // caches are saved for the warm-start leg below.
  std::string cache_path = out_path + ".cache.tmp";
  double batched_sec = 0.0;
  std::vector<double> batched_lat;
  eda::service::ServiceStats batched_stats;
  unsigned threads = jobs == 0 ? eda::kernel::default_thread_count() : jobs;
  {
    eda::service::VerifyService svc(service_opts(jobs, true));
    auto t0 = Clock::now();
    batched_lat = latencies(svc.run_batch(specs));
    batched_sec = seconds_since(t0);
    batched_stats = svc.stats();
    svc.save_cache(cache_path);
  }

  // Warm-started service: a fresh instance (empty caches, as after a
  // restart) loads the persisted file and replays the identical workload.
  // Load time is charged to the run — it is part of what a restart costs.
  double warm_sec = 0.0;
  std::vector<double> warm_lat;
  eda::service::ServiceStats warm_stats;
  {
    eda::service::VerifyService svc(service_opts(jobs, true));
    auto t0 = Clock::now();
    eda::service::CacheLoadResult lr = svc.load_cache(cache_path);
    if (!lr.loaded) {
      std::fprintf(stderr, "bench_service: warm-start load failed: %s\n",
                   lr.note.c_str());
      std::remove(cache_path.c_str());
      return 1;
    }
    warm_lat = latencies(svc.run_batch(specs));
    warm_sec = seconds_since(t0);
    warm_stats = svc.stats();
  }
  std::remove(cache_path.c_str());

  // Edit-replay leg: the incremental-verification scenario the cache
  // percentages above can't see.  An N-cone design pair whose cones ALL
  // need a real engine run (opaque-equivalent edits defeat the miter
  // folding) is checked cold; then ONE cone of the B side is edited and
  // the pair replays against the cold run's persisted cache.  The replay
  // should re-prove exactly the edited cone and serve the other N-1 from
  // the verdict cache — re-proved-cone count, hit rate and latency vs the
  // cold check are the metrics.
  const int kEditCones = 16;
  double edit_cold_sec = 0.0, edit_replay_sec = 0.0;
  std::size_t edit_cones = 0, edit_reproved = 0, edit_hits = 0;
  bool edit_ok = false;
  {
    using eda::testlib::ConeEdit;
    eda::circuit::GateNetlist net_a = eda::testlib::random_netlist_multi(
        /*seed=*/20260808, /*inputs=*/8, /*gates=*/60 * kEditCones,
        /*ffs=*/10, kEditCones);
    eda::circuit::GateNetlist net_b = net_a;
    for (int i = 0; i < kEditCones; ++i) {
      net_b = eda::testlib::mutate_cone(net_b, static_cast<std::size_t>(i),
                                        ConeEdit::EquivalentOpaque);
    }
    eda::circuit::GateNetlist net_edit =
        eda::testlib::mutate_cone(net_b, 0, ConeEdit::Equivalent);
    const std::string a_path = out_path + ".edit_a.blif";
    const std::string b_path = out_path + ".edit_b.blif";
    const std::string e_path = out_path + ".edit_e.blif";
    const std::string edit_cache = out_path + ".edit.cache.tmp";
    if (!write_file(a_path, eda::io::write_blif(net_a, "edit_a")) ||
        !write_file(b_path, eda::io::write_blif(net_b, "edit_b")) ||
        !write_file(e_path, eda::io::write_blif(net_edit, "edit_e"))) {
      std::fprintf(stderr, "bench_service: cannot write edit-leg BLIFs\n");
      return 1;
    }
    auto blif_job = [](const std::string& a, const std::string& b) {
      eda::service::JobSpec spec;
      spec.circuit = "blif:" + a + "," + b;
      spec.method = eda::service::Method::Eijk;
      spec.timeout_sec = 60.0;
      return spec;
    };
    eda::service::ServiceOptions inc_opts;
    inc_opts.jobs = jobs;
    inc_opts.incremental = true;
    eda::service::JobResult cold_r, replay_r;
    {
      eda::service::VerifyService svc(inc_opts);
      auto t0 = Clock::now();
      cold_r = svc.run_one(blif_job(a_path, b_path));
      edit_cold_sec = seconds_since(t0);
      svc.save_cache(edit_cache);
    }
    {
      eda::service::VerifyService svc(inc_opts);
      eda::service::CacheLoadResult lr = svc.load_cache(edit_cache);
      auto t0 = Clock::now();
      replay_r = lr.loaded ? svc.run_one(blif_job(a_path, e_path))
                           : eda::service::JobResult{};
      edit_replay_sec = seconds_since(t0);
    }
    std::remove(a_path.c_str());
    std::remove(b_path.c_str());
    std::remove(e_path.c_str());
    std::remove(edit_cache.c_str());
    edit_cones = replay_r.cones;
    edit_reproved = replay_r.cones_reproved;
    edit_hits = replay_r.cone_hits;
    edit_ok = cold_r.ok && cold_r.completed && cold_r.equivalent &&
              replay_r.ok && replay_r.completed && replay_r.equivalent;
    if (!edit_ok) {
      std::fprintf(stderr,
                   "bench_service: edit-replay leg failed (cold %s, replay "
                   "%s)\n",
                   cold_r.ok ? "ok" : cold_r.error.c_str(),
                   replay_r.ok ? "ok" : replay_r.error.c_str());
    }
  }
  // Remote leg: the fleet scenario — an incremental cone sweep against an
  // embedded eda_cached daemon, measuring REMOTE ROUND TRIPS per job.
  // Cold, the batched client must issue exactly one LookupBatch and one
  // PublishBatch for the whole decomposition (<= 2 exchanges); warm, one
  // LookupBatch serves every cone.  The same warm replay with batching
  // off shows the per-entry chattiness the v2 frames collapse — their
  // ratio is the machine-independent regression metric.
  const int kRemoteCones = 12;
  std::uint64_t remote_cold_rts = 0, remote_warm_rts = 0,
                remote_perentry_rts = 0;
  bool remote_ok = false;
  {
    using eda::testlib::ConeEdit;
    std::string sock = out_path + ".cached.sock";
    std::remove(sock.c_str());
    eda::service::CacheServerOptions sopts;
    sopts.listen = "unix:" + sock;
    sopts.shards = 4;
    eda::service::CacheServer daemon(sopts);
    daemon.start();

    eda::circuit::GateNetlist rnet_a = eda::testlib::random_netlist_multi(
        /*seed=*/20260809, /*inputs=*/8, /*gates=*/40 * kRemoteCones,
        /*ffs=*/10, kRemoteCones);
    eda::circuit::GateNetlist rnet_b = rnet_a;
    for (int i = 0; i < kRemoteCones; ++i) {
      rnet_b = eda::testlib::mutate_cone(rnet_b, static_cast<std::size_t>(i),
                                         ConeEdit::EquivalentOpaque);
    }
    const std::string ra_path = out_path + ".remote_a.blif";
    const std::string rb_path = out_path + ".remote_b.blif";
    if (!write_file(ra_path, eda::io::write_blif(rnet_a, "remote_a")) ||
        !write_file(rb_path, eda::io::write_blif(rnet_b, "remote_b"))) {
      std::fprintf(stderr, "bench_service: cannot write remote-leg BLIFs\n");
      return 1;
    }
    eda::service::JobSpec rjob;
    rjob.circuit = "blif:" + ra_path + "," + rb_path;
    rjob.method = eda::service::Method::Eijk;
    rjob.timeout_sec = 60.0;
    auto remote_opts = [&](bool batch) {
      eda::service::ServiceOptions o;
      o.jobs = jobs;
      o.incremental = true;
      o.cache.server = "unix:" + sock;
      o.cache.remote_pool = 4;
      o.cache.remote_batch = batch;
      return o;
    };
    auto run_remote = [&](bool batch, std::uint64_t* rts) {
      eda::service::VerifyService svc(remote_opts(batch));
      std::uint64_t rt0 = svc.stats().remote_round_trips;
      eda::service::JobResult r = svc.run_one(rjob);
      eda::service::ServiceStats st = svc.stats();
      *rts = st.remote_round_trips - rt0;
      return r.ok && r.completed && r.equivalent &&
             st.remote_failures == 0 &&
             r.cones == static_cast<std::size_t>(kRemoteCones);
    };
    // Cold fills the daemon; the two warm replays (batched, then
    // per-entry) must serve every cone from it with identical verdicts.
    bool cold_ok = run_remote(true, &remote_cold_rts);
    bool warm_ok = run_remote(true, &remote_warm_rts);
    bool perentry_ok = run_remote(false, &remote_perentry_rts);
    remote_ok = cold_ok && warm_ok && perentry_ok;
    if (!remote_ok) {
      std::fprintf(stderr,
                   "bench_service: remote leg failed (cold %d, warm %d, "
                   "per-entry %d)\n",
                   cold_ok, warm_ok, perentry_ok);
    }
    std::remove(ra_path.c_str());
    std::remove(rb_path.c_str());
    daemon.stop();
    std::remove(sock.c_str());
  }
  double remote_rt_reduction =
      remote_warm_rts > 0 ? static_cast<double>(remote_perentry_rts) /
                                static_cast<double>(remote_warm_rts)
                          : 0.0;

  // Exactly one cone was edited by construction, so the other cones - 1
  // are unchanged; a rate below 1.0 means a hash-stability bug forced an
  // unchanged cone back to the engine.
  double edit_unchanged_hit_rate =
      edit_cones > 1 ? static_cast<double>(edit_hits) /
                           static_cast<double>(edit_cones - 1)
                     : 0.0;
  double edit_speedup =
      edit_replay_sec > 0 ? edit_cold_sec / edit_replay_sec : 0.0;

  double n = static_cast<double>(specs.size());
  double serial_tp = serial_sec > 0 ? n / serial_sec : 0.0;
  double batched_tp = batched_sec > 0 ? n / batched_sec : 0.0;
  double warm_tp = warm_sec > 0 ? n / warm_sec : 0.0;
  std::printf("  serial   %.3f s  (%.2f jobs/s)\n", serial_sec, serial_tp);
  std::printf(
      "  batched  %.3f s  (%.2f jobs/s, %u stream(s), theorem hit rate "
      "%.2f, result hit rate %.2f)\n",
      batched_sec, batched_tp, threads, batched_stats.theorems.hit_rate(),
      batched_stats.results.hit_rate());
  std::printf(
      "  warm     %.3f s  (%.2f jobs/s, theorem hit rate %.2f, result hit "
      "rate %.2f)\n",
      warm_sec, warm_tp, warm_stats.theorems.hit_rate(),
      warm_stats.results.hit_rate());
  std::printf("  throughput ratio %.2fx batched, %.2fx warm\n",
              serial_tp > 0 ? batched_tp / serial_tp : 0.0,
              serial_tp > 0 ? warm_tp / serial_tp : 0.0);
  std::printf(
      "  latency p50/p95: serial %.4f/%.4f s, batched %.4f/%.4f s, warm "
      "%.4f/%.4f s\n",
      percentile(serial_lat, 50), percentile(serial_lat, 95),
      percentile(batched_lat, 50), percentile(batched_lat, 95),
      percentile(warm_lat, 50), percentile(warm_lat, 95));
  std::printf(
      "  edit-replay: %zu cones, %zu re-proved, unchanged hit rate %.2f, "
      "cold %.3f s -> replay %.3f s (%.1fx)\n",
      edit_cones, edit_reproved, edit_unchanged_hit_rate, edit_cold_sec,
      edit_replay_sec, edit_speedup);
  std::printf(
      "  remote: %d cones, round trips cold %llu / warm %llu / per-entry "
      "%llu (batching cuts warm traffic %.1fx)\n",
      kRemoteCones, static_cast<unsigned long long>(remote_cold_rts),
      static_cast<unsigned long long>(remote_warm_rts),
      static_cast<unsigned long long>(remote_perentry_rts),
      remote_rt_reduction);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_service: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_service\",\n");
  std::fprintf(f, "  \"jobs\": %zu,\n", specs.size());
  std::fprintf(f, "  \"copies\": %d,\n", grid.copies);
  std::fprintf(f, "  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               eda::kernel::default_thread_count());
  std::fprintf(f, "  \"serial_seconds\": %.4f,\n", serial_sec);
  std::fprintf(f, "  \"batched_seconds\": %.4f,\n", batched_sec);
  std::fprintf(f, "  \"serial_jobs_per_sec\": %.3f,\n", serial_tp);
  std::fprintf(f, "  \"batched_jobs_per_sec\": %.3f,\n", batched_tp);
  std::fprintf(f, "  \"throughput_ratio\": %.3f,\n",
               serial_tp > 0 ? batched_tp / serial_tp : 0.0);
  std::fprintf(f, "  \"theorem_hit_rate\": %.3f,\n",
               batched_stats.theorems.hit_rate());
  std::fprintf(f, "  \"result_hit_rate\": %.3f,\n",
               batched_stats.results.hit_rate());
  std::fprintf(f, "  \"warm_seconds\": %.4f,\n", warm_sec);
  std::fprintf(f, "  \"warm_jobs_per_sec\": %.3f,\n", warm_tp);
  std::fprintf(f, "  \"warm_vs_cold_ratio\": %.3f,\n",
               warm_sec > 0 ? batched_sec / warm_sec : 0.0);
  std::fprintf(f, "  \"warm_theorem_hit_rate\": %.3f,\n",
               warm_stats.theorems.hit_rate());
  std::fprintf(f, "  \"warm_theorem_misses\": %llu,\n",
               static_cast<unsigned long long>(warm_stats.theorems.misses));
  std::fprintf(f, "  \"warm_result_hit_rate\": %.3f,\n",
               warm_stats.results.hit_rate());
  std::fprintf(f, "  \"serial_p50_sec\": %.5f,\n",
               percentile(serial_lat, 50));
  std::fprintf(f, "  \"serial_p95_sec\": %.5f,\n",
               percentile(serial_lat, 95));
  std::fprintf(f, "  \"batched_p50_sec\": %.5f,\n",
               percentile(batched_lat, 50));
  std::fprintf(f, "  \"batched_p95_sec\": %.5f,\n",
               percentile(batched_lat, 95));
  std::fprintf(f, "  \"warm_p50_sec\": %.5f,\n", percentile(warm_lat, 50));
  std::fprintf(f, "  \"warm_p95_sec\": %.5f,\n", percentile(warm_lat, 95));
  std::fprintf(f, "  \"edit_cones\": %zu,\n", edit_cones);
  std::fprintf(f, "  \"edit_reproved_cones\": %zu,\n", edit_reproved);
  std::fprintf(f, "  \"edit_unchanged_hit_rate\": %.3f,\n",
               edit_unchanged_hit_rate);
  std::fprintf(f, "  \"edit_cold_seconds\": %.4f,\n", edit_cold_sec);
  std::fprintf(f, "  \"edit_replay_seconds\": %.4f,\n", edit_replay_sec);
  std::fprintf(f, "  \"edit_speedup\": %.3f,\n", edit_speedup);
  std::fprintf(f, "  \"remote_cold_round_trips\": %llu,\n",
               static_cast<unsigned long long>(remote_cold_rts));
  std::fprintf(f, "  \"remote_warm_round_trips\": %llu,\n",
               static_cast<unsigned long long>(remote_warm_rts));
  std::fprintf(f, "  \"remote_perentry_round_trips\": %llu,\n",
               static_cast<unsigned long long>(remote_perentry_rts));
  // Ratio metrics for the bench_compare.py regression gate
  // (--section service_metrics --higher-is-better): machine-speed
  // independent, so one committed baseline holds across runners.
  std::fprintf(f, "  \"service_metrics\": {\n");
  std::fprintf(f, "    \"throughput_ratio\": %.3f,\n",
               serial_tp > 0 ? batched_tp / serial_tp : 0.0);
  std::fprintf(f, "    \"warm_vs_cold_ratio\": %.3f,\n",
               warm_sec > 0 ? batched_sec / warm_sec : 0.0);
  std::fprintf(f, "    \"edit_speedup\": %.3f,\n", edit_speedup);
  std::fprintf(f, "    \"remote_batch_rt_reduction\": %.3f\n",
               remote_rt_reduction);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (check && batched_tp < serial_tp) {
    std::fprintf(stderr,
                 "bench_service: --check: batched throughput %.2f < serial "
                 "%.2f jobs/s\n",
                 batched_tp, serial_tp);
    return 1;
  }
  if (check && warm_tp < serial_tp) {
    std::fprintf(stderr,
                 "bench_service: --check: warm-start throughput %.2f < "
                 "serial %.2f jobs/s\n",
                 warm_tp, serial_tp);
    return 1;
  }
  if (check) {
    // The incremental acceptance gate: exactly the edited cone re-proved,
    // every unchanged cone served from the cache, and the replay at least
    // 10x faster than the cold check.
    if (!edit_ok || edit_reproved != 1 || edit_unchanged_hit_rate < 1.0) {
      std::fprintf(stderr,
                   "bench_service: --check: edit-replay re-proved %zu of "
                   "%zu cones (unchanged hit rate %.2f), expected exactly "
                   "1 with rate 1.0\n",
                   edit_reproved, edit_cones, edit_unchanged_hit_rate);
      return 1;
    }
    if (edit_speedup < 10.0) {
      std::fprintf(stderr,
                   "bench_service: --check: edit-replay speedup %.1fx < "
                   "10x (cold %.3f s, replay %.3f s)\n",
                   edit_speedup, edit_cold_sec, edit_replay_sec);
      return 1;
    }
    // The pipelined-I/O acceptance gate: a batched incremental sweep is
    // at most TWO remote exchanges per job (one lookup frame, one publish
    // frame), warm or cold, and batching beats per-entry traffic.
    if (!remote_ok || remote_cold_rts > 2 || remote_warm_rts > 2) {
      std::fprintf(stderr,
                   "bench_service: --check: remote leg used %llu cold / "
                   "%llu warm round trips for one job, expected <= 2 "
                   "each\n",
                   static_cast<unsigned long long>(remote_cold_rts),
                   static_cast<unsigned long long>(remote_warm_rts));
      return 1;
    }
    if (remote_rt_reduction < 4.0) {
      std::fprintf(stderr,
                   "bench_service: --check: batching cut warm remote "
                   "traffic only %.1fx (per-entry %llu vs batched %llu), "
                   "expected >= 4x\n",
                   remote_rt_reduction,
                   static_cast<unsigned long long>(remote_perentry_rts),
                   static_cast<unsigned long long>(remote_warm_rts));
      return 1;
    }
  }
  return 0;
}
