// Throughput benchmark for the multi-circuit verification service.
//
// Workload: a table1/table2-style parameter sweep (widths x methods, with
// `copies` duplicate submissions per cell — the production traffic shape
// where many clients resubmit the same netlists).  Two configurations run
// over the identical job list:
//
//   serial   one job at a time, no cross-job cache — the PR 3 world, where
//            each table row proves its own obligations;
//   batched  the VerifyService: all jobs in flight on the pool, one shared
//            theorem/verdict cache keyed on alpha-hashed goal terms;
//   warm     the batched service again, but warm-started from the cache
//            file the cold run saved — the service-restart scenario, where
//            every theorem and completed verdict is already present and
//            the run measures pure cache-replay throughput.
//
// The headline metrics are jobs/second for all three configurations and
// the shared-cache hit rates that explain the differences: on a
// single-core container the entire batched win is cache amortisation, on
// multi-core runners pool parallelism multiplies it, and the warm run
// shows what a restart costs once the cache persists.  Results go to
// BENCH_service.json (CI uploads the artifact; --check asserts batched >=
// serial and warm >= serial for the acceptance gate).
//
// Like bench_parallel, no google-benchmark dependency: steady_clock around
// explicit batches is accurate at these durations.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernel/parallel.h"
#include "service/sweep.h"
#include "service/verify_service.h"
#include "theories/retiming_thm.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_service.json";
  bool quick = false, check = false;
  unsigned jobs = 0;
  for (int a = 1; a < argc; ++a) {
    std::string arg = argv[a];
    auto next = [&]() -> const char* {
      if (a + 1 >= argc) {
        std::fprintf(stderr, "bench_service: missing value after %s\n",
                     arg.c_str());
        std::exit(2);
      }
      return argv[++a];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--jobs") {
      std::string v = next();
      int n = 0;
      std::size_t used = 0;
      try {
        n = std::stoi(v, &used);
      } catch (const std::logic_error&) {
        used = 0;  // falls through to the range error below
      }
      if (used != v.size() || n < 1 || n > 1024) {
        std::fprintf(stderr,
                     "bench_service: --jobs must be an integer in "
                     "1..1024\n");
        return 2;
      }
      jobs = static_cast<unsigned>(n);
    } else {
      std::fprintf(stderr,
                   "usage: bench_service [--quick] [--check] [--jobs N] "
                   "[--out FILE]\n");
      return 2;
    }
  }

  eda::service::SweepGrid grid;
  grid.widths = quick ? std::vector<int>{4, 6} : std::vector<int>{4, 6, 8};
  grid.depths = {1};
  grid.methods = {eda::service::Method::Hash, eda::service::Method::Match,
                  eda::service::Method::Eijk};
  grid.copies = quick ? 2 : 3;
  grid.timeout_sec = 10.0;
  std::vector<eda::service::JobSpec> specs = eda::service::make_sweep(grid);

  // One-time costs out of the timed region: the universal theorem and the
  // warm interner/memo state every configuration then sees identically.
  eda::thy::retiming_thm();
  {
    eda::service::VerifyService warm({1, false});
    for (const eda::service::JobSpec& spec : specs) {
      eda::service::JobResult r = warm.run_one(spec);
      if (!r.ok) {
        std::fprintf(stderr, "bench_service: warm-up job %s failed: %s\n",
                     r.name.c_str(), r.error.c_str());
        return 1;
      }
    }
  }

  std::printf("bench_service: %zu jobs (widths x methods x %d copies)\n",
              specs.size(), grid.copies);

  // Serial loop, no shared cache.
  double serial_sec = 0.0;
  {
    eda::service::VerifyService svc({1, false});
    auto t0 = Clock::now();
    for (const eda::service::JobSpec& spec : specs) svc.run_one(spec);
    serial_sec = seconds_since(t0);
  }

  // Batched service, shared cache (cold: nothing persisted yet).  Its
  // caches are saved for the warm-start leg below.
  std::string cache_path = out_path + ".cache.tmp";
  double batched_sec = 0.0;
  eda::service::ServiceStats batched_stats;
  unsigned threads = jobs == 0 ? eda::kernel::default_thread_count() : jobs;
  {
    eda::service::VerifyService svc({jobs, true});
    auto t0 = Clock::now();
    svc.run_batch(specs);
    batched_sec = seconds_since(t0);
    batched_stats = svc.stats();
    svc.save_cache(cache_path);
  }

  // Warm-started service: a fresh instance (empty caches, as after a
  // restart) loads the persisted file and replays the identical workload.
  // Load time is charged to the run — it is part of what a restart costs.
  double warm_sec = 0.0;
  eda::service::ServiceStats warm_stats;
  {
    eda::service::VerifyService svc({jobs, true});
    auto t0 = Clock::now();
    eda::service::CacheLoadResult lr = svc.load_cache(cache_path);
    if (!lr.loaded) {
      std::fprintf(stderr, "bench_service: warm-start load failed: %s\n",
                   lr.note.c_str());
      std::remove(cache_path.c_str());
      return 1;
    }
    svc.run_batch(specs);
    warm_sec = seconds_since(t0);
    warm_stats = svc.stats();
  }
  std::remove(cache_path.c_str());

  double n = static_cast<double>(specs.size());
  double serial_tp = serial_sec > 0 ? n / serial_sec : 0.0;
  double batched_tp = batched_sec > 0 ? n / batched_sec : 0.0;
  double warm_tp = warm_sec > 0 ? n / warm_sec : 0.0;
  std::printf("  serial   %.3f s  (%.2f jobs/s)\n", serial_sec, serial_tp);
  std::printf(
      "  batched  %.3f s  (%.2f jobs/s, %u stream(s), theorem hit rate "
      "%.2f, result hit rate %.2f)\n",
      batched_sec, batched_tp, threads, batched_stats.theorems.hit_rate(),
      batched_stats.results.hit_rate());
  std::printf(
      "  warm     %.3f s  (%.2f jobs/s, theorem hit rate %.2f, result hit "
      "rate %.2f)\n",
      warm_sec, warm_tp, warm_stats.theorems.hit_rate(),
      warm_stats.results.hit_rate());
  std::printf("  throughput ratio %.2fx batched, %.2fx warm\n",
              serial_tp > 0 ? batched_tp / serial_tp : 0.0,
              serial_tp > 0 ? warm_tp / serial_tp : 0.0);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_service: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_service\",\n");
  std::fprintf(f, "  \"jobs\": %zu,\n", specs.size());
  std::fprintf(f, "  \"copies\": %d,\n", grid.copies);
  std::fprintf(f, "  \"threads\": %u,\n", threads);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               eda::kernel::default_thread_count());
  std::fprintf(f, "  \"serial_seconds\": %.4f,\n", serial_sec);
  std::fprintf(f, "  \"batched_seconds\": %.4f,\n", batched_sec);
  std::fprintf(f, "  \"serial_jobs_per_sec\": %.3f,\n", serial_tp);
  std::fprintf(f, "  \"batched_jobs_per_sec\": %.3f,\n", batched_tp);
  std::fprintf(f, "  \"throughput_ratio\": %.3f,\n",
               serial_tp > 0 ? batched_tp / serial_tp : 0.0);
  std::fprintf(f, "  \"theorem_hit_rate\": %.3f,\n",
               batched_stats.theorems.hit_rate());
  std::fprintf(f, "  \"result_hit_rate\": %.3f,\n",
               batched_stats.results.hit_rate());
  std::fprintf(f, "  \"warm_seconds\": %.4f,\n", warm_sec);
  std::fprintf(f, "  \"warm_jobs_per_sec\": %.3f,\n", warm_tp);
  std::fprintf(f, "  \"warm_vs_cold_ratio\": %.3f,\n",
               warm_sec > 0 ? batched_sec / warm_sec : 0.0);
  std::fprintf(f, "  \"warm_theorem_hit_rate\": %.3f,\n",
               warm_stats.theorems.hit_rate());
  std::fprintf(f, "  \"warm_theorem_misses\": %llu,\n",
               static_cast<unsigned long long>(warm_stats.theorems.misses));
  std::fprintf(f, "  \"warm_result_hit_rate\": %.3f\n",
               warm_stats.results.hit_rate());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (check && batched_tp < serial_tp) {
    std::fprintf(stderr,
                 "bench_service: --check: batched throughput %.2f < serial "
                 "%.2f jobs/s\n",
                 batched_tp, serial_tp);
    return 1;
  }
  if (check && warm_tp < serial_tp) {
    std::fprintf(stderr,
                 "bench_service: --check: warm-start throughput %.2f < "
                 "serial %.2f jobs/s\n",
                 warm_tp, serial_tp);
    return 1;
  }
  return 0;
}
