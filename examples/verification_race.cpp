// The paper's experiment in miniature: retime one circuit formally, then
// race every post-synthesis verification technique against the time the
// formal step took.  On small circuits the verifiers win (HASH has a
// higher constant); crank up --bits and the tables turn.

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "hash/retime_step.h"
#include "theories/retiming_thm.h"
#include "verify/eijk.h"
#include "verify/sis_fsm.h"
#include "verify/smv_mc.h"

int main(int argc, char** argv) {
  using namespace eda;
  int bits = 6;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--bits" && a + 1 < argc) {
      bits = std::stoi(argv[++a]);
    }
  }
  thy::retiming_thm();
  bench_gen::Fig2 fig2 = bench_gen::make_fig2(bits);

  auto t0 = std::chrono::steady_clock::now();
  hash::FormalRetimeResult res = hash::formal_retime(fig2.rtl, fig2.good_cut);
  double hash_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  circuit::GateNetlist ga = circuit::bit_blast(fig2.rtl);
  circuit::GateNetlist gb = circuit::bit_blast(res.retimed);
  std::printf("fig. 2 at %d bits: %d flip-flops, %d gates\n\n", bits,
              ga.ff_count(), ga.gate_count());
  std::printf("%-28s %10s %10s\n", "technique", "time (s)", "verdict");
  std::printf("%-28s %10.4f %10s\n", "HASH (formal synthesis)", hash_sec,
              "theorem");

  verify::VerifyOptions opts;
  opts.timeout_sec = 10.0;
  auto report = [&](const char* name, const verify::VerifyResult& r) {
    std::printf("%-28s %10s %10s\n", name,
                r.completed ? std::to_string(r.seconds).substr(0, 6).c_str()
                            : "-",
                r.completed ? (r.equivalent ? "equal" : "DIFFER") : "-");
  };
  report("SIS (explicit FSM compare)", verify::sis_fsm_check(ga, gb, opts));
  report("SMV (monolithic MC)", verify::smv_check(ga, gb, opts));
  report("Eijk (partitioned MC)", verify::eijk_check(ga, gb, opts, false));
  report("Eijk+ (functional deps)", verify::eijk_check(ga, gb, opts, true));
  return 0;
}
