// Quickstart: formally retime the paper's figure-2 example circuit.
//
// Shows the whole HASH pipeline on one page:
//   1. build the netlist,
//   2. compile it into the Automata theory,
//   3. run the formal retiming step with the paper's cut f = {+1},
//   4. inspect the correctness theorem and the retimed netlist.

#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/retime_step.h"
#include "kernel/printer.h"
#include "theories/retiming_thm.h"

int main() {
  using namespace eda;

  // The universal retiming theorem — proved once and for all, inside the
  // kernel, by induction over time.
  kernel::Thm universal = thy::retiming_thm();
  std::printf("Universal retiming theorem (proved in the kernel):\n  %s\n\n",
              kernel::pretty(universal).c_str());

  // The example circuit of fig. 2 at 4 bits:
  //   y = (a = b) ? 0 : R + 1;   R' = y;   R init 0.
  bench_gen::Fig2 fig2 = bench_gen::make_fig2(4);
  hash::CompiledCircuit cc = hash::compile(fig2.rtl);
  std::printf("Compiled transition/output function h:\n  %s\n",
              kernel::pretty(cc.h).c_str());
  std::printf("Initial state q = %s\n\n", kernel::pretty(cc.q).c_str());

  // Formal retiming with the cut f = {+1} (fig. 3).
  hash::FormalRetimeResult res = hash::formal_retime(fig2.rtl, fig2.good_cut);
  std::printf("Sub-function the registers move across:\n  f = %s\n",
              kernel::pretty(res.f_term).c_str());
  std::printf("\nCorrectness theorem of this synthesis step:\n  %s\n\n",
              kernel::pretty(res.theorem).c_str());

  // The retimed netlist: the register moved past the incrementer and its
  // initial value became f(0) = 1.
  const circuit::Rtl& r = res.retimed;
  std::printf("Retimed netlist: %zu register(s), %d combinational node(s)\n",
              r.regs().size(), r.comb_node_count());
  std::printf("New initial value: %llu (was 0; f(0) = 0+1 = 1)\n\n",
              static_cast<unsigned long long>(r.node(r.regs()[0]).value));

  // Cross-check by simulation.
  bool same = circuit::simulation_equivalent(fig2.rtl, res.retimed, 1000, 1);
  std::printf("1000-cycle random simulation agreement: %s\n",
              same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}
