// End-to-end flow on a pipelined datapath: the conventional Leiserson–Saxe
// heuristic finds the min-period retiming, and the formal layer *performs*
// it — every register move is an instance of the universal theorem, the
// step theorems are composed by transitivity, and the final theorem
// relates the original netlist to the optimally retimed one.
//
// This demonstrates the paper's separation of concerns: "the heuristic has
// nothing to do with logic, and switching from one heuristic to another
// requires no change in the theorem or in the retiming procedure."

#include <cstdio>

#include "bench_gen/iwls.h"
#include "retime/elementary.h"
#include "retime/graph.h"
#include "theories/retiming_thm.h"

int main() {
  using namespace eda;
  thy::retiming_thm();

  // A front-loaded pipeline: both registers bunched at the input side, the
  // whole adder/multiplier/xor chain combinational behind them.  Balancing
  // needs only forward moves.
  circuit::Rtl rtl;
  auto x = rtl.add_input("x", 8);
  auto k = rtl.add_const(8, 0x1D);
  auto k2 = rtl.add_const(8, 0x5A);
  auto r1 = rtl.add_reg("r1", 8, 0);
  auto r2 = rtl.add_reg("r2", 8, 0);
  auto s1 = rtl.add_op(circuit::Op::Add, {r2, k});    // delay 2
  auto s2 = rtl.add_op(circuit::Op::Mul, {s1, s1});   // delay 4
  auto s3 = rtl.add_op(circuit::Op::Xor, {s2, k2});   // delay 1
  rtl.set_reg_next(r1, x);
  rtl.set_reg_next(r2, r1);
  rtl.add_output("y", s3);
  rtl.validate();

  int before = retime::clock_period(rtl);
  std::printf("clock period before retiming: %d\n", before);

  auto chain = retime::formal_min_period_retime(rtl);
  if (!chain) {
    std::printf("optimal retiming needs backward moves — not supported by "
                "the forward instantiation; stopping.\n");
    return 0;
  }
  int after = retime::clock_period(chain->final_rtl);
  std::printf("clock period after  retiming: %d (%d formal steps)\n", after,
              chain->steps);
  std::printf("correctness theorem hypotheses: %zu, oracles:",
              chain->theorem.hyps().size());
  for (const auto& tag : chain->theorem.oracles()) {
    std::printf(" %s", tag.c_str());
  }
  std::printf("\n");

  bool same =
      circuit::simulation_equivalent(rtl, chain->final_rtl, 500, 3);
  std::printf("simulation agreement: %s\n", same ? "yes" : "NO (bug!)");
  return same && after <= before ? 0 : 1;
}
