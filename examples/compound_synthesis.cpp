// Compound synthesis steps (paper, section III.A): a retiming step and a
// logic-minimisation step, each verified by construction, composed into a
// single correctness theorem by one transitivity rule.
//
// This is the capability the specialised post-synthesis verifiers lack:
// there is a dedicated checker for retiming and one for minimisation, but
// none for their composition — whereas in formal synthesis the compound
// theorem costs the sum of the parts.

#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/compound.h"
#include "hash/logic_opt.h"
#include "hash/retime_step.h"
#include "kernel/printer.h"
#include "theories/retiming_thm.h"

int main() {
  using namespace eda;
  thy::retiming_thm();

  bench_gen::Fig2 fig2 = bench_gen::make_fig2(6);

  // Step 1: retiming.
  hash::FormalRetimeResult rt = hash::formal_retime(fig2.rtl, fig2.good_cut);
  std::printf(
      "step 1 (retiming):     |- AUT h0 q0 = AUT h1 q1   [%d comb nodes]\n",
      rt.retimed.comb_node_count());

  // Step 2: logic minimisation of the retimed circuit.
  hash::FormalOptResult op = hash::formal_logic_opt(rt.retimed);
  std::printf(
      "step 2 (minimisation): |- AUT h1 q1 = AUT h2 q1   [%d comb nodes]\n",
      op.optimized.comb_node_count());

  // Composition: one TRANS application.
  kernel::Thm compound = hash::compose_steps(rt.theorem, op.theorem);
  std::printf("\ncompound theorem:\n  %s\n\n",
              kernel::pretty(compound).c_str());

  bool same = circuit::simulation_equivalent(fig2.rtl, op.optimized, 500, 2);
  std::printf("original vs final simulation agreement: %s\n",
              same ? "yes" : "NO (bug!)");
  std::printf("oracle provenance of the compound theorem:");
  for (const auto& tag : compound.oracles()) std::printf(" %s", tag.c_str());
  std::printf("\n");
  return same ? 0 : 1;
}
