// End-to-end FSM flow: KISS2 text -> state minimisation -> encoding ->
// synthesis to a netlist -> formal re-encoding and retiming with machine-
// checked correctness theorems, composed by transitivity.
//
// This is the "conventional synthesis heuristics outside the logic, formal
// transformation inside" division of the paper in one program: the FSM
// tools are ordinary unverified code; every netlist-level step after them
// returns a theorem.

#include <cstdio>

#include "fsm/encode.h"
#include "fsm/kiss2.h"
#include "fsm/minimize.h"
#include "hash/compound.h"
#include "hash/encode_step.h"
#include "hash/retime_step.h"
#include "kernel/printer.h"

int main() {
  using namespace eda;

  // A sequence detector with a duplicated state and an unreachable one,
  // as it might come out of a careless specification.
  const char* kiss =
      "# detect two consecutive ones\n"
      ".i 1\n.o 1\n.r idle\n"
      "0 idle idle    0\n"
      "1 idle one     0\n"
      "0 one  idle    0\n"
      "1 one  one_dup 1\n"
      "0 one_dup idle 0\n"
      "1 one_dup one_dup 1\n"
      "0 ghost idle   0\n"
      "1 ghost one    0\n"
      ".e\n";
  fsm::Fsm machine = fsm::parse_kiss2_string(kiss);
  std::printf("parsed KISS2: %d states, %zu rows\n", machine.state_count(),
              machine.transitions().size());

  fsm::MinimizeResult min = fsm::minimize(machine);
  std::printf("minimised:    %d states (duplicate merged, ghost dropped)\n",
              min.fsm.state_count());

  circuit::Rtl rtl = fsm::synthesize(min.fsm, fsm::Encoding::Binary);
  std::printf("synthesised:  %d comb nodes, %zu state register(s)\n",
              rtl.comb_node_count(), rtl.regs().size());
  if (!fsm::netlist_matches_fsm(rtl, min.fsm, 500, 42)) {
    std::printf("ERROR: netlist disagrees with the machine!\n");
    return 1;
  }

  // Formal value re-encoding of the state register (XOR mask 1 flips the
  // state polarity) — with a theorem, unlike the unverified FSM stage.
  hash::FormalEncodeResult enc = hash::formal_xor_reencode(rtl, {1});
  std::printf("\nre-encoded state register formally; theorem:\n  %s\n",
              kernel::pretty(enc.theorem).c_str());

  std::printf("\nthe conventional FSM stage is heuristic; the netlist "
              "stages carry proofs.\n");
  return 0;
}
