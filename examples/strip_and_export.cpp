// Redundancy elimination and netlist export: build a circuit that has
// accumulated dead state (a debug counter and an orphaned pipeline pair),
// remove it with a machine-checked proof, then export the result as BLIF
// and structural Verilog.
//
// The removal theorem is itself a compound derivation — permute the dead
// registers to the tail (ENCODING_THM), re-associate the state tuple
// (ENCODING_THM again), drop the dead component (DEAD_STATE_THM) — glued
// by the same transitivity rule as any other HASH step chain.

#include <cstdio>

#include "circuit/bitblast.h"
#include "hash/redundancy.h"
#include "io/blif.h"
#include "kernel/printer.h"

int main() {
  using namespace eda;
  using circuit::Op;

  circuit::Rtl rtl;
  auto i = rtl.add_input("i", 4);
  auto acc = rtl.add_reg("acc", 4, 1);
  auto dbg = rtl.add_reg("debug_ctr", 4, 0);     // free-running, never read
  auto p = rtl.add_reg("orphan_a", 4, 5);        // reads orphan_b
  auto q = rtl.add_reg("orphan_b", 4, 6);        // reads orphan_a
  rtl.set_reg_next(acc, rtl.add_op(Op::Add, {acc, i}));
  rtl.set_reg_next(dbg, rtl.add_op(Op::Add, {dbg, rtl.add_const(4, 1)}));
  rtl.set_reg_next(p, rtl.add_op(Op::Xor, {q, i}));
  rtl.set_reg_next(q, rtl.add_op(Op::Add, {p, rtl.add_const(4, 2)}));
  rtl.add_output("y", rtl.add_op(Op::Or, {acc, i}));
  rtl.validate();

  std::printf("before: %zu registers, %d comb nodes\n", rtl.regs().size(),
              rtl.comb_node_count());

  hash::FormalDeadRemovalResult res = hash::formal_remove_dead_registers(rtl);
  std::printf("after:  %zu register(s), %d comb nodes — removed:",
              res.stripped.regs().size(), res.stripped.comb_node_count());
  for (auto r : res.removed) std::printf(" %s", rtl.node(r).name.c_str());
  std::printf("\n\ncorrectness theorem (pure — no oracle needed):\n  %s\n",
              kernel::pretty(res.theorem).c_str());

  circuit::GateNetlist gates = circuit::bit_blast(res.stripped);
  std::printf("\nbit-blasted: %d gates, %d flip-flops\n", gates.gate_count(),
              gates.ff_count());

  std::string blif = io::write_blif(gates, "stripped");
  std::printf("\n--- BLIF (first lines) ---\n");
  std::size_t shown = 0, pos = 0;
  while (shown < 8 && pos != std::string::npos) {
    auto next = blif.find('\n', pos);
    std::printf("%s\n", blif.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
    ++shown;
  }
  std::printf("... (%zu bytes total; Verilog export: %zu bytes)\n",
              blif.size(),
              io::write_verilog(gates, "stripped").size());
  return 0;
}
