// Backward retiming: the direction the paper calls "more complex since one
// has to find the q's corresponding to some expression representing f(q)".
//
// We forward-retime the figure-2 circuit, then move the register *back*
// across the incrementer.  The interesting part is step 2: the solver has
// to invert f to find the pre-image initial value, and the formal step
// re-proves f(q0) = q inside the logic, so a buggy solver can fail but
// never lie.  Finally the two theorems compose into |- AUT h q = AUT h q.

#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/backward.h"
#include "hash/compound.h"
#include "hash/retime_step.h"
#include "kernel/printer.h"

int main() {
  using namespace eda;

  bench_gen::Fig2 fig2 = bench_gen::make_fig2(4);
  std::printf("original:  %d comb nodes, %zu register(s), init value %llu\n",
              fig2.rtl.comb_node_count(), fig2.rtl.regs().size(),
              static_cast<unsigned long long>(
                  fig2.rtl.node(fig2.rtl.regs()[0]).value));

  // Forward: move the register across the incrementer (f = {+1}).
  hash::FormalRetimeResult fwd = hash::formal_retime(fig2.rtl, fig2.good_cut);
  std::printf(
      "forward:   register now holds the incremented value, init %llu\n",
      static_cast<unsigned long long>(
          fwd.retimed.node(fwd.retimed.regs()[0]).value));

  // Backward: the inverse cut on the retimed netlist.
  hash::RetimeMapping map =
      hash::conventional_retime_mapped(fig2.rtl, fig2.good_cut);
  hash::BackwardCut inv = hash::inverse_of_forward_cut(map, fig2.good_cut);
  hash::FormalBackwardResult bwd =
      hash::formal_backward_retime(fwd.retimed, inv);
  std::printf("backward:  solver found q0 = %llu with f(q0) proved equal to "
              "the register contents\n",
              static_cast<unsigned long long>(bwd.q0[0]));

  // Compose: one transitivity application, constant cost.
  kernel::Thm round_trip = hash::compose_steps(fwd.theorem, bwd.theorem);
  std::printf("\ncomposed theorem (forward then backward):\n  %s\n",
              kernel::pretty(round_trip).c_str());

  // A register holding a value outside the image of f has no yesterday:
  // backward retiming across "x & 0" must fail, and does so *before* any
  // incorrect theorem can exist.
  circuit::Rtl dead_end;
  auto i = dead_end.add_input("i", 4);
  auto r = dead_end.add_reg("R", 4, 1);
  auto gate = dead_end.add_op(circuit::Op::And,
                              {r, dead_end.add_const(4, 0)});
  dead_end.set_reg_next(r, gate);
  dead_end.add_output("y", dead_end.add_op(circuit::Op::Or, {r, i}));
  try {
    hash::formal_backward_retime(dead_end, hash::BackwardCut{{gate}});
    std::printf("\nERROR: impossible backward retiming was accepted!\n");
    return 1;
  } catch (const hash::BackwardError& e) {
    std::printf("\nimpossible move correctly rejected:\n  %s\n", e.what());
  }
  return 0;
}
