// The paper's figure-4 scenario: a *wrong* cut from a faulty heuristic.
//
// Choosing f = {comparator, mux} makes f depend on the primary inputs and
// on the incrementer (a g-node), so the combinational part cannot be split
// into the pattern of the universal theorem.  The formal synthesis step
// raises an exception — and, crucially, no theorem (and hence no circuit)
// is ever produced.  A faulty heuristic can waste time, never correctness.

#include <cstdio>

#include "bench_gen/fig2.h"
#include "hash/retime_step.h"

int main() {
  using namespace eda;
  bench_gen::Fig2 fig2 = bench_gen::make_fig2(8);

  std::printf("Attempting retiming with the false cut {comparator, mux} "
              "(paper, fig. 4)...\n\n");
  try {
    hash::FormalRetimeResult res =
        hash::formal_retime(fig2.rtl, fig2.false_cut);
    (void)res;
    std::printf("UNEXPECTED: the false cut produced a theorem!\n");
    return 1;
  } catch (const hash::CutError& e) {
    std::printf("Rejected, as the LCF discipline demands:\n  %s\n\n",
                e.what());
  }

  std::printf("Retrying with the legal cut {+1} (fig. 3)...\n");
  hash::FormalRetimeResult ok = hash::formal_retime(fig2.rtl, fig2.good_cut);
  std::printf("Success: theorem with %zu hypotheses derived; retimed "
              "netlist has %zu register(s).\n",
              ok.theorem.hyps().size(), ok.retimed.regs().size());
  return 0;
}
