#include "fsm/encode.h"

#include <random>

namespace eda::fsm {

using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;

const char* encoding_name(Encoding e) {
  switch (e) {
    case Encoding::Binary: return "binary";
    case Encoding::Gray: return "gray";
    case Encoding::OneHot: return "one-hot";
  }
  return "?";
}

namespace {

int binary_width(int n) {
  int w = 1;
  while ((1 << w) < n) ++w;
  return w;
}

}  // namespace

std::vector<std::uint64_t> state_codes(const Fsm& fsm, Encoding enc) {
  const int n = fsm.state_count();
  std::vector<std::uint64_t> codes(static_cast<std::size_t>(n));
  switch (enc) {
    case Encoding::Binary:
      for (int s = 0; s < n; ++s) {
        codes[static_cast<std::size_t>(s)] = static_cast<std::uint64_t>(s);
      }
      break;
    case Encoding::Gray:
      for (int s = 0; s < n; ++s) {
        auto u = static_cast<std::uint64_t>(s);
        codes[static_cast<std::size_t>(s)] = u ^ (u >> 1);
      }
      break;
    case Encoding::OneHot:
      if (n > 63) throw FsmError("state_codes: one-hot limited to 63 states");
      for (int s = 0; s < n; ++s) {
        codes[static_cast<std::size_t>(s)] = 1ULL << s;
      }
      break;
  }
  return codes;
}

Rtl synthesize(const Fsm& fsm, Encoding enc) {
  fsm.validate_deterministic();
  const int n = fsm.state_count();
  const int sw = enc == Encoding::OneHot ? n : binary_width(n);
  std::vector<std::uint64_t> codes = state_codes(fsm, enc);

  Rtl rtl;
  SignalId in = rtl.add_input("in", fsm.input_bits());
  SignalId st = rtl.add_reg(
      "state", sw, codes[static_cast<std::size_t>(fsm.reset_state())]);

  // Priority-mux chains over the rows, last row lowest priority.  For a
  // complete deterministic machine exactly one guard fires per cycle, so
  // the base values (hold state / emit 0) are never selected.
  SignalId next = st;
  SignalId out = rtl.add_const(fsm.output_bits(), 0);
  const auto& rows = fsm.transitions();
  for (std::size_t k = rows.size(); k-- > 0;) {
    const Transition& t = rows[k];
    // state == code(from)
    SignalId eq_state = rtl.add_op(
        Op::Eq,
        {st, rtl.add_const(sw, codes[static_cast<std::size_t>(t.from)])});
    // in & care == pattern
    std::uint64_t care = 0, bits = 0;
    const std::size_t w = t.in_pattern.size();
    for (std::size_t j = 0; j < w; ++j) {
      char ch = t.in_pattern[j];
      if (ch == '-') continue;
      care |= 1ULL << (w - 1 - j);
      if (ch == '1') bits |= 1ULL << (w - 1 - j);
    }
    SignalId masked =
        rtl.add_op(Op::And, {in, rtl.add_const(fsm.input_bits(), care)});
    SignalId eq_in =
        rtl.add_op(Op::Eq, {masked, rtl.add_const(fsm.input_bits(), bits)});
    SignalId cond = rtl.add_op(Op::FlagAnd, {eq_state, eq_in});
    next = rtl.add_op(
        Op::Mux,
        {cond, rtl.add_const(sw, codes[static_cast<std::size_t>(t.to)]),
         next});
    out = rtl.add_op(
        Op::Mux,
        {cond, rtl.add_const(fsm.output_bits(), Fsm::output_value(t)), out});
  }
  rtl.set_reg_next(st, next);
  rtl.add_output("out", out);
  rtl.validate();
  return rtl;
}

bool netlist_matches_fsm(const Rtl& rtl, const Fsm& fsm, int cycles,
                         std::uint32_t seed) {
  circuit::Simulator sim(rtl);
  sim.reset();
  std::mt19937 rng(seed);
  std::uint64_t in_mask = (1ULL << fsm.input_bits()) - 1;
  std::vector<std::uint64_t> ins;
  ins.reserve(static_cast<std::size_t>(cycles));
  for (int k = 0; k < cycles; ++k) ins.push_back(rng() & in_mask);
  std::vector<std::uint64_t> want = fsm.simulate(ins);
  for (int k = 0; k < cycles; ++k) {
    std::vector<std::uint64_t> got =
        sim.step({ins[static_cast<std::size_t>(k)]});
    if (got.size() != 1 || got[0] != want[static_cast<std::size_t>(k)]) {
      return false;
    }
  }
  return true;
}

}  // namespace eda::fsm
