#include "fsm/kiss2.h"

#include <sstream>
#include <vector>

namespace eda::fsm {

namespace {

struct Row {
  std::string in, from, to, out;
};

}  // namespace

Fsm parse_kiss2(std::istream& in) {
  int ibits = -1, obits = -1;
  std::string reset_name;
  std::vector<Row> rows;

  std::string line;
  while (std::getline(in, line)) {
    // Strip comments and whitespace.
    if (auto pos = line.find('#'); pos != std::string::npos) {
      line.erase(pos);
    }
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == ".i") {
      ls >> ibits;
    } else if (tok == ".o") {
      ls >> obits;
    } else if (tok == ".p" || tok == ".s") {
      int ignored;
      ls >> ignored;  // row/state counts are recomputed
    } else if (tok == ".r") {
      ls >> reset_name;
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      throw FsmError("parse_kiss2: unknown directive '" + tok + "'");
    } else {
      Row r;
      r.in = tok;
      if (!(ls >> r.from >> r.to >> r.out)) {
        throw FsmError("parse_kiss2: malformed row '" + line + "'");
      }
      rows.push_back(std::move(r));
    }
  }
  if (ibits < 1 || obits < 1) {
    throw FsmError("parse_kiss2: missing .i or .o directive");
  }

  Fsm fsm(ibits, obits);
  for (const Row& r : rows) {
    StateId from = fsm.add_state(r.from);
    StateId to = fsm.add_state(r.to);
    fsm.add_transition(r.in, from, to, r.out);
  }
  if (fsm.state_count() == 0) throw FsmError("parse_kiss2: no transitions");
  if (!reset_name.empty() && reset_name != "*") {
    auto s = fsm.find_state(reset_name);
    if (!s) {
      throw FsmError("parse_kiss2: reset state '" + reset_name +
                     "' never appears in a row");
    }
    fsm.set_reset_state(*s);
  }
  return fsm;
}

Fsm parse_kiss2_string(const std::string& text) {
  std::istringstream in(text);
  return parse_kiss2(in);
}

std::string write_kiss2(const Fsm& fsm) {
  std::ostringstream out;
  out << ".i " << fsm.input_bits() << "\n";
  out << ".o " << fsm.output_bits() << "\n";
  out << ".p " << fsm.transitions().size() << "\n";
  out << ".s " << fsm.state_count() << "\n";
  out << ".r " << fsm.state_name(fsm.reset_state()) << "\n";
  for (const Transition& t : fsm.transitions()) {
    out << t.in_pattern << ' ' << fsm.state_name(t.from) << ' '
        << fsm.state_name(t.to) << ' ' << t.out_pattern << "\n";
  }
  out << ".e\n";
  return out.str();
}

}  // namespace eda::fsm
