#pragma once

#include "fsm/fsm.h"

namespace eda::fsm {

/// Result of state minimisation: the reduced machine plus the class each
/// original state fell into (class ids are the new machine's state ids;
/// unreachable states map to -1).
struct MinimizeResult {
  Fsm fsm;
  std::vector<StateId> state_class;
};

/// Remove states unreachable from reset, keeping names and row order.
Fsm remove_unreachable(const Fsm& in);

/// Classic Moore partition refinement on the reachable sub-machine:
/// initial partition by per-input output rows, refined by successor blocks
/// to the coarsest bisimulation.  The result is the unique minimal
/// deterministic machine; `fsm_equivalent(in, out)` always holds and is
/// asserted by the tests.  Exponential only in input bits (<= 16 by class
/// invariant), linear-ish in states x inputs per round.
MinimizeResult minimize(const Fsm& in);

}  // namespace eda::fsm
