#include "fsm/fsm.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

namespace eda::fsm {

Fsm::Fsm(int input_bits, int output_bits)
    : input_bits_(input_bits), output_bits_(output_bits) {
  if (input_bits < 1 || input_bits > 16) {
    throw FsmError("Fsm: input_bits must be in [1, 16]");
  }
  if (output_bits < 1 || output_bits > 63) {
    throw FsmError("Fsm: output_bits must be in [1, 63]");
  }
}

StateId Fsm::add_state(const std::string& name) {
  if (auto s = find_state(name)) return *s;
  names_.push_back(name);
  return static_cast<StateId>(names_.size()) - 1;
}

std::optional<StateId> Fsm::find_state(const std::string& name) const {
  for (std::size_t k = 0; k < names_.size(); ++k) {
    if (names_[k] == name) return static_cast<StateId>(k);
  }
  return std::nullopt;
}

void Fsm::add_transition(const std::string& in_pattern, StateId from,
                         StateId to, const std::string& out_pattern) {
  if (static_cast<int>(in_pattern.size()) != input_bits_) {
    throw FsmError("add_transition: input pattern '" + in_pattern +
                   "' has wrong width");
  }
  if (static_cast<int>(out_pattern.size()) != output_bits_) {
    throw FsmError("add_transition: output pattern '" + out_pattern +
                   "' has wrong width");
  }
  auto check = [](const std::string& p) {
    for (char ch : p) {
      if (ch != '0' && ch != '1' && ch != '-') {
        throw FsmError(std::string("add_transition: bad pattern char '") +
                       ch + "'");
      }
    }
  };
  check(in_pattern);
  check(out_pattern);
  if (from < 0 || from >= state_count() || to < 0 || to >= state_count()) {
    throw FsmError("add_transition: state out of range");
  }
  rows_.push_back(Transition{in_pattern, from, to, out_pattern});
}

void Fsm::set_reset_state(StateId s) {
  if (s < 0 || s >= state_count()) {
    throw FsmError("set_reset_state: out of range");
  }
  reset_ = s;
}

const std::string& Fsm::state_name(StateId s) const {
  if (s < 0 || s >= state_count()) throw FsmError("state_name: out of range");
  return names_[static_cast<std::size_t>(s)];
}

bool Fsm::matches(const std::string& pattern, std::uint64_t bits) {
  const std::size_t w = pattern.size();
  for (std::size_t k = 0; k < w; ++k) {
    char ch = pattern[k];
    if (ch == '-') continue;
    std::uint64_t bit = (bits >> (w - 1 - k)) & 1;  // MSB first
    if ((ch == '1') != (bit == 1)) return false;
  }
  return true;
}

const Transition& Fsm::step(StateId s, std::uint64_t bits) const {
  for (const Transition& t : rows_) {
    if (t.from == s && matches(t.in_pattern, bits)) return t;
  }
  throw FsmError("step: no transition from state '" + state_name(s) +
                 "' on input " + std::to_string(bits) +
                 " (incomplete machine)");
}

std::uint64_t Fsm::output_value(const Transition& t) {
  std::uint64_t v = 0;
  for (char ch : t.out_pattern) v = (v << 1) | (ch == '1' ? 1 : 0);
  return v;
}

void Fsm::validate_deterministic() const {
  const std::uint64_t space = 1ULL << input_bits_;
  for (StateId s = 0; s < state_count(); ++s) {
    for (std::uint64_t in = 0; in < space; ++in) {
      int hits = 0;
      for (const Transition& t : rows_) {
        if (t.from == s && matches(t.in_pattern, in)) ++hits;
      }
      if (hits == 0) {
        throw FsmError("validate: state '" + state_name(s) +
                       "' has no transition on input " + std::to_string(in));
      }
      if (hits > 1) {
        throw FsmError("validate: state '" + state_name(s) +
                       "' has overlapping rows on input " +
                       std::to_string(in));
      }
    }
  }
}

std::vector<StateId> Fsm::reachable_states() const {
  const std::uint64_t space = 1ULL << input_bits_;
  std::set<StateId> seen{reset_};
  std::deque<StateId> work{reset_};
  while (!work.empty()) {
    StateId s = work.front();
    work.pop_front();
    for (std::uint64_t in = 0; in < space; ++in) {
      StateId nxt = step(s, in).to;
      if (seen.insert(nxt).second) work.push_back(nxt);
    }
  }
  return {seen.begin(), seen.end()};
}

std::vector<std::uint64_t> Fsm::simulate(
    const std::vector<std::uint64_t>& ins) const {
  std::vector<std::uint64_t> outs;
  outs.reserve(ins.size());
  StateId s = reset_;
  for (std::uint64_t in : ins) {
    const Transition& t = step(s, in);
    outs.push_back(output_value(t));
    s = t.to;
  }
  return outs;
}

bool fsm_equivalent(const Fsm& a, const Fsm& b) {
  if (a.input_bits() != b.input_bits() ||
      a.output_bits() != b.output_bits()) {
    return false;
  }
  const std::uint64_t space = 1ULL << a.input_bits();
  std::set<std::pair<StateId, StateId>> seen;
  std::deque<std::pair<StateId, StateId>> work;
  work.emplace_back(a.reset_state(), b.reset_state());
  seen.insert(work.front());
  while (!work.empty()) {
    auto [sa, sb] = work.front();
    work.pop_front();
    for (std::uint64_t in = 0; in < space; ++in) {
      const Transition& ta = a.step(sa, in);
      const Transition& tb = b.step(sb, in);
      if (Fsm::output_value(ta) != Fsm::output_value(tb)) return false;
      auto nxt = std::make_pair(ta.to, tb.to);
      if (seen.insert(nxt).second) work.push_back(nxt);
    }
  }
  return true;
}

}  // namespace eda::fsm
