#pragma once

#include "circuit/rtl.h"
#include "fsm/fsm.h"

namespace eda::fsm {

/// State-assignment styles for FSM synthesis.  The choice changes the
/// register count and the combinational structure but never the behaviour
/// — the synthesis tests check all styles against the symbolic machine,
/// and the formal XOR/permutation steps can re-code the result further.
enum class Encoding {
  Binary,  // ceil(log2 n) bits, states numbered in id order
  Gray,    // ceil(log2 n) bits, reflected Gray sequence
  OneHot,  // n bits, bit k set for state k
};

const char* encoding_name(Encoding e);

/// The code assigned to each state under an encoding.
std::vector<std::uint64_t> state_codes(const Fsm& fsm, Encoding enc);

/// Synthesise the machine to a word-level netlist:
///   input  "in"    : input_bits wide
///   output "out"   : output_bits wide
///   one state register ("state", reset state's code as initial value)
/// Transition rows become priority-mux chains guarded by
///   (state == code(from)) AND (in & care_mask == pattern_bits).
/// The resulting Rtl feeds directly into the formal synthesis steps
/// (retiming, re-encoding, dead-register removal).
circuit::Rtl synthesize(const Fsm& fsm, Encoding enc);

/// Run the netlist and the symbolic machine side by side on a random
/// input stream and compare outputs (the synthesis correctness oracle).
bool netlist_matches_fsm(const circuit::Rtl& rtl, const Fsm& fsm,
                         int cycles, std::uint32_t seed);

}  // namespace eda::fsm
