#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/error.h"

namespace eda::fsm {

class FsmError : public kernel::KernelError {
 public:
  explicit FsmError(const std::string& what) : kernel::KernelError(what) {}
};

/// State index within an Fsm.
using StateId = int;

/// One row of a KISS2-style transition table.  `in_pattern` is a string of
/// '0'/'1'/'-' over the input bits (MSB first, length = input_bits);
/// `out_pattern` likewise over the output bits, except that '-' in an
/// output means "unspecified" and is emitted as 0.
struct Transition {
  std::string in_pattern;
  StateId from = -1;
  StateId to = -1;
  std::string out_pattern;
};

/// An explicit Mealy machine in the style of the SIS/KISS2 ecosystem the
/// paper's baselines come from: named symbolic states, bit-vector inputs
/// and outputs, pattern-matched transitions.  This is the substrate for
/// state minimisation and state encoding — the two Automata-theory
/// transformations the paper lists besides retiming — and for the
/// IWLS-style controller benchmarks.
class Fsm {
 public:
  Fsm(int input_bits, int output_bits);

  /// Add (or look up) a state by name; returns its id.
  StateId add_state(const std::string& name);
  std::optional<StateId> find_state(const std::string& name) const;

  void add_transition(const std::string& in_pattern, StateId from,
                      StateId to, const std::string& out_pattern);

  void set_reset_state(StateId s);
  StateId reset_state() const { return reset_; }

  int input_bits() const { return input_bits_; }
  int output_bits() const { return output_bits_; }
  int state_count() const { return static_cast<int>(names_.size()); }
  const std::string& state_name(StateId s) const;
  const std::vector<Transition>& transitions() const { return rows_; }

  /// True when `bits` (an input valuation) matches the pattern.
  static bool matches(const std::string& pattern, std::uint64_t bits);

  /// The transition taken from `s` on concrete input `bits`: the unique
  /// matching row.  Throws FsmError when no row matches (incomplete
  /// machine); `validate_deterministic` rejects overlapping rows upfront.
  const Transition& step(StateId s, std::uint64_t bits) const;

  /// Output bits emitted by a transition ('-' = 0).
  static std::uint64_t output_value(const Transition& t);

  /// Check every (state, input) pair resolves to at most one row and that
  /// the machine is complete (every pair has a row).  Exponential in
  /// input_bits; guarded to <= 16 bits, which covers every benchmark here.
  void validate_deterministic() const;

  /// States reachable from the reset state (BFS over concrete inputs).
  std::vector<StateId> reachable_states() const;

  /// Run the machine on an input stream from the reset state.
  std::vector<std::uint64_t> simulate(
      const std::vector<std::uint64_t>& ins) const;

 private:
  int input_bits_;
  int output_bits_;
  StateId reset_ = 0;
  std::vector<std::string> names_;
  std::vector<Transition> rows_;
};

/// I/O-equivalence of two machines by BFS over the product of reachable
/// state pairs and all concrete inputs (exact, exponential in input bits;
/// the cross-check oracle for minimisation and encoding tests).
bool fsm_equivalent(const Fsm& a, const Fsm& b);

}  // namespace eda::fsm
