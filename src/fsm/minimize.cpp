#include "fsm/minimize.h"

#include <algorithm>
#include <map>
#include <set>

namespace eda::fsm {

Fsm remove_unreachable(const Fsm& in) {
  std::vector<StateId> reach = in.reachable_states();
  std::set<StateId> keep(reach.begin(), reach.end());
  Fsm out(in.input_bits(), in.output_bits());
  std::map<StateId, StateId> remap;
  for (StateId s = 0; s < in.state_count(); ++s) {
    if (keep.count(s) > 0) remap[s] = out.add_state(in.state_name(s));
  }
  for (const Transition& t : in.transitions()) {
    if (keep.count(t.from) > 0 && keep.count(t.to) > 0) {
      out.add_transition(t.in_pattern, remap.at(t.from), remap.at(t.to),
                         t.out_pattern);
    }
  }
  out.set_reset_state(remap.at(in.reset_state()));
  return out;
}

MinimizeResult minimize(const Fsm& in) {
  in.validate_deterministic();
  Fsm r = remove_unreachable(in);
  const int n = r.state_count();
  const std::uint64_t space = 1ULL << r.input_bits();

  // Pre-resolve the transition function on concrete inputs.
  std::vector<std::vector<StateId>> next(
      static_cast<std::size_t>(n), std::vector<StateId>(space));
  std::vector<std::vector<std::uint64_t>> outv(
      static_cast<std::size_t>(n), std::vector<std::uint64_t>(space));
  for (StateId s = 0; s < n; ++s) {
    for (std::uint64_t i = 0; i < space; ++i) {
      const Transition& t = r.step(s, i);
      next[static_cast<std::size_t>(s)][i] = t.to;
      outv[static_cast<std::size_t>(s)][i] = Fsm::output_value(t);
    }
  }

  // Initial partition: states with identical output rows share a block.
  std::vector<int> block(static_cast<std::size_t>(n));
  {
    std::map<std::vector<std::uint64_t>, int> sig;
    for (StateId s = 0; s < n; ++s) {
      auto [it, inserted] =
          sig.emplace(outv[static_cast<std::size_t>(s)],
                      static_cast<int>(sig.size()));
      block[static_cast<std::size_t>(s)] = it->second;
    }
  }

  // Refine: split blocks whose members disagree on successor blocks.
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::pair<int, std::vector<int>>, int> sig;
    std::vector<int> nb(static_cast<std::size_t>(n));
    for (StateId s = 0; s < n; ++s) {
      std::vector<int> succ(space);
      for (std::uint64_t i = 0; i < space; ++i) {
        succ[i] = block[static_cast<std::size_t>(
            next[static_cast<std::size_t>(s)][i])];
      }
      auto key = std::make_pair(block[static_cast<std::size_t>(s)],
                                std::move(succ));
      auto [it, inserted] = sig.emplace(std::move(key),
                                        static_cast<int>(sig.size()));
      nb[static_cast<std::size_t>(s)] = it->second;
    }
    if (nb != block) {
      block = std::move(nb);
      changed = true;
    }
  }

  // Build the quotient machine: one state per block, representative rows.
  int nblocks = *std::max_element(block.begin(), block.end()) + 1;
  Fsm out(r.input_bits(), r.output_bits());
  std::vector<StateId> rep(static_cast<std::size_t>(nblocks), -1);
  for (StateId s = 0; s < n; ++s) {
    int b = block[static_cast<std::size_t>(s)];
    if (rep[static_cast<std::size_t>(b)] < 0) {
      rep[static_cast<std::size_t>(b)] = s;
      out.add_state(r.state_name(s));
    }
  }
  for (int b = 0; b < nblocks; ++b) {
    StateId s = rep[static_cast<std::size_t>(b)];
    for (const Transition& t : r.transitions()) {
      if (t.from != s) continue;
      out.add_transition(t.in_pattern, b,
                         block[static_cast<std::size_t>(t.to)],
                         t.out_pattern);
    }
  }
  out.set_reset_state(block[static_cast<std::size_t>(r.reset_state())]);

  // Class map back onto the *input* machine's ids (unreachable -> -1).
  MinimizeResult res{std::move(out), std::vector<StateId>(
                                         static_cast<std::size_t>(
                                             in.state_count()), -1)};
  std::map<std::string, StateId> by_name;
  for (StateId s = 0; s < r.state_count(); ++s) by_name[r.state_name(s)] = s;
  for (StateId s = 0; s < in.state_count(); ++s) {
    auto it = by_name.find(in.state_name(s));
    if (it != by_name.end()) {
      res.state_class[static_cast<std::size_t>(s)] =
          block[static_cast<std::size_t>(it->second)];
    }
  }
  return res;
}

}  // namespace eda::fsm
