#pragma once

#include <iosfwd>
#include <string>

#include "fsm/fsm.h"

namespace eda::fsm {

/// KISS2 is the FSM interchange format of the SIS ecosystem (the paper's
/// baseline [13]); the IWLS'91 controllers circulated in it.  Supported
/// directives: .i .o .p .s .r and transition rows
///   <in-pattern> <from> <to> <out-pattern>
/// with '*' accepted as an alias for the reset state in .r, '#' comments
/// and blank lines ignored, and .e terminating the description.
Fsm parse_kiss2(std::istream& in);
Fsm parse_kiss2_string(const std::string& text);

/// Serialise a machine back to KISS2 (states by name, reset in .r).
std::string write_kiss2(const Fsm& fsm);

}  // namespace eda::fsm
