#include "theories/pair_theory.h"

#include "kernel/once.h"
#include "kernel/signature.h"
#include "logic/rewrite.h"

namespace eda::thy {

using kernel::alpha_ty;
using kernel::beta_ty;
using kernel::bool_ty;
using kernel::fun_ty;
using kernel::KernelError;
using kernel::mk_eq;
using kernel::prod_ty;
using kernel::Signature;
using logic::mk_forall;

void init_pair() {
  // Thread-safe, re-entry-tolerant one-time init (kernel/once.h).
  static kernel::InitOnce once;
  once.run([] {
    logic::init_bool();
    Signature& sig = Signature::instance();

    Type a = alpha_ty(), b = beta_ty();
    sig.declare_type("prod", 2);
    sig.declare_const(",", fun_ty(a, fun_ty(b, prod_ty(a, b))));
    sig.declare_const("FST", fun_ty(prod_ty(a, b), a));
    sig.declare_const("SND", fun_ty(prod_ty(a, b), b));

    Term x = Term::var("x", a);
    Term y = Term::var("y", b);
    Term xy = mk_pair(x, y);
    sig.new_axiom("FST_PAIR", mk_forall(x, mk_forall(y, mk_eq(mk_fst(xy), x))));
    sig.new_axiom("SND_PAIR", mk_forall(x, mk_forall(y, mk_eq(mk_snd(xy), y))));
    Term p = Term::var("p", prod_ty(a, b));
    sig.new_axiom("PAIR_SURJ",
                  mk_forall(p, mk_eq(mk_pair(mk_fst(p), mk_snd(p)), p)));

    // UNCURRY = \f p. f (FST p) (SND p)
    Type c = kernel::gamma_ty();
    Term f = Term::var("f", fun_ty(a, fun_ty(b, c)));
    Term fp = Term::comb(Term::comb(f, mk_fst(p)), mk_snd(p));
    sig.new_definition("UNCURRY", Term::abs(f, Term::abs(p, fp)));
  });
}

Term mk_pair(const Term& a, const Term& b) {
  init_pair();
  Type ct = fun_ty(a.type(), fun_ty(b.type(), prod_ty(a.type(), b.type())));
  return Term::comb(Term::comb(Term::constant(",", ct), a), b);
}

bool is_pair(const Term& t) {
  return t.is_comb() && t.rator().is_comb() && t.rator().rator().is_const() &&
         t.rator().rator().name() == ",";
}

std::pair<Term, Term> dest_pair(const Term& t) {
  if (!is_pair(t)) throw KernelError("dest_pair: not a pair: " + t.to_string());
  return {t.rator().rand(), t.rand()};
}

Term mk_tuple(const std::vector<Term>& ts) {
  if (ts.empty()) throw KernelError("mk_tuple: empty tuple");
  Term out = ts.back();
  for (std::size_t i = ts.size() - 1; i-- > 0;) out = mk_pair(ts[i], out);
  return out;
}

Term mk_fst(const Term& p) {
  init_pair();
  if (!kernel::is_prod_ty(p.type())) {
    throw KernelError("mk_fst: not a product: " + p.type().to_string());
  }
  Type ct = fun_ty(p.type(), kernel::fst_ty(p.type()));
  return Term::comb(Term::constant("FST", ct), p);
}

Term mk_snd(const Term& p) {
  init_pair();
  if (!kernel::is_prod_ty(p.type())) {
    throw KernelError("mk_snd: not a product: " + p.type().to_string());
  }
  Type ct = fun_ty(p.type(), kernel::snd_ty(p.type()));
  return Term::comb(Term::constant("SND", ct), p);
}

Thm fst_pair() {
  init_pair();
  return Signature::instance().theorem("FST_PAIR");
}

Thm snd_pair() {
  init_pair();
  return Signature::instance().theorem("SND_PAIR");
}

Thm pair_surj() {
  init_pair();
  return Signature::instance().theorem("PAIR_SURJ");
}

const logic::Conv& pair_reduce_conv() {
  // Leaked like the kernel interners: the conv captures theorems whose
  // terms live in the permanent arena anyway.
  static const logic::Conv* c = new logic::Conv(logic::top_depth_conv(
      logic::orelsec(logic::beta_conv,
                     logic::orelsec(logic::rewr_conv(fst_pair()),
                                    logic::rewr_conv(snd_pair())))));
  return *c;
}

}  // namespace eda::thy
