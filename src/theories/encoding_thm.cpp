#include "theories/encoding_thm.h"

#include "kernel/signature.h"
#include "logic/bool_thms.h"
#include "logic/conv.h"
#include "logic/rewrite.h"

namespace eda::thy {

using kernel::alpha_ty;
using kernel::beta_ty;
using kernel::delta_ty;
using kernel::fun_ty;
using kernel::gamma_ty;
using kernel::KernelError;
using kernel::mk_eq;
using kernel::num_ty;
using kernel::prod_ty;
using kernel::Signature;
using kernel::Term;
using kernel::Thm;
using kernel::Type;
using logic::ap_term;
using logic::conv_concl_rhs;
using logic::gen_list;
using logic::once_depth_conv;
using logic::rewr_conv;
using logic::pspec_list;
using logic::sym;
using logic::thenc;

namespace {

/// beta followed by reduction of FST/SND applied to literal pairs — the
/// workhorse for "applying" the lambda-shaped transition functions.
const logic::Conv& apply_reduce() { return pair_reduce_conv(); }

/// The FST constant at pair type x # y (as a function term, for AP_TERM).
Term fst_at(const Type& x, const Type& y) {
  return mk_fst(Term::var("_p", prod_ty(x, y))).rator();
}

}  // namespace

Term mk_encoded_h(const Term& enc, const Term& dec, const Term& h) {
  // enc : c -> d,  dec : d -> c,  h : (a#c) -> (b#c);  h' : (a#d) -> (b#d).
  Type c = kernel::dom_ty(enc.type());
  Type d = kernel::cod_ty(enc.type());
  if (kernel::dom_ty(dec.type()) != d || kernel::cod_ty(dec.type()) != c) {
    throw KernelError("mk_encoded_h: dec must invert enc's typing");
  }
  Type hdom = kernel::dom_ty(h.type());
  Type a = kernel::fst_ty(hdom);
  if (kernel::snd_ty(hdom) != c) {
    throw KernelError("mk_encoded_h: h's state type must be enc's domain");
  }
  Term p = Term::var("p", prod_ty(a, d));
  Term happ = Term::comb(
      h, mk_pair(mk_fst(p), Term::comb(dec, mk_snd(p))));
  Term body = mk_pair(mk_fst(happ), Term::comb(enc, mk_snd(happ)));
  return Term::abs(p, body);
}

Term mk_padded_h(const Term& h, const Term& hd) {
  // h : (a#c) -> (b#c),  hd : (a#(c#e)) -> e;  h2 : (a#(c#e)) -> (b#(c#e)).
  Type hdom = kernel::dom_ty(h.type());
  Type a = kernel::fst_ty(hdom);
  Type c = kernel::snd_ty(hdom);
  Type hddom = kernel::dom_ty(hd.type());
  Type e = kernel::cod_ty(hd.type());
  if (kernel::fst_ty(hddom) != a ||
      kernel::fst_ty(kernel::snd_ty(hddom)) != c ||
      kernel::snd_ty(kernel::snd_ty(hddom)) != e) {
    throw KernelError("mk_padded_h: hd must read (input # (live # dead))");
  }
  Term p = Term::var("p", prod_ty(a, prod_ty(c, e)));
  Term happ = Term::comb(
      h, mk_pair(mk_fst(p), mk_fst(mk_snd(p))));
  Term body = mk_pair(
      mk_fst(happ), mk_pair(mk_snd(happ), Term::comb(hd, p)));
  return Term::abs(p, body);
}

Thm encoding_thm() {
  init_automata();
  Signature& sig = Signature::instance();
  if (auto cached = sig.find_theorem("ENCODING_THM")) return *cached;

  // ---- Setup. --------------------------------------------------------------
  Type a = alpha_ty();   // input
  Type b = beta_ty();    // output
  Type c = gamma_ty();   // original state type
  Type d = delta_ty();   // encoded state type
  Term enc = Term::var("enc", fun_ty(c, d));
  Term dec = Term::var("dec", fun_ty(d, c));
  Term h = Term::var("h", fun_ty(prod_ty(a, c), prod_ty(b, c)));
  Term q = Term::var("q", c);
  Term i = Term::var("i", fun_ty(num_ty(), a));
  Term t = Term::var("t", num_ty());
  Term h2 = mk_encoded_h(enc, dec, h);
  Term encq = Term::comb(enc, q);

  // The retraction hypothesis R: !s. dec (enc s) = s.
  Term sv = Term::var("s", c);
  Term retraction =
      logic::mk_forall(sv, mk_eq(Term::comb(dec, Term::comb(enc, sv)), sv));
  Thm R = Thm::assume(retraction);

  // ---- Invariant P(t): STATE h2 (enc q) i t = enc (STATE h q i t). --------
  Term s2_t = mk_state(h2, encq, i, t);
  Term s1_t = mk_state(h, q, i, t);
  Term inv_body = mk_eq(s2_t, Term::comb(enc, s1_t));
  Term P = Term::abs(t, inv_body);

  // Base: STATE h2 (enc q) i 0 = enc q = enc (STATE h q i 0).
  Thm lhs0 = pspec_list({h2, encq, i}, state_0());
  Thm rhs0 = ap_term(enc, pspec_list({h, q, i}, state_0()));
  Thm base = Thm::trans(lhs0, sym(rhs0));

  // Step: assume P(t).
  Thm ih = Thm::assume(inv_body);
  Term it = Term::comb(i, t);
  Term enc_s1 = Term::comb(enc, s1_t);

  // Left: STATE h2 (enc q) i (SUC t)
  //   = SND (h2 (i t, STATE h2 (enc q) i t))         [STATE_SUC]
  //   = SND (h2 (i t, enc s1))                       [IH]
  //   = SND (FST (h ...), enc (SND (h (i t, dec (enc s1)))))   [beta+proj]
  //   = enc (SND (h (i t, s1)))                      [SND_PAIR, retraction]
  Thm left = pspec_list({h2, encq, i, t}, state_suc());
  left = conv_concl_rhs(once_depth_conv(rewr_conv(ih)), left);
  Thm h2app = apply_reduce()(Term::comb(h2, mk_pair(it, enc_s1)));
  left = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(snd_pair())), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(R)), left);

  // Right: enc (STATE h q i (SUC t)) = enc (SND (h (i t, s1))).
  Thm right = ap_term(enc, pspec_list({h, q, i, t}, state_suc()));

  Thm step_concl = Thm::trans(left, sym(right));
  Thm step = logic::gen(t, logic::disch(inv_body, step_concl));

  Thm invariant = num_induct(P, base, step);  // R |- !t. P t

  // ---- Output equality. ----------------------------------------------------
  // AUT h q i t = FST (h (i t, s1)).
  Thm out1 = pspec_list({h, q, i, t}, automaton_expand());
  // AUT h2 (enc q) i t = FST (h2 (i t, s2))
  //   = FST (h2 (i t, enc s1))                         [invariant]
  //   = FST (FST (h (i t, dec (enc s1))), enc (...))   [beta+proj]
  //   = FST (h (i t, s1))                              [FST_PAIR, retraction]
  Thm inv_t = logic::spec(t, invariant);
  Thm out2 = pspec_list({h2, encq, i, t}, automaton_expand());
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(inv_t)), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(fst_pair())), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(R)), out2);

  Thm final = Thm::trans(out1, sym(out2));  // R |- AUT h q = AUT h2 (enc q)
  final = gen_list({i, t}, final);
  Thm result = logic::disch(retraction, final);
  result = gen_list({enc, dec, h, q}, result);
  sig.store_theorem("ENCODING_THM", result);
  return result;
}

Term mk_output_encoded_h(const Term& enc, const Term& h) {
  // enc : b -> d,  h : (a#c) -> (b#c);  h' : (a#c) -> (d#c).
  Type b = kernel::dom_ty(enc.type());
  Type hdom = kernel::dom_ty(h.type());
  Type hcod = kernel::cod_ty(h.type());
  if (kernel::fst_ty(hcod) != b) {
    throw KernelError("mk_output_encoded_h: enc must consume h's outputs");
  }
  Term p = Term::var("p", hdom);
  Term hp = Term::comb(h, p);
  Term body = mk_pair(Term::comb(enc, mk_fst(hp)), mk_snd(hp));
  return Term::abs(p, body);
}

Thm output_encoding_thm() {
  init_automata();
  Signature& sig = Signature::instance();
  if (auto cached = sig.find_theorem("OUTPUT_ENCODING_THM")) return *cached;

  Type a = alpha_ty();   // input
  Type b = beta_ty();    // original output
  Type c = gamma_ty();   // state
  Type d = delta_ty();   // encoded output
  Term enc = Term::var("enc", fun_ty(b, d));
  Term h = Term::var("h", fun_ty(prod_ty(a, c), prod_ty(b, c)));
  Term q = Term::var("q", c);
  Term i = Term::var("i", fun_ty(num_ty(), a));
  Term t = Term::var("t", num_ty());
  Term h2 = mk_output_encoded_h(enc, h);

  // ---- Invariant P(t): STATE h2 q i t = STATE h q i t. ---------------------
  Term s2_t = mk_state(h2, q, i, t);
  Term s1_t = mk_state(h, q, i, t);
  Term inv_body = mk_eq(s2_t, s1_t);
  Term P = Term::abs(t, inv_body);

  Thm base = Thm::trans(pspec_list({h2, q, i}, state_0()),
                        sym(pspec_list({h, q, i}, state_0())));

  Thm ih = Thm::assume(inv_body);
  Term it = Term::comb(i, t);
  Thm h2app = apply_reduce()(Term::comb(h2, mk_pair(it, s1_t)));
  // Left: STATE h2 q i (SUC t) = SND (h2 (i t, S2 t)) = SND (h2 (i t, S1 t))
  //     = SND (enc (FST (h ...)), SND (h (i t, S1 t))) = SND (h (i t, S1 t)).
  Thm left = pspec_list({h2, q, i, t}, state_suc());
  left = conv_concl_rhs(once_depth_conv(rewr_conv(ih)), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(snd_pair())), left);
  Thm right = pspec_list({h, q, i, t}, state_suc());
  Thm step = logic::gen(t, logic::disch(inv_body,
                                        Thm::trans(left, sym(right))));

  Thm invariant = num_induct(P, base, step);

  // ---- Output: AUT h2 q i t = enc (AUT h q i t). ---------------------------
  Thm inv_t = logic::spec(t, invariant);
  Thm out2 = pspec_list({h2, q, i, t}, automaton_expand());
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(inv_t)), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(fst_pair())), out2);
  // out2 : AUT h2 q i t = enc (FST (h (i t, S1 t)))
  Thm out1 = ap_term(enc, pspec_list({h, q, i, t}, automaton_expand()));
  // out1 : enc (AUT h q i t) = enc (FST (h (i t, S1 t)))
  Thm final = Thm::trans(out2, sym(out1));
  Thm result = gen_list({enc, h, q, i, t}, final);
  sig.store_theorem("OUTPUT_ENCODING_THM", result);
  return result;
}

Thm dead_state_thm() {
  init_automata();
  Signature& sig = Signature::instance();
  if (auto cached = sig.find_theorem("DEAD_STATE_THM")) return *cached;

  // ---- Setup. --------------------------------------------------------------
  Type a = alpha_ty();     // input
  Type b = beta_ty();      // output
  Type c = gamma_ty();     // live state
  Type e = delta_ty();     // dead state
  Term h = Term::var("h", fun_ty(prod_ty(a, c), prod_ty(b, c)));
  Term hd = Term::var("hd", fun_ty(prod_ty(a, prod_ty(c, e)), e));
  Term q = Term::var("q", c);
  Term qd = Term::var("qd", e);
  Term i = Term::var("i", fun_ty(num_ty(), a));
  Term t = Term::var("t", num_ty());
  Term h2 = mk_padded_h(h, hd);
  Term qpair = mk_pair(q, qd);

  // ---- Invariant P(t): FST (STATE h2 (q,qd) i t) = STATE h q i t. ---------
  Term s2_t = mk_state(h2, qpair, i, t);
  Term s1_t = mk_state(h, q, i, t);
  Term inv_body = mk_eq(mk_fst(s2_t), s1_t);
  Term P = Term::abs(t, inv_body);

  // Base: FST (STATE h2 (q,qd) i 0) = FST (q, qd) = q = STATE h q i 0.
  Thm base0 = pspec_list({h2, qpair, i}, state_0());          // S2 0 = (q,qd)
  Thm base_l = conv_concl_rhs(once_depth_conv(rewr_conv(fst_pair())),
                              ap_term(fst_at(c, e), base0));
  Thm base_r = pspec_list({h, q, i}, state_0());               // S1 0 = q
  Thm base = Thm::trans(base_l, sym(base_r));

  // Step: assume P(t).
  Thm ih = Thm::assume(inv_body);
  Term it = Term::comb(i, t);

  // h2 applied to (i t, S2 t): beta only — the argument is consumed whole
  // by FST/SND inside, which we reduce where they hit literal pairs.
  Thm h2app = apply_reduce()(Term::comb(h2, mk_pair(it, s2_t)));

  // Left: FST (STATE h2 (q,qd) i (SUC t))
  //   = FST (SND (h2 (i t, S2 t)))                    [STATE_SUC]
  //   = FST (SND (h (i t, FST (S2 t))), hd ...)       [h2app]  -> SND pair
  //   = SND (h (i t, FST (S2 t)))                     [FST_PAIR]
  //   = SND (h (i t, S1 t))                           [IH]
  Thm suc2 = pspec_list({h2, qpair, i, t}, state_suc());
  Thm left = ap_term(fst_at(c, e), suc2);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(snd_pair())), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(fst_pair())), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(ih)), left);

  // Right: STATE h q i (SUC t) = SND (h (i t, S1 t)).
  Thm right = pspec_list({h, q, i, t}, state_suc());

  Thm step_concl = Thm::trans(left, sym(right));
  Thm step = logic::gen(t, logic::disch(inv_body, step_concl));

  Thm invariant = num_induct(P, base, step);

  // ---- Output equality. ----------------------------------------------------
  Thm inv_t = logic::spec(t, invariant);
  Thm out2 = pspec_list({h2, qpair, i, t}, automaton_expand());
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(fst_pair())), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(inv_t)), out2);
  Thm out1 = pspec_list({h, q, i, t}, automaton_expand());

  Thm final = Thm::trans(out2, sym(out1));
  Thm result = gen_list({h, hd, q, qd, i, t}, final);
  sig.store_theorem("DEAD_STATE_THM", result);
  return result;
}

}  // namespace eda::thy
