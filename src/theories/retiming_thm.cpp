#include "theories/retiming_thm.h"

#include "kernel/signature.h"
#include "logic/bool_thms.h"
#include "logic/conv.h"
#include "logic/rewrite.h"

namespace eda::thy {

using kernel::alpha_ty;
using kernel::beta_ty;
using kernel::delta_ty;
using kernel::fun_ty;
using kernel::gamma_ty;
using kernel::KernelError;
using kernel::mk_eq;
using kernel::num_ty;
using kernel::prod_ty;
using kernel::Signature;
using kernel::Term;
using kernel::Thm;
using kernel::Type;
using logic::ap_term;
using logic::conv_concl_rhs;
using logic::gen_list;
using logic::once_depth_conv;
using logic::rewr_conv;
using logic::pspec_list;
using logic::sym;
using logic::thenc;

namespace {

/// |- h1 (x, y) = g (x, f y): beta followed by the pair projections.
Thm h1_applied(const Term& h1, const Term& x, const Term& y) {
  Term redex = Term::comb(h1, mk_pair(x, y));
  logic::Conv proj = logic::top_depth_conv(
      logic::orelsec(rewr_conv(fst_pair()), rewr_conv(snd_pair())));
  return thenc(logic::beta_conv, proj)(redex);
}

/// |- h2 (x, y) = (FST (g (x, y)), f (SND (g (x, y)))): plain beta (the
/// argument pair is consumed whole by g).
Thm h2_applied(const Term& h2, const Term& x, const Term& y) {
  return Thm::beta(Term::comb(h2, mk_pair(x, y)));
}

}  // namespace

Term mk_h1(const Term& f, const Term& g) {
  // f : c -> d,  g : (a # d) -> (b # c);  h1 : (a # c) -> (b # c).
  Type c = kernel::dom_ty(f.type());
  Type d = kernel::cod_ty(f.type());
  Type gdom = kernel::dom_ty(g.type());
  Type a = kernel::fst_ty(gdom);
  if (kernel::snd_ty(gdom) != d) {
    throw KernelError("mk_h1: f codomain does not feed g");
  }
  Term p = Term::var("p", prod_ty(a, c));
  Term body = Term::comb(
      g, mk_pair(mk_fst(p), Term::comb(f, mk_snd(p))));
  return Term::abs(p, body);
}

Term mk_h2(const Term& f, const Term& g) {
  Type d = kernel::cod_ty(f.type());
  Type gdom = kernel::dom_ty(g.type());
  Type gcod = kernel::cod_ty(g.type());
  Type a = kernel::fst_ty(gdom);
  if (kernel::snd_ty(gdom) != d ||
      kernel::snd_ty(gcod) != kernel::dom_ty(f.type())) {
    throw KernelError("mk_h2: type mismatch between f and g");
  }
  Term p = Term::var("p", prod_ty(a, d));
  Term gp = Term::comb(g, p);
  Term body = mk_pair(mk_fst(gp), Term::comb(f, mk_snd(gp)));
  return Term::abs(p, body);
}

Thm retiming_thm() {
  init_automata();
  Signature& sig = Signature::instance();
  if (auto cached = sig.find_theorem("RETIMING_THM")) return *cached;

  // ---- Setup: generic f, g, q, i, t and the two transition functions. ----
  Type a = alpha_ty();   // input
  Type b = beta_ty();    // output
  Type c = gamma_ty();   // original register type
  Type d = delta_ty();   // moved register type (f's codomain)
  Term f = Term::var("f", fun_ty(c, d));
  Term g = Term::var("g", fun_ty(prod_ty(a, d), prod_ty(b, c)));
  Term q = Term::var("q", c);
  Term i = Term::var("i", fun_ty(num_ty(), a));
  Term t = Term::var("t", num_ty());
  Term h1 = mk_h1(f, g);
  Term h2 = mk_h2(f, g);
  Term fq = Term::comb(f, q);

  // ---- Invariant P(t): STATE h2 (f q) i t = f (STATE h1 q i t). ----------
  Term s2_t = mk_state(h2, fq, i, t);
  Term s1_t = mk_state(h1, q, i, t);
  Term inv_body = mk_eq(s2_t, Term::comb(f, s1_t));
  Term P = Term::abs(t, inv_body);

  // Base case: both sides reduce to f q by STATE_0.
  // STATE h2 (f q) i 0 = f q
  Thm lhs0 = pspec_list({h2, fq, i}, state_0());
  Thm rhs0 = ap_term(f, pspec_list({h1, q, i}, state_0()));
  Thm base = Thm::trans(lhs0, sym(rhs0));

  // Step case: assume P(t), derive P(SUC t).
  Thm ih = Thm::assume(inv_body);
  // Left chain: STATE h2 (f q) i (SUC t)
  //   = SND (h2 (i t, STATE h2 (f q) i t))       [STATE_SUC]
  //   = SND (h2 (i t, f (STATE h1 q i t)))       [IH]
  //   = f (SND (g (i t, f s1)))                  [beta, SND_PAIR]
  Thm left = pspec_list({h2, fq, i, t}, state_suc());
  left = conv_concl_rhs(once_depth_conv(rewr_conv(ih)), left);
  Term it = Term::comb(i, t);
  Term fs1 = Term::comb(f, s1_t);
  Thm h2app = h2_applied(h2, it, fs1);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), left);
  left = conv_concl_rhs(once_depth_conv(rewr_conv(snd_pair())), left);

  // Right chain: f (STATE h1 q i (SUC t))
  //   = f (SND (h1 (i t, s1)))                   [STATE_SUC]
  //   = f (SND (g (i t, f s1)))                  [beta, FST/SND_PAIR]
  Thm right = ap_term(f, pspec_list({h1, q, i, t}, state_suc()));
  Thm h1app = h1_applied(h1, it, s1_t);
  right = conv_concl_rhs(once_depth_conv(rewr_conv(h1app)), right);

  Thm step_concl = Thm::trans(left, sym(right));
  Thm step = logic::gen(t, logic::disch(inv_body, step_concl));

  // Induction.
  Thm invariant = num_induct(P, base, step);          // !t. P t

  // ---- Output equality. ----------------------------------------------------
  // AUTOMATON h1 q i t = FST (h1 (i t, s1)) = FST (g (i t, f s1))
  Thm out1 = pspec_list({h1, q, i, t}, automaton_expand());
  out1 = conv_concl_rhs(once_depth_conv(rewr_conv(h1app)), out1);
  // AUTOMATON h2 (f q) i t = FST (h2 (i t, s2))
  //   = FST (h2 (i t, f s1)) = FST (g (i t, f s1))
  Thm inv_t = logic::spec(t, invariant);
  Thm out2 = pspec_list({h2, fq, i, t}, automaton_expand());
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(inv_t)), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(h2app)), out2);
  out2 = conv_concl_rhs(once_depth_conv(rewr_conv(fst_pair())), out2);

  Thm final = Thm::trans(out1, sym(out2));
  Thm result = gen_list({f, g, q, i, t}, final);
  sig.store_theorem("RETIMING_THM", result);
  return result;
}

}  // namespace eda::thy
