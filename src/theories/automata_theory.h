#pragma once

#include "theories/num_theory.h"
#include "theories/pair_theory.h"

namespace eda::thy {

/// The `Automata` theory of the paper (Eisenbiegler & Kumar, "An automata
/// theory dedicated towards formal circuit synthesis"): a synchronous
/// circuit is a pair of a combinational transition/output function
///   h : (input # state) -> (output # state)
/// and an initial state q.  `AUTOMATON h q` lifts the pair to a function
/// from input streams (num -> input) to output streams (num -> output);
/// the registers are implicit in the primitive recursion.
///
/// Definitions (over PRIM_REC from the num theory):
///   STATE h q i     = PRIM_REC q (\s t. SND (h (i t, s)))
///   AUTOMATON h q i t = FST (h (i t, STATE h q i t))
void init_automata();

/// `AUTOMATON h q i t` / `STATE h q i t` as terms; types are inferred from
/// the arguments (h must have type (a # c) -> (b # c)).
kernel::Term mk_automaton(const kernel::Term& h, const kernel::Term& q,
                          const kernel::Term& i, const kernel::Term& t);
kernel::Term mk_state(const kernel::Term& h, const kernel::Term& q,
                      const kernel::Term& i, const kernel::Term& t);
/// Partial application `AUTOMATON h q` (the circuit denotation itself).
kernel::Term mk_automaton_fn(const kernel::Term& h, const kernel::Term& q);

/// Derived theorems (proved in-kernel from the definitions):
///   STATE_0      : |- !h q i.   STATE h q i _0 = q
///   STATE_SUC    : |- !h q i t. STATE h q i (SUC t) =
///                               SND (h (i t, STATE h q i t))
///   AUTOMATON_EXPAND : |- !h q i t. AUTOMATON h q i t =
///                               FST (h (i t, STATE h q i t))
kernel::Thm state_0();
kernel::Thm state_suc();
kernel::Thm automaton_expand();

}  // namespace eda::thy
