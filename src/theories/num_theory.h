#pragma once

#include "logic/rewrite.h"

namespace eda::thy {

using kernel::Term;
using kernel::Thm;

/// Install the theory of natural numbers: the type `num`, Peano constants
/// `_0` and `SUC`, primitive recursion `PRIM_REC`, the arithmetic operators
/// and their recursion equations, and the (single, higher-order) induction
/// axiom
///   INDUCTION: |- !P. P _0 /\ (!n. P n ==> P (SUC n)) ==> (!n. P n)
///
/// HOL derives all of this from the axiom of infinity; this kernel installs
/// the standard Peano basis axiomatically (see DESIGN.md, substitutions) —
/// precisely the theorems the HOL `num`/`arithmetic` theories export, and
/// the only facts the retiming proof consumes.
void init_num();

/// `_0` and `SUC n`.
Term zero_tm();
Term mk_suc(const Term& n);

/// Binary arithmetic application `m OP n` for OP in {+,-,*,DIV,MOD,EXP} and
/// comparisons {<,<=} (comparisons have boolean type).
Term mk_arith(const std::string& op, const Term& m, const Term& n);

/// `PRIM_REC b f n` at the element type of `b`.
Term mk_prim_rec(const Term& b, const Term& f, const Term& n);

/// Axiom accessors.
Thm induction_ax();
Thm prim_rec_0();
Thm prim_rec_suc();

/// Induction rule: given
///   P      — a lambda `\n. body` of type num -> bool,
///   base   — A |- body[_0/n],
///   step   — B |- !n. body ==> body[SUC n/n],
/// returns A u B |- !n. body.
Thm num_induct(const Term& P, const Thm& base, const Thm& step);

/// Example derived theorem (proved by induction, exercised in tests):
///   |- !n. n + _0 = n
Thm add_zero_right();

}  // namespace eda::thy
