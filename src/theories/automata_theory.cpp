#include "theories/automata_theory.h"

#include "kernel/once.h"
#include "kernel/signature.h"
#include "logic/bool_thms.h"
#include "logic/conv.h"
#include "logic/rewrite.h"

namespace eda::thy {

using kernel::alpha_ty;
using kernel::beta_ty;
using kernel::fun_ty;
using kernel::gamma_ty;
using kernel::KernelError;
using kernel::num_ty;
using kernel::prod_ty;
using kernel::Signature;
using kernel::Term;
using kernel::Thm;
using kernel::Type;
using logic::ap_thm;
using logic::gen_list;
using logic::spec_list;
using logic::sym;
using logic::unfold_def;

namespace {

struct AutomataVars {
  Type a, b, c, hty, ity;
  Term h, q, i, t;
};

AutomataVars generic_vars() {
  AutomataVars v{alpha_ty(),
                 beta_ty(),
                 gamma_ty(),
                 Type::var("'x"),
                 Type::var("'x"),
                 Term::var("h", kernel::bool_ty()),
                 Term::var("q", kernel::bool_ty()),
                 Term::var("i", kernel::bool_ty()),
                 Term::var("t", num_ty())};
  v.hty = fun_ty(prod_ty(v.a, v.c), prod_ty(v.b, v.c));
  v.ity = fun_ty(num_ty(), v.a);
  v.h = Term::var("h", v.hty);
  v.q = Term::var("q", v.c);
  v.i = Term::var("i", v.ity);
  return v;
}

Thm get(const std::string& name) {
  return Signature::instance().theorem(name);
}

}  // namespace

void init_automata() {
  // Thread-safe, re-entry-tolerant one-time init (kernel/once.h).
  static kernel::InitOnce once;
  once.run([] {
    init_pair();
    init_num();
    Signature& sig = Signature::instance();

    AutomataVars v = generic_vars();

    // STATE = \h q i. PRIM_REC q (\s t. SND (h (i t, s)))
    Term s = Term::var("s", v.c);
    Term it = Term::comb(v.i, v.t);
    Term step = Term::abs(
        s, Term::abs(v.t, mk_snd(Term::comb(v.h, mk_pair(it, s)))));
    Type pr_ty = fun_ty(v.c, fun_ty(fun_ty(v.c, fun_ty(num_ty(), v.c)),
                                    fun_ty(num_ty(), v.c)));
    Term prim_rec = Term::constant("PRIM_REC", pr_ty);
    Term state_body = Term::comb(Term::comb(prim_rec, v.q), step);
    Thm state_def = sig.new_definition(
        "STATE", Term::abs(v.h, Term::abs(v.q, Term::abs(v.i, state_body))));

    // AUTOMATON = \h q i t. FST (h (i t, STATE h q i t))
    Term state_hqit = mk_state(v.h, v.q, v.i, v.t);
    Term aut_body = mk_fst(Term::comb(v.h, mk_pair(it, state_hqit)));
    Thm aut_def = sig.new_definition(
        "AUTOMATON",
        Term::abs(v.h,
                  Term::abs(v.q, Term::abs(v.i, Term::abs(v.t, aut_body)))));

    // ---- STATE_0 : !h q i. STATE h q i _0 = q -------------------------------
    Thm unfolded = unfold_def(state_def, {v.h, v.q, v.i});
    // unfolded : STATE h q i = PRIM_REC q step
    kernel::TypeSubst to_state;
    to_state.emplace("'a", v.c);
    Thm pr0 = spec_list({v.q, step},
                        Thm::inst_type(to_state, get("PRIM_REC_0")));
    Thm st0 = Thm::trans(ap_thm(unfolded, zero_tm()), pr0);
    sig.store_theorem("STATE_0", gen_list({v.h, v.q, v.i}, st0));

    // ---- STATE_SUC -------------------------------------------------------
    Thm prs = spec_list({v.q, step, v.t},
                        Thm::inst_type(to_state, get("PRIM_REC_SUC")));
    Thm st_suc = Thm::trans(ap_thm(unfolded, mk_suc(v.t)), prs);
    // rhs: (\s t. SND (h (i t, s))) (PRIM_REC q step t) t — beta twice.
    st_suc = logic::conv_concl_rhs(
        logic::thenc(logic::rator_conv(logic::beta_conv), logic::beta_conv),
        st_suc);
    // Fold PRIM_REC q step t back into STATE h q i t.
    Thm fold = sym(ap_thm(unfolded, v.t));
    st_suc = logic::conv_concl_rhs(
        logic::once_depth_conv(logic::rewr_conv(fold)), st_suc);
    sig.store_theorem("STATE_SUC", gen_list({v.h, v.q, v.i, v.t}, st_suc));

    // ---- AUTOMATON_EXPAND ------------------------------------------------
    Thm expand = unfold_def(aut_def, {v.h, v.q, v.i, v.t});
    sig.store_theorem("AUTOMATON_EXPAND",
                      gen_list({v.h, v.q, v.i, v.t}, expand));
  });
}

namespace {

/// Deduce (input, output, state) types from h : (a # c) -> (b # c).
std::tuple<Type, Type, Type> dest_hty(const Type& hty) {
  if (!kernel::is_fun_ty(hty)) {
    throw KernelError("automata: h is not a function: " + hty.to_string());
  }
  Type dom = kernel::dom_ty(hty), cod = kernel::cod_ty(hty);
  if (!kernel::is_prod_ty(dom) || !kernel::is_prod_ty(cod)) {
    throw KernelError("automata: h must map pairs to pairs: " +
                      hty.to_string());
  }
  Type a = kernel::fst_ty(dom), c = kernel::snd_ty(dom);
  Type b = kernel::fst_ty(cod), c2 = kernel::snd_ty(cod);
  if (c != c2) {
    throw KernelError(
        "automata: state type mismatch in h (the false-cut failure mode): " +
        c.to_string() + " vs " + c2.to_string());
  }
  return {a, b, c};
}

Term mk_aut_const(const char* name, const Term& h, bool output) {
  auto [a, b, c] = dest_hty(h.type());
  Type result = output ? b : c;
  Type ct = fun_ty(h.type(),
                   fun_ty(c, fun_ty(fun_ty(num_ty(), a),
                                    fun_ty(num_ty(), result))));
  return Term::constant(name, ct);
}

}  // namespace

Term mk_automaton(const Term& h, const Term& q, const Term& i,
                  const Term& t) {
  init_automata();
  return Term::comb(Term::comb(mk_automaton_fn(h, q), i), t);
}

Term mk_automaton_fn(const Term& h, const Term& q) {
  init_automata();
  return Term::comb(Term::comb(mk_aut_const("AUTOMATON", h, true), h), q);
}

Term mk_state(const Term& h, const Term& q, const Term& i, const Term& t) {
  init_automata();
  Term c = mk_aut_const("STATE", h, false);
  return Term::comb(
      Term::comb(Term::comb(Term::comb(c, h), q), i), t);
}

Thm state_0() {
  init_automata();
  return get("STATE_0");
}

Thm state_suc() {
  init_automata();
  return get("STATE_SUC");
}

Thm automaton_expand() {
  init_automata();
  return get("AUTOMATON_EXPAND");
}

}  // namespace eda::thy
