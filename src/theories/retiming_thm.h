#pragma once

#include "theories/automata_theory.h"

namespace eda::thy {

/// The universal retiming theorem of the paper (section IV.A), proved *in
/// the kernel* by induction over time — once and for all:
///
///   RETIMING_THM:
///   |- !f g q i t.
///        AUTOMATON (\p. g (FST p, f (SND p)))           q     i t
///      = AUTOMATON (\p. (FST (g p), f (SND (g p))))     (f q) i t
///
/// Reading: the original circuit computes x = f(s) from the registers s
/// (initial value q) and feeds (input, x) into g, which produces the output
/// and the next register value.  The retimed circuit has the registers
/// *after* f (initial value f(q)); its combinational part is g followed by
/// f on the state component.  Instantiating f and g — the "cut" produced by
/// an arbitrary heuristic — and the initial state q yields a correctness
/// theorem for one forward-retiming move; backward retiming uses the same
/// equation right-to-left.
///
/// The theorem is polymorphic in the input ('a), output ('b), register ('c)
/// and moved-register ('d) types:  f : 'c -> 'd,  g : ('a#'d) -> ('b#'c).
///
/// The proof (see retiming_thm.cpp) establishes the invariant
///   STATE h2 (f q) i t = f (STATE h1 q i t)
/// by the INDUCTION axiom and then equates the outputs; it uses no oracle,
/// which the test suite asserts.
kernel::Thm retiming_thm();

/// The two generic transition functions of the theorem, for callers that
/// need to match against them:  h1 = \p. g (FST p, f (SND p)) and
/// h2 = \p. (FST (g p), f (SND (g p))), built from given f and g terms.
kernel::Term mk_h1(const kernel::Term& f, const kernel::Term& g);
kernel::Term mk_h2(const kernel::Term& f, const kernel::Term& g);

}  // namespace eda::thy
