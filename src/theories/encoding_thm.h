#pragma once

#include "theories/automata_theory.h"

namespace eda::thy {

/// The universal *state-encoding* theorem.  The paper's summary lists state
/// encoding and signal encoding among the Automata-theory transformations
/// HASH provides besides retiming; like RETIMING_THM it is proved once and
/// for all, in the kernel, by induction over time:
///
///   ENCODING_THM:
///   |- !enc dec h q.
///        (!s. dec (enc s) = s) ==>
///        !i t. AUTOMATON h q i t
///            = AUTOMATON (\p. (FST (h (FST p, dec (SND p))),
///                              enc (SND (h (FST p, dec (SND p))))))
///                        (enc q) i t
///
/// Reading: if `enc : 'c -> 'd` re-encodes the state and `dec` restores it
/// (a retraction — enc need not be surjective), the circuit whose registers
/// hold the encoded state, which decodes before and re-encodes after the
/// original transition function, is I/O-equivalent to the original.
/// Instantiating enc/dec and discharging the retraction obligation yields a
/// correctness theorem for one re-encoding step; the obligation is
/// dischargeable inside the logic for the structural encodings the formal
/// step uses (register permutations — pure pair reasoning).
kernel::Thm encoding_thm();

/// The universal *dead-state elimination* theorem (the paper's "elimination
/// of redundant parts"): a trailing state component that no output and no
/// live next-state function reads can be dropped, whatever its own
/// next-state function `hd` computes (it may even read the dead component
/// itself — a free-running counter is the canonical example):
///
///   DEAD_STATE_THM:
///   |- !h hd q qd i t.
///        AUTOMATON (\p. (FST (h (FST p, FST (SND p))),
///                        (SND (h (FST p, FST (SND p))), hd p)))
///                  (q, qd) i t
///      = AUTOMATON h q i t
///
/// with h : ('a # 'c) -> ('b # 'c) the live part, hd : ('a # ('c # 'e)) ->
/// 'e the dead register's next-state function, q : 'c, qd : 'e.
kernel::Thm dead_state_thm();

/// The universal *signal-encoding* theorem (the paper's "signal encoding"):
/// re-coding the output signals commutes with the automaton —
///
///   OUTPUT_ENCODING_THM:
///   |- !enc h q i t.
///        AUTOMATON (\p. (enc (FST (h p)), SND (h p))) q i t
///      = enc (AUTOMATON h q i t)
///
/// with enc : 'b -> 'd re-coding the output tuple.  Unlike RETIMING_THM and
/// ENCODING_THM this is a commutation, not an equivalence: the new circuit
/// computes exactly the re-coded stream, which is what a signal-encoding
/// step must certify.  No retraction obligation — enc need not be
/// invertible (lossy output compaction is a legal signal encoding).
kernel::Thm output_encoding_thm();

/// The encoded transition function of ENCODING_THM's right-hand side,
/// built from the given enc/dec/h (for callers that match against it).
kernel::Term mk_encoded_h(const kernel::Term& enc, const kernel::Term& dec,
                          const kernel::Term& h);

/// The output-encoded transition function of OUTPUT_ENCODING_THM's
/// left-hand side.
kernel::Term mk_output_encoded_h(const kernel::Term& enc,
                                 const kernel::Term& h);

/// The padded transition function of DEAD_STATE_THM's left-hand side.
kernel::Term mk_padded_h(const kernel::Term& h, const kernel::Term& hd);

}  // namespace eda::thy
