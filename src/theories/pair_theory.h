#pragma once

#include "logic/bool_thms.h"

namespace eda::thy {

using kernel::Term;
using kernel::Thm;
using kernel::Type;

/// Install the theory of pairs: the product type operator `prod`, the pair
/// constructor `,`, the projections FST and SND, and UNCURRY.
///
/// HOL constructs `prod` definitionally from a type definition; this kernel
/// has no type-definition rule, so the theory is installed axiomatically
/// with exactly the theorems HOL exports (see DESIGN.md, substitutions):
///   FST_PAIR :  |- !x y. FST (x, y) = x
///   SND_PAIR :  |- !x y. SND (x, y) = y
///   PAIR_SURJ:  |- !p. (FST p, SND p) = p
/// UNCURRY is an ordinary definition on top.
void init_pair();

/// `(a, b)`.
Term mk_pair(const Term& a, const Term& b);
bool is_pair(const Term& t);
std::pair<Term, Term> dest_pair(const Term& t);
/// Right-nested tuple (a, (b, (c, ...))); singleton list yields the term
/// itself.
Term mk_tuple(const std::vector<Term>& ts);

/// `FST p` / `SND p`.
Term mk_fst(const Term& p);
Term mk_snd(const Term& p);

/// The installed axioms.
Thm fst_pair();
Thm snd_pair();
Thm pair_surj();

/// The shared beta / FST_PAIR / SND_PAIR top-depth reduction — the
/// workhorse for "applying" lambda-shaped transition functions throughout
/// the encoding and retiming rules.  Built once (rule lookup and
/// specialisation are not free) and valid forever: the underlying theorems
/// are fixed after theory initialisation.
const logic::Conv& pair_reduce_conv();

/// Derived: |- !x y a b. ((x, y) = (a, b)) = (x = a /\ y = b) is *not*
/// needed by the retiming proof and is omitted; see tests for the forward
/// direction via projections.

}  // namespace eda::thy
