#pragma once

#include <cstdint>
#include <optional>

#include "logic/conv.h"
#include "theories/num_theory.h"

namespace eda::thy {

/// Binary numerals in HOL-Light style: `NUMERAL (BIT1 (BIT0 _0))` etc.
/// NUMERAL is an identity tag, BIT0 n = n + n, BIT1 n = SUC (n + n) — all
/// three are honest *definitions* over the num theory, so every numeral
/// term has its standard meaning.
void init_numeral();

/// Build / destruct decimal numerals.
kernel::Term mk_numeral(std::uint64_t n);
std::optional<std::uint64_t> dest_numeral(const kernel::Term& t);

/// Ground arithmetic evaluation conversion.
///
/// For a *ground* term built from numerals, `_0`, SUC and the arithmetic
/// operators (+, -, *, DIV, MOD, EXP, <, <=, = at num), returns the theorem
/// `|- t = v` where v is the value (a numeral, or T/F for predicates).
///
/// The theorem is produced through the kernel Oracle with tag
/// `NUM_COMPUTE`: evaluating f(q) on concrete register contents (paper,
/// retiming step 4) uses machine arithmetic for speed, and the tag makes
/// that provenance visible on every theorem that depends on it.  All
/// *structural* reasoning (the retiming theorem itself) stays oracle-free.
kernel::Thm num_compute_conv(const kernel::Term& t);

/// Evaluate a ground term to a number without producing a theorem (used by
/// the evaluator and by tests to cross-check the oracle).
std::optional<std::uint64_t> eval_ground_num(const kernel::Term& t);
std::optional<bool> eval_ground_bool(const kernel::Term& t);

/// Oracle tag used by num_compute_conv.
inline constexpr const char* kNumComputeTag = "NUM_COMPUTE";

}  // namespace eda::thy
