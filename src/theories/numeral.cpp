#include "theories/numeral.h"

#include "kernel/memo.h"
#include "kernel/once.h"
#include "kernel/signature.h"
#include "logic/bool_thms.h"

namespace eda::thy {

using kernel::fun_ty;
using kernel::KernelError;
using kernel::mk_eq;
using kernel::num_ty;
using kernel::Signature;
using kernel::Term;
using kernel::Thm;

void init_numeral() {
  // Thread-safe, re-entry-tolerant one-time init (kernel/once.h).
  static kernel::InitOnce once;
  once.run([] {
    init_num();
    Signature& sig = Signature::instance();
    Term n = Term::var("n", num_ty());
    // NUMERAL = \n. n          (presentation tag)
    sig.new_definition("NUMERAL", Term::abs(n, n));
    // BIT0 = \n. n + n
    sig.new_definition("BIT0", Term::abs(n, mk_arith("+", n, n)));
    // BIT1 = \n. SUC (n + n)
    sig.new_definition("BIT1", Term::abs(n, mk_suc(mk_arith("+", n, n))));
  });
}

namespace {

Term mk_unary(const char* name, const Term& arg) {
  return Term::comb(Term::constant(name, fun_ty(num_ty(), num_ty())), arg);
}

Term mk_bits(std::uint64_t n) {
  if (n == 0) return Term::constant("_0", num_ty());
  return mk_unary((n & 1) ? "BIT1" : "BIT0", mk_bits(n >> 1));
}

std::optional<std::uint64_t> dest_bits(const Term& t) {
  // Interned nodes are permanent, so destructed values can be memoised on
  // node identity; numeral chains share suffixes heavily under hash-consing,
  // making repeated destruction O(1) amortised.  Sharded + reader-writer
  // locked so parallel proof replay shares one table (kernel/memo.h).
  static auto* memo = new kernel::ConcurrentMemo<
      const void*, std::optional<std::uint64_t>>();
  return memo->get_or_compute(
      t.node_id(), [&]() -> std::optional<std::uint64_t> {
        std::optional<std::uint64_t> out;
        if (t.is_const() && t.name() == "_0") {
          out = 0ULL;
        } else if (t.is_comb() && t.rator().is_const()) {
          const std::string& f = t.rator().name();
          if (f == "BIT0" || f == "BIT1") {
            if (auto inner = dest_bits(t.rand())) {
              out = *inner * 2 + (f == "BIT1" ? 1 : 0);
            }
          } else if (f == "SUC") {
            if (auto inner = dest_bits(t.rand())) out = *inner + 1;
          } else if (f == "NUMERAL") {
            out = dest_bits(t.rand());
          }
        }
        return out;
      });
}

}  // namespace

Term mk_numeral(std::uint64_t n) {
  init_numeral();
  // Numerals are the single most-constructed term family (every wrap /
  // modulus / simulation step builds them); cache the interned term per
  // value.  Concurrent: racing builders intern the same canonical node, so
  // whichever entry lands first is the right one.
  static auto* cache = new kernel::ConcurrentMemo<std::uint64_t, Term>();
  return cache->get_or_compute(
      n, [&] { return mk_unary("NUMERAL", mk_bits(n)); });
}

std::optional<std::uint64_t> dest_numeral(const Term& t) {
  if (t.is_comb() && t.rator().is_const() &&
      t.rator().name() == "NUMERAL") {
    return dest_bits(t.rand());
  }
  if (t.is_const() && t.name() == "_0") return 0ULL;
  return std::nullopt;
}

std::optional<std::uint64_t> eval_ground_num(const Term& t) {
  if (auto n = dest_numeral(t)) return n;
  if (t.is_const() && t.name() == "_0") return 0ULL;
  if (!t.is_comb()) return std::nullopt;
  auto [head, args] = kernel::strip_comb(t);
  if (!head.is_const()) return std::nullopt;
  const std::string& op = head.name();
  if (op == "SUC" && args.size() == 1) {
    auto a = eval_ground_num(args[0]);
    if (!a) return std::nullopt;
    return *a + 1;
  }
  if ((op == "NUMERAL" || op == "BIT0" || op == "BIT1") && args.size() == 1) {
    return dest_bits(t);
  }
  if (args.size() == 2) {
    auto a = eval_ground_num(args[0]);
    auto b = eval_ground_num(args[1]);
    if (!a || !b) return std::nullopt;
    if (op == "+") return *a + *b;
    if (op == "BITAND") return *a & *b;
    if (op == "BITOR") return *a | *b;
    if (op == "BITXOR") return *a ^ *b;
    if (op == "-") return *a >= *b ? *a - *b : 0;  // truncating subtraction
    if (op == "*") return *a * *b;
    if (op == "DIV") return *b == 0 ? std::optional<std::uint64_t>{}
                                    : std::optional<std::uint64_t>{*a / *b};
    if (op == "MOD") return *b == 0 ? std::optional<std::uint64_t>{}
                                    : std::optional<std::uint64_t>{*a % *b};
    if (op == "EXP") {
      std::uint64_t r = 1;
      for (std::uint64_t i = 0; i < *b; ++i) {
        if (*a != 0 && r > UINT64_MAX / *a) return std::nullopt;  // overflow
        r *= *a;
      }
      return r;
    }
  }
  return std::nullopt;
}

std::optional<bool> eval_ground_bool(const Term& t) {
  if (!t.is_comb()) return std::nullopt;
  auto [head, args] = kernel::strip_comb(t);
  if (!head.is_const() || args.size() != 2) return std::nullopt;
  const std::string& op = head.name();
  if (op != "=" && op != "<" && op != "<=") return std::nullopt;
  if (op == "=" && args[0].type() != num_ty()) return std::nullopt;
  auto a = eval_ground_num(args[0]);
  auto b = eval_ground_num(args[1]);
  if (!a || !b) return std::nullopt;
  if (op == "=") return *a == *b;
  if (op == "<") return *a < *b;
  return *a <= *b;
}

Thm num_compute_conv(const Term& t) {
  init_numeral();
  logic::init_bool();
  if (t.type() == num_ty()) {
    // Refuse numerals and their internals (BIT0/BIT1/_0 chains): they are
    // already values, and rewriting inside them would not terminate.
    if (dest_numeral(t)) {
      throw logic::ConvError("num_compute_conv: already a numeral");
    }
    if (t.is_const() && t.name() == "_0") {
      throw logic::ConvError("num_compute_conv: already a numeral");
    }
    if (t.is_comb() && t.rator().is_const() &&
        (t.rator().name() == "BIT0" || t.rator().name() == "BIT1" ||
         t.rator().name() == "NUMERAL")) {
      throw logic::ConvError("num_compute_conv: numeral internals");
    }
    auto v = eval_ground_num(t);
    if (!v) {
      throw logic::ConvError("num_compute_conv: not a ground numeric term: " +
                             t.to_string());
    }
    return kernel::Oracle::admit(kNumComputeTag, mk_eq(t, mk_numeral(*v)));
  }
  if (t.type() == kernel::bool_ty()) {
    auto v = eval_ground_bool(t);
    if (!v) {
      throw logic::ConvError("num_compute_conv: not a ground predicate: " +
                             t.to_string());
    }
    Term val = *v ? logic::truth_tm() : logic::falsity_tm();
    return kernel::Oracle::admit(kNumComputeTag, mk_eq(t, val));
  }
  throw logic::ConvError("num_compute_conv: unsupported type");
}

}  // namespace eda::thy
