#include "theories/num_theory.h"

#include "kernel/once.h"
#include "kernel/signature.h"
#include "logic/bool_thms.h"
#include "logic/conv.h"

namespace eda::thy {

using kernel::alpha_ty;
using kernel::bool_ty;
using kernel::fun_ty;
using kernel::KernelError;
using kernel::mk_eq;
using kernel::num_ty;
using kernel::Signature;
using kernel::Type;
using logic::mk_conj;
using logic::mk_forall;
using logic::mk_imp;
using logic::mk_neg;

namespace {

Type num2() { return fun_ty(num_ty(), fun_ty(num_ty(), num_ty())); }
Type num2b() { return fun_ty(num_ty(), fun_ty(num_ty(), bool_ty())); }

Term nv(const char* n) { return Term::var(n, num_ty()); }

}  // namespace

void init_num() {
  // Thread-safe, re-entry-tolerant one-time init (kernel/once.h).
  static kernel::InitOnce once;
  once.run([] {
    logic::init_bool();
    Signature& sig = Signature::instance();

    sig.declare_type("num", 0);
    sig.declare_const("_0", num_ty());
    sig.declare_const("SUC", fun_ty(num_ty(), num_ty()));

    Term m = nv("m"), n = nv("n");

    // Peano axioms.
    sig.new_axiom("NOT_SUC", mk_forall(n, mk_neg(mk_eq(mk_suc(n), zero_tm()))));
    sig.new_axiom(
        "SUC_INJ",
        mk_forall(m, mk_forall(n, mk_eq(mk_eq(mk_suc(m), mk_suc(n)),
                                        mk_eq(m, n)))));
    Term P = Term::var("P", fun_ty(num_ty(), bool_ty()));
    Term Pn = Term::comb(P, n);
    Term Psn = Term::comb(P, mk_suc(n));
    sig.new_axiom(
        "INDUCTION",
        mk_forall(P, mk_imp(mk_conj(Term::comb(P, zero_tm()),
                                    mk_forall(n, mk_imp(Pn, Psn))),
                            mk_forall(n, Pn))));

    // PRIM_REC with its two recursion equations.
    Type a = alpha_ty();
    sig.declare_const(
        "PRIM_REC",
        fun_ty(a, fun_ty(fun_ty(a, fun_ty(num_ty(), a)),
                         fun_ty(num_ty(), a))));
    Term b = Term::var("b", a);
    Term f = Term::var("f", fun_ty(a, fun_ty(num_ty(), a)));
    sig.new_axiom(
        "PRIM_REC_0",
        mk_forall(b, mk_forall(f, mk_eq(mk_prim_rec(b, f, zero_tm()), b))));
    Term rec_n = mk_prim_rec(b, f, n);
    sig.new_axiom(
        "PRIM_REC_SUC",
        mk_forall(
            b, mk_forall(
                   f, mk_forall(n, mk_eq(mk_prim_rec(b, f, mk_suc(n)),
                                         Term::comb(Term::comb(f, rec_n),
                                                    n))))));

    // Arithmetic operators with their standard recursion equations.
    for (const char* op : {"+", "-", "*", "DIV", "MOD", "EXP"}) {
      sig.declare_const(op, num2());
    }
    for (const char* op : {"<", "<="}) {
      sig.declare_const(op, num2b());
    }
    auto arith = [](const char* op, const Term& x, const Term& y) {
      return mk_arith(op, x, y);
    };
    // ADD
    sig.new_axiom("ADD_0",
                  mk_forall(n, mk_eq(arith("+", zero_tm(), n), n)));
    sig.new_axiom(
        "ADD_SUC",
        mk_forall(m, mk_forall(n, mk_eq(arith("+", mk_suc(m), n),
                                        mk_suc(arith("+", m, n))))));
    // MUL
    sig.new_axiom("MUL_0",
                  mk_forall(n, mk_eq(arith("*", zero_tm(), n), zero_tm())));
    sig.new_axiom(
        "MUL_SUC",
        mk_forall(m, mk_forall(n, mk_eq(arith("*", mk_suc(m), n),
                                        arith("+", arith("*", m, n), n)))));
    // SUB (truncating)
    sig.new_axiom("SUB_0",
                  mk_forall(n, mk_eq(arith("-", n, zero_tm()), n)));
    sig.new_axiom("SUB_0L",
                  mk_forall(n, mk_eq(arith("-", zero_tm(), n), zero_tm())));
    sig.new_axiom(
        "SUB_SUC",
        mk_forall(m, mk_forall(n, mk_eq(arith("-", mk_suc(m), mk_suc(n)),
                                        arith("-", m, n)))));
    // EXP
    sig.new_axiom("EXP_0",
                  mk_forall(m, mk_eq(arith("EXP", m, zero_tm()),
                                     mk_suc(zero_tm()))));
    sig.new_axiom(
        "EXP_SUC",
        mk_forall(m, mk_forall(n, mk_eq(arith("EXP", m, mk_suc(n)),
                                        arith("*", m, arith("EXP", m, n))))));
    // LT / LE
    Term F = logic::falsity_tm();
    Term T = logic::truth_tm();
    sig.new_axiom("LT_0", mk_forall(n, mk_eq(arith("<", n, zero_tm()), F)));
    sig.new_axiom(
        "LT_SUC",
        mk_forall(m, mk_forall(n, mk_eq(arith("<", m, mk_suc(n)),
                                        logic::mk_disj(mk_eq(m, n),
                                                       arith("<", m, n))))));
    sig.new_axiom("LE_0", mk_forall(n, mk_eq(arith("<=", zero_tm(), n), T)));
    sig.new_axiom(
        "LE_SUC",
        mk_forall(m, mk_forall(n, mk_eq(arith("<=", mk_suc(m), mk_suc(n)),
                                        arith("<=", m, n)))));
    sig.new_axiom("LE_SUC_0",
                  mk_forall(m, mk_eq(arith("<=", mk_suc(m), zero_tm()), F)));
  });
}

Term zero_tm() {
  init_num();
  return Term::constant("_0", num_ty());
}

Term mk_suc(const Term& n) {
  init_num();
  return Term::comb(Term::constant("SUC", fun_ty(num_ty(), num_ty())), n);
}

Term mk_arith(const std::string& op, const Term& m, const Term& n) {
  init_num();
  Type ty = (op == "<" || op == "<=") ? num2b() : num2();
  return Term::comb(Term::comb(Term::constant(op, ty), m), n);
}

Term mk_prim_rec(const Term& b, const Term& f, const Term& n) {
  init_num();
  Type a = b.type();
  Type ct = fun_ty(a, fun_ty(fun_ty(a, fun_ty(num_ty(), a)),
                             fun_ty(num_ty(), a)));
  return Term::comb(Term::comb(Term::comb(Term::constant("PRIM_REC", ct), b),
                               f),
                    n);
}

Thm induction_ax() {
  init_num();
  return Signature::instance().theorem("INDUCTION");
}

Thm prim_rec_0() {
  init_num();
  return Signature::instance().theorem("PRIM_REC_0");
}

Thm prim_rec_suc() {
  init_num();
  return Signature::instance().theorem("PRIM_REC_SUC");
}

Thm num_induct(const Term& P, const Thm& base, const Thm& step) {
  init_num();
  if (!P.is_abs() || P.type() != fun_ty(num_ty(), bool_ty())) {
    throw KernelError("num_induct: P must be a lambda of type num -> bool");
  }
  Thm inst = logic::spec(P, induction_ax());
  // Beta-reduce the P applications introduced by specialisation.
  inst = logic::conv_rule(logic::top_depth_conv(logic::beta_conv), inst);
  return logic::mp(inst, logic::conj(base, step));
}

Thm add_zero_right() {
  init_num();
  Signature& sig = Signature::instance();
  if (auto cached = sig.find_theorem("ADD_ZERO_RIGHT")) return *cached;

  Term n = nv("n");
  Term goal_body = mk_eq(mk_arith("+", n, zero_tm()), n);
  Term P = Term::abs(n, goal_body);
  // Base: _0 + _0 = _0 from ADD_0.
  Thm base = logic::spec(zero_tm(), sig.theorem("ADD_0"));
  // Step: n + _0 = n  ==>  SUC n + _0 = SUC n.
  Thm ih = Thm::assume(goal_body);
  Thm suc_eq =
      logic::spec_list({n, zero_tm()}, sig.theorem("ADD_SUC"));
  // suc_eq : SUC n + _0 = SUC (n + _0); rewrite with ih.
  Thm chained = logic::conv_concl_rhs(
      logic::rand_conv(logic::rewr_conv(ih)), suc_eq);
  Thm step = logic::gen(n, logic::disch(goal_body, chained));
  Thm out = num_induct(P, base, step);
  sig.store_theorem("ADD_ZERO_RIGHT", out);
  return out;
}

}  // namespace eda::thy
