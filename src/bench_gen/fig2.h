#pragma once

#include "circuit/rtl.h"
#include "hash/compile.h"

namespace eda::bench_gen {

/// The scalable example circuit of the paper's figure 2, parameterised by
/// the data bitwidth n.
///
/// Reconstruction (the 1997 scan is partly illegible; the structure below
/// matches the text: three combinational parts "+1", "=" and MUX, with the
/// registers shifted across the incrementer, and initial values 0):
///
///   inputs  a, b : n bits
///   register R (init 0) holding the previous output y
///   cmp = (a = b)                      -- the comparator
///   inc = R + 1  (mod 2^n)             -- the incrementer "+1"
///   y   = if cmp then 0 else inc       -- the MUX
///   output y;  R' = y
///
/// Forward retiming with f = {+1} (the paper's cut, fig. 3) moves R across
/// the incrementer: the new register holds inc with initial value f(0) = 1.
struct Fig2 {
  circuit::Rtl rtl;
  /// The incrementer node — the legal cut {+1}.
  hash::Cut good_cut;
  /// The paper's fig. 4 false cut {=, MUX}: the MUX depends on the
  /// incrementer (a g-node) and on primary inputs, so the retiming pattern
  /// cannot match.
  hash::Cut false_cut;
};

Fig2 make_fig2(int n_bits);

/// A deeper pipeline variant used for multi-step retiming and the
/// cut-size ablation: `stages` incrementer stages between the register and
/// the MUX, any prefix of which can be chosen as f.
struct Fig2Deep {
  circuit::Rtl rtl;
  /// inc_nodes[k] is the (k+1)-th incrementer; a legal cut is any prefix
  /// {inc_nodes[0..m)} with m >= 1.
  std::vector<circuit::SignalId> inc_nodes;
};

Fig2Deep make_fig2_deep(int n_bits, int stages);

/// Bit-level version of the figure-2 circuit: n one-bit registers, an
/// explicit ripple-carry incrementer (XOR/AND chain), a bitwise comparator
/// tree and per-bit muxes.  Used by the RT-level vs bit-level ablation
/// (paper, section V: "operating at the RT-level reduces the complexity
/// of steps 1-3").  `cut` is the maximal legal forward cut — exactly the
/// incrementer cone.
struct Fig2Bits {
  circuit::Rtl rtl;
  hash::Cut cut;
};

Fig2Bits make_fig2_bitlevel(int n_bits);

}  // namespace eda::bench_gen
