#include "bench_gen/fig2.h"

#include "bench_gen/iwls.h"

namespace eda::bench_gen {

using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;

Fig2 make_fig2(int n_bits) {
  Fig2 out;
  Rtl& c = out.rtl;
  SignalId a = c.add_input("a", n_bits);
  SignalId b = c.add_input("b", n_bits);
  SignalId r = c.add_reg("R", n_bits, 0);
  SignalId one = c.add_const(n_bits, 1);
  SignalId zero = c.add_const(n_bits, 0);
  SignalId inc = c.add_op(Op::Add, {r, one});     // the "+1" component
  SignalId cmp = c.add_op(Op::Eq, {a, b});        // the comparator
  SignalId y = c.add_op(Op::Mux, {cmp, zero, inc});
  c.add_output("y", y);
  c.set_reg_next(r, y);
  c.validate();
  out.good_cut.f_nodes = {inc};
  out.false_cut.f_nodes = {cmp, y};
  return out;
}

Fig2Deep make_fig2_deep(int n_bits, int stages) {
  if (stages < 1) throw circuit::RtlError("make_fig2_deep: stages >= 1");
  Fig2Deep out;
  Rtl& c = out.rtl;
  SignalId a = c.add_input("a", n_bits);
  SignalId b = c.add_input("b", n_bits);
  SignalId r = c.add_reg("R", n_bits, 0);
  SignalId one = c.add_const(n_bits, 1);
  SignalId zero = c.add_const(n_bits, 0);
  SignalId cur = r;
  for (int k = 0; k < stages; ++k) {
    cur = c.add_op(Op::Add, {cur, one});
    out.inc_nodes.push_back(cur);
  }
  SignalId cmp = c.add_op(Op::Eq, {a, b});
  SignalId y = c.add_op(Op::Mux, {cmp, zero, cur});
  c.add_output("y", y);
  c.set_reg_next(r, y);
  c.validate();
  return out;
}

Fig2Bits make_fig2_bitlevel(int n_bits) {
  Fig2Bits out;
  Rtl& c = out.rtl;
  std::vector<SignalId> a, b, r;
  for (int k = 0; k < n_bits; ++k) {
    a.push_back(c.add_input("a" + std::to_string(k), 1));
  }
  for (int k = 0; k < n_bits; ++k) {
    b.push_back(c.add_input("b" + std::to_string(k), 1));
  }
  for (int k = 0; k < n_bits; ++k) {
    r.push_back(c.add_reg("r" + std::to_string(k), 1, 0));
  }
  SignalId one = c.add_const(1, 1);
  SignalId zero = c.add_const(1, 0);

  // Ripple incrementer over the register bits: s_k = r_k ^ c_k,
  // c_{k+1} = r_k & c_k, c_0 = 1.
  std::vector<SignalId> inc(static_cast<std::size_t>(n_bits));
  SignalId carry = one;
  for (int k = 0; k < n_bits; ++k) {
    inc[static_cast<std::size_t>(k)] =
        c.add_op(Op::Xor, {r[static_cast<std::size_t>(k)], carry});
    carry = c.add_op(Op::And, {r[static_cast<std::size_t>(k)], carry});
  }
  // Comparator: AND over per-bit equality flags.
  SignalId all_eq = c.add_op(Op::Eq, {a[0], b[0]});
  for (int k = 1; k < n_bits; ++k) {
    SignalId ek = c.add_op(Op::Eq, {a[static_cast<std::size_t>(k)],
                                    b[static_cast<std::size_t>(k)]});
    all_eq = c.add_op(Op::FlagAnd, {all_eq, ek});
  }
  // Output muxes and register feedback.
  for (int k = 0; k < n_bits; ++k) {
    SignalId y = c.add_op(Op::Mux, {all_eq, zero,
                                    inc[static_cast<std::size_t>(k)]});
    c.add_output("y" + std::to_string(k), y);
    c.set_reg_next(r[static_cast<std::size_t>(k)], y);
  }
  c.validate();
  out.cut = max_forward_cut(c);
  return out;
}

}  // namespace eda::bench_gen
