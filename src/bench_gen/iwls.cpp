#include "bench_gen/iwls.h"

#include <set>

namespace eda::bench_gen {

using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;

hash::Cut max_forward_cut(const circuit::Rtl& rtl) {
  std::set<SignalId> F;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
      SignalId s = static_cast<SignalId>(idx);
      const circuit::Node& n = rtl.node(s);
      bool comb = n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const;
      if (!comb || rtl.is_flag(s) || F.count(s) > 0) continue;
      bool ok = true;
      for (SignalId o : n.operands) {
        const circuit::Node& on = rtl.node(o);
        if (on.op == Op::Reg || on.op == Op::Const || F.count(o) > 0) continue;
        ok = false;
        break;
      }
      if (ok) {
        F.insert(s);
        changed = true;
      }
    }
  }
  hash::Cut cut;
  cut.f_nodes.assign(F.begin(), F.end());
  return cut;
}

BenchCircuit make_serial_multiplier(const std::string& name, int n_bits) {
  BenchCircuit out;
  out.name = name;
  Rtl& c = out.rtl;
  SignalId x = c.add_input("x", n_bits);
  SignalId acc = c.add_reg("acc", n_bits, 0);
  SignalId coef = c.add_reg("coef", n_bits, 3);
  SignalId prod = c.add_op(Op::Mul, {acc, coef});
  SignalId sum = c.add_op(Op::Add, {prod, x});
  c.set_reg_next(acc, sum);
  c.set_reg_next(coef, coef);  // coefficient holds
  c.add_output("y", sum);
  c.validate();
  out.cut = max_forward_cut(c);
  return out;
}

BenchCircuit make_controller(const std::string& name, int state_bits,
                             int timer_bits) {
  BenchCircuit out;
  out.name = name;
  Rtl& c = out.rtl;
  SignalId go = c.add_input("go", 1);
  SignalId cmd = c.add_input("cmd", state_bits);
  SignalId st = c.add_reg("state", state_bits, 0);
  SignalId tm = c.add_reg("timer", timer_bits, 0);
  SignalId one_t = c.add_const(timer_bits, 1);
  SignalId zero_t = c.add_const(timer_bits, 0);
  SignalId limit = c.add_const(timer_bits, (1u << (timer_bits - 1)) + 1);
  SignalId one_s = c.add_const(state_bits, 1);
  SignalId one1 = c.add_const(1, 1);

  SignalId t_inc = c.add_op(Op::Add, {tm, one_t});       // retimable
  SignalId s_inc = c.add_op(Op::Add, {st, one_s});       // retimable
  SignalId expired = c.add_op(Op::Eq, {t_inc, limit});
  SignalId go_set = c.add_op(Op::Eq, {go, one1});
  SignalId adv = c.add_op(Op::FlagAnd, {expired, go_set});
  SignalId t_next = c.add_op(Op::Mux, {expired, zero_t, t_inc});
  SignalId s_next = c.add_op(Op::Mux, {adv, s_inc, st});
  SignalId s_cmd = c.add_op(Op::Eq, {s_next, cmd});
  SignalId out_word = c.add_op(Op::Mux, {s_cmd, s_inc, s_next});

  c.set_reg_next(tm, t_next);
  c.set_reg_next(st, s_next);
  c.add_output("state_out", out_word);
  c.validate();
  out.cut = max_forward_cut(c);
  return out;
}

BenchCircuit make_pipeline_alu(const std::string& name, int width,
                               int depth) {
  BenchCircuit out;
  out.name = name;
  Rtl& c = out.rtl;
  SignalId a = c.add_input("a", width);
  SignalId b = c.add_input("b", width);
  SignalId sel = c.add_input("sel", 1);
  SignalId one1 = c.add_const(1, 1);
  SignalId k1 = c.add_const(width, 0x5);
  SignalId sel_f = c.add_op(Op::Eq, {sel, one1});

  std::vector<SignalId> regs;
  for (int d = 0; d < depth; ++d) {
    regs.push_back(c.add_reg("p" + std::to_string(d), width,
                             static_cast<std::uint64_t>(d)));
  }
  // Stage 0 consumes the inputs; later stages transform the previous stage.
  SignalId s0_add = c.add_op(Op::Add, {a, b});
  SignalId s0_xor = c.add_op(Op::Xor, {a, b});
  SignalId s0 = c.add_op(Op::Mux, {sel_f, s0_add, s0_xor});
  c.set_reg_next(regs[0], s0);
  for (int d = 1; d < depth; ++d) {
    SignalId up =
        c.add_op(Op::Add, {regs[static_cast<std::size_t>(d - 1)], k1});
    SignalId mix =
        c.add_op(Op::Xor, {up, regs[static_cast<std::size_t>(d - 1)]});
    c.set_reg_next(regs[static_cast<std::size_t>(d)], mix);
  }
  SignalId final_inc =
      c.add_op(Op::Add, {regs.back(), k1});
  c.add_output("y", final_inc);
  c.validate();
  out.cut = max_forward_cut(c);
  return out;
}

namespace {

/// The set as a name -> generator table, so a by-name lookup builds only
/// the requested circuit (the service resolves `iwls:NAME` per job).
struct IwlsEntry {
  const char* name;
  BenchCircuit (*make)();
};

constexpr IwlsEntry kIwlsTable[] = {
    // Multiplier family — the paper's "fractional multipliers with
    // different bitwidths"; s344 really is a 4-bit multiplier in
    // ISCAS'89.
    {"s344", [] { return make_serial_multiplier("s344", 4); }},
    {"s349", [] { return make_serial_multiplier("s349", 4); }},
    {"mult8", [] { return make_serial_multiplier("mult8", 8); }},
    {"mult16", [] { return make_serial_multiplier("mult16", 16); }},
    {"mult32", [] { return make_serial_multiplier("mult32", 32); }},
    // Controller family (s382 is the ISCAS'89 traffic light controller).
    {"s382", [] { return make_controller("s382", 3, 4); }},
    {"s526", [] { return make_controller("s526", 4, 5); }},
    {"s820", [] { return make_controller("s820", 5, 6); }},
    // Pipelined datapaths.
    {"s641", [] { return make_pipeline_alu("s641", 8, 3); }},
    {"s713", [] { return make_pipeline_alu("s713", 8, 4); }},
    {"s1238", [] { return make_pipeline_alu("s1238", 16, 5); }},
};

}  // namespace

std::vector<BenchCircuit> iwls_benchmarks() {
  std::vector<BenchCircuit> out;
  for (const IwlsEntry& entry : kIwlsTable) out.push_back(entry.make());
  return out;
}

std::optional<BenchCircuit> find_iwls_benchmark(const std::string& name) {
  for (const IwlsEntry& entry : kIwlsTable) {
    if (name == entry.name) return entry.make();
  }
  return std::nullopt;
}

}  // namespace eda::bench_gen
