#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/rtl.h"
#include "hash/compile.h"

namespace eda::bench_gen {

/// A benchmark circuit with a canonical legal forward-retiming cut (the
/// maximal retimable cut — the paper's worst case for HASH timing).
struct BenchCircuit {
  std::string name;
  circuit::Rtl rtl;
  hash::Cut cut;
};

/// Serial (add-shift style) fractional multiplier with accumulator:
///   acc' = acc * coef + x (mod 2^n).  The paper's s-series multipliers
/// (different bitwidths) are instances of this shape.
BenchCircuit make_serial_multiplier(const std::string& name, int n_bits);

/// Counter/timer controller in the style of the small ISCAS'89 FSMs
/// (traffic-light-like): a timer that counts to a limit and a state word
/// updated through a mux cascade.
BenchCircuit make_controller(const std::string& name, int state_bits,
                             int timer_bits);

/// Pipelined datapath: `depth` register stages with an add/xor/mux ALU
/// between each pair of stages.
BenchCircuit make_pipeline_alu(const std::string& name, int width, int depth);

/// The maximal legal forward cut: the closure of combinational word nodes
/// whose fan-in lies in registers, constants and the cut itself.
hash::Cut max_forward_cut(const circuit::Rtl& rtl);

/// The synthetic stand-ins for the paper's Table II IWLS'91 set (see
/// DESIGN.md for the substitution rationale).
std::vector<BenchCircuit> iwls_benchmarks();

/// Look up one iwls_benchmarks() entry by name (nullopt when unknown).
/// The verification service's `iwls:<name>` circuit spec resolves here.
std::optional<BenchCircuit> find_iwls_benchmark(const std::string& name);

}  // namespace eda::bench_gen
