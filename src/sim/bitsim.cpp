#include "sim/bitsim.h"

#include <random>

#include "verify/cone.h"

namespace eda::sim {

using circuit::GateNetlist;
using circuit::GateOp;

BitSimulator::BitSimulator(const GateNetlist& net) {
  net.validate();
  ops_.reserve(net.nodes().size());
  for (const circuit::GateNode& n : net.nodes()) {
    Op op;
    op.code = static_cast<std::uint8_t>(n.op);
    op.a = n.a;
    op.b = n.b;
    ops_.push_back(op);
  }
  val_.assign(ops_.size(), 0);
  known_.assign(ops_.size(), 0);
  for (circuit::LitId in : net.inputs()) input_slots_.push_back(in);
  for (circuit::LitId d : net.dffs()) {
    dff_slots_.push_back(d);
    dff_next_.push_back(net.node(d).next);
  }
  for (const auto& [name, lit] : net.outputs()) output_slots_.push_back(lit);
  out_.assign(output_slots_.size(), Packet{});
  reset();
}

void BitSimulator::reset() {
  // X-pessimistic init: nothing is known about any register.
  state_.assign(dff_slots_.size(), Packet{0, 0});
}

void BitSimulator::step(const std::vector<std::uint64_t>& stimulus) {
  if (stimulus.size() != input_slots_.size()) {
    throw SimError("BitSimulator::step: stimulus arity mismatch");
  }
  std::uint64_t* val = val_.data();
  std::uint64_t* known = known_.data();
  for (std::size_t k = 0; k < input_slots_.size(); ++k) {
    std::size_t slot = static_cast<std::size_t>(input_slots_[k]);
    val[slot] = stimulus[k];
    known[slot] = ~0ULL;
  }
  for (std::size_t k = 0; k < dff_slots_.size(); ++k) {
    std::size_t slot = static_cast<std::size_t>(dff_slots_[k]);
    val[slot] = state_[k].val;
    known[slot] = state_[k].known;
  }
  // One pass in node-index order (fan-ins strictly precede gates, the same
  // invariant GateSimulator::eval and build_machine rely on).  Dual-rail
  // rules: a gate output is known exactly when its value is forced — by
  // both operands, or by one controlling operand.
  for (std::size_t idx = 0; idx < ops_.size(); ++idx) {
    const Op& op = ops_[idx];
    switch (static_cast<GateOp>(op.code)) {
      case GateOp::Const0:
        val[idx] = 0;
        known[idx] = ~0ULL;
        break;
      case GateOp::Const1:
        val[idx] = ~0ULL;
        known[idx] = ~0ULL;
        break;
      case GateOp::Input:
      case GateOp::Dff:
        break;  // seeded above
      case GateOp::And: {
        std::uint64_t va = val[op.a], ka = known[op.a];
        std::uint64_t vb = val[op.b], kb = known[op.b];
        val[idx] = va & vb;
        known[idx] = (ka & kb) | (ka & ~va) | (kb & ~vb);
        break;
      }
      case GateOp::Or: {
        std::uint64_t va = val[op.a], ka = known[op.a];
        std::uint64_t vb = val[op.b], kb = known[op.b];
        val[idx] = va | vb;
        known[idx] = (ka & kb) | (ka & va) | (kb & vb);
        break;
      }
      case GateOp::Xor: {
        val[idx] = val[op.a] ^ val[op.b];
        known[idx] = known[op.a] & known[op.b];
        break;
      }
      case GateOp::Not:
        val[idx] = ~val[op.a];
        known[idx] = known[op.a];
        break;
    }
  }
  for (std::size_t k = 0; k < output_slots_.size(); ++k) {
    std::size_t slot = static_cast<std::size_t>(output_slots_[k]);
    // Mask unknown lanes out of `val` so callers comparing raw words never
    // see X garbage agree or disagree by accident.
    out_[k] = Packet{val[slot] & known[slot], known[slot]};
  }
  for (std::size_t k = 0; k < dff_slots_.size(); ++k) {
    std::size_t slot = static_cast<std::size_t>(dff_next_[k]);
    state_[k] = Packet{val[slot] & known[slot], known[slot]};
  }
}

namespace {

/// Unpack lane `lane` of per-input stimulus words into one concrete input
/// vector.
std::vector<bool> lane_vector(const std::vector<std::uint64_t>& words,
                              int lane) {
  std::vector<bool> out;
  out.reserve(words.size());
  for (std::uint64_t w : words) out.push_back(((w >> lane) & 1) != 0);
  return out;
}

}  // namespace

RefuteResult refute(const GateNetlist& a, const GateNetlist& b,
                    const SimOptions& opts) {
  RefuteResult r;
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size() || a.outputs().empty()) {
    return r;  // not positionally comparable; the engine layer diagnoses
  }
  BitSimulator sa(a), sb(b);
  int frames = opts.frames < 1 ? 1 : opts.frames;
  int words = (opts.vectors + 63) / 64;
  if (words < 1) words = 1;
  std::mt19937_64 rng(opts.seed);
  std::vector<std::uint64_t> stimulus(a.inputs().size());
  // One word = 64 independent vectors; each vector is a fresh input
  // sequence over `frames` cycles from the X initial state.
  std::vector<std::vector<std::uint64_t>> history;
  for (int w = 0; w < words; ++w) {
    sa.reset();
    sb.reset();
    history.clear();
    for (int f = 0; f < frames; ++f) {
      for (std::uint64_t& word : stimulus) word = rng();
      history.push_back(stimulus);
      sa.step(stimulus);
      sb.step(stimulus);
      for (std::size_t k = 0; k < a.outputs().size(); ++k) {
        Packet pa = sa.output(static_cast<int>(k));
        Packet pb = sb.output(static_cast<int>(k));
        // A lane refutes only where BOTH sides are known: the values then
        // hold for every initial register assignment, so the mismatch is
        // real under any init semantics.
        std::uint64_t diff = (pa.val ^ pb.val) & pa.known & pb.known;
        if (diff == 0) continue;
        int lane = 0;
        while (((diff >> lane) & 1) == 0) ++lane;
        r.refuted = true;
        r.vectors += 64;
        r.cex.output_index = k;
        r.cex.output = a.outputs()[k].first;
        r.cex.frame = f;
        for (const std::vector<std::uint64_t>& fw : history) {
          r.cex.frames.push_back(lane_vector(fw, lane));
        }
        return r;
      }
    }
    r.vectors += 64;
  }
  return r;
}

RefuteResult refute(const verify::ConePair& pair, const SimOptions& opts) {
  RefuteResult r = refute(pair.a, pair.b, opts);
  if (r.refuted) r.cex.output = pair.output;
  return r;
}

}  // namespace eda::sim
