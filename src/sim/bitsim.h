#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/bitblast.h"

namespace eda::verify {
struct ConePair;  // verify/cone.h; full definition only needed in bitsim.cpp
}  // namespace eda::verify

namespace eda::sim {

class SimError : public kernel::KernelError {
 public:
  explicit SimError(const std::string& what) : kernel::KernelError(what) {}
};

/// One 64-lane dual-rail signal word: lane i of `val` is the signal's value
/// in simulation vector i, valid only where the matching bit of `known` is
/// set.  Unknown (X) lanes arise from the pessimistic flop initialisation
/// below and propagate through gates conservatively: an AND with a
/// controlling 0 is known-0 even if the other side is X, an XOR of an X is
/// X.
struct Packet {
  std::uint64_t val = 0;
  std::uint64_t known = 0;
};

/// Stimulus budget for a refutation attempt.  `vectors` counts input
/// vectors (rounded up to whole 64-lane words); sequential designs are
/// unrolled `frames` clock cycles per vector, with every flip-flop starting
/// at X.  The X-pessimistic init is what makes refutation SOUND against
/// every engine's init semantics: a mismatch is only reported where both
/// sides' outputs are *known*, i.e. differ for this input sequence
/// regardless of any initial register values — in particular from the
/// concrete initial states the BDD engines start from.
struct SimOptions {
  int vectors = 256;
  int frames = 4;
  std::uint64_t seed = 0x5eedf17e;
};

/// The gate-level netlist compiled for repeated bit-parallel evaluation:
/// a flat structure-of-arrays op list (opcode and fan-in indices in
/// separate contiguous arrays, one slot per node) evaluated in one branch-
/// light loop per frame — the idock pattern of batching many independent
/// evaluations against precomputed data, with the 64 lanes of a word as
/// the batch.  Construction validates and flattens once; step() is then
/// pure array traffic.
class BitSimulator {
 public:
  explicit BitSimulator(const circuit::GateNetlist& net);

  int num_inputs() const { return static_cast<int>(input_slots_.size()); }
  int num_outputs() const { return static_cast<int>(output_slots_.size()); }

  /// Forget all sequential state: every flip-flop returns to X on all
  /// lanes (the pessimistic init).
  void reset();

  /// Advance one clock cycle on all 64 lanes: `stimulus[k]` packs input
  /// k's value across the lanes (all lanes known).  Outputs are valid
  /// until the next step()/reset().
  void step(const std::vector<std::uint64_t>& stimulus);

  /// Output k after the latest step().
  Packet output(int k) const { return out_[static_cast<std::size_t>(k)]; }

 private:
  struct Op {
    std::uint8_t code;  // GateOp
    std::int32_t a = -1, b = -1;
  };
  std::vector<Op> ops_;                  // one per node, index order
  std::vector<std::uint64_t> val_;       // SoA lane values, one per node
  std::vector<std::uint64_t> known_;     // SoA known masks, one per node
  std::vector<std::int32_t> input_slots_;
  std::vector<std::int32_t> dff_slots_;
  std::vector<std::int32_t> dff_next_;
  std::vector<Packet> state_;            // latched flop packets
  std::vector<Packet> out_;
  std::vector<std::int32_t> output_slots_;
};

/// A concrete refuting stimulus, replayable on circuit::GateSimulator:
/// per-frame input vectors (positional, like GateSimulator::step) that
/// drive the two sides to different values at output `output_index` in
/// frame `frame`, from ANY initial register values.
struct Counterexample {
  std::vector<std::vector<bool>> frames;  ///< [frame][input] concrete bits
  std::size_t output_index = 0;
  std::string output;  ///< differing output's name (A-side spelling)
  int frame = 0;       ///< frame (clock cycle) of the mismatch
};

struct RefuteResult {
  bool refuted = false;
  std::uint64_t vectors = 0;  ///< input vectors actually simulated
  Counterexample cex;         ///< valid only when refuted
};

/// Drive both netlists with identical seeded random stimulus, 64 vectors
/// per word, and report the first lane where some output pair differs with
/// both sides known.  Microseconds per pair; NEVER claims equivalence —
/// `refuted == false` just means this budget found no witness and the pair
/// must go on to an engine.  Sides whose input or output counts differ are
/// not comparable positionally and return un-refuted (the engine layer
/// owns that diagnostic).
RefuteResult refute(const circuit::GateNetlist& a,
                    const circuit::GateNetlist& b,
                    const SimOptions& opts = {});

/// The cone-pair entry point (verify/cone.h): both sides share the parent
/// PI interface by construction, and the counterexample is labelled with
/// the pair's parent output name — the spelling stitch_verdicts surfaces.
RefuteResult refute(const verify::ConePair& pair,
                    const SimOptions& opts = {});

}  // namespace eda::sim
