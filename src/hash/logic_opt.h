#pragma once

#include "hash/compile.h"
#include "kernel/thm.h"
#include "logic/conv.h"

namespace eda::hash {

/// Result of one formal logic-minimisation step.
struct FormalOptResult {
  /// |- !i t. AUTOMATON h q i t = AUTOMATON h' q i t
  kernel::Thm theorem;
  circuit::Rtl optimized;
};

/// Conventional combinational clean-up pass on the netlist: structural
/// hashing (CSE), constant folding, conditional and boolean identity
/// simplification (mux with constant/equal arms, and/or/not with constants,
/// x == x, idempotence).  Word-level arithmetic identities under the MOD
/// wrap are deliberately *not* rewritten (they would need range lemmas on
/// the formal side).
circuit::Rtl conventional_logic_opt(const circuit::Rtl& rtl);

/// The formal counterpart: runs the conventional pass, then proves inside
/// the kernel that the two compiled transition functions are equal, by
/// reducing both to a common simplification normal form.  Composing this
/// with a retiming step via hash::compose_steps gives the paper's compound
/// retiming/minimisation step at the cost of one transitivity application.
FormalOptResult formal_logic_opt(const circuit::Rtl& rtl);

/// The simplification conversion itself (exposed for tests/benches).
logic::Conv simp_conv();

}  // namespace eda::hash
