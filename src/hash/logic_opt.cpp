#include "hash/logic_opt.h"

#include <map>
#include <tuple>

#include "hash/eval.h"
#include "logic/bool_simp.h"
#include "logic/rewrite.h"
#include "theories/automata_theory.h"
#include "theories/numeral.h"

namespace eda::hash {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;
using kernel::KernelError;
using kernel::Term;
using kernel::Thm;

namespace {

/// Key for structural hashing of netlist nodes.
struct NodeKey {
  Op op;
  int width;
  std::vector<SignalId> operands;
  std::uint64_t value;
  bool operator<(const NodeKey& o) const {
    return std::tie(op, width, operands, value) <
           std::tie(o.op, o.width, o.operands, o.value);
  }
};

bool is_const_node(const Rtl& out, SignalId s) {
  return out.node(s).op == Op::Const;
}

}  // namespace

Rtl conventional_logic_opt(const Rtl& rtl) {
  rtl.validate();
  Rtl out;
  std::map<SignalId, SignalId> remap;
  std::map<NodeKey, SignalId> cse;

  auto intern_const = [&](int width, std::uint64_t v) {
    NodeKey key{Op::Const, width, {}, v};
    if (auto it = cse.find(key); it != cse.end()) return it->second;
    SignalId s = width == 0 ? out.add_const_flag(v != 0)
                            : out.add_const(width, v);
    cse.emplace(key, s);
    return s;
  };

  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.node(s);
    switch (n.op) {
      case Op::Input:
        remap.emplace(s, out.add_input(n.name, n.width));
        continue;
      case Op::Reg:
        remap.emplace(s, out.add_reg(n.name, n.width, n.value));
        continue;
      case Op::Const:
        remap.emplace(s, intern_const(n.width, n.value));
        continue;
      default:
        break;
    }
    std::vector<SignalId> ops;
    ops.reserve(n.operands.size());
    for (SignalId o : n.operands) ops.push_back(remap.at(o));
    auto cval = [&](std::size_t k) { return out.node(ops[k]).value; };
    auto all_const = [&]() {
      for (SignalId o : ops) {
        if (!is_const_node(out, o)) return false;
      }
      return true;
    };

    // Constant folding (covers every operator).
    if (all_const()) {
      std::uint64_t m = (n.width == 0) ? 1 : ((1ULL << n.width) - 1);
      std::uint64_t v = 0;
      switch (n.op) {
        case Op::Add: v = (cval(0) + cval(1)) & m; break;
        case Op::Sub: v = (cval(0) - cval(1)) & m; break;
        case Op::Mul: v = (cval(0) * cval(1)) & m; break;
        case Op::Eq: v = cval(0) == cval(1); break;
        case Op::Lt: v = cval(0) < cval(1); break;
        case Op::Mux: v = cval(0) ? cval(1) : cval(2); break;
        case Op::And: v = cval(0) & cval(1); break;
        case Op::Or: v = cval(0) | cval(1); break;
        case Op::Xor: v = cval(0) ^ cval(1); break;
        case Op::Not: v = (~cval(0)) & m; break;
        case Op::FlagAnd: v = cval(0) & cval(1); break;
        case Op::FlagOr: v = cval(0) | cval(1); break;
        case Op::FlagNot: v = cval(0) ^ 1; break;
        default: v = 0; break;
      }
      remap.emplace(s, intern_const(n.width, v));
      continue;
    }

    // Identity simplifications mirrored by simp_conv on the term side.
    std::optional<SignalId> replaced;
    switch (n.op) {
      case Op::Mux:
        if (is_const_node(out, ops[0])) {
          replaced = cval(0) ? ops[1] : ops[2];
        } else if (ops[1] == ops[2]) {
          replaced = ops[1];  // COND_ID
        }
        break;
      case Op::Eq:
        if (ops[0] == ops[1]) replaced = intern_const(0, 1);  // REFL_CLAUSE
        break;
      case Op::FlagAnd:
        if (is_const_node(out, ops[0])) {
          replaced = cval(0) ? ops[1] : intern_const(0, 0);
        } else if (is_const_node(out, ops[1])) {
          replaced = cval(1) ? ops[0] : intern_const(0, 0);
        } else if (ops[0] == ops[1]) {
          replaced = ops[0];
        }
        break;
      case Op::FlagOr:
        if (is_const_node(out, ops[0])) {
          replaced = cval(0) ? intern_const(0, 1) : ops[1];
        } else if (is_const_node(out, ops[1])) {
          replaced = cval(1) ? intern_const(0, 1) : ops[0];
        } else if (ops[0] == ops[1]) {
          replaced = ops[0];
        }
        break;
      case Op::FlagNot:
        if (out.node(ops[0]).op == Op::FlagNot) {
          replaced = out.node(ops[0]).operands[0];  // NOT_NOT
        }
        break;
      default:
        break;
    }
    if (replaced) {
      remap.emplace(s, *replaced);
      continue;
    }

    // Structural hashing.
    NodeKey key{n.op, n.width, ops, 0};
    if (auto it = cse.find(key); it != cse.end()) {
      remap.emplace(s, it->second);
      continue;
    }
    SignalId ns = out.add_op(n.op, ops);
    cse.emplace(key, ns);
    remap.emplace(s, ns);
  }

  for (SignalId r : rtl.regs()) {
    out.set_reg_next(remap.at(r), remap.at(rtl.node(r).next));
  }
  for (const circuit::OutputPort& o : rtl.outputs()) {
    out.add_output(o.name, remap.at(o.signal));
  }
  out.validate();
  return out;
}

logic::Conv simp_conv() {
  logic::init_bool();
  // Ground arithmetic folding + boolean/conditional clauses, to fixpoint.
  logic::Conv clauses = logic::rewrites_conv(logic::bool_simp_clauses());
  logic::Conv step = logic::orelsec(
      clauses, [](const Term& t) { return thy::num_compute_conv(t); });
  // COND with decided condition.
  auto& sig = kernel::Signature::instance();
  logic::Conv cond = logic::orelsec(logic::rewr_conv(sig.theorem("COND_T")),
                                    logic::rewr_conv(sig.theorem("COND_F")));
  return logic::top_depth_conv(logic::orelsec(step, cond));
}

FormalOptResult formal_logic_opt(const Rtl& rtl) {
  Rtl optimized = conventional_logic_opt(rtl);
  CompiledCircuit before = compile(rtl);
  CompiledCircuit after = compile(optimized);
  if (!(before.q == after.q)) {
    throw KernelError("formal_logic_opt: initial state changed");
  }

  // Reduce both transition functions to a common simplification normal
  // form; the equality theorem is their transitive join.
  logic::Conv simp = logic::abs_conv(simp_conv());
  Thm red_before = simp(before.h);
  Thm red_after = simp(after.h);
  Term nf1 = kernel::eq_rhs(red_before.concl());
  Term nf2 = kernel::eq_rhs(red_after.concl());
  if (!(nf1 == nf2)) {
    throw KernelError(
        "formal_logic_opt: normal forms diverge; the conventional pass "
        "performed a rewrite the logic side cannot justify");
  }
  Thm h_eq = Thm::trans(red_before,
                        Thm::trans(Thm::alpha(nf1, nf2),
                                   logic::sym(red_after)));

  // Congruence into the automaton application, then generalise.
  Term i = Term::var("i", kernel::fun_ty(kernel::num_ty(), before.input_ty));
  Term t = Term::var("t", kernel::num_ty());
  Term lhs = thy::mk_automaton(before.h, before.q, i, t);
  auto [head, args] = kernel::strip_comb(lhs);
  (void)args;
  Thm chain = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(head, h_eq),
                                Thm::refl(before.q)),
                   Thm::refl(i)),
      Thm::refl(t));
  Thm final_thm = logic::gen_list({i, t}, chain);
  return FormalOptResult{final_thm, std::move(optimized)};
}

}  // namespace eda::hash
