#pragma once

#include "logic/conv.h"

namespace eda::hash {

/// Ground-evaluation conversion used for step 4 of the retiming procedure
/// (determining the new initial register values f(q)):
/// beta-reduction, pair projections, conditionals over decided tests, and
/// ground numeral arithmetic (via the tagged NUM_COMPUTE oracle), iterated
/// to a normal form.
///
/// Applied to `f q` with a lambda f and a numeral tuple q, it returns
/// `|- f q = q'` with q' a numeral tuple.
logic::Conv ground_eval_conv();

/// Evaluate a closed term to its ground normal form and return the theorem.
kernel::Thm ground_eval(const kernel::Term& t);

}  // namespace eda::hash
