#include "hash/eval.h"

#include "kernel/memo.h"
#include "kernel/signature.h"
#include "logic/bool_thms.h"
#include "logic/rewrite.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"

namespace eda::hash {

using kernel::Term;
using kernel::Thm;

namespace {

/// One evaluation step at a node.
Thm eval_step(const Term& t) {
  // Beta redexes.
  if (t.is_comb() && t.rator().is_abs()) return logic::beta_conv(t);
  // Pair projections of literal pairs.
  static const logic::Conv fst_c = logic::rewr_conv(thy::fst_pair());
  static const logic::Conv snd_c = logic::rewr_conv(thy::snd_pair());
  static const logic::Conv cond_t = logic::rewr_conv(
      kernel::Signature::instance().theorem("COND_T"));
  static const logic::Conv cond_f = logic::rewr_conv(
      kernel::Signature::instance().theorem("COND_F"));
  auto [head, args] = kernel::strip_comb(t);
  if (head.is_const()) {
    const std::string& name = head.name();
    if (name == "FST" && args.size() == 1 && thy::is_pair(args[0])) {
      return fst_c(t);
    }
    if (name == "SND" && args.size() == 1 && thy::is_pair(args[0])) {
      return snd_c(t);
    }
    if (name == "COND" && args.size() == 3) {
      if (args[0] == logic::truth_tm()) return cond_t(t);
      if (args[0] == logic::falsity_tm()) return cond_f(t);
      throw logic::ConvError("eval_step: undecided conditional");
    }
  }
  // Ground arithmetic / predicates through the tagged oracle.
  return thy::num_compute_conv(t);
}

}  // namespace

logic::Conv ground_eval_conv() {
  return logic::top_depth_conv(eval_step);
}

Thm ground_eval(const Term& t) {
  // Ground evaluation is pure and interned nodes are permanent, so the
  // resulting theorem can be memoised on node identity.  The backward,
  // retiming, encoding and redundancy steps all evaluate structurally
  // overlapping instantiations of the same transition functions.  The
  // table is sharded + reader-writer locked (kernel/memo.h) so parallel
  // verification jobs share evaluations; a racing pair may evaluate twice,
  // but both derive the identical theorem and the first insert wins.
  static auto* cache = new kernel::ConcurrentMemo<const void*, Thm>();
  return cache->get_or_compute(t.node_id(),
                               [&] { return ground_eval_conv()(t); });
}

}  // namespace eda::hash
