#include "hash/retime_step.h"

#include <map>
#include <set>

#include "hash/eval.h"
#include "hash/term_build.h"
#include "logic/bool_thms.h"
#include "logic/rewrite.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"
#include "theories/retiming_thm.h"

namespace eda::hash {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;
using kernel::KernelError;
using kernel::Term;
using kernel::Thm;

namespace {

/// Machine evaluation of a cut signal (register / const / f-node) with the
/// registers at their initial values.  Mirrors Simulator semantics; the
/// formal derivation evaluates the same values through the logic, and the
/// two paths are cross-checked in formal_retime.
std::uint64_t eval_const_signal(const Rtl& rtl, SignalId s,
                                std::map<SignalId, std::uint64_t>& memo) {
  if (auto it = memo.find(s); it != memo.end()) return it->second;
  const Node& n = rtl.node(s);
  auto in = [&](int k) {
    return eval_const_signal(rtl, n.operands[static_cast<std::size_t>(k)],
                             memo);
  };
  std::uint64_t m = (n.width == 0) ? 1 : ((1ULL << n.width) - 1);
  std::uint64_t v = 0;
  switch (n.op) {
    case Op::Reg:
    case Op::Const:
      v = n.value;
      break;
    case Op::Add: v = (in(0) + in(1)) & m; break;
    case Op::Sub: v = (in(0) - in(1)) & m; break;
    case Op::Mul: v = (in(0) * in(1)) & m; break;
    case Op::Eq: v = in(0) == in(1) ? 1 : 0; break;
    case Op::Lt: v = in(0) < in(1) ? 1 : 0; break;
    case Op::Mux: v = in(0) ? in(1) : in(2); break;
    case Op::And: v = in(0) & in(1); break;
    case Op::Or: v = in(0) | in(1); break;
    case Op::Xor: v = in(0) ^ in(1); break;
    case Op::Not: v = (~in(0)) & m; break;
    case Op::FlagAnd: v = in(0) & in(1); break;
    case Op::FlagOr: v = in(0) | in(1); break;
    case Op::FlagNot: v = in(0) ^ 1; break;
    case Op::Input:
      throw CutError("eval_const_signal: input inside the cut");
  }
  memo.emplace(s, v);
  return v;
}

/// Recursively copy a combinational cone into `out` under a signal mapping.
SignalId copy_cone(const Rtl& rtl, SignalId s, Rtl& out,
                   std::map<SignalId, SignalId>& ctx) {
  if (auto it = ctx.find(s); it != ctx.end()) return it->second;
  const Node& n = rtl.node(s);
  SignalId ns;
  if (n.op == Op::Const) {
    ns = n.width == 0 ? out.add_const_flag(n.value != 0)
                      : out.add_const(n.width, n.value);
  } else if (n.op == Op::Input || n.op == Op::Reg) {
    throw CutError("copy_cone: unmapped leaf signal " + n.name);
  } else {
    std::vector<SignalId> ops;
    ops.reserve(n.operands.size());
    for (SignalId o : n.operands) ops.push_back(copy_cone(rtl, o, out, ctx));
    ns = out.add_op(n.op, std::move(ops));
  }
  ctx.emplace(s, ns);
  return ns;
}

}  // namespace

circuit::Rtl conventional_retime(const Rtl& rtl, const Cut& cut) {
  return conventional_retime_mapped(rtl, cut).rtl;
}

RetimeMapping conventional_retime_mapped(const Rtl& rtl, const Cut& cut) {
  // compile_split performs all the legality checks and determines chi; we
  // reuse it for the structural pass so that the conventional and formal
  // paths agree on the split by construction.
  SplitCircuit split = compile_split(rtl, cut);
  std::set<SignalId> F(cut.f_nodes.begin(), cut.f_nodes.end());

  Rtl out;
  std::map<SignalId, SignalId> gctx;  // original signal -> retimed signal

  // Inputs, unchanged.
  for (SignalId in : rtl.inputs()) {
    gctx.emplace(in, out.add_input(rtl.node(in).name, rtl.node(in).width));
  }
  // One register per chi component, initial value f(q) computed here by
  // machine evaluation (the theorem recomputes it in the logic).
  std::map<SignalId, std::uint64_t> init_memo;
  for (std::size_t k = 0; k < split.chi.size(); ++k) {
    SignalId c = split.chi[k];
    std::uint64_t init = eval_const_signal(rtl, c, init_memo);
    std::string name = rtl.node(c).op == Op::Reg
                           ? rtl.node(c).name
                           : "chi" + std::to_string(k);
    gctx.emplace(c, out.add_reg(name, rtl.node(c).width, init));
  }
  // g-part: every non-f combinational node, in original topological order.
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.nodes()[idx];
    if (gctx.count(s) > 0) continue;
    if (n.op == Op::Const) {
      gctx.emplace(s, n.width == 0 ? out.add_const_flag(n.value != 0)
                                   : out.add_const(n.width, n.value));
      continue;
    }
    bool comb = n.op != Op::Input && n.op != Op::Reg;
    if (!comb || F.count(s) > 0) continue;
    std::vector<SignalId> ops;
    ops.reserve(n.operands.size());
    for (SignalId o : n.operands) {
      auto it = gctx.find(o);
      if (it == gctx.end()) {
        throw CutError("conventional_retime: operand escapes the cut");
      }
      ops.push_back(it->second);
    }
    gctx.emplace(s, out.add_op(n.op, std::move(ops)));
  }
  // Outputs straight out of g.
  for (const circuit::OutputPort& o : rtl.outputs()) {
    out.add_output(o.name, gctx.at(o.signal));
  }
  // f-part, recomputed over the *next-state* signals sigma' produced by g:
  // map each original register to its next-value signal in the new netlist.
  std::map<SignalId, SignalId> fctx;
  for (SignalId r : rtl.regs()) fctx.emplace(r, gctx.at(rtl.node(r).next));
  for (std::size_t k = 0; k < split.chi.size(); ++k) {
    SignalId next = copy_cone(rtl, split.chi[k], out, fctx);
    out.set_reg_next(gctx.at(split.chi[k]), next);
  }
  out.validate();

  RetimeMapping mapping;
  mapping.rtl = std::move(out);
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.nodes()[idx];
    bool comb = n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const;
    if (!comb) continue;
    if (F.count(s) > 0) {
      if (auto it = fctx.find(s); it != fctx.end()) {
        mapping.comb_map.emplace(s, it->second);
      }
    } else if (auto it = gctx.find(s); it != gctx.end()) {
      mapping.comb_map.emplace(s, it->second);
    }
  }
  return mapping;
}

FormalRetimeResult formal_retime(const Rtl& rtl, const Cut& cut) {
  // Step 1: split the combinational part (throws CutError on a false cut).
  SplitCircuit split = compile_split(rtl, cut);
  CompiledCircuit orig = compile(rtl);
  Rtl retimed_rtl = conventional_retime(rtl, cut);
  CompiledCircuit retimed = compile(retimed_rtl);

  // Step 2: instantiate the universal retiming theorem.
  Thm inst = logic::pspec_list({split.f, split.g, orig.q},
                               thy::retiming_thm());
  // Remaining binders: i and t.
  auto [iv, rest] = logic::dest_forall(inst.concl());
  Thm inst1 = logic::spec(iv, inst);
  auto [tv, body] = logic::dest_forall(inst1.concl());
  (void)body;
  Thm inst2 = logic::spec(tv, inst1);
  Term concl = inst2.concl();
  Term lhs = kernel::eq_lhs(concl);
  Term rhs = kernel::eq_rhs(concl);
  auto [aut_head, largs] = kernel::strip_comb(lhs);
  auto [aut_head2, rargs] = kernel::strip_comb(rhs);
  if (largs.size() != 4 || rargs.size() != 4) {
    throw KernelError("formal_retime: unexpected theorem shape");
  }

  // Step 1 (continued): relate the split form h1 to the original compiled
  // transition function by reduction — this is the formal content of
  // "splitting" the combinational part.
  const logic::Conv& reduce = detail::pair_reduce_conv();
  Thm red1 = reduce(largs[0]);  // h1 = <flat form>
  if (!(kernel::eq_rhs(red1.concl()) == orig.h)) {
    throw KernelError(
        "formal_retime: the split does not reduce to the original "
        "transition function");
  }
  Thm th_l = Thm::trans(red1, Thm::alpha(kernel::eq_rhs(red1.concl()),
                                         orig.h));

  // Step 3: join f and g — reduce h2 to a single combinational function.
  Thm red2 = reduce(rargs[0]);  // h2 = <joined form>
  if (!(kernel::eq_rhs(red2.concl()) == retimed.h)) {
    throw KernelError(
        "formal_retime: joined transition function does not match the "
        "retimed netlist");
  }
  Thm th_r = Thm::trans(red2, Thm::alpha(kernel::eq_rhs(red2.concl()),
                                         retimed.h));

  // Step 4: evaluate the new initial values f(q).
  Thm eval_thm = ground_eval(rargs[1]);  // f q = q'
  Term q_new = kernel::eq_rhs(eval_thm.concl());
  if (!(q_new == retimed.q)) {
    throw KernelError(
        "formal_retime: evaluated initial state disagrees with the retimed "
        "netlist (logic vs machine evaluation)");
  }

  // Assemble:  AUT h_flat q i t = AUT h_joined q' i t.
  Thm lchain = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(aut_head, th_l),
                                Thm::refl(largs[1])),
                   Thm::refl(largs[2])),
      Thm::refl(largs[3]));
  Thm rchain = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(aut_head2, th_r), eval_thm),
                   Thm::refl(rargs[2])),
      Thm::refl(rargs[3]));
  Thm final_thm =
      Thm::trans(Thm::trans(logic::sym(lchain), inst2), rchain);
  final_thm = logic::gen_list({iv, tv}, final_thm);

  return FormalRetimeResult{final_thm, std::move(retimed_rtl), split.f,
                            split.g, split.chi};
}

}  // namespace eda::hash
