#pragma once

#include <cstdint>
#include <vector>

#include "hash/compile.h"
#include "kernel/thm.h"

namespace eda::hash {

/// Raised when an encoding request is malformed (not a bijection, wrong
/// arity, masks for flags, …) or when the instantiated theorem does not
/// match the transformed netlist.
class EncodeError : public kernel::KernelError {
 public:
  explicit EncodeError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// Result of one formal state-re-encoding step (an instance of
/// ENCODING_THM; paper section VI lists state encoding among the
/// Automata-theory transformations HASH provides).
struct FormalEncodeResult {
  /// |- !i t. AUTOMATON h q i t = AUTOMATON h' q' i t, where (h, q) is the
  /// compiled input circuit and (h', q') the compiled re-encoded circuit.
  /// Derived by instantiating ENCODING_THM with enc/dec/h/q and discharging
  /// the retraction obligation !s. dec (enc s) = s *inside the logic*.
  kernel::Thm theorem;
  /// The re-encoded netlist; compile(encoded) is exactly (h', q').
  circuit::Rtl encoded;
  /// The encoding and decoding functions used.
  kernel::Term enc_term;
  kernel::Term dec_term;
  /// The proved retraction theorem |- !s. dec (enc s) = s.
  kernel::Thm retraction;
};

/// Re-order the register bank: old register k moves to position perm[k] of
/// the state tuple (perm must be a bijection on 0..n-1).  The netlist graph
/// is untouched; only the state layout — and therefore the compiled
/// transition function's projections — changes.  The retraction obligation
/// is discharged by pure pair reasoning (FST/SND reduction + surjective
/// pairing).
FormalEncodeResult formal_permute_registers(
    const circuit::Rtl& rtl, const std::vector<std::size_t>& perm);

/// Value-level re-encoding: register k stores its value XOR masks[k]
/// (masks.size() == #registers; a zero mask leaves that register's coding
/// unchanged but still routes it through the decode/encode pair so the
/// netlist matches the theorem's shape exactly).  Initial values are
/// re-encoded, a decoder XOR is inserted after each register and an
/// encoder XOR before it.  The retraction obligation is discharged from
/// the BITXOR_CANCEL axiom of the bitops theory.
FormalEncodeResult formal_xor_reencode(const circuit::Rtl& rtl,
                                       const std::vector<std::uint64_t>& masks);

/// Result of one formal *signal* (output) re-encoding step, an instance of
/// OUTPUT_ENCODING_THM.  The theorem is a commutation, not an equivalence:
///   |- !i t. AUTOMATON h' q i t = enc (AUTOMATON h q i t)
/// so it certifies that the new circuit emits exactly the re-coded output
/// stream (it does not compose with compose_steps, by design).
struct FormalSignalEncodeResult {
  kernel::Thm theorem;
  circuit::Rtl encoded;
  kernel::Term enc_term;
};

/// Re-code every output: output k is XORed with masks[k]
/// (masks.size() == #outputs).  The paper's "signal encoding".
FormalSignalEncodeResult formal_output_xor(
    const circuit::Rtl& rtl, const std::vector<std::uint64_t>& masks);

/// |- !a b. BITXOR (BITXOR a b) b = a — the bitops-theory axiom backing
/// the XOR re-encoding (BITAND/BITOR/BITXOR are otherwise uninterpreted
/// except for the ground-arithmetic compute oracle; see DESIGN.md's axiom
/// inventory).
kernel::Thm bitxor_cancel();

/// Prove |- !s. dec (enc s) = s for the structural encodings built by this
/// module (exposed for tests): beta/projection reduction, BITXOR_CANCEL,
/// and surjective-pairing collapse.  Throws EncodeError if the composition
/// does not reduce to the identity.
kernel::Thm prove_retraction(const kernel::Term& enc, const kernel::Term& dec);

}  // namespace eda::hash
