#include "hash/redundancy.h"

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "hash/compound.h"
#include "hash/encode_step.h"
#include "hash/eval.h"
#include "hash/term_build.h"
#include "logic/bool_thms.h"
#include "logic/rewrite.h"
#include "theories/encoding_thm.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"

namespace eda::hash {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;
using kernel::KernelError;
using kernel::num_ty;
using kernel::prod_ty;
using kernel::Term;
using kernel::Thm;
using kernel::Type;

namespace {

using detail::proj;
using detail::tuple_type;
using detail::TermBuilder;

/// Registers appearing in the combinational cone of `s`.
void cone_regs(const Rtl& rtl, SignalId s, std::set<SignalId>& out,
               std::set<SignalId>& visited) {
  if (!visited.insert(s).second) return;
  const Node& n = rtl.node(s);
  if (n.op == Op::Reg) {
    out.insert(s);
    return;
  }
  for (SignalId o : n.operands) cone_regs(rtl, o, out, visited);
}

/// Signals needed to compute the outputs and the live registers' nexts.
std::set<SignalId> needed_signals(const Rtl& rtl,
                                  const std::set<SignalId>& live) {
  std::set<SignalId> needed;
  std::function<void(SignalId)> visit = [&](SignalId s) {
    if (!needed.insert(s).second) return;
    const Node& n = rtl.node(s);
    if (n.op == Op::Reg) {
      if (live.count(s) > 0) visit(n.next);
      return;
    }
    for (SignalId o : n.operands) visit(o);
  };
  for (const circuit::OutputPort& o : rtl.outputs()) visit(o.signal);
  return needed;
}

}  // namespace

std::vector<SignalId> find_dead_registers(const Rtl& rtl) {
  rtl.validate();
  // reg -> registers its next-state cone reads.
  std::map<SignalId, std::set<SignalId>> deps;
  for (SignalId r : rtl.regs()) {
    std::set<SignalId> visited;
    cone_regs(rtl, rtl.node(r).next, deps[r], visited);
  }
  // Seed: registers read by the output cones.
  std::set<SignalId> live;
  {
    std::set<SignalId> visited;
    for (const circuit::OutputPort& o : rtl.outputs()) {
      cone_regs(rtl, o.signal, live, visited);
    }
  }
  // Fixpoint: a register read by a live register is live.
  bool changed = true;
  while (changed) {
    changed = false;
    for (SignalId r : rtl.regs()) {
      if (live.count(r) == 0) continue;
      for (SignalId d : deps[r]) {
        if (live.insert(d).second) changed = true;
      }
    }
  }
  std::vector<SignalId> dead;
  for (SignalId r : rtl.regs()) {
    if (live.count(r) == 0) dead.push_back(r);
  }
  return dead;
}

Rtl conventional_remove_dead(const Rtl& rtl) {
  std::vector<SignalId> dead = find_dead_registers(rtl);
  std::set<SignalId> dead_set(dead.begin(), dead.end());
  std::set<SignalId> live;
  for (SignalId r : rtl.regs()) {
    if (dead_set.count(r) == 0) live.insert(r);
  }
  std::set<SignalId> needed = needed_signals(rtl, live);

  Rtl out;
  std::map<SignalId, SignalId> ctx;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.nodes()[idx];
    if (n.op == Op::Input) {
      // Keep every input — the equivalence statement needs equal arity.
      ctx.emplace(s, out.add_input(n.name, n.width));
      continue;
    }
    if (needed.count(s) == 0) continue;
    if (n.op == Op::Reg) {
      ctx.emplace(s, out.add_reg(n.name, n.width, n.value));
      continue;
    }
    if (n.op == Op::Const) {
      ctx.emplace(s, n.width == 0 ? out.add_const_flag(n.value != 0)
                                  : out.add_const(n.width, n.value));
      continue;
    }
    std::vector<SignalId> ops;
    ops.reserve(n.operands.size());
    for (SignalId o : n.operands) ops.push_back(ctx.at(o));
    ctx.emplace(s, out.add_op(n.op, std::move(ops)));
  }
  for (SignalId r : rtl.regs()) {
    if (dead_set.count(r) > 0) continue;
    out.set_reg_next(ctx.at(r), ctx.at(rtl.node(r).next));
  }
  for (const circuit::OutputPort& o : rtl.outputs()) {
    out.add_output(o.name, ctx.at(o.signal));
  }
  out.validate();
  return out;
}

FormalDeadRemovalResult formal_remove_dead_registers(const Rtl& rtl) {
  init_hash_constants();
  std::vector<SignalId> dead = find_dead_registers(rtl);
  if (dead.empty()) {
    throw RedundancyError("formal_remove_dead_registers: no dead registers");
  }
  const std::size_t n = rtl.regs().size();
  const std::size_t kd = dead.size();
  const std::size_t m = n - kd;
  if (m == 0) {
    throw RedundancyError(
        "formal_remove_dead_registers: every register is dead; the stripped "
        "circuit would be stateless (keep one or rewrite the outputs)");
  }

  // ---- Step 1: permute the dead registers to the tail. ---------------------
  std::set<SignalId> dead_set(dead.begin(), dead.end());
  std::vector<std::size_t> perm(n);
  std::size_t next_live = 0, next_dead = m;
  for (std::size_t k = 0; k < n; ++k) {
    perm[k] = dead_set.count(rtl.regs()[k]) > 0 ? next_dead++ : next_live++;
  }
  bool identity = true;
  for (std::size_t k = 0; k < n; ++k) identity = identity && perm[k] == k;

  std::optional<FormalEncodeResult> pe;
  const Rtl* rtl_p = &rtl;
  if (!identity) {
    pe = formal_permute_registers(rtl, perm);
    rtl_p = &pe->encoded;
  }

  Rtl stripped = conventional_remove_dead(*rtl_p);
  CompiledCircuit cc_p = compile(*rtl_p);
  CompiledCircuit cc_s = compile(stripped);

  // ---- Step 2: re-associate the flat state into (live # dead). -------------
  std::vector<Type> live_tys(m, num_ty()), dead_tys(kd, num_ty());
  Type c_ty = tuple_type(live_tys);
  Type e_ty = tuple_type(dead_tys);
  Type flat_ty = cc_p.state_ty;

  Term sv = Term::var("s", flat_ty);
  std::vector<Term> live_parts, dead_parts;
  for (std::size_t k = 0; k < m; ++k) live_parts.push_back(proj(sv, k, n));
  for (std::size_t j = 0; j < kd; ++j) {
    dead_parts.push_back(proj(sv, m + j, n));
  }
  Term enc = Term::abs(
      sv, thy::mk_pair(thy::mk_tuple(live_parts), thy::mk_tuple(dead_parts)));
  Term xv = Term::var("x", prod_ty(c_ty, e_ty));
  std::vector<Term> flat_parts;
  for (std::size_t k = 0; k < m; ++k) {
    flat_parts.push_back(proj(thy::mk_fst(xv), k, m));
  }
  for (std::size_t j = 0; j < kd; ++j) {
    flat_parts.push_back(proj(thy::mk_snd(xv), j, kd));
  }
  Term dec = Term::abs(xv, thy::mk_tuple(flat_parts));

  Thm retraction = prove_retraction(enc, dec);
  Thm enc_inst = logic::mp(
      logic::pspec_list({enc, dec, cc_p.h, cc_p.q}, thy::encoding_thm()),
      retraction);
  auto [iv, rest] = logic::dest_forall(enc_inst.concl());
  Thm enc1 = logic::spec(iv, enc_inst);
  auto [tv, body] = logic::dest_forall(enc1.concl());
  (void)rest;
  (void)body;
  Thm enc2 = logic::spec(tv, enc1);
  // enc2 : AUT h_p q_p i t = AUT h_e (enc q_p) i t
  Term rhs = kernel::eq_rhs(enc2.concl());
  auto [aut_head, rargs] = kernel::strip_comb(rhs);
  if (rargs.size() != 4) {
    throw KernelError("formal_remove_dead_registers: theorem shape");
  }

  // ---- Step 3: the dead-state instance. -------------------------------------
  // hd : (inputs # (live # dead)) -> dead, read off the permuted netlist.
  std::vector<Type> in_tys;
  for (SignalId s : rtl_p->inputs()) {
    in_tys.push_back(detail::signal_type(*rtl_p, s));
  }
  Type in_ty = tuple_type(in_tys);
  Term pf = Term::var("p", prod_ty(in_ty, prod_ty(c_ty, e_ty)));
  Term in_tuple = thy::mk_fst(pf);
  Term live_tuple = thy::mk_fst(thy::mk_snd(pf));
  Term dead_tuple = thy::mk_snd(thy::mk_snd(pf));
  std::size_t nin = rtl_p->inputs().size();

  TermBuilder hb{*rtl_p, {}, nullptr, {}};
  auto in_index = detail::index_map(rtl_p->inputs());
  auto reg_index = detail::index_map(rtl_p->regs());
  hb.leaf = [&](SignalId s) -> std::optional<Term> {
    const Node& nd = rtl_p->node(s);
    if (nd.op == Op::Input) {
      if (auto it = in_index.find(s); it != in_index.end()) {
        return proj(in_tuple, it->second, nin);
      }
    }
    if (nd.op == Op::Reg) {
      if (auto it = reg_index.find(s); it != reg_index.end()) {
        std::size_t k = it->second;
        return k < m ? proj(live_tuple, k, m) : proj(dead_tuple, k - m, kd);
      }
    }
    return std::nullopt;
  };
  std::vector<Term> dead_nexts;
  for (std::size_t j = 0; j < kd; ++j) {
    SignalId r = rtl_p->regs()[m + j];
    dead_nexts.push_back(hb.build(rtl_p->node(r).next));
  }
  Term hd = Term::abs(pf, thy::mk_tuple(dead_nexts));

  std::vector<Term> qd_parts;
  for (std::size_t j = 0; j < kd; ++j) {
    qd_parts.push_back(
        thy::mk_numeral(rtl_p->node(rtl_p->regs()[m + j]).value));
  }
  Term qd = thy::mk_tuple(qd_parts);

  Term padded = thy::mk_padded_h(cc_s.h, hd);
  Thm dead_inst = logic::pspec_list({cc_s.h, hd, cc_s.q, qd},
                                    thy::dead_state_thm());
  dead_inst = logic::spec_list({iv, tv}, dead_inst);
  // dead_inst : AUT padded (q_live, qd) i t = AUT h1 q_live i t

  // ---- Bridge: h_e and padded share a beta/projection normal form. ---------
  const logic::Conv& reduce = detail::pair_reduce_conv();
  Thm red_e = reduce(rargs[0]);
  Thm red_p = reduce(padded);
  Term norm_e = kernel::eq_rhs(red_e.concl());
  Term norm_p = kernel::eq_rhs(red_p.concl());
  if (!(norm_e == norm_p)) {
    throw KernelError(
        "formal_remove_dead_registers: the re-associated and padded "
        "transition functions do not share a normal form");
  }
  Thm bridge = Thm::trans(Thm::trans(red_e, Thm::alpha(norm_e, norm_p)),
                          logic::sym(red_p));

  Thm eval_thm = ground_eval(rargs[1]);  // enc q_p = (q_live, qd)
  Term qpair = thy::mk_pair(cc_s.q, qd);
  if (!(kernel::eq_rhs(eval_thm.concl()) == qpair)) {
    throw KernelError(
        "formal_remove_dead_registers: evaluated initial state does not "
        "split into (live, dead)");
  }
  Thm eval_fix = Thm::trans(
      eval_thm, Thm::alpha(kernel::eq_rhs(eval_thm.concl()), qpair));

  // AUT h_e (enc q_p) i t = AUT padded (q_live, qd) i t.
  Thm to_padded = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(aut_head, bridge), eval_fix),
                   Thm::refl(rargs[2])),
      Thm::refl(rargs[3]));

  Thm chain = Thm::trans(Thm::trans(enc2, to_padded), dead_inst);
  chain = logic::gen_list({iv, tv}, chain);

  Thm full = identity ? chain : compose_steps(pe->theorem, chain);

  return FormalDeadRemovalResult{full, std::move(stripped), std::move(dead)};
}

}  // namespace eda::hash
