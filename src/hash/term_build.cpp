#include "hash/term_build.h"

#include "kernel/memo.h"
#include "logic/bool_thms.h"
#include "logic/rewrite.h"
#include "theories/num_theory.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"

namespace eda::hash::detail {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;
using kernel::bool_ty;
using kernel::fun_ty;
using kernel::KernelError;
using kernel::num_ty;
using kernel::prod_ty;
using kernel::Term;
using kernel::Type;

Type signal_type(const Rtl& rtl, SignalId s) {
  return rtl.is_flag(s) ? bool_ty() : num_ty();
}

Type tuple_type(const std::vector<Type>& tys) {
  if (tys.empty()) throw KernelError("tuple_type: empty");
  Type out = tys.back();
  for (std::size_t i = tys.size() - 1; i-- > 0;) out = prod_ty(tys[i], out);
  return out;
}

Term proj(const Term& tuple, std::size_t k, std::size_t n) {
  Term cur = tuple;
  for (std::size_t i = 0; i < k; ++i) cur = thy::mk_snd(cur);
  if (k + 1 < n) cur = thy::mk_fst(cur);
  return cur;
}

std::unordered_map<SignalId, std::size_t> index_map(
    const std::vector<SignalId>& xs) {
  std::unordered_map<SignalId, std::size_t> m;
  m.reserve(xs.size());
  for (std::size_t k = 0; k < xs.size(); ++k) m.emplace(xs[k], k);
  return m;
}

const logic::Conv& pair_reduce_conv() { return thy::pair_reduce_conv(); }

namespace {

Term mk_bit_binop(const char* name, const Term& a, const Term& b) {
  init_hash_constants();
  Type n2 = fun_ty(num_ty(), fun_ty(num_ty(), num_ty()));
  return Term::comb(Term::comb(Term::constant(name, n2), a), b);
}

}  // namespace

Term TermBuilder::modulus(int width) {
  // One interned `2 EXP w` term per width; every arithmetic node of that
  // width wraps with it, so cache the handle instead of re-interning the
  // three-node spine on each call.  Concurrent (kernel/memo.h): parallel
  // compiles of same-width circuits share the entry.
  static auto* cache = new kernel::ConcurrentMemo<int, Term>();
  return cache->get_or_compute(width, [&] {
    return thy::mk_arith("EXP", thy::mk_numeral(2),
                         thy::mk_numeral(static_cast<std::uint64_t>(width)));
  });
}

Term TermBuilder::wrap(const Term& t, int width) {
  return thy::mk_arith("MOD", t, modulus(width));
}

Term TermBuilder::build(SignalId s) {
  if (auto it = memo.find(s); it != memo.end()) return it->second;
  Term out = build_uncached(s);
  memo.emplace(s, out);
  return out;
}

Term TermBuilder::build_uncached(SignalId s) {
  if (auto t = leaf(s)) return *t;
  const Node& n = rtl.node(s);
  switch (n.op) {
    case Op::Input:
    case Op::Reg:
      throw CutError("compile: signal '" + n.name +
                     "' is not available in this sub-function (the cut "
                     "does not match the retiming pattern)");
    case Op::Const:
      if (n.width == 0) {
        return n.value ? logic::truth_tm() : logic::falsity_tm();
      }
      return thy::mk_numeral(n.value);
    default:
      break;
  }
  if (allowed != nullptr && allowed->count(s) == 0) {
    throw CutError("compile: combinational node " + std::to_string(s) + " (" +
                   circuit::op_name(n.op) +
                   ") is on the wrong side of the cut");
  }
  auto in = [&](int k) {
    return build(n.operands[static_cast<std::size_t>(k)]);
  };
  switch (n.op) {
    case Op::Add:
      return wrap(thy::mk_arith("+", in(0), in(1)), n.width);
    case Op::Sub: {
      // (a + 2^w - b) mod 2^w;  a + 2^w >= b so HOL's truncating
      // subtraction is exact here.
      Term shifted = thy::mk_arith("+", in(0), modulus(n.width));
      return wrap(thy::mk_arith("-", shifted, in(1)), n.width);
    }
    case Op::Mul:
      return wrap(thy::mk_arith("*", in(0), in(1)), n.width);
    case Op::Eq:
      return kernel::mk_eq(in(0), in(1));
    case Op::Lt:
      return thy::mk_arith("<", in(0), in(1));
    case Op::Mux:
      return logic::mk_cond(in(0), in(1), in(2));
    case Op::And:
      return mk_bit_binop("BITAND", in(0), in(1));
    case Op::Or:
      return mk_bit_binop("BITOR", in(0), in(1));
    case Op::Xor:
      return mk_bit_binop("BITXOR", in(0), in(1));
    case Op::Not: {
      // All-ones minus x: exact since x <= mask.
      std::uint64_t m = (1ULL << n.width) - 1;
      return thy::mk_arith("-", thy::mk_numeral(m), in(0));
    }
    case Op::FlagAnd:
      return logic::mk_conj(in(0), in(1));
    case Op::FlagOr:
      return logic::mk_disj(in(0), in(1));
    case Op::FlagNot:
      return logic::mk_neg(in(0));
    default:
      throw KernelError("compile: unhandled op");
  }
}

}  // namespace eda::hash::detail
