#include "hash/backward.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "hash/eval.h"
#include "hash/term_build.h"
#include "logic/bool_thms.h"
#include "logic/rewrite.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"
#include "theories/retiming_thm.h"

namespace eda::hash {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;
using kernel::KernelError;
using kernel::num_ty;
using kernel::prod_ty;
using kernel::Term;
using kernel::Thm;
using kernel::Type;

namespace {

using detail::proj;
using detail::tuple_type;
using detail::TermBuilder;

bool is_comb(const Node& n) {
  return n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const;
}

/// Checks the backward-cut pattern and returns chi in deterministic order:
/// first the non-f, non-constant operands of f-nodes (by id), then any
/// register next-value that bypasses the cut entirely (identity components).
std::vector<SignalId> backward_chi(const Rtl& rtl,
                                   const std::set<SignalId>& F) {
  for (SignalId s : F) {
    const Node& n = rtl.node(s);
    if (!is_comb(n)) {
      throw BackwardError(
          "backward cut may only contain combinational operator nodes");
    }
  }
  // Dual of the forward legality check: every f-node output may feed only
  // f-nodes or register next-value slots.  Feeding an output port or a
  // g-node means the value is consumed before the registers, so no f/g
  // split of the transition function exists (the mirrored fig.-4 failure).
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.nodes()[idx];
    if (!is_comb(n) || F.count(s) > 0) continue;
    for (SignalId o : n.operands) {
      if (F.count(o) > 0) {
        throw BackwardError(
            "backward cut: node " + std::to_string(o) +
            " in f feeds combinational node " + std::to_string(s) +
            " outside the registers — the cut does not match the retiming "
            "pattern (paper, fig. 4 mirrored)");
      }
    }
  }
  for (const circuit::OutputPort& o : rtl.outputs()) {
    if (F.count(o.signal) > 0) {
      throw BackwardError("backward cut: node " + std::to_string(o.signal) +
                          " in f feeds primary output '" + o.name + "'");
    }
  }

  std::vector<SignalId> chi;
  std::set<SignalId> seen;
  auto add_leaf = [&](SignalId s) {
    const Node& n = rtl.node(s);
    if (n.op == Op::Const) return;  // constants are cloned into f
    if (seen.insert(s).second) {
      if (rtl.is_flag(s)) {
        throw BackwardError(
            "backward cut: flag signal " + std::to_string(s) +
            " would have to be registered; flags cannot be registered");
      }
      chi.push_back(s);
    }
  };
  // Reachable f-cone leaves, in id order of the f-nodes then operand order.
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    if (F.count(s) == 0) continue;
    for (SignalId o : rtl.node(s).operands) {
      if (F.count(o) == 0) add_leaf(o);
    }
  }
  // Identity components: registers whose next bypasses f.
  for (SignalId r : rtl.regs()) {
    SignalId nx = rtl.node(r).next;
    if (F.count(nx) == 0) {
      if (rtl.node(nx).op == Op::Const) {
        throw BackwardError(
            "backward cut: register '" + rtl.node(r).name +
            "' is fed by a constant outside the cut; include the constant's "
            "consumer in f or exclude the register");
      }
      add_leaf(nx);
    }
  }
  if (chi.empty()) {
    throw BackwardError("backward cut leaves no positions to register");
  }
  return chi;
}

/// Machine evaluation of an f-cone signal under a partial assignment of
/// values to the chi leaves.  Returns nullopt when the value depends on an
/// unassigned leaf.  Mirrors Simulator semantics exactly; the formal step
/// re-derives the same values inside the logic.
std::optional<std::uint64_t> eval_cone(
    const Rtl& rtl, SignalId s, const std::set<SignalId>& F,
    const std::map<SignalId, std::uint64_t>& leaves) {
  if (auto it = leaves.find(s); it != leaves.end()) return it->second;
  const Node& n = rtl.node(s);
  if (n.op == Op::Const) return n.value;
  if (F.count(s) == 0) return std::nullopt;  // unassigned chi leaf
  std::vector<std::uint64_t> in(n.operands.size());
  for (std::size_t k = 0; k < n.operands.size(); ++k) {
    auto v = eval_cone(rtl, n.operands[k], F, leaves);
    if (!v) return std::nullopt;
    in[k] = *v;
  }
  std::uint64_t m = (n.width == 0) ? 1 : ((n.width >= 64) ? ~0ULL
                                         : ((1ULL << n.width) - 1));
  switch (n.op) {
    case Op::Add: return (in[0] + in[1]) & m;
    case Op::Sub: return (in[0] - in[1]) & m;
    case Op::Mul: return (in[0] * in[1]) & m;
    case Op::Eq: return in[0] == in[1] ? 1 : 0;
    case Op::Lt: return in[0] < in[1] ? 1 : 0;
    case Op::Mux: return in[0] ? in[1] : in[2];
    case Op::And: return in[0] & in[1];
    case Op::Or: return in[0] | in[1];
    case Op::Xor: return in[0] ^ in[1];
    case Op::Not: return (~in[0]) & m;
    case Op::FlagAnd: return in[0] & in[1];
    case Op::FlagOr: return in[0] | in[1];
    case Op::FlagNot: return in[0] ^ 1;
    default:
      throw BackwardError("eval_cone: unexpected node kind");
  }
}

/// Modular inverse of odd `a` modulo 2^64 (Newton iteration); masking the
/// result gives the inverse modulo any smaller power of two.
std::uint64_t inv_pow2(std::uint64_t a) {
  std::uint64_t x = a;  // correct to 3 bits
  for (int i = 0; i < 5; ++i) x *= 2 - a * x;
  return x;
}

/// One constraint-propagation attempt: drive target value `v` down the
/// cone rooted at `s`, pinning a chi leaf when the path reaches one.
/// Returns true if it pinned something or verified the equation; false if
/// the shape is not invertible here (caller falls back to search).
bool invert_into(const Rtl& rtl, SignalId s, std::uint64_t v,
                 const std::set<SignalId>& F,
                 std::map<SignalId, std::uint64_t>& pinned,
                 const std::set<SignalId>& is_leaf) {
  // Ground already?
  if (auto got = eval_cone(rtl, s, F, pinned)) {
    if (*got != v) {
      throw BackwardError(
          "backward retiming: register contents are not in the image of f "
          "(cone evaluates to " + std::to_string(*got) + ", register holds " +
          std::to_string(v) + ")");
    }
    return true;
  }
  if (is_leaf.count(s) > 0) {
    std::uint64_t m = rtl.width(s) >= 64 ? ~0ULL
                                         : ((1ULL << rtl.width(s)) - 1);
    if ((v & m) != v) {
      throw BackwardError("backward retiming: required initial value " +
                          std::to_string(v) + " does not fit in " +
                          std::to_string(rtl.width(s)) + " bits");
    }
    pinned.emplace(s, v);
    return true;
  }
  const Node& n = rtl.node(s);
  std::uint64_t m = (n.width >= 64) ? ~0ULL : ((1ULL << n.width) - 1);
  auto ground = [&](std::size_t k) {
    return eval_cone(rtl, n.operands[k], F, pinned);
  };
  switch (n.op) {
    case Op::Add: {
      if (auto c = ground(0)) {
        return invert_into(rtl, n.operands[1], (v - *c) & m, F, pinned,
                           is_leaf);
      }
      if (auto c = ground(1)) {
        return invert_into(rtl, n.operands[0], (v - *c) & m, F, pinned,
                           is_leaf);
      }
      return false;
    }
    case Op::Sub: {
      if (auto a = ground(0)) {  // a - x = v  =>  x = a - v
        return invert_into(rtl, n.operands[1], (*a - v) & m, F, pinned,
                           is_leaf);
      }
      if (auto b = ground(1)) {  // x - b = v  =>  x = v + b
        return invert_into(rtl, n.operands[0], (v + *b) & m, F, pinned,
                           is_leaf);
      }
      return false;
    }
    case Op::Xor: {
      if (auto c = ground(0)) {
        return invert_into(rtl, n.operands[1], (v ^ *c) & m, F, pinned,
                           is_leaf);
      }
      if (auto c = ground(1)) {
        return invert_into(rtl, n.operands[0], (v ^ *c) & m, F, pinned,
                           is_leaf);
      }
      return false;
    }
    case Op::Not:
      return invert_into(rtl, n.operands[0], (~v) & m, F, pinned, is_leaf);
    case Op::Mul: {
      // Invertible iff the ground factor is odd (unit modulo 2^w).
      auto try_side = [&](std::size_t g, std::size_t x) -> std::optional<bool> {
        auto c = ground(g);
        if (!c) return std::nullopt;
        if ((*c & 1) == 0) return false;
        std::uint64_t inv = inv_pow2(*c) & m;
        return invert_into(rtl, n.operands[x], (v * inv) & m, F, pinned,
                           is_leaf);
      };
      if (auto r = try_side(0, 1)) return *r;
      if (auto r = try_side(1, 0)) return *r;
      return false;
    }
    case Op::Mux: {
      if (auto sel = ground(0)) {
        return invert_into(rtl, n.operands[*sel ? 1 : 2], v, F, pinned,
                           is_leaf);
      }
      return false;
    }
    default:
      return false;  // Eq/Lt/And/Or/flag ops: not uniquely invertible
  }
}

struct ConventionalBackward {
  Rtl rtl;
  std::vector<SignalId> chi;  // chi leaves of the *input* circuit
  std::map<SignalId, SignalId> comb_map;  // original comb node -> new signal
};

ConventionalBackward conventional_backward_impl(
    const Rtl& rtl, const std::set<SignalId>& F,
    const std::vector<SignalId>& chi, const std::vector<std::uint64_t>& q0) {
  Rtl out;
  std::map<SignalId, SignalId> in_map;   // original input -> new input
  for (SignalId in : rtl.inputs()) {
    in_map.emplace(in, out.add_input(rtl.node(in).name, rtl.node(in).width));
  }
  // The chi registers.
  std::map<SignalId, SignalId> chi_reg;  // chi leaf (orig id) -> new reg
  for (std::size_t j = 0; j < chi.size(); ++j) {
    const Node& leaf = rtl.node(chi[j]);
    std::string name = leaf.name.empty() ? "chi" + std::to_string(j)
                                         : leaf.name + "_r";
    chi_reg.emplace(chi[j], out.add_reg(name, leaf.width, q0[j]));
  }
  // f recomputed over the chi registers: each original register output is
  // replaced by its f-cone (or by the chi register directly for identity
  // components).
  std::map<SignalId, SignalId> fctx;  // f-cone context
  for (const auto& [leaf, reg] : chi_reg) fctx.emplace(leaf, reg);
  std::function<SignalId(SignalId)> build_f = [&](SignalId s) -> SignalId {
    if (auto it = fctx.find(s); it != fctx.end()) return it->second;
    const Node& n = rtl.node(s);
    SignalId ns;
    if (n.op == Op::Const) {
      ns = n.width == 0 ? out.add_const_flag(n.value != 0)
                        : out.add_const(n.width, n.value);
    } else {
      std::vector<SignalId> ops;
      ops.reserve(n.operands.size());
      for (SignalId o : n.operands) ops.push_back(build_f(o));
      ns = out.add_op(n.op, std::move(ops));
    }
    fctx.emplace(s, ns);
    return ns;
  };
  std::map<SignalId, SignalId> reg_map;  // original reg -> replacement
  for (SignalId r : rtl.regs()) reg_map.emplace(r, build_f(rtl.node(r).next));

  // g-part: every non-f combinational node, in original topological order.
  std::map<SignalId, SignalId> gctx;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.nodes()[idx];
    if (n.op == Op::Const) {
      gctx.emplace(s, n.width == 0 ? out.add_const_flag(n.value != 0)
                                   : out.add_const(n.width, n.value));
      continue;
    }
    if (n.op == Op::Input) {
      gctx.emplace(s, in_map.at(s));
      continue;
    }
    if (n.op == Op::Reg) {
      gctx.emplace(s, reg_map.at(s));
      continue;
    }
    if (F.count(s) > 0) continue;  // f-nodes live behind the registers now
    std::vector<SignalId> ops;
    ops.reserve(n.operands.size());
    for (SignalId o : n.operands) ops.push_back(gctx.at(o));
    gctx.emplace(s, out.add_op(n.op, std::move(ops)));
  }
  for (const circuit::OutputPort& o : rtl.outputs()) {
    out.add_output(o.name, gctx.at(o.signal));
  }
  // chi register nexts: the g-image of each leaf signal.
  for (std::size_t j = 0; j < chi.size(); ++j) {
    out.set_reg_next(chi_reg.at(chi[j]), gctx.at(chi[j]));
  }
  out.validate();

  std::map<SignalId, SignalId> comb_map;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    if (!is_comb(rtl.nodes()[idx])) continue;
    if (F.count(s) > 0) {
      if (auto it = fctx.find(s); it != fctx.end()) {
        comb_map.emplace(s, it->second);
      }
    } else if (auto it = gctx.find(s); it != gctx.end()) {
      comb_map.emplace(s, it->second);
    }
  }
  return ConventionalBackward{std::move(out), chi, std::move(comb_map)};
}

}  // namespace

BackwardSplit compile_backward_split(const Rtl& rtl, const BackwardCut& cut) {
  init_hash_constants();
  rtl.validate();
  if (rtl.inputs().empty() || rtl.regs().empty()) {
    throw KernelError("compile_backward_split: need inputs and registers");
  }
  std::set<SignalId> F(cut.f_nodes.begin(), cut.f_nodes.end());
  std::vector<SignalId> chi = backward_chi(rtl, F);

  // ---- f : chi -> state ----------------------------------------------------
  std::vector<Type> chi_tys(chi.size(), num_ty());
  Type chi_ty = tuple_type(chi_tys);
  Term cv = Term::var("c", chi_ty);
  TermBuilder fb{rtl, {}, nullptr, {}};
  fb.allowed = &F;
  auto chi_index = detail::index_map(chi);
  fb.leaf = [&](SignalId s) -> std::optional<Term> {
    if (auto it = chi_index.find(s); it != chi_index.end()) {
      return proj(cv, it->second, chi.size());
    }
    return std::nullopt;
  };
  std::vector<Term> state_terms;
  for (SignalId r : rtl.regs()) {
    state_terms.push_back(fb.build(rtl.node(r).next));
  }
  Term f = Term::abs(cv, thy::mk_tuple(state_terms));

  // ---- g : (inputs # state) -> (outputs # chi) -----------------------------
  std::vector<Type> in_tys;
  for (SignalId s : rtl.inputs()) in_tys.push_back(detail::signal_type(rtl, s));
  Type in_ty = tuple_type(in_tys);
  std::vector<Type> st_tys(rtl.regs().size(), num_ty());
  Type st_ty = tuple_type(st_tys);
  Term pg = Term::var("p", prod_ty(in_ty, st_ty));
  Term in_tuple = thy::mk_fst(pg);
  Term st_tuple = thy::mk_snd(pg);
  std::size_t nin = rtl.inputs().size(), nreg = rtl.regs().size();

  std::set<SignalId> g_allowed;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    if (is_comb(rtl.node(s)) && F.count(s) == 0) g_allowed.insert(s);
  }
  TermBuilder gb{rtl, {}, nullptr, {}};
  gb.allowed = &g_allowed;
  auto in_index = detail::index_map(rtl.inputs());
  auto reg_index = detail::index_map(rtl.regs());
  gb.leaf = [&](SignalId s) -> std::optional<Term> {
    const Node& n = rtl.node(s);
    if (n.op == Op::Input) {
      if (auto it = in_index.find(s); it != in_index.end()) {
        return proj(in_tuple, it->second, nin);
      }
    }
    if (n.op == Op::Reg) {
      if (auto it = reg_index.find(s); it != reg_index.end()) {
        return proj(st_tuple, it->second, nreg);
      }
    }
    return std::nullopt;
  };
  std::vector<Term> outs;
  for (const circuit::OutputPort& o : rtl.outputs()) {
    outs.push_back(gb.build(o.signal));
  }
  std::vector<Term> chi_terms;
  for (SignalId c : chi) chi_terms.push_back(gb.build(c));
  Term g = Term::abs(pg, thy::mk_pair(thy::mk_tuple(outs),
                                      thy::mk_tuple(chi_terms)));

  return BackwardSplit{f, g, chi};
}

std::vector<std::uint64_t> solve_initial_state(
    const Rtl& rtl, const BackwardCut& cut,
    const std::vector<SignalId>& chi) {
  std::set<SignalId> F(cut.f_nodes.begin(), cut.f_nodes.end());
  std::set<SignalId> is_leaf(chi.begin(), chi.end());
  std::map<SignalId, std::uint64_t> pinned;

  struct Equation {
    SignalId cone;
    std::uint64_t target;
  };
  std::vector<Equation> eqs;
  for (SignalId r : rtl.regs()) {
    eqs.push_back({rtl.node(r).next, rtl.node(r).value});
  }

  // Constraint propagation to a fixpoint: each pass may ground more leaves
  // and thereby enable inversion of further equations.
  std::vector<bool> solved(eqs.size(), false);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t k = 0; k < eqs.size(); ++k) {
      if (solved[k]) continue;
      if (invert_into(rtl, eqs[k].cone, eqs[k].target, F, pinned, is_leaf)) {
        solved[k] = true;
        progress = true;
      }
    }
  }

  // Brute-force the leaves the propagation could not determine.
  std::vector<SignalId> open;
  for (SignalId c : chi) {
    if (pinned.count(c) == 0) open.push_back(c);
  }
  if (!open.empty()) {
    int total_bits = 0;
    for (SignalId c : open) total_bits += rtl.width(c);
    if (total_bits > 22) {
      throw BackwardError(
          "backward retiming: cannot determine initial values — f is not "
          "invertible here and the residual search space has " +
          std::to_string(total_bits) + " bits");
    }
    std::uint64_t space = 1ULL << total_bits;
    bool found = false;
    for (std::uint64_t code = 0; code < space && !found; ++code) {
      std::uint64_t rest = code;
      for (SignalId c : open) {
        int w = rtl.width(c);
        pinned[c] = rest & ((w >= 64) ? ~0ULL : ((1ULL << w) - 1));
        rest >>= w;
      }
      found = true;
      for (const Equation& e : eqs) {
        auto v = eval_cone(rtl, e.cone, F, pinned);
        if (!v || *v != e.target) {
          found = false;
          break;
        }
      }
    }
    if (!found) {
      throw BackwardError(
          "backward retiming: the register contents are not in the image of "
          "f — no initial state exists for the moved registers");
    }
  } else {
    // Everything pinned by propagation; verify all equations hold.
    for (const Equation& e : eqs) {
      auto v = eval_cone(rtl, e.cone, F, pinned);
      if (!v || *v != e.target) {
        throw BackwardError(
            "backward retiming: the register contents are not in the image "
            "of f — no initial state exists for the moved registers");
      }
    }
  }

  std::vector<std::uint64_t> q0;
  q0.reserve(chi.size());
  for (SignalId c : chi) q0.push_back(pinned.at(c));
  return q0;
}

Rtl conventional_backward_retime(const Rtl& rtl, const BackwardCut& cut) {
  return conventional_backward_retime_mapped(rtl, cut).rtl;
}

RetimeMapping conventional_backward_retime_mapped(const Rtl& rtl,
                                                  const BackwardCut& cut) {
  std::set<SignalId> F(cut.f_nodes.begin(), cut.f_nodes.end());
  std::vector<SignalId> chi = backward_chi(rtl, F);
  std::vector<std::uint64_t> q0 = solve_initial_state(rtl, cut, chi);
  ConventionalBackward cb = conventional_backward_impl(rtl, F, chi, q0);
  RetimeMapping mapping;
  mapping.rtl = std::move(cb.rtl);
  mapping.comb_map = std::move(cb.comb_map);
  return mapping;
}

FormalBackwardResult formal_backward_retime(const Rtl& rtl,
                                            const BackwardCut& cut) {
  // Step 1: split into f (register feeders) and g (the rest).
  BackwardSplit split = compile_backward_split(rtl, cut);
  std::set<SignalId> F(cut.f_nodes.begin(), cut.f_nodes.end());

  // Step 2: solve f(q0) = q by machine arithmetic (heuristic; re-checked in
  // the logic below).
  std::vector<std::uint64_t> q0 = solve_initial_state(rtl, cut, split.chi);
  Rtl retimed_rtl = conventional_backward_impl(rtl, F, split.chi, q0).rtl;

  CompiledCircuit orig = compile(rtl);
  CompiledCircuit retimed = compile(retimed_rtl);

  std::vector<Term> q0_parts;
  q0_parts.reserve(q0.size());
  for (std::uint64_t v : q0) q0_parts.push_back(thy::mk_numeral(v));
  Term q0_term = thy::mk_tuple(q0_parts);
  if (!(q0_term == retimed.q)) {
    throw KernelError(
        "formal_backward_retime: solved initial state disagrees with the "
        "retimed netlist");
  }

  // Step 3: instantiate RETIMING_THM with (f, g, q0); the input circuit is
  // the *right-hand* side of the equation.
  Thm inst = logic::pspec_list({split.f, split.g, q0_term},
                               thy::retiming_thm());
  auto [iv, rest] = logic::dest_forall(inst.concl());
  Thm inst1 = logic::spec(iv, inst);
  auto [tv, body] = logic::dest_forall(inst1.concl());
  (void)rest;
  (void)body;
  Thm inst2 = logic::spec(tv, inst1);
  Term lhs = kernel::eq_lhs(inst2.concl());
  Term rhs = kernel::eq_rhs(inst2.concl());
  auto [aut_head, largs] = kernel::strip_comb(lhs);
  auto [aut_head2, rargs] = kernel::strip_comb(rhs);
  if (largs.size() != 4 || rargs.size() != 4) {
    throw KernelError("formal_backward_retime: unexpected theorem shape");
  }

  const logic::Conv& reduce = detail::pair_reduce_conv();

  // h1 (registers before f) must reduce to the *retimed* netlist.
  Thm red1 = reduce(largs[0]);
  if (!(kernel::eq_rhs(red1.concl()) == retimed.h)) {
    throw KernelError(
        "formal_backward_retime: the joined form does not reduce to the "
        "backward-retimed transition function");
  }
  Thm th_l = Thm::trans(red1, Thm::alpha(kernel::eq_rhs(red1.concl()),
                                         retimed.h));

  // h2 (registers after f) must reduce to the *input* netlist.
  Thm red2 = reduce(rargs[0]);
  if (!(kernel::eq_rhs(red2.concl()) == orig.h)) {
    throw KernelError(
        "formal_backward_retime: the split does not reduce to the original "
        "transition function");
  }
  Thm th_r = Thm::trans(red2, Thm::alpha(kernel::eq_rhs(red2.concl()),
                                         orig.h));

  // Step 4: evaluate f(q0) inside the logic; it must equal the input
  // circuit's register contents (this *proves* the solver's answer).
  Thm eval_thm = ground_eval(rargs[1]);
  if (!(kernel::eq_rhs(eval_thm.concl()) == orig.q)) {
    throw BackwardError(
        "formal_backward_retime: f(q0) does not evaluate to the register "
        "contents — the solved initial state is wrong");
  }

  // Assemble:  AUT h_orig q i t = AUT h_retimed q0 i t.
  Thm lchain = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(aut_head, th_l),
                                Thm::refl(largs[1])),
                   Thm::refl(largs[2])),
      Thm::refl(largs[3]));
  Thm rchain = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(aut_head2, th_r), eval_thm),
                   Thm::refl(rargs[2])),
      Thm::refl(rargs[3]));
  // rchain : AUT h2 (f q0) i t = AUT h_orig q i t
  // inst2  : AUT h1 q0 i t     = AUT h2 (f q0) i t
  // lchain : AUT h1 q0 i t     = AUT h_retimed q0 i t
  Thm final_thm =
      Thm::trans(Thm::trans(logic::sym(rchain), logic::sym(inst2)), lchain);
  final_thm = logic::gen_list({iv, tv}, final_thm);

  return FormalBackwardResult{final_thm,    std::move(retimed_rtl),
                              split.f,      split.g,
                              split.chi,    std::move(q0)};
}

BackwardCut inverse_of_forward_cut(const RetimeMapping& mapping,
                                   const Cut& forward_cut) {
  BackwardCut inv;
  for (SignalId s : forward_cut.f_nodes) {
    if (auto it = mapping.comb_map.find(s); it != mapping.comb_map.end()) {
      inv.f_nodes.push_back(it->second);
    }
  }
  return inv;
}

}  // namespace eda::hash
