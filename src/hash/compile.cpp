#include "hash/compile.h"

#include "hash/term_build.h"

#include <map>
#include <set>

#include "kernel/once.h"
#include "kernel/signature.h"
#include "logic/bool_thms.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"

namespace eda::hash {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;
using kernel::bool_ty;
using kernel::fun_ty;
using kernel::KernelError;
using kernel::num_ty;
using kernel::prod_ty;
using kernel::Term;
using kernel::Type;

void init_hash_constants() {
  // Thread-safe, re-entry-tolerant one-time init (kernel/once.h).
  static kernel::InitOnce once;
  once.run([] {
    thy::init_numeral();
    thy::init_pair();
    auto& sig = kernel::Signature::instance();
    Type n2 = fun_ty(num_ty(), fun_ty(num_ty(), num_ty()));
    sig.declare_const("BITAND", n2);
    sig.declare_const("BITOR", n2);
    sig.declare_const("BITXOR", n2);
  });
}

namespace {

using detail::proj;
using detail::signal_type;
using detail::tuple_type;
using detail::TermBuilder;

Type input_tuple_type(const Rtl& rtl) {
  std::vector<Type> tys;
  for (SignalId s : rtl.inputs()) tys.push_back(signal_type(rtl, s));
  return tuple_type(tys);
}

Type state_tuple_type(const Rtl& rtl) {
  std::vector<Type> tys(rtl.regs().size(), num_ty());
  return tuple_type(tys);
}

}  // namespace

CompiledCircuit compile(const Rtl& rtl) {
  init_hash_constants();
  rtl.validate();
  if (rtl.inputs().empty()) {
    throw KernelError("compile: circuit needs at least one input");
  }
  if (rtl.regs().empty()) {
    throw KernelError("compile: circuit needs at least one register");
  }
  Type in_ty = input_tuple_type(rtl);
  Type st_ty = state_tuple_type(rtl);
  Term p = Term::var("p", prod_ty(in_ty, st_ty));
  Term in_tuple = thy::mk_fst(p);
  Term st_tuple = thy::mk_snd(p);

  TermBuilder tb{rtl, {}, nullptr, {}};
  std::size_t nin = rtl.inputs().size(), nreg = rtl.regs().size();
  auto in_index = detail::index_map(rtl.inputs());
  auto reg_index = detail::index_map(rtl.regs());
  tb.leaf = [&](SignalId s) -> std::optional<Term> {
    const Node& n = rtl.node(s);
    if (n.op == Op::Input) {
      if (auto it = in_index.find(s); it != in_index.end()) {
        return proj(in_tuple, it->second, nin);
      }
    }
    if (n.op == Op::Reg) {
      if (auto it = reg_index.find(s); it != reg_index.end()) {
        return proj(st_tuple, it->second, nreg);
      }
    }
    return std::nullopt;
  };

  std::vector<Term> outs;
  for (const circuit::OutputPort& o : rtl.outputs()) {
    outs.push_back(tb.build(o.signal));
  }
  std::vector<Term> nexts;
  for (SignalId r : rtl.regs()) nexts.push_back(tb.build(rtl.node(r).next));

  Term body = thy::mk_pair(thy::mk_tuple(outs), thy::mk_tuple(nexts));
  CompiledCircuit out{Term::abs(p, body), Term::var("tmp", num_ty()), in_ty,
                      st_ty, thy::mk_tuple(outs).type()};
  std::vector<Term> inits;
  for (SignalId r : rtl.regs()) {
    inits.push_back(thy::mk_numeral(rtl.node(r).value));
  }
  out.q = thy::mk_tuple(inits);
  return out;
}

SplitCircuit compile_split(const Rtl& rtl, const Cut& cut) {
  init_hash_constants();
  rtl.validate();
  if (rtl.inputs().empty() || rtl.regs().empty()) {
    throw KernelError("compile_split: need inputs and registers");
  }
  std::set<SignalId> F(cut.f_nodes.begin(), cut.f_nodes.end());
  for (SignalId s : F) {
    const Node& n = rtl.node(s);
    if (n.op == Op::Input || n.op == Op::Reg || n.op == Op::Const) {
      throw CutError("compile_split: cut may only contain combinational "
                     "operator nodes");
    }
    // Legality: f computes from registers (and constants) only.
    for (SignalId o : n.operands) {
      const Node& on = rtl.node(o);
      bool ok = on.op == Op::Reg || on.op == Op::Const || F.count(o) > 0;
      if (!ok) {
        throw CutError(
            "compile_split: node " + std::to_string(s) + " (" +
            circuit::op_name(n.op) + ") in f depends on signal " +
            std::to_string(o) + " (" + circuit::op_name(on.op) +
            ") outside the registers — the cut does not match the "
            "retiming pattern (paper, fig. 4)");
      }
    }
    if (rtl.is_flag(s)) {
      throw CutError("compile_split: flags cannot be registered; f must "
                     "produce word signals");
    }
  }

  // chi: every register or f-node whose value is consumed outside f.
  std::set<SignalId> used_by_g;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    const Node& n = rtl.nodes()[idx];
    bool comb = n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const;
    if (comb && F.count(static_cast<SignalId>(idx)) > 0) continue;
    for (SignalId o : n.operands) used_by_g.insert(o);
  }
  for (const circuit::OutputPort& o : rtl.outputs()) used_by_g.insert(o.signal);
  for (SignalId r : rtl.regs()) used_by_g.insert(rtl.node(r).next);

  std::vector<SignalId> chi;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    bool candidate = rtl.node(s).op == Op::Reg || F.count(s) > 0;
    if (candidate && used_by_g.count(s) > 0) chi.push_back(s);
  }
  if (chi.empty()) {
    throw CutError("compile_split: the cut leaves no registered signals");
  }

  // ---- f : state -> chi ----------------------------------------------------
  Type st_ty = state_tuple_type(rtl);
  std::vector<Type> chi_tys(chi.size(), num_ty());
  Type chi_ty = tuple_type(chi_tys);
  Term sv = Term::var("s", st_ty);
  std::size_t nreg = rtl.regs().size();

  TermBuilder fb{rtl, {}, nullptr, {}};
  fb.allowed = &F;
  auto reg_index = detail::index_map(rtl.regs());
  fb.leaf = [&](SignalId s) -> std::optional<Term> {
    if (rtl.node(s).op == Op::Reg) {
      if (auto it = reg_index.find(s); it != reg_index.end()) {
        return proj(sv, it->second, nreg);
      }
    }
    return std::nullopt;
  };
  std::vector<Term> chi_terms;
  for (SignalId c : chi) chi_terms.push_back(fb.build(c));
  Term f = Term::abs(sv, thy::mk_tuple(chi_terms));

  // ---- g : (inputs # chi) -> (outputs # state) -----------------------------
  Type in_ty = input_tuple_type(rtl);
  Term pg = Term::var("p", prod_ty(in_ty, chi_ty));
  Term in_tuple = thy::mk_fst(pg);
  Term chi_tuple = thy::mk_snd(pg);
  std::size_t nin = rtl.inputs().size();

  std::set<SignalId> g_allowed;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.node(s);
    bool comb = n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const;
    if (comb && F.count(s) == 0) g_allowed.insert(s);
  }
  TermBuilder gb{rtl, {}, nullptr, {}};
  gb.allowed = &g_allowed;
  auto chi_index = detail::index_map(chi);
  auto in_index = detail::index_map(rtl.inputs());
  gb.leaf = [&](SignalId s) -> std::optional<Term> {
    // chi members (registers and f-outputs) come in through the pair.
    if (auto it = chi_index.find(s); it != chi_index.end()) {
      return proj(chi_tuple, it->second, chi.size());
    }
    const Node& n = rtl.node(s);
    if (n.op == Op::Input) {
      if (auto it = in_index.find(s); it != in_index.end()) {
        return proj(in_tuple, it->second, nin);
      }
    }
    if (n.op == Op::Reg) {
      // A register consumed by g but not in chi would be a compiler bug:
      // chi collects exactly the g-visible registers.
      throw CutError("compile_split: register escapes the cut");
    }
    return std::nullopt;
  };
  std::vector<Term> outs;
  for (const circuit::OutputPort& o : rtl.outputs()) {
    outs.push_back(gb.build(o.signal));
  }
  std::vector<Term> nexts;
  for (SignalId r : rtl.regs()) nexts.push_back(gb.build(rtl.node(r).next));
  Term g = Term::abs(pg, thy::mk_pair(thy::mk_tuple(outs),
                                      thy::mk_tuple(nexts)));

  return SplitCircuit{f, g, chi};
}

}  // namespace eda::hash
