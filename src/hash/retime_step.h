#pragma once

#include "hash/compile.h"
#include "kernel/thm.h"

namespace eda::hash {

/// Result of one formal forward-retiming step.
struct FormalRetimeResult {
  /// The correctness theorem, derived inside the kernel:
  ///   |- !i t. AUTOMATON h q i t = AUTOMATON h' q' i t
  /// where (h, q) is the compiled original circuit and (h', q') the
  /// compiled retimed circuit (h' is the joined g-then-f combinational
  /// part, q' the evaluated new initial values f(q)).
  kernel::Thm theorem;
  /// The retimed netlist; `compile(retimed)` yields exactly (h', q') of the
  /// theorem — checked before returning.
  circuit::Rtl retimed;
  /// The split used (step 1 of the procedure).
  kernel::Term f_term;
  kernel::Term g_term;
  /// Which original signal each new register carries.
  std::vector<circuit::SignalId> chi;
};

/// Perform one formal forward-retiming step (paper, section IV.A):
///   1. split the combinational part into f and g according to `cut`
///      (throws CutError if the cut does not match the pattern — fig. 4);
///   2. instantiate the universal RETIMING_THM with f, g and the initial
///      state q;
///   3. join f and g into a single combinational part (beta/projection
///      normalisation of h2 = \p. (FST (g p), f (SND (g p))));
///   4. evaluate the new initial values f(q) (ground evaluation).
///
/// The returned theorem relates the *original* compiled description to the
/// *retimed* compiled description; by the LCF discipline it cannot be wrong
/// no matter what cut the heuristic supplied.
FormalRetimeResult formal_retime(const circuit::Rtl& rtl, const Cut& cut);

/// The conventional (unverified) counterpart: the same netlist transform
/// without entering the logic.  Used as the plain-synthesis baseline and to
/// cross-check structural agreement in tests.
circuit::Rtl conventional_retime(const circuit::Rtl& rtl, const Cut& cut);

/// Same, but also returns where each original combinational node went
/// (g-nodes keep their role; f-nodes map to their re-computed copy behind
/// the moved registers).  Multi-step retiming chains use this to track cut
/// sets across steps.
struct RetimeMapping {
  circuit::Rtl rtl;
  std::map<circuit::SignalId, circuit::SignalId> comb_map;
};
RetimeMapping conventional_retime_mapped(const circuit::Rtl& rtl,
                                         const Cut& cut);

}  // namespace eda::hash
