#pragma once

#include "kernel/thm.h"

namespace eda::hash {

/// Compose two synthesis-step theorems by transitivity (paper, section
/// III.A): from
///   |- !i t. AUTOMATON h0 q0 i t = AUTOMATON h1 q1 i t
///   |- !i t. AUTOMATON h1 q1 i t = AUTOMATON h2 q2 i t
/// derive
///   |- !i t. AUTOMATON h0 q0 i t = AUTOMATON h2 q2 i t.
///
/// The cost is a constant number of kernel rule applications (on shared
/// structure), so a compound synthesis step costs the sum of its parts —
/// the combinability argument that specialised post-synthesis verifiers
/// cannot match.
kernel::Thm compose_steps(const kernel::Thm& s1, const kernel::Thm& s2);

/// Compose a whole sequence of steps (left to right).
kernel::Thm compose_chain(const std::vector<kernel::Thm>& steps);

}  // namespace eda::hash
