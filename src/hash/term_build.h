#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "circuit/rtl.h"
#include "hash/compile.h"
#include "kernel/terms.h"
#include "logic/conv.h"

namespace eda::hash::detail {

/// HOL type of a signal: `num` for words, `bool` for flags.
kernel::Type signal_type(const circuit::Rtl& rtl, circuit::SignalId s);

/// Right-nested product of the given component types.
kernel::Type tuple_type(const std::vector<kernel::Type>& tys);

/// Projection of component k out of an n-tuple term (right-nested pairs).
kernel::Term proj(const kernel::Term& tuple, std::size_t k, std::size_t n);

/// Position lookup for leaf-resolution callbacks: signal id -> slot index.
/// Replaces the per-leaf linear scans, which were quadratic on wide
/// circuits.
std::unordered_map<circuit::SignalId, std::size_t> index_map(
    const std::vector<circuit::SignalId>& xs);

/// The shared beta / FST_PAIR / SND_PAIR reduction used to collapse
/// instantiated retiming/encoding theorems.  Built once (rule lookup and
/// specialisation are not free) and valid forever: the underlying theorems
/// are fixed after theory initialisation.
const logic::Conv& pair_reduce_conv();

/// Recursive signal-to-term builder with sharing via memoisation.  Both the
/// whole-circuit compiler and the f/g splitters (forward and backward) use
/// it; they differ only in the leaf-resolution callback and the set of
/// combinational nodes they are allowed to traverse.
struct TermBuilder {
  const circuit::Rtl& rtl;
  /// Leaf resolution: inputs / registers / chi members.  Returning nullopt
  /// means "not a leaf here" and the node is compiled structurally.
  std::function<std::optional<kernel::Term>(circuit::SignalId)> leaf;
  /// When set, only these combinational nodes may be compiled structurally;
  /// hitting any other raises CutError (the false-cut failure mode).
  const std::set<circuit::SignalId>* allowed = nullptr;
  std::map<circuit::SignalId, kernel::Term> memo;

  kernel::Term modulus(int width);
  kernel::Term wrap(const kernel::Term& t, int width);
  kernel::Term build(circuit::SignalId s);
  kernel::Term build_uncached(circuit::SignalId s);
};

}  // namespace eda::hash::detail
