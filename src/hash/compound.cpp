#include "hash/compound.h"

#include "logic/bool_thms.h"

namespace eda::hash {

using kernel::KernelError;
using kernel::Term;
using kernel::Thm;

Thm compose_steps(const Thm& s1, const Thm& s2) {
  // Strip !i t from both, aligning the bound variables of s2 with s1's.
  auto [i1, body1] = logic::dest_forall(s1.concl());
  auto [t1, eq1] = logic::dest_forall(body1);
  (void)eq1;
  Thm a = logic::spec(t1, logic::spec(i1, s1));
  Thm b = logic::spec(t1, logic::spec(i1, s2));
  Thm chained = Thm::trans(a, b);
  return logic::gen_list({i1, t1}, chained);
}

Thm compose_chain(const std::vector<Thm>& steps) {
  if (steps.empty()) throw KernelError("compose_chain: no steps");
  Thm out = steps.front();
  for (std::size_t k = 1; k < steps.size(); ++k) {
    out = compose_steps(out, steps[k]);
  }
  return out;
}

}  // namespace eda::hash
