#pragma once

#include <cstdint>
#include <vector>

#include "hash/compile.h"
#include "hash/retime_step.h"
#include "kernel/thm.h"

namespace eda::hash {

/// The cut for a *backward* retiming move: the set of combinational nodes
/// forming the sub-function `f` that the registers are moved backward
/// across.  The paper (section IV.A) notes that backward retiming uses the
/// same universal theorem right-to-left, but is harder because one has to
/// *find* initial values q0 with f(q0) = q — the current register contents
/// must be in the image of f.
///
/// Duality with the forward cut: forward requires every f-node to read only
/// registers (f sits just after the register bank); backward requires every
/// f-node to feed only registers (f sits just before the register bank).
struct BackwardCut {
  std::vector<circuit::SignalId> f_nodes;
};

/// Raised when a backward cut does not match the right-hand-side pattern of
/// RETIMING_THM (an f-node feeds an output port or a g-node), or when the
/// register contents are not in the image of f so no initial state exists,
/// or when the solver cannot determine one.  As with forward retiming, a
/// bad cut or a bad solver can make the step *fail* but can never make it
/// produce an incorrect theorem.
class BackwardError : public CutError {
 public:
  explicit BackwardError(const std::string& what) : CutError(what) {}
};

/// The split of a circuit already in the retimed (RHS) shape:
///   g : (inputs # state) -> (outputs # chi)   (reads the registers)
///   f : chi -> state                          (feeds the registers)
/// `chi` lists the signals at which the registers will sit after the
/// backward move: the non-f signals feeding the cut, plus any register
/// next-value that bypasses the cut (identity components of f).
struct BackwardSplit {
  kernel::Term f;
  kernel::Term g;
  std::vector<circuit::SignalId> chi;
};

/// Build the f/g split for a backward move.  Throws BackwardError when the
/// cut does not match the pattern (the fig.-4 failure mode, mirrored).
BackwardSplit compile_backward_split(const circuit::Rtl& rtl,
                                     const BackwardCut& cut);

/// Solve f(q0) = q for the new initial values q0 (one per chi component,
/// in chi order).  Identity components pin their leaf directly; cone
/// components are inverted where the ops allow it (add/sub/xor/not/mul-odd
/// against ground operands, mux with a decided select) and brute-forced
/// over the remaining leaves when the joint search space is small.  Throws
/// BackwardError when no solution exists or none can be found.
///
/// This is *heuristic machine arithmetic* — the formal step re-derives
/// f(q0) = q inside the logic, so a bug here cannot corrupt the theorem.
std::vector<std::uint64_t> solve_initial_state(
    const circuit::Rtl& rtl, const BackwardCut& cut,
    const std::vector<circuit::SignalId>& chi);

/// Result of one formal backward-retiming step.
struct FormalBackwardResult {
  /// |- !i t. AUTOMATON h q i t = AUTOMATON h' q0 i t, where (h, q) is the
  /// compiled input circuit (RHS shape) and (h', q0) the compiled
  /// backward-retimed circuit.  Derived by instantiating RETIMING_THM with
  /// (f, g, q0) and flipping it with SYM.
  kernel::Thm theorem;
  /// The backward-retimed netlist: registers at the chi positions with the
  /// solved initial values, f recomputed combinationally after them.
  circuit::Rtl retimed;
  kernel::Term f_term;
  kernel::Term g_term;
  std::vector<circuit::SignalId> chi;
  /// The solved initial values (chi order), as proved by the theorem.
  std::vector<std::uint64_t> q0;
};

/// Perform one formal backward-retiming step:
///   1. split into g (register readers) and f (register feeders) according
///      to `cut` (throws BackwardError on a false cut);
///   2. solve f(q0) = q for the new initial values (throws when the
///      register contents are not reachable through f);
///   3. instantiate RETIMING_THM with f, g, q0 and orient it right-to-left;
///   4. evaluate f(q0) in the logic and discharge the initial-state side of
///      the match.
FormalBackwardResult formal_backward_retime(const circuit::Rtl& rtl,
                                            const BackwardCut& cut);

/// The conventional (unverified) counterpart of the same netlist transform.
circuit::Rtl conventional_backward_retime(const circuit::Rtl& rtl,
                                          const BackwardCut& cut);

/// Same, but also returns where each original combinational node went
/// (g-nodes keep their role; f-nodes map to their copy recomputed after
/// the moved registers).  Multi-step chains mixing forward and backward
/// moves use this to track cut sets across steps.
RetimeMapping conventional_backward_retime_mapped(const circuit::Rtl& rtl,
                                                  const BackwardCut& cut);

/// The backward cut on `forward_retime(rtl, cut)`'s result that undoes that
/// forward move (the images of the forward cut's f-nodes, read off the
/// RetimeMapping).  Round-tripping forward∘backward is the natural
/// correctness probe for the pair of steps and is property-tested.
BackwardCut inverse_of_forward_cut(const RetimeMapping& mapping,
                                   const Cut& forward_cut);

}  // namespace eda::hash
