#pragma once

#include <vector>

#include "hash/compile.h"
#include "kernel/thm.h"

namespace eda::hash {

/// Raised when dead-register removal cannot proceed (no dead registers, or
/// removal would leave the circuit stateless).
class RedundancyError : public kernel::KernelError {
 public:
  explicit RedundancyError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// Registers whose values never reach a primary output: the *live* set is
/// the backward closure of the output cones through register next-state
/// cones; everything else is dead.  Dead registers may read each other and
/// themselves (free-running counters, orphaned pipeline tails) — the
/// analysis handles such cycles because liveness, not deadness, is the
/// fixpoint.  Returned in register-bank order.
std::vector<circuit::SignalId> find_dead_registers(const circuit::Rtl& rtl);

/// Result of one formal dead-register-elimination step (the paper's
/// "elimination of redundant parts", section VI).
struct FormalDeadRemovalResult {
  /// |- !i t. AUTOMATON h q i t = AUTOMATON h' q' i t, where (h, q) is the
  /// compiled input circuit and (h', q') the compiled stripped circuit.
  /// Derived as a *compound* step, showcasing the transitivity argument:
  ///   1. ENCODING_THM instance: permute the dead registers to the tail;
  ///   2. ENCODING_THM instance: re-associate the state tuple into
  ///      (live-tuple # dead-tuple);
  ///   3. DEAD_STATE_THM instance: drop the dead component.
  kernel::Thm theorem;
  /// The stripped netlist: dead registers and the combinational nodes only
  /// they consumed are gone.
  circuit::Rtl stripped;
  /// The removed registers (ids in the *input* netlist, bank order).
  std::vector<circuit::SignalId> removed;
};

/// Remove every dead register, formally.  Throws RedundancyError when
/// there is nothing to remove or when all registers are dead (the stripped
/// circuit must keep at least one register).
FormalDeadRemovalResult formal_remove_dead_registers(const circuit::Rtl& rtl);

/// The conventional (unverified) counterpart of the same netlist transform.
circuit::Rtl conventional_remove_dead(const circuit::Rtl& rtl);

}  // namespace eda::hash
