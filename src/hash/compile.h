#pragma once

#include <vector>

#include "circuit/rtl.h"
#include "kernel/terms.h"

namespace eda::hash {

/// The cut produced by a retiming heuristic: the set of combinational nodes
/// forming the sub-function `f` that the registers are moved across
/// (forward retiming).  Any heuristic — or a human — may produce this; a
/// wrong cut can never produce a wrong theorem (paper, section IV.C).
struct Cut {
  std::vector<circuit::SignalId> f_nodes;
};

/// Raised when a cut does not satisfy the pattern of the universal
/// retiming theorem (fig. 4 of the paper): some f-node depends on a primary
/// input or on a g-node, so no f/g split of the transition function exists.
class CutError : public kernel::KernelError {
 public:
  explicit CutError(const std::string& what) : kernel::KernelError(what) {}
};

/// A circuit compiled into the Automata theory: its transition/output
/// function `h : (inputs # state) -> (outputs # state)` as a single lambda
/// term, and its initial state tuple `q` (numerals).
struct CompiledCircuit {
  kernel::Term h;
  kernel::Term q;
  kernel::Type input_ty;
  kernel::Type state_ty;
  kernel::Type output_ty;
};

/// Deep-embed a word-level circuit as a HOL term.  Words become `num`
/// (arithmetic is wrapped with MOD 2^w), flags become `bool`, the input /
/// register / output tuples are right-nested pairs in declaration order.
CompiledCircuit compile(const circuit::Rtl& rtl);

/// The split of the combinational part demanded by the retiming pattern:
///   f : state -> chi        (the part the registers move across)
///   g : (inputs # chi) -> (outputs # state)
/// together with the chi layout (which original signal each new register
/// carries).  Throws CutError when the cut is illegal.
struct SplitCircuit {
  kernel::Term f;
  kernel::Term g;
  /// Original signals (registers passed through, or f-node outputs) that
  /// form the components of chi, in order.
  std::vector<circuit::SignalId> chi;
};

SplitCircuit compile_split(const circuit::Rtl& rtl, const Cut& cut);

/// Initialise the (axiom-free) bitwise constants BITAND/BITOR/BITXOR used
/// by the compiler; ground instances are evaluated by the compute oracle.
void init_hash_constants();

}  // namespace eda::hash
