#include "hash/encode_step.h"

#include <map>
#include <set>

#include "hash/eval.h"
#include "hash/term_build.h"
#include "kernel/signature.h"
#include "logic/bool_thms.h"
#include "logic/rewrite.h"
#include "theories/encoding_thm.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"

namespace eda::hash {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;
using kernel::fun_ty;
using kernel::KernelError;
using kernel::num_ty;
using kernel::Term;
using kernel::Thm;
using kernel::Type;

namespace {

using detail::proj;
using detail::tuple_type;

Type state_ty(std::size_t nregs) {
  std::vector<Type> tys(nregs, num_ty());
  return tuple_type(tys);
}

Term bitxor_tm(const Term& a, const Term& b) {
  init_hash_constants();
  Type n2 = fun_ty(num_ty(), fun_ty(num_ty(), num_ty()));
  return Term::comb(Term::comb(Term::constant("BITXOR", n2), a), b);
}

/// The reduction used everywhere in this module: beta, literal-pair
/// projections, XOR cancellation, and surjective-pairing collapse.
logic::Conv encode_reduce() {
  return logic::top_depth_conv(logic::orelsec(
      logic::beta_conv,
      logic::orelsec(
          logic::rewr_conv(thy::fst_pair()),
          logic::orelsec(
              logic::rewr_conv(thy::snd_pair()),
              logic::orelsec(logic::rewr_conv(bitxor_cancel()),
                             logic::rewr_conv(thy::pair_surj()))))));
}

/// Common tail of both steps: instantiate ENCODING_THM, discharge the
/// retraction, reduce both sides onto the compiled netlists and assemble
///   |- !i t. AUT h q i t = AUT h' q' i t.
FormalEncodeResult instantiate_encoding(const Rtl& rtl, Rtl encoded_rtl,
                                        const Term& enc, const Term& dec) {
  CompiledCircuit orig = compile(rtl);
  CompiledCircuit enc_cc = compile(encoded_rtl);

  Thm retraction = prove_retraction(enc, dec);
  Thm inst = logic::pspec_list({enc, dec, orig.h, orig.q},
                               thy::encoding_thm());
  // !i t. AUT h q i t = AUT h2 (enc q) i t
  Thm eq = logic::mp(inst, retraction);

  auto [iv, rest] = logic::dest_forall(eq.concl());
  Thm eq1 = logic::spec(iv, eq);
  auto [tv, body] = logic::dest_forall(eq1.concl());
  (void)rest;
  (void)body;
  Thm eq2 = logic::spec(tv, eq1);
  Term rhs = kernel::eq_rhs(eq2.concl());
  auto [aut_head, rargs] = kernel::strip_comb(rhs);
  if (rargs.size() != 4) {
    throw KernelError("instantiate_encoding: unexpected theorem shape");
  }

  const logic::Conv& reduce = detail::pair_reduce_conv();
  Thm red = reduce(rargs[0]);  // h2 = <joined encoded form>
  if (!(kernel::eq_rhs(red.concl()) == enc_cc.h)) {
    throw EncodeError(
        "instantiate_encoding: the encoded transition function does not "
        "match the re-encoded netlist");
  }
  Thm th_h = Thm::trans(red, Thm::alpha(kernel::eq_rhs(red.concl()),
                                        enc_cc.h));

  Thm eval_thm = ground_eval(rargs[1]);  // enc q = q'
  if (!(kernel::eq_rhs(eval_thm.concl()) == enc_cc.q)) {
    throw EncodeError(
        "instantiate_encoding: evaluated initial state disagrees with the "
        "re-encoded netlist");
  }

  Thm rchain = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(aut_head, th_h), eval_thm),
                   Thm::refl(rargs[2])),
      Thm::refl(rargs[3]));
  Thm final_thm = Thm::trans(eq2, rchain);
  final_thm = logic::gen_list({iv, tv}, final_thm);

  return FormalEncodeResult{final_thm, std::move(encoded_rtl), enc, dec,
                            retraction};
}

}  // namespace

FormalSignalEncodeResult formal_output_xor(
    const Rtl& rtl, const std::vector<std::uint64_t>& masks) {
  init_hash_constants();
  rtl.validate();
  const std::size_t n = rtl.outputs().size();
  if (masks.size() != n) {
    throw EncodeError("formal_output_xor: mask arity " +
                      std::to_string(masks.size()) + " != output count " +
                      std::to_string(n));
  }
  for (std::size_t k = 0; k < n; ++k) {
    SignalId o = rtl.outputs()[k].signal;
    if (rtl.is_flag(o)) {
      throw EncodeError("formal_output_xor: output '" +
                        rtl.outputs()[k].name + "' is a flag");
    }
    if ((masks[k] & rtl.mask(o)) != masks[k]) {
      throw EncodeError("formal_output_xor: mask does not fit output '" +
                        rtl.outputs()[k].name + "'");
    }
  }

  // enc = \o. (o_0 XOR m_0, ..., o_{n-1} XOR m_{n-1}).
  std::vector<Type> out_tys(n, num_ty());
  Type out_ty = tuple_type(out_tys);
  Term ov = Term::var("o", out_ty);
  std::vector<Term> parts;
  parts.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    parts.push_back(bitxor_tm(proj(ov, k, n), thy::mk_numeral(masks[k])));
  }
  Term enc = Term::abs(ov, thy::mk_tuple(parts));

  // Netlist: identical graph plus one XOR per output port.
  Rtl out;
  std::map<SignalId, SignalId> ctx;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& nd = rtl.nodes()[idx];
    switch (nd.op) {
      case Op::Input:
        ctx.emplace(s, out.add_input(nd.name, nd.width));
        break;
      case Op::Reg:
        ctx.emplace(s, out.add_reg(nd.name, nd.width, nd.value));
        break;
      case Op::Const:
        ctx.emplace(s, nd.width == 0 ? out.add_const_flag(nd.value != 0)
                                     : out.add_const(nd.width, nd.value));
        break;
      default: {
        std::vector<SignalId> ops;
        ops.reserve(nd.operands.size());
        for (SignalId o : nd.operands) ops.push_back(ctx.at(o));
        ctx.emplace(s, out.add_op(nd.op, std::move(ops)));
      }
    }
  }
  for (SignalId r : rtl.regs()) {
    out.set_reg_next(ctx.at(r), ctx.at(rtl.node(r).next));
  }
  for (std::size_t k = 0; k < n; ++k) {
    const circuit::OutputPort& port = rtl.outputs()[k];
    SignalId cm = out.add_const(rtl.width(port.signal), masks[k]);
    out.add_output(port.name,
                   out.add_op(Op::Xor, {ctx.at(port.signal), cm}));
  }
  out.validate();

  CompiledCircuit orig = compile(rtl);
  CompiledCircuit wrapped = compile(out);

  Thm inst = logic::pspec_list({enc, orig.h, orig.q},
                               thy::output_encoding_thm());
  auto [iv, rest] = logic::dest_forall(inst.concl());
  Thm inst1 = logic::spec(iv, inst);
  auto [tv, body] = logic::dest_forall(inst1.concl());
  (void)rest;
  (void)body;
  Thm inst2 = logic::spec(tv, inst1);
  // inst2 : AUT h2 q i t = enc (AUT h q i t)
  Term lhs = kernel::eq_lhs(inst2.concl());
  auto [aut_head, largs] = kernel::strip_comb(lhs);
  if (largs.size() != 4) {
    throw KernelError("formal_output_xor: unexpected theorem shape");
  }
  const logic::Conv& reduce = detail::pair_reduce_conv();
  Thm red = reduce(largs[0]);
  if (!(kernel::eq_rhs(red.concl()) == wrapped.h)) {
    throw EncodeError(
        "formal_output_xor: the wrapped transition function does not match "
        "the re-encoded netlist");
  }
  Thm th_h = Thm::trans(red, Thm::alpha(kernel::eq_rhs(red.concl()),
                                        wrapped.h));
  Thm lchain = Thm::mk_comb(
      Thm::mk_comb(Thm::mk_comb(logic::ap_term(aut_head, th_h),
                                Thm::refl(largs[1])),
                   Thm::refl(largs[2])),
      Thm::refl(largs[3]));
  Thm final_thm = Thm::trans(logic::sym(lchain), inst2);
  final_thm = logic::gen_list({iv, tv}, final_thm);

  return FormalSignalEncodeResult{final_thm, std::move(out), enc};
}

Thm bitxor_cancel() {
  init_hash_constants();
  auto& sig = kernel::Signature::instance();
  if (auto cached = sig.find_theorem("BITXOR_CANCEL")) return *cached;
  Term a = Term::var("a", num_ty());
  Term b = Term::var("b", num_ty());
  Term prop = logic::mk_forall(
      a, logic::mk_forall(
             b, kernel::mk_eq(bitxor_tm(bitxor_tm(a, b), b), a)));
  Thm ax = sig.new_axiom("BITXOR_CANCEL", prop);
  return ax;
}

Thm prove_retraction(const Term& enc, const Term& dec) {
  Type c = kernel::dom_ty(enc.type());
  Term sv = Term::var("s", c);
  Term composed = Term::comb(dec, Term::comb(enc, sv));
  Thm red = encode_reduce()(composed);
  if (!(kernel::eq_rhs(red.concl()) == sv)) {
    throw EncodeError(
        "prove_retraction: dec o enc does not reduce to the identity "
        "(got " + kernel::eq_rhs(red.concl()).to_string() + ")");
  }
  return logic::gen(sv, red);
}

FormalEncodeResult formal_permute_registers(
    const Rtl& rtl, const std::vector<std::size_t>& perm) {
  init_hash_constants();
  rtl.validate();
  const std::size_t n = rtl.regs().size();
  if (perm.size() != n) {
    throw EncodeError("formal_permute_registers: permutation arity " +
                      std::to_string(perm.size()) + " != register count " +
                      std::to_string(n));
  }
  std::vector<std::size_t> inv(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    if (perm[k] >= n || inv[perm[k]] != n) {
      throw EncodeError("formal_permute_registers: not a bijection");
    }
    inv[perm[k]] = k;
  }

  // enc : s |-> tuple with component j = s_{inv[j]};  dec is the inverse.
  Type st = state_ty(n);
  Term sv = Term::var("s", st);
  std::vector<Term> enc_parts(n, sv);
  for (std::size_t j = 0; j < n; ++j) enc_parts[j] = proj(sv, inv[j], n);
  Term enc = Term::abs(sv, thy::mk_tuple(enc_parts));
  Term xv = Term::var("x", st);
  std::vector<Term> dec_parts(n, xv);
  for (std::size_t k = 0; k < n; ++k) dec_parts[k] = proj(xv, perm[k], n);
  Term dec = Term::abs(xv, thy::mk_tuple(dec_parts));

  Rtl permuted = rtl;
  permuted.reorder_registers(perm);

  return instantiate_encoding(rtl, std::move(permuted), enc, dec);
}

FormalEncodeResult formal_xor_reencode(
    const Rtl& rtl, const std::vector<std::uint64_t>& masks) {
  init_hash_constants();
  rtl.validate();
  const std::size_t n = rtl.regs().size();
  if (masks.size() != n) {
    throw EncodeError("formal_xor_reencode: mask arity " +
                      std::to_string(masks.size()) + " != register count " +
                      std::to_string(n));
  }
  for (std::size_t k = 0; k < n; ++k) {
    SignalId r = rtl.regs()[k];
    std::uint64_t m = rtl.mask(r);
    if ((masks[k] & m) != masks[k]) {
      throw EncodeError("formal_xor_reencode: mask " +
                        std::to_string(masks[k]) +
                        " does not fit register '" + rtl.node(r).name + "'");
    }
  }

  // enc = dec = \s. (s_0 XOR m_0, ..., s_{n-1} XOR m_{n-1}).
  Type st = state_ty(n);
  auto mk_coder = [&](const char* v) {
    Term sv = Term::var(v, st);
    std::vector<Term> parts;
    parts.reserve(n);
    for (std::size_t k = 0; k < n; ++k) {
      parts.push_back(bitxor_tm(proj(sv, k, n), thy::mk_numeral(masks[k])));
    }
    return Term::abs(sv, thy::mk_tuple(parts));
  };
  Term enc = mk_coder("s");
  Term dec = mk_coder("x");

  // Netlist: registers store encoded values; a decode XOR follows each
  // register, an encode XOR precedes each next-value input.
  Rtl out;
  std::map<SignalId, SignalId> ctx;  // original signal -> new signal
  for (SignalId in : rtl.inputs()) {
    ctx.emplace(in, out.add_input(rtl.node(in).name, rtl.node(in).width));
  }
  std::map<SignalId, SignalId> new_reg;    // original reg -> new reg node
  std::map<SignalId, SignalId> mask_const; // original reg -> mask constant
  for (std::size_t k = 0; k < n; ++k) {
    SignalId r = rtl.regs()[k];
    const Node& rn = rtl.node(r);
    SignalId nr = out.add_reg(rn.name, rn.width, rn.value ^ masks[k]);
    SignalId cm = out.add_const(rn.width, masks[k]);
    SignalId decoded = out.add_op(Op::Xor, {nr, cm});
    new_reg.emplace(r, nr);
    mask_const.emplace(r, cm);
    ctx.emplace(r, decoded);  // consumers read the decoded value
  }
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& nd = rtl.nodes()[idx];
    if (nd.op == Op::Input || nd.op == Op::Reg) continue;
    if (nd.op == Op::Const) {
      ctx.emplace(s, nd.width == 0 ? out.add_const_flag(nd.value != 0)
                                   : out.add_const(nd.width, nd.value));
      continue;
    }
    std::vector<SignalId> ops;
    ops.reserve(nd.operands.size());
    for (SignalId o : nd.operands) ops.push_back(ctx.at(o));
    ctx.emplace(s, out.add_op(nd.op, std::move(ops)));
  }
  for (const circuit::OutputPort& o : rtl.outputs()) {
    out.add_output(o.name, ctx.at(o.signal));
  }
  for (SignalId r : rtl.regs()) {
    SignalId encoded_next =
        out.add_op(Op::Xor, {ctx.at(rtl.node(r).next), mask_const.at(r)});
    out.set_reg_next(new_reg.at(r), encoded_next);
  }
  out.validate();

  return instantiate_encoding(rtl, std::move(out), enc, dec);
}

}  // namespace eda::hash
