#include "retime/mincost_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace eda::retime {

namespace {
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

MinCostFlow::MinCostFlow(int nodes)
    : n_(nodes), graph_(static_cast<std::size_t>(nodes)) {}

void MinCostFlow::add_arc(int u, int v, std::int64_t cap, std::int64_t cost) {
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    throw FlowError("add_arc: node out of range");
  }
  auto& gu = graph_[static_cast<std::size_t>(u)];
  auto& gv = graph_[static_cast<std::size_t>(v)];
  arc_index_.emplace_back(u, gu.size());
  original_cap_.push_back(cap);
  gu.push_back(Arc{v, cap, cost, gv.size()});
  gv.push_back(Arc{u, 0, -cost, gu.size() - 1});
}

std::optional<std::int64_t> MinCostFlow::solve(
    const std::vector<std::int64_t>& imbalance) {
  if (static_cast<int>(imbalance.size()) != n_) {
    throw FlowError("solve: imbalance arity mismatch");
  }
  std::int64_t total = 0;
  for (std::int64_t b : imbalance) total += b;
  if (total != 0) throw FlowError("solve: imbalances must sum to zero");

  // Initial potentials by Bellman–Ford (costs may be negative).
  std::vector<std::int64_t> pot(static_cast<std::size_t>(n_), 0);
  for (int round = 0; round <= n_; ++round) {
    bool changed = false;
    for (int u = 0; u < n_; ++u) {
      for (const Arc& a : graph_[static_cast<std::size_t>(u)]) {
        if (a.cap <= 0) continue;
        std::int64_t cand = pot[static_cast<std::size_t>(u)] + a.cost;
        if (cand < pot[static_cast<std::size_t>(a.to)]) {
          if (round == n_) {
            throw FlowError("solve: negative-cost cycle — the LP is "
                            "unbounded (infeasible period constraints)");
          }
          pot[static_cast<std::size_t>(a.to)] = cand;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  std::vector<std::int64_t> excess(imbalance.size());
  for (std::size_t k = 0; k < imbalance.size(); ++k) excess[k] = -imbalance[k];
  // excess > 0: supply still to ship; excess < 0: unmet demand.

  std::int64_t cost_total = 0;
  std::vector<std::int64_t> dist(static_cast<std::size_t>(n_));
  std::vector<std::pair<int, std::size_t>> parent(
      static_cast<std::size_t>(n_));

  while (true) {
    int src = -1;
    for (int v = 0; v < n_; ++v) {
      if (excess[static_cast<std::size_t>(v)] > 0) {
        src = v;
        break;
      }
    }
    if (src < 0) break;

    // Dijkstra with reduced costs from src.
    std::fill(dist.begin(), dist.end(), kInf);
    dist[static_cast<std::size_t>(src)] = 0;
    using Item = std::pair<std::int64_t, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
    pq.emplace(0, src);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[static_cast<std::size_t>(u)]) continue;
      auto& gu = graph_[static_cast<std::size_t>(u)];
      for (std::size_t k = 0; k < gu.size(); ++k) {
        const Arc& a = gu[k];
        if (a.cap <= 0) continue;
        std::int64_t rc = a.cost + pot[static_cast<std::size_t>(u)] -
                          pot[static_cast<std::size_t>(a.to)];
        std::int64_t nd = d + rc;
        if (nd < dist[static_cast<std::size_t>(a.to)]) {
          dist[static_cast<std::size_t>(a.to)] = nd;
          parent[static_cast<std::size_t>(a.to)] = {u, k};
          pq.emplace(nd, a.to);
        }
      }
    }

    // Nearest reachable deficit node.
    int dst = -1;
    std::int64_t best = kInf;
    for (int v = 0; v < n_; ++v) {
      if (excess[static_cast<std::size_t>(v)] < 0 &&
          dist[static_cast<std::size_t>(v)] < best) {
        best = dist[static_cast<std::size_t>(v)];
        dst = v;
      }
    }
    if (dst < 0) return std::nullopt;  // supply cannot reach any demand

    // Bottleneck along the path.
    std::int64_t push = std::min(excess[static_cast<std::size_t>(src)],
                                 -excess[static_cast<std::size_t>(dst)]);
    for (int v = dst; v != src;) {
      auto [u, k] = parent[static_cast<std::size_t>(v)];
      push = std::min(push, graph_[static_cast<std::size_t>(u)][k].cap);
      v = u;
    }
    // Apply.
    for (int v = dst; v != src;) {
      auto [u, k] = parent[static_cast<std::size_t>(v)];
      Arc& a = graph_[static_cast<std::size_t>(u)][k];
      a.cap -= push;
      graph_[static_cast<std::size_t>(a.to)][a.rev].cap += push;
      cost_total += push * a.cost;
      v = u;
    }
    excess[static_cast<std::size_t>(src)] -= push;
    excess[static_cast<std::size_t>(dst)] += push;

    // Update potentials; nodes beyond the augmenting sink are capped at
    // the sink distance so reduced costs stay non-negative.
    for (int v = 0; v < n_; ++v) {
      pot[static_cast<std::size_t>(v)] +=
          std::min(dist[static_cast<std::size_t>(v)], best);
    }
  }
  return cost_total;
}

std::vector<std::int64_t> MinCostFlow::residual_potentials() const {
  // Bellman–Ford from a virtual source with 0-cost arcs to every node,
  // over the residual graph.
  std::vector<std::int64_t> d(static_cast<std::size_t>(n_), 0);
  for (int round = 0; round <= n_; ++round) {
    bool changed = false;
    for (int u = 0; u < n_; ++u) {
      for (const Arc& a : graph_[static_cast<std::size_t>(u)]) {
        if (a.cap <= 0) continue;
        std::int64_t cand = d[static_cast<std::size_t>(u)] + a.cost;
        if (cand < d[static_cast<std::size_t>(a.to)]) {
          if (round == n_) {
            throw FlowError("residual_potentials: negative residual cycle "
                            "(flow not optimal?)");
          }
          d[static_cast<std::size_t>(a.to)] = cand;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return d;
}

std::int64_t MinCostFlow::arc_flow(std::size_t k) const {
  auto [u, slot] = arc_index_.at(k);
  return original_cap_.at(k) - graph_[static_cast<std::size_t>(u)][slot].cap;
}

}  // namespace eda::retime
