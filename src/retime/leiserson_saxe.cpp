#include "retime/leiserson_saxe.h"

#include <array>
#include <functional>
#include <algorithm>
#include <limits>
#include <set>

namespace eda::retime {

namespace {
constexpr int kInf = std::numeric_limits<int>::max() / 4;
}  // namespace

WD compute_wd(const RetimeGraph& g) {
  int n = g.vertex_count();
  WD wd;
  wd.W.assign(static_cast<std::size_t>(n),
              std::vector<int>(static_cast<std::size_t>(n), kInf));
  wd.D.assign(static_cast<std::size_t>(n),
              std::vector<int>(static_cast<std::size_t>(n), -kInf));
  auto relax = [&](int u, int v, int w, int d) {
    auto& W = wd.W;
    auto& D = wd.D;
    std::size_t ui = static_cast<std::size_t>(u);
    std::size_t vi = static_cast<std::size_t>(v);
    if (w < W[ui][vi] || (w == W[ui][vi] && d > D[ui][vi])) {
      W[ui][vi] = w;
      D[ui][vi] = d;
    }
  };
  for (int v = 0; v < n; ++v) {
    relax(v, v, 0, g.delay[static_cast<std::size_t>(v)]);
  }
  for (const Edge& e : g.edges) {
    relax(e.from, e.to, e.weight,
          g.delay[static_cast<std::size_t>(e.from)] +
              g.delay[static_cast<std::size_t>(e.to)]);
  }
  // The host (vertex 0) is excluded as an intermediate: a path through the
  // environment is not a combinational path, matching clock_period's
  // source/sink split of the host.
  for (int k = 1; k < n; ++k) {
    for (int u = 0; u < n; ++u) {
      std::size_t ui = static_cast<std::size_t>(u);
      std::size_t ki = static_cast<std::size_t>(k);
      if (wd.W[ui][ki] >= kInf) continue;
      for (int v = 0; v < n; ++v) {
        std::size_t vi = static_cast<std::size_t>(v);
        if (wd.W[ki][vi] >= kInf) continue;
        int w = wd.W[ui][ki] + wd.W[ki][vi];
        int d = wd.D[ui][ki] + wd.D[ki][vi] -
                g.delay[static_cast<std::size_t>(k)];
        relax(u, v, w, d);
      }
    }
  }
  return wd;
}

namespace {

/// Bellman–Ford on difference constraints x(u) - x(v) <= c, encoded as
/// edges v -> u with weight c.  Returns shortest-path potentials from a
/// virtual source, or nullopt on a negative cycle.
std::optional<std::vector<int>> solve_constraints(
    int n, const std::vector<std::array<int, 3>>& cons /* (u, v, c) */) {
  std::vector<int> dist(static_cast<std::size_t>(n), 0);  // virtual source
  for (int iter = 0; iter < n + 1; ++iter) {
    bool changed = false;
    for (const auto& [u, v, c] : cons) {
      std::size_t ui = static_cast<std::size_t>(u);
      std::size_t vi = static_cast<std::size_t>(v);
      if (dist[vi] + c < dist[ui]) {
        dist[ui] = dist[vi] + c;
        changed = true;
      }
    }
    if (!changed) return dist;
  }
  return std::nullopt;  // negative cycle
}

}  // namespace

std::optional<std::vector<int>> feasible_retiming(const RetimeGraph& g,
                                                  int period) {
  WD wd = compute_wd(g);
  int n = g.vertex_count();
  std::vector<std::array<int, 3>> cons;
  for (const Edge& e : g.edges) {
    cons.push_back({e.from, e.to, e.weight});  // r(u) - r(v) <= w(e)
  }
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      std::size_t ui = static_cast<std::size_t>(u);
      std::size_t vi = static_cast<std::size_t>(v);
      if (wd.W[ui][vi] < kInf && wd.D[ui][vi] > period) {
        cons.push_back({u, v, wd.W[ui][vi] - 1});
      }
    }
  }
  auto sol = solve_constraints(n, cons);
  if (!sol) return std::nullopt;
  // Normalise to r(host) = 0.
  int base = (*sol)[0];
  for (int& x : *sol) x -= base;
  return sol;
}

RetimingResult min_period_retiming(const RetimeGraph& g) {
  WD wd = compute_wd(g);
  std::set<int> candidates;
  int n = g.vertex_count();
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      std::size_t ui = static_cast<std::size_t>(u);
      std::size_t vi = static_cast<std::size_t>(v);
      if (wd.W[ui][vi] < kInf && wd.D[ui][vi] > -kInf) {
        candidates.insert(wd.D[ui][vi]);
      }
    }
  }
  std::vector<int> cand(candidates.begin(), candidates.end());
  // Binary search the smallest feasible candidate.
  int lo = 0, hi = static_cast<int>(cand.size()) - 1;
  RetimingResult best{clock_period(g), std::vector<int>(
                                           static_cast<std::size_t>(n), 0)};
  bool found = false;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    auto r = feasible_retiming(g, cand[static_cast<std::size_t>(mid)]);
    if (r) {
      best = {cand[static_cast<std::size_t>(mid)], *r};
      found = true;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  if (!found) {
    throw circuit::RtlError("min_period_retiming: no feasible period");
  }
  // Report the *actual* achieved period of the retimed graph, which may be
  // smaller than the candidate bound.
  best.period = clock_period(apply_retiming(g, best.r));
  return best;
}

RetimeGraph apply_retiming(const RetimeGraph& g, const std::vector<int>& r) {
  RetimeGraph out = g;
  for (Edge& e : out.edges) {
    e.weight += r[static_cast<std::size_t>(e.to)] -
                r[static_cast<std::size_t>(e.from)];
    if (e.weight < 0) {
      throw circuit::RtlError("apply_retiming: negative edge weight");
    }
  }
  return out;
}

int brute_force_min_period(const RetimeGraph& g, int bound) {
  int n = g.vertex_count();
  std::vector<int> r(static_cast<std::size_t>(n), 0);
  int best = kInf;
  // Enumerate r in [-bound, bound]^(n-1), host fixed at 0.
  std::function<void(int)> rec = [&](int v) {
    if (v == n) {
      try {
        best = std::min(best, clock_period(apply_retiming(g, r)));
      } catch (const circuit::RtlError&) {
        // illegal (negative weight or zero-weight cycle) — skip
      }
      return;
    }
    for (int x = -bound; x <= bound; ++x) {
      r[static_cast<std::size_t>(v)] = x;
      rec(v + 1);
    }
    r[static_cast<std::size_t>(v)] = 0;
  };
  rec(1);
  return best;
}

}  // namespace eda::retime
