#pragma once

#include <optional>

#include "retime/graph.h"

namespace eda::retime {

/// The W/D matrices of Leiserson–Saxe:
///   W(u,v) = minimum register count over u->v paths,
///   D(u,v) = maximum total path delay among paths achieving W(u,v)
/// (kInf / -kInf sentinels for unconnected pairs).  Shared by min-period
/// and min-area retiming.
struct WD {
  std::vector<std::vector<int>> W, D;
};

WD compute_wd(const RetimeGraph& g);

/// Result of min-period retiming.
struct RetimingResult {
  int period;                 // achieved clock period
  std::vector<int> r;         // retiming value per vertex (r[0] = 0)
};

/// Minimum-period retiming (Leiserson, Rose & Saxe 1983 / the paper's
/// reference [11]): compute the W and D matrices, binary-search the
/// candidate periods among the D values, and test feasibility of each by
/// Bellman–Ford on the constraint graph
///   r(u) - r(v) <= w(e)                 for every edge e : u -> v
///   r(u) - r(v) <= W(u,v) - 1           whenever D(u,v) > period.
RetimingResult min_period_retiming(const RetimeGraph& g);

/// Feasibility test for one candidate period (exposed for tests): returns
/// the retiming labels if the period is achievable.
std::optional<std::vector<int>> feasible_retiming(const RetimeGraph& g,
                                                  int period);

/// Apply a retiming: w_r(e) = w(e) + r(head) - r(tail); throws if any edge
/// weight would go negative (illegal retiming).
RetimeGraph apply_retiming(const RetimeGraph& g, const std::vector<int>& r);

/// Brute-force minimum period over all retimings with |r(v)| <= bound
/// (exponential; for cross-checking the algorithm on small graphs).
int brute_force_min_period(const RetimeGraph& g, int bound);

}  // namespace eda::retime
