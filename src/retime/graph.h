#pragma once

#include <map>
#include <vector>

#include "circuit/rtl.h"

namespace eda::retime {

/// Leiserson–Saxe retiming graph: vertices are combinational operations
/// with propagation delays, edges carry register counts.  Vertex 0 is the
/// host (environment) vertex, which must not be retimed (r(host) = 0).
struct Edge {
  int from;
  int to;
  int weight;  // registers on the connection
};

struct RetimeGraph {
  std::vector<int> delay;  // delay[v]; delay[0] = 0 (host)
  std::vector<Edge> edges;
  /// For graphs built from an Rtl: which netlist node each vertex is.
  std::vector<circuit::SignalId> vertex_signal;  // [0] unused (host)

  int vertex_count() const { return static_cast<int>(delay.size()); }
};

/// Build the retiming graph of a netlist: one vertex per combinational
/// node (unit delay per operator by default, multipliers weighted heavier),
/// an edge of weight 0 for a direct connection and weight 1 through a
/// register; the host sources the inputs and sinks the outputs.
RetimeGraph graph_from_rtl(const circuit::Rtl& rtl);

/// Clock period of a graph: the longest pure-combinational (zero-weight)
/// path delay.  Throws if a zero-weight cycle exists.
int clock_period(const RetimeGraph& g);

/// Clock period of a netlist (register-to-register / IO critical path,
/// using the same delay model as graph_from_rtl).
int clock_period(const circuit::Rtl& rtl);

/// Per-operator delay used by the model.
int op_delay(circuit::Op op);

}  // namespace eda::retime
