#pragma once

#include "retime/leiserson_saxe.h"
#include "retime/mincost_flow.h"

namespace eda::retime {

/// Result of minimum-area retiming.
struct MinAreaResult {
  std::vector<int> r;            // retiming labels, r[0] = 0 (host)
  long long register_count;      // total edge registers after retiming
  int period;                    // achieved clock period (<= requested)
};

/// Total register count of a graph (sum of edge weights) — the area
/// objective in the edge-count model of Leiserson–Saxe.  The mirror-vertex
/// fanout-sharing refinement is out of scope and documented in DESIGN.md.
long long total_registers(const RetimeGraph& g);

/// Minimum-area retiming subject to a clock-period bound (Leiserson–Saxe
/// 1991, section 8): minimise sum_e w_r(e) subject to w_r(e) >= 0 and the
/// W/D period constraints.  Solved exactly through the LP dual, a
/// min-cost transshipment on the constraint graph: each constraint
/// r(u) - r(v) <= b becomes an uncapacitated arc u -> v of cost b, node
/// imbalances are indegree - outdegree of the register-weighted edges, and
/// the optimal labels are recovered from the residual potentials.
/// Throws FlowError when the period is infeasible.
MinAreaResult min_area_retiming(const RetimeGraph& g, int period);

/// Exhaustive reference: minimum register count over all legal retimings
/// with |r(v)| <= bound achieving the period (exponential; for tests).
long long brute_force_min_area(const RetimeGraph& g, int period, int bound);

}  // namespace eda::retime
