#include "retime/graph.h"

#include <algorithm>
#include <set>

namespace eda::retime {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;

int op_delay(Op op) {
  switch (op) {
    case Op::Mul:
      return 4;
    case Op::Add:
    case Op::Sub:
      return 2;
    case Op::Input:
    case Op::Reg:
    case Op::Const:
      return 0;
    default:
      return 1;
  }
}

RetimeGraph graph_from_rtl(const Rtl& rtl) {
  RetimeGraph g;
  g.delay.push_back(0);  // host
  g.vertex_signal.push_back(-1);
  std::map<SignalId, int> vertex_of;
  for (std::size_t idx = 0; idx < rtl.nodes().size(); ++idx) {
    SignalId s = static_cast<SignalId>(idx);
    const Node& n = rtl.node(s);
    bool comb = n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const;
    if (!comb) continue;
    vertex_of.emplace(s, g.vertex_count());
    g.delay.push_back(op_delay(n.op));
    g.vertex_signal.push_back(s);
  }

  // Resolve a signal to (source vertex, weight): direct for comb nodes,
  // through one register for Reg nodes (source = the producer of next),
  // host for inputs/consts.
  auto source_of = [&](SignalId s) -> std::pair<int, int> {
    const Node& n = rtl.node(s);
    if (n.op == Op::Reg) {
      SignalId producer = n.next;
      const Node& pn = rtl.node(producer);
      bool comb = pn.op != Op::Input && pn.op != Op::Reg &&
                  pn.op != Op::Const;
      if (comb) return {vertex_of.at(producer), 1};
      if (pn.op == Op::Reg) {
        // Register chains: walk back accumulating weight.
        int w = 1;
        SignalId cur = producer;
        while (rtl.node(cur).op == Op::Reg) {
          cur = rtl.node(cur).next;
          ++w;
          if (w > static_cast<int>(rtl.nodes().size())) break;
        }
        const Node& cn = rtl.node(cur);
        bool comb2 = cn.op != Op::Input && cn.op != Op::Reg &&
                     cn.op != Op::Const;
        return {comb2 ? vertex_of.at(cur) : 0, w};
      }
      return {0, 1};
    }
    if (n.op == Op::Input || n.op == Op::Const) return {0, 0};
    return {vertex_of.at(s), 0};
  };

  for (const auto& [s, v] : vertex_of) {
    for (SignalId o : rtl.node(s).operands) {
      // Constants are freely replicable and place no retiming constraint
      // (they may sit on either side of any cut).
      if (rtl.node(o).op == Op::Const) continue;
      auto [src, w] = source_of(o);
      g.edges.push_back({src, v, w});
    }
  }
  for (const circuit::OutputPort& p : rtl.outputs()) {
    auto [src, w] = source_of(p.signal);
    g.edges.push_back({src, 0, w});
  }
  return g;
}

int clock_period(const RetimeGraph& g) {
  // Longest zero-weight path: DP over a topological order of the
  // zero-weight subgraph.  The host vertex is split into a source and a
  // virtual sink (index n) so that combinational input-to-output paths do
  // not close a spurious cycle through the environment.
  int n = g.vertex_count() + 1;
  const int sink = n - 1;
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const Edge& e : g.edges) {
    if (e.weight == 0) {
      int to = e.to == 0 ? sink : e.to;
      succ[static_cast<std::size_t>(e.from)].push_back(to);
      ++indeg[static_cast<std::size_t>(to)];
    }
  }
  std::vector<int> order;
  std::vector<int> head;
  for (int v = 0; v < n; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) head.push_back(v);
  }
  while (!head.empty()) {
    int v = head.back();
    head.pop_back();
    order.push_back(v);
    for (int s : succ[static_cast<std::size_t>(v)]) {
      if (--indeg[static_cast<std::size_t>(s)] == 0) head.push_back(s);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    throw circuit::RtlError("clock_period: zero-weight cycle");
  }
  std::vector<int> arrive(static_cast<std::size_t>(n), 0);
  int best = 0;
  for (int v : order) {
    int dv = v == sink ? 0 : g.delay[static_cast<std::size_t>(v)];
    arrive[static_cast<std::size_t>(v)] += dv;
    best = std::max(best, arrive[static_cast<std::size_t>(v)]);
    for (int s : succ[static_cast<std::size_t>(v)]) {
      arrive[static_cast<std::size_t>(s)] =
          std::max(arrive[static_cast<std::size_t>(s)],
                   arrive[static_cast<std::size_t>(v)]);
    }
  }
  return best;
}

int clock_period(const Rtl& rtl) { return clock_period(graph_from_rtl(rtl)); }

}  // namespace eda::retime
