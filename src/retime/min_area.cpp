#include "retime/min_area.h"

#include <algorithm>
#include <functional>
#include <limits>

namespace eda::retime {

namespace {
constexpr int kInf = std::numeric_limits<int>::max() / 4;
}  // namespace

long long total_registers(const RetimeGraph& g) {
  long long total = 0;
  for (const Edge& e : g.edges) total += e.weight;
  return total;
}

MinAreaResult min_area_retiming(const RetimeGraph& g, int period) {
  const int n = g.vertex_count();
  WD wd = compute_wd(g);

  // Objective: sum_e (w + r(to) - r(from)) = const + sum_v a_v r(v) with
  // a_v = indeg(v) - outdeg(v).  LP dual: transshipment with node
  // imbalance a_v (positive = demand) and one uncapacitated arc per
  // difference constraint r(u) - r(v) <= b, cost b.
  std::vector<std::int64_t> imbalance(static_cast<std::size_t>(n), 0);
  for (const Edge& e : g.edges) {
    imbalance[static_cast<std::size_t>(e.to)] += 1;    // indegree
    imbalance[static_cast<std::size_t>(e.from)] -= 1;  // outdegree
  }

  MinCostFlow flow(n);
  for (const Edge& e : g.edges) {
    flow.add_arc(e.from, e.to, MinCostFlow::kInfCap, e.weight);
  }
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      std::size_t ui = static_cast<std::size_t>(u);
      std::size_t vi = static_cast<std::size_t>(v);
      if (u != v && wd.W[ui][vi] < kInf && wd.D[ui][vi] > period) {
        flow.add_arc(u, v, MinCostFlow::kInfCap, wd.W[ui][vi] - 1);
      }
    }
  }

  auto cost = flow.solve(imbalance);
  if (!cost) {
    throw FlowError("min_area_retiming: period " + std::to_string(period) +
                    " is infeasible");
  }

  // Optimal labels from the residual potentials: d(v) satisfies
  // d(v) <= d(u) + b for every residual constraint arc, so r = -d solves
  // r(u) - r(v) <= b; complementary slackness makes it optimal.
  std::vector<std::int64_t> d = flow.residual_potentials();
  std::vector<int> r(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    r[static_cast<std::size_t>(v)] = static_cast<int>(
        -(d[static_cast<std::size_t>(v)] - d[0]));  // r(host) = 0
  }

  RetimeGraph after = apply_retiming(g, r);
  MinAreaResult res;
  res.r = std::move(r);
  res.register_count = total_registers(after);
  res.period = clock_period(after);
  if (res.period > period) {
    throw FlowError("min_area_retiming: internal error — recovered labels "
                    "violate the period bound");
  }
  return res;
}

long long brute_force_min_area(const RetimeGraph& g, int period, int bound) {
  const int n = g.vertex_count();
  std::vector<int> r(static_cast<std::size_t>(n), 0);
  long long best = std::numeric_limits<long long>::max();
  std::function<void(int)> rec = [&](int v) {
    if (v == n) {
      try {
        RetimeGraph after = apply_retiming(g, r);
        if (clock_period(after) <= period) {
          best = std::min(best, total_registers(after));
        }
      } catch (const circuit::RtlError&) {
        // illegal retiming — skip
      }
      return;
    }
    for (int x = -bound; x <= bound; ++x) {
      r[static_cast<std::size_t>(v)] = x;
      rec(v + 1);
    }
    r[static_cast<std::size_t>(v)] = 0;
  };
  rec(1);  // host fixed at 0
  return best;
}

}  // namespace eda::retime
