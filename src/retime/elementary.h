#pragma once

#include <map>

#include "hash/compound.h"
#include "hash/retime_step.h"
#include "retime/leiserson_saxe.h"

namespace eda::retime {

/// Formally-verified multi-step retiming:
///
/// The Leiserson–Saxe heuristic produces retiming labels r(v) on the
/// netlist's combinational nodes.  The retiming is decomposed into
/// elementary moves — forward cuts F_k = { v : r(v) <= -k } first (which
/// keeps every intermediate edge weight legal), then backward cuts
/// B_k = { v : r(v) >= k } — each applied with the *formal* step, and the
/// step theorems composed by transitivity.
///
/// This is the paper's architecture end-to-end: an arbitrary conventional
/// heuristic supplies the control information, the logic performs —and
/// thereby proves— the transformation.
struct ChainResult {
  kernel::Thm theorem;      // |- !i t. AUT h0 q0 i t = AUT hN qN i t
  circuit::Rtl final_rtl;
  int steps = 0;
};

/// Decompose + apply + compose.  `r_of_signal` maps original combinational
/// node ids to retiming labels: negative = forward moves, positive =
/// backward moves (both directions of the universal theorem).  Nodes not
/// mentioned get r = 0.  Backward moves throw hash::BackwardError when the
/// registers' contents are not in the image of the moved logic — a real
/// obstruction, not a heuristic failure.
ChainResult formal_retime_by_labels(
    const circuit::Rtl& rtl,
    const std::map<circuit::SignalId, int>& r_of_signal);

/// Convenience: run Leiserson–Saxe min-period retiming on the netlist's
/// graph and apply it formally (both directions).  Returns nullopt only
/// when a required backward move has no feasible initial state.
std::optional<ChainResult> formal_min_period_retime(const circuit::Rtl& rtl);

/// Convenience: min-period, then minimise registers at that period
/// (min-area LP), then apply the labels formally.
std::optional<ChainResult> formal_min_area_retime(const circuit::Rtl& rtl);

}  // namespace eda::retime
