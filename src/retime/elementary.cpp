#include "retime/elementary.h"

#include <algorithm>

#include "hash/backward.h"
#include "logic/bool_thms.h"
#include "retime/min_area.h"
#include "theories/automata_theory.h"

namespace eda::retime {

using circuit::Rtl;
using circuit::SignalId;
using hash::BackwardCut;
using hash::Cut;
using kernel::Thm;

namespace {

/// The identity step |- !i t. AUT h q i t = AUT h q i t.
Thm identity_theorem(const Rtl& rtl) {
  hash::CompiledCircuit cc = hash::compile(rtl);
  kernel::Term i = kernel::Term::var(
      "i", kernel::fun_ty(kernel::num_ty(), cc.input_ty));
  kernel::Term t = kernel::Term::var("t", kernel::num_ty());
  Thm refl = Thm::refl(thy::mk_automaton(cc.h, cc.q, i, t));
  return logic::gen_list({i, t}, refl);
}

}  // namespace

ChainResult formal_retime_by_labels(
    const Rtl& rtl, const std::map<SignalId, int>& r_of_signal) {
  int fwd_depth = 0, bwd_depth = 0;
  for (const auto& [s, r] : r_of_signal) {
    fwd_depth = std::max(fwd_depth, -r);
    bwd_depth = std::max(bwd_depth, r);
  }

  ChainResult out{identity_theorem(rtl), rtl, 0};
  if (fwd_depth == 0 && bwd_depth == 0) return out;

  // Track original node -> current-netlist node across steps.
  std::map<SignalId, SignalId> where;
  for (const auto& [s, r] : r_of_signal) where.emplace(s, s);
  auto update_positions = [&](const hash::RetimeMapping& remap) {
    std::map<SignalId, SignalId> next_where;
    for (const auto& [orig, pos] : where) {
      if (auto it = remap.comb_map.find(pos); it != remap.comb_map.end()) {
        next_where.emplace(orig, it->second);
      }
    }
    where = std::move(next_where);
  };

  Rtl cur = rtl;
  std::vector<Thm> steps;

  // Forward phase first: applying the negative part of the labels keeps
  // every edge weight legal (w >= r(u) - r(v) bounds the clamp), and each
  // elementary cut F_k = { v : r(v) <= -k } has all its external fan-in
  // registered at step k.
  for (int k = 1; k <= fwd_depth; ++k) {
    Cut cut;
    for (const auto& [orig, r] : r_of_signal) {
      if (r <= -k) cut.f_nodes.push_back(where.at(orig));
    }
    if (cut.f_nodes.empty()) continue;
    hash::FormalRetimeResult step = hash::formal_retime(cur, cut);
    update_positions(hash::conventional_retime_mapped(cur, cut));
    cur = step.retimed;
    steps.push_back(step.theorem);
  }

  // Backward phase: B_k = { v : r(v) >= k }, registers move from the
  // nodes' outputs to their inputs.  May throw BackwardError when the
  // registers' contents are not in the image of the moved logic — a real
  // obstruction (no initial state exists), not a heuristic failure.
  for (int k = 1; k <= bwd_depth; ++k) {
    BackwardCut cut;
    for (const auto& [orig, r] : r_of_signal) {
      if (r >= k) cut.f_nodes.push_back(where.at(orig));
    }
    if (cut.f_nodes.empty()) continue;
    hash::FormalBackwardResult step = hash::formal_backward_retime(cur, cut);
    update_positions(hash::conventional_backward_retime_mapped(cur, cut));
    cur = step.retimed;
    steps.push_back(step.theorem);
  }

  out.final_rtl = std::move(cur);
  out.steps = static_cast<int>(steps.size());
  out.theorem = hash::compose_chain(steps);
  return out;
}

std::optional<ChainResult> formal_min_period_retime(const Rtl& rtl) {
  RetimeGraph g = graph_from_rtl(rtl);
  RetimingResult rr = min_period_retiming(g);
  std::map<SignalId, int> labels;
  for (int v = 1; v < g.vertex_count(); ++v) {
    int r = rr.r[static_cast<std::size_t>(v)];
    if (r != 0) labels.emplace(g.vertex_signal[static_cast<std::size_t>(v)], r);
  }
  try {
    return formal_retime_by_labels(rtl, labels);
  } catch (const hash::BackwardError&) {
    // A backward move was required whose initial state does not exist for
    // the given register contents.
    return std::nullopt;
  }
}

std::optional<ChainResult> formal_min_area_retime(const Rtl& rtl) {
  RetimeGraph g = graph_from_rtl(rtl);
  RetimingResult rr = min_period_retiming(g);
  MinAreaResult ma = min_area_retiming(g, rr.period);
  std::map<SignalId, int> labels;
  for (int v = 1; v < g.vertex_count(); ++v) {
    int r = ma.r[static_cast<std::size_t>(v)];
    if (r != 0) labels.emplace(g.vertex_signal[static_cast<std::size_t>(v)], r);
  }
  try {
    return formal_retime_by_labels(rtl, labels);
  } catch (const hash::BackwardError&) {
    return std::nullopt;
  }
}

}  // namespace eda::retime
