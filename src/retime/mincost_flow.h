#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "kernel/error.h"

namespace eda::retime {

class FlowError : public kernel::KernelError {
 public:
  explicit FlowError(const std::string& what) : kernel::KernelError(what) {}
};

/// Minimum-cost flow by successive shortest paths with node potentials
/// (Bellman–Ford bootstrap for negative arc costs, Dijkstra with reduced
/// costs afterwards).  Substrate for min-area retiming, whose LP dual is a
/// transshipment problem (Leiserson–Saxe 1991, section 8).
class MinCostFlow {
 public:
  explicit MinCostFlow(int nodes);

  /// Directed arc u -> v.  Use cap = kInfCap for uncapacitated arcs.
  static constexpr std::int64_t kInfCap = (1LL << 60);
  void add_arc(int u, int v, std::int64_t cap, std::int64_t cost);

  /// Satisfy the given node imbalances (positive = demand, negative =
  /// supply; must sum to zero).  Returns the minimum total cost, or
  /// nullopt when the demands cannot be met.  Throws FlowError on a
  /// negative-cost cycle reachable through uncapacitated arcs (unbounded).
  std::optional<std::int64_t> solve(const std::vector<std::int64_t>& imbalance);

  /// After solve(): an optimal dual solution — shortest distances in the
  /// final residual graph from a virtual source connected to every node
  /// with zero cost.  Complementary slackness makes these the optimal LP
  /// dual values for the transshipment problem.
  std::vector<std::int64_t> residual_potentials() const;

  /// After solve(): flow on the k-th added arc.
  std::int64_t arc_flow(std::size_t k) const;

 private:
  struct Arc {
    int to;
    std::int64_t cap;
    std::int64_t cost;
    std::size_t rev;  // index of the reverse arc in graph_[to]
  };
  int n_;
  std::vector<std::vector<Arc>> graph_;
  std::vector<std::pair<int, std::size_t>> arc_index_;  // k -> (node, slot)
  std::vector<std::int64_t> original_cap_;
};

}  // namespace eda::retime
