#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/rtl.h"

namespace eda::circuit {

/// Gate-level netlist: 2-input AND/OR/XOR, NOT, constants, primary inputs
/// and D flip-flops.  This is the "flat bit-level description at the gate
/// level" the model-checking baselines operate on (paper, section V).
using LitId = int;

enum class GateOp { Const0, Const1, Input, Dff, And, Or, Xor, Not };

struct GateNode {
  GateOp op = GateOp::Const0;
  LitId a = -1, b = -1;   // fan-in
  LitId next = -1;        // Dff: next-value literal
  bool init = false;      // Dff: initial value
  std::string name;
};

class GateNetlist {
 public:
  LitId add_const(bool v);
  LitId add_input(std::string name);
  LitId add_dff(std::string name, bool init);
  LitId add_gate(GateOp op, LitId a, LitId b = -1);
  void set_dff_next(LitId dff, LitId next);
  void add_output(std::string name, LitId lit);

  const std::vector<GateNode>& nodes() const { return nodes_; }
  const GateNode& node(LitId l) const {
    return nodes_.at(static_cast<std::size_t>(l));
  }
  const std::vector<LitId>& inputs() const { return inputs_; }
  const std::vector<LitId>& dffs() const { return dffs_; }
  const std::vector<std::pair<std::string, LitId>>& outputs() const {
    return outputs_;
  }

  /// Counts for the benchmark tables.
  int gate_count() const;  // AND/OR/XOR/NOT
  int ff_count() const { return static_cast<int>(dffs_.size()); }

  void validate() const;

 private:
  std::vector<GateNode> nodes_;
  std::vector<LitId> inputs_;
  std::vector<LitId> dffs_;
  std::vector<std::pair<std::string, LitId>> outputs_;
};

/// Expand a word-level circuit into gates: ripple-carry adders/subtractors,
/// shift-add multipliers, comparator trees, per-bit muxes; one DFF per
/// register bit.
GateNetlist bit_blast(const Rtl& rtl);

/// Cycle-accurate gate-level simulator (used to cross-check bit_blast
/// against the word-level simulator, and by the explicit-state baseline).
class GateSimulator {
 public:
  explicit GateSimulator(const GateNetlist& net);
  void reset();
  /// One cycle; inputs by position (bit values).
  std::vector<bool> step(const std::vector<bool>& inputs);
  const std::vector<bool>& dff_state() const { return state_; }
  void set_dff_state(const std::vector<bool>& s) { state_ = s; }
  /// Combinational evaluation without latching (for state-space search).
  /// Returns (outputs, next-state).
  std::pair<std::vector<bool>, std::vector<bool>> eval(
      const std::vector<bool>& inputs, const std::vector<bool>& state) const;

 private:
  const GateNetlist& net_;
  std::vector<bool> state_;
};

/// Word inputs expanded to bits (LSB first) — helper shared by tests and
/// the verification baselines.
std::vector<bool> to_bits(std::uint64_t v, int width);
std::uint64_t from_bits(const std::vector<bool>& bits);

}  // namespace eda::circuit
