#include "circuit/rtl.h"

#include <random>

namespace eda::circuit {

bool op_is_flag(Op op) {
  switch (op) {
    case Op::Eq:
    case Op::Lt:
    case Op::FlagAnd:
    case Op::FlagOr:
    case Op::FlagNot:
      return true;
    default:
      return false;
  }
}

const char* op_name(Op op) {
  switch (op) {
    case Op::Input: return "input";
    case Op::Reg: return "reg";
    case Op::Const: return "const";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Mul: return "mul";
    case Op::Eq: return "eq";
    case Op::Lt: return "lt";
    case Op::Mux: return "mux";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Not: return "not";
    case Op::FlagAnd: return "fand";
    case Op::FlagOr: return "for";
    case Op::FlagNot: return "fnot";
  }
  return "?";
}

SignalId Rtl::push(Node n) {
  nodes_.push_back(std::move(n));
  return static_cast<SignalId>(nodes_.size() - 1);
}

SignalId Rtl::add_input(std::string name, int width) {
  if (width < 1 || width > 62) throw RtlError("add_input: bad width");
  Node n;
  n.op = Op::Input;
  n.width = width;
  n.name = std::move(name);
  SignalId s = push(std::move(n));
  inputs_.push_back(s);
  return s;
}

SignalId Rtl::add_reg(std::string name, int width, std::uint64_t init) {
  if (width < 1 || width > 62) throw RtlError("add_reg: bad width");
  Node n;
  n.op = Op::Reg;
  n.width = width;
  n.value = init & ((width >= 62) ? ~0ULL : ((1ULL << width) - 1));
  n.name = std::move(name);
  SignalId s = push(std::move(n));
  regs_.push_back(s);
  return s;
}

SignalId Rtl::add_const(int width, std::uint64_t value) {
  if (width < 1 || width > 62) throw RtlError("add_const: bad width");
  Node n;
  n.op = Op::Const;
  n.width = width;
  n.value = value & ((1ULL << width) - 1);
  return push(std::move(n));
}

SignalId Rtl::add_const_flag(bool value) {
  Node n;
  n.op = Op::Const;
  n.width = 0;
  n.value = value ? 1 : 0;
  return push(std::move(n));
}

SignalId Rtl::add_op(Op op, std::vector<SignalId> operands) {
  auto check_exists = [&](SignalId s) {
    if (s < 0 || static_cast<std::size_t>(s) >= nodes_.size()) {
      throw RtlError("add_op: dangling operand");
    }
  };
  for (SignalId s : operands) check_exists(s);
  auto word = [&](SignalId s) {
    if (is_flag(s)) throw RtlError("add_op: flag used as word operand");
    return node(s).width;
  };
  auto flag = [&](SignalId s) {
    if (!is_flag(s)) throw RtlError("add_op: word used as flag operand");
  };
  Node n;
  n.op = op;
  n.operands = operands;
  switch (op) {
    case Op::Add:
    case Op::Sub:
    case Op::Mul:
    case Op::And:
    case Op::Or:
    case Op::Xor: {
      if (operands.size() != 2) throw RtlError("add_op: binary op arity");
      int w = word(operands[0]);
      if (word(operands[1]) != w) throw RtlError("add_op: width mismatch");
      n.width = w;
      break;
    }
    case Op::Not: {
      if (operands.size() != 1) throw RtlError("add_op: unary op arity");
      n.width = word(operands[0]);
      break;
    }
    case Op::Eq:
    case Op::Lt: {
      if (operands.size() != 2) throw RtlError("add_op: compare arity");
      int w = word(operands[0]);
      if (word(operands[1]) != w) throw RtlError("add_op: width mismatch");
      n.width = 0;
      break;
    }
    case Op::Mux: {
      if (operands.size() != 3) throw RtlError("add_op: mux arity");
      flag(operands[0]);
      int w = word(operands[1]);
      if (word(operands[2]) != w) throw RtlError("add_op: mux width mismatch");
      n.width = w;
      break;
    }
    case Op::FlagAnd:
    case Op::FlagOr: {
      if (operands.size() != 2) throw RtlError("add_op: flag binop arity");
      flag(operands[0]);
      flag(operands[1]);
      n.width = 0;
      break;
    }
    case Op::FlagNot: {
      if (operands.size() != 1) throw RtlError("add_op: flag not arity");
      flag(operands[0]);
      n.width = 0;
      break;
    }
    case Op::Input:
    case Op::Reg:
    case Op::Const:
      throw RtlError("add_op: use the dedicated constructors");
  }
  return push(std::move(n));
}

void Rtl::set_reg_next(SignalId reg, SignalId next) {
  Node& n = nodes_.at(static_cast<std::size_t>(reg));
  if (n.op != Op::Reg) throw RtlError("set_reg_next: not a register");
  if (is_flag(next)) throw RtlError("set_reg_next: flag cannot be stored");
  if (node(next).width != n.width) {
    throw RtlError("set_reg_next: width mismatch");
  }
  n.next = next;
}

void Rtl::add_output(std::string name, SignalId sig) {
  if (sig < 0 || static_cast<std::size_t>(sig) >= nodes_.size()) {
    throw RtlError("add_output: dangling signal");
  }
  outputs_.push_back({std::move(name), sig});
}

std::uint64_t Rtl::mask(SignalId s) const {
  int w = node(s).width;
  if (w == 0) return 1;
  return (1ULL << w) - 1;
}

int Rtl::comb_node_count() const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const) ++count;
  }
  return count;
}

void Rtl::reorder_registers(const std::vector<std::size_t>& perm) {
  const std::size_t n = regs_.size();
  if (perm.size() != n) {
    throw RtlError("reorder_registers: permutation arity mismatch");
  }
  std::vector<SignalId> reordered(n, -1);
  for (std::size_t k = 0; k < n; ++k) {
    if (perm[k] >= n || reordered[perm[k]] != -1) {
      throw RtlError("reorder_registers: not a bijection");
    }
    reordered[perm[k]] = regs_[k];
  }
  regs_ = std::move(reordered);
}

void Rtl::validate() const {
  for (SignalId r : regs_) {
    const Node& n = node(r);
    if (n.next < 0) {
      throw RtlError("validate: register " + n.name + " has no next value");
    }
  }
  if (outputs_.empty()) throw RtlError("validate: no outputs");
  // Combinational operands must precede their users except for register
  // next pointers (which close the sequential loop).
  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
    for (SignalId o : nodes_[idx].operands) {
      if (static_cast<std::size_t>(o) >= idx) {
        throw RtlError("validate: combinational cycle");
      }
    }
  }
}

// --- Simulator ---------------------------------------------------------------

Simulator::Simulator(const Rtl& rtl) : rtl_(rtl) {
  rtl_.validate();
  reset();
}

void Simulator::reset() {
  state_.clear();
  for (SignalId r : rtl_.regs()) state_.push_back(rtl_.node(r).value);
}

std::vector<std::uint64_t> Simulator::step(
    const std::vector<std::uint64_t>& inputs) {
  if (inputs.size() != rtl_.inputs().size()) {
    throw RtlError("Simulator::step: input arity mismatch");
  }
  const auto& nodes = rtl_.nodes();
  std::vector<std::uint64_t> val(nodes.size(), 0);
  // Seed inputs and register outputs.
  for (std::size_t k = 0; k < rtl_.inputs().size(); ++k) {
    SignalId s = rtl_.inputs()[k];
    val[static_cast<std::size_t>(s)] = inputs[k] & rtl_.mask(s);
  }
  for (std::size_t k = 0; k < rtl_.regs().size(); ++k) {
    val[static_cast<std::size_t>(rtl_.regs()[k])] = state_[k];
  }
  // Evaluate in index order (topological by construction).
  for (std::size_t idx = 0; idx < nodes.size(); ++idx) {
    const Node& n = nodes[idx];
    auto in = [&](int k) {
      return val[static_cast<std::size_t>(
          n.operands[static_cast<std::size_t>(k)])];
    };
    std::uint64_t m = (n.width == 0) ? 1 : ((1ULL << n.width) - 1);
    switch (n.op) {
      case Op::Input:
      case Op::Reg:
        break;  // already seeded
      case Op::Const:
        val[idx] = n.value;
        break;
      case Op::Add: val[idx] = (in(0) + in(1)) & m; break;
      case Op::Sub: val[idx] = (in(0) - in(1)) & m; break;
      case Op::Mul: val[idx] = (in(0) * in(1)) & m; break;
      case Op::Eq: val[idx] = in(0) == in(1) ? 1 : 0; break;
      case Op::Lt: val[idx] = in(0) < in(1) ? 1 : 0; break;
      case Op::Mux: val[idx] = in(0) ? in(1) : in(2); break;
      case Op::And: val[idx] = in(0) & in(1); break;
      case Op::Or: val[idx] = in(0) | in(1); break;
      case Op::Xor: val[idx] = in(0) ^ in(1); break;
      case Op::Not: val[idx] = (~in(0)) & m; break;
      case Op::FlagAnd: val[idx] = in(0) & in(1); break;
      case Op::FlagOr: val[idx] = in(0) | in(1); break;
      case Op::FlagNot: val[idx] = in(0) ^ 1; break;
    }
  }
  std::vector<std::uint64_t> outs;
  outs.reserve(rtl_.outputs().size());
  for (const OutputPort& p : rtl_.outputs()) {
    outs.push_back(val[static_cast<std::size_t>(p.signal)]);
  }
  // Latch registers.
  for (std::size_t k = 0; k < rtl_.regs().size(); ++k) {
    state_[k] = val[static_cast<std::size_t>(rtl_.node(rtl_.regs()[k]).next)];
  }
  return outs;
}

bool simulation_equivalent(const Rtl& a, const Rtl& b, int cycles,
                           std::uint32_t seed) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    return false;
  }
  Simulator sa(a), sb(b);
  std::mt19937_64 rng(seed);
  for (int c = 0; c < cycles; ++c) {
    std::vector<std::uint64_t> ins;
    ins.reserve(a.inputs().size());
    for (SignalId s : a.inputs()) {
      ins.push_back(rng() & a.mask(s));
    }
    if (sa.step(ins) != sb.step(ins)) return false;
  }
  return true;
}

}  // namespace eda::circuit
