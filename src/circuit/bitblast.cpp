#include "circuit/bitblast.h"

namespace eda::circuit {

LitId GateNetlist::add_const(bool v) {
  GateNode n;
  n.op = v ? GateOp::Const1 : GateOp::Const0;
  nodes_.push_back(n);
  return static_cast<LitId>(nodes_.size() - 1);
}

LitId GateNetlist::add_input(std::string name) {
  GateNode n;
  n.op = GateOp::Input;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  LitId l = static_cast<LitId>(nodes_.size() - 1);
  inputs_.push_back(l);
  return l;
}

LitId GateNetlist::add_dff(std::string name, bool init) {
  GateNode n;
  n.op = GateOp::Dff;
  n.init = init;
  n.name = std::move(name);
  nodes_.push_back(std::move(n));
  LitId l = static_cast<LitId>(nodes_.size() - 1);
  dffs_.push_back(l);
  return l;
}

LitId GateNetlist::add_gate(GateOp op, LitId a, LitId b) {
  auto check = [&](LitId l) {
    if (l < 0 || static_cast<std::size_t>(l) >= nodes_.size()) {
      throw RtlError("GateNetlist::add_gate: dangling literal");
    }
  };
  GateNode n;
  n.op = op;
  switch (op) {
    case GateOp::And:
    case GateOp::Or:
    case GateOp::Xor:
      check(a);
      check(b);
      n.a = a;
      n.b = b;
      break;
    case GateOp::Not:
      check(a);
      n.a = a;
      break;
    default:
      throw RtlError("GateNetlist::add_gate: not a gate op");
  }
  nodes_.push_back(n);
  return static_cast<LitId>(nodes_.size() - 1);
}

void GateNetlist::set_dff_next(LitId dff, LitId next) {
  GateNode& n = nodes_.at(static_cast<std::size_t>(dff));
  if (n.op != GateOp::Dff) throw RtlError("set_dff_next: not a DFF");
  if (next < 0 || static_cast<std::size_t>(next) >= nodes_.size()) {
    throw RtlError("set_dff_next: dangling literal");
  }
  n.next = next;
}

void GateNetlist::add_output(std::string name, LitId lit) {
  if (lit < 0 || static_cast<std::size_t>(lit) >= nodes_.size()) {
    throw RtlError("add_output: dangling literal");
  }
  outputs_.emplace_back(std::move(name), lit);
}

int GateNetlist::gate_count() const {
  int c = 0;
  for (const GateNode& n : nodes_) {
    if (n.op == GateOp::And || n.op == GateOp::Or || n.op == GateOp::Xor ||
        n.op == GateOp::Not) {
      ++c;
    }
  }
  return c;
}

void GateNetlist::validate() const {
  for (LitId d : dffs_) {
    if (node(d).next < 0) throw RtlError("GateNetlist: DFF without next");
  }
  for (std::size_t idx = 0; idx < nodes_.size(); ++idx) {
    const GateNode& n = nodes_[idx];
    if (n.a >= 0 && static_cast<std::size_t>(n.a) >= idx) {
      throw RtlError("GateNetlist: combinational cycle");
    }
    if (n.b >= 0 && static_cast<std::size_t>(n.b) >= idx) {
      throw RtlError("GateNetlist: combinational cycle");
    }
  }
}

namespace {

/// Builder producing the bit vectors for each word-level signal.
struct Blaster {
  const Rtl& rtl;
  GateNetlist net;
  // For each Rtl signal: its bit literals (flags use a single literal).
  std::vector<std::vector<LitId>> bits;
  LitId zero, one;

  explicit Blaster(const Rtl& r) : rtl(r) {
    zero = net.add_const(false);
    one = net.add_const(true);
    bits.resize(r.nodes().size());
  }

  LitId land(LitId a, LitId b) { return net.add_gate(GateOp::And, a, b); }
  LitId lor(LitId a, LitId b) { return net.add_gate(GateOp::Or, a, b); }
  LitId lxor(LitId a, LitId b) { return net.add_gate(GateOp::Xor, a, b); }
  LitId lnot(LitId a) { return net.add_gate(GateOp::Not, a); }
  LitId lxnor(LitId a, LitId b) { return lnot(lxor(a, b)); }
  LitId lmux(LitId sel, LitId t, LitId f) {
    return lor(land(sel, t), land(lnot(sel), f));
  }

  std::vector<LitId> ripple_add(const std::vector<LitId>& a,
                                const std::vector<LitId>& b, LitId carry_in) {
    std::vector<LitId> out(a.size());
    LitId c = carry_in;
    for (std::size_t k = 0; k < a.size(); ++k) {
      LitId s = lxor(lxor(a[k], b[k]), c);
      LitId carry = lor(land(a[k], b[k]), land(c, lxor(a[k], b[k])));
      out[k] = s;
      c = carry;
    }
    return out;
  }

  std::vector<LitId> negate(const std::vector<LitId>& b) {
    // two's complement: ~b + 1
    std::vector<LitId> nb(b.size());
    for (std::size_t k = 0; k < b.size(); ++k) nb[k] = lnot(b[k]);
    std::vector<LitId> zero_vec(b.size(), zero);
    return ripple_add(nb, zero_vec, one);
  }

  void blast_node(SignalId s) {
    const Node& n = rtl.node(s);
    auto& out = bits[static_cast<std::size_t>(s)];
    auto in = [&](int k) -> const std::vector<LitId>& {
      return bits[static_cast<std::size_t>(
          n.operands[static_cast<std::size_t>(k)])];
    };
    switch (n.op) {
      case Op::Input: {
        out.resize(static_cast<std::size_t>(n.width));
        for (int k = 0; k < n.width; ++k) {
          out[static_cast<std::size_t>(k)] =
              net.add_input(n.name + "[" + std::to_string(k) + "]");
        }
        break;
      }
      case Op::Reg: {
        out.resize(static_cast<std::size_t>(n.width));
        for (int k = 0; k < n.width; ++k) {
          bool init = ((n.value >> k) & 1) != 0;
          out[static_cast<std::size_t>(k)] =
              net.add_dff(n.name + "[" + std::to_string(k) + "]", init);
        }
        break;
      }
      case Op::Const: {
        if (n.width == 0) {
          out = {n.value ? one : zero};
          break;
        }
        out.resize(static_cast<std::size_t>(n.width));
        for (int k = 0; k < n.width; ++k) {
          out[static_cast<std::size_t>(k)] = ((n.value >> k) & 1) ? one : zero;
        }
        break;
      }
      case Op::Add:
        out = ripple_add(in(0), in(1), zero);
        break;
      case Op::Sub: {
        std::vector<LitId> nb(in(1).size());
        for (std::size_t k = 0; k < nb.size(); ++k) nb[k] = lnot(in(1)[k]);
        out = ripple_add(in(0), nb, one);
        break;
      }
      case Op::Mul: {
        // Shift-add array multiplier (the paper's fractional-multiplier
        // benchmarks are built from these).
        std::size_t w = in(0).size();
        std::vector<LitId> acc(w, zero);
        for (std::size_t k = 0; k < w; ++k) {
          std::vector<LitId> partial(w, zero);
          for (std::size_t j = 0; j + k < w; ++j) {
            partial[j + k] = land(in(0)[j], in(1)[k]);
          }
          acc = ripple_add(acc, partial, zero);
        }
        out = acc;
        break;
      }
      case Op::Eq: {
        LitId acc = one;
        for (std::size_t k = 0; k < in(0).size(); ++k) {
          acc = land(acc, lxnor(in(0)[k], in(1)[k]));
        }
        out = {acc};
        break;
      }
      case Op::Lt: {
        // a < b : ripple borrow from LSB to MSB.
        LitId lt = zero;
        for (std::size_t k = 0; k < in(0).size(); ++k) {
          LitId eq = lxnor(in(0)[k], in(1)[k]);
          LitId bk_gt = land(lnot(in(0)[k]), in(1)[k]);
          lt = lor(bk_gt, land(eq, lt));
        }
        out = {lt};
        break;
      }
      case Op::Mux: {
        LitId sel = in(0)[0];
        out.resize(in(1).size());
        for (std::size_t k = 0; k < in(1).size(); ++k) {
          out[k] = lmux(sel, in(1)[k], in(2)[k]);
        }
        break;
      }
      case Op::And:
      case Op::Or:
      case Op::Xor: {
        out.resize(in(0).size());
        for (std::size_t k = 0; k < in(0).size(); ++k) {
          GateOp g = n.op == Op::And   ? GateOp::And
                     : n.op == Op::Or ? GateOp::Or
                                      : GateOp::Xor;
          out[k] = net.add_gate(g, in(0)[k], in(1)[k]);
        }
        break;
      }
      case Op::Not: {
        out.resize(in(0).size());
        for (std::size_t k = 0; k < in(0).size(); ++k) out[k] = lnot(in(0)[k]);
        break;
      }
      case Op::FlagAnd: out = {land(in(0)[0], in(1)[0])}; break;
      case Op::FlagOr: out = {lor(in(0)[0], in(1)[0])}; break;
      case Op::FlagNot: out = {lnot(in(0)[0])}; break;
    }
  }
};

}  // namespace

GateNetlist bit_blast(const Rtl& rtl) {
  rtl.validate();
  Blaster b(rtl);
  for (std::size_t s = 0; s < rtl.nodes().size(); ++s) {
    b.blast_node(static_cast<SignalId>(s));
  }
  // Hook up DFF next-values and outputs.
  for (SignalId r : rtl.regs()) {
    const Node& n = rtl.node(r);
    const auto& q_bits = b.bits[static_cast<std::size_t>(r)];
    const auto& d_bits = b.bits[static_cast<std::size_t>(n.next)];
    for (std::size_t k = 0; k < q_bits.size(); ++k) {
      b.net.set_dff_next(q_bits[k], d_bits[k]);
    }
  }
  for (const OutputPort& p : rtl.outputs()) {
    const auto& o_bits = b.bits[static_cast<std::size_t>(p.signal)];
    for (std::size_t k = 0; k < o_bits.size(); ++k) {
      b.net.add_output(p.name + "[" + std::to_string(k) + "]", o_bits[k]);
    }
  }
  b.net.validate();
  return std::move(b.net);
}

// --- Gate simulator ----------------------------------------------------------

GateSimulator::GateSimulator(const GateNetlist& net) : net_(net) {
  net_.validate();
  reset();
}

void GateSimulator::reset() {
  state_.clear();
  for (LitId d : net_.dffs()) state_.push_back(net_.node(d).init);
}

std::pair<std::vector<bool>, std::vector<bool>> GateSimulator::eval(
    const std::vector<bool>& inputs, const std::vector<bool>& state) const {
  const auto& nodes = net_.nodes();
  std::vector<char> val(nodes.size(), 0);
  for (std::size_t k = 0; k < net_.inputs().size(); ++k) {
    val[static_cast<std::size_t>(net_.inputs()[k])] = inputs[k] ? 1 : 0;
  }
  for (std::size_t k = 0; k < net_.dffs().size(); ++k) {
    val[static_cast<std::size_t>(net_.dffs()[k])] = state[k] ? 1 : 0;
  }
  for (std::size_t idx = 0; idx < nodes.size(); ++idx) {
    const GateNode& n = nodes[idx];
    switch (n.op) {
      case GateOp::Const0: val[idx] = 0; break;
      case GateOp::Const1: val[idx] = 1; break;
      case GateOp::Input:
      case GateOp::Dff:
        break;
      case GateOp::And:
        val[idx] = val[static_cast<std::size_t>(n.a)] &
                   val[static_cast<std::size_t>(n.b)];
        break;
      case GateOp::Or:
        val[idx] = val[static_cast<std::size_t>(n.a)] |
                   val[static_cast<std::size_t>(n.b)];
        break;
      case GateOp::Xor:
        val[idx] = val[static_cast<std::size_t>(n.a)] ^
                   val[static_cast<std::size_t>(n.b)];
        break;
      case GateOp::Not:
        val[idx] = val[static_cast<std::size_t>(n.a)] ^ 1;
        break;
    }
  }
  std::vector<bool> outs;
  outs.reserve(net_.outputs().size());
  for (const auto& [name, lit] : net_.outputs()) {
    outs.push_back(val[static_cast<std::size_t>(lit)] != 0);
  }
  std::vector<bool> next;
  next.reserve(net_.dffs().size());
  for (LitId d : net_.dffs()) {
    next.push_back(val[static_cast<std::size_t>(net_.node(d).next)] != 0);
  }
  return {std::move(outs), std::move(next)};
}

std::vector<bool> GateSimulator::step(const std::vector<bool>& inputs) {
  auto [outs, next] = eval(inputs, state_);
  state_ = std::move(next);
  return outs;
}

std::vector<bool> to_bits(std::uint64_t v, int width) {
  std::vector<bool> out(static_cast<std::size_t>(width));
  for (int k = 0; k < width; ++k) {
    out[static_cast<std::size_t>(k)] = ((v >> k) & 1) != 0;
  }
  return out;
}

std::uint64_t from_bits(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t k = 0; k < bits.size(); ++k) {
    if (bits[k]) v |= (1ULL << k);
  }
  return v;
}

}  // namespace eda::circuit
