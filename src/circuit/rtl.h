#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kernel/error.h"

namespace eda::circuit {

/// Signal identifier within an Rtl netlist (index into the node table).
using SignalId = int;

/// Word-level RTL operators.  Arithmetic is modulo 2^width; comparison
/// operators produce 1-bit flags; MUX selects with a flag.
enum class Op {
  Input,   // primary input (word)
  Reg,     // register output; init value + next-value signal
  Const,   // literal
  Add,     // (a + b) mod 2^w
  Sub,     // (a - b) mod 2^w
  Mul,     // (a * b) mod 2^w
  Eq,      // flag: a == b
  Lt,      // flag: a < b (unsigned)
  Mux,     // sel(flag) ? a : b
  And,     // bitwise
  Or,      // bitwise
  Xor,     // bitwise
  Not,     // bitwise complement (width-masked)
  FlagAnd, // flag /\ flag
  FlagOr,  // flag \/ flag
  FlagNot, // ~flag
};

bool op_is_flag(Op op);
const char* op_name(Op op);

/// One node of the netlist.  `width == 0` marks a flag (boolean) signal.
struct Node {
  Op op = Op::Const;
  int width = 1;                  // 0 for flags
  std::vector<SignalId> operands; // combinational fan-in
  std::uint64_t value = 0;        // Const literal or Reg initial value
  SignalId next = -1;             // Reg only: next-value signal
  std::string name;               // Inputs/Regs/debug
};

struct OutputPort {
  std::string name;
  SignalId signal;
};

class RtlError : public kernel::KernelError {
 public:
  explicit RtlError(const std::string& what) : kernel::KernelError(what) {}
};

/// A synchronous word-level circuit: primary inputs, registers with initial
/// values, a combinational DAG over them, and named outputs.  This is the
/// structural description that both the conventional and the formal
/// synthesis steps operate on.
class Rtl {
 public:
  SignalId add_input(std::string name, int width);
  SignalId add_reg(std::string name, int width, std::uint64_t init);
  SignalId add_const(int width, std::uint64_t value);
  /// Constant flag (boolean literal), used by the logic-optimisation pass.
  SignalId add_const_flag(bool value);
  /// Generic combinational node; operand widths/kinds are checked.
  SignalId add_op(Op op, std::vector<SignalId> operands);
  void set_reg_next(SignalId reg, SignalId next);
  void add_output(std::string name, SignalId sig);

  const std::vector<Node>& nodes() const { return nodes_; }
  const Node& node(SignalId s) const {
    return nodes_.at(static_cast<std::size_t>(s));
  }
  const std::vector<SignalId>& inputs() const { return inputs_; }
  const std::vector<SignalId>& regs() const { return regs_; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  bool is_flag(SignalId s) const { return node(s).width == 0; }
  int width(SignalId s) const { return node(s).width; }
  std::uint64_t mask(SignalId s) const;

  /// Number of combinational operator nodes (everything except Input, Reg,
  /// Const).
  int comb_node_count() const;

  /// Re-order the register bank: register k moves to position perm[k] of
  /// the state vector (perm must be a bijection on 0..#regs-1).  The node
  /// graph is untouched — only the order of regs(), i.e. the layout of the
  /// compiled state tuple, changes.  This is the netlist side of the
  /// formal register-permutation encoding step.
  void reorder_registers(const std::vector<std::size_t>& perm);

  /// Check the netlist is complete and well-formed: every register has a
  /// next-value of the right width, outputs resolve, and the combinational
  /// part is acyclic (node indices are naturally topological here since
  /// operands must exist before use).
  void validate() const;

 private:
  SignalId push(Node n);
  std::vector<Node> nodes_;
  std::vector<SignalId> inputs_;
  std::vector<SignalId> regs_;
  std::vector<OutputPort> outputs_;
};

/// Cycle-accurate simulator for Rtl.
class Simulator {
 public:
  explicit Simulator(const Rtl& rtl);

  /// Reset registers to their initial values.
  void reset();
  /// Evaluate one clock cycle: given input values (same order as
  /// rtl.inputs()), return output values (same order as rtl.outputs()) and
  /// advance the registers.
  std::vector<std::uint64_t> step(const std::vector<std::uint64_t>& inputs);
  /// Current register contents (same order as rtl.regs()).
  const std::vector<std::uint64_t>& reg_state() const { return state_; }

 private:
  const Rtl& rtl_;
  std::vector<std::uint64_t> state_;
};

/// Run both circuits on the same random input streams and report whether
/// their outputs agree on every cycle.  Inputs are matched by position;
/// both circuits must have the same input/output arity and widths.
bool simulation_equivalent(const Rtl& a, const Rtl& b, int cycles,
                           std::uint32_t seed);

}  // namespace eda::circuit
