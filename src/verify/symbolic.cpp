#include "verify/symbolic.h"

#include <map>
#include <set>

namespace eda::verify {

using bdd::BddId;
using bdd::BddManager;
using circuit::GateNetlist;
using circuit::GateOp;

SymbolicMachine build_machine(BddManager& mgr, const GateNetlist& net,
                              const std::function<int(int)>& input_var,
                              const std::function<int(int)>& state_var,
                              const std::function<int(int)>& next_var) {
  net.validate();
  std::vector<BddId> val(net.nodes().size(), 0);
  // Seed inputs and DFF outputs.
  for (std::size_t k = 0; k < net.inputs().size(); ++k) {
    val[static_cast<std::size_t>(net.inputs()[k])] =
        mgr.var(input_var(static_cast<int>(k)));
  }
  for (std::size_t k = 0; k < net.dffs().size(); ++k) {
    val[static_cast<std::size_t>(net.dffs()[k])] =
        mgr.var(state_var(static_cast<int>(k)));
  }
  for (std::size_t idx = 0; idx < net.nodes().size(); ++idx) {
    const circuit::GateNode& n = net.nodes()[idx];
    switch (n.op) {
      case GateOp::Const0: val[idx] = mgr.false_bdd(); break;
      case GateOp::Const1: val[idx] = mgr.true_bdd(); break;
      case GateOp::Input:
      case GateOp::Dff:
        break;
      case GateOp::And:
        val[idx] = mgr.land(val[static_cast<std::size_t>(n.a)],
                            val[static_cast<std::size_t>(n.b)]);
        break;
      case GateOp::Or:
        val[idx] = mgr.lor(val[static_cast<std::size_t>(n.a)],
                           val[static_cast<std::size_t>(n.b)]);
        break;
      case GateOp::Xor:
        val[idx] = mgr.lxor(val[static_cast<std::size_t>(n.a)],
                            val[static_cast<std::size_t>(n.b)]);
        break;
      case GateOp::Not:
        val[idx] = mgr.lnot(val[static_cast<std::size_t>(n.a)]);
        break;
    }
  }
  SymbolicMachine m;
  m.init = mgr.true_bdd();
  for (std::size_t k = 0; k < net.dffs().size(); ++k) {
    const circuit::GateNode& d = net.node(net.dffs()[k]);
    m.next_fn.push_back(val[static_cast<std::size_t>(d.next)]);
    m.state_vars.push_back(state_var(static_cast<int>(k)));
    m.next_vars.push_back(next_var(static_cast<int>(k)));
    BddId lit = d.init ? mgr.var(state_var(static_cast<int>(k)))
                       : mgr.nvar(state_var(static_cast<int>(k)));
    m.init = mgr.land(m.init, lit);
  }
  for (const auto& [name, lit] : net.outputs()) {
    m.outputs.push_back(val[static_cast<std::size_t>(lit)]);
  }
  return m;
}

int product_var_count(const GateNetlist& a, const GateNetlist& b) {
  ProductLayout l;
  l.ni = static_cast<int>(a.inputs().size());
  l.na = a.ff_count();
  l.nb = b.ff_count();
  return l.total();
}

Product build_product(BddManager& mgr, const GateNetlist& a,
                      const GateNetlist& b) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    throw bdd::BddError("build_product: interface mismatch");
  }
  Product p;
  p.layout.ni = static_cast<int>(a.inputs().size());
  p.layout.na = a.ff_count();
  p.layout.nb = b.ff_count();
  const ProductLayout& L = p.layout;
  p.a = build_machine(
      mgr, a, [&](int j) { return L.input_var(j); },
      [&](int k) { return L.a_state(k); }, [&](int k) { return L.a_next(k); });
  p.b = build_machine(
      mgr, b, [&](int j) { return L.input_var(j); },
      [&](int k) { return L.b_state(k); }, [&](int k) { return L.b_next(k); });
  p.miscompare = mgr.false_bdd();
  for (std::size_t k = 0; k < p.a.outputs.size(); ++k) {
    p.miscompare =
        mgr.lor(p.miscompare, mgr.lxor(p.a.outputs[k], p.b.outputs[k]));
  }
  for (int j = 0; j < L.ni; ++j) p.quantify.push_back(L.input_var(j));
  for (int k = 0; k < L.na; ++k) {
    p.quantify.push_back(L.a_state(k));
    p.next_to_present.emplace(L.a_next(k), L.a_state(k));
  }
  for (int k = 0; k < L.nb; ++k) {
    p.quantify.push_back(L.b_state(k));
    p.next_to_present.emplace(L.b_next(k), L.b_state(k));
  }
  return p;
}

bool combinational_equivalent(const GateNetlist& a, const GateNetlist& b) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    return false;
  }
  // Combinational circuits only: reject if either has state.
  if (a.ff_count() != 0 || b.ff_count() != 0) {
    throw bdd::BddError("combinational_equivalent: circuit has registers");
  }
  BddManager mgr(static_cast<int>(a.inputs().size()));
  auto in = [](int j) { return j; };
  auto none = [](int) { return 0; };
  SymbolicMachine ma = build_machine(mgr, a, in, none, none);
  SymbolicMachine mb = build_machine(mgr, b, in, none, none);
  for (std::size_t k = 0; k < ma.outputs.size(); ++k) {
    if (ma.outputs[k] != mb.outputs[k]) return false;
  }
  return true;
}

BddId partitioned_image(BddManager& mgr, BddId frontier,
                        const std::vector<BddId>& partitions,
                        const std::vector<int>& quantify) {
  std::set<int> qset(quantify.begin(), quantify.end());
  // Last partition index mentioning each quantified variable (frontier is
  // partition -1).
  std::map<int, std::size_t> last;
  for (int v : quantify) last[v] = 0;
  for (std::size_t k = 0; k < partitions.size(); ++k) {
    for (int v : mgr.support(partitions[k])) {
      if (qset.count(v) > 0) last[v] = k;
    }
  }
  BddId acc = frontier;
  for (std::size_t k = 0; k < partitions.size(); ++k) {
    std::vector<int> now;
    for (const auto& [v, kk] : last) {
      if (kk == k) now.push_back(v);
    }
    if (now.empty()) {
      acc = mgr.land(acc, partitions[k]);
    } else {
      acc = mgr.and_exists(acc, partitions[k], now);
    }
  }
  // Variables mentioned by no partition (e.g. quantified inputs unused by
  // any next function) may remain in the frontier.
  std::vector<int> rest;
  for (int v : mgr.support(acc)) {
    if (qset.count(v) > 0) rest.push_back(v);
  }
  if (!rest.empty()) acc = mgr.exists(acc, rest);
  return acc;
}

}  // namespace eda::verify
