#pragma once

#include <functional>

#include "bdd/bdd.h"
#include "circuit/bitblast.h"
#include "verify/common.h"

namespace eda::verify {

/// Variable layout for the product machine of two gate netlists sharing
/// their primary inputs: inputs first, then (present, next) pairs for A's
/// flip-flops followed by B's — the interleaving keeps renaming
/// order-preserving.
struct ProductLayout {
  int ni = 0, na = 0, nb = 0;
  int input_var(int j) const { return j; }
  int a_state(int k) const { return ni + 2 * k; }
  int a_next(int k) const { return ni + 2 * k + 1; }
  int b_state(int k) const { return ni + 2 * (na + k); }
  int b_next(int k) const { return ni + 2 * (na + k) + 1; }
  int total() const { return ni + 2 * (na + nb); }
};

/// One machine's symbolic functions under a variable assignment.
struct SymbolicMachine {
  std::vector<bdd::BddId> outputs;     // over inputs + present-state vars
  std::vector<bdd::BddId> next_fn;     // next-state functions
  std::vector<int> state_vars;         // present-state variable indices
  std::vector<int> next_vars;          // next-state variable indices
  bdd::BddId init;                     // initial-state predicate
};

/// Build the BDDs of a gate netlist's outputs and next-state functions.
SymbolicMachine build_machine(bdd::BddManager& mgr,
                              const circuit::GateNetlist& net,
                              const std::function<int(int)>& input_var,
                              const std::function<int(int)>& state_var,
                              const std::function<int(int)>& next_var);

/// Product-machine context shared by the symbolic verifiers.
struct Product {
  ProductLayout layout;
  SymbolicMachine a, b;
  bdd::BddId miscompare;        // exists an input making outputs differ
  std::vector<int> quantify;    // inputs + both present-state vars
  std::map<int, int> next_to_present;
};

/// Throws BddError via the manager on node-limit blowup; the callers
/// convert that into `completed = false`.
Product build_product(bdd::BddManager& mgr, const circuit::GateNetlist& a,
                      const circuit::GateNetlist& b);

/// Early-quantification image step shared by the van Eijk traversal and
/// the batched BDD kernel: conjoin the transition-relation partitions in
/// order, existentially quantifying each variable right after the last
/// partition that mentions it.
bdd::BddId partitioned_image(bdd::BddManager& mgr, bdd::BddId frontier,
                             const std::vector<bdd::BddId>& partitions,
                             const std::vector<int>& quantify);

/// Combinational tautology / equivalence checking (the paper's section II
/// baseline for pure combinational circuits): two netlists with identical
/// input counts; compares each output BDD.
bool combinational_equivalent(const circuit::GateNetlist& a,
                              const circuit::GateNetlist& b);

/// Number of BDD variables needed for the product of a and b.
int product_var_count(const circuit::GateNetlist& a,
                      const circuit::GateNetlist& b);

}  // namespace eda::verify
