#pragma once

#include "verify/symbolic.h"

namespace eda::verify {

/// Van Eijk-style product-machine traversal (the paper's "Eijk" column):
/// like SMV but with a *partitioned* transition relation and early
/// quantification — each next-state bit is a separate conjunct, and input/
/// present-state variables are quantified out as soon as no remaining
/// partition mentions them.
///
/// With `exploit_functional_dependencies` (the "Eijk+" column, van Eijk &
/// Jess ED&TC'97), the traversal additionally detects state variables that
/// are functions of the others on the reached set — exactly the situation
/// after retiming, where the new registers are functions f(s) of the old —
/// and keeps the reached set in the reduced space, substituting the
/// dependency functions during image computation.
VerifyResult eijk_check(const circuit::GateNetlist& a,
                        const circuit::GateNetlist& b,
                        const VerifyOptions& opts = {},
                        bool exploit_functional_dependencies = false);

}  // namespace eda::verify
