#include "verify/batch_bdd.h"

#include <algorithm>
#include <chrono>

#include "verify/symbolic.h"

namespace eda::verify {

using bdd::BddId;
using bdd::BddManager;

namespace {

using Clock = std::chrono::steady_clock;

/// Per-task traversal state, one record per live BDD job.  The arrays
/// inside (partitions, dep_targets) plus the scalar frontier/reached pairs
/// are the structure-of-arrays complement to the shared manager: everything
/// node-shaped lives in the manager, everything task-shaped lives here.
struct Task {
  const CheckJob* job = nullptr;
  Product p;
  std::vector<BddId> partitions;  // TR conjuncts; single entry for smv
  std::vector<int> dep_targets;   // eijk+: B-side state vars to reduce
  BddId reached = 0, frontier = 0;
  bool done = false;
  bool poisoned = false;  // shared pool blew up under this task
  VerifyResult res;
};

/// One fixpoint iteration for one task — the loop body of eijk_check /
/// smv_check verbatim, with `res.seconds` accruing only this task's own
/// step time so batch timeouts mean the same thing as per-job timeouts.
void step_task(BddManager& mgr, Task& t) {
  Clock::time_point tick = Clock::now();
  auto charge = [&] {
    t.res.seconds +=
        std::chrono::duration<double>(Clock::now() - tick).count();
  };
  ++t.res.iterations;
  t.res.peak = std::max(t.res.peak, mgr.node_table_size());
  if (t.res.seconds > t.job->opts.timeout_sec) {
    t.done = true;  // completed stays false: timed out
    t.res.failure = FailureKind::Timeout;
    return;
  }

  BddId img_frontier = t.frontier;
  std::vector<BddId> parts = t.partitions;
  if (t.job->engine == Engine::EijkPlus) {
    // Functional-dependency reduction, as in eijk_check: a state variable
    // whose on/off projections are disjoint on the frontier is a function
    // of the rest; image in the reduced space with the dependency as an
    // extra partition.
    for (int v : mgr.support(img_frontier)) {
      if (std::find(t.dep_targets.begin(), t.dep_targets.end(), v) ==
          t.dep_targets.end()) {
        continue;
      }
      BddId on = mgr.exists(mgr.land(img_frontier, mgr.var(v)), {v});
      BddId off = mgr.exists(mgr.land(img_frontier, mgr.nvar(v)), {v});
      if (mgr.land(on, off) == mgr.false_bdd()) {
        parts.push_back(mgr.lxnor(mgr.var(v), on));
        img_frontier = mgr.exists(img_frontier, {v});
      }
    }
  }

  BddId img = partitioned_image(mgr, img_frontier, parts, t.p.quantify);
  img = mgr.rename(img, t.p.next_to_present);
  BddId next_reached = mgr.lor(t.reached, img);
  if (next_reached == t.reached) {
    t.res.peak = std::max(t.res.peak, mgr.node_table_size());
    t.res.completed = true;
    t.res.equivalent =
        mgr.land(t.reached, t.p.miscompare) == mgr.false_bdd();
    t.done = true;
    charge();
    return;
  }
  t.frontier = img;
  t.reached = next_reached;
  charge();
}

}  // namespace

std::vector<VerifyResult> check_batch(const std::vector<CheckJob>& jobs) {
  std::vector<VerifyResult> out(jobs.size());
  std::vector<std::size_t> bdd_jobs;
  int vars = 1;
  std::size_t max_limit = 0, sum_limit = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].engine == Engine::SisFsm) {
      out[i] = run_check(jobs[i]);  // explicit-state: nothing to share
      continue;
    }
    vars = std::max(vars, product_var_count(*jobs[i].a, *jobs[i].b));
    max_limit = std::max(max_limit, jobs[i].opts.node_limit);
    sum_limit += jobs[i].opts.node_limit;
    bdd_jobs.push_back(i);
  }
  if (bdd_jobs.empty()) return out;
  // The pool holds every task's nodes at once (the manager never frees),
  // so one job's limit is far too small a budget for a big batch: size it
  // to the whole batch's aggregate budget, capped at 8x the largest job —
  // comparable to what the per-job path's concurrent managers could have
  // allocated in aggregate.  Tasks the capped pool still can't finish are
  // re-run per-job below, so the cap costs performance, never verdicts.
  std::size_t node_limit = std::min(sum_limit, 8 * max_limit);

  // Tasks reuse the same variable indices (every product machine numbers
  // its variables from 0), which is what makes the shared pool pay:
  // identical logic in different cones interns to identical nodes.
  BddManager mgr(vars, node_limit);
  std::vector<Task> tasks(bdd_jobs.size());
  for (std::size_t k = 0; k < bdd_jobs.size(); ++k) {
    Task& t = tasks[k];
    t.job = &jobs[bdd_jobs[k]];
    Clock::time_point tick = Clock::now();
    try {
      t.p = build_product(mgr, *t.job->a, *t.job->b);
      if (t.job->engine == Engine::Smv) {
        BddId tr = mgr.true_bdd();
        for (std::size_t i = 0; i < t.p.a.next_fn.size(); ++i) {
          tr = mgr.land(tr,
                        mgr.lxnor(mgr.var(t.p.a.next_vars[i]),
                                  t.p.a.next_fn[i]));
        }
        for (std::size_t i = 0; i < t.p.b.next_fn.size(); ++i) {
          tr = mgr.land(tr,
                        mgr.lxnor(mgr.var(t.p.b.next_vars[i]),
                                  t.p.b.next_fn[i]));
        }
        t.partitions.push_back(tr);
      } else {
        for (std::size_t i = 0; i < t.p.a.next_fn.size(); ++i) {
          t.partitions.push_back(mgr.lxnor(mgr.var(t.p.a.next_vars[i]),
                                           t.p.a.next_fn[i]));
        }
        for (std::size_t i = 0; i < t.p.b.next_fn.size(); ++i) {
          t.partitions.push_back(mgr.lxnor(mgr.var(t.p.b.next_vars[i]),
                                           t.p.b.next_fn[i]));
        }
      }
      for (int i = 0; i < t.p.layout.nb; ++i) {
        t.dep_targets.push_back(t.p.layout.b_state(i));
      }
      t.reached = t.frontier = mgr.land(t.p.a.init, t.p.b.init);
    } catch (const bdd::BddError&) {
      t.done = true;  // interface mismatch or pool blowup during build
      t.poisoned = true;
      t.res.failure = FailureKind::ResourceExhausted;
    }
    t.res.seconds +=
        std::chrono::duration<double>(Clock::now() - tick).count();
  }

  // Unified lock-step loop: round-robin one image step per live task per
  // round.  Short tasks retire early and stop paying; long tasks keep the
  // warmed apply cache.
  bool any_live = true;
  while (any_live) {
    any_live = false;
    for (Task& t : tasks) {
      if (t.done) continue;
      try {
        step_task(mgr, t);
      } catch (const bdd::BddError&) {
        // The shared pool is over its limit: stop batching this task and
        // remember to re-run it on its own manager below.
        t.done = true;
        t.poisoned = true;
        t.res.failure = FailureKind::ResourceExhausted;
      }
      if (!t.done) any_live = true;
    }
  }
  // Per-job fallback for pool casualties: a task the SHARED pool starved
  // gets the same private manager and private node budget the non-batched
  // path would have given it, so batching never changes a verdict — a
  // task that fails here fails identically per-job.  (Timeout/limit
  // failures of the task's own making keep their incomplete result.)
  for (Task& t : tasks) {
    if (!t.poisoned || t.res.completed) continue;
    double spent = t.res.seconds;
    try {
      t.res = run_check(*t.job);
    } catch (const bdd::BddError&) {
      // Same failure on a private pool: genuinely incomplete.
      t.res.failure = FailureKind::ResourceExhausted;
    }
    t.res.seconds += spent;
  }
  for (std::size_t k = 0; k < bdd_jobs.size(); ++k) {
    out[bdd_jobs[k]] = tasks[k].res;
  }
  return out;
}

}  // namespace eda::verify
