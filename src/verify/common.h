#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace eda::verify {

/// Resource bounds for a verification run.  The paper's tables mark runs
/// that exceed reasonable time with "-"; `completed == false` is our
/// equivalent.
struct VerifyOptions {
  double timeout_sec = 10.0;
  std::size_t node_limit = 4'000'000;   // BDD nodes (symbolic engines)
  std::size_t state_limit = 2'000'000;  // explicit states (SIS-style)
};

/// Why a run failed to complete, recorded at the engine's give-up point so
/// the service layer can classify the verdict honestly (a blown wall clock
/// is retryable with a bigger budget; a BDD pool blow-up wants node-limit
/// escalation; an unexpected exception is a bug or an injected fault).
/// `None` on every completed run.
enum class FailureKind : std::uint8_t {
  None = 0,
  Timeout = 1,            // wall-clock budget exceeded
  ResourceExhausted = 2,  // BDD node pool / explicit-state / memory budget
  InternalError = 3,      // unexpected exception (engine bug, injected fault)
};

inline const char* failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::None:
      return "none";
    case FailureKind::Timeout:
      return "timeout";
    case FailureKind::ResourceExhausted:
      return "resource_exhausted";
    case FailureKind::InternalError:
      return "internal_error";
  }
  return "?";  // unreachable
}

struct VerifyResult {
  bool completed = false;   // finished within the resource bounds
  bool equivalent = false;  // verdict (valid only when completed)
  FailureKind failure = FailureKind::None;  // why !completed, when known
  int iterations = 0;       // traversal steps
  double seconds = 0.0;
  std::size_t peak = 0;     // peak BDD nodes / explicit states
  /// Simulation pre-filter provenance (sim/bitsim.h): a NONEQUIV verdict
  /// with `sim_refuted` was settled by bit-parallel random simulation
  /// before any engine ran, `sim_vectors` counting the stimulus spent
  /// (also set, with sim_refuted false, when the pre-filter ran and
  /// passed the pair through).  `counterexample` names the differing
  /// output for NONEQUIV verdicts that carry a concrete witness.
  bool sim_refuted = false;
  std::uint64_t sim_vectors = 0;
  std::string counterexample;
};

}  // namespace eda::verify
