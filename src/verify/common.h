#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace eda::verify {

/// Resource bounds for a verification run.  The paper's tables mark runs
/// that exceed reasonable time with "-"; `completed == false` is our
/// equivalent.
struct VerifyOptions {
  double timeout_sec = 10.0;
  std::size_t node_limit = 4'000'000;   // BDD nodes (symbolic engines)
  std::size_t state_limit = 2'000'000;  // explicit states (SIS-style)
};

struct VerifyResult {
  bool completed = false;   // finished within the resource bounds
  bool equivalent = false;  // verdict (valid only when completed)
  int iterations = 0;       // traversal steps
  double seconds = 0.0;
  std::size_t peak = 0;     // peak BDD nodes / explicit states
  /// Simulation pre-filter provenance (sim/bitsim.h): a NONEQUIV verdict
  /// with `sim_refuted` was settled by bit-parallel random simulation
  /// before any engine ran, `sim_vectors` counting the stimulus spent
  /// (also set, with sim_refuted false, when the pre-filter ran and
  /// passed the pair through).  `counterexample` names the differing
  /// output for NONEQUIV verdicts that carry a concrete witness.
  bool sim_refuted = false;
  std::uint64_t sim_vectors = 0;
  std::string counterexample;
};

}  // namespace eda::verify
