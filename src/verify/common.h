#pragma once

#include <cstddef>

namespace eda::verify {

/// Resource bounds for a verification run.  The paper's tables mark runs
/// that exceed reasonable time with "-"; `completed == false` is our
/// equivalent.
struct VerifyOptions {
  double timeout_sec = 10.0;
  std::size_t node_limit = 4'000'000;   // BDD nodes (symbolic engines)
  std::size_t state_limit = 2'000'000;  // explicit states (SIS-style)
};

struct VerifyResult {
  bool completed = false;   // finished within the resource bounds
  bool equivalent = false;  // verdict (valid only when completed)
  int iterations = 0;       // traversal steps
  double seconds = 0.0;
  std::size_t peak = 0;     // peak BDD nodes / explicit states
};

}  // namespace eda::verify
