#include "verify/smv_mc.h"

#include <chrono>

namespace eda::verify {

using bdd::BddId;
using bdd::BddManager;

VerifyResult smv_check(const circuit::GateNetlist& a,
                       const circuit::GateNetlist& b,
                       const VerifyOptions& opts) {
  VerifyResult res;
  auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  try {
    BddManager mgr(product_var_count(a, b), opts.node_limit);
    Product p = build_product(mgr, a, b);

    // Monolithic transition relation: conjunction over every next-state
    // bit of both machines (SMV's classic formulation).
    BddId tr = mgr.true_bdd();
    for (std::size_t k = 0; k < p.a.next_fn.size(); ++k) {
      tr = mgr.land(tr, mgr.lxnor(mgr.var(p.a.next_vars[k]), p.a.next_fn[k]));
    }
    for (std::size_t k = 0; k < p.b.next_fn.size(); ++k) {
      tr = mgr.land(tr, mgr.lxnor(mgr.var(p.b.next_vars[k]), p.b.next_fn[k]));
    }

    BddId reached = mgr.land(p.a.init, p.b.init);
    BddId frontier = reached;
    for (;;) {
      ++res.iterations;
      res.peak = std::max(res.peak, mgr.node_table_size());
      if (elapsed() > opts.timeout_sec) {
        res.seconds = elapsed();
        res.failure = FailureKind::Timeout;
        return res;
      }
      // Image: exists inputs, present. frontier /\ TR, then rename
      // next->present.
      BddId img = mgr.and_exists(frontier, tr, p.quantify);
      img = mgr.rename(img, p.next_to_present);
      BddId next_reached = mgr.lor(reached, img);
      if (next_reached == reached) break;
      frontier = img;
      reached = next_reached;
    }
    res.peak = std::max(res.peak, mgr.node_table_size());
    res.seconds = elapsed();
    res.completed = true;
    res.equivalent = mgr.land(reached, p.miscompare) == mgr.false_bdd();
    return res;
  } catch (const bdd::BddError&) {
    res.seconds = elapsed();
    res.completed = false;  // node blow-up counts as "-" in the tables
    res.failure = FailureKind::ResourceExhausted;
    return res;
  }
}

}  // namespace eda::verify
