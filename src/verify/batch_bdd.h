#pragma once

#include <vector>

#include "verify/parallel_verify.h"

namespace eda::verify {

/// Batched BDD traversal: advance many independent equivalence obligations
/// together through ONE shared BddManager instead of one manager per job.
///
/// The shared unique/ite tables are the point — cones split off the same
/// design share most of their logic, so their product machines build
/// largely identical BDDs; in a shared pool those collapse to the same
/// nodes and the apply cache warms across jobs.  Per-job state lives in
/// structure-of-arrays task records (reached/frontier/partitions/result),
/// and a unified lock-step loop gives every live task one image step per
/// round, so no single blow-up-prone job starves the rest of progress.
///
/// Verdict semantics are identical to run_check per job: the traversal per
/// task is the same partitioned-image (eijk), dependency-reduced (eijk+)
/// or monolithic-relation (smv) fixpoint, just interleaved.  Per-task
/// timeouts are measured on time actually spent inside that task's steps.
/// The pool's node budget is the batch's aggregate per-job budget (capped
/// at 8x the largest single job — the manager never frees, so the pool
/// must hold every task's nodes at once); if it still blows up, the
/// starved tasks are transparently re-run on private managers with their
/// own per-job limits, so batching can cost time but never changes a
/// verdict.  SisFsm jobs are explicit-state, have nothing to share, and
/// are dispatched straight to run_check.
std::vector<VerifyResult> check_batch(const std::vector<CheckJob>& jobs);

}  // namespace eda::verify
