#include "verify/cone.h"

#include <map>
#include <tuple>
#include <utility>

#include "kernel/parallel.h"
#include "verify/batch_bdd.h"

namespace eda::verify {

using circuit::GateNetlist;
using circuit::GateNode;
using circuit::GateOp;
using circuit::LitId;

namespace {

/// Exact structural identity of two netlists (op/fan-in/init graphs plus
/// the input/dff/output wiring, names ignored).  Both sides of a ConePair
/// are canonical extract_cones netlists, so equal cones are equal
/// node-for-node — this is the exact check behind the hash equality, not
/// a probabilistic one.
bool structurally_identical(const GateNetlist& a, const GateNetlist& b) {
  if (a.nodes().size() != b.nodes().size() ||
      a.inputs() != b.inputs() || a.dffs() != b.dffs() ||
      a.outputs().size() != b.outputs().size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const GateNode& na = a.nodes()[i];
    const GateNode& nb = b.nodes()[i];
    if (na.op != nb.op || na.a != nb.a || na.b != nb.b ||
        na.next != nb.next || na.init != nb.init) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    if (a.outputs()[i].second != b.outputs()[i].second) return false;
  }
  return true;
}

/// Gate constructor with hash-consing and local folding: the structural
/// analogue of the kernel's interner, scoped to one miter build.
struct MiterBuilder {
  GateNetlist net;
  LitId c0 = -1, c1 = -1;
  std::map<std::tuple<int, LitId, LitId>, LitId> cse;

  LitId konst(bool v) {
    LitId& c = v ? c1 : c0;
    if (c < 0) c = net.add_const(v);
    return c;
  }
  bool is_const(LitId l, bool v) const {
    GateOp op = net.node(l).op;
    return v ? op == GateOp::Const1 : op == GateOp::Const0;
  }
  LitId cse_gate(GateOp op, LitId x, LitId y) {
    auto key = std::make_tuple(static_cast<int>(op), x, y);
    if (auto it = cse.find(key); it != cse.end()) return it->second;
    LitId l = y < 0 ? net.add_gate(op, x) : net.add_gate(op, x, y);
    cse.emplace(key, l);
    return l;
  }
  LitId mk_not(LitId x) {
    if (is_const(x, false)) return konst(true);
    if (is_const(x, true)) return konst(false);
    if (net.node(x).op == GateOp::Not) return net.node(x).a;
    return cse_gate(GateOp::Not, x, -1);
  }
  LitId mk_bin(GateOp op, LitId x, LitId y) {
    if (x > y) std::swap(x, y);  // And/Or/Xor all commute
    switch (op) {
      case GateOp::And:
        if (x == y) return x;
        if (is_const(x, false) || is_const(y, false)) return konst(false);
        if (is_const(x, true)) return y;
        if (is_const(y, true)) return x;
        break;
      case GateOp::Or:
        if (x == y) return x;
        if (is_const(x, true) || is_const(y, true)) return konst(true);
        if (is_const(x, false)) return y;
        if (is_const(y, false)) return x;
        break;
      case GateOp::Xor:
        if (x == y) return konst(false);
        if (is_const(x, false)) return y;
        if (is_const(y, false)) return x;
        if (is_const(x, true)) return mk_not(y);
        if (is_const(y, true)) return mk_not(x);
        break;
      default:
        throw ConeError("MiterBuilder: not a binary gate op");
    }
    return cse_gate(op, x, y);
  }

  /// Copy one side into the shared builder, returning the old→new map.
  /// Inputs must already be mapped (shared between sides); gates go
  /// through the folding constructors, which is where side B's logic
  /// dedupes against side A's.
  std::vector<LitId> copy_side(const GateNetlist& side,
                               const std::vector<LitId>& input_map,
                               const char* prefix) {
    std::vector<LitId> remap(side.nodes().size(), -1);
    for (std::size_t k = 0; k < side.inputs().size(); ++k) {
      remap[static_cast<std::size_t>(side.inputs()[k])] = input_map[k];
    }
    for (LitId d : side.dffs()) {
      const GateNode& n = side.node(d);
      remap[static_cast<std::size_t>(d)] =
          net.add_dff(prefix + n.name, n.init);
    }
    for (std::size_t idx = 0; idx < side.nodes().size(); ++idx) {
      const GateNode& n = side.nodes()[idx];
      LitId& slot = remap[idx];
      switch (n.op) {
        case GateOp::Input:
        case GateOp::Dff:
          break;  // mapped above
        case GateOp::Const0:
          slot = konst(false);
          break;
        case GateOp::Const1:
          slot = konst(true);
          break;
        case GateOp::Not:
          slot = mk_not(remap[static_cast<std::size_t>(n.a)]);
          break;
        default:
          slot = mk_bin(n.op, remap[static_cast<std::size_t>(n.a)],
                        remap[static_cast<std::size_t>(n.b)]);
          break;
      }
    }
    for (LitId d : side.dffs()) {
      net.set_dff_next(remap[static_cast<std::size_t>(d)],
                       remap[static_cast<std::size_t>(side.node(d).next)]);
    }
    return remap;
  }
};

}  // namespace

std::vector<ConePair> pair_cones(const GateNetlist& a, const GateNetlist& b) {
  if (a.outputs().size() != b.outputs().size()) {
    throw ConeError("pair_cones: output-count mismatch (" +
                    std::to_string(a.outputs().size()) + " vs " +
                    std::to_string(b.outputs().size()) + ")");
  }
  std::vector<io::Cone> ca = io::extract_cones(a);
  std::vector<io::Cone> cb = io::extract_cones(b);
  std::vector<ConePair> pairs;
  pairs.reserve(ca.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    ConePair p;
    p.output = ca[i].output;
    p.hash_a = ca[i].hash;
    p.hash_b = cb[i].hash;
    p.a = std::move(ca[i].net);
    p.b = std::move(cb[i].net);
    pairs.push_back(std::move(p));
  }
  return pairs;
}

GateNetlist build_miter(const GateNetlist& a, const GateNetlist& b) {
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    throw ConeError("build_miter: interface mismatch");
  }
  MiterBuilder mb;
  std::vector<LitId> input_map;
  input_map.reserve(a.inputs().size());
  for (LitId in : a.inputs()) {
    input_map.push_back(mb.net.add_input(a.node(in).name));
  }
  std::vector<LitId> ma = mb.copy_side(a, input_map, "a.");
  std::vector<LitId> mbm = mb.copy_side(b, input_map, "b.");
  LitId acc = mb.konst(false);
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    LitId x = mb.mk_bin(
        GateOp::Xor, ma[static_cast<std::size_t>(a.outputs()[i].second)],
        mbm[static_cast<std::size_t>(b.outputs()[i].second)]);
    acc = mb.mk_bin(GateOp::Or, acc, x);
  }
  mb.net.add_output("miter", acc);
  mb.net.validate();
  return mb.net;
}

bool miter_output_is_const(const GateNetlist& miter, bool value) {
  GateOp op = miter.node(miter.outputs().front().second).op;
  return value ? op == GateOp::Const1 : op == GateOp::Const0;
}

std::optional<VerifyResult> check_cone_fast(const ConeJob& job,
                                            std::uint64_t* sim_spent) {
  const ConePair& p = *job.pair;
  if (sim_spent != nullptr) *sim_spent = 0;
  // Tier 1: byte-identical canonical cones — equal graphs compute equal
  // functions; no engine, no miter.
  if (structurally_identical(p.a, p.b)) {
    VerifyResult v;
    v.completed = true;
    v.equivalent = true;
    return v;
  }
  // Tier 2: the folded miter.  A constant-0 output proves combinational
  // equality through shared logic (e.g. a double-negation edit folds
  // away); constant 1 means the outputs differ for EVERY input and state —
  // in particular the initial one — so it is a completed NONEQUIV.
  GateNetlist miter = build_miter(p.a, p.b);
  if (miter_output_is_const(miter, false) ||
      miter_output_is_const(miter, true)) {
    VerifyResult v;
    v.completed = true;
    v.equivalent = miter_output_is_const(miter, false);
    return v;
  }
  // Tier 3: bit-parallel random simulation.  X-pessimistic flop init
  // makes a refutation hold for every initial register assignment, so
  // NONEQUIV here agrees with any engine's verdict; a pass-through says
  // nothing and falls to the engine.
  if (job.use_sim) {
    sim::RefuteResult r = sim::refute(p, job.sim);
    if (r.refuted) {
      VerifyResult v;
      v.completed = true;
      v.equivalent = false;
      v.sim_refuted = true;
      v.sim_vectors = r.vectors;
      v.counterexample = r.cex.output;
      return v;
    }
    if (sim_spent != nullptr) *sim_spent = r.vectors;
  }
  return std::nullopt;
}

VerifyResult check_cone(const ConeJob& job) {
  std::uint64_t spent = 0;
  if (std::optional<VerifyResult> v = check_cone_fast(job, &spent)) {
    return *v;
  }
  // Tier 4: the requested engine on the pair.
  VerifyResult v = run_check({&job.pair->a, &job.pair->b, job.engine,
                              job.opts});
  v.sim_vectors = spent;  // the pre-filter's spend rides on the verdict
  return v;
}

std::vector<VerifyResult> check_cones_parallel(
    const std::vector<ConeJob>& jobs) {
  return kernel::parallel_map(
      jobs, [](const ConeJob& job) { return check_cone(job); });
}

std::vector<VerifyResult> check_cones_batched(
    const std::vector<ConeJob>& jobs) {
  struct Fast {
    std::optional<VerifyResult> verdict;
    std::uint64_t sim_spent = 0;
  };
  // The cheap tiers are embarrassingly parallel; fan them out first.
  std::vector<Fast> fast = kernel::parallel_map(jobs, [](const ConeJob& j) {
    Fast f;
    f.verdict = check_cone_fast(j, &f.sim_spent);
    return f;
  });
  std::vector<VerifyResult> out(jobs.size());
  std::vector<std::size_t> survivors;
  std::vector<CheckJob> engine_jobs;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (fast[i].verdict) {
      out[i] = *fast[i].verdict;
    } else {
      survivors.push_back(i);
      engine_jobs.push_back(
          {&jobs[i].pair->a, &jobs[i].pair->b, jobs[i].engine, jobs[i].opts});
    }
  }
  // The EQUIV-heavy tail runs on the shared-pool lock-step kernel.
  std::vector<VerifyResult> proved = check_batch(engine_jobs);
  for (std::size_t k = 0; k < survivors.size(); ++k) {
    proved[k].sim_vectors = fast[survivors[k]].sim_spent;
    out[survivors[k]] = proved[k];
  }
  return out;
}

StitchedVerdict stitch_verdicts(const std::vector<ConeVerdict>& cones) {
  StitchedVerdict s;
  s.cones = cones.size();
  s.completed = true;
  for (const ConeVerdict& c : cones) {
    if (c.cache_hit) {
      ++s.hits;
    } else {
      ++s.reproved;
    }
    if (c.result.sim_refuted) ++s.sim_refuted;
    s.sim_vectors += c.result.sim_vectors;
    if (c.result.completed && !c.result.equivalent &&
        s.counterexample.empty()) {
      s.counterexample = c.output;
    }
    if (!c.result.completed) s.completed = false;
  }
  if (!s.counterexample.empty()) {
    // NONEQUIV short-circuit: one differing output settles the design.
    s.completed = true;
    s.equivalent = false;
  } else {
    s.equivalent = s.completed;  // all cones completed EQUIV (or vacuous)
  }
  return s;
}

}  // namespace eda::verify
