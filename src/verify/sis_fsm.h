#pragma once

#include "circuit/bitblast.h"
#include "verify/common.h"

namespace eda::verify {

/// SIS-style FSM comparison (the paper's "SIS" column): explicit
/// breadth-first traversal of the product state graph, enumerating every
/// input combination from every visited state and comparing the outputs.
/// Cost is O(|reachable states| * 2^inputs) — exponential in both the
/// flip-flop and input counts, which is why the column degrades first in
/// the tables.
VerifyResult sis_fsm_check(const circuit::GateNetlist& a,
                           const circuit::GateNetlist& b,
                           const VerifyOptions& opts = {});

}  // namespace eda::verify
