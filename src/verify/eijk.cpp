#include "verify/eijk.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

namespace eda::verify {

using bdd::BddId;
using bdd::BddManager;

VerifyResult eijk_check(const circuit::GateNetlist& a,
                        const circuit::GateNetlist& b,
                        const VerifyOptions& opts,
                        bool exploit_functional_dependencies) {
  VerifyResult res;
  auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  try {
    BddManager mgr(product_var_count(a, b), opts.node_limit);
    Product p = build_product(mgr, a, b);

    // Partitioned transition relation.
    std::vector<BddId> partitions;
    for (std::size_t k = 0; k < p.a.next_fn.size(); ++k) {
      partitions.push_back(
          mgr.lxnor(mgr.var(p.a.next_vars[k]), p.a.next_fn[k]));
    }
    for (std::size_t k = 0; k < p.b.next_fn.size(); ++k) {
      partitions.push_back(
          mgr.lxnor(mgr.var(p.b.next_vars[k]), p.b.next_fn[k]));
    }

    // Dependency detection targets the second machine's registers: after a
    // retiming they are functions f(s) of the first machine's registers,
    // which is exactly the structure van Eijk & Jess exploit.
    std::vector<int> all_state;
    for (int k = 0; k < p.layout.nb; ++k) {
      all_state.push_back(p.layout.b_state(k));
    }

    BddId reached = mgr.land(p.a.init, p.b.init);
    BddId frontier = reached;
    for (;;) {
      ++res.iterations;
      res.peak = std::max(res.peak, mgr.node_table_size());
      if (elapsed() > opts.timeout_sec) {
        res.seconds = elapsed();
        res.failure = FailureKind::Timeout;
        return res;
      }

      BddId img_frontier = frontier;
      std::vector<BddId> parts = partitions;
      if (exploit_functional_dependencies) {
        // Detect functionally dependent state variables on the frontier:
        // v is dependent when the v=1 and v=0 projections are disjoint.
        // Replace the frontier by its reduced form and add the dependency
        // as an extra (cheap) partition, so image computation works in the
        // reduced space (van Eijk & Jess).
        for (int v : mgr.support(frontier)) {
          if (std::find(all_state.begin(), all_state.end(), v) ==
              all_state.end()) {
            continue;
          }
          BddId on = mgr.exists(mgr.land(img_frontier, mgr.var(v)), {v});
          BddId off = mgr.exists(mgr.land(img_frontier, mgr.nvar(v)), {v});
          if (mgr.land(on, off) == mgr.false_bdd()) {
            BddId dep = mgr.lxnor(mgr.var(v), on);  // v == F(rest)
            img_frontier = mgr.exists(img_frontier, {v});
            parts.push_back(dep);
          }
        }
      }

      BddId img = partitioned_image(mgr, img_frontier, parts, p.quantify);
      img = mgr.rename(img, p.next_to_present);
      BddId next_reached = mgr.lor(reached, img);
      if (next_reached == reached) break;
      frontier = img;
      reached = next_reached;
    }
    res.peak = std::max(res.peak, mgr.node_table_size());
    res.seconds = elapsed();
    res.completed = true;
    res.equivalent = mgr.land(reached, p.miscompare) == mgr.false_bdd();
    return res;
  } catch (const bdd::BddError&) {
    res.seconds = elapsed();
    res.completed = false;
    res.failure = FailureKind::ResourceExhausted;
    return res;
  }
}

}  // namespace eda::verify
