#include "verify/retime_match.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <random>
#include <set>
#include <vector>

#include "kernel/parallel.h"

namespace eda::verify {

using circuit::Node;
using circuit::Op;
using circuit::Rtl;
using circuit::SignalId;

namespace {

bool is_comb(const Node& n) {
  return n.op != Op::Input && n.op != Op::Reg && n.op != Op::Const;
}

/// Signals with a path to an output, directly or through *live* registers.
/// Dead logic — including dead registers and their next-state cones — is
/// excluded from the match: retiming implementations legitimately sweep
/// nodes that feed nothing (our conventional step drops unused f-nodes and
/// unread registers), and that is not a behavioural difference.
std::set<SignalId> useful_signals(const Rtl& rtl) {
  // Flat mark vectors + explicit worklists: the matcher runs once per
  // verification attempt and the old set-based recursion dominated on wide
  // netlists.
  const std::size_t n_nodes = rtl.nodes().size();
  // Liveness fixpoint over registers first: a register is live when some
  // output cone reads it, directly or through other live registers.
  std::vector<std::uint8_t> visited(n_nodes, 0);
  std::vector<std::uint8_t> live(n_nodes, 0);
  std::vector<SignalId> stack;
  std::vector<SignalId> new_live;
  auto regs_of = [&](SignalId root) {
    stack.push_back(root);
    while (!stack.empty()) {
      SignalId s = stack.back();
      stack.pop_back();
      // Bounds-checked fetch first: a malformed id (e.g. an unset register
      // next of -1) must throw like the pre-worklist code did, not index
      // the mark vectors out of range.
      const Node& n = rtl.node(s);
      auto idx = static_cast<std::size_t>(s);
      if (visited[idx]) continue;
      visited[idx] = 1;
      if (n.op == Op::Reg) {
        live[idx] = 1;
        new_live.push_back(s);
        continue;
      }
      for (SignalId o : n.operands) stack.push_back(o);
    }
  };
  for (const circuit::OutputPort& o : rtl.outputs()) regs_of(o.signal);
  while (!new_live.empty()) {
    std::vector<SignalId> frontier;
    frontier.swap(new_live);
    for (SignalId r : frontier) regs_of(rtl.node(r).next);
  }
  // Useful = cones of the outputs and of the live registers' nexts.
  std::vector<std::uint8_t> useful_mark(n_nodes, 0);
  auto visit = [&](SignalId root) {
    stack.push_back(root);
    while (!stack.empty()) {
      SignalId s = stack.back();
      stack.pop_back();
      const Node& n = rtl.node(s);
      auto idx = static_cast<std::size_t>(s);
      if (useful_mark[idx]) continue;
      useful_mark[idx] = 1;
      if (n.op == Op::Reg) continue;  // crossed per live register below
      for (SignalId o : n.operands) stack.push_back(o);
    }
  };
  for (const circuit::OutputPort& o : rtl.outputs()) visit(o.signal);
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    if (live[idx]) {
      useful_mark[idx] = 1;
      visit(rtl.node(static_cast<SignalId>(idx)).next);
    }
  }
  std::set<SignalId> useful;
  for (std::size_t idx = 0; idx < n_nodes; ++idx) {
    if (useful_mark[idx]) useful.insert(static_cast<SignalId>(idx));
  }
  return useful;
}

/// Follow register chains to the combinational/input/const source feeding
/// a signal, counting the registers crossed.
std::pair<SignalId, int> chase_regs(const Rtl& rtl, SignalId s) {
  int w = 0;
  while (rtl.node(s).op == Op::Reg) {
    ++w;
    s = rtl.node(s).next;
  }
  return {s, w};
}

/// Weisfeiler–Leman colour refinement with registers transparent: a
/// register inherits the colour of whatever feeds it, so two circuits that
/// differ only in register placement converge to the same colouring.
/// Inputs and outputs are anchored by position so the match respects the
/// environment.
std::vector<std::uint64_t> wl_colors(const Rtl& rtl, std::size_t rounds) {
  const std::size_t n = rtl.nodes().size();
  std::vector<std::uint64_t> color(n);
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  // Seed colours.
  for (std::size_t k = 0; k < n; ++k) {
    const Node& nd = rtl.nodes()[k];
    std::uint64_t c = 0;
    switch (nd.op) {
      case Op::Input: {
        std::size_t pos = 0;
        for (std::size_t j = 0; j < rtl.inputs().size(); ++j) {
          if (rtl.inputs()[j] == static_cast<SignalId>(k)) pos = j;
        }
        c = mix(0x11, pos);
        break;
      }
      case Op::Const:
        c = mix(0x22, nd.value) ^ static_cast<std::uint64_t>(nd.width);
        break;
      case Op::Reg:
        c = 0x33;  // transparent; refined from the source below
        break;
      default:
        c = mix(0x44, static_cast<std::uint64_t>(nd.op)) ^
            static_cast<std::uint64_t>(nd.width);
    }
    color[k] = c;
  }
  // Output anchors.
  for (std::size_t j = 0; j < rtl.outputs().size(); ++j) {
    auto [src, w] = chase_regs(rtl, rtl.outputs()[j].signal);
    (void)w;
    color[static_cast<std::size_t>(src)] =
        mix(color[static_cast<std::size_t>(src)], 0x5500 + j);
  }
  // Refinement rounds (registers copy their source's colour).  The caller
  // fixes the round count so both circuits are refined equally — colours
  // on cyclic skeletons never converge, they must simply correspond.
  std::vector<std::uint64_t> next(n);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t k = 0; k < n; ++k) {
      const Node& nd = rtl.nodes()[k];
      if (nd.op == Op::Reg) {
        auto [src, w] = chase_regs(rtl, static_cast<SignalId>(k));
        (void)w;
        next[k] = color[static_cast<std::size_t>(src)];
        continue;
      }
      std::uint64_t h = color[k];
      for (SignalId o : nd.operands) {
        auto [src, w] = chase_regs(rtl, o);
        (void)w;
        h = mix(h, color[static_cast<std::size_t>(src)]);
      }
      next[k] = h;
    }
    if (next == color) break;
    color = next;
  }
  return color;
}

}  // namespace

RetimeMatchResult verify_retiming(const Rtl& a, const Rtl& b,
                                  std::uint32_t seed) {
  RetimeMatchResult res;
  a.validate();
  b.validate();
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    res.reason = "interface mismatch (input/output arity)";
    return res;
  }
  for (std::size_t k = 0; k < a.inputs().size(); ++k) {
    if (a.node(a.inputs()[k]).width != b.node(b.inputs()[k]).width) {
      res.reason = "interface mismatch (input widths)";
      return res;
    }
  }

  // ---- 1. structural matching by colour class. -----------------------------
  std::size_t rounds = std::max(a.nodes().size(), b.nodes().size()) + 1;
  std::vector<std::uint64_t> ca = wl_colors(a, rounds);
  std::vector<std::uint64_t> cb = wl_colors(b, rounds);
  std::set<SignalId> useful_a = useful_signals(a);
  std::set<SignalId> useful_b = useful_signals(b);
  std::map<std::uint64_t, std::vector<SignalId>> by_color_b;
  for (std::size_t k = 0; k < b.nodes().size(); ++k) {
    if (is_comb(b.nodes()[k]) && useful_b.count(static_cast<SignalId>(k)) > 0) {
      by_color_b[cb[k]].push_back(static_cast<SignalId>(k));
    }
  }
  std::map<std::uint64_t, std::size_t> cursor;
  std::set<SignalId> used_b;
  for (std::size_t k = 0; k < a.nodes().size(); ++k) {
    if (!is_comb(a.nodes()[k]) ||
        useful_a.count(static_cast<SignalId>(k)) == 0) {
      continue;
    }
    auto it = by_color_b.find(ca[k]);
    std::size_t& cur = cursor[ca[k]];
    if (it == by_color_b.end() || cur >= it->second.size()) {
      res.reason = "no structural counterpart for node " + std::to_string(k) +
                   " (" + circuit::op_name(a.nodes()[k].op) +
                   ") — not a pure retiming";
      return res;
    }
    SignalId mb = it->second[cur++];
    if (a.nodes()[k].op != b.node(mb).op ||
        a.nodes()[k].operands.size() != b.node(mb).operands.size()) {
      res.reason = "colour collision with different operators";
      return res;
    }
    res.node_map[static_cast<SignalId>(k)] = mb;
    used_b.insert(mb);
  }
  for (std::size_t k = 0; k < b.nodes().size(); ++k) {
    if (is_comb(b.nodes()[k]) && useful_b.count(static_cast<SignalId>(k)) > 0 &&
        used_b.count(static_cast<SignalId>(k)) == 0) {
      res.reason = "retimed circuit has unmatched combinational nodes";
      return res;
    }
  }

  // ---- 2. solve the lag from matched edges. ---------------------------------
  // Vertex set: matched comb nodes plus one environment vertex (-1).
  // Constraint per edge u->v: lag(v) - lag(u) = w_b(e) - w_a(e).
  std::map<SignalId, int>& lag = res.lag;

  struct Constraint {
    SignalId u, v;  // a-side ids; -1 = environment
    int diff;       // lag(v) - lag(u)
  };
  std::vector<Constraint> cons;
  std::map<SignalId, SignalId> inv_map;  // b -> a
  for (const auto& [na, nb] : res.node_map) inv_map[nb] = na;

  for (const auto& [na, nb] : res.node_map) {
    const Node& xa = a.node(na);
    const Node& xb = b.node(nb);
    for (std::size_t j = 0; j < xa.operands.size(); ++j) {
      auto [sa, wa] = chase_regs(a, xa.operands[j]);
      auto [sb, wb] = chase_regs(b, xb.operands[j]);
      const Node& da = a.node(sa);
      const Node& db = b.node(sb);
      if (da.op == Op::Const || db.op == Op::Const) {
        if (da.op != db.op || da.value != db.value) {
          res.reason = "constant operand mismatch";
          return res;
        }
        continue;  // constants are time-invariant: no lag constraint
      }
      SignalId ua;
      if (da.op == Op::Input) {
        if (db.op != Op::Input) {
          res.reason = "operand source kind mismatch";
          return res;
        }
        ua = -1;
      } else {
        auto it = res.node_map.find(sa);
        if (it == res.node_map.end() || it->second != sb) {
          res.reason = "matched nodes disagree on operand sources";
          return res;
        }
        ua = sa;
      }
      cons.push_back(Constraint{ua, na, wb - wa});
    }
  }
  // Output edges anchor their sources to the environment.
  for (std::size_t j = 0; j < a.outputs().size(); ++j) {
    auto [sa, wa] = chase_regs(a, a.outputs()[j].signal);
    auto [sb, wb] = chase_regs(b, b.outputs()[j].signal);
    const Node& da = a.node(sa);
    if (da.op == Op::Const || da.op == Op::Input) {
      if (wa != wb) {
        // A register chain on a constant/input changes only the
        // transient; fall through to the simulation check.
      }
      continue;
    }
    auto it = res.node_map.find(sa);
    if (it == res.node_map.end() || it->second != sb) {
      res.reason = "outputs driven by unmatched nodes";
      return res;
    }
    cons.push_back(Constraint{sa, -1, wb - wa});
  }

  // Propagate lags from the environment (lag(-1) = 0) and check.
  lag[-1] = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Constraint& c : cons) {
      auto iu = lag.find(c.u);
      auto iv = lag.find(c.v);
      if (iu != lag.end() && iv == lag.end()) {
        lag[c.v] = iu->second + c.diff;
        changed = true;
      } else if (iu == lag.end() && iv != lag.end()) {
        lag[c.u] = iv->second - c.diff;
        changed = true;
      } else if (iu != lag.end() && iv != lag.end()) {
        if (iv->second - iu->second != c.diff) {
          res.reason = "inconsistent register displacement (lag) — the "
                       "register moves do not form a legal retiming";
          return res;
        }
      }
    }
  }
  // Isolated components (no path to the environment) get lag 0.
  for (const auto& [na, nb] : res.node_map) {
    (void)nb;
    lag.emplace(na, 0);
  }

  // ---- 3. reset-transient co-simulation for the initial values. ------------
  int max_lag = 0;
  for (const auto& [v, l] : lag) max_lag = std::max(max_lag, std::abs(l));
  int cycles = 2 * (max_lag + 1) + 4;
  for (std::uint32_t s = 0; s < 3; ++s) {
    if (!circuit::simulation_equivalent(a, b, cycles, seed + s)) {
      res.reason = "reset transient differs — initial values of the moved "
                   "registers are not compatible";
      return res;
    }
  }

  res.equivalent = true;
  return res;
}

std::vector<RetimeMatchResult> verify_retimings(
    const std::vector<RetimeJob>& jobs) {
  return kernel::parallel_map(jobs, [](const RetimeJob& job) {
    return verify_retiming(*job.a, *job.b, job.seed);
  });
}

}  // namespace eda::verify
