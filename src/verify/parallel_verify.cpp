#include "verify/parallel_verify.h"

#include "kernel/parallel.h"

namespace eda::verify {

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::Eijk:
      return "eijk";
    case Engine::EijkPlus:
      return "eijk+";
    case Engine::Smv:
      return "smv";
    case Engine::SisFsm:
      return "sis";
  }
  return "?";  // unreachable
}

std::optional<Engine> parse_engine(const std::string& name) {
  if (name == "eijk") return Engine::Eijk;
  if (name == "eijk+" || name == "eijkplus") return Engine::EijkPlus;
  if (name == "smv") return Engine::Smv;
  if (name == "sis") return Engine::SisFsm;
  return std::nullopt;
}

VerifyResult run_check(const CheckJob& job) {
  switch (job.engine) {
    case Engine::Eijk:
      return eijk_check(*job.a, *job.b, job.opts, false);
    case Engine::EijkPlus:
      return eijk_check(*job.a, *job.b, job.opts, true);
    case Engine::Smv:
      return smv_check(*job.a, *job.b, job.opts);
    case Engine::SisFsm:
      return sis_fsm_check(*job.a, *job.b, job.opts);
  }
  return {};  // unreachable
}

std::vector<VerifyResult> check_parallel(const std::vector<CheckJob>& jobs) {
  return kernel::parallel_map(
      jobs, [](const CheckJob& job) { return run_check(job); });
}

}  // namespace eda::verify
