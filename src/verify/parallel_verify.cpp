#include "verify/parallel_verify.h"

#include "kernel/parallel.h"

namespace eda::verify {

VerifyResult run_check(const CheckJob& job) {
  switch (job.engine) {
    case Engine::Eijk:
      return eijk_check(*job.a, *job.b, job.opts, false);
    case Engine::EijkPlus:
      return eijk_check(*job.a, *job.b, job.opts, true);
    case Engine::Smv:
      return smv_check(*job.a, *job.b, job.opts);
    case Engine::SisFsm:
      return sis_fsm_check(*job.a, *job.b, job.opts);
  }
  return {};  // unreachable
}

std::vector<VerifyResult> check_parallel(const std::vector<CheckJob>& jobs) {
  return kernel::parallel_map(
      jobs, [](const CheckJob& job) { return run_check(job); });
}

}  // namespace eda::verify
