#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/blif.h"
#include "verify/parallel_verify.h"

namespace eda::verify {

class ConeError : public kernel::KernelError {
 public:
  explicit ConeError(const std::string& what) : kernel::KernelError(what) {}
};

/// One positionally paired output cone from two netlists under comparison:
/// the unit of incremental re-verification.  The whole-design equivalence
/// question "do A and B agree on every output?" decomposes exactly into
/// one such pair per output — each output's behaviour is a function of its
/// cone alone — so per-pair verdicts stitch back losslessly
/// (stitch_verdicts below).
struct ConePair {
  std::string output;  ///< A-side output name (labels counterexamples)
  std::uint64_t hash_a = 0, hash_b = 0;  ///< canonical cone digests
  circuit::GateNetlist a, b;             ///< io::extract_cones netlists
};

/// Decompose both netlists (io::extract_cones) and pair the cones by
/// output position — the same matching the engines apply to whole
/// netlists.  Throws ConeError when the output counts differ (no
/// positional pairing exists; the caller should fall back to a
/// whole-netlist check, which diagnoses the interface mismatch).
std::vector<ConePair> pair_cones(const circuit::GateNetlist& a,
                                 const circuit::GateNetlist& b);

/// One schedulable unit for the pool: prove a single cone pair with an
/// engine under resource bounds.
struct ConeJob {
  const ConePair* pair = nullptr;
  Engine engine = Engine::Eijk;
  VerifyOptions opts;
};

/// Prove one cone pair.  Structurally identical cones (byte-equal
/// canonical netlists — the unchanged cones of an edited design meeting a
/// cold cache, or a self-pair) short-circuit to EQUIV without touching an
/// engine; combinationally identical cones are caught by folding the
/// hash-consed miter (build_miter) to a constant; everything else runs
/// the requested engine on the pair.
VerifyResult check_cone(const ConeJob& job);

/// Independent cone obligations fanned across the global pool, results in
/// input order — check_parallel, one level finer-grained.
std::vector<VerifyResult> check_cones_parallel(
    const std::vector<ConeJob>& jobs);

/// Build the miter of two netlists sharing their primary inputs: a
/// single-output netlist whose output is OR over outputs of
/// (a_i XOR b_i) — 0 exactly when the sides agree.  Construction
/// hash-conses every combinational gate (with constant folding and
/// double-negation/absorption rules), so logic the two sides share — the
/// common case when B is a small edit of A — is built ONCE and feeds both
/// sides' outputs; combinationally equal sides fold the miter output all
/// the way to a constant 0, which check_cone turns into an engine-free
/// verdict.  Flip-flops are per-side (register correspondence across
/// sides is the engines' job, not the builder's).  Throws ConeError on an
/// input-count mismatch.
circuit::GateNetlist build_miter(const circuit::GateNetlist& a,
                                 const circuit::GateNetlist& b);

/// True when the miter's output literal folded to the given constant.
bool miter_output_is_const(const circuit::GateNetlist& miter, bool value);

/// Per-cone verdict plus its cache provenance, ready for stitching.
struct ConeVerdict {
  std::string output;
  VerifyResult result;
  bool cache_hit = false;
};

/// The whole-design verdict reassembled from per-cone verdicts, with
/// honest accounting: a design is EQUIV iff every cone completed EQUIV;
/// any completed NONEQUIV cone short-circuits the whole design to a
/// completed NONEQUIV verdict (one differing output disproves equivalence
/// regardless of cones still unresolved), with `counterexample` naming
/// the first such output; otherwise an incomplete cone leaves the design
/// incomplete.
struct StitchedVerdict {
  bool completed = false;
  bool equivalent = false;
  std::string counterexample;  ///< first NONEQUIV cone's output name
  std::size_t cones = 0;
  std::size_t hits = 0;      ///< cones served from a verdict cache
  std::size_t reproved = 0;  ///< cones that had to be re-proved
};

StitchedVerdict stitch_verdicts(const std::vector<ConeVerdict>& cones);

}  // namespace eda::verify
