#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <optional>

#include "io/blif.h"
#include "sim/bitsim.h"
#include "verify/parallel_verify.h"

namespace eda::verify {

class ConeError : public kernel::KernelError {
 public:
  explicit ConeError(const std::string& what) : kernel::KernelError(what) {}
};

/// One positionally paired output cone from two netlists under comparison:
/// the unit of incremental re-verification.  The whole-design equivalence
/// question "do A and B agree on every output?" decomposes exactly into
/// one such pair per output — each output's behaviour is a function of its
/// cone alone — so per-pair verdicts stitch back losslessly
/// (stitch_verdicts below).
struct ConePair {
  std::string output;  ///< A-side output name (labels counterexamples)
  std::uint64_t hash_a = 0, hash_b = 0;  ///< canonical cone digests
  circuit::GateNetlist a, b;             ///< io::extract_cones netlists
};

/// Decompose both netlists (io::extract_cones) and pair the cones by
/// output position — the same matching the engines apply to whole
/// netlists.  Throws ConeError when the output counts differ (no
/// positional pairing exists; the caller should fall back to a
/// whole-netlist check, which diagnoses the interface mismatch).
std::vector<ConePair> pair_cones(const circuit::GateNetlist& a,
                                 const circuit::GateNetlist& b);

/// One schedulable unit for the pool: prove a single cone pair with an
/// engine under resource bounds.  `use_sim` inserts the bit-parallel
/// simulation pre-filter (sim/bitsim.h) between the miter fold and the
/// engine call — refuting most NONEQUIV pairs in microseconds.
struct ConeJob {
  const ConePair* pair = nullptr;
  Engine engine = Engine::Eijk;
  VerifyOptions opts;
  bool use_sim = true;
  sim::SimOptions sim;
};

/// Prove one cone pair, cheapest evidence first:
///   tier 1  byte-identical canonical cones — free EQUIV;
///   tier 2  the hash-consed miter folds to a constant — free verdict;
///   tier 3  bit-parallel random simulation refutes the pair (use_sim) —
///           microsecond NONEQUIV with a concrete counterexample;
///   tier 4  the requested engine.
VerifyResult check_cone(const ConeJob& job);

/// Tiers 1-3 only: the engine-free fast path, shared by check_cone and
/// the service's batched pipeline.  nullopt means the cheap tiers could
/// not settle the pair and an engine must run; `sim_spent`, when given,
/// receives the stimulus the pre-filter burned on the pass-through so the
/// engine verdict can still account for it.
std::optional<VerifyResult> check_cone_fast(
    const ConeJob& job, std::uint64_t* sim_spent = nullptr);

/// Independent cone obligations fanned across the global pool, results in
/// input order — check_parallel, one level finer-grained.
std::vector<VerifyResult> check_cones_parallel(
    const std::vector<ConeJob>& jobs);

/// As check_cones_parallel, but the jobs that survive the cheap tiers run
/// on the batched BDD kernel (verify/batch_bdd.h): one shared node pool
/// and a unified lock-step apply loop across the whole EQUIV tail, instead
/// of one BddManager per cone.  Verdicts are identical to the per-job
/// path; the sharing only amortises allocation and cache traffic.
std::vector<VerifyResult> check_cones_batched(
    const std::vector<ConeJob>& jobs);

/// Build the miter of two netlists sharing their primary inputs: a
/// single-output netlist whose output is OR over outputs of
/// (a_i XOR b_i) — 0 exactly when the sides agree.  Construction
/// hash-conses every combinational gate (with constant folding and
/// double-negation/absorption rules), so logic the two sides share — the
/// common case when B is a small edit of A — is built ONCE and feeds both
/// sides' outputs; combinationally equal sides fold the miter output all
/// the way to a constant 0, which check_cone turns into an engine-free
/// verdict.  Flip-flops are per-side (register correspondence across
/// sides is the engines' job, not the builder's).  Throws ConeError on an
/// input-count mismatch.
circuit::GateNetlist build_miter(const circuit::GateNetlist& a,
                                 const circuit::GateNetlist& b);

/// True when the miter's output literal folded to the given constant.
bool miter_output_is_const(const circuit::GateNetlist& miter, bool value);

/// Per-cone verdict plus its cache provenance, ready for stitching.
struct ConeVerdict {
  std::string output;
  VerifyResult result;
  bool cache_hit = false;
};

/// The whole-design verdict reassembled from per-cone verdicts, with
/// honest accounting: a design is EQUIV iff every cone completed EQUIV;
/// any completed NONEQUIV cone short-circuits the whole design to a
/// completed NONEQUIV verdict (one differing output disproves equivalence
/// regardless of cones still unresolved), with `counterexample` naming
/// the first such output; otherwise an incomplete cone leaves the design
/// incomplete.
struct StitchedVerdict {
  bool completed = false;
  bool equivalent = false;
  std::string counterexample;  ///< first NONEQUIV cone's output name
  std::size_t cones = 0;
  std::size_t hits = 0;      ///< cones served from a verdict cache
  std::size_t reproved = 0;  ///< cones that had to be re-proved
  std::size_t sim_refuted = 0;       ///< cones settled by the sim tier
  std::uint64_t sim_vectors = 0;     ///< total pre-filter stimulus spent
};

StitchedVerdict stitch_verdicts(const std::vector<ConeVerdict>& cones);

}  // namespace eda::verify
