#include "verify/sis_fsm.h"

#include <chrono>
#include <deque>
#include <set>

namespace eda::verify {

VerifyResult sis_fsm_check(const circuit::GateNetlist& a,
                           const circuit::GateNetlist& b,
                           const VerifyOptions& opts) {
  VerifyResult res;
  auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size()) {
    res.completed = true;
    res.equivalent = false;
    return res;
  }
  const std::size_t ni = a.inputs().size();
  if (ni > 24) {
    // Input enumeration hopeless; report "-".  This is a capability limit,
    // not a transient budget: escalation cannot help, but the class is
    // still "resources" (the state space, not the wall clock, is the wall).
    res.failure = FailureKind::ResourceExhausted;
    return res;
  }

  circuit::GateSimulator sa(a), sb(b);
  std::vector<bool> init;
  for (bool v : sa.dff_state()) init.push_back(v);
  for (bool v : sb.dff_state()) init.push_back(v);

  const std::size_t na = sa.dff_state().size();
  std::set<std::vector<bool>> visited;
  std::deque<std::vector<bool>> queue;
  visited.insert(init);
  queue.push_back(init);

  std::uint64_t input_count = 1ULL << ni;
  while (!queue.empty()) {
    if (elapsed() > opts.timeout_sec ||
        visited.size() > opts.state_limit) {
      res.seconds = elapsed();
      res.peak = visited.size();
      res.failure = elapsed() > opts.timeout_sec
                        ? FailureKind::Timeout
                        : FailureKind::ResourceExhausted;
      return res;  // "-"
    }
    std::vector<bool> state = queue.front();
    queue.pop_front();
    ++res.iterations;
    std::vector<bool> state_a(state.begin(),
                              state.begin() + static_cast<long>(na));
    std::vector<bool> state_b(state.begin() + static_cast<long>(na),
                              state.end());
    for (std::uint64_t in = 0; in < input_count; ++in) {
      std::vector<bool> bits = circuit::to_bits(in, static_cast<int>(ni));
      auto [oa, nexta] = sa.eval(bits, state_a);
      auto [ob, nextb] = sb.eval(bits, state_b);
      if (oa != ob) {
        res.completed = true;
        res.equivalent = false;
        res.seconds = elapsed();
        res.peak = visited.size();
        return res;
      }
      std::vector<bool> next = nexta;
      next.insert(next.end(), nextb.begin(), nextb.end());
      if (visited.insert(next).second) queue.push_back(next);
    }
  }
  res.completed = true;
  res.equivalent = true;
  res.seconds = elapsed();
  res.peak = visited.size();
  return res;
}

}  // namespace eda::verify
