#pragma once

#include "verify/symbolic.h"

namespace eda::verify {

/// SMV-style symbolic model checking of sequential equivalence (the
/// paper's "SMV" column): build the *monolithic* transition relation of
/// the product machine, run breadth-first symbolic reachability from the
/// initial state pair, and check that no reachable state can produce
/// differing outputs.  Runtime and BDD sizes grow with the number of state
/// bits — the blow-up the paper's tables document.
VerifyResult smv_check(const circuit::GateNetlist& a,
                       const circuit::GateNetlist& b,
                       const VerifyOptions& opts = {});

}  // namespace eda::verify
