#pragma once

#include <optional>
#include <string>
#include <vector>

#include "verify/common.h"
#include "verify/eijk.h"
#include "verify/sis_fsm.h"
#include "verify/smv_mc.h"

namespace eda::verify {

/// Which engine a CheckJob runs (the columns of the paper's tables).
enum class Engine { Eijk, EijkPlus, Smv, SisFsm };

/// Table-column spelling of an engine: "eijk", "eijk+", "smv", "sis".
const char* engine_name(Engine engine);

/// Inverse of engine_name (nullopt on unknown spellings).  Used by the
/// verification service's manifest/CLI front ends.
std::optional<Engine> parse_engine(const std::string& name);

/// One sequential-equivalence obligation: a pair of gate-level netlists
/// plus the engine and resource bounds to check them with.
struct CheckJob {
  const circuit::GateNetlist* a = nullptr;
  const circuit::GateNetlist* b = nullptr;
  Engine engine = Engine::Eijk;
  VerifyOptions opts;
};

/// Run one job (dispatch on `engine`).
VerifyResult run_check(const CheckJob& job);

/// Run independent obligations concurrently on the global thread pool,
/// results in input order.
///
/// Threading model: every job builds its own BddManager / explicit state
/// table, so the symbolic engines stay confined to the thread executing
/// the job — confinement, not sharing, is the BDD layer's concurrency
/// story (one manager's tables are useless to a differently-numbered
/// product machine anyway).  Cross-job sharing happens one layer down, in
/// the kernel's concurrent interner and the hash layer's memo tables.
std::vector<VerifyResult> check_parallel(const std::vector<CheckJob>& jobs);

}  // namespace eda::verify
