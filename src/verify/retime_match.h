#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "circuit/rtl.h"

namespace eda::verify {

/// Result of the retiming-specific structural verifier.
struct RetimeMatchResult {
  bool equivalent = false;
  /// Human-readable reason when not equivalent (which check failed).
  std::string reason;
  /// Matched combinational nodes (a-signal -> b-signal) when structural
  /// matching succeeded.
  std::map<circuit::SignalId, circuit::SignalId> node_map;
  /// Solved lag (retiming value) per matched a-node; inputs/outputs are
  /// anchored at lag 0.
  std::map<circuit::SignalId, int> lag;
};

/// The specialised post-synthesis verifier of the paper's reference [8]
/// (Huang, Cheng & Chen, "On verifying the correctness of retimed
/// circuits"): exploit that pure retiming leaves the combinational
/// skeleton intact and only moves registers, so the two descriptions can
/// be *matched* instead of model-checked.
///
///   1. colour-refine both netlists with registers transparent, anchoring
///      primary inputs and outputs, and match combinational nodes by
///      colour class;
///   2. read the register displacement r(v) off the matched edges
///      (w_b = w_a + r(head) - r(tail)) and check it is consistent, with
///      the environment anchored at lag 0;
///   3. validate the initial values by co-simulating the reset transient
///      (2*(max|lag|+1) cycles, multiple random stimuli) — the structural
///      match guarantees steady-state equivalence, the transient check
///      covers the moved registers' initial contents.
///
/// Fast (near-linear) but, as the paper stresses, *limited to pure
/// retiming*: any resynthesis (logic minimisation, re-encoding) breaks the
/// match and the verifier gives up — the combinability drawback that
/// motivates HASH's compound steps.
RetimeMatchResult verify_retiming(const circuit::Rtl& a,
                                  const circuit::Rtl& b,
                                  std::uint32_t seed = 1);

/// One retiming obligation for the batch verifier.
struct RetimeJob {
  const circuit::Rtl* a = nullptr;
  const circuit::Rtl* b = nullptr;
  std::uint32_t seed = 1;
};

/// Verify independent retiming obligations concurrently on the global
/// thread pool (kernel/parallel.h); results keep input order.  Per-circuit
/// runs are embarrassingly parallel — the matcher's state is all local,
/// and the shared structures it leans on (interned terms, cached
/// free-variable sets) are concurrency-safe in the kernel.
std::vector<RetimeMatchResult> verify_retimings(
    const std::vector<RetimeJob>& jobs);

}  // namespace eda::verify
