#include "io/blif.h"

#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "kernel/serialize.h"

namespace eda::io {

using circuit::GateNetlist;
using circuit::GateNode;
using circuit::GateOp;
using circuit::LitId;

namespace {

std::string lit_name(const GateNetlist& net, LitId l) {
  const GateNode& n = net.node(l);
  if ((n.op == GateOp::Input || n.op == GateOp::Dff) && !n.name.empty()) {
    return n.name;
  }
  return "n" + std::to_string(l);
}

}  // namespace

std::string write_blif(const GateNetlist& net, const std::string& model_name) {
  net.validate();
  std::ostringstream out;
  out << ".model " << model_name << "\n";
  out << ".inputs";
  for (LitId l : net.inputs()) out << ' ' << lit_name(net, l);
  out << "\n.outputs";
  for (const auto& [name, lit] : net.outputs()) out << ' ' << name;
  out << "\n";
  for (LitId d : net.dffs()) {
    const GateNode& n = net.node(d);
    out << ".latch " << lit_name(net, n.next) << ' ' << lit_name(net, d)
        << ' ' << (n.init ? 1 : 0) << "\n";
  }
  for (std::size_t idx = 0; idx < net.nodes().size(); ++idx) {
    LitId l = static_cast<LitId>(idx);
    const GateNode& n = net.nodes()[idx];
    std::string me = lit_name(net, l);
    switch (n.op) {
      case GateOp::Input:
      case GateOp::Dff:
        break;
      case GateOp::Const0:
        out << ".names " << me << "\n";
        break;
      case GateOp::Const1:
        out << ".names " << me << "\n1\n";
        break;
      case GateOp::Not:
        out << ".names " << lit_name(net, n.a) << ' ' << me << "\n0 1\n";
        break;
      case GateOp::And:
        out << ".names " << lit_name(net, n.a) << ' ' << lit_name(net, n.b)
            << ' ' << me << "\n11 1\n";
        break;
      case GateOp::Or:
        out << ".names " << lit_name(net, n.a) << ' ' << lit_name(net, n.b)
            << ' ' << me << "\n1- 1\n-1 1\n";
        break;
      case GateOp::Xor:
        out << ".names " << lit_name(net, n.a) << ' ' << lit_name(net, n.b)
            << ' ' << me << "\n10 1\n01 1\n";
        break;
    }
  }
  // Output ports alias their driving literals.
  for (const auto& [name, lit] : net.outputs()) {
    out << ".names " << lit_name(net, lit) << ' ' << name << "\n1 1\n";
  }
  out << ".end\n";
  return out.str();
}

namespace {

struct Cover {
  std::vector<std::string> ins;  // input signal names
  std::string out;
  std::vector<std::string> rows;  // input-plane cubes
  char out_value = '1';           // '1' = on-set cover, '0' = off-set cover
};

struct BlifDoc {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  struct Latch {
    std::string in, out;
    bool init;
  };
  std::vector<Latch> latches;
  std::map<std::string, Cover> covers;  // by output name
};

BlifDoc read_doc(std::istream& in) {
  BlifDoc doc;
  Cover* open_cover = nullptr;
  std::string raw, line;
  auto flush_continuations = [&](std::string s) {
    while (!s.empty() && s.back() == '\\') {
      s.pop_back();
      std::string next;
      if (std::getline(in, next)) s += next;
    }
    return s;
  };
  while (std::getline(in, raw)) {
    line = flush_continuations(raw);
    if (auto pos = line.find('#'); pos != std::string::npos) line.erase(pos);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == ".model") {
      // name ignored
    } else if (tok == ".inputs") {
      std::string s;
      while (ls >> s) doc.inputs.push_back(s);
      open_cover = nullptr;
    } else if (tok == ".outputs") {
      std::string s;
      while (ls >> s) doc.outputs.push_back(s);
      open_cover = nullptr;
    } else if (tok == ".latch") {
      BlifDoc::Latch l;
      std::string init;
      if (!(ls >> l.in >> l.out)) throw IoError("parse_blif: bad .latch");
      // Optional type/clock fields before the init value are not emitted
      // by us; accept 0/1/2/3 (2/3 = unknown -> 0) as the last token.
      std::vector<std::string> rest;
      std::string s;
      while (ls >> s) rest.push_back(s);
      l.init = !rest.empty() && rest.back() == "1";
      doc.latches.push_back(l);
      open_cover = nullptr;
    } else if (tok == ".names") {
      std::vector<std::string> sig;
      std::string s;
      while (ls >> s) sig.push_back(s);
      if (sig.empty()) throw IoError("parse_blif: .names with no signals");
      Cover c;
      c.out = sig.back();
      sig.pop_back();
      c.ins = std::move(sig);
      if (c.ins.size() > 16) {
        throw IoError("parse_blif: cover fan-in above 16 unsupported");
      }
      auto [it, inserted] = doc.covers.emplace(c.out, std::move(c));
      if (!inserted) {
        throw IoError("parse_blif: signal '" + it->first +
                      "' defined twice");
      }
      open_cover = &it->second;
    } else if (tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      throw IoError("parse_blif: unsupported directive '" + tok + "'");
    } else {
      // A cover row: input cube plus output value (or bare "1" for const).
      if (open_cover == nullptr) {
        throw IoError("parse_blif: cover row outside .names");
      }
      std::string cube, ov;
      if (open_cover->ins.empty()) {
        cube = "";
        ov = tok;
      } else {
        cube = tok;
        if (!(ls >> ov)) throw IoError("parse_blif: bad row '" + line + "'");
        if (cube.size() != open_cover->ins.size()) {
          throw IoError("parse_blif: cube width mismatch in '" + line + "'");
        }
      }
      if (ov != "1" && ov != "0") {
        throw IoError("parse_blif: output plane must be 0 or 1");
      }
      if (open_cover->rows.empty()) {
        open_cover->out_value = ov[0];
      } else if (open_cover->out_value != ov[0]) {
        throw IoError("parse_blif: mixed on/off-set covers unsupported");
      }
      open_cover->rows.push_back(cube);
    }
  }
  return doc;
}

}  // namespace

GateNetlist parse_blif(std::istream& in) {
  BlifDoc doc = read_doc(in);
  GateNetlist net;
  std::map<std::string, LitId> sig;

  for (const std::string& s : doc.inputs) sig[s] = net.add_input(s);
  for (const BlifDoc::Latch& l : doc.latches) {
    sig[l.out] = net.add_dff(l.out, l.init);
  }

  // Resolve covers recursively (they may reference each other forward).
  std::set<std::string> in_progress;
  std::function<LitId(const std::string&)> resolve =
      [&](const std::string& name) -> LitId {
    if (auto it = sig.find(name); it != sig.end()) return it->second;
    auto cit = doc.covers.find(name);
    if (cit == doc.covers.end()) {
      throw IoError("parse_blif: undriven signal '" + name + "'");
    }
    if (!in_progress.insert(name).second) {
      throw IoError("parse_blif: combinational cycle through '" + name +
                    "'");
    }
    const Cover& c = cit->second;
    std::vector<LitId> ins;
    ins.reserve(c.ins.size());
    for (const std::string& s : c.ins) ins.push_back(resolve(s));

    LitId value;
    if (c.ins.empty()) {
      value = net.add_const(c.out_value == '1' && !c.rows.empty());
    } else if (c.rows.empty()) {
      value = net.add_const(false);  // empty on-set
    } else {
      // OR of AND-cubes over the input literals.
      LitId acc = -1;
      for (const std::string& row : c.rows) {
        LitId cube = -1;
        for (std::size_t k = 0; k < row.size(); ++k) {
          if (row[k] == '-') continue;
          LitId lit = ins[k];
          if (row[k] == '0') lit = net.add_gate(GateOp::Not, lit);
          cube = cube < 0 ? lit : net.add_gate(GateOp::And, cube, lit);
        }
        if (cube < 0) cube = net.add_const(true);  // all-don't-care cube
        acc = acc < 0 ? cube : net.add_gate(GateOp::Or, acc, cube);
      }
      value = acc;
      if (c.out_value == '0') value = net.add_gate(GateOp::Not, value);
    }
    in_progress.erase(name);
    sig[name] = value;
    return value;
  };

  for (const BlifDoc::Latch& l : doc.latches) {
    net.set_dff_next(sig.at(l.out), resolve(l.in));
  }
  for (const std::string& o : doc.outputs) net.add_output(o, resolve(o));
  net.validate();
  return net;
}

GateNetlist parse_blif_string(const std::string& text) {
  std::istringstream in(text);
  return parse_blif(in);
}

std::uint64_t structural_hash(const GateNetlist& net) {
  // kernel::fnv1a64 over a canonical byte walk of the graph in node-id
  // order.  Node ids are themselves structural (they encode construction
  // order, which the parser derives from the netlist's topology, not its
  // names), so two parses of structurally identical BLIF agree
  // id-for-id.  Names are *excluded* on purpose — see the header comment.
  // Fan-in ids are offset by one so the -1 "unset" sentinel hashes
  // distinctly from node 0.
  std::string walk;
  walk.reserve(net.nodes().size() * 33 + 64);
  auto put = [&walk](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      walk.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put(net.nodes().size());
  for (const GateNode& n : net.nodes()) {
    put(static_cast<std::uint64_t>(n.op));
    put(static_cast<std::uint64_t>(n.a + 1));
    put(static_cast<std::uint64_t>(n.b + 1));
    put(static_cast<std::uint64_t>(n.next + 1));
    put(n.init ? 1 : 0);
  }
  put(net.inputs().size());
  for (LitId l : net.inputs()) put(static_cast<std::uint64_t>(l));
  put(net.dffs().size());
  for (LitId l : net.dffs()) put(static_cast<std::uint64_t>(l));
  put(net.outputs().size());
  for (const auto& [name, lit] : net.outputs()) {
    put(static_cast<std::uint64_t>(lit));
  }
  return kernel::fnv1a64(walk);
}

namespace {

/// Canonical extraction of one output cone.  Pass 1 walks the transitive
/// fanin depth-first — combinational edges first, then each discovered
/// flip-flop's next-state function, in flip-flop discovery order — and
/// records a post-order over gates/constants plus the DFF discovery
/// order.  Pass 2 rebuilds the cone in that order (inputs, DFFs, gates),
/// so the new node ids depend only on the cone's graph, never on how the
/// parent happened to number or interleave its nodes.
Cone extract_one(const GateNetlist& net, const std::string& name,
                 LitId root) {
  std::vector<LitId> dff_order, comb_order;
  std::vector<char> seen(net.nodes().size(), 0);

  struct Frame {
    LitId lit;
    bool expanded;
  };
  std::vector<Frame> stack;
  auto walk = [&](LitId start) {
    stack.push_back({start, false});
    while (!stack.empty()) {
      Frame f = stack.back();
      const GateNode& n = net.node(f.lit);
      if (n.op == GateOp::Input) {
        stack.pop_back();
        continue;
      }
      if (n.op == GateOp::Dff) {
        if (!seen[static_cast<std::size_t>(f.lit)]) {
          seen[static_cast<std::size_t>(f.lit)] = 1;
          dff_order.push_back(f.lit);
        }
        stack.pop_back();
        continue;
      }
      if (seen[static_cast<std::size_t>(f.lit)]) {
        stack.pop_back();
        continue;
      }
      if (!f.expanded) {
        stack.back().expanded = true;
        // Push b then a so a's subtree is emitted first.
        if (n.b >= 0) stack.push_back({n.b, false});
        if (n.a >= 0) stack.push_back({n.a, false});
        continue;
      }
      seen[static_cast<std::size_t>(f.lit)] = 1;
      comb_order.push_back(f.lit);
      stack.pop_back();
    }
  };
  walk(root);
  // dff_order grows while we iterate: each flip-flop's next-state cone may
  // discover further flip-flops.
  for (std::size_t k = 0; k < dff_order.size(); ++k) {
    walk(net.node(dff_order[k]).next);
  }

  GateNetlist out;
  std::vector<LitId> remap(net.nodes().size(), -1);
  for (LitId in : net.inputs()) {
    remap[static_cast<std::size_t>(in)] = out.add_input(net.node(in).name);
  }
  for (LitId d : dff_order) {
    const GateNode& n = net.node(d);
    remap[static_cast<std::size_t>(d)] = out.add_dff(n.name, n.init);
  }
  for (LitId g : comb_order) {
    const GateNode& n = net.node(g);
    LitId mapped;
    switch (n.op) {
      case GateOp::Const0:
        mapped = out.add_const(false);
        break;
      case GateOp::Const1:
        mapped = out.add_const(true);
        break;
      case GateOp::Not:
        mapped = out.add_gate(GateOp::Not,
                              remap[static_cast<std::size_t>(n.a)]);
        break;
      default:
        mapped = out.add_gate(n.op, remap[static_cast<std::size_t>(n.a)],
                              remap[static_cast<std::size_t>(n.b)]);
        break;
    }
    remap[static_cast<std::size_t>(g)] = mapped;
  }
  for (LitId d : dff_order) {
    out.set_dff_next(remap[static_cast<std::size_t>(d)],
                     remap[static_cast<std::size_t>(net.node(d).next)]);
  }
  Cone cone;
  cone.output = name;
  out.add_output(name, remap[static_cast<std::size_t>(root)]);
  out.validate();
  cone.hash = structural_hash(out);
  cone.net = std::move(out);
  return cone;
}

}  // namespace

std::vector<Cone> extract_cones(const GateNetlist& net) {
  net.validate();
  std::vector<Cone> cones;
  cones.reserve(net.outputs().size());
  for (const auto& [name, lit] : net.outputs()) {
    cones.push_back(extract_one(net, name, lit));
  }
  return cones;
}

std::vector<std::uint64_t> cone_hashes(const GateNetlist& net) {
  std::vector<std::uint64_t> hashes;
  std::vector<Cone> cones = extract_cones(net);
  hashes.reserve(cones.size());
  for (const Cone& c : cones) hashes.push_back(c.hash);
  return hashes;
}

std::string write_verilog(const GateNetlist& net,
                          const std::string& module_name) {
  net.validate();
  std::ostringstream out;
  out << "module " << module_name << " (\n  input wire clk,\n"
      << "  input wire rst";
  for (LitId l : net.inputs()) {
    out << ",\n  input wire " << lit_name(net, l);
  }
  for (const auto& [name, lit] : net.outputs()) {
    out << ",\n  output wire " << name;
  }
  out << "\n);\n\n";
  for (LitId d : net.dffs()) {
    out << "  reg " << lit_name(net, d) << ";\n";
  }
  for (std::size_t idx = 0; idx < net.nodes().size(); ++idx) {
    const GateNode& n = net.nodes()[idx];
    if (n.op == GateOp::Input || n.op == GateOp::Dff) continue;
    out << "  wire " << lit_name(net, static_cast<LitId>(idx)) << ";\n";
  }
  out << "\n";
  for (std::size_t idx = 0; idx < net.nodes().size(); ++idx) {
    LitId l = static_cast<LitId>(idx);
    const GateNode& n = net.nodes()[idx];
    std::string me = lit_name(net, l);
    switch (n.op) {
      case GateOp::Input:
      case GateOp::Dff:
        break;
      case GateOp::Const0:
        out << "  assign " << me << " = 1'b0;\n";
        break;
      case GateOp::Const1:
        out << "  assign " << me << " = 1'b1;\n";
        break;
      case GateOp::Not:
        out << "  assign " << me << " = ~" << lit_name(net, n.a) << ";\n";
        break;
      case GateOp::And:
        out << "  assign " << me << " = " << lit_name(net, n.a) << " & "
            << lit_name(net, n.b) << ";\n";
        break;
      case GateOp::Or:
        out << "  assign " << me << " = " << lit_name(net, n.a) << " | "
            << lit_name(net, n.b) << ";\n";
        break;
      case GateOp::Xor:
        out << "  assign " << me << " = " << lit_name(net, n.a) << " ^ "
            << lit_name(net, n.b) << ";\n";
        break;
    }
  }
  out << "\n  always @(posedge clk) begin\n";
  out << "    if (rst) begin\n";
  for (LitId d : net.dffs()) {
    out << "      " << lit_name(net, d) << " <= 1'b"
        << (net.node(d).init ? 1 : 0) << ";\n";
  }
  out << "    end else begin\n";
  for (LitId d : net.dffs()) {
    out << "      " << lit_name(net, d) << " <= "
        << lit_name(net, net.node(d).next) << ";\n";
  }
  out << "    end\n  end\n\n";
  for (const auto& [name, lit] : net.outputs()) {
    out << "  assign " << name << " = " << lit_name(net, lit) << ";\n";
  }
  out << "\nendmodule\n";
  return out.str();
}

}  // namespace eda::io
