#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "circuit/bitblast.h"

namespace eda::io {

class IoError : public kernel::KernelError {
 public:
  explicit IoError(const std::string& what) : kernel::KernelError(what) {}
};

/// BLIF (Berkeley Logic Interchange Format) writer/parser for the
/// gate-level netlist — the format SIS consumed and in which the IWLS'91
/// benchmarks circulated.  Writing emits one `.names` cover per gate
/// (2-input AND/OR/XOR, NOT, constants) and one `.latch <in> <out> <init>`
/// per flip-flop; parsing accepts the generated subset plus arbitrary
/// single-output `.names` covers with up to 16 inputs (sums of products
/// with '-' don't-cares), which it decomposes back into 2-input gates.
std::string write_blif(const circuit::GateNetlist& net,
                       const std::string& model_name);

circuit::GateNetlist parse_blif(std::istream& in);
circuit::GateNetlist parse_blif_string(const std::string& text);

/// Structural hash of a gate netlist: a digest of the graph — node ops and
/// fan-in topology, flip-flop next/init wiring, input arity and the output
/// list — that deliberately ignores every signal NAME.  Two netlists that
/// differ only in wire/port spellings (the engines match inputs and
/// outputs positionally, see verify/symbolic.h) hash identically, while
/// any structural edit changes the digest.  This is the cross-restart
/// verdict-cache key for BLIF-pair jobs: the same pair of files — or a
/// renamed re-export of them — resubmitted to a warm-started service maps
/// to the same cache entry without re-reading any RTL.
std::uint64_t structural_hash(const circuit::GateNetlist& net);

/// One primary output's logic cone, extracted as a self-contained netlist.
///
/// The cone is the transitive fanin of the output — combinational logic
/// AND the flip-flops it reads, recursively through their next-state
/// functions — rebuilt in a *canonical* node order derived purely from the
/// cone's own graph (discovery order of a deterministic depth-first walk
/// from the output).  Two netlists that contain the same cone, no matter
/// how their nodes are numbered, interleaved with other cones' logic, or
/// named, therefore produce byte-identical cone netlists.  `hash` is
/// `structural_hash` of that canonical netlist: THE per-cone fingerprint
/// the incremental verdict cache keys on.
///
/// The cone netlist keeps ALL of the parent's primary inputs, in the
/// parent's order, whether the cone reads them or not — the engines match
/// inputs positionally, so cones extracted from two different netlists
/// stay directly comparable.  (The input list is part of a netlist's
/// interface; reordering it is an interface change and does change the
/// digest, unlike reordering gates or renaming wires.)
struct Cone {
  std::string output;        ///< primary-output name (parent spelling)
  std::uint64_t hash = 0;    ///< canonical structural digest of the cone
  circuit::GateNetlist net;  ///< single-output sub-netlist, all parent PIs
};

/// Decompose a netlist into one Cone per primary output, in output order.
/// Logic shared between cones is duplicated into every cone that reads it
/// (each cone is self-contained), so an edit inside one cone never
/// perturbs another cone's digest.
std::vector<Cone> extract_cones(const circuit::GateNetlist& net);

/// Just the per-output digest vector of extract_cones — the decompose →
/// lookup half of incremental re-verification, when the caller only needs
/// to know WHICH cones changed.
std::vector<std::uint64_t> cone_hashes(const circuit::GateNetlist& net);

/// Structural Verilog-2001 writer for the same netlist (assign/always
/// style, one flop per `always @(posedge clk)` with a synchronous reset
/// to the initial values).  Output is for inspection/export; no parser.
std::string write_verilog(const circuit::GateNetlist& net,
                          const std::string& module_name);

}  // namespace eda::io
