#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "circuit/bitblast.h"

namespace eda::io {

class IoError : public kernel::KernelError {
 public:
  explicit IoError(const std::string& what) : kernel::KernelError(what) {}
};

/// BLIF (Berkeley Logic Interchange Format) writer/parser for the
/// gate-level netlist — the format SIS consumed and in which the IWLS'91
/// benchmarks circulated.  Writing emits one `.names` cover per gate
/// (2-input AND/OR/XOR, NOT, constants) and one `.latch <in> <out> <init>`
/// per flip-flop; parsing accepts the generated subset plus arbitrary
/// single-output `.names` covers with up to 16 inputs (sums of products
/// with '-' don't-cares), which it decomposes back into 2-input gates.
std::string write_blif(const circuit::GateNetlist& net,
                       const std::string& model_name);

circuit::GateNetlist parse_blif(std::istream& in);
circuit::GateNetlist parse_blif_string(const std::string& text);

/// Structural hash of a gate netlist: a digest of the graph — node ops and
/// fan-in topology, flip-flop next/init wiring, input arity and the output
/// list — that deliberately ignores every signal NAME.  Two netlists that
/// differ only in wire/port spellings (the engines match inputs and
/// outputs positionally, see verify/symbolic.h) hash identically, while
/// any structural edit changes the digest.  This is the cross-restart
/// verdict-cache key for BLIF-pair jobs: the same pair of files — or a
/// renamed re-export of them — resubmitted to a warm-started service maps
/// to the same cache entry without re-reading any RTL.
std::uint64_t structural_hash(const circuit::GateNetlist& net);

/// Structural Verilog-2001 writer for the same netlist (assign/always
/// style, one flop per `always @(posedge clk)` with a synchronous reset
/// to the initial values).  Output is for inspection/export; no parser.
std::string write_verilog(const circuit::GateNetlist& net,
                          const std::string& module_name);

}  // namespace eda::io
