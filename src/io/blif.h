#pragma once

#include <iosfwd>
#include <string>

#include "circuit/bitblast.h"

namespace eda::io {

class IoError : public kernel::KernelError {
 public:
  explicit IoError(const std::string& what) : kernel::KernelError(what) {}
};

/// BLIF (Berkeley Logic Interchange Format) writer/parser for the
/// gate-level netlist — the format SIS consumed and in which the IWLS'91
/// benchmarks circulated.  Writing emits one `.names` cover per gate
/// (2-input AND/OR/XOR, NOT, constants) and one `.latch <in> <out> <init>`
/// per flip-flop; parsing accepts the generated subset plus arbitrary
/// single-output `.names` covers with up to 16 inputs (sums of products
/// with '-' don't-cares), which it decomposes back into 2-input gates.
std::string write_blif(const circuit::GateNetlist& net,
                       const std::string& model_name);

circuit::GateNetlist parse_blif(std::istream& in);
circuit::GateNetlist parse_blif_string(const std::string& text);

/// Structural Verilog-2001 writer for the same netlist (assign/always
/// style, one flop per `always @(posedge clk)` with a synchronous reset
/// to the initial values).  Output is for inspection/export; no parser.
std::string write_verilog(const circuit::GateNetlist& net,
                          const std::string& module_name);

}  // namespace eda::io
