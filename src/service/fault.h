#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "kernel/error.h"

namespace eda::service {

/// The named injection sites.  A site is instrumented code that asks the
/// process-wide FaultInjector "should this visit fail?" and, when told
/// yes, raises the failure the site models.  Sites are compiled in
/// unconditionally (one relaxed atomic load when injection is off) so the
/// chaos leg tests the exact binary that ships.
///
///   engine_bdd    a per-job BDD engine run raises BddError (pool failure)
///   batch_pool    the shared-pool batched kernel raises BddError, forcing
///                 the degrade-to-per-job-managers ladder
///   alloc         an engine run raises std::bad_alloc
///   worker        a worker thread raises a generic exception mid-job
///   cache_write   a cache save writes a truncated payload (torn write /
///                 crashed saver), which the next load must diagnose
///   remote_stall  a remote-cache exchange wedges mid-frame (half the
///                 request bytes sent, then nothing) — the client must
///                 close and reconnect, never reuse the desynced stream
inline constexpr const char* kFaultEngineBdd = "engine_bdd";
inline constexpr const char* kFaultBatchPool = "batch_pool";
inline constexpr const char* kFaultAlloc = "alloc";
inline constexpr const char* kFaultWorker = "worker";
inline constexpr const char* kFaultCacheWrite = "cache_write";
inline constexpr const char* kFaultRemoteStall = "remote_stall";

class FaultSpecError : public kernel::KernelError {
 public:
  explicit FaultSpecError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// Deterministic seeded fault injection, flag/env-driven.
///
/// A schedule is `seed=S,rate=R,sites=a+b+c`: each visit to an armed site
/// draws a pure function of (seed, site name, per-site visit counter) and
/// fails when the draw lands under `rate` — so one (seed, schedule) pair
/// reproduces the exact same fault sequence on every run, which is what
/// lets a failing chaos schedule be replayed bit-for-bit.  Sites not
/// listed never fire; `off` (or the empty spec) disarms everything.
///
/// Thread safety: configuration is publish-once-then-read (the service
/// front configures before submitting any job; configure must not race
/// active sites); the per-site visit counters are atomics, so concurrent
/// workers draw disjoint visit numbers.
class FaultInjector {
 public:
  /// The process-wide injector every instrumented site consults.
  static FaultInjector& instance();

  /// Parse and arm a schedule spec (see class comment).  Throws
  /// FaultSpecError on a malformed spec; `off` / empty disarms.
  void configure(const std::string& spec);

  /// Arm from the EDA_FAULTS environment variable when set (same grammar);
  /// a no-op when unset.  Throws FaultSpecError on a malformed value.
  void configure_from_env();

  /// Disarm every site and zero the visit/injection counters.
  void reset();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// One visit to `site`: true when this visit must fail.  The hot path
  /// when injection is off is a single relaxed load.
  bool should_fail(const char* site);

  /// Total failures injected at `site` since the last configure/reset
  /// (chaos drivers and tests assert on these).
  std::uint64_t injected(const char* site) const;

  std::uint64_t seed() const { return seed_; }
  double rate() const { return rate_; }

 private:
  FaultInjector();

  struct Site {
    const char* name = "";
    std::atomic<bool> armed{false};
    std::atomic<std::uint64_t> visits{0};
    std::atomic<std::uint64_t> injected{0};
  };

  Site* find(const std::string& site);
  const Site* find(const std::string& site) const;

  std::atomic<bool> enabled_{false};
  std::uint64_t seed_ = 0;
  double rate_ = 0.0;
  std::array<Site, 6> sites_;
};

}  // namespace eda::service
