#include "service/remote_backend.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>

#include "kernel/serialize.h"
#include "service/guard.h"

namespace eda::service {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

struct RemoteBackend::Impl {
  explicit Impl(RemoteBackendOptions opts_) : opts(std::move(opts_)) {
    addr = parse_remote_address(opts.server);
    backoff.max_retries = 0;  // unused fields; only the curve matters
    backoff.backoff_ms = opts.backoff_ms;
    backoff.backoff_cap_ms = opts.backoff_cap_ms;
  }

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  /// One request/response exchange under the connection mutex.  Returns
  /// the reply payload, or nullopt when the daemon is unreachable (which
  /// opens/extends the degradation window).  Never throws.
  std::optional<std::string> exchange(const std::string& request) {
    std::lock_guard<std::mutex> lock(mu);
    if (Clock::now() < degraded_until) {
      degraded_ops.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (fd < 0) {
      fd = connect_remote(addr, opts.connect_timeout_ms,
                          opts.io_timeout_ms);
      if (fd < 0) {
        return fail("cannot connect to " + addr.display);
      }
    }
    std::string reply;
    if (!write_frame(fd, request) ||
        !read_frame(fd, reply, kMaxResponseFrame)) {
      return fail("request to " + addr.display + " failed mid-flight");
    }
    consecutive_failures = 0;
    return reply;
  }

  /// Record a transport failure: close the socket, bump the counters and
  /// open a capped-exponential backoff window (RETRY_LATER semantics —
  /// the next op inside the window is served locally, the first one after
  /// it probes the daemon again).
  std::nullopt_t fail(const std::string& what) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
    ++consecutive_failures;
    remote_failures.fetch_add(1, std::memory_order_relaxed);
    double wait = retry_backoff_ms(backoff, consecutive_failures);
    degraded_until =
        Clock::now() +
        std::chrono::microseconds(static_cast<long long>(wait * 1000.0));
    last_error = what;
    return std::nullopt;
  }

  kernel::Encoder request(RemoteOp op) const {
    kernel::Encoder enc;
    enc.u32(kRemoteProtoVersion);
    enc.u8(static_cast<std::uint8_t>(op));
    enc.str(opts.tenant);
    return enc;
  }

  /// Validate a reply header; returns a Decoder positioned at the body
  /// and the status, or nullopt (degrading) on malformation/version skew.
  std::optional<RemoteStatus> reply_status(kernel::Decoder& dec) {
    std::uint32_t version = dec.u32();
    if (version != kRemoteProtoVersion) return std::nullopt;
    std::uint8_t status = dec.u8();
    if (status > static_cast<std::uint8_t>(RemoteStatus::Error)) {
      return std::nullopt;
    }
    return static_cast<RemoteStatus>(status);
  }

  std::optional<kernel::Thm> remote_lookup_thm(const kernel::Term& goal) {
    kernel::Encoder enc = request(RemoteOp::LookupThm);
    enc.term(goal);
    auto reply = exchange(enc.finish());
    if (!reply) return std::nullopt;
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (status && *status == RemoteStatus::Ok) return dec.thm();
    } catch (const kernel::KernelError&) {
      // Corrupt reply: treat like a dead daemon, never like a miss that
      // could poison accounting.
      std::lock_guard<std::mutex> lock(mu);
      fail("malformed reply from " + addr.display);
    }
    return std::nullopt;
  }

  std::optional<verify::VerifyResult> remote_lookup_verdict(
      const kernel::Term& key) {
    kernel::Encoder enc = request(RemoteOp::LookupVerdict);
    enc.term(key);
    auto reply = exchange(enc.finish());
    if (!reply) return std::nullopt;
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (status && *status == RemoteStatus::Ok) {
        return decode_verdict(dec);
      }
    } catch (const kernel::KernelError&) {
      std::lock_guard<std::mutex> lock(mu);
      fail("malformed reply from " + addr.display);
    }
    return std::nullopt;
  }

  void remote_publish_thm(const kernel::Term& goal,
                          const kernel::Thm& th) {
    kernel::Encoder enc = request(RemoteOp::PublishThm);
    enc.term(goal);
    enc.thm(th);
    (void)exchange(enc.finish());  // best-effort; the fallback has it
  }

  void remote_publish_verdict(const kernel::Term& key,
                              const verify::VerifyResult& v) {
    kernel::Encoder enc = request(RemoteOp::PublishVerdict);
    enc.term(key);
    encode_verdict(enc, v);
    (void)exchange(enc.finish());
  }

  std::optional<std::string> remote_snapshot() {
    kernel::Encoder enc = request(RemoteOp::Snapshot);
    auto reply = exchange(enc.finish());
    if (!reply) return std::nullopt;
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (status && *status == RemoteStatus::Ok) return dec.str();
    } catch (const kernel::KernelError&) {
      std::lock_guard<std::mutex> lock(mu);
      fail("malformed reply from " + addr.display);
    }
    return std::nullopt;
  }

  bool ping() {
    kernel::Encoder enc = request(RemoteOp::Ping);
    return exchange(enc.finish()).has_value();
  }

  RemoteBackendOptions opts;
  RemoteAddress addr;
  RetryPolicy backoff;

  std::mutex mu;  ///< guards fd + degradation state
  int fd = -1;
  int consecutive_failures = 0;
  Clock::time_point degraded_until{};
  std::string last_error;

  /// The safety net: every publish lands here first, lookups fall back
  /// here, and counters bypass it (the contract lives in the atomics
  /// below, not in the fallback's own).
  InProcessBackend fallback;

  std::atomic<std::uint64_t> thm_hits{0};
  std::atomic<std::uint64_t> thm_misses{0};
  std::atomic<std::uint64_t> verd_hits{0};
  std::atomic<std::uint64_t> verd_misses{0};
  std::atomic<std::uint64_t> remote_failures{0};
  std::atomic<std::uint64_t> degraded_ops{0};
};

RemoteBackend::RemoteBackend(RemoteBackendOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {
  // Probe once so a client fronting a dead daemon degrades (and says so)
  // immediately instead of on its first obligation.
  impl_->ping();
}

RemoteBackend::~RemoteBackend() = default;

std::optional<kernel::Thm> RemoteBackend::lookup_theorem(
    const kernel::Term& goal, bool* was_hit) {
  if (auto v = impl_->fallback.theorems().find(goal)) {
    impl_->thm_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (auto v = impl_->remote_lookup_thm(goal)) {
    // Write-back: repeats of this goal stay off the wire, and a daemon
    // death after this point cannot un-serve the obligation.
    impl_->fallback.theorems().emplace(goal, *v);
    impl_->thm_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (was_hit != nullptr) *was_hit = false;
  return std::nullopt;
}

std::pair<kernel::Thm, bool> RemoteBackend::publish_theorem(
    const kernel::Term& goal, kernel::Thm thm) {
  auto [canonical, inserted] =
      impl_->fallback.theorems().emplace(goal, std::move(thm));
  if (inserted) {
    impl_->thm_misses.fetch_add(1, std::memory_order_relaxed);
    impl_->remote_publish_thm(goal, canonical);
  } else {
    impl_->thm_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return {canonical, inserted};
}

std::optional<verify::VerifyResult> RemoteBackend::lookup_verdict(
    const kernel::Term& key, bool* was_hit) {
  if (auto v = impl_->fallback.verdicts().find(key)) {
    impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (auto v = impl_->remote_lookup_verdict(key)) {
    impl_->fallback.verdicts().emplace(key, *v);
    impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (was_hit != nullptr) *was_hit = false;
  return std::nullopt;
}

std::pair<verify::VerifyResult, bool> RemoteBackend::publish_verdict(
    const kernel::Term& key, verify::VerifyResult v, bool cacheable) {
  if (!cacheable) {
    impl_->verd_misses.fetch_add(1, std::memory_order_relaxed);
    return {std::move(v), false};
  }
  auto [canonical, inserted] =
      impl_->fallback.verdicts().emplace(key, std::move(v));
  if (inserted) {
    impl_->verd_misses.fetch_add(1, std::memory_order_relaxed);
    impl_->remote_publish_verdict(key, canonical);
  } else {
    impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return {canonical, inserted};
}

BackendStats RemoteBackend::stats() const {
  BackendStats st = impl_->fallback.stats();
  // The fallback's own counters never move (find/emplace are count-free);
  // its entry counts are real.  The hit/miss contract lives here.
  st.theorems.hits = impl_->thm_hits.load(std::memory_order_relaxed);
  st.theorems.misses = impl_->thm_misses.load(std::memory_order_relaxed);
  st.verdicts.hits = impl_->verd_hits.load(std::memory_order_relaxed);
  st.verdicts.misses = impl_->verd_misses.load(std::memory_order_relaxed);
  st.remote_failures =
      impl_->remote_failures.load(std::memory_order_relaxed);
  st.degraded_ops = impl_->degraded_ops.load(std::memory_order_relaxed);
  return st;
}

CacheLoadResult RemoteBackend::warm_start(const std::string& path) {
  return impl_->fallback.warm_start(path);
}

void RemoteBackend::persist(const std::string& path) const {
  TheoremCache merged_thms;
  VerdictCache merged_verdicts;
  for (auto& [goal, th] : impl_->fallback.theorems().snapshot()) {
    merged_thms.emplace(goal, std::move(th));
  }
  for (auto& [key, v] : impl_->fallback.verdicts().snapshot()) {
    merged_verdicts.emplace(key, std::move(v));
  }
  if (auto blob = impl_->remote_snapshot()) {
    // A skewed/corrupt snapshot is skipped (decode admits zero entries),
    // never fatal: the local half still gets persisted.
    PersistentCacheFile::decode(*blob, merged_thms, merged_verdicts);
  }
  PersistentCacheFile(path).save(merged_thms, merged_verdicts);
}

bool RemoteBackend::healthy() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->fd >= 0 && Clock::now() >= impl_->degraded_until;
}

std::string RemoteBackend::last_error() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->last_error;
}

}  // namespace eda::service
