#include "service/remote_backend.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "kernel/serialize.h"
#include "service/fault.h"
#include "service/guard.h"

namespace eda::service {

namespace {

using Clock = std::chrono::steady_clock;

}  // namespace

struct RemoteBackend::Impl {
  /// One pooled socket.  The mutex serializes exchanges on THIS socket
  /// only; distinct connections carry requests concurrently.
  struct Conn {
    std::mutex mu;
    int fd = -1;
  };

  struct LockedConn {
    Conn* conn = nullptr;
    std::unique_lock<std::mutex> lock;
  };

  explicit Impl(RemoteBackendOptions opts_) : opts(std::move(opts_)) {
    addr = parse_remote_address(opts.server);
    backoff.max_retries = 0;  // unused fields; only the curve matters
    backoff.backoff_ms = opts.backoff_ms;
    backoff.backoff_cap_ms = opts.backoff_cap_ms;
    opts.pool = std::clamp(opts.pool, 1, 64);
    opts.max_proto_version = std::clamp(
        opts.max_proto_version, kRemoteProtoMinVersion, kRemoteProtoVersion);
    conns.reserve(static_cast<std::size_t>(opts.pool));
    for (int i = 0; i < opts.pool; ++i) {
      conns.push_back(std::make_unique<Conn>());
    }
  }

  ~Impl() {
    for (auto& c : conns) {
      if (c->fd >= 0) ::close(c->fd);
    }
  }

  /// Pick a pooled connection: one try_lock sweep from the round-robin
  /// cursor (an idle socket wins immediately), falling back to a blocking
  /// lock on the cursor's choice when every socket is busy.
  LockedConn acquire() {
    std::size_t start =
        next_conn.fetch_add(1, std::memory_order_relaxed) % conns.size();
    for (std::size_t k = 0; k < conns.size(); ++k) {
      Conn& c = *conns[(start + k) % conns.size()];
      std::unique_lock<std::mutex> l(c.mu, std::try_to_lock);
      if (l.owns_lock()) return {&c, std::move(l)};
    }
    Conn& c = *conns[start];
    return {&c, std::unique_lock<std::mutex>(c.mu)};
  }

  /// Version handshake on a freshly connected socket (c.mu held): ping at
  /// v1 — the one request every daemon answers — and read the daemon's
  /// max version out of the reply body (absent = a v1 daemon).  The
  /// negotiated min(client, daemon) gates the batch opcodes.
  bool negotiate(Conn& c) {
    kernel::Encoder enc;
    enc.u32(kRemoteProtoMinVersion);
    enc.u8(static_cast<std::uint8_t>(RemoteOp::Ping));
    enc.str(opts.tenant);
    std::string reply;
    if (!write_frame(c.fd, enc.finish()) ||
        !read_frame(c.fd, reply, kMaxResponseFrame)) {
      return false;
    }
    // Not counted in round_trips: the counter measures cache exchanges
    // (what batching collapses), not per-connection setup.
    std::uint32_t peer = kRemoteProtoMinVersion;
    try {
      kernel::Decoder dec(reply);
      std::uint32_t version = dec.u32();
      std::uint8_t status = dec.u8();
      if (version < kRemoteProtoMinVersion ||
          version > kRemoteProtoVersion ||
          status != static_cast<std::uint8_t>(RemoteStatus::Ok)) {
        return false;
      }
      if (!dec.at_end()) peer = dec.u32();
    } catch (const kernel::KernelError&) {
      return false;  // corrupt handshake: the connection is no good
    }
    peer = std::clamp(peer, kRemoteProtoMinVersion, opts.max_proto_version);
    peer_version.store(static_cast<int>(peer), std::memory_order_relaxed);
    return true;
  }

  /// One request/response exchange on a pooled connection.  Returns the
  /// reply payload, or nullopt when the daemon is unreachable (which
  /// opens/extends the shared degradation window).  Never throws.
  std::optional<std::string> exchange(const std::string& request) {
    {
      std::lock_guard<std::mutex> lock(state_mu);
      if (Clock::now() < degraded_until) {
        degraded_ops.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
      }
    }
    LockedConn lc = acquire();
    Conn& c = *lc.conn;
    if (c.fd < 0) {
      c.fd = connect_remote(addr, opts.connect_timeout_ms,
                            opts.io_timeout_ms);
      if (c.fd < 0) {
        return fail(c, "cannot connect to " + addr.display);
      }
      open_conns.fetch_add(1, std::memory_order_relaxed);
      if (!negotiate(c)) {
        return fail(c, "version handshake with " + addr.display +
                           " failed");
      }
    }
    if (FaultInjector::instance().should_fail(kFaultRemoteStall)) {
      // Wedge mid-frame: the daemon is now holding half a request and
      // this stream is desynchronized — the only sound recovery is to
      // close and reconnect, which is exactly what fail() forces.
      (void)write_frame_wedged(c.fd, request);
      return fail(c, "injected mid-frame stall to " + addr.display);
    }
    std::string reply;
    if (!write_frame(c.fd, request) ||
        !read_frame(c.fd, reply, kMaxResponseFrame)) {
      return fail(c, "request to " + addr.display + " failed mid-flight");
    }
    {
      std::lock_guard<std::mutex> lock(state_mu);
      consecutive_failures = 0;
    }
    round_trips.fetch_add(1, std::memory_order_relaxed);
    return reply;
  }

  /// Open/extend the shared capped-exponential backoff window
  /// (RETRY_LATER semantics — ops inside the window are served locally,
  /// the first one after it probes the daemon again).
  void open_backoff_window(const std::string& what) {
    std::lock_guard<std::mutex> lock(state_mu);
    ++consecutive_failures;
    remote_failures.fetch_add(1, std::memory_order_relaxed);
    double wait = retry_backoff_ms(backoff, consecutive_failures);
    degraded_until =
        Clock::now() +
        std::chrono::microseconds(static_cast<long long>(wait * 1000.0));
    last_error_str = what;
  }

  /// Record a transport failure on `c` (c.mu held): close the socket and
  /// open the shared backoff window.
  std::nullopt_t fail(Conn& c, const std::string& what) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
      open_conns.fetch_sub(1, std::memory_order_relaxed);
    }
    open_backoff_window(what);
    return std::nullopt;
  }

  /// A malformed (but checksum-passing) reply could mean a desynchronized
  /// stream; the conservative recovery is to drop every idle connection
  /// and degrade.  Busy connections fail on their own next use — their
  /// SO_RCVTIMEO bounds the wait.
  void fail_all(const std::string& what) {
    for (auto& cp : conns) {
      std::unique_lock<std::mutex> l(cp->mu, std::try_to_lock);
      if (l.owns_lock() && cp->fd >= 0) {
        ::close(cp->fd);
        cp->fd = -1;
        open_conns.fetch_sub(1, std::memory_order_relaxed);
      }
    }
    open_backoff_window(what);
  }

  /// Per-entry request header.  Always stamped v1: the per-entry bodies
  /// are identical in both versions, so staying at the floor keeps a v2
  /// client wire-compatible with every daemon without re-negotiating.
  kernel::Encoder request(RemoteOp op) const {
    kernel::Encoder enc;
    enc.u32(kRemoteProtoMinVersion);
    enc.u8(static_cast<std::uint8_t>(op));
    enc.str(opts.tenant);
    return enc;
  }

  /// Batch request header (only built once v2 was negotiated).
  kernel::Encoder batch_request(RemoteOp op) const {
    kernel::Encoder enc;
    enc.u32(kRemoteProtoBatchVersion);
    enc.u8(static_cast<std::uint8_t>(op));
    enc.str(opts.tenant);
    return enc;
  }

  bool batch_capable() const {
    return opts.batch &&
           opts.max_proto_version >= kRemoteProtoBatchVersion &&
           peer_version.load(std::memory_order_relaxed) >=
               static_cast<int>(kRemoteProtoBatchVersion);
  }

  /// Validate a reply header; returns the status, or nullopt on
  /// malformation/version skew.  Any version up to ours is fine — a v2
  /// daemon echoes the request's version, a v1 daemon always says 1.
  std::optional<RemoteStatus> reply_status(kernel::Decoder& dec) {
    std::uint32_t version = dec.u32();
    if (version < kRemoteProtoMinVersion ||
        version > kRemoteProtoVersion) {
      return std::nullopt;
    }
    std::uint8_t status = dec.u8();
    if (status > static_cast<std::uint8_t>(RemoteStatus::Error)) {
      return std::nullopt;
    }
    return static_cast<RemoteStatus>(status);
  }

  std::optional<kernel::Thm> remote_lookup_thm(const kernel::Term& goal) {
    kernel::Encoder enc = request(RemoteOp::LookupThm);
    enc.term(goal);
    auto reply = exchange(enc.finish());
    if (!reply) return std::nullopt;
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (status && *status == RemoteStatus::Ok) return dec.thm();
    } catch (const kernel::KernelError&) {
      // Corrupt reply: treat like a dead daemon, never like a miss that
      // could poison accounting.
      fail_all("malformed reply from " + addr.display);
    }
    return std::nullopt;
  }

  std::optional<verify::VerifyResult> remote_lookup_verdict(
      const kernel::Term& key) {
    kernel::Encoder enc = request(RemoteOp::LookupVerdict);
    enc.term(key);
    auto reply = exchange(enc.finish());
    if (!reply) return std::nullopt;
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (status && *status == RemoteStatus::Ok) {
        return decode_verdict(dec);
      }
    } catch (const kernel::KernelError&) {
      fail_all("malformed reply from " + addr.display);
    }
    return std::nullopt;
  }

  void remote_publish_thm(const kernel::Term& goal,
                          const kernel::Thm& th) {
    kernel::Encoder enc = request(RemoteOp::PublishThm);
    enc.term(goal);
    enc.thm(th);
    (void)exchange(enc.finish());  // best-effort; the fallback has it
  }

  void remote_publish_verdict(const kernel::Term& key,
                              const verify::VerifyResult& v) {
    kernel::Encoder enc = request(RemoteOp::PublishVerdict);
    enc.term(key);
    encode_verdict(enc, v);
    (void)exchange(enc.finish());
  }

  /// One LookupBatch frame for `keys` (verdict section only).  Returns
  /// nullopt when batching cannot be used at all (v1 peer, batching off,
  /// daemon refused the opcode) — the caller then goes per-entry.  A
  /// transport failure mid-batch returns all-absent: the failure already
  /// counted and opened the backoff window, so retrying each entry
  /// individually would only multiply degraded ops.
  std::optional<std::vector<std::optional<verify::VerifyResult>>>
  remote_lookup_verdict_batch(const std::vector<kernel::Term>& keys) {
    if (!batch_capable()) return std::nullopt;
    kernel::Encoder enc = batch_request(RemoteOp::LookupBatch);
    enc.u32(0);  // no theorem entries on this path
    enc.u32(static_cast<std::uint32_t>(keys.size()));
    for (const kernel::Term& key : keys) enc.term(key);
    std::vector<std::optional<verify::VerifyResult>> out(keys.size());
    auto reply = exchange(enc.finish());
    if (!reply) return out;
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (!status) {
        throw kernel::SerializeError("bad batch reply header");
      }
      if (*status != RemoteStatus::Ok) {
        // A daemon that downgraded underneath us refuses the opcode;
        // fall back to per-entry traffic from here on.
        return std::nullopt;
      }
      if (dec.u32() != 0) {
        throw kernel::SerializeError("unexpected theorem section");
      }
      std::uint32_t nv = dec.u32();
      if (nv != keys.size()) {
        throw kernel::SerializeError("batch reply entry-count mismatch");
      }
      for (std::uint32_t i = 0; i < nv; ++i) {
        if (dec.u8() != 0) out[i] = decode_verdict(dec);
      }
      return out;
    } catch (const kernel::KernelError&) {
      fail_all("malformed batch reply from " + addr.display);
      out.assign(keys.size(), std::nullopt);
      return out;
    }
  }

  /// One PublishBatch frame (verdict section only; best-effort like every
  /// remote publish).  Returns false when batching cannot be used — the
  /// caller then publishes per-entry.
  bool remote_publish_verdict_batch(
      const std::vector<std::pair<kernel::Term, verify::VerifyResult>>&
          entries) {
    if (!batch_capable()) return false;
    kernel::Encoder enc = batch_request(RemoteOp::PublishBatch);
    enc.u32(0);  // no theorem entries on this path
    enc.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& [key, v] : entries) {
      enc.term(key);
      encode_verdict(enc, v);
    }
    auto reply = exchange(enc.finish());
    if (!reply) return true;  // attempted; failure already accounted
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (!status) {
        throw kernel::SerializeError("bad batch reply header");
      }
      if (*status != RemoteStatus::Ok) return false;  // daemon downgraded
      // Per-entry inserted bits: protocol-validated even though the
      // client's accounting is local-first (the daemon's insert/race
      // outcome never changes what THIS process proved).
      if (dec.u32() != 0) {
        throw kernel::SerializeError("unexpected theorem section");
      }
      std::uint32_t nv = dec.u32();
      if (nv != entries.size()) {
        throw kernel::SerializeError("batch reply entry-count mismatch");
      }
      for (std::uint32_t i = 0; i < nv; ++i) (void)dec.u8();
    } catch (const kernel::KernelError&) {
      fail_all("malformed batch reply from " + addr.display);
    }
    return true;
  }

  std::optional<std::string> remote_snapshot() {
    kernel::Encoder enc = request(RemoteOp::Snapshot);
    auto reply = exchange(enc.finish());
    if (!reply) return std::nullopt;
    try {
      kernel::Decoder dec(*reply);
      auto status = reply_status(dec);
      if (status && *status == RemoteStatus::Ok) return dec.str();
    } catch (const kernel::KernelError&) {
      fail_all("malformed reply from " + addr.display);
    }
    return std::nullopt;
  }

  bool ping() {
    kernel::Encoder enc = request(RemoteOp::Ping);
    return exchange(enc.finish()).has_value();
  }

  RemoteBackendOptions opts;
  RemoteAddress addr;
  RetryPolicy backoff;

  std::vector<std::unique_ptr<Conn>> conns;
  std::atomic<std::size_t> next_conn{0};
  std::atomic<int> open_conns{0};
  /// min(client, daemon) from the Ping handshake; 0 before any handshake.
  std::atomic<int> peer_version{0};

  std::mutex state_mu;  ///< guards the shared degradation state
  int consecutive_failures = 0;
  Clock::time_point degraded_until{};
  std::string last_error_str;

  /// The safety net: every publish lands here first, lookups fall back
  /// here, and counters bypass it (the contract lives in the atomics
  /// below, not in the fallback's own).
  InProcessBackend fallback;

  std::atomic<std::uint64_t> thm_hits{0};
  std::atomic<std::uint64_t> thm_misses{0};
  std::atomic<std::uint64_t> verd_hits{0};
  std::atomic<std::uint64_t> verd_misses{0};
  std::atomic<std::uint64_t> remote_failures{0};
  std::atomic<std::uint64_t> degraded_ops{0};
  std::atomic<std::uint64_t> round_trips{0};
};

RemoteBackend::RemoteBackend(RemoteBackendOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {
  // Probe once so a client fronting a dead daemon degrades (and says so)
  // immediately instead of on its first obligation.  On a live daemon the
  // probe doubles as the version handshake.
  impl_->ping();
}

RemoteBackend::~RemoteBackend() = default;

std::optional<kernel::Thm> RemoteBackend::lookup_theorem(
    const kernel::Term& goal, bool* was_hit) {
  if (auto v = impl_->fallback.theorems().find(goal)) {
    impl_->thm_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (auto v = impl_->remote_lookup_thm(goal)) {
    // Write-back: repeats of this goal stay off the wire, and a daemon
    // death after this point cannot un-serve the obligation.
    impl_->fallback.theorems().emplace(goal, *v);
    impl_->thm_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (was_hit != nullptr) *was_hit = false;
  return std::nullopt;
}

std::pair<kernel::Thm, bool> RemoteBackend::publish_theorem(
    const kernel::Term& goal, kernel::Thm thm) {
  auto [canonical, inserted] =
      impl_->fallback.theorems().emplace(goal, std::move(thm));
  if (inserted) {
    impl_->thm_misses.fetch_add(1, std::memory_order_relaxed);
    impl_->remote_publish_thm(goal, canonical);
  } else {
    impl_->thm_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return {canonical, inserted};
}

std::optional<verify::VerifyResult> RemoteBackend::lookup_verdict(
    const kernel::Term& key, bool* was_hit) {
  if (auto v = impl_->fallback.verdicts().find(key)) {
    impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (auto v = impl_->remote_lookup_verdict(key)) {
    impl_->fallback.verdicts().emplace(key, *v);
    impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
    if (was_hit != nullptr) *was_hit = true;
    return v;
  }
  if (was_hit != nullptr) *was_hit = false;
  return std::nullopt;
}

std::pair<verify::VerifyResult, bool> RemoteBackend::publish_verdict(
    const kernel::Term& key, verify::VerifyResult v, bool cacheable) {
  if (!cacheable) {
    impl_->verd_misses.fetch_add(1, std::memory_order_relaxed);
    return {std::move(v), false};
  }
  auto [canonical, inserted] =
      impl_->fallback.verdicts().emplace(key, std::move(v));
  if (inserted) {
    impl_->verd_misses.fetch_add(1, std::memory_order_relaxed);
    impl_->remote_publish_verdict(key, canonical);
  } else {
    impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return {canonical, inserted};
}

std::vector<std::optional<verify::VerifyResult>>
RemoteBackend::lookup_verdicts(const std::vector<kernel::Term>& keys,
                               std::vector<std::uint8_t>* was_hit) {
  std::vector<std::optional<verify::VerifyResult>> out(keys.size());
  if (was_hit != nullptr) was_hit->assign(keys.size(), 0);
  // Local fallback first, per entry — identical to the single lookup's
  // first tier, and what keeps repeats off the wire entirely.
  std::vector<std::size_t> miss_idx;
  std::vector<kernel::Term> miss_keys;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (auto v = impl_->fallback.verdicts().find(keys[i])) {
      impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
      out[i] = *v;
      if (was_hit != nullptr) (*was_hit)[i] = 1;
    } else {
      miss_idx.push_back(i);
      miss_keys.push_back(keys[i]);
    }
  }
  if (miss_idx.empty()) return out;
  auto settle = [&](std::size_t j, const verify::VerifyResult& v) {
    std::size_t i = miss_idx[j];
    impl_->fallback.verdicts().emplace(keys[i], v);
    impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
    out[i] = v;
    if (was_hit != nullptr) (*was_hit)[i] = 1;
  };
  if (auto batch = impl_->remote_lookup_verdict_batch(miss_keys)) {
    for (std::size_t j = 0; j < miss_keys.size(); ++j) {
      if ((*batch)[j]) settle(j, *(*batch)[j]);
    }
    return out;
  }
  // v1 daemon or batching disabled: per-entry remote lookups.
  for (std::size_t j = 0; j < miss_keys.size(); ++j) {
    if (auto v = impl_->remote_lookup_verdict(miss_keys[j])) settle(j, *v);
  }
  return out;
}

std::vector<std::pair<verify::VerifyResult, bool>>
RemoteBackend::publish_verdicts(std::vector<VerdictPublish> entries) {
  std::vector<std::pair<verify::VerifyResult, bool>> out;
  out.reserve(entries.size());
  // Local-first per entry (the process keeps its proof no matter what the
  // socket does), collecting the fresh inserts for one remote frame.
  std::vector<std::pair<kernel::Term, verify::VerifyResult>> fresh;
  for (VerdictPublish& e : entries) {
    if (!e.cacheable) {
      impl_->verd_misses.fetch_add(1, std::memory_order_relaxed);
      out.emplace_back(std::move(e.value), false);
      continue;
    }
    auto [canonical, inserted] =
        impl_->fallback.verdicts().emplace(e.key, std::move(e.value));
    if (inserted) {
      impl_->verd_misses.fetch_add(1, std::memory_order_relaxed);
      fresh.emplace_back(e.key, canonical);
    } else {
      impl_->verd_hits.fetch_add(1, std::memory_order_relaxed);
    }
    out.emplace_back(std::move(canonical), inserted);
  }
  if (!fresh.empty() && !impl_->remote_publish_verdict_batch(fresh)) {
    for (const auto& [key, v] : fresh) {
      impl_->remote_publish_verdict(key, v);
    }
  }
  return out;
}

BackendStats RemoteBackend::stats() const {
  BackendStats st = impl_->fallback.stats();
  // The fallback's own counters never move (find/emplace are count-free);
  // its entry counts are real.  The hit/miss contract lives here.
  st.theorems.hits = impl_->thm_hits.load(std::memory_order_relaxed);
  st.theorems.misses = impl_->thm_misses.load(std::memory_order_relaxed);
  st.verdicts.hits = impl_->verd_hits.load(std::memory_order_relaxed);
  st.verdicts.misses = impl_->verd_misses.load(std::memory_order_relaxed);
  st.remote_failures =
      impl_->remote_failures.load(std::memory_order_relaxed);
  st.degraded_ops = impl_->degraded_ops.load(std::memory_order_relaxed);
  st.remote_round_trips =
      impl_->round_trips.load(std::memory_order_relaxed);
  return st;
}

CacheLoadResult RemoteBackend::warm_start(const std::string& path) {
  return impl_->fallback.warm_start(path);
}

void RemoteBackend::persist(const std::string& path) const {
  TheoremCache merged_thms;
  VerdictCache merged_verdicts;
  for (auto& [goal, th] : impl_->fallback.theorems().snapshot()) {
    merged_thms.emplace(goal, std::move(th));
  }
  for (auto& [key, v] : impl_->fallback.verdicts().snapshot()) {
    merged_verdicts.emplace(key, std::move(v));
  }
  if (auto blob = impl_->remote_snapshot()) {
    // A skewed/corrupt snapshot is skipped (decode admits zero entries),
    // never fatal: the local half still gets persisted.
    PersistentCacheFile::decode(*blob, merged_thms, merged_verdicts);
  }
  PersistentCacheFile(path).save(merged_thms, merged_verdicts);
}

bool RemoteBackend::healthy() const {
  if (impl_->open_conns.load(std::memory_order_relaxed) <= 0) return false;
  std::lock_guard<std::mutex> lock(impl_->state_mu);
  return Clock::now() >= impl_->degraded_until;
}

std::string RemoteBackend::last_error() const {
  std::lock_guard<std::mutex> lock(impl_->state_mu);
  return impl_->last_error_str;
}

int RemoteBackend::negotiated_version() const {
  return impl_->peer_version.load(std::memory_order_relaxed);
}

}  // namespace eda::service
