#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kernel/error.h"
#include "kernel/goal_cache.h"
#include "service/cache_backend.h"
#include "service/cache_file.h"
#include "service/guard.h"
#include "verify/parallel_verify.h"

namespace eda::service {

class ServiceError : public kernel::KernelError {
 public:
  explicit ServiceError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// How a job's obligation is discharged.  `Hash` is the paper's own answer
/// (the synthesis step *is* the proof: the retiming theorem comes out of
/// the kernel and nothing further is checked); `Match` is the structural
/// retiming matcher of reference [8]; the remaining four are the post-hoc
/// model-checking engines of the tables.
enum class Method { Hash, Match, Eijk, EijkPlus, Smv, Sis };

const char* method_name(Method method);
std::optional<Method> parse_method(const std::string& name);

/// One verification job.  `circuit` picks the obligation:
///
///   fig2:N          figure-2 circuit at bitwidth N, the paper's cut
///   fig2deep:N:S    deep-pipeline variant, S incrementer stages, full cut
///   mult:N          serial fractional multiplier, maximal forward cut
///   ctrl:S:T        controller with S state bits / T timer bits
///   pipe:W:D        pipelined ALU, width W, depth D
///   iwls:NAME       a named iwls_benchmarks() entry (e.g. iwls:s344)
///   blif:A,B        two gate-level BLIF files checked against each other
///                   (engine methods only — there is no RTL to retime)
///
/// RTL-sourced jobs perform the formal HASH retiming step (theorem-cached
/// across the whole service) and then discharge the obligation with
/// `method`; `blif:` jobs go straight to the engine, with the verdict
/// keyed on the pair's structural netlist hashes (io/blif.h) so repeated
/// — or warm-started — submissions of the same files hit the cache.
struct JobSpec {
  std::string name;        ///< label in results; defaulted when empty
  std::string circuit;     ///< circuit spec, grammar above
  Method method = Method::Hash;
  double timeout_sec = 5.0;
  std::uint32_t seed = 1;  ///< Match co-simulation seed
  /// Admission scheduling (service/admission.h): higher priority runs
  /// first, FIFO within a priority level.
  int priority = 0;
  /// Wall-clock deadline from submission (0 = none).  A job still queued
  /// past its deadline is skipped with a DEADLINE_EXPIRED verdict; a job
  /// dispatched near it has its engine budget capped to what remains.
  double deadline_ms = 0.0;
  /// Per-job retry budget for classified retryable failures; -1 uses
  /// ServiceOptions::retry.max_retries.
  int max_retries = -1;
  /// Submitting tenant: drives admission fairness (weighted round-robin
  /// across tenants within a priority level) and labels remote-cache
  /// requests.  Empty uses CachePolicy::tenant.
  std::string tenant;
};

struct JobResult {
  std::string name;
  std::string circuit;
  std::string tenant;  ///< echoed from the spec (admission fairness audit)
  Method method = Method::Hash;
  bool ok = false;           ///< ran to completion without error
  std::string error;         ///< diagnostic when !ok
  bool completed = false;    ///< engine finished within resource bounds
  bool equivalent = false;   ///< verdict (valid only when completed)
  int ff = 0;                ///< flip-flops of the bit-blasted obligation
  int gates = 0;
  double synth_sec = 0.0;    ///< formal HASH step (tiny on a theorem hit)
  double verify_sec = 0.0;   ///< method/engine time
  double total_sec = 0.0;
  bool theorem_cache_hit = false;
  bool result_cache_hit = false;
  /// Cone accounting, populated only on the incremental blif-pair path
  /// (ServiceOptions::incremental): the job was decomposed into `cones`
  /// per-output obligations, of which `cone_hits` resolved from the shared
  /// verdict cache and `cones_reproved` actually ran.  On a NONEQUIV
  /// verdict, `counterexample` names the first differing primary output.
  std::size_t cones = 0;
  std::size_t cone_hits = 0;
  std::size_t cones_reproved = 0;
  std::string counterexample;
  /// Simulation pre-filter accounting (sim/bitsim.h), on every engine
  /// path: `sim_refuted` counts obligations the pre-filter settled NONEQUIV
  /// before any BDD was built (0 or 1 for whole-netlist jobs, a cone count
  /// on the incremental path); `sim_vectors` totals the random stimulus
  /// spent, including on pairs that passed through to an engine.
  std::size_t sim_refuted = 0;
  std::uint64_t sim_vectors = 0;
  /// Classified verdict (service/guard.h): EQUIV/NONEQUIV for completed
  /// answers, a failure class (TIMEOUT, RESOURCE_EXHAUSTED,
  /// INTERNAL_ERROR, DEADLINE_EXPIRED, INVALID_REQUEST, ...) otherwise.
  VerdictClass verdict = VerdictClass::Unknown;
  /// Guarded-engine retry accounting: attempts actually made (0 when no
  /// guarded engine ran — cache hits, hash/match jobs) and the total
  /// backoff slept between them.
  int attempts = 0;
  double backoff_ms = 0.0;
};

struct ServiceStats {
  std::size_t jobs = 0;
  std::size_t failed = 0;
  kernel::GoalCacheStats theorems;  ///< shared retiming-theorem cache
  kernel::GoalCacheStats results;   ///< shared engine-verdict cache
  double wall_sec = 0.0;            ///< batch wall time (submit to drain)
  double cpu_sec = 0.0;             ///< process CPU over the same window
  std::string backend;              ///< CacheBackend::name() in use
  /// Remote-tier health (zero for in-process/file backends): transport
  /// failures seen and cache ops served locally during backoff windows.
  std::uint64_t remote_failures = 0;
  std::uint64_t degraded_ops = 0;
  /// Successful remote exchanges — the batched incremental path's budget
  /// is <= 2 of these per job (one LookupBatch + one PublishBatch).
  std::uint64_t remote_round_trips = 0;
};

/// Where the shared theorem/verdict caches live and how jobs reach them.
/// The service builds exactly one CacheBackend from this group:
///
///   server non-empty  -> RemoteBackend against an eda_cached daemon at
///                        `server` ("unix:/path" or "host:port"), wrapped
///                        around an in-process fallback so a dead daemon
///                        degrades instead of failing;
///   file non-empty    -> FileBackend bound to `file` (PR 8 merge-on-save
///                        semantics on every persist);
///   otherwise         -> InProcessBackend (today's behaviour).
struct CachePolicy {
  /// Share the caches across jobs.  Off = every job proves its own
  /// obligations (the serial-loop baseline bench_service measures
  /// against); off also disables the backend selection above.
  bool share = true;
  std::string file;   ///< bound cache file (FileBackend), "" = none
  CacheFileOptions file_options;
  std::string server; ///< eda_cached address (RemoteBackend), "" = none
  std::string tenant = "default";  ///< label on every remote request
  int remote_connect_timeout_ms = 1000;
  int remote_io_timeout_ms = 5000;
  /// Degradation backoff after a remote transport failure (capped
  /// exponential; see service/remote_backend.h).
  double remote_backoff_ms = 25.0;
  double remote_backoff_cap_ms = 2000.0;
  /// Remote connection pool size (--cache-pool): up to this many
  /// exchanges pipeline on distinct sockets.  1 = PR 9 single-socket
  /// semantics.
  int remote_pool = 4;
  /// Use the v2 LookupBatch/PublishBatch frames when the daemon speaks
  /// v2 (--no-cache-batch turns this off; v1 daemons force it off via
  /// version negotiation).
  bool remote_batch = true;
};

/// Bit-parallel simulation pre-filter (sim/bitsim.h): before an engine
/// builds any BDDs, drive both sides with `vectors` shared random vectors
/// (`frames` cycles each, flops starting at X) and settle the obligation
/// NONEQUIV — with a concrete counterexample — on any lane mismatch.
/// Sound against every engine's init semantics (the X init makes a
/// refutation hold from all initial register states), so the verdict is
/// cached under the same key an engine verdict would be.
struct SimPolicy {
  bool enabled = true;
  int vectors = 256;
  int frames = 4;
  std::uint64_t seed = 0x5eedf17e;
};

/// Admission-front defaults the service front (tools/eda_service.cpp)
/// maps onto service/admission.h: queue capacity and the per-tenant
/// weighted-round-robin shares used within each priority level.
struct QueuePolicy {
  std::size_t depth = 256;
  /// tenant -> WRR weight (dispatches per round); absent tenants get 1.
  std::map<std::string, unsigned> tenant_weights;
};

struct ServiceOptions {
  /// Concurrent job streams (pool worker threads); 0 = hardware default.
  unsigned jobs = 0;
  /// Cache placement/sharing (the CacheBackend seam).  NOTE: deliberately
  /// the second member and NOT a bool, so pre-regroup positional inits
  /// like `{1, true}` fail to compile instead of silently changing
  /// meaning.
  CachePolicy cache;
  SimPolicy sim;
  /// Retry policy for classified retryable engine failures (TIMEOUT,
  /// RESOURCE_EXHAUSTED, INTERNAL_ERROR — see service/guard.h): up to
  /// `retry.max_retries` extra attempts per obligation, budgets escalating
  /// by `retry.escalation` per attempt, capped exponential backoff between
  /// them.  `retry.really_sleep = false` (tests) accounts the backoff
  /// without sleeping it.
  RetryPolicy retry;
  QueuePolicy queue;
  /// Cone-partitioned incremental verification for blif-pair jobs: each
  /// pair decomposes into one obligation per primary output
  /// (verify/cone.h), unchanged cones resolve from the persistent verdict
  /// cache keyed on (cone_hash_a, cone_hash_b, engine, bounds), only
  /// changed cones run an engine, and the per-cone verdicts are stitched
  /// back into the whole-design verdict.  Pairs whose output counts differ
  /// fall back to the whole-netlist path.  RTL jobs are unaffected.
  bool incremental = false;
  /// Run the incremental path's engine tail on the batched BDD kernel
  /// (verify/batch_bdd.h): one shared node pool and a lock-step apply loop
  /// across all surviving cones, instead of one BddManager per cone.
  bool batch_bdd = true;
};

/// A long-running multi-circuit verification service: jobs are submitted as
/// a stream, scheduled on a work-stealing pool, and share one
/// alpha-hash-keyed goal cache, so identical obligations across circuits
/// are proved once (kernel/goal_cache.h).  Results come back in submit
/// order with per-job status and cache provenance; `stats()` aggregates
/// cache hit rates and wall/CPU time for the service lifetime.
///
/// Threading model: per-job state (BddManager, explicit state tables) is
/// confined to the executing thread as in verify/parallel_verify.h; the
/// cross-job sharing happens in the kernel (interner, memo tables) and in
/// the service's goal caches, both concurrency-safe.
class VerifyService {
 public:
  explicit VerifyService(ServiceOptions opts = {});
  ~VerifyService();

  VerifyService(const VerifyService&) = delete;
  VerifyService& operator=(const VerifyService&) = delete;

  /// Enqueue a job on the pool; returns its index in the next drain().
  std::size_t submit(JobSpec spec);

  /// Wait for every in-flight job and return their results in submit
  /// order.  The stream restarts empty afterwards (stats accumulate).
  std::vector<JobResult> drain();

  /// submit() everything, then drain() — the batch entry point.
  std::vector<JobResult> run_batch(const std::vector<JobSpec>& specs);

  /// Run one job inline on the calling thread against the same caches
  /// (the serial path; also what pool workers execute).
  JobResult run_one(const JobSpec& spec);

  /// The admission front's entry points (service/admission.h), splitting
  /// run_one's accounting: run_scheduled executes a job and counts it in
  /// the job/failure totals but NOT in the wall/CPU window (the front owns
  /// the batch window and reports it via record_window); record_skipped
  /// accounts a job the front never dispatched (deadline expiry).
  JobResult run_scheduled(const JobSpec& spec);
  void record_window(double wall_sec, double cpu_sec);
  void record_skipped(const JobResult& r);

  /// Warm start: merge a previously saved cache file into the shared
  /// caches (entries proved in this process win on conflict).  The proof
  /// obligations are pure goal terms, so a theorem proved by ANY earlier
  /// run is valid forever — this is what turns the single-run cache
  /// amortisation into a cross-restart one.  Missing, corrupt, truncated
  /// or version-skewed files are reported in the result's note and leave
  /// the caches untouched; they never throw (see service/cache_file.h).
  CacheLoadResult load_cache(const std::string& path);

  /// Snapshot the shared caches to `path` (atomic write-to-temp-then-
  /// rename; safe against concurrent jobs still publishing).  Throws
  /// CacheFileError on I/O failure.
  void save_cache(const std::string& path) const;

  ServiceStats stats() const;

  /// The cache seam the service is running against (in-process, file or
  /// remote — see CachePolicy).  Exposed for conformance tests and the
  /// service front's health diagnostics.
  CacheBackend& cache_backend();
  const CacheBackend& cache_backend() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eda::service
