#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/verify_service.h"

namespace eda::service {

/// Tunables for the admission front.
struct AdmissionOptions {
  /// Queued (not yet dispatched) jobs beyond this are rejected with
  /// RETRY_LATER — the service sheds load at the door instead of growing
  /// an unbounded backlog it can never work off.
  std::size_t max_depth = 256;
  /// Dispatch streams (worker threads); 0 = hardware default.  Each
  /// stream runs one job at a time; the job itself still fans its cone
  /// obligations over the service's pool.
  unsigned streams = 0;
  /// Start with dispatch paused; resume() releases it.  Tests use this to
  /// stage a queue deterministically (ordering, backpressure, deadline
  /// expiry) before any job runs.
  bool start_paused = false;
  /// Tenant fairness within each priority level: dispatch cycles tenants
  /// in weighted round-robin, each tenant taking `weight` consecutive
  /// dispatches per round (absent tenants weigh 1, FIFO within a tenant).
  /// One tenant flooding the queue can therefore delay — never starve —
  /// the others at its priority.  With a single tenant the schedule is
  /// exactly the old per-level FIFO.
  std::map<std::string, unsigned> tenant_weights;
};

/// try_submit's answer: admitted with a ticket, or rejected with
/// backpressure.
struct Admission {
  bool accepted = false;
  std::size_t ticket = 0;      ///< index of this job in the next drain()
  std::size_t queue_depth = 0; ///< queued jobs at the decision point
  std::string reason;          ///< "RETRY_LATER: ..." when rejected
};

/// Bounded admission queue in front of a VerifyService: jobs carry a
/// priority, a tenant and an optional deadline, dispatch order is
/// highest-priority-first with weighted round-robin across tenants (FIFO
/// within a tenant) inside each priority level, and a full queue rejects
/// new work with a structured RETRY_LATER carrying the current depth as a
/// client backoff hint.
///
/// Deadlines are enforced at both ends of the queue: a job still queued
/// when its deadline passes is skipped with a DEADLINE_EXPIRED verdict
/// (it never reaches an engine), and a job dispatched close to its
/// deadline has its engine budget capped to the time remaining, so a
/// late-running proof cannot blow through the deadline it was admitted
/// under.
///
/// The front owns the batch timing window (first admission to drain) and
/// reports it to the service via record_window, so ServiceStats read the
/// same as they do for direct submit()/drain() use.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(VerifyService& svc, AdmissionOptions opts = {});
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admit a job, or reject it with backpressure.  Never blocks.
  Admission try_submit(JobSpec spec);

  /// Release dispatch if paused, wait for every admitted job, and return
  /// their results in ticket order.  The queue restarts empty afterwards.
  std::vector<JobResult> drain();

  /// Jobs admitted but not yet dispatched.
  std::size_t depth() const;

  /// Release a start_paused queue.
  void resume();

  /// Tickets in the order they were dispatched (tests assert the
  /// priority/FIFO schedule on a paused, pre-loaded queue).
  std::vector<std::size_t> dispatch_order() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eda::service
