#include "service/sweep.h"

#include "service/spec_util.h"

namespace eda::service {

namespace {

std::vector<std::string> split_list(const std::string& s, char sep) {
  return detail::split(s, sep, /*keep_empty=*/false);
}

int sweep_int(const std::string& field) {
  return detail::parse_positive_int("sweep spec", field);
}

}  // namespace

std::vector<JobSpec> make_sweep(const SweepGrid& grid) {
  std::vector<JobSpec> specs;
  for (int w : grid.widths) {
    for (int d : grid.depths) {
      std::string circuit =
          d <= 1 ? "fig2:" + std::to_string(w)
                 : "fig2deep:" + std::to_string(w) + ":" + std::to_string(d);
      for (Method m : grid.methods) {
        for (int copy = 0; copy < grid.copies; ++copy) {
          JobSpec spec;
          spec.circuit = circuit;
          spec.method = m;
          spec.timeout_sec = grid.timeout_sec;
          spec.name = circuit + "/" + method_name(m) + "#" +
                      std::to_string(copy);
          specs.push_back(std::move(spec));
        }
      }
    }
  }
  return specs;
}

SweepGrid parse_sweep_spec(const std::string& spec) {
  SweepGrid grid;
  for (const std::string& field : split_list(spec, ';')) {
    std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw ServiceError("sweep spec: expected key=value, got '" + field +
                         "'");
    }
    std::string key = field.substr(0, eq);
    std::vector<std::string> values = split_list(field.substr(eq + 1), ',');
    if (values.empty()) {
      throw ServiceError("sweep spec: empty value for '" + key + "'");
    }
    if (key == "widths") {
      grid.widths.clear();
      for (const std::string& v : values) grid.widths.push_back(sweep_int(v));
    } else if (key == "depths") {
      grid.depths.clear();
      for (const std::string& v : values) grid.depths.push_back(sweep_int(v));
    } else if (key == "methods") {
      grid.methods.clear();
      for (const std::string& v : values) {
        std::optional<Method> m = parse_method(v);
        if (!m) throw ServiceError("sweep spec: unknown method '" + v + "'");
        grid.methods.push_back(*m);
      }
    } else if (key == "copies") {
      if (values.size() != 1) {
        throw ServiceError("sweep spec: copies takes one value");
      }
      grid.copies = sweep_int(values[0]);
    } else if (key == "timeout") {
      if (values.size() != 1) {
        throw ServiceError("sweep spec: timeout takes one value");
      }
      grid.timeout_sec =
          detail::parse_positive_double("sweep spec: timeout", values[0]);
    } else {
      throw ServiceError("sweep spec: unknown key '" + key + "'");
    }
  }
  return grid;
}

}  // namespace eda::service
