#include "service/remote_proto.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace eda::service {

namespace {

/// Apply per-call send/receive timeouts so one wedged peer cannot hang a
/// client thread (the client classifies the resulting EAGAIN as a
/// transport failure and degrades).
void set_io_timeouts(int fd, int io_timeout_ms) {
  if (io_timeout_ms <= 0) return;
  struct timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = (io_timeout_ms % 1000) * 1000;
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    // MSG_NOSIGNAL: a daemon death mid-write must surface as EPIPE, not
    // kill the client process with SIGPIPE.
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    ssize_t n = ::recv(fd, data + off, len - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer closed
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

RemoteAddress parse_remote_address(const std::string& spec) {
  RemoteAddress a;
  if (spec.empty()) throw RemoteCacheError("remote address: empty spec");
  if (spec.rfind("unix:", 0) == 0 || spec.find('/') != std::string::npos) {
    a.is_unix = true;
    a.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
    if (a.path.empty()) {
      throw RemoteCacheError("remote address '" + spec +
                             "': empty unix socket path");
    }
    // sockaddr_un.sun_path is a fixed ~108-byte array.
    if (a.path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw RemoteCacheError("remote address '" + spec +
                             "': unix socket path too long");
    }
    a.display = "unix:" + a.path;
    return a;
  }
  std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    throw RemoteCacheError("remote address '" + spec +
                           "': expected unix:PATH or HOST:PORT");
  }
  a.host = spec.substr(0, colon);
  std::string port_s = spec.substr(colon + 1);
  std::size_t used = 0;
  int port = 0;
  try {
    port = std::stoi(port_s, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != port_s.size() || port < 0 || port > 65535) {
    throw RemoteCacheError("remote address '" + spec + "': bad port '" +
                           port_s + "'");
  }
  a.port = port;
  a.display = a.host + ":" + std::to_string(port);
  return a;
}

bool write_frame(int fd, const std::string& payload) {
  if (payload.size() > 0xffffffffULL) return false;
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char hdr[4] = {static_cast<char>(len & 0xff),
                 static_cast<char>((len >> 8) & 0xff),
                 static_cast<char>((len >> 16) & 0xff),
                 static_cast<char>((len >> 24) & 0xff)};
  return write_all(fd, hdr, 4) &&
         write_all(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload, std::size_t max_bytes) {
  unsigned char hdr[4];
  if (!read_all(fd, reinterpret_cast<char*>(hdr), 4)) return false;
  std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                      (static_cast<std::uint32_t>(hdr[1]) << 8) |
                      (static_cast<std::uint32_t>(hdr[2]) << 16) |
                      (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len > max_bytes) return false;
  payload.resize(len);
  return len == 0 || read_all(fd, payload.data(), len);
}

bool write_frame_wedged(int fd, const std::string& payload) {
  if (payload.size() > 0xffffffffULL) return false;
  std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  char hdr[4] = {static_cast<char>(len & 0xff),
                 static_cast<char>((len >> 8) & 0xff),
                 static_cast<char>((len >> 16) & 0xff),
                 static_cast<char>((len >> 24) & 0xff)};
  // Half the bytes the header promised: the peer blocks on the remainder
  // until the connection is closed under it.
  return write_all(fd, hdr, 4) &&
         write_all(fd, payload.data(), payload.size() / 2);
}

int connect_remote(const RemoteAddress& addr, int connect_timeout_ms,
                   int io_timeout_ms) {
  int fd = -1;
  if (addr.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    // Unix connects do not block on a live listener; apply the timeouts
    // and connect directly.
    set_io_timeouts(fd, io_timeout_ms);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  std::string host = addr.host == "localhost" ? "127.0.0.1" : addr.host;
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  // Non-blocking connect with a poll() deadline, then back to blocking
  // I/O with per-call timeouts.
  int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa);
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd{fd, POLLOUT, 0};
    if (::poll(&pfd, 1, connect_timeout_ms <= 0 ? 1000
                                                : connect_timeout_ms) <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      ::close(fd);
      return -1;
    }
  } else if (rc != 0) {
    ::close(fd);
    return -1;
  }
  (void)::fcntl(fd, F_SETFL, flags);
  set_io_timeouts(fd, io_timeout_ms);
  return fd;
}

int listen_remote(const RemoteAddress& addr, int backlog, int* bound_port) {
  if (addr.is_unix) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw RemoteCacheError(std::string("socket: ") +
                             std::strerror(errno));
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    // A socket file left by an uncleanly-dead daemon blocks bind with
    // EADDRINUSE even though nobody is listening.  Probe-connect to tell
    // the two cases apart: a live listener accepts (the path is genuinely
    // taken — refuse rather than steal it), a dead file refuses (safe to
    // unlink and rebind).
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      bool live =
          ::connect(probe, reinterpret_cast<sockaddr*>(&sa), sizeof sa) == 0;
      ::close(probe);
      if (live) {
        ::close(fd);
        throw RemoteCacheError("cannot listen on " + addr.display +
                               ": a live daemon already owns this socket");
      }
      ::unlink(addr.path.c_str());
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
        ::listen(fd, backlog) != 0) {
      int err = errno;
      ::close(fd);
      throw RemoteCacheError("cannot listen on " + addr.display + ": " +
                             std::strerror(err));
    }
    if (bound_port != nullptr) *bound_port = 0;
    return fd;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw RemoteCacheError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  std::string host = addr.host == "localhost" ? "127.0.0.1" : addr.host;
  if (::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw RemoteCacheError("cannot resolve host '" + addr.host +
                           "' (numeric IPv4 or localhost only)");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
      ::listen(fd, backlog) != 0) {
    int err = errno;
    ::close(fd);
    throw RemoteCacheError("cannot listen on " + addr.display + ": " +
                           std::strerror(err));
  }
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof got;
    *bound_port = ::getsockname(fd, reinterpret_cast<sockaddr*>(&got),
                                &len) == 0
                      ? ntohs(got.sin_port)
                      : addr.port;
  }
  return fd;
}

}  // namespace eda::service
