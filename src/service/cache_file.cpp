#include "service/cache_file.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "kernel/serialize.h"
#include "service/fault.h"

namespace eda::service {

namespace {

/// Application-schema tag inside the (already version-gated) kernel
/// container: bump when the cache *contents* change shape — e.g. a new
/// section — without touching the node-table wire format.  Schema 2 added
/// the sim pre-filter provenance fields to serialized verdicts; schema 3
/// added the failure classification byte.
constexpr std::uint32_t kCacheSchema = 3;

void encode_thm(kernel::Encoder& enc, const kernel::Thm& th) {
  enc.thm(th);
}

kernel::Thm decode_thm(kernel::Decoder& dec) { return dec.thm(); }

}  // namespace

void encode_verdict(kernel::Encoder& enc, const verify::VerifyResult& v) {
  enc.u8(v.completed ? 1 : 0);
  enc.u8(v.equivalent ? 1 : 0);
  enc.u8(static_cast<std::uint8_t>(v.failure));
  enc.u64(static_cast<std::uint64_t>(v.iterations));
  enc.f64(v.seconds);
  enc.u64(v.peak);
  enc.u8(v.sim_refuted ? 1 : 0);
  enc.u64(v.sim_vectors);
  enc.str(v.counterexample);
}

verify::VerifyResult decode_verdict(kernel::Decoder& dec) {
  verify::VerifyResult v;
  v.completed = dec.u8() != 0;
  v.equivalent = dec.u8() != 0;
  std::uint8_t failure = dec.u8();
  if (failure > static_cast<std::uint8_t>(
                    verify::FailureKind::InternalError)) {
    throw kernel::SerializeError("cache verdict: bad failure kind " +
                                 std::to_string(failure));
  }
  v.failure = static_cast<verify::FailureKind>(failure);
  v.iterations = static_cast<int>(dec.u64());
  v.seconds = dec.f64();
  v.peak = static_cast<std::size_t>(dec.u64());
  v.sim_refuted = dec.u8() != 0;
  v.sim_vectors = dec.u64();
  v.counterexample = dec.str();
  return v;
}

namespace {

/// Split `path` into (directory, filename); "." for a bare filename.
std::pair<std::string, std::string> split_path(const std::string& path) {
  std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return {".", path};
  if (slash == 0) return {"/", path.substr(1)};
  return {path.substr(0, slash), path.substr(slash + 1)};
}

/// Age of `path` in milliseconds (-1 when it cannot be statted).
long long file_age_ms(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  struct timespec now;
  ::clock_gettime(CLOCK_REALTIME, &now);
  long long age = (static_cast<long long>(now.tv_sec) - st.st_mtim.tv_sec) *
                  1000LL;
  age += (now.tv_nsec - st.st_mtim.tv_nsec) / 1000000LL;
  return age;
}

/// Read a whole file; false when it does not exist or cannot be read.
bool read_file(const std::string& path, std::string& bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return false;
  bytes = buf.str();
  return true;
}

/// The cache's cross-process critical section: `path.lock` held via
/// O_CREAT|O_EXCL.  A lock older than `stale_ms` is a crashed holder's
/// leftover and gets broken (unlink + re-race: whichever breaker wins the
/// EXCL create owns the lock).  Waiting longer than `timeout_ms` throws —
/// a save must fail loudly rather than block a shutdown forever.
class ScopedCacheLock {
 public:
  ScopedCacheLock(std::string lock_path, int timeout_ms, int stale_ms)
      : path_(std::move(lock_path)) {
    using Clock = std::chrono::steady_clock;
    Clock::time_point t0 = Clock::now();
    for (;;) {
      int fd = ::open(path_.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
      if (fd >= 0) {
        std::string pid = std::to_string(::getpid()) + "\n";
        // The pid is a human diagnostic only; staleness is mtime-based.
        (void)!::write(fd, pid.data(), pid.size());
        ::close(fd);
        held_ = true;
        return;
      }
      if (errno != EEXIST) {
        throw CacheFileError("cache save: cannot create lock " + path_ +
                             ": " + std::strerror(errno));
      }
      long long age = file_age_ms(path_);
      if (age < 0) continue;  // holder released between open and stat
      if (age > stale_ms) {
        ::unlink(path_.c_str());
        continue;
      }
      double waited = std::chrono::duration<double, std::milli>(
                          Clock::now() - t0)
                          .count();
      if (waited > timeout_ms) {
        throw CacheFileError("cache save: lock " + path_ + " held for " +
                             std::to_string(static_cast<long long>(waited)) +
                             " ms; giving up");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  ~ScopedCacheLock() {
    if (held_) ::unlink(path_.c_str());
  }

  ScopedCacheLock(const ScopedCacheLock&) = delete;
  ScopedCacheLock& operator=(const ScopedCacheLock&) = delete;

 private:
  std::string path_;
  bool held_ = false;
};

}  // namespace

std::string PersistentCacheFile::encode(const TheoremCache& theorems,
                                        const VerdictCache& verdicts) {
  kernel::Encoder enc;
  enc.u32(kCacheSchema);
  theorems.save(enc, encode_thm);
  verdicts.save(enc, encode_verdict);
  return enc.finish();
}

CacheLoadResult PersistentCacheFile::decode(std::string_view bytes,
                                           TheoremCache& theorems,
                                           VerdictCache& verdicts) {
  CacheLoadResult r;
  // Stage into scratch caches: nothing touches the live caches until the
  // whole payload (including the trailing at_end framing check) has
  // decoded cleanly, so a malformed file admits zero entries rather than
  // a prefix.
  TheoremCache staged_thms;
  VerdictCache staged_verdicts;
  try {
    kernel::Decoder dec(bytes);
    std::uint32_t schema = dec.u32();
    if (schema != kCacheSchema) {
      throw kernel::SerializeError(
          "cache schema skew (file schema " + std::to_string(schema) +
          ", expected " + std::to_string(kCacheSchema) + ")");
    }
    staged_thms.load(dec, decode_thm);
    staged_verdicts.load(dec, decode_verdict);
    if (!dec.at_end()) {
      throw kernel::SerializeError("trailing bytes after cache payload");
    }
  } catch (const kernel::KernelError& e) {
    r.note = std::string(e.what()) + "; ignored, starting cold";
    return r;
  }
  for (auto& [goal, thm] : staged_thms.snapshot()) {
    if (theorems.emplace(goal, std::move(thm)).second) ++r.theorems;
  }
  for (auto& [goal, verdict] : staged_verdicts.snapshot()) {
    if (verdicts.emplace(goal, std::move(verdict)).second) ++r.verdicts;
  }
  r.loaded = true;
  r.note = "loaded " + std::to_string(r.theorems) + " theorem(s), " +
           std::to_string(r.verdicts) + " verdict(s)";
  return r;
}

void PersistentCacheFile::save(const TheoremCache& theorems,
                               const VerdictCache& verdicts) const {
  // The whole load-merge-write-rename sequence runs under the cache lock,
  // so N processes saving to one path serialise their read-modify-write
  // cycles and every process's entries reach the union.
  ScopedCacheLock lock(path_ + ".lock", opts_.lock_timeout_ms,
                       opts_.stale_lock_ms);

  std::string bytes;
  if (opts_.merge_on_save) {
    // Merge the on-disk entries into our snapshot.  decode() emplaces, and
    // emplace keeps the existing entry, so live entries win collisions —
    // both sides proved the same goal, and ours is the fresher proof.
    TheoremCache merged_thms;
    VerdictCache merged_verdicts;
    for (auto& [goal, thm] : theorems.snapshot()) {
      merged_thms.emplace(goal, std::move(thm));
    }
    for (auto& [goal, verdict] : verdicts.snapshot()) {
      merged_verdicts.emplace(goal, std::move(verdict));
    }
    std::string existing;
    if (read_file(path_, existing)) {
      decode(existing, merged_thms, merged_verdicts);  // corrupt = skipped
    }
    bytes = encode(merged_thms, merged_verdicts);
  } else {
    bytes = encode(theorems, verdicts);
  }

  // Unique temp per call AND per process: even under the lock a crashed
  // saver's leftover temp must never collide with a live one.
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t serial =
      counter.fetch_add(1, std::memory_order_relaxed);
  std::string tmp = path_ + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(serial);

  // Torn-write fault site: model a saver crashing mid-write (or a kernel
  // dropping un-synced pages) by publishing a truncated payload.  The next
  // load must diagnose it and cold-start — never admit a prefix.
  std::size_t write_len = bytes.size();
  if (FaultInjector::instance().should_fail(kFaultCacheWrite)) {
    write_len /= 2;
  }

  int fd = ::open(tmp.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
  if (fd < 0) {
    throw CacheFileError("cache save: cannot open " + tmp + ": " +
                         std::strerror(errno));
  }
  std::size_t off = 0;
  while (off < write_len) {
    ssize_t n = ::write(fd, bytes.data() + off, write_len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw CacheFileError("cache save: write to " + tmp + " failed: " +
                           std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never become durable ahead of the
  // data it points at, or a crash leaves a complete-looking empty file.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw CacheFileError("cache save: fsync " + tmp + " failed: " +
                         std::strerror(errno));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw CacheFileError("cache save: cannot rename " + tmp + " to " +
                         path_);
  }
  // fsync the directory so the rename itself survives a power cut.
  int dirfd = ::open(split_path(path_).first.c_str(), O_RDONLY);
  if (dirfd >= 0) {
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
}

CacheLoadResult PersistentCacheFile::load(TheoremCache& theorems,
                                          VerdictCache& verdicts) const {
  // Sweep orphaned temp files from crashed savers.  Age-gated so a saver
  // mid-write in another process keeps its temp.
  auto [dir, name] = split_path(path_);
  std::string tmp_prefix = name + ".tmp.";
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* ent = ::readdir(d)) {
      if (std::strncmp(ent->d_name, tmp_prefix.c_str(),
                       tmp_prefix.size()) != 0) {
        continue;
      }
      std::string orphan = dir + "/" + ent->d_name;
      long long age = file_age_ms(orphan);
      if (age >= opts_.orphan_tmp_ms) ::unlink(orphan.c_str());
    }
    ::closedir(d);
  }

  std::string bytes;
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    CacheLoadResult r;
    r.note = "no cache file at " + path_ + "; starting cold";
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    CacheLoadResult r;
    r.note = "cannot read " + path_ + "; ignored, starting cold";
    return r;
  }
  bytes = buf.str();
  return decode(bytes, theorems, verdicts);
}

}  // namespace eda::service
