#include "service/cache_file.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "kernel/serialize.h"

namespace eda::service {

namespace {

/// Application-schema tag inside the (already version-gated) kernel
/// container: bump when the cache *contents* change shape — e.g. a new
/// section — without touching the node-table wire format.  Schema 2 added
/// the sim pre-filter provenance fields to serialized verdicts.
constexpr std::uint32_t kCacheSchema = 2;

void encode_thm(kernel::Encoder& enc, const kernel::Thm& th) {
  enc.thm(th);
}

kernel::Thm decode_thm(kernel::Decoder& dec) { return dec.thm(); }

void encode_verdict(kernel::Encoder& enc, const verify::VerifyResult& v) {
  enc.u8(v.completed ? 1 : 0);
  enc.u8(v.equivalent ? 1 : 0);
  enc.u64(static_cast<std::uint64_t>(v.iterations));
  enc.f64(v.seconds);
  enc.u64(v.peak);
  enc.u8(v.sim_refuted ? 1 : 0);
  enc.u64(v.sim_vectors);
  enc.str(v.counterexample);
}

verify::VerifyResult decode_verdict(kernel::Decoder& dec) {
  verify::VerifyResult v;
  v.completed = dec.u8() != 0;
  v.equivalent = dec.u8() != 0;
  v.iterations = static_cast<int>(dec.u64());
  v.seconds = dec.f64();
  v.peak = static_cast<std::size_t>(dec.u64());
  v.sim_refuted = dec.u8() != 0;
  v.sim_vectors = dec.u64();
  v.counterexample = dec.str();
  return v;
}

}  // namespace

std::string PersistentCacheFile::encode(const TheoremCache& theorems,
                                        const VerdictCache& verdicts) {
  kernel::Encoder enc;
  enc.u32(kCacheSchema);
  theorems.save(enc, encode_thm);
  verdicts.save(enc, encode_verdict);
  return enc.finish();
}

CacheLoadResult PersistentCacheFile::decode(std::string_view bytes,
                                           TheoremCache& theorems,
                                           VerdictCache& verdicts) {
  CacheLoadResult r;
  // Stage into scratch caches: nothing touches the live caches until the
  // whole payload (including the trailing at_end framing check) has
  // decoded cleanly, so a malformed file admits zero entries rather than
  // a prefix.
  TheoremCache staged_thms;
  VerdictCache staged_verdicts;
  try {
    kernel::Decoder dec(bytes);
    std::uint32_t schema = dec.u32();
    if (schema != kCacheSchema) {
      throw kernel::SerializeError(
          "cache schema skew (file schema " + std::to_string(schema) +
          ", expected " + std::to_string(kCacheSchema) + ")");
    }
    staged_thms.load(dec, decode_thm);
    staged_verdicts.load(dec, decode_verdict);
    if (!dec.at_end()) {
      throw kernel::SerializeError("trailing bytes after cache payload");
    }
  } catch (const kernel::KernelError& e) {
    r.note = std::string(e.what()) + "; ignored, starting cold";
    return r;
  }
  for (auto& [goal, thm] : staged_thms.snapshot()) {
    if (theorems.emplace(goal, std::move(thm)).second) ++r.theorems;
  }
  for (auto& [goal, verdict] : staged_verdicts.snapshot()) {
    if (verdicts.emplace(goal, std::move(verdict)).second) ++r.verdicts;
  }
  r.loaded = true;
  r.note = "loaded " + std::to_string(r.theorems) + " theorem(s), " +
           std::to_string(r.verdicts) + " verdict(s)";
  return r;
}

void PersistentCacheFile::save(const TheoremCache& theorems,
                               const VerdictCache& verdicts) const {
  std::string bytes = encode(theorems, verdicts);
  // Unique temp per call AND per process: concurrent savers — a snapshot
  // thread racing a shutdown save, or two service processes sharing one
  // cache path — must not interleave writes into one file.  The rename is
  // atomic, so whichever finishes last leaves the newest complete
  // snapshot at `path_`.
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t serial =
      counter.fetch_add(1, std::memory_order_relaxed);
  std::string tmp = path_ + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(serial);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw CacheFileError("cache save: cannot open " + tmp);
    }
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw CacheFileError("cache save: write to " + tmp + " failed");
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CacheFileError("cache save: cannot rename " + tmp + " to " +
                         path_);
  }
}

CacheLoadResult PersistentCacheFile::load(TheoremCache& theorems,
                                          VerdictCache& verdicts) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    CacheLoadResult r;
    r.note = "no cache file at " + path_ + "; starting cold";
    return r;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    CacheLoadResult r;
    r.note = "cannot read " + path_ + "; ignored, starting cold";
    return r;
  }
  std::string bytes = buf.str();
  return decode(bytes, theorems, verdicts);
}

}  // namespace eda::service
