#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kernel/goal_cache.h"
#include "kernel/thm.h"
#include "service/cache_file.h"
#include "verify/common.h"

namespace eda::service {

/// Per-backend accounting: the GoalCache hit/miss contract for both
/// sections, plus the remote client's degradation counters (always zero
/// for local backends).
struct BackendStats {
  kernel::GoalCacheStats theorems;
  kernel::GoalCacheStats verdicts;
  std::uint64_t remote_failures = 0;  ///< transport errors observed
  std::uint64_t degraded_ops = 0;     ///< ops served locally while degraded
  /// Successful remote request/response exchanges, version handshakes
  /// excluded (always zero for local backends).  The batched cone sweep
  /// is gated on this: one lookup frame + one publish frame per
  /// incremental job, instead of O(#cones).
  std::uint64_t remote_round_trips = 0;
};

/// One entry of a batched verdict publication (publish_verdicts):
/// publish_verdict semantics per entry.
struct VerdictPublish {
  kernel::Term key;
  verify::VerifyResult value;
  bool cacheable = true;
};

/// The ONE seam through which the service reads/writes theorem and verdict
/// entries.  Implementations: InProcessBackend (the plain shared
/// GoalCaches), FileBackend (bound to a PersistentCacheFile path with
/// merge-on-save), RemoteBackend (remote_backend.h — an eda_cached client
/// that degrades to an in-process fallback).
///
/// The primitives carry the GoalCache accounting contract verbatim, so
/// hit/miss statistics live in exactly one place no matter which call
/// shape the service uses:
///
///   lookup_*    present counts a hit and returns the canonical entry;
///               absent counts NOTHING (the caller is expected to prove
///               the goal and publish the result, which is where the miss
///               lands — a lookup never followed by its publish
///               under-counts one miss).
///   publish_*   an insert counts the miss; losing the publication race
///               counts a hit (the obligation is served by the shared
///               canonical entry, which is returned); `cacheable = false`
///               counts the miss WITHOUT inserting.  k submissions of one
///               goal therefore always yield exactly 1 miss and k-1 hits.
///
/// The composed get_or_prove_* helpers below are the service's call shape;
/// they add no accounting of their own.
class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  /// "in-process", "file", "remote" — for diagnostics.
  virtual const char* name() const = 0;

  virtual std::optional<kernel::Thm> lookup_theorem(
      const kernel::Term& goal, bool* was_hit = nullptr) = 0;
  /// Returns (canonical theorem, inserted-by-this-call).
  virtual std::pair<kernel::Thm, bool> publish_theorem(
      const kernel::Term& goal, kernel::Thm thm) = 0;

  virtual std::optional<verify::VerifyResult> lookup_verdict(
      const kernel::Term& key, bool* was_hit = nullptr) = 0;
  /// Returns (canonical verdict, inserted-by-this-call).  With
  /// `cacheable = false` the fresh value is returned uninserted (and the
  /// miss still counted) — a budget-blown verdict describes the machine,
  /// not the goal.
  virtual std::pair<verify::VerifyResult, bool> publish_verdict(
      const kernel::Term& key, verify::VerifyResult v, bool cacheable) = 0;

  /// Batched forms of the verdict primitives, carrying the SAME per-entry
  /// accounting contract: lookup_verdicts counts one hit per entry found
  /// (nothing per absent entry, with `was_hit[i]` mirroring the single
  /// lookup's out-param); publish_verdicts counts one miss per insert /
  /// uncacheable entry and one hit per lost race, returning each entry's
  /// (canonical verdict, inserted) pair.  The defaults loop over the
  /// single-entry primitives — local backends get batching for free;
  /// RemoteBackend overrides both with ONE LookupBatch/PublishBatch wire
  /// frame, which is what turns an incremental cone sweep's O(#cones)
  /// round trips into two.
  virtual std::vector<std::optional<verify::VerifyResult>> lookup_verdicts(
      const std::vector<kernel::Term>& keys,
      std::vector<std::uint8_t>* was_hit = nullptr);
  virtual std::vector<std::pair<verify::VerifyResult, bool>>
  publish_verdicts(std::vector<VerdictPublish> entries);

  virtual BackendStats stats() const = 0;

  /// Merge a previously saved cache file into the backend (admission
  /// bypasses the hit/miss counters — warm-start provenance honesty).
  /// Never throws: missing/corrupt/skewed files are diagnosed cold starts.
  virtual CacheLoadResult warm_start(const std::string& path) = 0;

  /// Snapshot the backend's entries to `path` (PersistentCacheFile
  /// semantics: locked, merged, atomic).  Throws CacheFileError on I/O
  /// failure.
  virtual void persist(const std::string& path) const = 0;

  /// Backend-bound persistence (FileBackend writes its bound path; others
  /// no-op).  Throws CacheFileError on I/O failure.
  virtual void flush() {}

  /// The service entry points, composed from the primitives so every call
  /// shape shares one accounting implementation.
  template <typename Fn>
  kernel::Thm get_or_prove_theorem(const kernel::Term& goal, Fn&& prove,
                                   bool* was_hit = nullptr) {
    if (auto v = lookup_theorem(goal, was_hit)) return *v;
    auto [canonical, inserted] = publish_theorem(goal, prove());
    if (!inserted && was_hit != nullptr) *was_hit = true;  // lost the race
    return canonical;
  }

  template <typename Fn, typename Pred>
  verify::VerifyResult get_or_prove_verdict(const kernel::Term& key,
                                            Fn&& prove, Pred&& should_cache,
                                            bool* was_hit = nullptr) {
    if (auto v = lookup_verdict(key, was_hit)) return *v;
    verify::VerifyResult fresh = prove();
    bool cacheable = should_cache(fresh);
    auto [canonical, inserted] =
        publish_verdict(key, std::move(fresh), cacheable);
    if (cacheable && !inserted && was_hit != nullptr) *was_hit = true;
    return canonical;
  }
};

/// Today's behaviour behind the new seam: two shared in-process
/// GoalCaches, nothing else.
class InProcessBackend : public CacheBackend {
 public:
  const char* name() const override { return "in-process"; }

  std::optional<kernel::Thm> lookup_theorem(const kernel::Term& goal,
                                            bool* was_hit) override;
  std::pair<kernel::Thm, bool> publish_theorem(const kernel::Term& goal,
                                               kernel::Thm thm) override;
  std::optional<verify::VerifyResult> lookup_verdict(
      const kernel::Term& key, bool* was_hit) override;
  std::pair<verify::VerifyResult, bool> publish_verdict(
      const kernel::Term& key, verify::VerifyResult v,
      bool cacheable) override;

  BackendStats stats() const override;
  CacheLoadResult warm_start(const std::string& path) override;
  void persist(const std::string& path) const override;

  /// The owned caches, for the file layer and tests.
  TheoremCache& theorems() { return theorems_; }
  VerdictCache& verdicts() { return verdicts_; }
  const TheoremCache& theorems() const { return theorems_; }
  const VerdictCache& verdicts() const { return verdicts_; }

 private:
  TheoremCache theorems_;
  VerdictCache verdicts_;
};

/// InProcessBackend bound to a cache file: warm_start()/persist() default
/// to the bound path and flush() runs a merge-on-save there, preserving
/// the PR 8 multi-process union semantics.
class FileBackend : public InProcessBackend {
 public:
  explicit FileBackend(std::string path, CacheFileOptions opts = {})
      : path_(std::move(path)), opts_(opts) {}

  const char* name() const override { return "file"; }
  const std::string& path() const { return path_; }

  CacheLoadResult warm_start(const std::string& path) override;
  void persist(const std::string& path) const override;

  /// Load the bound file.
  CacheLoadResult open() { return warm_start(path_); }
  /// Merge-on-save to the bound file.
  void flush() override { persist(path_); }

 private:
  std::string path_;
  CacheFileOptions opts_;
};

}  // namespace eda::service
