#include "service/fault.h"

#include <cstdlib>
#include <vector>

#include "service/spec_util.h"

namespace eda::service {

namespace {

/// splitmix64 finalizer: the draw must be a pure, well-mixed function of
/// (seed, site, visit) so schedules replay exactly and sites with similar
/// names or adjacent visit numbers stay uncorrelated.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (; *s != '\0'; ++s) {
    h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector::FaultInjector() {
  sites_[0].name = kFaultEngineBdd;
  sites_[1].name = kFaultBatchPool;
  sites_[2].name = kFaultAlloc;
  sites_[3].name = kFaultWorker;
  sites_[4].name = kFaultCacheWrite;
  sites_[5].name = kFaultRemoteStall;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::Site* FaultInjector::find(const std::string& site) {
  for (Site& s : sites_) {
    if (site == s.name) return &s;
  }
  return nullptr;
}

const FaultInjector::Site* FaultInjector::find(
    const std::string& site) const {
  for (const Site& s : sites_) {
    if (site == s.name) return &s;
  }
  return nullptr;
}

void FaultInjector::reset() {
  enabled_.store(false, std::memory_order_release);
  seed_ = 0;
  rate_ = 0.0;
  for (Site& s : sites_) {
    s.armed.store(false, std::memory_order_relaxed);
    s.visits.store(0, std::memory_order_relaxed);
    s.injected.store(0, std::memory_order_relaxed);
  }
}

void FaultInjector::configure(const std::string& spec) {
  reset();
  if (spec.empty() || spec == "off") return;

  std::uint64_t seed = 0;
  double rate = -1.0;
  bool have_seed = false, have_sites = false;
  std::vector<std::string> armed_sites;
  for (const std::string& field : detail::split(spec, ',', false)) {
    std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      throw FaultSpecError("fault spec: expected key=value, got '" + field +
                           "'");
    }
    std::string key = field.substr(0, eq);
    std::string value = field.substr(eq + 1);
    auto bad_value = [&]() -> FaultSpecError {
      return FaultSpecError("fault spec: bad value for '" + key + "'");
    };
    if (key == "seed") {
      try {
        std::size_t used = 0;
        seed = std::stoull(value, &used);
        if (used != value.size()) throw bad_value();
      } catch (const FaultSpecError&) {
        throw;
      } catch (const std::exception&) {
        throw bad_value();
      }
      have_seed = true;
    } else if (key == "rate") {
      try {
        std::size_t used = 0;
        rate = std::stod(value, &used);
        if (used != value.size() || !(rate >= 0.0) || !(rate <= 1.0)) {
          throw bad_value();
        }
      } catch (const FaultSpecError&) {
        throw;
      } catch (const std::exception&) {
        throw bad_value();
      }
    } else if (key == "sites") {
      armed_sites = detail::split(value, '+', false);
      have_sites = true;
    } else {
      throw FaultSpecError("fault spec: unknown key '" + key + "'");
    }
  }
  if (!have_seed || rate < 0.0 || !have_sites || armed_sites.empty()) {
    throw FaultSpecError(
        "fault spec: need seed=S,rate=R,sites=a+b (or 'off')");
  }
  for (const std::string& name : armed_sites) {
    Site* s = find(name);
    if (s == nullptr) {
      throw FaultSpecError("fault spec: unknown site '" + name +
                           "' (sites: engine_bdd, batch_pool, alloc, "
                           "worker, cache_write, remote_stall)");
    }
    s->armed.store(true, std::memory_order_relaxed);
  }
  seed_ = seed;
  rate_ = rate;
  enabled_.store(true, std::memory_order_release);
}

void FaultInjector::configure_from_env() {
  const char* spec = std::getenv("EDA_FAULTS");
  if (spec != nullptr && *spec != '\0') configure(spec);
}

bool FaultInjector::should_fail(const char* site) {
  if (!enabled_.load(std::memory_order_relaxed)) return false;
  Site* s = find(site);
  if (s == nullptr || !s->armed.load(std::memory_order_relaxed)) {
    return false;
  }
  std::uint64_t visit = s->visits.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t draw = mix64(seed_ ^ fnv1a(site) ^ (visit * 0x9e37ULL));
  // Map the top 53 bits into [0, 1): exact enough for a chaos schedule and
  // immune to the modulo bias a % draw would carry.
  double u = static_cast<double>(draw >> 11) * 0x1.0p-53;
  if (u >= rate_) return false;
  s->injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultInjector::injected(const char* site) const {
  const Site* s = find(site);
  return s == nullptr ? 0 : s->injected.load(std::memory_order_relaxed);
}

}  // namespace eda::service
