#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/cache_file.h"
#include "service/remote_proto.h"

namespace eda::service {

struct CacheServerOptions {
  /// Listen address: "unix:/path" or "host:port" (TCP port 0 = pick one).
  std::string listen = "unix:/tmp/eda_cached.sock";
  /// Store shards.  Each shard is a (TheoremCache, VerdictCache) pair
  /// selected by the kernel/shard.h multiply-mixer over the key term's
  /// alpha/structural hash, so entropy-poor hashes still spread (the
  /// ROADMAP `h % kShards` trap).  GoalCache supplies the per-shard
  /// locking; the daemon-level split bounds snapshot and lock granularity.
  std::size_t shards = 8;
  /// Warm-start file: loaded on start(), merge-on-save snapshotted
  /// periodically and on stop(), so a restarted daemon comes back warm
  /// (and shares the file with direct --cache-file clients, PR 8 union
  /// semantics).  Empty = memory only.
  std::string cache_file;
  CacheFileOptions file_options;
  /// Periodic snapshot interval in ms (0 = only on stop()).
  int snapshot_ms = 0;
  /// Highest protocol version this daemon speaks.  The default is the
  /// current kRemoteProtoVersion; tests pin 1 to emulate a pre-batch v1
  /// daemon for version-skew interop coverage (the Ping reply then omits
  /// the version advertisement and batch opcodes are rejected).
  std::uint32_t max_proto_version = kRemoteProtoVersion;
};

struct CacheServerStats {
  std::size_t shards = 0;
  std::size_t theorem_entries = 0;
  std::size_t verdict_entries = 0;
  std::uint64_t lookups = 0;
  std::uint64_t lookup_hits = 0;
  std::uint64_t publishes = 0;
  std::uint64_t connections = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t tenants = 0;  ///< distinct tenant labels seen
  std::uint64_t batch_frames = 0;  ///< LookupBatch/PublishBatch served
  /// Handler threads currently tracked (live connections plus any finished
  /// handlers not yet reaped by the accept loop) — the soak test's bound.
  std::size_t live_handlers = 0;
};

/// The sharded remote theorem-cache store + socket front of eda_cached,
/// embeddable in-process so the conformance tests can kill and restart a
/// daemon deterministically.  One accept thread, one handler thread per
/// connection (finished handlers are reaped by the accept loop, so a
/// long-lived daemon's thread count is bounded by its LIVE connections,
/// not its lifetime total), length-prefixed kernel-container frames
/// (service/remote_proto.h).  Decoding a request re-interns its terms
/// through the kernel, so alpha-equivalent goals from different clients
/// land on the same entry — the whole point of the shared tier.
class CacheServer {
 public:
  explicit CacheServer(CacheServerOptions opts);
  ~CacheServer();

  CacheServer(const CacheServer&) = delete;
  CacheServer& operator=(const CacheServer&) = delete;

  /// Bind, warm-start from the cache file (when configured) and begin
  /// serving.  Throws RemoteCacheError when the address cannot be bound.
  /// Returns the warm-start outcome (loaded=false note when no file).
  CacheLoadResult start();

  /// Stop accepting, shut down live connections, join every thread and
  /// write a final snapshot.  Idempotent.
  void stop();

  /// Merge-on-save the full store to the cache file now (no-op without
  /// one).  Throws CacheFileError on I/O failure.
  void snapshot() const;

  CacheServerStats stats() const;

  /// Actual TCP port after start() (0 for unix sockets) — tests bind
  /// port 0.
  int port() const;
  const std::string& listen_display() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eda::service
