#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/cache_backend.h"
#include "service/remote_proto.h"

namespace eda::service {

struct RemoteBackendOptions {
  std::string server;          ///< "unix:/path" or "host:port"
  std::string tenant;          ///< label sent with every request
  int connect_timeout_ms = 1000;
  int io_timeout_ms = 5000;
  /// Degradation backoff after a transport failure, capped-exponential in
  /// the number of consecutive failures (guard.h retry_backoff_ms): while
  /// degraded every op is served by the in-process fallback, then one
  /// probe reconnects.  RETRY_LATER semantics, applied to the cache tier.
  double backoff_ms = 25.0;
  double backoff_cap_ms = 2000.0;
};

/// CacheBackend speaking the eda_cached framed protocol, wrapped around an
/// in-process fallback so a dead daemon can never lose a verdict or
/// produce a wrong one:
///
///   - every publish lands in the fallback FIRST, then best-effort on the
///     daemon — whatever happens to the socket, this process keeps its
///     proof;
///   - lookups consult the fallback, then (healthy) the daemon, and a
///     remote hit is written back locally so repeats stay off the wire;
///   - any transport failure counts remote_failures, degrades the client
///     for a capped-exponential backoff window (during which ops count
///     degraded_ops and run purely local), then a single op probes again;
///   - hit/miss accounting follows the GoalCache contract (1 miss + k-1
///     hits per goal) and is maintained HERE, in one place, regardless of
///     where an entry was found.
///
/// Thread safety: one connection guarded by a mutex (requests serialize;
/// obligations dwarf round-trips), counters atomic, fallback caches are
/// GoalCaches.
class RemoteBackend : public CacheBackend {
 public:
  explicit RemoteBackend(RemoteBackendOptions opts);
  ~RemoteBackend() override;

  const char* name() const override { return "remote"; }

  std::optional<kernel::Thm> lookup_theorem(const kernel::Term& goal,
                                            bool* was_hit) override;
  std::pair<kernel::Thm, bool> publish_theorem(const kernel::Term& goal,
                                               kernel::Thm thm) override;
  std::optional<verify::VerifyResult> lookup_verdict(
      const kernel::Term& key, bool* was_hit) override;
  std::pair<verify::VerifyResult, bool> publish_verdict(
      const kernel::Term& key, verify::VerifyResult v,
      bool cacheable) override;

  BackendStats stats() const override;

  /// Loads into the local fallback only (the daemon warms itself from its
  /// own --cache-file); entries stay visible through the fallback tier.
  CacheLoadResult warm_start(const std::string& path) override;

  /// Persists the union of the local fallback and a daemon SNAPSHOT (when
  /// reachable) — so `--cache-file` + `--cache-server` clients leave a
  /// usable warm-start file even if the daemon dies later.
  void persist(const std::string& path) const override;

  /// True when the last exchange succeeded and no backoff window is open.
  bool healthy() const;
  /// Last transport diagnostic ("" when none).
  std::string last_error() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eda::service
