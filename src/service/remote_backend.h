#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/cache_backend.h"
#include "service/remote_proto.h"

namespace eda::service {

struct RemoteBackendOptions {
  std::string server;          ///< "unix:/path" or "host:port"
  std::string tenant;          ///< label sent with every request
  int connect_timeout_ms = 1000;
  int io_timeout_ms = 5000;
  /// Degradation backoff after a transport failure, capped-exponential in
  /// the number of consecutive failures (guard.h retry_backoff_ms): while
  /// degraded every op is served by the in-process fallback, then one
  /// probe reconnects.  RETRY_LATER semantics, applied to the cache tier.
  double backoff_ms = 25.0;
  double backoff_cap_ms = 2000.0;
  /// Connection pool size.  Each pooled socket is independently
  /// mutex-guarded, so up to `pool` exchanges run concurrently; pool = 1
  /// reproduces the PR 9 single-socket semantics (and counters) exactly.
  /// Degradation state is SHARED: any connection's transport failure
  /// opens the one backoff window, any success closes it.
  int pool = 4;
  /// Use v2 LookupBatch/PublishBatch frames when the daemon negotiated
  /// v2+ on Ping; off forces per-entry ops even against a v2 daemon.
  bool batch = true;
  /// Highest protocol version this client speaks.  Tests pin 1 to emulate
  /// a pre-batch v1 client against a v2 daemon.
  std::uint32_t max_proto_version = kRemoteProtoVersion;
};

/// CacheBackend speaking the eda_cached framed protocol, wrapped around an
/// in-process fallback so a dead daemon can never lose a verdict or
/// produce a wrong one:
///
///   - every publish lands in the fallback FIRST, then best-effort on the
///     daemon — whatever happens to the socket, this process keeps its
///     proof;
///   - lookups consult the fallback, then (healthy) the daemon, and a
///     remote hit is written back locally so repeats stay off the wire;
///   - any transport failure counts remote_failures, degrades the client
///     for a capped-exponential backoff window (during which ops count
///     degraded_ops and run purely local), then a single op probes again;
///   - hit/miss accounting follows the GoalCache contract (1 miss + k-1
///     hits per goal) and is maintained HERE, in one place, regardless of
///     where an entry was found.
///
/// Thread safety: a pool of independently mutex-guarded connections
/// (exchanges on distinct sockets pipeline; pool = 1 restores the PR 9
/// serialized-socket behaviour), one shared degradation window guarded by
/// its own mutex, counters atomic, fallback caches are GoalCaches.
class RemoteBackend : public CacheBackend {
 public:
  explicit RemoteBackend(RemoteBackendOptions opts);
  ~RemoteBackend() override;

  const char* name() const override { return "remote"; }

  std::optional<kernel::Thm> lookup_theorem(const kernel::Term& goal,
                                            bool* was_hit) override;
  std::pair<kernel::Thm, bool> publish_theorem(const kernel::Term& goal,
                                               kernel::Thm thm) override;
  std::optional<verify::VerifyResult> lookup_verdict(
      const kernel::Term& key, bool* was_hit) override;
  std::pair<verify::VerifyResult, bool> publish_verdict(
      const kernel::Term& key, verify::VerifyResult v,
      bool cacheable) override;

  /// Batched overrides: local-fallback consultation per entry, then ONE
  /// LookupBatch frame for the local misses / ONE PublishBatch frame for
  /// the fresh inserts.  Against a v1 daemon (or with batching disabled)
  /// they degrade to the per-entry ops; the accounting contract is
  /// identical either way.
  std::vector<std::optional<verify::VerifyResult>> lookup_verdicts(
      const std::vector<kernel::Term>& keys,
      std::vector<std::uint8_t>* was_hit) override;
  std::vector<std::pair<verify::VerifyResult, bool>> publish_verdicts(
      std::vector<VerdictPublish> entries) override;

  BackendStats stats() const override;

  /// Loads into the local fallback only (the daemon warms itself from its
  /// own --cache-file); entries stay visible through the fallback tier.
  CacheLoadResult warm_start(const std::string& path) override;

  /// Persists the union of the local fallback and a daemon SNAPSHOT (when
  /// reachable) — so `--cache-file` + `--cache-server` clients leave a
  /// usable warm-start file even if the daemon dies later.
  void persist(const std::string& path) const override;

  /// True when at least one pooled connection is open and no backoff
  /// window is open.
  bool healthy() const;
  /// Last transport diagnostic ("" when none).
  std::string last_error() const;
  /// Protocol version negotiated with the daemon on Ping (0 before any
  /// successful handshake; batching engages at >= 2).
  int negotiated_version() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace eda::service
