#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "service/verify_service.h"

namespace eda::service {

/// Parse a job manifest: one job per line,
///
///   <circuit> <method> [key=value ...]     # comment
///
/// where <circuit> follows the JobSpec grammar, <method> is one of
/// hash/match/eijk/eijk+/smv/sis, and the optional key=value fields are
/// `timeout=SECONDS`, `seed=N`, `name=LABEL`, `tenant=LABEL`,
/// `priority=N`, `deadline_ms=MS` and `max_retries=N`.  A '#' at the
/// start of
/// the line or after whitespace begins a comment (one embedded in a token,
/// as in sweep-generated names like `fig2:4/hash#0`, is literal); blank
/// lines are skipped.  Throws ServiceError (with the line number) on
/// malformed input.
std::vector<JobSpec> parse_manifest(std::istream& in);
std::vector<JobSpec> parse_manifest_string(const std::string& text);

/// Serialise a finished batch as JSON: service-level stats (job counts,
/// cache hit rates, wall/CPU time) plus one object per job in submit
/// order.  `threads` records the stream count the service ran with.
std::string results_to_json(const std::vector<JobResult>& results,
                            const ServiceStats& stats, unsigned threads);

}  // namespace eda::service
