#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "service/verify_service.h"

namespace eda::service::detail {

/// Split `s` on `sep`.  With `keep_empty`, empty tokens (leading, trailing
/// or doubled separators) are preserved — the circuit-spec parser wants
/// them so `blif:a,` is diagnosed as a malformed pair rather than silently
/// collapsing.
inline std::vector<std::string> split(const std::string& s, char sep,
                                      bool keep_empty) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      if (keep_empty || i > start) out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Parse a strictly positive integer field, throwing ServiceError with
/// `context` naming the enclosing spec on any malformation.
inline int parse_positive_int(const std::string& context,
                              const std::string& field) {
  try {
    std::size_t used = 0;
    int v = std::stoi(field, &used);
    if (used != field.size() || v <= 0) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw ServiceError(context + ": bad parameter '" + field + "'");
  }
}

/// Parse a strictly positive double (timeouts), with the same strict
/// full-token-consumption contract: a typo like `timeout=1O` must throw,
/// never silently become 1.0.  Shared by the manifest and sweep parsers —
/// they had drifted into two copies of this block.
inline double parse_positive_double(const std::string& context,
                                    const std::string& field) {
  try {
    std::size_t used = 0;
    double v = std::stod(field, &used);
    if (used != field.size() || !(v > 0.0)) {
      throw std::invalid_argument(field);
    }
    return v;
  } catch (const std::exception&) {
    throw ServiceError(context + ": bad value '" + field + "'");
  }
}

}  // namespace eda::service::detail
