#include "service/guard.h"

#include <algorithm>
#include <chrono>
#include <new>
#include <thread>

#include "bdd/bdd.h"
#include "service/fault.h"

namespace eda::service {

const char* verdict_class_name(VerdictClass v) {
  switch (v) {
    case VerdictClass::Unknown:
      return "UNKNOWN";
    case VerdictClass::Equiv:
      return "EQUIV";
    case VerdictClass::Nonequiv:
      return "NONEQUIV";
    case VerdictClass::Timeout:
      return "TIMEOUT";
    case VerdictClass::ResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case VerdictClass::InternalError:
      return "INTERNAL_ERROR";
    case VerdictClass::DeadlineExpired:
      return "DEADLINE_EXPIRED";
    case VerdictClass::RetryLater:
      return "RETRY_LATER";
    case VerdictClass::InvalidRequest:
      return "INVALID_REQUEST";
  }
  return "?";  // unreachable
}

bool verdict_is_failure(VerdictClass v) {
  return v != VerdictClass::Equiv && v != VerdictClass::Nonequiv;
}

bool verdict_is_retryable(VerdictClass v) {
  switch (v) {
    case VerdictClass::Timeout:
    case VerdictClass::ResourceExhausted:
    case VerdictClass::InternalError:
    case VerdictClass::RetryLater:
      return true;
    case VerdictClass::Unknown:
    case VerdictClass::Equiv:
    case VerdictClass::Nonequiv:
    case VerdictClass::DeadlineExpired:
    case VerdictClass::InvalidRequest:
      return false;
  }
  return false;  // unreachable
}

VerdictClass classify_result(const verify::VerifyResult& r) {
  if (r.completed) {
    return r.equivalent ? VerdictClass::Equiv : VerdictClass::Nonequiv;
  }
  switch (r.failure) {
    case verify::FailureKind::Timeout:
      return VerdictClass::Timeout;
    case verify::FailureKind::ResourceExhausted:
      return VerdictClass::ResourceExhausted;
    case verify::FailureKind::InternalError:
      return VerdictClass::InternalError;
    case verify::FailureKind::None:
      break;
  }
  return VerdictClass::Unknown;
}

VerdictClass classify_exception(const std::exception& e) {
  if (dynamic_cast<const bdd::BddError*>(&e) != nullptr ||
      dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return VerdictClass::ResourceExhausted;
  }
  return VerdictClass::InternalError;
}

double retry_backoff_ms(const RetryPolicy& policy, int retry) {
  double b = policy.backoff_ms;
  for (int k = 1; k < retry; ++k) {
    b *= 2.0;
    if (b >= policy.backoff_cap_ms) break;  // saturated; stop doubling
  }
  return std::min(b, policy.backoff_cap_ms);
}

namespace {

using Clock = std::chrono::steady_clock;

verify::FailureKind failure_kind_of(VerdictClass v) {
  switch (v) {
    case VerdictClass::Timeout:
      return verify::FailureKind::Timeout;
    case VerdictClass::ResourceExhausted:
      return verify::FailureKind::ResourceExhausted;
    default:
      return verify::FailureKind::InternalError;
  }
}

}  // namespace

GuardedRun run_guarded(
    const RetryPolicy& policy, const verify::VerifyOptions& opts,
    const std::function<verify::VerifyResult(const verify::VerifyOptions&)>&
        attempt) {
  GuardedRun g;
  verify::VerifyOptions cur = opts;
  Clock::time_point t0 = Clock::now();
  auto elapsed_sec = [&] {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  for (int retry = 0;; ++retry) {
    ++g.attempts;
    try {
      // Injection sites live INSIDE the guard: an injected fault takes the
      // same classify/retry/backoff path a real one would.
      FaultInjector& faults = FaultInjector::instance();
      if (faults.should_fail(kFaultWorker)) {
        throw std::runtime_error("injected worker-thread exception");
      }
      if (faults.should_fail(kFaultAlloc)) throw std::bad_alloc();
      if (faults.should_fail(kFaultEngineBdd)) {
        throw bdd::BddError("injected BDD pool failure");
      }
      g.result = attempt(cur);
      g.verdict = classify_result(g.result);
      g.error.clear();
    } catch (const std::exception& e) {
      g.verdict = classify_exception(e);
      g.result = verify::VerifyResult{};
      g.result.failure = failure_kind_of(g.verdict);
      g.error = e.what();
    }
    if (!verdict_is_retryable(g.verdict) || retry >= policy.max_retries) {
      return g;
    }
    double backoff = retry_backoff_ms(policy, retry + 1);
    if (policy.deadline_sec > 0.0 &&
        elapsed_sec() + backoff / 1000.0 >= policy.deadline_sec) {
      return g;  // no budget left for another attempt
    }
    g.backoff_ms += backoff;
    if (policy.really_sleep) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff));
    }
    // Escalate the budget the failure actually exhausted.  An escalated
    // completion is still a pure statement about the circuits, so caching
    // it under the originally requested bounds stays sound.
    if (g.verdict == VerdictClass::Timeout) {
      cur.timeout_sec *= policy.escalation;
    } else if (g.verdict == VerdictClass::ResourceExhausted) {
      cur.node_limit = static_cast<std::size_t>(
          static_cast<double>(cur.node_limit) * policy.escalation);
      cur.state_limit = static_cast<std::size_t>(
          static_cast<double>(cur.state_limit) * policy.escalation);
      cur.timeout_sec *= policy.escalation;  // bigger pools fill slower
    }
    if (policy.deadline_sec > 0.0) {
      cur.timeout_sec =
          std::min(cur.timeout_sec, policy.deadline_sec - elapsed_sec());
    }
  }
}

}  // namespace eda::service
