#include "service/verify_service.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <fstream>
#include <future>
#include <mutex>
#include <utility>

#include "bench_gen/fig2.h"
#include "bench_gen/iwls.h"
#include "bdd/bdd.h"
#include "circuit/bitblast.h"
#include "hash/compile.h"
#include "hash/retime_step.h"
#include "io/blif.h"
#include "kernel/parallel.h"
#include "kernel/thm.h"
#include "service/fault.h"
#include "service/remote_backend.h"
#include "service/spec_util.h"
#include "sim/bitsim.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"
#include "verify/batch_bdd.h"
#include "verify/cone.h"
#include "verify/retime_match.h"

namespace eda::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

std::optional<verify::Engine> engine_of(Method method) {
  switch (method) {
    case Method::Eijk:
      return verify::Engine::Eijk;
    case Method::EijkPlus:
      return verify::Engine::EijkPlus;
    case Method::Smv:
      return verify::Engine::Smv;
    case Method::Sis:
      return verify::Engine::SisFsm;
    case Method::Hash:
    case Method::Match:
      break;
  }
  return std::nullopt;
}

std::vector<std::string> split_on(const std::string& s, char sep) {
  return detail::split(s, sep, /*keep_empty=*/true);
}

/// The (engine, resource bounds) tail shared by every verdict-cache key: a
/// completed verdict is a pure function of the two circuits AND of the
/// engine and budget it ran under, so all of them key the entry.
kernel::Term engine_bounds_term(verify::Engine eng, double timeout_sec,
                                const verify::VerifyOptions& vopts) {
  kernel::Term bounds = thy::mk_pair(
      thy::mk_numeral(static_cast<std::uint64_t>(timeout_sec * 1000.0)),
      thy::mk_pair(thy::mk_numeral(vopts.node_limit),
                   thy::mk_numeral(vopts.state_limit)));
  return thy::mk_pair(
      thy::mk_numeral(static_cast<std::uint64_t>(eng)), bounds);
}

/// Leading marker of blif-pair verdict keys, keeping them structurally
/// disjoint from the RTL keys (whose first component is a compiled-circuit
/// lambda term, never a numeral).
constexpr std::uint64_t kBlifKeyTag = 0xb11fULL;

/// Leading marker of per-cone verdict keys (incremental blif-pair path) —
/// a third disjoint key family, so a whole-pair verdict and a cone verdict
/// for the same hashes can never collide.
constexpr std::uint64_t kConeKeyTag = 0xc09eULL;

kernel::Term cone_key(std::uint64_t hash_a, std::uint64_t hash_b,
                      verify::Engine eng, double timeout_sec,
                      const verify::VerifyOptions& vopts) {
  return thy::mk_pair(
      thy::mk_numeral(kConeKeyTag),
      thy::mk_pair(thy::mk_pair(thy::mk_numeral(hash_a),
                                thy::mk_numeral(hash_b)),
                   engine_bounds_term(eng, timeout_sec, vopts)));
}

int spec_int(const std::string& spec, const std::string& field) {
  return detail::parse_positive_int("circuit spec '" + spec + "'", field);
}

/// A circuit spec resolved to its obligation: either an RTL netlist plus
/// the retiming cut, or (blif: specs) a pair of gate-level netlists.
struct Resolved {
  bool is_pair = false;
  circuit::Rtl rtl;
  hash::Cut cut;
  circuit::GateNetlist net_a, net_b;
};

Resolved resolve_circuit(const std::string& spec) {
  Resolved rc;
  if (spec.rfind("blif:", 0) == 0) {
    std::vector<std::string> files = split_on(spec.substr(5), ',');
    if (files.size() != 2 || files[0].empty() || files[1].empty()) {
      throw ServiceError("circuit spec '" + spec +
                         "': expected blif:FILE_A,FILE_B");
    }
    rc.is_pair = true;
    for (int side = 0; side < 2; ++side) {
      std::ifstream in(files[static_cast<std::size_t>(side)]);
      if (!in) {
        throw ServiceError("circuit spec '" + spec + "': cannot open " +
                           files[static_cast<std::size_t>(side)]);
      }
      (side == 0 ? rc.net_a : rc.net_b) = io::parse_blif(in);
    }
    return rc;
  }
  std::vector<std::string> parts = split_on(spec, ':');
  const std::string& kind = parts[0];
  if (kind == "fig2" && parts.size() == 2) {
    bench_gen::Fig2 fig2 = bench_gen::make_fig2(spec_int(spec, parts[1]));
    rc.rtl = std::move(fig2.rtl);
    rc.cut = std::move(fig2.good_cut);
  } else if (kind == "fig2deep" && parts.size() == 3) {
    bench_gen::Fig2Deep deep = bench_gen::make_fig2_deep(
        spec_int(spec, parts[1]), spec_int(spec, parts[2]));
    rc.rtl = std::move(deep.rtl);
    rc.cut.f_nodes = std::move(deep.inc_nodes);
  } else if (kind == "mult" && parts.size() == 2) {
    bench_gen::BenchCircuit bench = bench_gen::make_serial_multiplier(
        spec, spec_int(spec, parts[1]));
    rc.rtl = std::move(bench.rtl);
    rc.cut = std::move(bench.cut);
  } else if (kind == "ctrl" && parts.size() == 3) {
    bench_gen::BenchCircuit bench = bench_gen::make_controller(
        spec, spec_int(spec, parts[1]), spec_int(spec, parts[2]));
    rc.rtl = std::move(bench.rtl);
    rc.cut = std::move(bench.cut);
  } else if (kind == "pipe" && parts.size() == 3) {
    bench_gen::BenchCircuit bench = bench_gen::make_pipeline_alu(
        spec, spec_int(spec, parts[1]), spec_int(spec, parts[2]));
    rc.rtl = std::move(bench.rtl);
    rc.cut = std::move(bench.cut);
  } else if (kind == "iwls" && parts.size() == 2) {
    std::optional<bench_gen::BenchCircuit> bench =
        bench_gen::find_iwls_benchmark(parts[1]);
    if (!bench) {
      throw ServiceError("circuit spec '" + spec +
                         "': no such iwls benchmark");
    }
    rc.rtl = std::move(bench->rtl);
    rc.cut = std::move(bench->cut);
  } else {
    throw ServiceError(
        "unknown circuit spec '" + spec +
        "' (expected fig2:N, fig2deep:N:S, mult:N, ctrl:S:T, pipe:W:D, "
        "iwls:NAME or blif:A,B)");
  }
  return rc;
}

}  // namespace

const char* method_name(Method method) {
  switch (method) {
    case Method::Hash:
      return "hash";
    case Method::Match:
      return "match";
    case Method::Eijk:
    case Method::EijkPlus:
    case Method::Smv:
    case Method::Sis:
      return verify::engine_name(*engine_of(method));
  }
  return "?";  // unreachable
}

std::optional<Method> parse_method(const std::string& name) {
  if (name == "hash") return Method::Hash;
  if (name == "match") return Method::Match;
  if (std::optional<verify::Engine> eng = verify::parse_engine(name)) {
    switch (*eng) {
      case verify::Engine::Eijk:
        return Method::Eijk;
      case verify::Engine::EijkPlus:
        return Method::EijkPlus;
      case verify::Engine::Smv:
        return Method::Smv;
      case verify::Engine::SisFsm:
        return Method::Sis;
    }
  }
  return std::nullopt;
}

namespace {

/// Build the one CacheBackend the service runs against, from the cache
/// policy group: remote when a server is named, file when a cache file is
/// bound, in-process otherwise.  With sharing off the backend is never
/// consulted, so the plain in-process one suffices.
std::unique_ptr<CacheBackend> make_backend(const ServiceOptions& opts) {
  const CachePolicy& c = opts.cache;
  if (c.share && !c.server.empty()) {
    RemoteBackendOptions ro;
    ro.server = c.server;
    ro.tenant = c.tenant;
    ro.connect_timeout_ms = c.remote_connect_timeout_ms;
    ro.io_timeout_ms = c.remote_io_timeout_ms;
    ro.backoff_ms = c.remote_backoff_ms;
    ro.backoff_cap_ms = c.remote_backoff_cap_ms;
    ro.pool = c.remote_pool;
    ro.batch = c.remote_batch;
    return std::make_unique<RemoteBackend>(std::move(ro));
  }
  if (c.share && !c.file.empty()) {
    return std::make_unique<FileBackend>(c.file, c.file_options);
  }
  return std::make_unique<InProcessBackend>();
}

}  // namespace

struct VerifyService::Impl {
  explicit Impl(ServiceOptions opts_)
      : opts(std::move(opts_)),
        pool(opts.jobs == 0 ? kernel::default_thread_count() : opts.jobs),
        backend(make_backend(opts)) {}

  JobResult run_job(const JobSpec& spec);

  ServiceOptions opts;
  kernel::ThreadPool pool;
  /// The shared obligation cache seam (service/cache_backend.h), keyed on
  /// interned goal terms (alpha-hashed): the retiming theorem for a
  /// (f, g, q) instantiation, and the engine verdict for a
  /// (h_a, q_a, h_b, q_b, engine, bounds) check.
  std::unique_ptr<CacheBackend> backend;

  std::mutex mu;
  std::vector<std::future<JobResult>> inflight;
  std::size_t jobs_total = 0;
  std::size_t failed_total = 0;
  double wall_total = 0.0;
  double cpu_total = 0.0;
  bool batch_open = false;
  Clock::time_point batch_t0;
  double batch_cpu0 = 0.0;
};

JobResult VerifyService::Impl::run_job(const JobSpec& spec) {
  JobResult r;
  r.circuit = spec.circuit;
  r.method = spec.method;
  r.tenant = spec.tenant.empty() ? opts.cache.tenant : spec.tenant;
  r.name = spec.name.empty()
               ? spec.circuit + "/" + method_name(spec.method)
               : spec.name;
  auto t0 = Clock::now();
  try {
    // Reject the method/spec mismatch before touching any files: the
    // diagnostic should name the real problem, not a side effect of it.
    if (spec.circuit.rfind("blif:", 0) == 0 && !engine_of(spec.method)) {
      throw ServiceError(std::string("method ") + method_name(spec.method) +
                         " needs an RTL circuit spec (a blif: pair carries "
                         "no retiming to prove)");
    }
    // Validate up front: a non-positive / non-finite timeout would both
    // misconfigure the engines and hit undefined behaviour in the
    // float-to-integer cast of the verdict-cache key.
    if (!(spec.timeout_sec > 0.0) || spec.timeout_sec > 1e6) {
      throw ServiceError("timeout must be in (0, 1e6] seconds");
    }
    Resolved rc = resolve_circuit(spec.circuit);
    verify::VerifyOptions vopts;
    vopts.timeout_sec = spec.timeout_sec;
    sim::SimOptions sim_opts;
    sim_opts.vectors = opts.sim.vectors;
    sim_opts.frames = opts.sim.frames;
    sim_opts.seed = opts.sim.seed;
    // Every engine run below goes through run_guarded with this policy:
    // the service-wide retry group, specialised by the job's own retry
    // budget and deadline.
    RetryPolicy policy = opts.retry;
    if (spec.max_retries >= 0) policy.max_retries = spec.max_retries;
    policy.deadline_sec =
        spec.deadline_ms > 0.0 ? spec.deadline_ms / 1000.0 : 0.0;

    if (rc.is_pair) {
      verify::Engine eng = *engine_of(spec.method);
      r.ff = rc.net_a.ff_count();
      r.gates = rc.net_a.gate_count();
      auto tv = Clock::now();
      if (opts.incremental &&
          rc.net_a.outputs().size() == rc.net_b.outputs().size() &&
          !rc.net_a.outputs().empty()) {
        // Decompose → lookup → prove → stitch.  Each output cone is an
        // independent obligation keyed on its own pair of canonical cone
        // hashes: an edit to one cone leaves every other cone's key — and
        // hence its cached verdict — untouched, so only the changed cones
        // reach an engine.  The cone obligations fan out over the same
        // pool the jobs run on (parallel_for nests; the job thread
        // participates).
        std::vector<verify::ConePair> pairs =
            verify::pair_cones(rc.net_a, rc.net_b);
        std::vector<verify::ConeVerdict> cones(pairs.size());
        std::vector<verify::ConeJob> cjobs(pairs.size());
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          cjobs[i] = {&pairs[i], eng, vopts, opts.sim.enabled, sim_opts};
          cones[i].output = pairs[i].output;
        }
        // Per-cone retry accounting, indexed so the parallel sections
        // never race on `r`; reduced into the job result after stitching.
        std::vector<int> cone_attempts(pairs.size(), 0);
        std::vector<double> cone_backoff(pairs.size(), 0.0);
        auto guarded_cone = [&](std::size_t i) {
          GuardedRun g = run_guarded(
              policy, vopts, [&](const verify::VerifyOptions& cur) {
                verify::ConeJob j = cjobs[i];
                j.opts = cur;
                return verify::check_cone(j);
              });
          cone_attempts[i] = g.attempts;
          cone_backoff[i] = g.backoff_ms;
          return g.result;
        };
        if (opts.cache.share && opts.batch_bdd) {
          // Phase A: build every cone key (parallel), then consult the
          // cache with ONE batched lookup — against a remote backend that
          // is a single LookupBatch frame for the whole decomposition —
          // and run the engine-free cheap tiers (identity, miter fold,
          // sim refutation) on the misses in parallel.  Phase B: the
          // surviving cones run together on the shared-pool batched BDD
          // kernel.  Publication happens last as ONE batched publish,
          // with lookup()/publish() pairing preserving the cache's
          // 1-miss/k-1-hit accounting per entry.
          std::vector<std::optional<verify::VerifyResult>> settled(
              pairs.size());
          std::vector<std::uint64_t> spent(pairs.size(), 0);
          // optional: Term has no default construction (every Term is a
          // real interned node).
          std::vector<std::optional<kernel::Term>> keys(pairs.size());
          kernel::parallel_for(
              pairs.size(),
              [&](std::size_t i) {
                keys[i] = cone_key(pairs[i].hash_a, pairs[i].hash_b, eng,
                                   spec.timeout_sec, vopts);
              },
              pool);
          std::vector<kernel::Term> flat_keys;
          flat_keys.reserve(pairs.size());
          for (const auto& k : keys) flat_keys.push_back(*k);
          std::vector<std::uint8_t> hit_bits;
          std::vector<std::optional<verify::VerifyResult>> cached =
              backend->lookup_verdicts(flat_keys, &hit_bits);
          kernel::parallel_for(
              pairs.size(),
              [&](std::size_t i) {
                cones[i].cache_hit = hit_bits[i] != 0;
                if (cached[i]) {
                  settled[i] = *cached[i];
                  return;
                }
                settled[i] = verify::check_cone_fast(cjobs[i], &spent[i]);
              },
              pool);
          std::vector<std::size_t> rest;
          std::vector<verify::CheckJob> engine_jobs;
          for (std::size_t i = 0; i < pairs.size(); ++i) {
            if (settled[i]) continue;
            rest.push_back(i);
            engine_jobs.push_back({&pairs[i].a, &pairs[i].b, eng, vopts});
          }
          std::vector<verify::VerifyResult> proved;
          try {
            if (FaultInjector::instance().should_fail(kFaultBatchPool)) {
              throw bdd::BddError("injected batched-pool failure");
            }
            proved = verify::check_batch(engine_jobs);
          } catch (const std::exception&) {
            // Degrade ladder: the shared-pool kernel failed wholesale, so
            // every surviving cone falls back to its own private manager
            // under the retry guard — slower, never a different verdict.
            proved.resize(engine_jobs.size());
            kernel::parallel_for(
                rest.size(),
                [&](std::size_t k) { proved[k] = guarded_cone(rest[k]); },
                pool);
          }
          for (std::size_t k = 0; k < rest.size(); ++k) {
            proved[k].sim_vectors = spent[rest[k]];
            settled[rest[k]] = proved[k];
          }
          // ONE batched publish of everything this job proved (cache
          // hits are excluded: their lookup already counted, and
          // re-publishing would turn the 1-miss/k-1-hit contract into
          // double counting).
          std::vector<VerdictPublish> pubs;
          std::vector<std::size_t> pub_idx;
          for (std::size_t i = 0; i < pairs.size(); ++i) {
            if (cones[i].cache_hit) {
              cones[i].result = *settled[i];
              continue;
            }
            pubs.push_back(
                {*keys[i], *settled[i], settled[i]->completed});
            pub_idx.push_back(i);
          }
          std::vector<std::pair<verify::VerifyResult, bool>> published =
              backend->publish_verdicts(std::move(pubs));
          for (std::size_t k = 0; k < pub_idx.size(); ++k) {
            cones[pub_idx[k]].result = std::move(published[k].first);
          }
        } else if (opts.batch_bdd) {
          // No cache to consult: the whole decomposition goes through the
          // batched fast-tiers + shared-pool kernel pipeline directly.
          std::vector<verify::VerifyResult> rs;
          try {
            if (FaultInjector::instance().should_fail(kFaultBatchPool)) {
              throw bdd::BddError("injected batched-pool failure");
            }
            rs = verify::check_cones_batched(cjobs);
          } catch (const std::exception&) {
            rs.resize(cjobs.size());
            kernel::parallel_for(
                pairs.size(), [&](std::size_t i) { rs[i] = guarded_cone(i); },
                pool);
          }
          for (std::size_t i = 0; i < pairs.size(); ++i) {
            cones[i].result = rs[i];
          }
        } else {
          kernel::parallel_for(
              pairs.size(),
              [&](std::size_t i) {
                verify::ConeVerdict& cv = cones[i];
                if (opts.cache.share) {
                  kernel::Term key = cone_key(pairs[i].hash_a,
                                              pairs[i].hash_b, eng,
                                              spec.timeout_sec, vopts);
                  cv.result = backend->get_or_prove_verdict(
                      key, [&] { return guarded_cone(i); },
                      [](const verify::VerifyResult& res) {
                        return res.completed;
                      },
                      &cv.cache_hit);
                } else {
                  cv.result = guarded_cone(i);
                }
              },
              pool);
        }
        verify::StitchedVerdict sv = verify::stitch_verdicts(cones);
        r.cones = sv.cones;
        r.cone_hits = sv.hits;
        r.cones_reproved = sv.reproved;
        r.counterexample = sv.counterexample;
        r.sim_refuted = sv.sim_refuted;
        r.sim_vectors = sv.sim_vectors;
        r.completed = sv.completed;
        r.equivalent = sv.equivalent;
        if (sv.completed) {
          r.verdict = sv.equivalent ? VerdictClass::Equiv
                                    : VerdictClass::Nonequiv;
        } else {
          // The job inherits the first unresolved cone's failure class.
          r.verdict = VerdictClass::Unknown;
          for (const verify::ConeVerdict& cv : cones) {
            if (!cv.result.completed) {
              r.verdict = classify_result(cv.result);
              break;
            }
          }
        }
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          r.attempts = std::max(r.attempts, cone_attempts[i]);
          r.backoff_ms += cone_backoff[i];
        }
        // "Cache hit" at job granularity = every cone came from cache.
        r.result_cache_hit = sv.reproved == 0;
        r.verify_sec = seconds_since(tv);
        r.ok = true;
        r.total_sec = seconds_since(t0);
        return r;
      }
      auto run_engine = [&](const verify::VerifyOptions& cur) {
        // Pre-filter inside the prove lambda: a sim refutation is an
        // engine-independent truth (it holds from every initial register
        // state), so caching it under the engine key is sound, and a
        // cache hit skips the simulation along with the engine.
        if (opts.sim.enabled) {
          sim::RefuteResult sr = sim::refute(rc.net_a, rc.net_b, sim_opts);
          if (sr.refuted) {
            verify::VerifyResult sv;
            sv.completed = true;
            sv.equivalent = false;
            sv.sim_refuted = true;
            sv.sim_vectors = sr.vectors;
            sv.counterexample = sr.cex.output;
            return sv;
          }
          verify::VerifyResult ev =
              verify::run_check({&rc.net_a, &rc.net_b, eng, cur});
          ev.sim_vectors = sr.vectors;
          return ev;
        }
        return verify::run_check({&rc.net_a, &rc.net_b, eng, cur});
      };
      auto guarded_engine = [&] {
        GuardedRun g = run_guarded(policy, vopts, run_engine);
        r.attempts = std::max(r.attempts, g.attempts);
        r.backoff_ms += g.backoff_ms;
        return g.result;
      };
      verify::VerifyResult v;
      if (opts.cache.share) {
        // Raw netlist pairs have no term-level goal, but they DO have a
        // structural identity: key the verdict on both structural netlist
        // hashes (io/blif.h — name-independent, so re-exports of the same
        // design hit too).  This is what lets BLIF-pair traffic profit
        // from a warm-started cache across service restarts.  Same
        // completed-only publication rule as the RTL path below.
        kernel::Term key = thy::mk_pair(
            thy::mk_numeral(kBlifKeyTag),
            thy::mk_pair(
                thy::mk_pair(thy::mk_numeral(io::structural_hash(rc.net_a)),
                             thy::mk_numeral(io::structural_hash(rc.net_b))),
                engine_bounds_term(eng, spec.timeout_sec, vopts)));
        v = backend->get_or_prove_verdict(
            key, guarded_engine,
            [](const verify::VerifyResult& res) { return res.completed; },
            &r.result_cache_hit);
      } else {
        v = guarded_engine();
      }
      r.verify_sec = seconds_since(tv);
      r.completed = v.completed;
      r.equivalent = v.equivalent;
      r.verdict = classify_result(v);
      r.sim_refuted = v.sim_refuted ? 1 : 0;
      r.sim_vectors = v.sim_vectors;
      r.counterexample = v.counterexample;
      r.ok = true;
      r.total_sec = seconds_since(t0);
      return r;
    }

    // The formal HASH synthesis step, shared across the whole service: the
    // goal term (f, (g, q)) determines the retiming theorem, so an
    // obligation that recurs — same circuit shape at the same width, from
    // any job — is proved once.  With sharing off, no goal term is built
    // at all (the uncached baseline should not pay for keys it never
    // uses).
    auto ts = Clock::now();
    std::optional<hash::CompiledCircuit> comp;
    kernel::Thm thm = [&] {
      if (!opts.cache.share) {
        return hash::formal_retime(rc.rtl, rc.cut).theorem;
      }
      comp = hash::compile(rc.rtl);
      hash::SplitCircuit split = hash::compile_split(rc.rtl, rc.cut);
      kernel::Term goal =
          thy::mk_pair(split.f, thy::mk_pair(split.g, comp->q));
      return backend->get_or_prove_theorem(
          goal,
          [&] { return hash::formal_retime(rc.rtl, rc.cut).theorem; },
          &r.theorem_cache_hit);
    }();
    r.synth_sec = seconds_since(ts);

    // Only the post-hoc checkers need the retimed netlist materialised;
    // Method::Hash jobs on a theorem hit stay netlist-free.
    auto tv = Clock::now();
    switch (spec.method) {
      case Method::Hash:
        // The theorem *is* the verdict (LCF discipline: it cannot exist
        // unless the retiming is correct).
        (void)thm;
        r.completed = true;
        r.equivalent = true;
        r.verdict = VerdictClass::Equiv;
        break;
      case Method::Match: {
        circuit::Rtl retimed = hash::conventional_retime(rc.rtl, rc.cut);
        verify::RetimeMatchResult m =
            verify::verify_retiming(rc.rtl, retimed, spec.seed);
        r.completed = true;
        r.equivalent = m.equivalent;
        r.verdict =
            m.equivalent ? VerdictClass::Equiv : VerdictClass::Nonequiv;
        break;
      }
      default: {
        circuit::Rtl retimed = hash::conventional_retime(rc.rtl, rc.cut);
        circuit::GateNetlist ga = circuit::bit_blast(rc.rtl);
        r.ff = ga.ff_count();
        r.gates = ga.gate_count();
        verify::Engine eng = *engine_of(spec.method);
        // The retimed side is only bit-blasted when the engine actually
        // runs — a verdict-cache hit skips it.
        auto run_engine = [&](const verify::VerifyOptions& cur) {
          circuit::GateNetlist gb = circuit::bit_blast(retimed);
          // Same pre-filter as the blif-pair path; on RTL jobs the pair
          // came out of the retiming kernel, so a refutation here would
          // flag a kernel bug — which is exactly why the fuzz leg runs it.
          if (opts.sim.enabled) {
            sim::RefuteResult sr = sim::refute(ga, gb, sim_opts);
            if (sr.refuted) {
              verify::VerifyResult sv;
              sv.completed = true;
              sv.equivalent = false;
              sv.sim_refuted = true;
              sv.sim_vectors = sr.vectors;
              sv.counterexample = sr.cex.output;
              return sv;
            }
            verify::VerifyResult ev =
                verify::run_check({&ga, &gb, eng, cur});
            ev.sim_vectors = sr.vectors;
            return ev;
          }
          return verify::run_check({&ga, &gb, eng, cur});
        };
        auto guarded_engine = [&] {
          GuardedRun g = run_guarded(policy, vopts, run_engine);
          r.attempts = std::max(r.attempts, g.attempts);
          r.backoff_ms += g.backoff_ms;
          return g.result;
        };
        verify::VerifyResult v;
        if (opts.cache.share) {
          // A *completed* engine verdict is a pure function of (both
          // compiled circuits, engine, resource bounds); key on exactly
          // that.  A run that blew its wall-clock/node/state budget is a
          // statement about this machine at this moment, so it is returned
          // uncached — a later identical job gets to retry.
          hash::CompiledCircuit compb = hash::compile(retimed);
          kernel::Term pair_goal = thy::mk_pair(
              comp->h,
              thy::mk_pair(comp->q, thy::mk_pair(compb.h, compb.q)));
          kernel::Term key = thy::mk_pair(
              pair_goal, engine_bounds_term(eng, spec.timeout_sec, vopts));
          v = backend->get_or_prove_verdict(
              key, guarded_engine,
              [](const verify::VerifyResult& res) { return res.completed; },
              &r.result_cache_hit);
        } else {
          v = guarded_engine();
        }
        r.completed = v.completed;
        r.equivalent = v.equivalent;
        r.verdict = classify_result(v);
        r.sim_refuted = v.sim_refuted ? 1 : 0;
        r.sim_vectors = v.sim_vectors;
        r.counterexample = v.counterexample;
        break;
      }
    }
    r.verify_sec = seconds_since(tv);
    r.ok = true;
  } catch (const ServiceError& e) {
    // A malformed spec can never be fixed by retrying.
    r.ok = false;
    r.error = e.what();
    r.verdict = VerdictClass::InvalidRequest;
  } catch (const verify::ConeError& e) {
    r.ok = false;
    r.error = e.what();
    r.verdict = VerdictClass::InvalidRequest;
  } catch (const io::IoError& e) {
    r.ok = false;
    r.error = e.what();
    r.verdict = VerdictClass::InvalidRequest;
  } catch (const std::exception& e) {
    // Failure isolation: a bad netlist, an illegal cut or an engine error
    // fails this job only; the batch continues.
    r.ok = false;
    r.error = e.what();
    r.verdict = classify_exception(e);
  }
  r.total_sec = seconds_since(t0);
  return r;
}

VerifyService::VerifyService(ServiceOptions opts)
    : impl_(std::make_unique<Impl>(opts)) {}

VerifyService::~VerifyService() {
  // Orphaned futures (submit without drain) must not outlive the pool.
  drain();
}

std::size_t VerifyService::submit(JobSpec spec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (!impl_->batch_open) {
    impl_->batch_open = true;
    impl_->batch_t0 = Clock::now();
    impl_->batch_cpu0 = cpu_seconds();
  }
  std::size_t index = impl_->inflight.size();
  Impl* impl = impl_.get();
  impl_->inflight.push_back(impl_->pool.async(
      [impl, job = std::move(spec)] { return impl->run_job(job); }));
  return index;
}

std::vector<JobResult> VerifyService::drain() {
  std::vector<std::future<JobResult>> pending;
  bool window_open = false;
  Clock::time_point window_t0{};
  double window_cpu0 = 0.0;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    pending = std::move(impl_->inflight);
    impl_->inflight.clear();
    // Snapshot and close the timing window atomically with taking the
    // futures: a submit() racing with the blocking waits below then opens
    // a fresh window instead of having its start time misattributed to
    // this batch.
    window_open = impl_->batch_open;
    window_t0 = impl_->batch_t0;
    window_cpu0 = impl_->batch_cpu0;
    impl_->batch_open = false;
  }
  std::vector<JobResult> results;
  results.reserve(pending.size());
  for (std::future<JobResult>& fut : pending) results.push_back(fut.get());
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->jobs_total += results.size();
    for (const JobResult& r : results) {
      if (!r.ok) ++impl_->failed_total;
    }
    if (window_open) {
      impl_->wall_total += seconds_since(window_t0);
      impl_->cpu_total += cpu_seconds() - window_cpu0;
    }
  }
  return results;
}

std::vector<JobResult> VerifyService::run_batch(
    const std::vector<JobSpec>& specs) {
  for (const JobSpec& spec : specs) submit(spec);
  return drain();
}

CacheLoadResult VerifyService::load_cache(const std::string& path) {
  return impl_->backend->warm_start(path);
}

void VerifyService::save_cache(const std::string& path) const {
  impl_->backend->persist(path);
}

JobResult VerifyService::run_one(const JobSpec& spec) {
  double cpu0 = cpu_seconds();
  JobResult r = impl_->run_job(spec);
  std::lock_guard<std::mutex> lock(impl_->mu);
  ++impl_->jobs_total;
  if (!r.ok) ++impl_->failed_total;
  impl_->wall_total += r.total_sec;
  impl_->cpu_total += cpu_seconds() - cpu0;
  return r;
}

JobResult VerifyService::run_scheduled(const JobSpec& spec) {
  JobResult r = impl_->run_job(spec);
  std::lock_guard<std::mutex> lock(impl_->mu);
  ++impl_->jobs_total;
  if (!r.ok) ++impl_->failed_total;
  return r;
}

void VerifyService::record_window(double wall_sec, double cpu_sec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->wall_total += wall_sec;
  impl_->cpu_total += cpu_sec;
}

void VerifyService::record_skipped(const JobResult& r) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ++impl_->jobs_total;
  if (!r.ok) ++impl_->failed_total;
}

ServiceStats VerifyService::stats() const {
  ServiceStats st;
  BackendStats bs = impl_->backend->stats();
  st.theorems = bs.theorems;
  st.results = bs.verdicts;
  st.backend = impl_->backend->name();
  st.remote_failures = bs.remote_failures;
  st.degraded_ops = bs.degraded_ops;
  st.remote_round_trips = bs.remote_round_trips;
  std::lock_guard<std::mutex> lock(impl_->mu);
  st.jobs = impl_->jobs_total;
  st.failed = impl_->failed_total;
  st.wall_sec = impl_->wall_total;
  st.cpu_sec = impl_->cpu_total;
  return st;
}

CacheBackend& VerifyService::cache_backend() { return *impl_->backend; }

const CacheBackend& VerifyService::cache_backend() const {
  return *impl_->backend;
}

}  // namespace eda::service
