#include "service/admission.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <ctime>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "kernel/parallel.h"

namespace eda::service {

namespace {

using Clock = std::chrono::steady_clock;

double cpu_seconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

struct AdmissionQueue::Impl {
  Impl(VerifyService& svc_, AdmissionOptions opts_)
      : svc(svc_), opts(opts_), paused(opts_.start_paused) {}

  struct Pending {
    JobSpec spec;
    std::size_t ticket = 0;
    Clock::time_point submitted;
  };

  /// One tenant's FIFO backlog at a priority level.
  struct TenantQueue {
    std::string tenant;
    std::deque<Pending> q;
  };

  /// One priority level: its tenants (in first-seen order) plus the
  /// weighted-round-robin dispatch state.  `cursor` is the tenant whose
  /// turn it is; `credits` is how many consecutive dispatches it has left
  /// this round (initialised from its weight when its turn starts).
  struct Level {
    std::vector<TenantQueue> tenants;
    std::size_t cursor = 0;
    unsigned credits = 0;

    std::size_t queued() const {
      std::size_t n = 0;
      for (const TenantQueue& tq : tenants) n += tq.q.size();
      return n;
    }
  };

  void worker_loop();
  void dispatch(Pending p);
  std::size_t queued_locked() const;
  unsigned weight_of(const std::string& tenant) const;
  Pending pop_locked(Level& lv);

  VerifyService& svc;
  AdmissionOptions opts;

  mutable std::mutex mu;
  std::condition_variable work_cv;   ///< workers: work available / resume
  std::condition_variable done_cv;   ///< drain: a job finished
  /// Per-priority levels, highest first: dispatch takes from the first
  /// non-empty level, weighted round-robin across its tenants, FIFO
  /// within a tenant — so a higher-priority admission overtakes without
  /// reordering anything already at its own level, and one tenant's flood
  /// delays but never starves its peers.
  std::map<int, Level, std::greater<int>> queues;
  std::vector<std::optional<JobResult>> results;  ///< indexed by ticket
  std::vector<std::size_t> dispatched;            ///< tickets, run order
  std::size_t completed = 0;
  bool paused = false;
  bool stopping = false;
  bool window_open = false;
  Clock::time_point window_t0;
  double window_cpu0 = 0.0;
  std::vector<std::thread> workers;
};

std::size_t AdmissionQueue::Impl::queued_locked() const {
  std::size_t n = 0;
  for (const auto& [prio, lv] : queues) n += lv.queued();
  return n;
}

unsigned AdmissionQueue::Impl::weight_of(const std::string& tenant) const {
  auto it = opts.tenant_weights.find(tenant);
  if (it == opts.tenant_weights.end()) return 1;
  return it->second == 0 ? 1 : it->second;  // a zero weight would starve
}

/// Weighted-round-robin pop from a non-empty level: the cursor tenant
/// keeps dispatching until its credits (= weight) for this round are
/// spent or its queue empties, then the turn passes on.  Empty tenant
/// queues are skipped without consuming a turn.
AdmissionQueue::Impl::Pending AdmissionQueue::Impl::pop_locked(Level& lv) {
  for (;;) {
    if (lv.cursor >= lv.tenants.size()) lv.cursor = 0;
    TenantQueue& tq = lv.tenants[lv.cursor];
    if (tq.q.empty()) {
      lv.credits = 0;
      ++lv.cursor;
      continue;
    }
    if (lv.credits == 0) lv.credits = weight_of(tq.tenant);
    Pending p = std::move(tq.q.front());
    tq.q.pop_front();
    if (--lv.credits == 0 || tq.q.empty()) {
      lv.credits = 0;
      ++lv.cursor;
    }
    return p;
  }
}

void AdmissionQueue::Impl::dispatch(Pending p) {
  JobResult r;
  if (p.spec.deadline_ms > 0.0) {
    double waited = ms_since(p.submitted);
    double remaining = p.spec.deadline_ms - waited;
    if (remaining <= 0.0) {
      // Expired in the queue: never reaches an engine.  ok stays true —
      // the service did exactly what the deadline asked of it.
      r.circuit = p.spec.circuit;
      r.method = p.spec.method;
      r.tenant = p.spec.tenant;
      r.name = p.spec.name.empty()
                   ? p.spec.circuit + "/" + method_name(p.spec.method)
                   : p.spec.name;
      r.ok = true;
      r.verdict = VerdictClass::DeadlineExpired;
      svc.record_skipped(r);
      std::lock_guard<std::mutex> lock(mu);
      results[p.ticket] = std::move(r);
      ++completed;
      done_cv.notify_all();
      return;
    }
    // Dispatched with time left: the engine budget (and the retry guard's
    // deadline) shrink to what remains, measured from NOW — run_job's
    // deadline clock starts when it starts.
    p.spec.deadline_ms = remaining;
    p.spec.timeout_sec = std::min(p.spec.timeout_sec, remaining / 1000.0);
  }
  try {
    r = svc.run_scheduled(p.spec);
  } catch (const std::exception& e) {
    // run_scheduled classifies everything itself; this is the last-ditch
    // net so a bug in the service layer cannot kill a dispatch stream.
    r.circuit = p.spec.circuit;
    r.method = p.spec.method;
    r.tenant = p.spec.tenant;
    r.name = p.spec.name;
    r.ok = false;
    r.error = e.what();
    r.verdict = VerdictClass::InternalError;
  }
  std::lock_guard<std::mutex> lock(mu);
  results[p.ticket] = std::move(r);
  ++completed;
  done_cv.notify_all();
}

void AdmissionQueue::Impl::worker_loop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu);
      work_cv.wait(lock, [&] {
        return stopping || (!paused && queued_locked() > 0);
      });
      if (stopping) return;
      for (auto& [prio, lv] : queues) {
        if (lv.queued() == 0) continue;
        p = pop_locked(lv);
        break;
      }
      dispatched.push_back(p.ticket);
    }
    dispatch(std::move(p));
  }
}

AdmissionQueue::AdmissionQueue(VerifyService& svc, AdmissionOptions opts)
    : impl_(std::make_unique<Impl>(svc, opts)) {
  unsigned streams = opts.streams == 0
                         ? kernel::default_thread_count()
                         : opts.streams;
  impl_->workers.reserve(streams);
  for (unsigned i = 0; i < streams; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] {
      impl->worker_loop();
    });
  }
}

AdmissionQueue::~AdmissionQueue() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) w.join();
}

Admission AdmissionQueue::try_submit(JobSpec spec) {
  Admission a;
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::size_t depth = impl_->queued_locked();
  a.queue_depth = depth;
  if (depth >= impl_->opts.max_depth) {
    // Structured backpressure: the client learns it was load, not its
    // request, and how deep the backlog stands.
    a.accepted = false;
    a.reason = "RETRY_LATER: admission queue full (depth " +
               std::to_string(depth) + "/" +
               std::to_string(impl_->opts.max_depth) +
               "); back off and resubmit";
    return a;
  }
  if (!impl_->window_open) {
    impl_->window_open = true;
    impl_->window_t0 = Clock::now();
    impl_->window_cpu0 = cpu_seconds();
  }
  a.accepted = true;
  a.ticket = impl_->results.size();
  a.queue_depth = depth + 1;
  Impl::Pending p;
  p.ticket = a.ticket;
  p.submitted = Clock::now();
  int priority = spec.priority;
  std::string tenant = spec.tenant;
  p.spec = std::move(spec);
  impl_->results.emplace_back(std::nullopt);
  Impl::Level& lv = impl_->queues[priority];
  Impl::TenantQueue* tq = nullptr;
  for (Impl::TenantQueue& cand : lv.tenants) {
    if (cand.tenant == tenant) {
      tq = &cand;
      break;
    }
  }
  if (tq == nullptr) {
    lv.tenants.push_back(Impl::TenantQueue{std::move(tenant), {}});
    tq = &lv.tenants.back();
  }
  tq->q.push_back(std::move(p));
  impl_->work_cv.notify_one();
  return a;
}

std::vector<JobResult> AdmissionQueue::drain() {
  resume();  // a paused queue can never finish a drain
  std::vector<JobResult> out;
  bool window_open = false;
  Clock::time_point window_t0{};
  double window_cpu0 = 0.0;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] {
      return impl_->completed == impl_->results.size() &&
             impl_->queued_locked() == 0;
    });
    out.reserve(impl_->results.size());
    for (std::optional<JobResult>& r : impl_->results) {
      out.push_back(std::move(*r));
    }
    // dispatched is deliberately kept: it is the queue's lifetime
    // dispatch log (tests assert the schedule after a drain).
    impl_->results.clear();
    impl_->completed = 0;
    window_open = impl_->window_open;
    window_t0 = impl_->window_t0;
    window_cpu0 = impl_->window_cpu0;
    impl_->window_open = false;
  }
  if (window_open) {
    impl_->svc.record_window(
        std::chrono::duration<double>(Clock::now() - window_t0).count(),
        cpu_seconds() - window_cpu0);
  }
  return out;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->queued_locked();
}

void AdmissionQueue::resume() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->paused = false;
  }
  impl_->work_cv.notify_all();
}

std::vector<std::size_t> AdmissionQueue::dispatch_order() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dispatched;
}

}  // namespace eda::service
