#pragma once

#include <string>
#include <string_view>

#include "kernel/error.h"
#include "kernel/goal_cache.h"
#include "kernel/serialize.h"
#include "kernel/thm.h"
#include "verify/common.h"

namespace eda::service {

/// Wire codec for one engine verdict, shared by the cache file and the
/// eda_cached remote protocol (service/remote_proto.h) so a verdict has
/// exactly one serialized shape.  decode throws kernel::SerializeError on
/// out-of-range fields.
void encode_verdict(kernel::Encoder& enc, const verify::VerifyResult& v);
verify::VerifyResult decode_verdict(kernel::Decoder& dec);

/// The shared obligation caches the service persists (see
/// verify_service.h for what the keys are).
using TheoremCache = kernel::GoalCache<kernel::Thm>;
using VerdictCache = kernel::GoalCache<verify::VerifyResult>;

/// Raised by PersistentCacheFile::save on I/O failure or when the cache
/// lock cannot be acquired before `lock_timeout_ms` (load never throws —
/// a cache file is an optimisation, so every load problem is a diagnosed
/// cold start instead).
class CacheFileError : public kernel::KernelError {
 public:
  explicit CacheFileError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// Outcome of a warm-start attempt.
struct CacheLoadResult {
  bool loaded = false;      ///< the file was read and admitted in full
  std::size_t theorems = 0; ///< theorem entries admitted
  std::size_t verdicts = 0; ///< verdict entries admitted
  std::string note;         ///< human diagnostic (why cold, or a summary)
};

/// Tunables for the save critical section.  The defaults suit production;
/// tests shrink them to exercise stale-lock recovery and contention
/// timeouts in milliseconds instead of tens of seconds.
struct CacheFileOptions {
  /// How long save() waits for the cache lock before throwing.
  int lock_timeout_ms = 10000;
  /// A lock file older than this is a crashed saver's leftover: save()
  /// breaks it and proceeds.
  int stale_lock_ms = 30000;
  /// Temp files older than this found by load() are orphans from crashed
  /// savers and are removed.
  int orphan_tmp_ms = 60000;
  /// Merge the on-disk entries into the snapshot before writing (see
  /// class comment).  Off means last-writer-wins whole-file replacement.
  bool merge_on_save = true;
};

/// Atomic, corruption-tolerant, multi-process persistence for the
/// service's goal caches.
///
/// save() takes a lock file (`path + ".lock"`, O_CREAT|O_EXCL, with
/// stale-lock breaking so a crashed saver cannot wedge the store), then
/// LOAD-MERGES the current on-disk entries into its own snapshot — live
/// entries win on key collision, every key survives — serialises the
/// union (kernel/serialize.h wire format: interned term DAGs written once
/// per node, versioned header, FNV-1a checksum) to a unique temp file,
/// fsyncs it, renames over `path` and fsyncs the directory.  N processes
/// sharing one theorem store therefore lose nothing to save races, and a
/// power cut mid-save leaves either the old file or the new one, never a
/// torn hybrid.
///
/// load() is the tolerant inverse: a missing, truncated, bit-flipped or
/// version-skewed file yields `loaded == false` with a diagnostic note and
/// admits ZERO entries — decoding stages into scratch caches and merges
/// only after the whole file validated, so corruption can never leave
/// partial state in a live service.  It also sweeps orphaned `*.tmp.*`
/// files left by crashed savers.
class PersistentCacheFile {
 public:
  explicit PersistentCacheFile(std::string path) : path_(std::move(path)) {}
  PersistentCacheFile(std::string path, CacheFileOptions opts)
      : path_(std::move(path)), opts_(opts) {}

  const std::string& path() const { return path_; }
  const CacheFileOptions& options() const { return opts_; }
  void set_options(const CacheFileOptions& opts) { opts_ = opts; }

  void save(const TheoremCache& theorems, const VerdictCache& verdicts)
      const;
  CacheLoadResult load(TheoremCache& theorems,
                       VerdictCache& verdicts) const;

  /// The in-memory halves of save/load, exposed for tests (and for anyone
  /// shipping a cache over something other than a filesystem).
  static std::string encode(const TheoremCache& theorems,
                            const VerdictCache& verdicts);
  static CacheLoadResult decode(std::string_view bytes,
                                TheoremCache& theorems,
                                VerdictCache& verdicts);

 private:
  std::string path_;
  CacheFileOptions opts_;
};

}  // namespace eda::service
