#pragma once

#include <string>
#include <string_view>

#include "kernel/error.h"
#include "kernel/goal_cache.h"
#include "kernel/thm.h"
#include "verify/common.h"

namespace eda::service {

/// The shared obligation caches the service persists (see
/// verify_service.h for what the keys are).
using TheoremCache = kernel::GoalCache<kernel::Thm>;
using VerdictCache = kernel::GoalCache<verify::VerifyResult>;

/// Raised by PersistentCacheFile::save on I/O failure (load never throws —
/// a cache file is an optimisation, so every load problem is a diagnosed
/// cold start instead).
class CacheFileError : public kernel::KernelError {
 public:
  explicit CacheFileError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// Outcome of a warm-start attempt.
struct CacheLoadResult {
  bool loaded = false;      ///< the file was read and admitted in full
  std::size_t theorems = 0; ///< theorem entries admitted
  std::size_t verdicts = 0; ///< verdict entries admitted
  std::string note;         ///< human diagnostic (why cold, or a summary)
};

/// Atomic, corruption-tolerant persistence for the service's goal caches.
///
/// save() serialises both caches (kernel/serialize.h wire format: interned
/// term DAGs written once per node, versioned header, FNV-1a checksum) to
/// `path + ".tmp.<n>"` and renames over `path`, so readers only ever see a
/// complete file — concurrent savers each write their own temp file and
/// the last rename wins.
///
/// load() is the tolerant inverse: a missing, truncated, bit-flipped or
/// version-skewed file yields `loaded == false` with a diagnostic note and
/// admits ZERO entries — decoding stages into scratch caches and merges
/// only after the whole file validated, so corruption can never leave
/// partial state in a live service.
class PersistentCacheFile {
 public:
  explicit PersistentCacheFile(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }

  void save(const TheoremCache& theorems, const VerdictCache& verdicts)
      const;
  CacheLoadResult load(TheoremCache& theorems,
                       VerdictCache& verdicts) const;

  /// The in-memory halves of save/load, exposed for tests (and for anyone
  /// shipping a cache over something other than a filesystem).
  static std::string encode(const TheoremCache& theorems,
                            const VerdictCache& verdicts);
  static CacheLoadResult decode(std::string_view bytes,
                                TheoremCache& theorems,
                                VerdictCache& verdicts);

 private:
  std::string path_;
};

}  // namespace eda::service
