#pragma once

#include <functional>
#include <string>

#include "verify/common.h"

namespace eda::service {

/// The service's classified verdict taxonomy: what a client is told about
/// its job, honest about WHY when the answer is not EQUIV/NONEQUIV.  The
/// split drives retry policy (a blown budget is worth retrying bigger; a
/// malformed spec never is) and the service front's exit status.
///
///   EQUIV / NONEQUIV      completed answers (NONEQUIV is an answer, not a
///                         failure — it carries a counterexample)
///   TIMEOUT               wall-clock budget exhausted        (retryable)
///   RESOURCE_EXHAUSTED    BDD pool / state table / memory    (retryable)
///   INTERNAL_ERROR        unexpected exception mid-proof     (retryable)
///   DEADLINE_EXPIRED      admission deadline passed before the job ran
///   RETRY_LATER           rejected at admission (backpressure); resubmit
///   INVALID_REQUEST       malformed spec/files; retrying cannot help
///   UNKNOWN               no classified evidence either way
enum class VerdictClass {
  Unknown = 0,
  Equiv,
  Nonequiv,
  Timeout,
  ResourceExhausted,
  InternalError,
  DeadlineExpired,
  RetryLater,
  InvalidRequest,
};

/// Wire/JSON spelling: "EQUIV", "TIMEOUT", "RETRY_LATER", ...
const char* verdict_class_name(VerdictClass v);

/// Everything that is not a completed EQUIV/NONEQUIV answer.
bool verdict_is_failure(VerdictClass v);

/// Failures a retry (possibly with a bigger budget) could fix: TIMEOUT,
/// RESOURCE_EXHAUSTED, INTERNAL_ERROR, RETRY_LATER.
bool verdict_is_retryable(VerdictClass v);

/// Classify a finished engine run: completed results map to
/// EQUIV/NONEQUIV, incomplete ones follow the engine's recorded
/// FailureKind (UNKNOWN when the engine predates the taxonomy and
/// recorded nothing).
VerdictClass classify_result(const verify::VerifyResult& r);

/// Classify an exception that escaped an engine run: BddError and
/// bad_alloc are resource exhaustion, anything else is an internal error.
VerdictClass classify_exception(const std::exception& e);

/// Retry-with-escalating-budget policy for guarded engine runs.
struct RetryPolicy {
  /// Extra attempts after the first (so max_retries+1 runs total).
  int max_retries = 2;
  /// Capped exponential backoff between attempts: the k-th retry waits
  /// min(backoff_ms * 2^(k-1), backoff_cap_ms).
  double backoff_ms = 25.0;
  double backoff_cap_ms = 1000.0;
  /// Budget multiplier per retry: TIMEOUT escalates the wall clock,
  /// RESOURCE_EXHAUSTED escalates node/state limits (and the wall clock —
  /// a bigger pool needs longer to fill).
  double escalation = 2.0;
  /// Wall-clock budget for the WHOLE guarded run, retries and backoff
  /// included (0 = none).  Escalated per-attempt timeouts are capped to
  /// what remains, and no retry starts past the deadline.
  double deadline_sec = 0.0;
  /// Tests disable the real sleep and assert on the accounted backoff.
  bool really_sleep = true;
};

/// The k-th retry's backoff in milliseconds (k >= 1): monotone
/// non-decreasing, capped at backoff_cap_ms.
double retry_backoff_ms(const RetryPolicy& policy, int retry);

/// Outcome of a guarded run: the last attempt's result plus the retry
/// accounting the service reports per job.
struct GuardedRun {
  verify::VerifyResult result;
  VerdictClass verdict = VerdictClass::Unknown;
  int attempts = 0;        ///< attempts actually made (1 on first success)
  double backoff_ms = 0.0; ///< total backoff accounted between attempts
  std::string error;       ///< last failure diagnostic (empty on success)
};

/// Run `attempt(opts)` under the service's resource guard: exceptions are
/// caught and classified (never propagate — one pathological obligation
/// must not poison its batch), retryable failures re-run with escalated
/// budgets and capped exponential backoff, and the fault-injection sites
/// `worker`, `alloc` and `engine_bdd` fire here so the chaos schedule
/// exercises the exact recovery ladder production would run.
GuardedRun run_guarded(
    const RetryPolicy& policy, const verify::VerifyOptions& opts,
    const std::function<verify::VerifyResult(const verify::VerifyOptions&)>&
        attempt);

}  // namespace eda::service
