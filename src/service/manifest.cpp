#include "service/manifest.h"

#include <cstdio>
#include <istream>
#include <sstream>

#include "service/spec_util.h"

namespace eda::service {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

[[noreturn]] void manifest_error(int lineno, const std::string& what) {
  throw ServiceError("manifest line " + std::to_string(lineno) + ": " +
                     what);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

void append_cache_json(std::string& out, const char* label,
                       const kernel::GoalCacheStats& st) {
  out += "  \"";
  out += label;
  out += "\": {\"hits\": " + std::to_string(st.hits) +
         ", \"misses\": " + std::to_string(st.misses) +
         ", \"entries\": " + std::to_string(st.entries) +
         ", \"hit_rate\": " + fmt_double(st.hit_rate()) + "},\n";
}

}  // namespace

std::vector<JobSpec> parse_manifest(std::istream& in) {
  std::vector<JobSpec> specs;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // A comment starts at a '#' that opens the line or follows whitespace;
    // a '#' embedded in a token survives (sweep-generated job names look
    // like fig2:4/hash#0).
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' &&
          (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) {
        line.erase(i);
        break;
      }
    }
    std::vector<std::string> toks = tokenize(line);
    if (toks.empty()) continue;
    if (toks.size() < 2) {
      manifest_error(lineno, "expected '<circuit> <method> [key=value ...]'");
    }
    JobSpec spec;
    spec.circuit = toks[0];
    std::optional<Method> method = parse_method(toks[1]);
    if (!method) manifest_error(lineno, "unknown method '" + toks[1] + "'");
    spec.method = *method;
    for (std::size_t i = 2; i < toks.size(); ++i) {
      std::size_t eq = toks[i].find('=');
      if (eq == std::string::npos) {
        manifest_error(lineno, "expected key=value, got '" + toks[i] + "'");
      }
      std::string key = toks[i].substr(0, eq);
      std::string value = toks[i].substr(eq + 1);
      // Strict parsing: the whole token must be consumed (a typo like
      // `timeout=1O` must not silently become 1.0) and seeds must fit
      // uint32 without wrapping.
      try {
        std::size_t used = 0;
        if (key == "timeout") {
          spec.timeout_sec = detail::parse_positive_double(
              "manifest line " + std::to_string(lineno) + ": timeout",
              value);
        } else if (key == "seed") {
          unsigned long seed = std::stoul(value, &used);
          if (used != value.size() || value[0] == '-' ||
              seed > 0xffffffffUL) {
            throw std::invalid_argument(value);
          }
          spec.seed = static_cast<std::uint32_t>(seed);
        } else if (key == "name") {
          spec.name = value;
        } else if (key == "tenant") {
          spec.tenant = value;
        } else if (key == "priority") {
          int prio = std::stoi(value, &used);
          if (used != value.size()) throw std::invalid_argument(value);
          spec.priority = prio;
        } else if (key == "deadline_ms") {
          spec.deadline_ms = detail::parse_positive_double(
              "manifest line " + std::to_string(lineno) + ": deadline_ms",
              value);
        } else if (key == "max_retries") {
          int retries = std::stoi(value, &used);
          if (used != value.size() || retries < 0 || retries > 100) {
            throw std::invalid_argument(value);
          }
          spec.max_retries = retries;
        } else {
          manifest_error(lineno, "unknown key '" + key + "'");
        }
      } catch (const ServiceError&) {
        throw;
      } catch (const std::exception&) {
        manifest_error(lineno, "bad value for '" + key + "'");
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::vector<JobSpec> parse_manifest_string(const std::string& text) {
  std::istringstream in(text);
  return parse_manifest(in);
}

std::string results_to_json(const std::vector<JobResult>& results,
                            const ServiceStats& stats, unsigned threads) {
  std::string out = "{\n";
  out += "  \"service\": \"eda_service\",\n";
  out += "  \"jobs\": " + std::to_string(stats.jobs) + ",\n";
  out += "  \"failed\": " + std::to_string(stats.failed) + ",\n";
  out += "  \"threads\": " + std::to_string(threads) + ",\n";
  out += "  \"wall_sec\": " + fmt_double(stats.wall_sec) + ",\n";
  out += "  \"cpu_sec\": " + fmt_double(stats.cpu_sec) + ",\n";
  out += "  \"backend\": \"" + json_escape(stats.backend) + "\",\n";
  out += "  \"remote_failures\": " + std::to_string(stats.remote_failures) +
         ",\n";
  out += "  \"degraded_ops\": " + std::to_string(stats.degraded_ops) + ",\n";
  out += "  \"remote_round_trips\": " +
         std::to_string(stats.remote_round_trips) + ",\n";
  append_cache_json(out, "theorem_cache", stats.theorems);
  append_cache_json(out, "result_cache", stats.results);
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JobResult& r = results[i];
    out += "    {\"name\": \"" + json_escape(r.name) + "\", ";
    out += "\"circuit\": \"" + json_escape(r.circuit) + "\", ";
    out += "\"tenant\": \"" + json_escape(r.tenant) + "\", ";
    out += "\"method\": \"" + std::string(method_name(r.method)) + "\", ";
    out += "\"ok\": " + std::string(r.ok ? "true" : "false") + ", ";
    out += "\"completed\": " + std::string(r.completed ? "true" : "false") +
           ", ";
    out += "\"equivalent\": " +
           std::string(r.equivalent ? "true" : "false") + ", ";
    out += "\"ff\": " + std::to_string(r.ff) + ", ";
    out += "\"gates\": " + std::to_string(r.gates) + ", ";
    out += "\"synth_sec\": " + fmt_double(r.synth_sec) + ", ";
    out += "\"verify_sec\": " + fmt_double(r.verify_sec) + ", ";
    out += "\"total_sec\": " + fmt_double(r.total_sec) + ", ";
    out += "\"theorem_cache_hit\": " +
           std::string(r.theorem_cache_hit ? "true" : "false") + ", ";
    out += "\"result_cache_hit\": " +
           std::string(r.result_cache_hit ? "true" : "false") + ", ";
    out += "\"cones\": " + std::to_string(r.cones) + ", ";
    out += "\"cone_hits\": " + std::to_string(r.cone_hits) + ", ";
    out += "\"cones_reproved\": " + std::to_string(r.cones_reproved) + ", ";
    out += "\"sim_refuted\": " + std::to_string(r.sim_refuted) + ", ";
    out += "\"sim_vectors\": " + std::to_string(r.sim_vectors) + ", ";
    out += "\"verdict\": \"" +
           std::string(verdict_class_name(r.verdict)) + "\", ";
    out += "\"attempts\": " + std::to_string(r.attempts) + ", ";
    out += "\"backoff_ms\": " + fmt_double(r.backoff_ms) + ", ";
    out += "\"counterexample\": \"" + json_escape(r.counterexample) + "\", ";
    out += "\"error\": \"" + json_escape(r.error) + "\"}";
    out += (i + 1 < results.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace eda::service
