#pragma once

#include <string>
#include <vector>

#include "service/verify_service.h"

namespace eda::service {

/// A batched table1/table2-style parameter sweep, expressed as a grid and
/// expanded to service jobs: every (width, depth, method) cell, `copies`
/// times.  Depth 1 cells are the paper's table-I circuit (`fig2:w`); deeper
/// cells use the pipelined variant (`fig2deep:w:d`), whose obligations grow
/// with both axes.  Copies > 1 model the production traffic shape — the
/// same netlist resubmitted by many clients — and are what the shared
/// theorem cache amortises.
struct SweepGrid {
  std::vector<int> widths{4, 8};
  std::vector<int> depths{1};
  std::vector<Method> methods{Method::Hash};
  int copies = 1;
  double timeout_sec = 5.0;
};

/// Expand the grid in row-major order (width outermost, copy innermost);
/// job names are `<circuit>/<method>#<copy>`.
std::vector<JobSpec> make_sweep(const SweepGrid& grid);

/// Parse a CLI sweep spec: ';'-separated `key=value` fields with
/// comma-separated values, e.g.
///
///   "widths=2,4,8;depths=1,2;methods=hash,eijk;copies=3;timeout=5"
///
/// Unset fields keep the SweepGrid defaults.  Throws ServiceError on
/// unknown keys/methods or unparsable numbers.
SweepGrid parse_sweep_spec(const std::string& spec);

}  // namespace eda::service
