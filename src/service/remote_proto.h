#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kernel/error.h"

namespace eda::service {

/// Raised by the remote-cache transport helpers on address malformation or
/// unrecoverable socket setup failures (bind, listen).  Per-request I/O
/// errors are NOT exceptions — the client degrades to its in-process
/// fallback instead (see remote_backend.h).
class RemoteCacheError : public kernel::KernelError {
 public:
  explicit RemoteCacheError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// eda_cached wire protocol version.  Every request and response payload
/// opens with this u32; a daemon refuses skewed clients with a
/// STATUS_ERROR reply (a cache is regenerable, so skew handling is
/// "degrade", never migration).  The payload itself rides inside the PR 5
/// kernel container (magic, kSerializeVersion, FNV-1a checksum), so the
/// transport inherits the serializer's corruption detection wholesale.
inline constexpr std::uint32_t kRemoteProtoVersion = 1;

/// Request opcodes.  All requests carry (version, opcode, tenant) followed
/// by the op-specific body; all responses carry (version, status) followed
/// by the op-specific body.
enum class RemoteOp : std::uint8_t {
  Ping = 0,           ///< -> Ok (liveness / version handshake)
  LookupThm = 1,      ///< term(goal) -> Ok thm | NotFound
  PublishThm = 2,     ///< term(goal), thm -> Ok u8(inserted)
  LookupVerdict = 3,  ///< term(key) -> Ok verdict | NotFound
  PublishVerdict = 4, ///< term(key), verdict -> Ok u8(inserted)
  Stats = 5,          ///< -> Ok u32(shards), u64 x4 (entries/lookups/hits),
                      ///<    u64(tenants seen)
  Snapshot = 6,       ///< -> Ok str(PersistentCacheFile::encode blob)
};

enum class RemoteStatus : std::uint8_t {
  Ok = 0,
  NotFound = 1,
  Error = 2,  ///< body: str(diagnostic)
};

/// A parsed --cache-server / --socket / --listen address:
///   unix:/path/to.sock   Unix domain socket (also a bare path with a '/')
///   host:port            TCP (numeric IPv4 or "localhost")
struct RemoteAddress {
  bool is_unix = false;
  std::string path;        ///< unix socket path
  std::string host;        ///< TCP host
  int port = 0;            ///< TCP port
  std::string display;     ///< canonical spelling for diagnostics
};

/// Parse an address spec; throws RemoteCacheError on malformation.
RemoteAddress parse_remote_address(const std::string& spec);

/// Length-prefixed framing over a connected socket: u32 little-endian
/// payload length, then the payload bytes (an Encoder::finish() container).
/// Both return false on any short read/write, EOF or oversized frame —
/// the caller treats the connection as dead.  Writes suppress SIGPIPE.
bool write_frame(int fd, const std::string& payload);
bool read_frame(int fd, std::string& payload, std::size_t max_bytes);

/// Frames beyond this are protocol violations (or a desynced stream) on
/// the request path; snapshot responses size the limit to the store.
inline constexpr std::size_t kMaxRequestFrame = 64u << 20;
inline constexpr std::size_t kMaxResponseFrame = 256u << 20;

/// Connect a client socket (with timeout, in ms) to `addr`; returns the fd
/// or -1.  The fd has send/receive timeouts of `io_timeout_ms` applied so
/// a wedged daemon degrades the client instead of hanging it.
int connect_remote(const RemoteAddress& addr, int connect_timeout_ms,
                   int io_timeout_ms);

/// Bind + listen on `addr` (unlinking a stale unix socket file first);
/// returns the listening fd or throws RemoteCacheError.  For TCP with
/// port 0, `bound_port` receives the kernel-chosen port.
int listen_remote(const RemoteAddress& addr, int backlog, int* bound_port);

}  // namespace eda::service
