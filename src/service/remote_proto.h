#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kernel/error.h"

namespace eda::service {

/// Raised by the remote-cache transport helpers on address malformation or
/// unrecoverable socket setup failures (bind, listen).  Per-request I/O
/// errors are NOT exceptions — the client degrades to its in-process
/// fallback instead (see remote_backend.h).
class RemoteCacheError : public kernel::KernelError {
 public:
  explicit RemoteCacheError(const std::string& what)
      : kernel::KernelError(what) {}
};

/// eda_cached wire protocol version.  Every request and response payload
/// opens with a u32 version; a daemon refuses versions above its own with
/// a STATUS_ERROR reply (a cache is regenerable, so skew handling is
/// "degrade", never migration).  The payload itself rides inside the PR 5
/// kernel container (magic, kSerializeVersion, FNV-1a checksum), so the
/// transport inherits the serializer's corruption detection wholesale.
///
/// v1  per-entry ops (Ping..Snapshot below).
/// v2  adds LookupBatch/PublishBatch — N theorem/verdict entries per
///     frame, one round trip for a whole cone sweep.
///
/// Negotiation happens on Ping: a client pings at version 1 (every daemon
/// answers it) and a v2+ daemon appends its own max version to the Ping
/// reply body, which v1 clients never read.  The client then batches iff
/// min(client, daemon) >= 2.  Per-entry requests stay stamped version 1 —
/// their bodies are identical in both versions, so a v2 client is
/// wire-indistinguishable from a v1 client until it sends a batch frame.
/// Replies echo the request's version; error replies for undecodable
/// requests use version 1 (parseable by every client).
inline constexpr std::uint32_t kRemoteProtoVersion = 2;
inline constexpr std::uint32_t kRemoteProtoMinVersion = 1;
/// First version carrying the batch opcodes.
inline constexpr std::uint32_t kRemoteProtoBatchVersion = 2;

/// Request opcodes.  All requests carry (version, opcode, tenant) followed
/// by the op-specific body; all responses carry (version, status) followed
/// by the op-specific body.
enum class RemoteOp : std::uint8_t {
  Ping = 0,           ///< -> Ok [u32(daemon max version), v2+ daemons]
  LookupThm = 1,      ///< term(goal) -> Ok thm | NotFound
  PublishThm = 2,     ///< term(goal), thm -> Ok u8(inserted)
  LookupVerdict = 3,  ///< term(key) -> Ok verdict | NotFound
  PublishVerdict = 4, ///< term(key), verdict -> Ok u8(inserted)
  Stats = 5,          ///< -> Ok u32(shards), u64 x4 (entries/lookups/hits),
                      ///<    u64(tenants seen)
  Snapshot = 6,       ///< -> Ok str(PersistentCacheFile::encode blob)
  /// v2.  Body: u32 nt, nt x term(goal), u32 nv, nv x term(key).
  /// Reply: Ok, u32 nt, nt x (u8 present [, thm]),
  ///            u32 nv, nv x (u8 present [, verdict]).
  LookupBatch = 7,
  /// v2.  Body: u32 nt, nt x (term(goal), thm),
  ///            u32 nv, nv x (term(key), verdict).
  /// Reply: Ok, u32 nt, nt x u8(inserted), u32 nv, nv x u8(inserted) —
  /// per-entry inserted bits, so batched publication keeps the GoalCache
  /// 1-miss/k-1-hit contract observable end to end.
  PublishBatch = 8,
};

enum class RemoteStatus : std::uint8_t {
  Ok = 0,
  NotFound = 1,
  Error = 2,  ///< body: str(diagnostic)
};

/// A parsed --cache-server / --socket / --listen address:
///   unix:/path/to.sock   Unix domain socket (also a bare path with a '/')
///   host:port            TCP (numeric IPv4 or "localhost")
struct RemoteAddress {
  bool is_unix = false;
  std::string path;        ///< unix socket path
  std::string host;        ///< TCP host
  int port = 0;            ///< TCP port
  std::string display;     ///< canonical spelling for diagnostics
};

/// Parse an address spec; throws RemoteCacheError on malformation.
RemoteAddress parse_remote_address(const std::string& spec);

/// Length-prefixed framing over a connected socket: u32 little-endian
/// payload length, then the payload bytes (an Encoder::finish() container).
/// Both return false on any short read/write, EOF or oversized frame —
/// the caller treats the connection as dead.  Writes suppress SIGPIPE.
bool write_frame(int fd, const std::string& payload);
bool read_frame(int fd, std::string& payload, std::size_t max_bytes);

/// Fault-injection helper (kFaultRemoteStall): write the length header and
/// only the first half of the payload, then return — the stream is now
/// desynchronized mid-frame, exactly like a peer wedging or dying between
/// send()s.  The caller must treat the connection as dead afterwards.
bool write_frame_wedged(int fd, const std::string& payload);

/// Frames beyond this are protocol violations (or a desynced stream) on
/// the request path; snapshot responses size the limit to the store.
inline constexpr std::size_t kMaxRequestFrame = 64u << 20;
inline constexpr std::size_t kMaxResponseFrame = 256u << 20;

/// Connect a client socket (with timeout, in ms) to `addr`; returns the fd
/// or -1.  The fd has send/receive timeouts of `io_timeout_ms` applied so
/// a wedged daemon degrades the client instead of hanging it.
int connect_remote(const RemoteAddress& addr, int connect_timeout_ms,
                   int io_timeout_ms);

/// Bind + listen on `addr`; returns the listening fd or throws
/// RemoteCacheError.  A stale unix socket file (daemon died uncleanly,
/// nobody listening) is probe-connected and unlinked only when dead, so a
/// restart never hits EADDRINUSE — and never steals a LIVE daemon's path.
/// For TCP with port 0, `bound_port` receives the kernel-chosen port.
int listen_remote(const RemoteAddress& addr, int backlog, int* bound_port);

}  // namespace eda::service
