#include "service/cache_backend.h"

namespace eda::service {

std::vector<std::optional<verify::VerifyResult>>
CacheBackend::lookup_verdicts(const std::vector<kernel::Term>& keys,
                              std::vector<std::uint8_t>* was_hit) {
  std::vector<std::optional<verify::VerifyResult>> out;
  out.reserve(keys.size());
  if (was_hit != nullptr) was_hit->assign(keys.size(), 0);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    bool hit = false;
    out.push_back(lookup_verdict(keys[i], &hit));
    if (was_hit != nullptr) (*was_hit)[i] = hit ? 1 : 0;
  }
  return out;
}

std::vector<std::pair<verify::VerifyResult, bool>>
CacheBackend::publish_verdicts(std::vector<VerdictPublish> entries) {
  std::vector<std::pair<verify::VerifyResult, bool>> out;
  out.reserve(entries.size());
  for (VerdictPublish& e : entries) {
    out.push_back(publish_verdict(e.key, std::move(e.value), e.cacheable));
  }
  return out;
}

std::optional<kernel::Thm> InProcessBackend::lookup_theorem(
    const kernel::Term& goal, bool* was_hit) {
  return theorems_.lookup(goal, was_hit);
}

std::pair<kernel::Thm, bool> InProcessBackend::publish_theorem(
    const kernel::Term& goal, kernel::Thm thm) {
  bool inserted = false;
  kernel::Thm canonical = theorems_.publish(goal, std::move(thm),
                                            /*cacheable=*/true, &inserted);
  return {std::move(canonical), inserted};
}

std::optional<verify::VerifyResult> InProcessBackend::lookup_verdict(
    const kernel::Term& key, bool* was_hit) {
  return verdicts_.lookup(key, was_hit);
}

std::pair<verify::VerifyResult, bool> InProcessBackend::publish_verdict(
    const kernel::Term& key, verify::VerifyResult v, bool cacheable) {
  bool inserted = false;
  verify::VerifyResult canonical =
      verdicts_.publish(key, std::move(v), cacheable, &inserted);
  return {std::move(canonical), inserted};
}

BackendStats InProcessBackend::stats() const {
  BackendStats st;
  st.theorems = theorems_.stats();
  st.verdicts = verdicts_.stats();
  return st;
}

CacheLoadResult InProcessBackend::warm_start(const std::string& path) {
  return PersistentCacheFile(path).load(theorems_, verdicts_);
}

void InProcessBackend::persist(const std::string& path) const {
  PersistentCacheFile(path).save(theorems_, verdicts_);
}

CacheLoadResult FileBackend::warm_start(const std::string& path) {
  return PersistentCacheFile(path, opts_).load(theorems(), verdicts());
}

void FileBackend::persist(const std::string& path) const {
  PersistentCacheFile(path, opts_).save(theorems(), verdicts());
}

}  // namespace eda::service
