#include "service/cache_backend.h"

namespace eda::service {

std::optional<kernel::Thm> InProcessBackend::lookup_theorem(
    const kernel::Term& goal, bool* was_hit) {
  return theorems_.lookup(goal, was_hit);
}

std::pair<kernel::Thm, bool> InProcessBackend::publish_theorem(
    const kernel::Term& goal, kernel::Thm thm) {
  bool inserted = false;
  kernel::Thm canonical = theorems_.publish(goal, std::move(thm),
                                            /*cacheable=*/true, &inserted);
  return {std::move(canonical), inserted};
}

std::optional<verify::VerifyResult> InProcessBackend::lookup_verdict(
    const kernel::Term& key, bool* was_hit) {
  return verdicts_.lookup(key, was_hit);
}

std::pair<verify::VerifyResult, bool> InProcessBackend::publish_verdict(
    const kernel::Term& key, verify::VerifyResult v, bool cacheable) {
  bool inserted = false;
  verify::VerifyResult canonical =
      verdicts_.publish(key, std::move(v), cacheable, &inserted);
  return {std::move(canonical), inserted};
}

BackendStats InProcessBackend::stats() const {
  BackendStats st;
  st.theorems = theorems_.stats();
  st.verdicts = verdicts_.stats();
  return st;
}

CacheLoadResult InProcessBackend::warm_start(const std::string& path) {
  return PersistentCacheFile(path).load(theorems_, verdicts_);
}

void InProcessBackend::persist(const std::string& path) const {
  PersistentCacheFile(path).save(theorems_, verdicts_);
}

CacheLoadResult FileBackend::warm_start(const std::string& path) {
  return PersistentCacheFile(path, opts_).load(theorems(), verdicts());
}

void FileBackend::persist(const std::string& path) const {
  PersistentCacheFile(path, opts_).save(theorems(), verdicts());
}

}  // namespace eda::service
