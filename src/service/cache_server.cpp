#include "service/cache_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <list>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kernel/serialize.h"
#include "kernel/shard.h"

namespace eda::service {

namespace {

/// One store shard: the same GoalCache pair a VerifyService holds, so the
/// daemon inherits the lock striping, snapshot consistency and counter
/// contract the in-process tier already proved out.
struct StoreShard {
  TheoremCache theorems;
  VerdictCache verdicts;
};

}  // namespace

struct CacheServer::Impl {
  explicit Impl(CacheServerOptions opts_) : opts(std::move(opts_)) {
    if (opts.shards == 0) opts.shards = 1;
    opts.max_proto_version =
        std::clamp(opts.max_proto_version, kRemoteProtoMinVersion,
                   kRemoteProtoVersion);
    shards.reserve(opts.shards);
    for (std::size_t i = 0; i < opts.shards; ++i) {
      shards.push_back(std::make_unique<StoreShard>());
    }
  }

  StoreShard& shard_for(const kernel::Term& key) {
    return *shards[kernel::shard_index_of(key.hash(), shards.size())];
  }

  void accept_loop();
  void handle_connection(int fd);
  void snapshot_loop();
  std::string handle_request(const std::string& request);
  void do_snapshot() const;
  void reap_finished();

  CacheServerOptions opts;
  RemoteAddress addr;
  int listen_fd = -1;
  int bound_port = 0;

  std::vector<std::unique_ptr<StoreShard>> shards;

  std::atomic<bool> stopping{false};
  bool started = false;

  std::atomic<std::uint64_t> lookups{0};
  std::atomic<std::uint64_t> lookup_hits{0};
  std::atomic<std::uint64_t> publishes{0};
  std::atomic<std::uint64_t> connections{0};
  std::atomic<std::uint64_t> bad_requests{0};
  std::atomic<std::uint64_t> batch_frames{0};

  mutable std::mutex tenants_mu;
  std::unordered_set<std::string> tenants;

  /// One per connection.  The handler thread sets `done` as its last act;
  /// the accept loop joins and erases done handlers on every iteration, so
  /// a daemon serving short-lived clients never accumulates dead joinable
  /// threads (only stop() joins the still-live ones).
  struct Handler {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  mutable std::mutex conns_mu;
  std::vector<int> conn_fds;
  std::list<std::unique_ptr<Handler>> handlers;

  std::thread accepter;
  std::thread snapshotter;
  std::mutex snap_mu;
  std::condition_variable snap_cv;
};

std::string CacheServer::Impl::handle_request(const std::string& request) {
  kernel::Encoder reply;
  try {
    kernel::Decoder dec(request);
    std::uint32_t version = dec.u32();
    // Replies echo the request's version so v1 clients keep parsing a v2
    // daemon's answers; a FUTURE client's version is answered at ours.
    reply.u32(std::min(version, opts.max_proto_version));
    if (version < kRemoteProtoMinVersion ||
        version > opts.max_proto_version) {
      reply.u8(static_cast<std::uint8_t>(RemoteStatus::Error));
      reply.str("protocol version skew (client " + std::to_string(version) +
                ", daemon " + std::to_string(opts.max_proto_version) + ")");
      bad_requests.fetch_add(1, std::memory_order_relaxed);
      return reply.finish();
    }
    RemoteOp op = static_cast<RemoteOp>(dec.u8());
    std::string tenant = dec.str();
    {
      std::lock_guard<std::mutex> lock(tenants_mu);
      tenants.insert(tenant);
    }
    switch (op) {
      case RemoteOp::Ping: {
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
        // Version advertisement: v1 clients never read the Ping body, so
        // appending it is backward-compatible; its absence is how clients
        // recognise a v1 daemon.
        if (opts.max_proto_version >= kRemoteProtoBatchVersion) {
          reply.u32(opts.max_proto_version);
        }
        break;
      }
      case RemoteOp::LookupThm: {
        kernel::Term goal = dec.term();
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (auto v = shard_for(goal).theorems.find(goal)) {
          lookup_hits.fetch_add(1, std::memory_order_relaxed);
          reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
          reply.thm(*v);
        } else {
          reply.u8(static_cast<std::uint8_t>(RemoteStatus::NotFound));
        }
        break;
      }
      case RemoteOp::PublishThm: {
        kernel::Term goal = dec.term();
        kernel::Thm th = dec.thm();
        publishes.fetch_add(1, std::memory_order_relaxed);
        bool inserted =
            shard_for(goal).theorems.emplace(goal, std::move(th)).second;
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
        reply.u8(inserted ? 1 : 0);
        break;
      }
      case RemoteOp::LookupVerdict: {
        kernel::Term key = dec.term();
        lookups.fetch_add(1, std::memory_order_relaxed);
        if (auto v = shard_for(key).verdicts.find(key)) {
          lookup_hits.fetch_add(1, std::memory_order_relaxed);
          reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
          encode_verdict(reply, *v);
        } else {
          reply.u8(static_cast<std::uint8_t>(RemoteStatus::NotFound));
        }
        break;
      }
      case RemoteOp::PublishVerdict: {
        kernel::Term key = dec.term();
        verify::VerifyResult v = decode_verdict(dec);
        publishes.fetch_add(1, std::memory_order_relaxed);
        bool inserted =
            shard_for(key).verdicts.emplace(key, std::move(v)).second;
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
        reply.u8(inserted ? 1 : 0);
        break;
      }
      case RemoteOp::Stats: {
        CacheServerStats st;
        for (const auto& s : shards) {
          st.theorem_entries += s->theorems.stats().entries;
          st.verdict_entries += s->verdicts.stats().entries;
        }
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
        reply.u32(static_cast<std::uint32_t>(shards.size()));
        reply.u64(st.theorem_entries);
        reply.u64(st.verdict_entries);
        reply.u64(lookups.load(std::memory_order_relaxed));
        reply.u64(lookup_hits.load(std::memory_order_relaxed));
        std::size_t ntenants;
        {
          std::lock_guard<std::mutex> lock(tenants_mu);
          ntenants = tenants.size();
        }
        reply.u64(ntenants);
        break;
      }
      case RemoteOp::Snapshot: {
        // Ship the whole store in PersistentCacheFile form: the client
        // merges it into its own persist(), and tooling can write it
        // straight to disk.
        TheoremCache merged_thms;
        VerdictCache merged_verdicts;
        for (const auto& s : shards) {
          for (auto& [goal, th] : s->theorems.snapshot()) {
            merged_thms.emplace(goal, std::move(th));
          }
          for (auto& [key, v] : s->verdicts.snapshot()) {
            merged_verdicts.emplace(key, std::move(v));
          }
        }
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
        reply.str(PersistentCacheFile::encode(merged_thms, merged_verdicts));
        break;
      }
      case RemoteOp::LookupBatch: {
        if (version < kRemoteProtoBatchVersion) {
          bad_requests.fetch_add(1, std::memory_order_relaxed);
          reply.u8(static_cast<std::uint8_t>(RemoteStatus::Error));
          reply.str("batch opcodes require protocol v2");
          return reply.finish();
        }
        batch_frames.fetch_add(1, std::memory_order_relaxed);
        // Decode the whole batch once, fan entries across shards, answer
        // with one frame.  Per-entry counters move exactly as they would
        // for the equivalent per-entry request sequence.
        std::uint32_t nt = dec.u32();
        std::vector<kernel::Term> goals;
        goals.reserve(nt);
        for (std::uint32_t i = 0; i < nt; ++i) goals.push_back(dec.term());
        std::uint32_t nv = dec.u32();
        std::vector<kernel::Term> keys;
        keys.reserve(nv);
        for (std::uint32_t i = 0; i < nv; ++i) keys.push_back(dec.term());
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
        reply.u32(nt);
        for (const kernel::Term& goal : goals) {
          lookups.fetch_add(1, std::memory_order_relaxed);
          if (auto v = shard_for(goal).theorems.find(goal)) {
            lookup_hits.fetch_add(1, std::memory_order_relaxed);
            reply.u8(1);
            reply.thm(*v);
          } else {
            reply.u8(0);
          }
        }
        reply.u32(nv);
        for (const kernel::Term& key : keys) {
          lookups.fetch_add(1, std::memory_order_relaxed);
          if (auto v = shard_for(key).verdicts.find(key)) {
            lookup_hits.fetch_add(1, std::memory_order_relaxed);
            reply.u8(1);
            encode_verdict(reply, *v);
          } else {
            reply.u8(0);
          }
        }
        break;
      }
      case RemoteOp::PublishBatch: {
        if (version < kRemoteProtoBatchVersion) {
          bad_requests.fetch_add(1, std::memory_order_relaxed);
          reply.u8(static_cast<std::uint8_t>(RemoteStatus::Error));
          reply.str("batch opcodes require protocol v2");
          return reply.finish();
        }
        batch_frames.fetch_add(1, std::memory_order_relaxed);
        std::uint32_t nt = dec.u32();
        std::vector<std::uint8_t> thm_inserted;
        thm_inserted.reserve(nt);
        for (std::uint32_t i = 0; i < nt; ++i) {
          kernel::Term goal = dec.term();
          kernel::Thm th = dec.thm();
          publishes.fetch_add(1, std::memory_order_relaxed);
          thm_inserted.push_back(
              shard_for(goal).theorems.emplace(goal, std::move(th)).second
                  ? 1
                  : 0);
        }
        std::uint32_t nv = dec.u32();
        std::vector<std::uint8_t> verd_inserted;
        verd_inserted.reserve(nv);
        for (std::uint32_t i = 0; i < nv; ++i) {
          kernel::Term key = dec.term();
          verify::VerifyResult v = decode_verdict(dec);
          publishes.fetch_add(1, std::memory_order_relaxed);
          verd_inserted.push_back(
              shard_for(key).verdicts.emplace(key, std::move(v)).second ? 1
                                                                        : 0);
        }
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Ok));
        reply.u32(nt);
        for (std::uint8_t b : thm_inserted) reply.u8(b);
        reply.u32(nv);
        for (std::uint8_t b : verd_inserted) reply.u8(b);
        break;
      }
      default: {
        bad_requests.fetch_add(1, std::memory_order_relaxed);
        reply.u8(static_cast<std::uint8_t>(RemoteStatus::Error));
        reply.str("unknown opcode");
        return reply.finish();
      }
    }
    if (!dec.at_end()) {
      throw kernel::SerializeError("trailing bytes after request body");
    }
  } catch (const kernel::KernelError& e) {
    // Malformed request (the container checksum already filtered line
    // noise, so this is schema drift or a buggy client): answer with a
    // diagnostic rather than silently dropping the connection.
    bad_requests.fetch_add(1, std::memory_order_relaxed);
    kernel::Encoder err;
    // Version 1: the lowest common denominator every client can parse —
    // the request may have been too malformed to know the sender's.
    err.u32(kRemoteProtoMinVersion);
    err.u8(static_cast<std::uint8_t>(RemoteStatus::Error));
    err.str(e.what());
    return err.finish();
  }
  return reply.finish();
}

void CacheServer::Impl::handle_connection(int fd) {
  std::string request;
  while (!stopping.load(std::memory_order_relaxed)) {
    if (!read_frame(fd, request, kMaxRequestFrame)) break;
    std::string reply = handle_request(request);
    if (!write_frame(fd, reply)) break;
  }
  {
    // Deregister before closing so stop() never shutdown()s a recycled
    // descriptor.
    std::lock_guard<std::mutex> lock(conns_mu);
    conn_fds.erase(std::remove(conn_fds.begin(), conn_fds.end(), fd),
                   conn_fds.end());
  }
  ::close(fd);
}

/// Join and drop every handler whose connection has ended.  Joining a
/// done handler is instantaneous (the thread's last act was setting the
/// flag), and moving them out of the list first keeps the join outside
/// conns_mu, which live handlers still take to deregister their fd.
void CacheServer::Impl::reap_finished() {
  std::vector<std::unique_ptr<Handler>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (auto it = handlers.begin(); it != handlers.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = handlers.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& h : finished) {
    if (h->thread.joinable()) h->thread.join();
  }
}

void CacheServer::Impl::accept_loop() {
  while (!stopping.load(std::memory_order_relaxed)) {
    // Reap on every iteration (accept or 200 ms timeout), so the thread
    // count tracks LIVE connections even when no new client arrives.
    reap_finished();
    struct pollfd pfd{listen_fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mu);
    if (stopping.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    conn_fds.push_back(fd);
    handlers.push_back(std::make_unique<Handler>());
    Handler* h = handlers.back().get();
    h->thread = std::thread([this, fd, h] {
      handle_connection(fd);
      h->done.store(true, std::memory_order_release);
    });
  }
}

void CacheServer::Impl::snapshot_loop() {
  std::unique_lock<std::mutex> lock(snap_mu);
  while (!stopping.load(std::memory_order_relaxed)) {
    snap_cv.wait_for(lock, std::chrono::milliseconds(opts.snapshot_ms),
                     [this] {
                       return stopping.load(std::memory_order_relaxed);
                     });
    if (stopping.load(std::memory_order_relaxed)) return;
    try {
      do_snapshot();
    } catch (const std::exception& e) {
      // A failed periodic snapshot costs warmth, not correctness: the
      // store stays live and the next interval retries.
      std::fprintf(stderr, "eda_cached: snapshot failed: %s\n", e.what());
    }
  }
}

void CacheServer::Impl::do_snapshot() const {
  if (opts.cache_file.empty()) return;
  TheoremCache merged_thms;
  VerdictCache merged_verdicts;
  for (const auto& s : shards) {
    for (auto& [goal, th] : s->theorems.snapshot()) {
      merged_thms.emplace(goal, std::move(th));
    }
    for (auto& [key, v] : s->verdicts.snapshot()) {
      merged_verdicts.emplace(key, std::move(v));
    }
  }
  PersistentCacheFile(opts.cache_file, opts.file_options)
      .save(merged_thms, merged_verdicts);
}

CacheServer::CacheServer(CacheServerOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

CacheServer::~CacheServer() { stop(); }

CacheLoadResult CacheServer::start() {
  Impl& im = *impl_;
  im.addr = parse_remote_address(im.opts.listen);
  im.listen_fd = listen_remote(im.addr, 64, &im.bound_port);
  im.stopping.store(false, std::memory_order_relaxed);
  im.started = true;

  CacheLoadResult warm;
  if (!im.opts.cache_file.empty()) {
    // Stage through plain caches, then distribute by the shared mixer —
    // the same selector every request uses, so a restarted daemon finds
    // its warm entries exactly where lookups will ask for them.
    TheoremCache staged_thms;
    VerdictCache staged_verdicts;
    warm = PersistentCacheFile(im.opts.cache_file, im.opts.file_options)
               .load(staged_thms, staged_verdicts);
    for (auto& [goal, th] : staged_thms.snapshot()) {
      im.shard_for(goal).theorems.emplace(goal, std::move(th));
    }
    for (auto& [key, v] : staged_verdicts.snapshot()) {
      im.shard_for(key).verdicts.emplace(key, std::move(v));
    }
  } else {
    warm.note = "no cache file configured; starting cold";
  }

  im.accepter = std::thread([&im] { im.accept_loop(); });
  if (im.opts.snapshot_ms > 0 && !im.opts.cache_file.empty()) {
    im.snapshotter = std::thread([&im] { im.snapshot_loop(); });
  }
  return warm;
}

void CacheServer::stop() {
  Impl& im = *impl_;
  if (!im.started) return;
  im.started = false;
  im.stopping.store(true, std::memory_order_relaxed);
  im.snap_cv.notify_all();
  // Wake the accept loop (poll timeout catches it) and every blocked
  // per-connection recv.
  if (im.accepter.joinable()) im.accepter.join();
  std::list<std::unique_ptr<Impl::Handler>> handlers;
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    for (int fd : im.conn_fds) ::shutdown(fd, SHUT_RDWR);
    im.conn_fds.clear();
    handlers = std::move(im.handlers);
    im.handlers.clear();
  }
  for (auto& h : handlers) {
    if (h->thread.joinable()) h->thread.join();
  }
  if (im.snapshotter.joinable()) im.snapshotter.join();
  if (im.listen_fd >= 0) {
    ::close(im.listen_fd);
    im.listen_fd = -1;
  }
  if (im.addr.is_unix) ::unlink(im.addr.path.c_str());
  try {
    im.do_snapshot();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "eda_cached: final snapshot failed: %s\n",
                 e.what());
  }
}

void CacheServer::snapshot() const { impl_->do_snapshot(); }

CacheServerStats CacheServer::stats() const {
  const Impl& im = *impl_;
  CacheServerStats st;
  st.shards = im.shards.size();
  for (const auto& s : im.shards) {
    st.theorem_entries += s->theorems.stats().entries;
    st.verdict_entries += s->verdicts.stats().entries;
  }
  st.lookups = im.lookups.load(std::memory_order_relaxed);
  st.lookup_hits = im.lookup_hits.load(std::memory_order_relaxed);
  st.publishes = im.publishes.load(std::memory_order_relaxed);
  st.connections = im.connections.load(std::memory_order_relaxed);
  st.bad_requests = im.bad_requests.load(std::memory_order_relaxed);
  st.batch_frames = im.batch_frames.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(im.conns_mu);
    st.live_handlers = im.handlers.size();
  }
  {
    std::lock_guard<std::mutex> lock(im.tenants_mu);
    st.tenants = im.tenants.size();
  }
  return st;
}

int CacheServer::port() const { return impl_->bound_port; }

const std::string& CacheServer::listen_display() const {
  return impl_->addr.display;
}

}  // namespace eda::service
