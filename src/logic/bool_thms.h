#pragma once

#include "kernel/signature.h"
#include "logic/conv.h"

namespace eda::logic {

using kernel::Term;
using kernel::Thm;
using kernel::Type;

/// Install the boolean theory: the HOL definitions of T, /\, ==>, !, ?, \/,
/// F, ~ in terms of equality and lambda, plus the (axiomatised) conditional
/// COND.  Idempotent; every module that needs booleans calls this first.
///
/// This mirrors HOL's `bool` theory: the connectives are *defined*, and all
/// natural-deduction rules below are *derived* from the kernel's primitive
/// rules — nothing here extends the trusted core.
void init_bool();

// --- Term builders / destructors ------------------------------------------

Term truth_tm();
Term falsity_tm();
Term mk_conj(const Term& a, const Term& b);
Term mk_disj(const Term& a, const Term& b);
Term mk_imp(const Term& a, const Term& b);
Term mk_neg(const Term& a);
Term mk_forall(const Term& v, const Term& body);
Term mk_exists(const Term& v, const Term& body);
Term mk_cond(const Term& c, const Term& a, const Term& b);

bool is_conj(const Term& t);
bool is_disj(const Term& t);
bool is_imp(const Term& t);
bool is_neg(const Term& t);
bool is_forall(const Term& t);
bool is_exists(const Term& t);
bool is_cond(const Term& t);

/// Destructors throw KernelError on shape mismatch.
std::pair<Term, Term> dest_conj(const Term& t);
std::pair<Term, Term> dest_imp(const Term& t);
std::pair<Term, Term> dest_disj(const Term& t);
Term dest_neg(const Term& t);
std::pair<Term, Term> dest_forall(const Term& t);  // (bound var, body)
std::pair<Term, Term> dest_exists(const Term& t);

/// `!x1 ... xn. body` / peeling all leading universals.
Term list_mk_forall(const std::vector<Term>& vs, const Term& body);
std::pair<std::vector<Term>, Term> strip_forall(const Term& t);

// --- Derived inference rules ----------------------------------------------

/// |- T
Thm truth();
/// A |- a = b  ==>  A |- b = a
Thm sym(const Thm& th);
/// A |- x = y  ==>  A |- f x = f y
Thm ap_term(const Term& f, const Thm& th);
/// A |- f = g  ==>  A |- f x = g x
Thm ap_thm(const Thm& th, const Term& x);
/// A |- t  ==>  A |- t = T
Thm eqt_intro(const Thm& th);
/// A |- t = T  ==>  A |- t
Thm eqt_elim(const Thm& th);
/// A |- p, B |- q  ==>  A u B |- p /\ q
Thm conj(const Thm& p, const Thm& q);
Thm conjunct1(const Thm& pq);
Thm conjunct2(const Thm& pq);
/// A |- p ==> q,  B |- p   ==>   A u B |- q
Thm mp(const Thm& imp, const Thm& ante);
/// A |- q  ==>  A - {p} |- p ==> q
Thm disch(const Term& p, const Thm& th);
/// A |- p ==> q  ==>  A u {p} |- q
Thm undisch(const Thm& th);
/// A |- p  ==>  A |- !v. p   (v not free in A)
Thm gen(const Term& v, const Thm& th);
Thm gen_list(const std::vector<Term>& vs, const Thm& th);
/// A |- !x. p  ==>  A |- p[t/x]
Thm spec(const Term& t, const Thm& th);
Thm spec_list(const std::vector<Term>& ts, const Thm& th);
/// Polymorphic spec: first instantiates the theorem's type variables so the
/// outer bound variable's type matches `t`, then specialises.  This is how
/// the universal retiming theorem is instantiated with concrete circuit
/// functions.
Thm pspec(const Term& t, const Thm& th);
Thm pspec_list(const std::vector<Term>& ts, const Thm& th);
/// Strip all leading universals, specialising to (variants of) the bound
/// variables themselves.
Thm spec_all(const Thm& th);
/// A |- p,  B |- q  (p in B)   ==>   A u (B - {p}) |- q
Thm prove_hyp(const Thm& proof, const Thm& th);
/// A |- F  ==>  A |- p   (ex falso)
Thm contr(const Term& p, const Thm& f_thm);
/// A |- ~p  ==>  A |- p ==> F
Thm not_elim(const Thm& th);
/// A |- p ==> F  ==>  A |- ~p
Thm not_intro(const Thm& th);
/// A |- p  ==>  A |- p \/ q   /   A |- q \/ p
Thm disj1(const Thm& th, const Term& q);
Thm disj2(const Term& p, const Thm& th);
/// A |- p \/ q,  B u {p} |- r,  C u {q} |- r  ==>  A u B u C |- r
Thm disj_cases(const Thm& pq, const Thm& from_p, const Thm& from_q);
/// A |- p[w/x]  ==>  A |- ?x. p   (ex_tm is `?x. p`, w the witness)
Thm exists_intro(const Term& ex_tm, const Term& witness, const Thm& th);
/// A |- ?x. p,  B u {p[v/x]} |- q  (v fresh)  ==>  A u B |- q
Thm choose(const Term& v, const Thm& ex_th, const Thm& th);

/// Unfold a curried definition applied to arguments:
/// from def |- c = \x1..xn. body and terms a1..an derive
/// |- c a1 .. an = body[a1..an] (left-to-right AP_THM + beta).
Thm unfold_def(const Thm& def, const std::vector<Term>& args);

}  // namespace eda::logic
