#include "logic/bool_simp.h"

#include "kernel/signature.h"

namespace eda::logic {

using kernel::alpha_ty;
using kernel::bool_ty;
using kernel::fun_ty;
using kernel::mk_eq;
using kernel::Signature;
using kernel::Term;
using kernel::Thm;

namespace {

Term pb() { return Term::var("p", bool_ty()); }
Term T() { return truth_tm(); }
Term F() { return falsity_tm(); }

/// Cache a derived theorem under a name in the signature registry.
Thm cached(const char* name, const std::function<Thm()>& derive) {
  init_bool();
  Signature& sig = Signature::instance();
  if (auto th = sig.find_theorem(name)) return *th;
  Thm th = derive();
  sig.store_theorem(name, th);
  return th;
}

}  // namespace

Thm and_t_left() {
  return cached("AND_T_LEFT", [] {
    Term p = pb();
    Thm fwd = conjunct2(Thm::assume(mk_conj(T(), p)));
    Thm bwd = conj(truth(), Thm::assume(p));
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm and_t_right() {
  return cached("AND_T_RIGHT", [] {
    Term p = pb();
    Thm fwd = conjunct1(Thm::assume(mk_conj(p, T())));
    Thm bwd = conj(Thm::assume(p), truth());
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm and_f_left() {
  return cached("AND_F_LEFT", [] {
    Term p = pb();
    Thm fwd = conjunct1(Thm::assume(mk_conj(F(), p)));  // {F/\p} |- F
    Thm bwd = conj(Thm::assume(F()), contr(p, Thm::assume(F())));
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm and_f_right() {
  return cached("AND_F_RIGHT", [] {
    Term p = pb();
    Thm fwd = conjunct2(Thm::assume(mk_conj(p, F())));
    Thm bwd = conj(contr(p, Thm::assume(F())), Thm::assume(F()));
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm and_idem() {
  return cached("AND_IDEM", [] {
    Term p = pb();
    Thm fwd = conjunct1(Thm::assume(mk_conj(p, p)));
    Thm bwd = conj(Thm::assume(p), Thm::assume(p));
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm or_t_left() {
  return cached("OR_T_LEFT", [] {
    Term p = pb();
    return gen(p, Thm::deduct_antisym(disj1(truth(), p), truth()));
  });
}

Thm or_t_right() {
  return cached("OR_T_RIGHT", [] {
    Term p = pb();
    return gen(p, Thm::deduct_antisym(disj2(p, truth()), truth()));
  });
}

Thm or_f_left() {
  return cached("OR_F_LEFT", [] {
    Term p = pb();
    Thm bwd = disj2(F(), Thm::assume(p));
    Thm fwd = disj_cases(Thm::assume(mk_disj(F(), p)),
                         contr(p, Thm::assume(F())), Thm::assume(p));
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm or_f_right() {
  return cached("OR_F_RIGHT", [] {
    Term p = pb();
    Thm bwd = disj1(Thm::assume(p), F());
    Thm fwd = disj_cases(Thm::assume(mk_disj(p, F())), Thm::assume(p),
                         contr(p, Thm::assume(F())));
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm or_idem() {
  return cached("OR_IDEM", [] {
    Term p = pb();
    Thm bwd = disj1(Thm::assume(p), p);
    Thm fwd = disj_cases(Thm::assume(mk_disj(p, p)), Thm::assume(p),
                         Thm::assume(p));
    return gen(p, Thm::deduct_antisym(bwd, fwd));
  });
}

Thm not_t() {
  return cached("NOT_T", [] {
    Thm bwd = contr(mk_neg(T()), Thm::assume(F()));     // {F} |- ~T
    Thm fwd = mp(not_elim(Thm::assume(mk_neg(T()))), truth());  // {~T} |- F
    return Thm::deduct_antisym(bwd, fwd);
  });
}

Thm not_f() {
  return cached("NOT_F", [] {
    return eqt_intro(not_intro(disch(F(), Thm::assume(F()))));
  });
}

Thm not_not() {
  return cached("NOT_NOT", [] {
    Term p = pb();
    Term goal_lhs = mk_neg(mk_neg(p));
    Term eqb = kernel::eq_const(bool_ty());
    // Case c: from p = c derive (~~p = p) = (~~c = c) by congruence, prove
    // the constant instance, transport back.
    auto by_case = [&](const Thm& asm_th, const Thm& const_proof) {
      Thm cong = Thm::mk_comb(
          ap_term(eqb, ap_term(Term::constant("~", fun_ty(bool_ty(),
                                                          bool_ty())),
                               ap_term(Term::constant("~", fun_ty(bool_ty(),
                                                                  bool_ty())),
                                       asm_th))),
          asm_th);
      return Thm::eq_mp(sym(cong), const_proof);
    };
    // ~~T = T  and  ~~F = F.
    Term neg_c = Term::constant("~", fun_ty(bool_ty(), bool_ty()));
    Thm nnt = Thm::trans(ap_term(neg_c, not_t()), not_f());
    Thm nnf = Thm::trans(ap_term(neg_c, not_f()), not_t());
    Thm cases = spec(p, Signature::instance().theorem("BOOL_CASES_AX"));
    Thm th1 = by_case(Thm::assume(mk_eq(p, T())), nnt);
    Thm th2 = by_case(Thm::assume(mk_eq(p, F())), nnf);
    (void)goal_lhs;
    return gen(p, disj_cases(cases, th1, th2));
  });
}

Thm refl_clause() {
  return cached("REFL_CLAUSE", [] {
    Term x = Term::var("x", alpha_ty());
    return gen(x, eqt_intro(Thm::refl(x)));
  });
}

Thm cond_id() {
  return cached("COND_ID", [] {
    Signature& sig = Signature::instance();
    Term c = Term::var("c", bool_ty());
    Term x = Term::var("x", alpha_ty());
    Term cond_c = Term::constant(
        "COND", fun_ty(bool_ty(),
                       fun_ty(alpha_ty(), fun_ty(alpha_ty(), alpha_ty()))));
    auto by_case = [&](const Term& value, const Thm& clause) {
      Thm asm_th = Thm::assume(mk_eq(c, value));
      Thm cong = Thm::mk_comb(
          Thm::mk_comb(ap_term(cond_c, asm_th), Thm::refl(x)), Thm::refl(x));
      // cong : COND c x x = COND <value> x x
      return Thm::trans(cong, spec_list({x, x}, clause));
    };
    Thm th1 = by_case(truth_tm(), sig.theorem("COND_T"));
    Thm th2 = by_case(falsity_tm(), sig.theorem("COND_F"));
    Thm cases = spec(c, sig.theorem("BOOL_CASES_AX"));
    return gen_list({c, x}, disj_cases(cases, th1, th2));
  });
}

Thm bool_cases_on(const Term& b,
                  const std::function<Thm(const Thm&)>& prove) {
  init_bool();
  Thm cases = spec(b, Signature::instance().theorem("BOOL_CASES_AX"));
  Thm th1 = prove(Thm::assume(mk_eq(b, truth_tm())));
  Thm th2 = prove(Thm::assume(mk_eq(b, falsity_tm())));
  return disj_cases(cases, th1, th2);
}

std::vector<Thm> bool_simp_clauses() {
  return {and_t_left(), and_t_right(), and_f_left(), and_f_right(),
          and_idem(),   or_t_left(),   or_t_right(),  or_f_left(),
          or_f_right(), or_idem(),     not_t(),       not_f(),
          not_not(),    refl_clause(), cond_id()};
}

}  // namespace eda::logic
