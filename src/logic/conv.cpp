#include "logic/conv.h"

#include "kernel/terms.h"

namespace eda::logic {

using kernel::eq_rhs;
using kernel::is_eq;

Thm all_conv(const Term& t) { return Thm::refl(t); }

Thm no_conv(const Term& t) {
  throw ConvError("no_conv: " + t.to_string());
}

Thm beta_conv(const Term& t) {
  if (!t.is_comb() || !t.rator().is_abs()) {
    throw ConvError("beta_conv: not a redex");
  }
  return Thm::beta(t);
}

Conv thenc(Conv a, Conv b) {
  return [a = std::move(a), b = std::move(b)](const Term& t) {
    Thm th1 = a(t);
    Thm th2 = b(eq_rhs(th1.concl()));
    return Thm::trans(th1, th2);
  };
}

Conv orelsec(Conv a, Conv b) {
  return [a = std::move(a), b = std::move(b)](const Term& t) {
    try {
      return a(t);
    } catch (const KernelError&) {
      return b(t);
    }
  };
}

Conv tryc(Conv a) { return orelsec(std::move(a), all_conv); }

Conv repeatc(Conv a) {
  return [a = std::move(a)](const Term& t) {
    Thm acc = Thm::refl(t);
    int steps = 0;
    for (;;) {
      Term cur = eq_rhs(acc.concl());
      Thm step = Thm::refl(cur);
      bool applied = false;
      try {
        step = a(cur);
        applied = true;
      } catch (const KernelError&) {
        // done
      }
      if (!applied || eq_rhs(step.concl()) == cur) return acc;
      acc = Thm::trans(acc, step);
      if (++steps > kMaxRewriteSteps) {
        throw ConvError("repeatc: rewrite limit exceeded");
      }
    }
  };
}

Conv changedc(Conv a) {
  return [a = std::move(a)](const Term& t) {
    Thm th = a(t);
    if (eq_rhs(th.concl()) == t) {
      throw ConvError("changedc: conversion did not change the term");
    }
    return th;
  };
}

Conv rand_conv(Conv c) {
  return [c = std::move(c)](const Term& t) {
    if (!t.is_comb()) throw ConvError("rand_conv: not an application");
    return Thm::mk_comb(Thm::refl(t.rator()), c(t.rand()));
  };
}

Conv rator_conv(Conv c) {
  return [c = std::move(c)](const Term& t) {
    if (!t.is_comb()) throw ConvError("rator_conv: not an application");
    return Thm::mk_comb(c(t.rator()), Thm::refl(t.rand()));
  };
}

Conv abs_conv(Conv c) {
  return [c = std::move(c)](const Term& t) {
    if (!t.is_abs()) throw ConvError("abs_conv: not an abstraction");
    return Thm::abs(t.bound_var(), c(t.body()));
  };
}

Conv sub_conv(Conv c) {
  return [c = std::move(c)](const Term& t) {
    switch (t.kind()) {
      case Term::Kind::Comb:
        return Thm::mk_comb(tryc(c)(t.rator()), tryc(c)(t.rand()));
      case Term::Kind::Abs:
        return abs_conv(tryc(c))(t);
      default:
        return Thm::refl(t);
    }
  };
}

Conv binder_conv(Conv c) { return rand_conv(abs_conv(std::move(c))); }

namespace {

Thm once_depth_rec(const Conv& c, const Term& t) {
  try {
    return c(t);
  } catch (const KernelError&) {
    // fall through to children
  }
  switch (t.kind()) {
    case Term::Kind::Comb: {
      Thm f = once_depth_rec(c, t.rator());
      Thm x = once_depth_rec(c, t.rand());
      return Thm::mk_comb(f, x);
    }
    case Term::Kind::Abs: {
      Thm b = once_depth_rec(c, t.body());
      return Thm::abs(t.bound_var(), b);
    }
    default:
      return Thm::refl(t);
  }
}

Thm depth_rec(const Conv& c, const Term& t, int& budget) {
  Thm acc = Thm::refl(t);
  switch (t.kind()) {
    case Term::Kind::Comb: {
      Thm f = depth_rec(c, t.rator(), budget);
      Thm x = depth_rec(c, t.rand(), budget);
      acc = Thm::mk_comb(f, x);
      break;
    }
    case Term::Kind::Abs: {
      Thm b = depth_rec(c, t.body(), budget);
      acc = Thm::abs(t.bound_var(), b);
      break;
    }
    default:
      break;
  }
  // Repeat at this node on the rebuilt term.
  for (;;) {
    Term cur = eq_rhs(acc.concl());
    try {
      Thm step = c(cur);
      if (eq_rhs(step.concl()) == cur) return acc;
      if (--budget < 0) throw ConvError("depth_conv: rewrite limit exceeded");
      acc = Thm::trans(acc, step);
    } catch (const ConvError&) {
      throw;
    } catch (const KernelError&) {
      return acc;
    }
  }
}

Thm top_depth_rec(const Conv& c, const Term& t, int& budget);

Thm top_depth_children(const Conv& c, const Term& t, int& budget) {
  switch (t.kind()) {
    case Term::Kind::Comb: {
      Thm f = top_depth_rec(c, t.rator(), budget);
      Thm x = top_depth_rec(c, t.rand(), budget);
      return Thm::mk_comb(f, x);
    }
    case Term::Kind::Abs: {
      Thm b = top_depth_rec(c, t.body(), budget);
      return Thm::abs(t.bound_var(), b);
    }
    default:
      return Thm::refl(t);
  }
}

Thm top_depth_rec(const Conv& c, const Term& t, int& budget) {
  // 1. repeat c at the node itself
  Thm acc = Thm::refl(t);
  for (;;) {
    Term cur = eq_rhs(acc.concl());
    bool applied = false;
    try {
      Thm step = c(cur);
      if (!(eq_rhs(step.concl()) == cur)) {
        if (--budget < 0)
          throw ConvError("top_depth_conv: rewrite limit exceeded");
        acc = Thm::trans(acc, step);
        applied = true;
      }
    } catch (const ConvError& e) {
      if (std::string(e.what()).find("limit exceeded") != std::string::npos)
        throw;
    } catch (const KernelError&) {
      // c does not apply here
    }
    if (!applied) break;
  }
  // 2. descend into children
  Term cur = eq_rhs(acc.concl());
  Thm kids = top_depth_children(c, cur, budget);
  bool kids_changed = !(eq_rhs(kids.concl()) == cur);
  if (kids_changed) acc = Thm::trans(acc, kids);
  // 3. if the children changed, the node may now be reducible again
  if (kids_changed) {
    Term cur2 = eq_rhs(acc.concl());
    try {
      Thm step = c(cur2);
      if (!(eq_rhs(step.concl()) == cur2)) {
        if (--budget < 0)
          throw ConvError("top_depth_conv: rewrite limit exceeded");
        acc = Thm::trans(acc, step);
        Thm rest = top_depth_rec(c, eq_rhs(acc.concl()), budget);
        if (!(eq_rhs(rest.concl()) == eq_rhs(acc.concl()))) {
          acc = Thm::trans(acc, rest);
        }
      }
    } catch (const ConvError& e) {
      if (std::string(e.what()).find("limit exceeded") != std::string::npos)
        throw;
    } catch (const KernelError&) {
      // done
    }
  }
  return acc;
}

}  // namespace

Conv once_depth_conv(Conv c) {
  return [c = std::move(c)](const Term& t) { return once_depth_rec(c, t); };
}

Conv depth_conv(Conv c) {
  return [c = std::move(c)](const Term& t) {
    int budget = kMaxRewriteSteps;
    return depth_rec(c, t, budget);
  };
}

Conv top_depth_conv(Conv c) {
  return [c = std::move(c)](const Term& t) {
    int budget = kMaxRewriteSteps;
    return top_depth_rec(c, t, budget);
  };
}

Thm beta_norm_conv(const Term& t) { return top_depth_conv(beta_conv)(t); }

Thm conv_rule(const Conv& c, const Thm& th) {
  Thm eq = c(th.concl());
  return Thm::eq_mp(eq, th);
}

Thm conv_concl_rhs(const Conv& c, const Thm& th) {
  if (!is_eq(th.concl())) {
    throw ConvError("conv_concl_rhs: conclusion is not an equation");
  }
  Thm eq = c(eq_rhs(th.concl()));
  return Thm::trans(th, eq);
}

}  // namespace eda::logic
