#include "logic/rewrite.h"

namespace eda::logic {

using kernel::eq_lhs;
using kernel::eq_rhs;
using kernel::is_eq;
using kernel::Term;
using kernel::Thm;

Conv rewr_conv(const Thm& eq_thm) {
  // Specialize the rule once at conversion-build time, not per target term;
  // rewr_conv results are routinely cached (static Convs in the hash layer)
  // and applied to thousands of nodes.
  Thm spec = spec_all(eq_thm);
  return [th = std::move(spec)](const Term& t) {
    if (!is_eq(th.concl())) {
      throw ConvError("rewr_conv: theorem is not an equation: " +
                      th.concl().to_string());
    }
    Term lhs = eq_lhs(th.concl());
    auto m = term_match(lhs, t);
    if (!m) {
      throw ConvError("rewr_conv: no match for " + t.to_string());
    }
    Thm inst = th;
    if (!m->types.empty()) inst = Thm::inst_type(m->types, inst);
    if (!m->terms.empty()) inst = Thm::inst(m->terms, inst);
    Term new_lhs = eq_lhs(inst.concl());
    if (!(new_lhs == t)) {
      throw ConvError("rewr_conv: instantiation mismatch");
    }
    // Re-anchor on the exact (alpha-variant) input term so callers can
    // chain with TRANS.
    return Thm::trans(Thm::alpha(t, new_lhs), inst);
  };
}

Conv rewrites_conv(const std::vector<Thm>& thms) {
  std::vector<Conv> convs;
  convs.reserve(thms.size());
  for (const Thm& th : thms) convs.push_back(rewr_conv(th));
  return [convs](const Term& t) -> Thm {
    for (const Conv& c : convs) {
      try {
        return c(t);
      } catch (const ConvError&) {
        continue;
      }
    }
    throw ConvError("rewrites_conv: no rule applies");
  };
}

Conv pure_rewrite_conv(const std::vector<Thm>& thms) {
  return top_depth_conv(rewrites_conv(thms));
}

Conv rewrite_conv(const std::vector<Thm>& thms) {
  Conv step = orelsec(rewrites_conv(thms), beta_conv);
  return top_depth_conv(step);
}

Thm rewrite_rule(const std::vector<Thm>& thms, const Thm& th) {
  return conv_rule(rewrite_conv(thms), th);
}

Thm pure_rewrite_rule(const std::vector<Thm>& thms, const Thm& th) {
  return conv_rule(pure_rewrite_conv(thms), th);
}

Conv once_rewrite_conv(const std::vector<Thm>& thms) {
  return once_depth_conv(rewrites_conv(thms));
}

}  // namespace eda::logic
