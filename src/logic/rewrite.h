#pragma once

#include <vector>

#include "logic/bool_thms.h"
#include "logic/conv.h"
#include "logic/match.h"

namespace eda::logic {

/// Rewriting conversion from one (possibly universally quantified)
/// equational theorem: matches the left-hand side against the target term
/// (first-order, with type instantiation) and returns the instantiated
/// equation.  This is exactly the matching engine used to apply the
/// universal retiming theorem (paper, fig. 3).
Conv rewr_conv(const Thm& eq_thm);

/// First applicable rule from the list.
Conv rewrites_conv(const std::vector<Thm>& thms);

/// Exhaustive rewriting with the rules only (no implicit beta).
Conv pure_rewrite_conv(const std::vector<Thm>& thms);

/// Exhaustive rewriting with the rules plus beta-reduction (HOL's
/// REWRITE_CONV flavour).
Conv rewrite_conv(const std::vector<Thm>& thms);

/// Rewrite a theorem's conclusion.
Thm rewrite_rule(const std::vector<Thm>& thms, const Thm& th);
Thm pure_rewrite_rule(const std::vector<Thm>& thms, const Thm& th);

/// Apply one rewriting theorem once, anywhere in the term (leftmost
/// outermost).
Conv once_rewrite_conv(const std::vector<Thm>& thms);

}  // namespace eda::logic
