#pragma once

#include <functional>

#include "kernel/thm.h"

namespace eda::logic {

using kernel::KernelError;
using kernel::Term;
using kernel::Thm;

/// A conversion maps a term `t` to a theorem `A |- t = t'`.  Conversions are
/// the workhorse of formal synthesis: every rewriting pass of a synthesis
/// step is a conversion, so its output is correct by construction.
using Conv = std::function<Thm(const Term&)>;

/// Thrown by a conversion that does not apply (HOL's `failwith`); strategy
/// combinators catch it.
class ConvError : public KernelError {
 public:
  explicit ConvError(const std::string& what) : KernelError(what) {}
};

// --- Basic conversions -----------------------------------------------------

/// `|- t = t` (always succeeds).
Thm all_conv(const Term& t);
/// Always fails.
Thm no_conv(const Term& t);
/// Beta-reduce a top-level redex.
Thm beta_conv(const Term& t);
/// Beta-reduce every redex, innermost-out, until none remain.
Thm beta_norm_conv(const Term& t);

// --- Combinators -----------------------------------------------------------

Conv thenc(Conv a, Conv b);
Conv orelsec(Conv a, Conv b);
Conv tryc(Conv a);
/// Apply repeatedly until failure (zero applications yield REFL).
Conv repeatc(Conv a);
/// Fail unless the conversion changed the term.
Conv changedc(Conv a);

/// Apply under the operand / operator of an application, or the body of an
/// abstraction.
Conv rand_conv(Conv c);
Conv rator_conv(Conv c);
Conv abs_conv(Conv c);
/// Both sides of an application; body of an abstraction; identity on atoms.
Conv sub_conv(Conv c);
/// For a binder application `B (\x. t)`, apply under the abstraction body.
Conv binder_conv(Conv c);

/// Single top-down sweep: apply `c` (repeatedly) at every subterm, visiting
/// parents before children.  Does not revisit.
Conv once_depth_conv(Conv c);
/// Bottom-up sweep applying `c` where possible.
Conv depth_conv(Conv c);
/// Full normalization: repeat top-down sweeps until fixpoint (bounded; see
/// kMaxRewriteSteps).
Conv top_depth_conv(Conv c);

/// Rewrite a theorem's conclusion with a conversion: from `A |- p` and
/// `B |- p = q` obtain `A u B |- q`.
Thm conv_rule(const Conv& c, const Thm& th);
/// Apply a conversion to the left / right side of an equational conclusion.
Thm conv_concl_rhs(const Conv& c, const Thm& th);

/// Hard bound on rewrite iterations; exceeding it throws (guards against
/// looping rewrite systems).
inline constexpr int kMaxRewriteSteps = 100000;

}  // namespace eda::logic
