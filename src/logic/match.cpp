#include "logic/match.h"

#include <vector>

namespace eda::logic {

namespace {

struct Matcher {
  TypeSubst types;
  // Bindings keyed by the original (pre-instantiation) pattern variable.
  std::vector<std::pair<Term, Term>> bindings;
  // Stack of (pattern binder, concrete binder) pairs.
  std::vector<std::pair<Term, Term>> env;

  static std::ptrdiff_t binder_index(
      const Term& v, const std::vector<std::pair<Term, Term>>& env,
      bool pattern_side) {
    for (std::size_t i = env.size(); i-- > 0;) {
      const Term& b = pattern_side ? env[i].first : env[i].second;
      if (b.name() == v.name() && b.type() == v.type()) {
        return static_cast<std::ptrdiff_t>(i);
      }
    }
    return -1;
  }

  bool concrete_mentions_bound(const Term& t) const {
    std::set<Term> fv = kernel::free_vars(t);
    for (const auto& [pv, cv] : env) {
      if (fv.count(cv) > 0) return true;
    }
    return false;
  }

  bool match(const Term& p, const Term& t) {
    switch (p.kind()) {
      case Term::Kind::Var: {
        std::ptrdiff_t pi = binder_index(p, env, true);
        if (pi >= 0) {
          // Bound pattern variable: must match the corresponding binder.
          if (!t.is_var()) return false;
          std::ptrdiff_t ti = binder_index(t, env, false);
          return ti == pi;
        }
        // Free pattern variable: instantiable.
        if (!kernel::type_match(p.type(), t.type(), types)) return false;
        if (concrete_mentions_bound(t)) return false;
        for (const auto& [key, img] : bindings) {
          if (key == p) return img == t;
        }
        bindings.emplace_back(p, t);
        return true;
      }
      case Term::Kind::Const:
        return t.is_const() && t.name() == p.name() &&
               kernel::type_match(p.type(), t.type(), types);
      case Term::Kind::Comb:
        return t.is_comb() && match(p.rator(), t.rator()) &&
               match(p.rand(), t.rand());
      case Term::Kind::Abs: {
        if (!t.is_abs()) return false;
        if (!kernel::type_match(p.bound_var().type(), t.bound_var().type(),
                                types)) {
          return false;
        }
        env.emplace_back(p.bound_var(), t.bound_var());
        bool ok = match(p.body(), t.body());
        env.pop_back();
        return ok;
      }
    }
    return false;
  }
};

}  // namespace

std::optional<MatchResult> term_match(const Term& pattern,
                                      const Term& concrete) {
  Matcher m;
  if (!m.match(pattern, concrete)) return std::nullopt;
  MatchResult out;
  out.types = m.types;
  for (const auto& [key, img] : m.bindings) {
    Term key2 =
        Term::var(key.name(), kernel::type_subst(out.types, key.type()));
    if (key2.type() != img.type()) return std::nullopt;  // defensive
    auto [it, inserted] = out.terms.emplace(key2, img);
    if (!inserted && !(it->second == img)) return std::nullopt;
  }
  return out;
}

}  // namespace eda::logic
