#pragma once

#include <optional>

#include "kernel/terms.h"

namespace eda::logic {

using kernel::Term;
using kernel::TermSubst;
using kernel::Type;
using kernel::TypeSubst;

/// Result of first-order matching: instantiate the pattern's type variables
/// with `types`, then its free term variables with `terms`, to obtain the
/// concrete term.  `terms` keys are the pattern variables *after* type
/// instantiation.
struct MatchResult {
  TypeSubst types;
  TermSubst terms;
};

/// First-order matching of `pattern` against `concrete`.
///
/// Free variables of the pattern match arbitrary terms (of matching type,
/// which drives type instantiation); constants match constants of the same
/// name whose type is an instance; abstractions match abstractions.  A
/// pattern variable may not match a term containing variables bound in the
/// concrete term at that position (no scope extrusion).  Returns nullopt on
/// mismatch.
///
/// This is *matching*, not unification — exactly what REWR_CONV and the
/// retiming-theorem instantiation need (paper, section IV.A, step 2).
std::optional<MatchResult> term_match(const Term& pattern,
                                      const Term& concrete);

}  // namespace eda::logic
