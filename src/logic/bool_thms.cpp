#include "logic/bool_thms.h"

#include <mutex>

#include "kernel/once.h"
#include "kernel/signature.h"

namespace eda::logic {

using kernel::bool_ty;
using kernel::eq_lhs;
using kernel::eq_rhs;
using kernel::fun_ty;
using kernel::is_eq;
using kernel::KernelError;
using kernel::mk_eq;
using kernel::Signature;
using kernel::TermSubst;
using kernel::TypeSubst;

namespace {

Type bool2() { return fun_ty(bool_ty(), fun_ty(bool_ty(), bool_ty())); }

Thm get_def(const std::string& name) {
  return Signature::instance().theorem("DEF:" + name);
}

/// Fresh boolean-or-other variable avoiding the free variables of the given
/// terms (by name).
Term fresh_var(const std::string& base, const Type& ty,
               const std::vector<Term>& avoid_terms) {
  std::set<Term> avoid;
  for (const Term& t : avoid_terms) kernel::collect_free_vars(t, avoid);
  return kernel::variant(avoid, Term::var(base, ty));
}

std::vector<Term> all_hyps_and(const Thm& th, std::vector<Term> extra) {
  std::vector<Term> out = th.hyps();
  for (Term& t : extra) out.push_back(std::move(t));
  return out;
}

}  // namespace

void init_bool() {
  // Re-entrancy-safe guard rather than call_once: the body itself uses the
  // public term builders, which call init_bool().  InitOnce additionally
  // blocks concurrent first-callers until the theory is fully installed
  // (kernel/once.h).
  static kernel::InitOnce once;
  once.run([] {
    Signature& sig = Signature::instance();
    Term p = Term::var("p", bool_ty());
    Term q = Term::var("q", bool_ty());
    Term r = Term::var("r", bool_ty());

    // T = ((\p. p) = (\p. p))
    Term idb = Term::abs(p, p);
    sig.new_definition("T", mk_eq(idb, idb));
    Term T = Term::constant("T", bool_ty());

    // /\ = \p q. (\f. f p q) = (\f. f T T)
    Term f = Term::var("f", bool2());
    Term fpq = Term::comb(Term::comb(f, p), q);
    Term fTT = Term::comb(Term::comb(f, T), T);
    sig.new_definition(
        "/\\", Term::abs(p, Term::abs(q, mk_eq(Term::abs(f, fpq),
                                               Term::abs(f, fTT)))));

    // ==> = \p q. (p /\ q) = p
    sig.new_definition(
        "==>", Term::abs(p, Term::abs(q, mk_eq(mk_conj(p, q), p))));

    // ! = \P. P = (\x. T)
    Type a = kernel::alpha_ty();
    Term P = Term::var("P", fun_ty(a, bool_ty()));
    Term x = Term::var("x", a);
    sig.new_definition("!", Term::abs(P, mk_eq(P, Term::abs(x, T))));

    // ? = \P. !q. (!x. P x ==> q) ==> q
    Term Px = Term::comb(P, x);
    sig.new_definition(
        "?", Term::abs(P, mk_forall(q, mk_imp(mk_forall(x, mk_imp(Px, q)),
                                              q))));

    // \/ = \p q. !r. (p ==> r) ==> (q ==> r) ==> r
    sig.new_definition(
        "\\/",
        Term::abs(p, Term::abs(q, mk_forall(r, mk_imp(mk_imp(p, r),
                                                      mk_imp(mk_imp(q, r),
                                                             r))))));

    // F = !p. p
    sig.new_definition("F", mk_forall(p, p));
    Term F = Term::constant("F", bool_ty());

    // ~ = \p. p ==> F
    sig.new_definition("~", Term::abs(p, mk_imp(p, F)));

    // COND (axiomatised conditional; HOL defines it via the choice
    // operator, which this kernel omits — see DESIGN.md substitutions).
    sig.declare_const("COND",
                      fun_ty(bool_ty(), fun_ty(a, fun_ty(a, a))));
    Term xa = Term::var("x", a);
    Term ya = Term::var("y", a);
    Term condT = Term::comb(
        Term::comb(Term::comb(sig.mk_const("COND"), T), xa), ya);
    Term condF = Term::comb(
        Term::comb(Term::comb(sig.mk_const("COND"), F), xa), ya);
    sig.new_axiom("COND_T",
                  mk_forall(xa, mk_forall(ya, mk_eq(condT, xa))));
    sig.new_axiom("COND_F",
                  mk_forall(xa, mk_forall(ya, mk_eq(condF, ya))));

    // Boolean case analysis (a standard HOL axiom; HOL derives it from the
    // choice operator, which this kernel omits).
    Term pb = Term::var("b", bool_ty());
    sig.new_axiom("BOOL_CASES_AX",
                  mk_forall(pb, mk_disj(mk_eq(pb, T), mk_eq(pb, F))));
  });
}

// --- Builders ---------------------------------------------------------------

Term truth_tm() {
  init_bool();
  return Term::constant("T", bool_ty());
}

Term falsity_tm() {
  init_bool();
  return Term::constant("F", bool_ty());
}

namespace {

Term mk_bool_binop(const char* name, const Term& a, const Term& b) {
  init_bool();
  Term c = Term::constant(name, bool2());
  return Term::comb(Term::comb(c, a), b);
}

bool is_binop(const char* name, const Term& t) {
  return t.is_comb() && t.rator().is_comb() && t.rator().rator().is_const() &&
         t.rator().rator().name() == name;
}

std::pair<Term, Term> dest_binop(const char* name, const Term& t) {
  if (!is_binop(name, t)) {
    throw KernelError(std::string("dest_binop: not a ") + name + ": " +
                      t.to_string());
  }
  return {t.rator().rand(), t.rand()};
}

Term mk_binder(const char* name, const Term& v, const Term& body) {
  init_bool();
  if (!v.is_var()) throw KernelError("mk_binder: not a variable");
  Type binder_ty = fun_ty(fun_ty(v.type(), bool_ty()), bool_ty());
  return Term::comb(Term::constant(name, binder_ty), Term::abs(v, body));
}

bool is_binder(const char* name, const Term& t) {
  return t.is_comb() && t.rator().is_const() && t.rator().name() == name &&
         t.rand().is_abs();
}

std::pair<Term, Term> dest_binder(const char* name, const Term& t) {
  if (!is_binder(name, t)) {
    throw KernelError(std::string("dest_binder: not a ") + name + ": " +
                      t.to_string());
  }
  return {t.rand().bound_var(), t.rand().body()};
}

}  // namespace

Term mk_conj(const Term& a, const Term& b) {
  return mk_bool_binop("/\\", a, b);
}
Term mk_disj(const Term& a, const Term& b) {
  return mk_bool_binop("\\/", a, b);
}
Term mk_imp(const Term& a, const Term& b) { return mk_bool_binop("==>", a, b); }

Term mk_neg(const Term& a) {
  init_bool();
  return Term::comb(Term::constant("~", fun_ty(bool_ty(), bool_ty())), a);
}

Term mk_forall(const Term& v, const Term& body) {
  return mk_binder("!", v, body);
}
Term mk_exists(const Term& v, const Term& body) {
  return mk_binder("?", v, body);
}

Term mk_cond(const Term& c, const Term& a, const Term& b) {
  init_bool();
  if (a.type() != b.type()) throw KernelError("mk_cond: branch type mismatch");
  Type ct = fun_ty(bool_ty(), fun_ty(a.type(), fun_ty(a.type(), a.type())));
  return Term::comb(Term::comb(Term::comb(Term::constant("COND", ct), c), a),
                    b);
}

bool is_conj(const Term& t) { return is_binop("/\\", t); }
bool is_disj(const Term& t) { return is_binop("\\/", t); }
bool is_imp(const Term& t) { return is_binop("==>", t); }
bool is_neg(const Term& t) {
  return t.is_comb() && t.rator().is_const() && t.rator().name() == "~";
}
bool is_forall(const Term& t) { return is_binder("!", t); }
bool is_exists(const Term& t) { return is_binder("?", t); }
bool is_cond(const Term& t) {
  auto [head, args] = kernel::strip_comb(t);
  return head.is_const() && head.name() == "COND" && args.size() == 3;
}

std::pair<Term, Term> dest_conj(const Term& t) { return dest_binop("/\\", t); }
std::pair<Term, Term> dest_imp(const Term& t) { return dest_binop("==>", t); }
std::pair<Term, Term> dest_disj(const Term& t) { return dest_binop("\\/", t); }

Term dest_neg(const Term& t) {
  if (!is_neg(t)) throw KernelError("dest_neg: not a negation");
  return t.rand();
}

std::pair<Term, Term> dest_forall(const Term& t) { return dest_binder("!", t); }
std::pair<Term, Term> dest_exists(const Term& t) { return dest_binder("?", t); }

Term list_mk_forall(const std::vector<Term>& vs, const Term& body) {
  Term out = body;
  for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
    out = mk_forall(*it, out);
  }
  return out;
}

std::pair<std::vector<Term>, Term> strip_forall(const Term& t) {
  std::vector<Term> vs;
  Term cur = t;
  while (is_forall(cur)) {
    auto [v, body] = dest_forall(cur);
    vs.push_back(v);
    cur = body;
  }
  return {vs, cur};
}

// --- Rules -------------------------------------------------------------------

Thm unfold_def(const Thm& def, const std::vector<Term>& args) {
  Thm th = def;
  for (const Term& a : args) {
    th = ap_thm(th, a);
    th = conv_concl_rhs(beta_conv, th);
  }
  return th;
}

Thm truth() {
  init_bool();
  Thm t_def = get_def("T");
  Term idb = eq_lhs(eq_rhs(t_def.concl()));
  return Thm::eq_mp(sym(t_def), Thm::refl(idb));
}

Thm sym(const Thm& th) {
  if (!is_eq(th.concl())) throw KernelError("sym: not an equation");
  Term l = eq_lhs(th.concl());
  Thm congr = Thm::mk_comb(ap_term(kernel::eq_const(l.type()), th),
                           Thm::refl(l));
  // congr : (l = l) = (r = l)
  return Thm::eq_mp(congr, Thm::refl(l));
}

Thm ap_term(const Term& f, const Thm& th) {
  return Thm::mk_comb(Thm::refl(f), th);
}

Thm ap_thm(const Thm& th, const Term& x) {
  return Thm::mk_comb(th, Thm::refl(x));
}

Thm eqt_intro(const Thm& th) { return Thm::deduct_antisym(th, truth()); }

Thm eqt_elim(const Thm& th) {
  if (!is_eq(th.concl()) || !(eq_rhs(th.concl()) == truth_tm())) {
    throw KernelError("eqt_elim: conclusion is not `t = T`");
  }
  return Thm::eq_mp(sym(th), truth());
}

namespace {

/// |- (a /\ b) = ((\f. f a b) = (\f. f T T))
Thm conj_unfold(const Term& a, const Term& b) {
  return unfold_def(get_def("/\\"), {a, b});
}

/// |- (a ==> b) = ((a /\ b) = a)
Thm imp_unfold(const Term& a, const Term& b) {
  return unfold_def(get_def("==>"), {a, b});
}

/// |- (!x. p) = ((\x. p) = (\x. T)) at the right type instance.
Thm forall_unfold(const Term& lam) {
  Type el = kernel::dom_ty(lam.type());
  TypeSubst theta;
  theta.emplace("'a", el);
  Thm def = Thm::inst_type(theta, get_def("!"));
  return unfold_def(def, {lam});
}

Thm exists_unfold(const Term& lam) {
  Type el = kernel::dom_ty(lam.type());
  TypeSubst theta;
  theta.emplace("'a", el);
  Thm def = Thm::inst_type(theta, get_def("?"));
  return unfold_def(def, {lam});
}

Thm or_unfold(const Term& a, const Term& b) {
  return unfold_def(get_def("\\/"), {a, b});
}

Thm not_unfold(const Term& a) { return unfold_def(get_def("~"), {a}); }

}  // namespace

Thm conj(const Thm& p, const Thm& q) {
  init_bool();
  Term pt = p.concl(), qt = q.concl();
  std::vector<Term> avoid = all_hyps_and(p, all_hyps_and(q, {pt, qt}));
  Term f = fresh_var("f", bool2(), avoid);
  Thm inner = Thm::mk_comb(
      Thm::mk_comb(Thm::refl(f), eqt_intro(p)), eqt_intro(q));
  Thm lam_eq = Thm::abs(f, inner);
  Thm unfold = conj_unfold(pt, qt);
  return Thm::eq_mp(sym(unfold), lam_eq);
}

namespace {

/// Reduce exactly the three outer redexes of `(\f. f a b) (\x. \y. sel)`:
/// the selector application, then the two projection arguments.  A *deep*
/// beta normalisation here would also reduce redexes inside a and b and
/// return an over-normalised conjunct that no longer matches the original
/// term downstream (the bug showed up for quantified conjuncts, whose
/// unfolded bodies contain `lam x` redexes).
Thm outer_proj_reduce(const Term& t) {
  Thm s1 = Thm::beta(t);  // f := proj
  Term t1 = eq_rhs(s1.concl());  // ((\x. \y. sel) a) b
  Thm s2 = Thm::mk_comb(Thm::beta(t1.rator()), Thm::refl(t1.rand()));
  Term t2 = eq_rhs(s2.concl());  // (\y. sel[a/x]) b
  Thm s3 = Thm::beta(t2);
  return Thm::trans(Thm::trans(s1, s2), s3);
}

Thm conjunct_proj(const Thm& pq, bool first) {
  init_bool();
  auto [pt, qt] = dest_conj(pq.concl());
  Thm unfolded = Thm::eq_mp(conj_unfold(pt, qt), pq);
  // unfolded : (\f. f p q) = (\f. f T T)
  Term x = Term::var("x", bool_ty());
  Term y = Term::var("y", bool_ty());
  Term proj = Term::abs(x, Term::abs(y, first ? x : y));
  Thm applied = ap_thm(unfolded, proj);
  Thm lhs_eq = outer_proj_reduce(eq_lhs(applied.concl()));  // ... = p (or q)
  Thm rhs_eq = outer_proj_reduce(eq_rhs(applied.concl()));  // ... = T
  Thm chain = Thm::trans(Thm::trans(sym(lhs_eq), applied), rhs_eq);
  return eqt_elim(chain);
}

}  // namespace

Thm conjunct1(const Thm& pq) { return conjunct_proj(pq, true); }
Thm conjunct2(const Thm& pq) { return conjunct_proj(pq, false); }

Thm mp(const Thm& imp, const Thm& ante) {
  auto [pt, qt] = dest_imp(imp.concl());
  Thm unfolded = Thm::eq_mp(imp_unfold(pt, qt), imp);  // (p /\ q) = p
  Thm pq = Thm::eq_mp(sym(unfolded), ante);            // p /\ q
  return conjunct2(pq);
}

Thm disch(const Term& p, const Thm& th) {
  init_bool();
  if (p.type() != bool_ty()) throw KernelError("disch: antecedent not bool");
  Term q = th.concl();
  Thm th_a = conj(Thm::assume(p), th);                  // A u {p} |- p /\ q
  Thm th_b = conjunct1(Thm::assume(mk_conj(p, q)));     // {p/\q} |- p
  Thm d = Thm::deduct_antisym(th_a, th_b);              // A-{p} |- (p/\q) = p
  Thm unfold = imp_unfold(p, q);
  return Thm::eq_mp(sym(unfold), d);
}

Thm undisch(const Thm& th) {
  auto [pt, qt] = dest_imp(th.concl());
  (void)qt;
  return mp(th, Thm::assume(pt));
}

Thm gen(const Term& v, const Thm& th) {
  init_bool();
  Thm eq = Thm::abs(v, eqt_intro(th));  // (\v. p) = (\v. T)
  Term lam = eq_lhs(eq.concl());
  Thm unfold = forall_unfold(lam);      // (!v. p) = ((\v. p) = (\x. T))
  return Thm::eq_mp(sym(unfold), eq);
}

Thm gen_list(const std::vector<Term>& vs, const Thm& th) {
  Thm out = th;
  for (auto it = vs.rbegin(); it != vs.rend(); ++it) out = gen(*it, out);
  return out;
}

Thm spec(const Term& t, const Thm& th) {
  init_bool();
  if (!is_forall(th.concl())) {
    throw KernelError("spec: not a universal: " + th.concl().to_string());
  }
  Term lam = th.concl().rand();
  Thm unfold = forall_unfold(lam);
  Thm eq = Thm::eq_mp(unfold, th);      // (\x. p) = (\x. T)
  Thm applied = ap_thm(eq, t);          // (\x. p) t = (\x. T) t
  Thm lhs_beta = Thm::beta(eq_lhs(applied.concl()));
  Thm rhs_beta = Thm::beta(eq_rhs(applied.concl()));
  Thm chain = Thm::trans(Thm::trans(sym(lhs_beta), applied), rhs_beta);
  return eqt_elim(chain);
}

Thm spec_list(const std::vector<Term>& ts, const Thm& th) {
  Thm out = th;
  for (const Term& t : ts) out = spec(t, out);
  return out;
}

Thm pspec(const Term& t, const Thm& th) {
  if (!is_forall(th.concl())) {
    throw KernelError("pspec: not a universal");
  }
  auto [v, body] = dest_forall(th.concl());
  (void)body;
  if (v.type() == t.type()) return spec(t, th);
  kernel::TypeSubst theta;
  if (!kernel::type_match(v.type(), t.type(), theta)) {
    throw KernelError("pspec: " + t.type().to_string() +
                      " does not instantiate " + v.type().to_string());
  }
  return spec(t, Thm::inst_type(theta, th));
}

Thm pspec_list(const std::vector<Term>& ts, const Thm& th) {
  Thm out = th;
  for (const Term& t : ts) out = pspec(t, out);
  return out;
}

Thm spec_all(const Thm& th) {
  Thm out = th;
  std::set<Term> avoid;
  for (const Term& h : out.hyps()) kernel::collect_free_vars(h, avoid);
  kernel::collect_free_vars(out.concl(), avoid);
  while (is_forall(out.concl())) {
    auto [v, body] = dest_forall(out.concl());
    (void)body;
    Term v2 = kernel::variant(avoid, v);
    avoid.insert(v2);
    out = spec(v2, out);
  }
  return out;
}

Thm prove_hyp(const Thm& proof, const Thm& th) {
  bool present = false;
  for (const Term& h : th.hyps()) {
    if (h == proof.concl()) {
      present = true;
      break;
    }
  }
  if (!present) return th;
  return Thm::eq_mp(Thm::deduct_antisym(proof, th), proof);
}

Thm contr(const Term& p, const Thm& f_thm) {
  init_bool();
  if (!(f_thm.concl() == falsity_tm())) {
    throw KernelError("contr: theorem is not `|- F`");
  }
  Thm all_p = Thm::eq_mp(get_def("F"), f_thm);  // A |- !p. p
  return spec(p, all_p);
}

Thm not_elim(const Thm& th) {
  Term p = dest_neg(th.concl());
  return Thm::eq_mp(not_unfold(p), th);
}

Thm not_intro(const Thm& th) {
  auto [p, f] = dest_imp(th.concl());
  if (!(f == falsity_tm())) {
    throw KernelError("not_intro: conclusion is not `p ==> F`");
  }
  return Thm::eq_mp(sym(not_unfold(p)), th);
}

Thm disj1(const Thm& th, const Term& q) {
  init_bool();
  Term p = th.concl();
  Term r = fresh_var("r", bool_ty(),
                     all_hyps_and(th, {p, q}));
  Thm th1 = mp(Thm::assume(mk_imp(p, r)), th);
  Thm th2 = disch(mk_imp(q, r), th1);
  Thm th3 = disch(mk_imp(p, r), th2);
  Thm th4 = gen(r, th3);
  Thm unfold = or_unfold(p, q);
  return Thm::eq_mp(sym(unfold), th4);
}

Thm disj2(const Term& p, const Thm& th) {
  init_bool();
  Term q = th.concl();
  Term r = fresh_var("r", bool_ty(), all_hyps_and(th, {p, q}));
  Thm th1 = mp(Thm::assume(mk_imp(q, r)), th);
  Thm th2 = disch(mk_imp(q, r), th1);
  Thm th3 = disch(mk_imp(p, r), th2);
  // Order: (p ==> r) ==> (q ==> r) ==> r.  th2 gives (q==>r) ==> r.
  Thm th4 = gen(r, th3);
  Thm unfold = or_unfold(p, q);
  return Thm::eq_mp(sym(unfold), th4);
}

Thm disj_cases(const Thm& pq, const Thm& from_p, const Thm& from_q) {
  auto [p, q] = dest_disj(pq.concl());
  Term r = from_p.concl();
  if (!(from_q.concl() == r)) {
    throw KernelError("disj_cases: branch conclusions differ");
  }
  Thm unfolded = Thm::eq_mp(or_unfold(p, q), pq);
  Thm inst = spec(r, unfolded);  // (p ==> r) ==> (q ==> r) ==> r
  Thm s1 = mp(inst, disch(p, from_p));
  return mp(s1, disch(q, from_q));
}

Thm exists_intro(const Term& ex_tm, const Term& witness, const Thm& th) {
  init_bool();
  if (!is_exists(ex_tm)) throw KernelError("exists_intro: not an existential");
  Term lam = ex_tm.rand();
  Thm bth = Thm::beta(Term::comb(lam, witness));  // lam w = p[w/x]
  Thm th1 = Thm::eq_mp(sym(bth), th);             // A |- lam w
  // (?x.p) = !q. (!x. lam x ==> q) ==> q
  Thm unfold = exists_unfold(lam);
  Term target = eq_rhs(unfold.concl());
  auto [qv, body] = dest_forall(target);
  auto [asm_tm, qv2] = dest_imp(body);
  (void)qv2;
  Thm asm_th = Thm::assume(asm_tm);               // !x. lam x ==> q
  Thm at_w = spec(witness, asm_th);               // lam w ==> q
  Thm qth = mp(at_w, th1);                        // {asm} u A |- q
  Thm imp = disch(asm_tm, qth);
  Thm gened = gen(qv, imp);
  return Thm::eq_mp(sym(unfold), gened);
}

Thm choose(const Term& v, const Thm& ex_th, const Thm& th) {
  init_bool();
  if (!is_exists(ex_th.concl())) {
    throw KernelError("choose: not an existential");
  }
  Term lam = ex_th.concl().rand();
  Term r = th.concl();
  Thm bth = Thm::beta(Term::comb(lam, v));        // lam v = p[v/x]
  Term p_v = eq_rhs(bth.concl());
  Thm d = disch(p_v, th);                         // B-{p_v} |- p_v ==> r
  // (lam v ==> r) = (p_v ==> r)
  Term imp_c = Term::constant("==>", bool2());
  Thm cong = Thm::mk_comb(ap_term(imp_c, bth), Thm::refl(r));
  Thm d2 = Thm::eq_mp(sym(cong), d);              // lam v ==> r
  Thm gened = gen(v, d2);                         // !v. lam v ==> r
  Thm unfolded = Thm::eq_mp(exists_unfold(lam), ex_th);
  Thm inst = spec(r, unfolded);                   // (!x. lam x ==> r) ==> r
  return mp(inst, gened);
}

}  // namespace eda::logic
