#pragma once

#include "logic/bool_thms.h"

namespace eda::logic {

/// Derived boolean simplification clauses (HOL's AND_CLAUSES & friends),
/// proved from the kernel rules — these power the formal logic-minimisation
/// synthesis step and the bit-level initial-value evaluation.
/// All are cached after the first derivation.

/// |- !p. (T /\ p) = p        |- !p. (p /\ T) = p
/// |- !p. (F /\ p) = F        |- !p. (p /\ F) = F
/// |- !p. (p /\ p) = p
Thm and_t_left();
Thm and_t_right();
Thm and_f_left();
Thm and_f_right();
Thm and_idem();

/// |- !p. (T \/ p) = T        |- !p. (p \/ T) = T
/// |- !p. (F \/ p) = p        |- !p. (p \/ F) = p
/// |- !p. (p \/ p) = p
Thm or_t_left();
Thm or_t_right();
Thm or_f_left();
Thm or_f_right();
Thm or_idem();

/// |- ~T = F                   |- ~F = T
/// |- !p. ~~p = p
Thm not_t();
Thm not_f();
Thm not_not();

/// |- !x. (x = x) = T
Thm refl_clause();

/// |- !c x. (if c then x else x) = x   (COND_ID)
Thm cond_id();

/// Case split helper: from b, prove goal by rewriting under the assumption
/// b = T, then under b = F, and join with BOOL_CASES_AX.  `prove` receives
/// the assumption theorem (b = T or b = F) and must return A |- goal.
Thm bool_cases_on(const Term& b,
                  const std::function<Thm(const Thm&)>& prove);

/// All clauses above as a rewrite rule list (for rewrite_conv).
std::vector<Thm> bool_simp_clauses();

}  // namespace eda::logic
