#include "bdd/bdd.h"

#include <algorithm>
#include <array>
#include <functional>
#include <limits>

namespace eda::bdd {

namespace {
constexpr int kTermVar = std::numeric_limits<int>::max();
}

BddManager::BddManager(int num_vars, std::size_t node_limit)
    : num_vars_(num_vars), node_limit_(node_limit) {
  nodes_.push_back({kTermVar, 0, 0});  // FALSE
  nodes_.push_back({kTermVar, 1, 1});  // TRUE
}

int BddManager::top_var(BddId f) const {
  return nodes_[static_cast<std::size_t>(f)].var;
}

BddId BddManager::mk(int var, BddId lo, BddId hi) {
  if (lo == hi) return lo;
  NodeKey key{var, lo, hi};
  if (auto it = unique_.find(key); it != unique_.end()) return it->second;
  if (nodes_.size() >= node_limit_) {
    throw BddError("BDD node limit exceeded");
  }
  nodes_.push_back({var, lo, hi});
  BddId id = static_cast<BddId>(nodes_.size() - 1);
  unique_.emplace(key, id);
  return id;
}

BddId BddManager::var(int index) {
  if (index < 0 || index >= num_vars_) throw BddError("var out of range");
  return mk(index, 0, 1);
}

BddId BddManager::nvar(int index) { return mk(index, 1, 0); }

BddId BddManager::ite(BddId f, BddId g, BddId h) {
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;
  std::array<BddId, 3> key{f, g, h};
  if (auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    return it->second;
  }
  int v = std::min({top_var(f), top_var(g), top_var(h)});
  auto cof = [&](BddId x, bool hi) {
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    if (n.var != v) return x;
    return hi ? n.hi : n.lo;
  };
  BddId lo = ite(cof(f, false), cof(g, false), cof(h, false));
  BddId hi = ite(cof(f, true), cof(g, true), cof(h, true));
  BddId out = mk(v, lo, hi);
  ite_cache_.emplace(key, out);
  return out;
}

BddId BddManager::exists_rec(BddId f, const std::vector<int>& vars,
                             std::unordered_map<BddId, BddId>& memo) {
  if (f <= 1) return f;
  if (auto it = memo.find(f); it != memo.end()) return it->second;
  const Node n = nodes_[static_cast<std::size_t>(f)];
  // Skip past quantified variables above/at this level.
  BddId lo = exists_rec(n.lo, vars, memo);
  BddId hi = exists_rec(n.hi, vars, memo);
  BddId out;
  if (std::binary_search(vars.begin(), vars.end(), n.var)) {
    out = lor(lo, hi);
  } else {
    out = mk(n.var, lo, hi);
  }
  memo.emplace(f, out);
  return out;
}

BddId BddManager::exists(BddId f, const std::vector<int>& vars) {
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<BddId, BddId> memo;
  return exists_rec(f, sorted, memo);
}

BddId BddManager::and_exists_rec(
    BddId f, BddId g, const std::vector<int>& vars,
    std::unordered_map<std::uint64_t, BddId>& memo) {
  if (f == 0 || g == 0) return 0;
  if (f == 1 && g == 1) return 1;
  // Terminal-ish shortcut: plain conjunction once no quantified variable
  // can appear.
  int v = std::min(top_var(f), top_var(g));
  if (v == kTermVar) return land(f, g);
  std::uint64_t key = (static_cast<std::uint64_t>(f) << 32) |
                      static_cast<std::uint64_t>(g);
  if (auto it = memo.find(key); it != memo.end()) return it->second;
  auto cof = [&](BddId x, bool hi) {
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    if (n.var != v) return x;
    return hi ? n.hi : n.lo;
  };
  BddId lo = and_exists_rec(cof(f, false), cof(g, false), vars, memo);
  BddId out;
  if (std::binary_search(vars.begin(), vars.end(), v)) {
    if (lo == 1) {
      out = 1;  // early termination
    } else {
      BddId hi = and_exists_rec(cof(f, true), cof(g, true), vars, memo);
      out = lor(lo, hi);
    }
  } else {
    BddId hi = and_exists_rec(cof(f, true), cof(g, true), vars, memo);
    out = mk(v, lo, hi);
  }
  memo.emplace(key, out);
  return out;
}

BddId BddManager::and_exists(BddId f, BddId g, const std::vector<int>& vars) {
  std::vector<int> sorted = vars;
  std::sort(sorted.begin(), sorted.end());
  std::unordered_map<std::uint64_t, BddId> memo;
  return and_exists_rec(f, g, sorted, memo);
}

BddId BddManager::cofactor(BddId f, int var, bool value) {
  return compose(f, var, value ? 1 : 0);
}

BddId BddManager::rename(BddId f, const std::map<int, int>& var_map) {
  // Renaming must preserve order between mapped variables; the maps used
  // here (next-state <-> present-state) do, so a recursive rebuild works.
  std::unordered_map<BddId, BddId> memo;
  std::function<BddId(BddId)> rec = [&](BddId x) -> BddId {
    if (x <= 1) return x;
    if (auto it = memo.find(x); it != memo.end()) return it->second;
    const Node n = nodes_[static_cast<std::size_t>(x)];
    BddId lo = rec(n.lo), hi = rec(n.hi);
    int v = n.var;
    if (auto it = var_map.find(v); it != var_map.end()) v = it->second;
    BddId out = ite(mk(v, 0, 1), hi, lo);
    memo.emplace(x, out);
    return out;
  };
  return rec(f);
}

BddId BddManager::compose(BddId f, int var, BddId g) {
  std::unordered_map<BddId, BddId> memo;
  std::function<BddId(BddId)> rec = [&](BddId x) -> BddId {
    if (x <= 1) return x;
    if (auto it = memo.find(x); it != memo.end()) return it->second;
    const Node n = nodes_[static_cast<std::size_t>(x)];
    BddId out;
    if (n.var == var) {
      out = ite(g, n.hi, n.lo);
    } else if (n.var > var) {
      out = x;  // var cannot appear below
    } else {
      out = ite(mk(n.var, 0, 1), rec(n.hi), rec(n.lo));
    }
    memo.emplace(x, out);
    return out;
  };
  return rec(f);
}

std::vector<int> BddManager::support(BddId f) {
  std::vector<char> seen(static_cast<std::size_t>(num_vars_), 0);
  std::unordered_map<BddId, char> visited;
  std::function<void(BddId)> rec = [&](BddId x) {
    if (x <= 1 || visited.count(x) > 0) return;
    visited.emplace(x, 1);
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    seen[static_cast<std::size_t>(n.var)] = 1;
    rec(n.lo);
    rec(n.hi);
  };
  rec(f);
  std::vector<int> out;
  for (int v = 0; v < num_vars_; ++v) {
    if (seen[static_cast<std::size_t>(v)]) out.push_back(v);
  }
  return out;
}

std::size_t BddManager::size(BddId f) {
  std::unordered_map<BddId, char> visited;
  std::function<void(BddId)> rec = [&](BddId x) {
    if (x <= 1 || visited.count(x) > 0) return;
    visited.emplace(x, 1);
    const Node& n = nodes_[static_cast<std::size_t>(x)];
    rec(n.lo);
    rec(n.hi);
  };
  rec(f);
  return visited.size() + 2;
}

bool BddManager::eval(BddId f, const std::vector<bool>& assignment) const {
  BddId cur = f;
  while (cur > 1) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    cur = assignment[static_cast<std::size_t>(n.var)] ? n.hi : n.lo;
  }
  return cur == 1;
}

std::vector<bool> BddManager::any_sat(BddId f) const {
  if (f == 0) throw BddError("any_sat: unsatisfiable");
  std::vector<bool> out(static_cast<std::size_t>(num_vars_), false);
  BddId cur = f;
  while (cur > 1) {
    const Node& n = nodes_[static_cast<std::size_t>(cur)];
    if (n.hi != 0) {
      out[static_cast<std::size_t>(n.var)] = true;
      cur = n.hi;
    } else {
      cur = n.lo;
    }
  }
  return out;
}

}  // namespace eda::bdd
