#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include <array>
#include <functional>

#include "kernel/error.h"

namespace eda::bdd {

/// Node handle; 0 is the FALSE terminal, 1 the TRUE terminal.
using BddId = int;

class BddError : public kernel::KernelError {
 public:
  explicit BddError(const std::string& what) : kernel::KernelError(what) {}
};

/// Reduced ordered BDD manager with a unique table and an ite computed
/// table.  Variable order is the index order (0 at the top).  This is the
/// substrate for the tautology checker, the SMV-style model checker and
/// the van Eijk traversal baselines — the data structure whose exponential
/// growth the paper's tables demonstrate.
///
/// Threading model: *confinement*, not sharing.  A BddManager instance is
/// owned by exactly one thread at a time; the parallel verification
/// pipeline (verify/parallel_verify.h) gives each obligation its own
/// manager, which is also the memory-efficient choice — node ids are
/// manager-relative, so one obligation's unique/ite tables are meaningless
/// to another's product machine.  Sharding these per-instance tables would
/// only serialise the deeply recursive ite() walks behind locks.
class BddManager {
 public:
  explicit BddManager(int num_vars, std::size_t node_limit = 50'000'000);

  int num_vars() const { return num_vars_; }
  std::size_t node_table_size() const { return nodes_.size(); }

  BddId false_bdd() const { return 0; }
  BddId true_bdd() const { return 1; }
  BddId literal(bool v) const { return v ? 1 : 0; }
  BddId var(int index);
  BddId nvar(int index);

  BddId ite(BddId f, BddId g, BddId h);
  BddId land(BddId a, BddId b) { return ite(a, b, 0); }
  BddId lor(BddId a, BddId b) { return ite(a, 1, b); }
  BddId lxor(BddId a, BddId b) { return ite(a, lnot(b), b); }
  BddId lnot(BddId a) { return ite(a, 0, 1); }
  BddId lxnor(BddId a, BddId b) { return lnot(lxor(a, b)); }
  BddId implies(BddId a, BddId b) { return ite(a, b, 1); }

  /// Existential quantification over a set of variables.
  BddId exists(BddId f, const std::vector<int>& vars);
  /// Relational product  exists vars. f /\ g  (single pass, the core of
  /// symbolic image computation).
  BddId and_exists(BddId f, BddId g, const std::vector<int>& vars);
  /// Cofactor f|_{var=value}.
  BddId cofactor(BddId f, int var, bool value);
  /// Simultaneous variable-to-variable renaming.
  BddId rename(BddId f, const std::map<int, int>& var_map);
  /// Substitute a function for a variable: f[var := g].
  BddId compose(BddId f, int var, BddId g);

  /// Support variables of f.
  std::vector<int> support(BddId f);
  /// DAG size of f.
  std::size_t size(BddId f);
  /// Evaluate under a full assignment.
  bool eval(BddId f, const std::vector<bool>& assignment) const;
  /// Any satisfying assignment (empty optional when f = FALSE semantics:
  /// throws on FALSE; callers check first).
  std::vector<bool> any_sat(BddId f) const;

 private:
  struct Node {
    int var;
    BddId lo, hi;
  };
  struct NodeKey {
    int var;
    BddId lo, hi;
    bool operator==(const NodeKey& o) const {
      return var == o.var && lo == o.lo && hi == o.hi;
    }
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::size_t h = static_cast<std::size_t>(k.var);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::size_t>(k.lo);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::size_t>(k.hi);
      return h;
    }
  };
  struct TripleHash {
    std::size_t operator()(const std::array<BddId, 3>& k) const {
      std::size_t h = static_cast<std::size_t>(k[0]);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::size_t>(k[1]);
      h = h * 0x9e3779b97f4a7c15ULL + static_cast<std::size_t>(k[2]);
      return h;
    }
  };

  BddId mk(int var, BddId lo, BddId hi);
  int top_var(BddId f) const;
  BddId exists_rec(BddId f, const std::vector<int>& vars,
                   std::unordered_map<BddId, BddId>& memo);
  BddId and_exists_rec(BddId f, BddId g, const std::vector<int>& vars,
                       std::unordered_map<std::uint64_t, BddId>& memo);

  int num_vars_;
  std::size_t node_limit_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddId, NodeKeyHash> unique_;
  std::unordered_map<std::array<BddId, 3>, BddId, TripleHash> ite_cache_;
};

}  // namespace eda::bdd
