#pragma once

#include <atomic>
#include <mutex>

namespace eda::kernel {

/// One-time initialisation guard for the theory-init functions.
///
/// Plain `std::call_once` / magic statics would self-deadlock here: the
/// init bodies build terms through public helpers that call the same init
/// function again (init_bool's builders call init_bool, and so on).  This
/// guard makes same-thread re-entry a no-op — matching the historical
/// `static bool done` early-return — while other threads block until the
/// body finishes, so no thread can observe a half-initialised theory.
///
/// Like the pattern it replaces, a body that throws poisons the guard
/// (later calls are no-ops); theory init failing is fatal anyway.
class InitOnce {
 public:
  template <typename Fn>
  void run(Fn&& body) {
    if (done_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::recursive_mutex> lock(mu_);
    if (running_ || done_.load(std::memory_order_relaxed)) return;
    running_ = true;
    body();
    done_.store(true, std::memory_order_release);
  }

 private:
  std::atomic<bool> done_{false};
  std::recursive_mutex mu_;
  bool running_ = false;  ///< guarded by mu_; true only in the init thread
};

}  // namespace eda::kernel
