#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace eda::kernel::detail {

/// Bump-pointer arena backing the interned Type/Term nodes.  Interned nodes
/// are canonical for the whole process — pointer identity IS structural
/// identity — so the arena never frees individual nodes and is itself
/// intentionally leaked (see the interner singletons in types.cpp/terms.cpp):
/// memoisation tables keyed on node pointers stay valid for the lifetime of
/// the program, and everything remains reachable for the leak sanitizer.
///
/// Each intern shard owns one arena; allocation happens only inside the
/// shard's insert path, under the shard mutex, so the arena itself needs no
/// synchronisation.
class Arena {
 public:
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Relaxed atomic: written under the owning shard's mutex but read
  /// lock-free by the stats accessors, which may overlap inserts.
  std::size_t bytes_allocated() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  void* allocate(std::size_t size, std::size_t align) {
    std::size_t mis = reinterpret_cast<std::uintptr_t>(cur_) & (align - 1);
    std::size_t pad = mis == 0 ? 0 : align - mis;
    if (left_ < size + pad) {
      std::size_t chunk = size > kChunkSize ? size : kChunkSize;
      chunks_.push_back(std::make_unique<unsigned char[]>(chunk + align));
      cur_ = chunks_.back().get();
      left_ = chunk + align;
      mis = reinterpret_cast<std::uintptr_t>(cur_) & (align - 1);
      pad = mis == 0 ? 0 : align - mis;
    }
    cur_ += pad;
    left_ -= pad;
    void* p = cur_;
    cur_ += size;
    left_ -= size;
    bytes_.store(bytes_.load(std::memory_order_relaxed) + size + pad,
                 std::memory_order_relaxed);
    return p;
  }

  static constexpr std::size_t kChunkSize = 1 << 16;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* cur_ = nullptr;
  std::size_t left_ = 0;
  std::atomic<std::size_t> bytes_{0};
};

/// One shard of the concurrent intern table: an open-addressing
/// (linear-probing, power-of-two capacity) table of arena-backed nodes with
/// a read-mostly protocol.
///
/// Lookups are lock-free: the slot array holds atomic pointers, writers
/// publish a fully-constructed node with a release store and readers probe
/// with acquire loads, so a reader can never observe a half-built node.
/// Misses fall back to the shard mutex, re-probe (another thread may have
/// won the race), and only then construct + insert.  `make()` therefore runs
/// at most once per distinct structure, preserving the hash-consing
/// invariant (pointer identity ⇔ structural identity) under concurrency.
///
/// Growth allocates a fresh slot array and republishes; superseded arrays
/// are retired but kept alive forever (the interner is process-permanent
/// anyway), so a reader still probing an old array sees a consistent —
/// merely stale — view and retries under the lock on miss.
template <typename Node>
class InternShard {
 public:
  InternShard() {
    tables_.push_back(make_table(kInitialCapacity));
    // No concurrency can exist during construction; a relaxed store
    // suffices to seed the current-table pointer.
    cur_.store(tables_.front(), std::memory_order_relaxed);
  }

  ~InternShard() {
    for (Slot* t : tables_) delete[] table_base(t);
  }

  template <typename Eq, typename Make>
  const Node* intern(std::size_t h, Eq&& eq, Make&& make) {
    Slot* t = cur_.load(std::memory_order_acquire);
    if (const Node* n = probe(t, h, eq)) {
      count_hit();
      return n;
    }
    std::lock_guard<std::mutex> lock(mu_);
    t = cur_.load(std::memory_order_relaxed);
    if (const Node* n = probe(t, h, eq)) {
      count_hit();
      return n;
    }
    // Grow at 50% load: linear-probe chains touch whole nodes (shash +
    // shallow fields) that live across arena pages, so short chains matter
    // more than slot-array memory (which is just pointers).
    if ((count_.load(std::memory_order_relaxed) + 1) * 2 >=
        table_mask(t) + 1) {
      t = grow(t);
    }
    const Node* n = make(arena_);
    std::size_t mask = table_mask(t);
    std::size_t i = h & mask;
    while (t[i].load(std::memory_order_relaxed) != nullptr) {
      i = (i + 1) & mask;
    }
    t[i].store(n, std::memory_order_release);
    count_.fetch_add(1, std::memory_order_relaxed);
    return n;
  }

  std::size_t size() const { return count_.load(std::memory_order_relaxed); }
  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Arena bytes; racy against concurrent inserts but only used for stats.
  std::size_t arena_bytes() const { return arena_.bytes_allocated(); }

 private:
  /// One published table is a raw array of atomic node pointers whose
  /// power-of-two mask is stored in the preceding element (the first slot
  /// of the allocation, cast to an integer).  Publishing a single pointer
  /// keeps the read path at one dependent load before probing — the mask
  /// always belongs to the array it precedes, so readers can never pair a
  /// new mask with an old array.
  using Slot = std::atomic<const Node*>;

  static constexpr std::size_t kInitialCapacity = 256;

  static Slot* make_table(std::size_t cap) {
    // C++17 std::atomic default-construction leaves the value
    // indeterminate; initialise every element explicitly.
    Slot* base = new Slot[cap + 1];
    base[0].store(reinterpret_cast<const Node*>(cap - 1),
                  std::memory_order_relaxed);
    for (std::size_t i = 1; i <= cap; ++i) {
      base[i].store(nullptr, std::memory_order_relaxed);
    }
    return base + 1;
  }

  static Slot* table_base(Slot* t) { return t - 1; }
  static std::size_t table_mask(const Slot* t) {
    return reinterpret_cast<std::size_t>(
        t[-1].load(std::memory_order_relaxed));
  }

  template <typename Eq>
  const Node* probe(const Slot* t, std::size_t h, Eq&& eq) const {
    std::size_t mask = table_mask(t);
    std::size_t i = h & mask;
    for (;;) {
      const Node* n = t[i].load(std::memory_order_acquire);
      if (n == nullptr) return nullptr;
      if (n->shash == h && eq(n)) return n;
      i = (i + 1) & mask;
    }
  }

  /// Called under mu_.  Readers may still probe the old array; it stays
  /// alive in tables_.
  Slot* grow(Slot* old) {
    std::size_t old_cap = table_mask(old) + 1;
    Slot* next = make_table(old_cap * 2);
    std::size_t mask = table_mask(next);
    for (std::size_t k = 0; k < old_cap; ++k) {
      const Node* n = old[k].load(std::memory_order_relaxed);
      if (n == nullptr) continue;
      std::size_t i = n->shash & mask;
      while (next[i].load(std::memory_order_relaxed) != nullptr) {
        i = (i + 1) & mask;
      }
      next[i].store(n, std::memory_order_relaxed);
    }
    tables_.push_back(next);
    cur_.store(next, std::memory_order_release);
    return next;
  }

  /// Hit counting is deliberately non-atomic-RMW: a plain relaxed
  /// load+store keeps the hot hit path free of locked instructions at the
  /// cost of occasionally losing an increment under contention.  The stat
  /// is exact in single-threaded runs and approximate otherwise.
  void count_hit() {
    hits_.store(hits_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  }

  std::mutex mu_;  ///< serialises inserts and growth
  Arena arena_;    ///< node storage, touched only under mu_
  std::vector<Slot*> tables_;  ///< all arrays, ever (freed on destruction)
  std::atomic<Slot*> cur_{nullptr};
  std::atomic<std::size_t> count_{0};
  // Own cache line: the hit counter is stored on every table hit and must
  // not share a line with cur_, which every probe loads.
  alignas(64) std::atomic<std::size_t> hits_{0};
};

/// Sharded concurrent intern table: `kShards` independent InternShards
/// selected by the top bits of the structural hash (the bottom bits index
/// slots within a shard, so the two are independent).  Each shard has its
/// own mutex and arena; threads interning structurally unrelated nodes
/// almost never contend.
template <typename Node, std::size_t kShardBits = 3>
class InternTable {
 public:
  static constexpr std::size_t kShards = std::size_t{1} << kShardBits;

  /// Return the canonical node with structural hash `h` matching `eq`,
  /// inserting the node produced by `make(arena)` (whose shash must equal
  /// `h`) when no match exists.  `make` runs at most once per structure,
  /// under the owning shard's lock, and allocates from that shard's arena.
  template <typename Eq, typename Make>
  const Node* intern(std::size_t h, Eq&& eq, Make&& make) {
    return shards_[shard_of(h)].intern(h, std::forward<Eq>(eq),
                                       std::forward<Make>(make));
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.size();
    return n;
  }
  std::size_t hits() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.hits();
    return n;
  }
  std::size_t arena_bytes() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.arena_bytes();
    return n;
  }

 private:
  static std::size_t shard_of(std::size_t h) {
    // Comb/Abs structural hashes are built from pointer values whose
    // entropy rarely reaches the top bits of the word (std::hash on
    // pointers is the identity), so finalize with a Fibonacci multiply
    // before taking the top bits — without it, every pointer-keyed node
    // lands in one shard and the striping is a single global lock.  The
    // cast narrows the ULL product back to the word size so the
    // width-relative shift leaves exactly kShardBits bits on 32-bit
    // targets too.
    std::size_t mixed =
        static_cast<std::size_t>(h * 0x9e3779b97f4a7c15ULL);
    return mixed >> (sizeof(std::size_t) * 8 - kShardBits);
  }

  InternShard<Node> shards_[kShards];
};

/// Interning statistics for one node kind, surfaced through
/// `Type::intern_stats()` / `Term::intern_stats()` for tests and tools.
/// Under concurrent construction the numbers are racy snapshots; the hit
/// count in particular is approximate (see InternShard::count_hit).
struct InternStats {
  std::size_t live_nodes = 0;   ///< distinct interned nodes
  std::size_t hits = 0;         ///< constructor calls answered from the table
  std::size_t arena_bytes = 0;  ///< node storage (excluding string heaps)
};

}  // namespace eda::kernel::detail
