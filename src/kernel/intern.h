#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace eda::kernel::detail {

/// Bump-pointer arena backing the interned Type/Term nodes.  Interned nodes
/// are canonical for the whole process — pointer identity IS structural
/// identity — so the arena never frees individual nodes and is itself
/// intentionally leaked (see the interner singletons in types.cpp/terms.cpp):
/// memoisation tables keyed on node pointers stay valid for the lifetime of
/// the program, and everything remains reachable for the leak sanitizer.
///
/// The kernel is single-threaded (as is the existing global theorem counter);
/// neither the arena nor the intern tables are synchronized.
class Arena {
 public:
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  std::size_t bytes_allocated() const { return bytes_; }

 private:
  void* allocate(std::size_t size, std::size_t align) {
    std::size_t mis = reinterpret_cast<std::uintptr_t>(cur_) & (align - 1);
    std::size_t pad = mis == 0 ? 0 : align - mis;
    if (left_ < size + pad) {
      std::size_t chunk = size > kChunkSize ? size : kChunkSize;
      chunks_.push_back(std::make_unique<unsigned char[]>(chunk + align));
      cur_ = chunks_.back().get();
      left_ = chunk + align;
      mis = reinterpret_cast<std::uintptr_t>(cur_) & (align - 1);
      pad = mis == 0 ? 0 : align - mis;
    }
    cur_ += pad;
    left_ -= pad;
    void* p = cur_;
    cur_ += size;
    left_ -= size;
    bytes_ += size + pad;
    return p;
  }

  static constexpr std::size_t kChunkSize = 1 << 16;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* cur_ = nullptr;
  std::size_t left_ = 0;
  std::size_t bytes_ = 0;
};

/// Open-addressing (linear-probing, power-of-two capacity) intern table of
/// arena-backed nodes.  `Node` must expose a `std::size_t shash` field — the
/// structural hash used as the probe key.  Because children are interned
/// before their parents, the equality probe only ever needs shallow
/// (pointer / scalar) comparisons, so a find-or-insert is O(1) amortised.
template <typename Node>
class InternTable {
 public:
  /// Return the canonical node with structural hash `h` matching `eq`,
  /// inserting the node produced by `make()` (whose shash must equal `h`)
  /// when no match exists.
  template <typename Eq, typename Make>
  const Node* intern(std::size_t h, Eq&& eq, Make&& make) {
    if ((count_ + 1) * 4 >= slots_.size() * 3) grow();
    std::size_t mask = slots_.size() - 1;
    std::size_t i = h & mask;
    while (slots_[i] != nullptr) {
      const Node* n = slots_[i];
      if (n->shash == h && eq(n)) {
        ++hits_;
        return n;
      }
      i = (i + 1) & mask;
    }
    const Node* n = make();
    slots_[i] = n;
    ++count_;
    return n;
  }

  std::size_t size() const { return count_; }
  std::size_t hits() const { return hits_; }

 private:
  void grow() {
    std::vector<const Node*> old = std::move(slots_);
    slots_.assign(old.size() * 2, nullptr);
    std::size_t mask = slots_.size() - 1;
    for (const Node* n : old) {
      if (n == nullptr) continue;
      std::size_t i = n->shash & mask;
      while (slots_[i] != nullptr) i = (i + 1) & mask;
      slots_[i] = n;
    }
  }

  std::vector<const Node*> slots_ = std::vector<const Node*>(1024, nullptr);
  std::size_t count_ = 0;
  std::size_t hits_ = 0;
};

/// Interning statistics for one node kind, surfaced through
/// `Type::intern_stats()` / `Term::intern_stats()` for tests and tools.
struct InternStats {
  std::size_t live_nodes = 0;   ///< distinct interned nodes
  std::size_t hits = 0;         ///< constructor calls answered from the table
  std::size_t arena_bytes = 0;  ///< node storage (excluding string heaps)
};

}  // namespace eda::kernel::detail
