#pragma once

#include <stdexcept>
#include <string>

namespace eda::kernel {

/// Error thrown by the trusted kernel when an ill-formed object would be
/// constructed (ill-typed term, inapplicable inference rule, signature
/// clash).  Following the LCF discipline, *every* failure mode of the core
/// surfaces as this exception; it is the mechanism by which a faulty
/// synthesis heuristic is rejected (paper, section IV.C).
class KernelError : public std::runtime_error {
 public:
  explicit KernelError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace eda::kernel
