#pragma once

#include <map>
#include <optional>
#include <shared_mutex>
#include <string>

#include "kernel/thm.h"

namespace eda::kernel {

/// The global logical signature: registered type operators, term constants
/// with their generic types, installed axioms and constant definitions.
///
/// Theories (bool, pair, num, automata, ...) extend the signature at
/// initialisation time.  All registration calls are *idempotent when
/// identical* — re-declaring the same constant at the same generic type (or
/// re-installing an alpha-equivalent axiom under the same name) returns the
/// original entry, while any conflicting redefinition throws.  This keeps
/// the kernel sound while letting independent modules initialise the
/// theories they need in any order.
///
/// Thread-safe: lookups take a shared lock, registration an exclusive one.
/// Registration is rare (theory init plus a handful of derived-theorem
/// stores), so reads — the only hot path — never contend with each other.
class Signature {
 public:
  static Signature& instance();

  Signature(const Signature&) = delete;
  Signature& operator=(const Signature&) = delete;

  // --- Type operators -------------------------------------------------------

  void declare_type(const std::string& name, std::size_t arity);
  bool has_type(const std::string& name) const;
  std::size_t type_arity(const std::string& name) const;
  /// Recursively check that all operators in `ty` are declared with the
  /// right arity.
  void check_type(const Type& ty) const;

  // --- Constants -------------------------------------------------------------

  void declare_const(const std::string& name, const Type& generic_ty);
  bool has_const(const std::string& name) const;
  Type const_type(const std::string& name) const;
  /// Constant instance at its generic type.
  Term mk_const(const std::string& name) const;
  /// Constant instance at a concrete type, checked to be a substitution
  /// instance of the generic type.
  Term mk_const_at(const std::string& name, const Type& concrete) const;

  // --- Definitions and axioms ------------------------------------------------

  /// Definitional extension:  introduces constant `name` with defining
  /// theorem `|- name = rhs`.  Requires `rhs` closed.  Sound: a model of the
  /// old signature extends to the new one by interpreting `name` as `rhs`.
  Thm new_definition(const std::string& name, const Term& rhs);

  /// Install an axiom under a theorem name.  Used only by the theory
  /// modules to install the documented axiom bases (bool/pair/num); the
  /// complete list is visible via `axioms()`.
  Thm new_axiom(const std::string& thm_name, const Term& prop);

  /// Look up a previously installed axiom or definition by name.
  std::optional<Thm> find_theorem(const std::string& thm_name) const;
  Thm theorem(const std::string& thm_name) const;

  /// Store a *derived* theorem under a name (a convenience registry; it does
  /// not bypass the kernel since the Thm was already constructed legally).
  void store_theorem(const std::string& thm_name, const Thm& th);

  /// All installed axioms, for auditing (a snapshot copy — the live map
  /// may be extended concurrently by theory initialisation).
  std::map<std::string, Thm> axioms() const;

 private:
  Signature();

  // Unlocked cores, called with mu_ held (shared for the const ones,
  // exclusive for the mutating ones).  std::shared_mutex is not recursive,
  // so the public wrappers never call each other.
  void check_type_unlocked(const Type& ty) const;
  void declare_const_unlocked(const std::string& name,
                              const Type& generic_ty);
  Type const_type_unlocked(const std::string& name) const;

  mutable std::shared_mutex mu_;
  std::map<std::string, std::size_t> type_ops_;
  std::map<std::string, Type> consts_;
  std::map<std::string, Thm> axioms_;      // new_axiom results
  std::map<std::string, Thm> theorems_;    // definitions + stored theorems
};

}  // namespace eda::kernel
