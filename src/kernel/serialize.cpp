#include "kernel/serialize.h"

#include <cstring>
#include <set>
#include <utility>

namespace eda::kernel {

namespace {

// Node-record kind bytes.  Distinct enumerations for the two tables so a
// mis-framed file fails fast instead of decoding nonsense.
constexpr std::uint8_t kTypeVar = 0;
constexpr std::uint8_t kTypeApp = 1;
constexpr std::uint8_t kTermVar = 0;
constexpr std::uint8_t kTermConst = 1;
constexpr std::uint8_t kTermComb = 2;
constexpr std::uint8_t kTermAbs = 3;

constexpr char kMagic[4] = {'E', 'D', 'A', 'C'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;

[[noreturn]] void fail(const std::string& what) {
  throw SerializeError("serialize: " + what);
}

}  // namespace

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// --- Encoder ---------------------------------------------------------------

void Encoder::put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void Encoder::put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Encoder::put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void Encoder::put_str(std::string& out, const std::string& s) {
  if (s.size() > 0xffffffffULL) fail("string too long");
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void Encoder::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(payload_, bits);
}

std::uint32_t Encoder::type_index(const Type& ty) {
  if (auto it = type_ids_.find(ty.node_id()); it != type_ids_.end()) {
    return it->second;
  }
  // Iterative post-order: children are assigned indices (and emitted)
  // strictly before their parents, so table records only ever reference
  // earlier entries.  Explicit stack — interned DAGs can be deep.
  struct Item {
    Type ty;
    bool expanded;
  };
  std::vector<Item> stack{{ty, false}};
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    if (type_ids_.count(item.ty.node_id()) != 0) continue;
    if (!item.expanded) {
      stack.push_back({item.ty, true});
      if (item.ty.is_app()) {
        for (const Type& a : item.ty.args()) {
          if (type_ids_.count(a.node_id()) == 0) stack.push_back({a, false});
        }
      }
      continue;
    }
    if (item.ty.is_var()) {
      put_u8(type_table_, kTypeVar);
      put_str(type_table_, item.ty.name());
    } else {
      put_u8(type_table_, kTypeApp);
      put_str(type_table_, item.ty.name());
      put_u32(type_table_,
              static_cast<std::uint32_t>(item.ty.args().size()));
      for (const Type& a : item.ty.args()) {
        put_u32(type_table_, type_ids_.at(a.node_id()));
      }
    }
    type_ids_.emplace(item.ty.node_id(),
                      static_cast<std::uint32_t>(type_ids_.size()));
  }
  return type_ids_.at(ty.node_id());
}

std::uint32_t Encoder::term_index(const Term& t) {
  if (auto it = term_ids_.find(t.node_id()); it != term_ids_.end()) {
    return it->second;
  }
  struct Item {
    Term t;
    bool expanded;
  };
  std::vector<Item> stack{{t, false}};
  while (!stack.empty()) {
    Item item = std::move(stack.back());
    stack.pop_back();
    if (term_ids_.count(item.t.node_id()) != 0) continue;
    if (!item.expanded) {
      stack.push_back({item.t, true});
      if (item.t.is_comb()) {
        stack.push_back({item.t.rand(), false});
        stack.push_back({item.t.rator(), false});
      } else if (item.t.is_abs()) {
        stack.push_back({item.t.body(), false});
        stack.push_back({item.t.bound_var(), false});
      }
      continue;
    }
    switch (item.t.kind()) {
      case Term::Kind::Var:
      case Term::Kind::Const:
        put_u8(term_table_,
               item.t.is_var() ? kTermVar : kTermConst);
        put_str(term_table_, item.t.name());
        put_u32(term_table_, type_index(item.t.type()));
        break;
      case Term::Kind::Comb:
        put_u8(term_table_, kTermComb);
        put_u32(term_table_, term_ids_.at(item.t.rator().node_id()));
        put_u32(term_table_, term_ids_.at(item.t.rand().node_id()));
        break;
      case Term::Kind::Abs:
        put_u8(term_table_, kTermAbs);
        put_u32(term_table_, term_ids_.at(item.t.bound_var().node_id()));
        put_u32(term_table_, term_ids_.at(item.t.body().node_id()));
        break;
    }
    term_ids_.emplace(item.t.node_id(),
                      static_cast<std::uint32_t>(term_ids_.size()));
  }
  return term_ids_.at(t.node_id());
}

void Encoder::thm(const Thm& th) {
  u32(static_cast<std::uint32_t>(th.hyps().size()));
  for (const Term& h : th.hyps()) term(h);
  term(th.concl());
  u32(static_cast<std::uint32_t>(th.oracles().size()));
  for (const std::string& tag : th.oracles()) str(tag);
}

std::string Encoder::finish() const {
  std::string body;
  put_u32(body, static_cast<std::uint32_t>(type_ids_.size()));
  body += type_table_;
  put_u32(body, static_cast<std::uint32_t>(term_ids_.size()));
  body += term_table_;
  body += payload_;

  std::string out(kMagic, sizeof kMagic);
  put_u32(out, kSerializeVersion);
  put_u64(out, fnv1a64(body));
  out += body;
  return out;
}

// --- Decoder ---------------------------------------------------------------

Decoder::Decoder(std::string_view bytes) : data_(bytes) {
  if (data_.size() < kHeaderBytes) fail("truncated header");
  if (std::memcmp(data_.data(), kMagic, sizeof kMagic) != 0) {
    fail("bad magic (not a cache file)");
  }
  pos_ = sizeof kMagic;
  std::uint32_t version = u32();
  if (version != kSerializeVersion) {
    fail("version skew (file v" + std::to_string(version) + ", expected v" +
         std::to_string(kSerializeVersion) + ")");
  }
  std::uint64_t checksum = u64();
  if (checksum != fnv1a64(data_.substr(pos_))) fail("checksum mismatch");
  parse_tables();
}

void Decoder::need(std::size_t n) const {
  if (data_.size() - pos_ < n) fail("truncated input");
}

std::uint8_t Decoder::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t Decoder::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Decoder::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Decoder::f64() {
  std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Decoder::str() {
  std::uint32_t len = u32();
  need(len);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

const Type& Decoder::type_at(std::uint32_t idx) const {
  if (idx >= types_.size()) fail("type index out of range");
  return types_[idx];
}

const Term& Decoder::term_at(std::uint32_t idx) const {
  if (idx >= terms_.size()) fail("term index out of range");
  return terms_[idx];
}

Type Decoder::type() { return type_at(u32()); }
Term Decoder::term() { return term_at(u32()); }

void Decoder::parse_tables() {
  // Re-intern through the public constructors: each reconstructed node is
  // the canonical one for its structure, so identities, alpha hashes and
  // cached per-node attributes match whatever the process builds natively.
  // Counts are not trusted with reserve(): every iteration consumes at
  // least one byte, so a fabricated huge count dies on the bounds check
  // long before memory does.  The kernel constructors type-check; their
  // KernelErrors surface on genuinely ill-formed (yet checksum-valid)
  // content, which only a crafted file can contain — map them to
  // SerializeError so loaders treat it exactly like any other corruption.
  std::uint32_t n_types = u32();
  for (std::uint32_t i = 0; i < n_types; ++i) {
    std::uint8_t kind = u8();
    if (kind == kTypeVar) {
      types_.push_back(Type::var(str()));
    } else if (kind == kTypeApp) {
      std::string name = str();
      std::uint32_t argc = u32();
      std::vector<Type> args;
      for (std::uint32_t a = 0; a < argc; ++a) {
        std::uint32_t idx = u32();
        if (idx >= i) fail("type record references a later node");
        args.push_back(types_[idx]);
      }
      types_.push_back(Type::app(std::move(name), std::move(args)));
    } else {
      fail("bad type record kind");
    }
  }

  std::uint32_t n_terms = u32();
  for (std::uint32_t i = 0; i < n_terms; ++i) {
    std::uint8_t kind = u8();
    try {
      if (kind == kTermVar || kind == kTermConst) {
        std::string name = str();
        const Type& ty = type_at(u32());
        terms_.push_back(kind == kTermVar ? Term::var(std::move(name), ty)
                                          : Term::constant(std::move(name),
                                                           ty));
      } else if (kind == kTermComb || kind == kTermAbs) {
        std::uint32_t a = u32();
        std::uint32_t b = u32();
        if (a >= i || b >= i) fail("term record references a later node");
        if (kind == kTermComb) {
          terms_.push_back(Term::comb(terms_[a], terms_[b]));
        } else {
          if (!terms_[a].is_var()) fail("abs binder is not a variable");
          terms_.push_back(Term::abs(terms_[a], terms_[b]));
        }
      } else {
        fail("bad term record kind");
      }
    } catch (const SerializeError&) {
      throw;
    } catch (const KernelError& e) {
      fail(std::string("ill-typed term record (") + e.what() + ")");
    }
  }
}

Thm Decoder::thm() {
  // Reconstruction bypasses the inference rules, so re-validate the Thm
  // invariants the rules would have enforced: boolean hypotheses in strict
  // canonical order, boolean conclusion.  The trust argument for admitting
  // the result as a theorem is the file's provenance (this process — or an
  // earlier run of this binary — derived and saved it; the checksum and
  // version gate guard the bytes in between), the same extension of the
  // LCF story that lets proof assistants reload checked theory files.
  // Oracle tags round-trip, so a pure theorem stays pure and a tainted one
  // keeps its taint.
  std::uint32_t n_hyps = u32();
  std::vector<Term> hyps;
  for (std::uint32_t i = 0; i < n_hyps; ++i) {
    Term h = term();
    if (h.type() != bool_ty()) fail("non-boolean hypothesis");
    if (!hyps.empty() && Term::compare(hyps.back(), h) >= 0) {
      fail("hypotheses out of canonical order");
    }
    hyps.push_back(std::move(h));
  }
  Term concl = term();
  if (concl.type() != bool_ty()) fail("non-boolean conclusion");
  std::uint32_t n_tags = u32();
  std::set<std::string> oracles;
  for (std::uint32_t i = 0; i < n_tags; ++i) oracles.insert(str());
  return Thm(std::move(hyps), std::move(concl), std::move(oracles));
}

}  // namespace eda::kernel
