#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "kernel/shard.h"

namespace eda::kernel {

/// A sharded, reader-writer-locked memo table for pure functions over
/// interned (permanent) keys: the concurrent replacement for the hash
/// layer's former `static std::unordered_map` caches.
///
/// Lookups take one shard's shared lock; inserts take its exclusive lock.
/// `get_or_compute` runs the computation *outside* any lock — two threads
/// racing on the same key may both compute, but the first insert wins and
/// every caller observes that single canonical value, which is exactly the
/// memoisation contract for pure functions (ground evaluation, numeral
/// destruction, ...).  Never shrinks; values must be copyable.
template <typename Key, typename Value, typename Hash = std::hash<Key>,
          std::size_t kShards = 16>
class ConcurrentMemo {
 public:
  std::optional<Value> find(const Key& key) const {
    const Shard& s = shard_of(key);
    std::shared_lock<std::shared_mutex> lock(s.mu);
    if (auto it = s.map.find(key); it != s.map.end()) return it->second;
    return std::nullopt;
  }

  /// Insert if absent; returns the canonical (first-inserted) value.
  Value emplace(const Key& key, Value value) {
    Shard& s = shard_of(key);
    std::unique_lock<std::shared_mutex> lock(s.mu);
    auto [it, inserted] = s.map.emplace(key, std::move(value));
    return it->second;
  }

  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& compute) {
    if (auto hit = find(key)) return *hit;
    return emplace(key, compute());
  }

  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& s : shards_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      n += s.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Key, Value, Hash> map;
  };

  // Pointer keys hash to themselves and arena-allocated nodes share
  // alignment, so `Hash{}(key) % kShards` would put every entry in shard
  // 0.  kernel/shard.h multiply-mixes and takes high bits instead.
  static std::size_t shard_index(const Key& key) {
    return shard_index_of(Hash{}(key), kShards);
  }
  Shard& shard_of(const Key& key) { return shards_[shard_index(key)]; }
  const Shard& shard_of(const Key& key) const {
    return shards_[shard_index(key)];
  }

  Shard shards_[kShards];
};

}  // namespace eda::kernel
