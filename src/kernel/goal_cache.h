#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kernel/error.h"
#include "kernel/shard.h"
#include "kernel/terms.h"

namespace eda::kernel {

/// Hit/miss/size snapshot of a GoalCache (relaxed counters; the numbers
/// are statistics, not synchronisation).
struct GoalCacheStats {
  std::uint64_t hits = 0;    ///< obligations served from the shared cache
  std::uint64_t misses = 0;  ///< obligations proved here and published
  std::size_t entries = 0;

  double hit_rate() const {
    std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

/// A concurrent cache of discharged proof obligations, keyed on *goal
/// terms*: alpha-equivalent goals (same alpha-invariant hash, equal under
/// `Term::operator==`) share one entry, so an obligation that recurs across
/// circuits — the same (f, g, q) retiming instantiation at the same width,
/// the same product-machine check — is proved once per service lifetime and
/// every later job reuses the canonical value.
///
/// Values are typically `Thm` (the LCF discipline makes a cached theorem as
/// trustworthy as a fresh derivation: it *is* the derivation) or engine
/// verdicts (`VerifyResult`), which are pure functions of the goal.
///
/// Concurrency: sharded shared_mutex maps in the style of ConcurrentMemo
/// (kernel/memo.h), with the shard selector multiply-mixing the hash first
/// (ROADMAP lesson: structural hashes never push their entropy to the top
/// bits on their own).  `get_or_prove` runs the proof *outside* any lock;
/// when two jobs race on one goal both may prove it, but the first insert
/// wins, the loser's result is discarded, and the loser still counts as a
/// cache *hit* — its obligation is served by the shared canonical entry, and
/// k submissions of one goal always yield exactly 1 miss and k-1 hits
/// regardless of interleaving.
template <typename Value, std::size_t kShards = 8>
class GoalCache {
 public:
  /// Count-free lookup (statistics are maintained by get_or_prove only, so
  /// a probe-then-prove caller does not double-count).
  std::optional<Value> find(const Term& goal) const {
    const Shard& s = shard_of(goal);
    std::shared_lock<std::shared_mutex> lock(s.mu);
    if (auto it = s.map.find(goal); it != s.map.end()) return it->second;
    return std::nullopt;
  }

  /// Insert if absent; returns the canonical value and whether this call
  /// published it.
  std::pair<Value, bool> emplace(const Term& goal, Value value) {
    Shard& s = shard_of(goal);
    std::unique_lock<std::shared_mutex> lock(s.mu);
    auto [it, inserted] = s.map.emplace(goal, std::move(value));
    return {it->second, inserted};
  }

  /// First half of a two-phase get_or_prove_if, for callers that want to
  /// batch the proving of many missed goals (e.g. the service's batched
  /// BDD kernel): a present entry counts a hit and is returned; an absent
  /// one counts NOTHING yet — the caller is expected to prove the goal and
  /// publish() the result, which is where the miss lands.  A lookup that
  /// is never followed by its publish under-counts one miss; pair them.
  std::optional<Value> lookup(const Term& goal, bool* was_hit = nullptr) {
    if (auto v = find(goal)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (was_hit != nullptr) *was_hit = true;
      return v;
    }
    if (was_hit != nullptr) *was_hit = false;
    return std::nullopt;
  }

  /// Second half: publish the value proved for a goal whose lookup()
  /// missed, returning the canonical entry.  Accounting matches
  /// get_or_prove_if exactly — an insert counts the miss, losing the
  /// publication race counts a hit (the obligation is served by the shared
  /// entry), and `cacheable = false` (a budget-blown verdict, machine
  /// state rather than a goal property) skips insertion but still counts
  /// the miss — so k submissions of one goal through lookup()/publish()
  /// still yield exactly 1 miss and k-1 hits.  `inserted_out` (optional)
  /// reports whether this call published the entry (false on a lost race
  /// and for uncacheable values) — the cache-backend seam forwards it.
  Value publish(const Term& goal, Value value, bool cacheable = true,
                bool* inserted_out = nullptr) {
    if (!cacheable) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (inserted_out != nullptr) *inserted_out = false;
      return value;
    }
    auto [canonical, inserted] = emplace(goal, std::move(value));
    if (inserted) {
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      hits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (inserted_out != nullptr) *inserted_out = inserted;
    return canonical;
  }

  /// The service entry point: return the cached value for `goal`, proving
  /// it with `prove()` on a miss.  `was_hit` (optional) reports whether the
  /// returned value came from the shared cache.
  template <typename Fn>
  Value get_or_prove(const Term& goal, Fn&& prove, bool* was_hit = nullptr) {
    return get_or_prove_if(
        goal, std::forward<Fn>(prove), [](const Value&) { return true; },
        was_hit);
  }

  /// As get_or_prove, but a freshly proved value is only published when
  /// `should_cache(value)` holds.  For values that are not pure functions
  /// of the goal — an engine verdict that ran out of its wall-clock budget
  /// says something about the machine's load, not the goal — caching the
  /// failure would pin it for the service lifetime; such values are
  /// returned uncached (and still counted as misses).
  template <typename Fn, typename Pred>
  Value get_or_prove_if(const Term& goal, Fn&& prove, Pred&& should_cache,
                        bool* was_hit = nullptr) {
    if (auto v = find(goal)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (was_hit != nullptr) *was_hit = true;
      return *v;
    }
    Value fresh = prove();
    if (was_hit != nullptr) *was_hit = false;
    if (!should_cache(fresh)) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return fresh;
    }
    auto [canonical, inserted] = emplace(goal, std::move(fresh));
    if (inserted) {
      misses_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Lost the publication race: the obligation is nonetheless served by
      // the shared entry (see class comment).
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (was_hit != nullptr) *was_hit = true;
    }
    return canonical;
  }

  GoalCacheStats stats() const {
    GoalCacheStats st;
    st.hits = hits_.load(std::memory_order_relaxed);
    st.misses = misses_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      st.entries += s.map.size();
    }
    return st;
  }

  void clear() {
    for (Shard& s : shards_) {
      std::unique_lock<std::shared_mutex> lock(s.mu);
      s.map.clear();
    }
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

  /// Point-in-time copy of the entries, taken shard by shard under shared
  /// locks.  Concurrent inserts may or may not be included (each shard is
  /// internally consistent), which is exactly the contract a background
  /// cache snapshot needs: every entry it does contain was genuinely
  /// published.
  std::vector<std::pair<Term, Value>> snapshot() const {
    std::vector<std::pair<Term, Value>> out;
    for (const Shard& s : shards_) {
      std::shared_lock<std::shared_mutex> lock(s.mu);
      for (const auto& [goal, value] : s.map) out.emplace_back(goal, value);
    }
    return out;
  }

  /// Serialise the entries through `enc` (a kernel::Encoder or anything
  /// shaped like one): entry count, then per entry the goal term followed
  /// by whatever `encode_value(enc, value)` writes.  Runs against a
  /// snapshot, so jobs may keep publishing while a save is in flight.
  template <typename Enc, typename EncodeValue>
  void save(Enc& enc, EncodeValue&& encode_value) const {
    std::vector<std::pair<Term, Value>> snap = snapshot();
    if (snap.size() > 0xffffffffULL) {
      throw KernelError("GoalCache::save: too many entries");
    }
    enc.u32(static_cast<std::uint32_t>(snap.size()));
    for (const auto& [goal, value] : snap) {
      enc.term(goal);
      encode_value(enc, value);
    }
  }

  /// Inverse of save(): merge entries from `dec` into the cache (existing
  /// entries win — they were proved in this process).  Admission bypasses
  /// the hit/miss counters, so a warm-started service's statistics still
  /// describe only the traffic it actually served.  Returns the number of
  /// entries admitted; decode errors propagate to the caller, which is
  /// expected to stage into a scratch cache first (service/cache_file.h)
  /// so a malformed file never leaves partial state behind.
  template <typename Dec, typename DecodeValue>
  std::size_t load(Dec& dec, DecodeValue&& decode_value) {
    std::uint32_t n = dec.u32();
    std::size_t admitted = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      Term goal = dec.term();
      Value value = decode_value(dec);
      if (emplace(goal, std::move(value)).second) ++admitted;
    }
    return admitted;
  }

 private:
  struct AlphaHash {
    std::size_t operator()(const Term& t) const { return t.hash(); }
  };

  struct alignas(64) Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Term, Value, AlphaHash> map;
  };

  static std::size_t shard_index(const Term& goal) {
    return shard_index_of(goal.hash(), kShards);
  }
  Shard& shard_of(const Term& goal) { return shards_[shard_index(goal)]; }
  const Shard& shard_of(const Term& goal) const {
    return shards_[shard_index(goal)];
  }

  // Counters on their own cache lines (ROADMAP lesson: sharing a line with
  // hot table state costs double-digit percent on the fast path).
  alignas(64) mutable std::atomic<std::uint64_t> hits_{0};
  alignas(64) mutable std::atomic<std::uint64_t> misses_{0};
  Shard shards_[kShards];
};

}  // namespace eda::kernel
