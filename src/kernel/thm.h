#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "kernel/terms.h"

namespace eda::kernel {

class Decoder;

/// A theorem `A |- c` of the logic.  Following the LCF discipline the
/// constructor is private: the *only* ways to obtain a Thm are the primitive
/// inference rules below, definitional extension / axiom installation via
/// Signature, the explicitly-tagged Oracle, and reloading a checksummed
/// cache file this binary previously saved (kernel/serialize.h — the
/// persistent-cache analogue of a proof assistant reloading a checked
/// theory file; oracle tags round-trip, so provenance is preserved).
/// Consequently any Thm value in a running program is a genuine
/// derivation — this is the entire correctness argument of the HASH
/// approach (paper, section III.B).
///
/// Hypotheses are kept sorted and duplicate-free under alpha-conversion.
/// Every theorem carries the set of oracle tags it (transitively) depends
/// on; a theorem with an empty tag set was derived purely from the rules,
/// axioms and definitions.
class Thm {
 public:
  const std::vector<Term>& hyps() const { return hyps_; }
  const Term& concl() const { return concl_; }
  const std::set<std::string>& oracles() const { return oracles_; }
  bool is_pure() const { return oracles_.empty(); }

  std::string to_string() const;

  /// Number of theorems constructed since program start — every primitive
  /// rule application, definition, axiom installation and oracle admission
  /// increments it (copies do not).  This backs the paper's cost model
  /// quantitatively: a compound synthesis step's rule count is the sum of
  /// its parts plus a small constant for the transitivity application.
  static std::uint64_t theorems_constructed();

  // --- Primitive inference rules ------------------------------------------

  /// REFL:  |- t = t
  static Thm refl(const Term& t);
  /// TRANS:  A |- a = b,  B |- b = c   ==>   A u B |- a = c
  static Thm trans(const Thm& ab, const Thm& bc);
  /// MK_COMB:  A |- f = g,  B |- x = y   ==>   A u B |- f x = g y
  static Thm mk_comb(const Thm& fg, const Thm& xy);
  /// ABS:  A |- l = r   ==>   A |- (\v. l) = (\v. r)   (v not free in A)
  static Thm abs(const Term& v, const Thm& th);
  /// BETA:  |- (\v. b) a = b[a/v]   (capture-avoiding)
  static Thm beta(const Term& redex);
  /// ASSUME:  {p} |- p   (p must be boolean)
  static Thm assume(const Term& p);
  /// EQ_MP:  A |- p = q,  B |- p   ==>   A u B |- q
  static Thm eq_mp(const Thm& pq, const Thm& p);
  /// DEDUCT_ANTISYM:  A |- p,  B |- q  ==>  (A-{q}) u (B-{p}) |- p = q
  static Thm deduct_antisym(const Thm& p, const Thm& q);
  /// INST_TYPE: instantiate type variables throughout.
  static Thm inst_type(const TypeSubst& theta, const Thm& th);
  /// INST: instantiate free term variables throughout (capture-avoiding).
  static Thm inst(const TermSubst& theta, const Thm& th);
  /// ALPHA:  |- a = b   when a and b are alpha-equivalent.
  static Thm alpha(const Term& a, const Term& b);

 private:
  Thm(std::vector<Term> hyps, Term concl, std::set<std::string> oracles);

  std::vector<Term> hyps_;
  Term concl_;
  std::set<std::string> oracles_;

  static std::vector<Term> hyp_union(const std::vector<Term>& a,
                                     const std::vector<Term>& b);
  static std::vector<Term> hyp_remove(const std::vector<Term>& hs,
                                      const Term& t);
  static std::set<std::string> tag_union(const Thm& a, const Thm& b);

  friend class Signature;
  friend class Oracle;
  friend class Decoder;  ///< serialize.h cache reload (see class comment)
};

/// The single sanctioned escape hatch: admit a formula as a theorem with a
/// provenance *tag* that is propagated to every theorem derived from it.
/// The reproduction uses exactly one oracle, `NUM_COMPUTE`, for ground
/// numeral arithmetic (see theories/numeral.*); RETIMING_THM is proved
/// without it and the test suite asserts `is_pure()` on it.
class Oracle {
 public:
  static Thm admit(const std::string& tag, const Term& concl);
};

}  // namespace eda::kernel
