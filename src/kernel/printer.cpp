#include "kernel/printer.h"

#include <map>
#include <optional>

namespace eda::kernel {

namespace {

struct Fixity {
  int prec;
  bool right_assoc;
  std::string display;
};

// Higher precedence binds tighter.  Application is 100.
const std::map<std::string, Fixity>& infixes() {
  static const std::map<std::string, Fixity> table = {
      {"=", {30, false, "="}},     {"<=>", {25, false, "<=>"}},
      {"==>", {26, true, "==>"}},  {"\\/", {27, true, "\\/"}},
      {"/\\", {28, true, "/\\"}},  {"<", {32, false, "<"}},
      {"<=", {32, false, "<="}},   {"+", {40, true, "+"}},
      {"-", {40, false, "-"}},     {"*", {42, true, "*"}},
      {"DIV", {44, false, "DIV"}}, {"MOD", {44, false, "MOD"}},
      {"EXP", {46, true, "EXP"}},  {",", {20, true, ","}},
  };
  return table;
}

bool is_binder_const(const std::string& name) {
  return name == "!" || name == "?";
}

/// Try to read a numeral term `NUMERAL bits` (or a bare `_0`) as a number.
std::optional<unsigned long long> dest_numeral_bits(const Term& t) {
  if (t.is_const() && t.name() == "_0") return 0ULL;
  if (t.is_comb() && t.rator().is_const()) {
    const std::string& f = t.rator().name();
    auto inner = dest_numeral_bits(t.rand());
    if (!inner) return std::nullopt;
    if (f == "BIT0") return *inner * 2;
    if (f == "BIT1") return *inner * 2 + 1;
  }
  return std::nullopt;
}

std::optional<unsigned long long> dest_numeral(const Term& t) {
  if (t.is_comb() && t.rator().is_const() && t.rator().name() == "NUMERAL") {
    return dest_numeral_bits(t.rand());
  }
  return std::nullopt;
}

std::string print_term(const Term& t, int prec);

std::string print_app(const Term& t, int prec) {
  auto [head, args] = strip_comb(t);

  if (head.is_const()) {
    const std::string& name = head.name();
    // Equality at bool renders as <=>.
    std::string lookup = name;
    if (name == "=" && args.size() == 2 && args[0].type() == bool_ty()) {
      lookup = "<=>";
    }
    if (auto it = infixes().find(lookup); it != infixes().end() &&
                                          args.size() == 2) {
      const Fixity& fx = it->second;
      int lp = fx.prec + (fx.right_assoc ? 1 : 1);
      int rp = fx.prec + (fx.right_assoc ? 0 : 1);
      std::string body;
      if (lookup == ",") {
        body = print_term(args[0], lp) + ", " + print_term(args[1], rp);
        return "(" + body + ")";
      }
      body = print_term(args[0], lp) + " " + fx.display + " " +
             print_term(args[1], rp);
      if (fx.prec < prec) body = "(" + body + ")";
      return body;
    }
    if (is_binder_const(name) && args.size() == 1 && args[0].is_abs()) {
      std::string body = name + args[0].bound_var().name() + ". " +
                         print_term(args[0].body(), 0);
      if (prec > 0) body = "(" + body + ")";
      return body;
    }
    if (name == "~" && args.size() == 1) {
      return "~" + print_term(args[0], 99);
    }
    if (name == "COND" && args.size() == 3) {
      std::string body = "if " + print_term(args[0], 0) + " then " +
                         print_term(args[1], 0) + " else " +
                         print_term(args[2], 0);
      if (prec > 0) body = "(" + body + ")";
      return body;
    }
    if (name == "NUMERAL") {
      if (auto n = dest_numeral(t)) return std::to_string(*n);
    }
  }

  // Plain application chain.
  std::string s = print_term(head, 100);
  for (const Term& a : args) s += " " + print_term(a, 101);
  if (prec > 100) s = "(" + s + ")";
  return s;
}

std::string print_term(const Term& t, int prec) {
  switch (t.kind()) {
    case Term::Kind::Var:
      return t.name();
    case Term::Kind::Const: {
      if (t.name() == "_0") return "0";
      if (infixes().count(t.name()) > 0 || is_binder_const(t.name())) {
        return "(" + t.name() + ")";
      }
      return t.name();
    }
    case Term::Kind::Comb:
      return print_app(t, prec);
    case Term::Kind::Abs: {
      std::string body =
          "\\" + t.bound_var().name() + ". " + print_term(t.body(), 0);
      if (prec > 0) body = "(" + body + ")";
      return body;
    }
  }
  return "?";
}

}  // namespace

std::string pretty(const Term& t) { return print_term(t, 0); }

std::string pretty(const Thm& th) {
  std::string s;
  for (std::size_t i = 0; i < th.hyps().size(); ++i) {
    if (i > 0) s += ", ";
    s += pretty(th.hyps()[i]);
  }
  if (!th.hyps().empty()) s += " ";
  s += "|- " + pretty(th.concl());
  if (!th.oracles().empty()) {
    s += "   [oracles:";
    for (const std::string& t : th.oracles()) s += " " + t;
    s += "]";
  }
  return s;
}

std::string pretty_typed(const Term& t) {
  return pretty(t) + " : " + t.type().to_string();
}

}  // namespace eda::kernel
