#include "kernel/types.h"

#include <functional>

namespace eda::kernel {

namespace {

using detail::TypeNode;

std::size_t combine(std::size_t seed, std::size_t v) {
  // boost::hash_combine recipe.
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// The global type interner: a sharded concurrent intern table whose shards
/// each own a permanent arena.  Intentionally leaked so interned nodes (and
/// their string/vector heaps) stay reachable for the whole process — node
/// pointers double as memoisation keys throughout the prover.  Thread-safe:
/// lookups are lock-free, inserts take one shard mutex (see intern.h).
detail::InternTable<TypeNode>& interner() {
  static auto* in = new detail::InternTable<TypeNode>();
  return *in;
}

}  // namespace

Type Type::var(std::string name) {
  if (name.empty()) throw KernelError("Type::var: empty name");
  std::size_t h = combine(0x51, std::hash<std::string>{}(name));
  const TypeNode* n = interner().intern(
      h,
      [&](const TypeNode* c) {
        return c->kind == Kind::Var && c->name == name;
      },
      [&](detail::Arena& arena) {
        return arena.create<TypeNode>(Kind::Var, std::move(name),
                                      std::vector<Type>{}, h, true);
      });
  return Type(n);
}

Type Type::app(std::string op, std::vector<Type> args) {
  if (op.empty()) throw KernelError("Type::app: empty operator name");
  std::size_t h = combine(0xA9, std::hash<std::string>{}(op));
  for (const Type& a : args) h = combine(h, a.hash());
  const TypeNode* n = interner().intern(
      h,
      [&](const TypeNode* c) {
        if (c->kind != Kind::App || c->args.size() != args.size() ||
            c->name != op) {
          return false;
        }
        // Children are interned, so argument equality is pointer identity.
        for (std::size_t i = 0; i < args.size(); ++i) {
          if (c->args[i] != args[i]) return false;
        }
        return true;
      },
      [&](detail::Arena& arena) {
        bool poly = false;
        for (const Type& a : args) poly = poly || a.has_vars();
        return arena.create<TypeNode>(Kind::App, std::move(op),
                                      std::move(args), h, poly);
      });
  return Type(n);
}

detail::InternStats Type::intern_stats() {
  auto& in = interner();
  return {in.size(), in.hits(), in.arena_bytes()};
}

int Type::compare(const Type& a, const Type& b) {
  if (a.node_ == b.node_) return 0;
  if (a.kind() != b.kind()) return a.kind() == Kind::Var ? -1 : 1;
  if (int c = a.name().compare(b.name()); c != 0) return c < 0 ? -1 : 1;
  const auto& xs = a.args();
  const auto& ys = b.args();
  if (xs.size() != ys.size()) return xs.size() < ys.size() ? -1 : 1;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (int c = compare(xs[i], ys[i]); c != 0) return c;
  }
  return 0;
}

void Type::collect_vars(std::set<std::string>& out) const {
  if (!has_vars()) return;
  if (is_var()) {
    out.insert(name());
  } else {
    for (const Type& a : args()) a.collect_vars(out);
  }
}

std::string Type::to_string() const {
  if (is_var()) return name();
  if (name() == "fun" && args().size() == 2) {
    const Type& a = args()[0];
    std::string lhs = a.to_string();
    if (a.is_app() && (a.name() == "fun" || a.name() == "prod")) {
      lhs = "(" + lhs + ")";
    }
    return lhs + " -> " + args()[1].to_string();
  }
  if (name() == "prod" && args().size() == 2) {
    const Type& a = args()[0];
    const Type& b = args()[1];
    std::string lhs = a.to_string();
    if (a.is_app() && (a.name() == "fun" || a.name() == "prod")) {
      lhs = "(" + lhs + ")";
    }
    std::string rhs = b.to_string();
    if (b.is_app() && b.name() == "fun") rhs = "(" + rhs + ")";
    return lhs + " # " + rhs;
  }
  if (args().empty()) return name();
  std::string s = "(";
  for (std::size_t i = 0; i < args().size(); ++i) {
    if (i > 0) s += ", ";
    s += args()[i].to_string();
  }
  s += ") " + name();
  return s;
}

Type type_subst(const TypeSubst& theta, const Type& ty) {
  if (theta.empty() || !ty.has_vars()) return ty;
  if (ty.is_var()) {
    auto it = theta.find(ty.name());
    return it == theta.end() ? ty : it->second;
  }
  bool changed = false;
  std::vector<Type> args;
  args.reserve(ty.args().size());
  for (const Type& a : ty.args()) {
    Type a2 = type_subst(theta, a);
    if (a2 != a) changed = true;
    args.push_back(std::move(a2));
  }
  if (!changed) return ty;
  return Type::app(ty.name(), std::move(args));
}

bool type_match(const Type& pattern, const Type& concrete, TypeSubst& theta) {
  // Ground patterns (the common case for monomorphic rules) match exactly
  // when pointer-identical.
  if (!pattern.has_vars()) return pattern == concrete;
  if (pattern.is_var()) {
    auto [it, inserted] = theta.emplace(pattern.name(), concrete);
    return inserted || it->second == concrete;
  }
  if (!concrete.is_app() || pattern.name() != concrete.name() ||
      pattern.args().size() != concrete.args().size()) {
    return false;
  }
  for (std::size_t i = 0; i < pattern.args().size(); ++i) {
    if (!type_match(pattern.args()[i], concrete.args()[i], theta)) return false;
  }
  return true;
}

Type bool_ty() {
  static const Type t = Type::app("bool", {});
  return t;
}

Type fun_ty(const Type& a, const Type& b) { return Type::app("fun", {a, b}); }

Type prod_ty(const Type& a, const Type& b) { return Type::app("prod", {a, b}); }

Type num_ty() {
  static const Type t = Type::app("num", {});
  return t;
}

Type alpha_ty() {
  static const Type t = Type::var("'a");
  return t;
}
Type beta_ty() {
  static const Type t = Type::var("'b");
  return t;
}
Type gamma_ty() {
  static const Type t = Type::var("'c");
  return t;
}
Type delta_ty() {
  static const Type t = Type::var("'d");
  return t;
}

bool is_fun_ty(const Type& ty) {
  return ty.is_app() && ty.name() == "fun" && ty.args().size() == 2;
}

Type dom_ty(const Type& ty) {
  if (!is_fun_ty(ty)) {
    throw KernelError("dom_ty: not a function type: " + ty.to_string());
  }
  return ty.args()[0];
}

Type cod_ty(const Type& ty) {
  if (!is_fun_ty(ty)) {
    throw KernelError("cod_ty: not a function type: " + ty.to_string());
  }
  return ty.args()[1];
}

bool is_prod_ty(const Type& ty) {
  return ty.is_app() && ty.name() == "prod" && ty.args().size() == 2;
}

Type fst_ty(const Type& ty) {
  if (!is_prod_ty(ty)) {
    throw KernelError("fst_ty: not a product type: " + ty.to_string());
  }
  return ty.args()[0];
}

Type snd_ty(const Type& ty) {
  if (!is_prod_ty(ty)) {
    throw KernelError("snd_ty: not a product type: " + ty.to_string());
  }
  return ty.args()[1];
}

}  // namespace eda::kernel
