#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "kernel/error.h"

namespace eda::kernel {

/// A simple type of higher-order logic: either a type variable or the
/// application of an n-ary type operator to argument types.  Values are
/// immutable and cheap to copy (shared representation).
///
/// The primitive operators installed by the kernel are `bool` (arity 0) and
/// `fun` (arity 2); theories register further operators (`prod`, `num`, ...)
/// through the Signature.
class Type {
 public:
  enum class Kind { Var, App };

  /// Make a type variable, e.g. `Type::var("'a")`.
  static Type var(std::string name);
  /// Make an operator application, e.g. `Type::app("fun", {a, b})`.
  /// Arity checking against the signature happens in Signature::check.
  static Type app(std::string op, std::vector<Type> args);

  Kind kind() const { return node_->kind; }
  bool is_var() const { return node_->kind == Kind::Var; }
  bool is_app() const { return node_->kind == Kind::App; }

  /// Variable name or operator name.
  const std::string& name() const { return node_->name; }
  /// Operator arguments (empty for variables and nullary operators).
  const std::vector<Type>& args() const { return node_->args; }

  bool operator==(const Type& other) const;
  bool operator!=(const Type& other) const { return !(*this == other); }
  /// Total structural order (for use as a map key).
  static int compare(const Type& a, const Type& b);
  bool operator<(const Type& other) const { return compare(*this, other) < 0; }

  std::size_t hash() const { return node_->hash; }

  /// Collect the names of all type variables occurring in this type.
  void collect_vars(std::set<std::string>& out) const;
  bool has_vars() const;

  /// Render as text, e.g. `('a -> bool) # num`.
  std::string to_string() const;

 private:
  struct Node {
    Kind kind;
    std::string name;
    std::vector<Type> args;
    std::size_t hash;
  };
  explicit Type(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
};

/// Substitution of types for type-variable names.
using TypeSubst = std::map<std::string, Type>;

/// Apply a type substitution.
Type type_subst(const TypeSubst& theta, const Type& ty);

/// Match `pattern` against `concrete`, extending `theta`; returns false on
/// mismatch (including conflicting bindings).
bool type_match(const Type& pattern, const Type& concrete, TypeSubst& theta);

// --- Convenience constructors for pervasive types ------------------------

Type bool_ty();
/// Function type `a -> b`.
Type fun_ty(const Type& a, const Type& b);
/// Product type `a # b` (registered by the pair theory).
Type prod_ty(const Type& a, const Type& b);
/// Natural numbers (registered by the num theory).
Type num_ty();

/// The canonical type variables 'a, 'b, 'c, 'd used by polymorphic constants.
Type alpha_ty();
Type beta_ty();
Type gamma_ty();
Type delta_ty();

/// Destructor helpers; throw KernelError when the shape does not match.
bool is_fun_ty(const Type& ty);
Type dom_ty(const Type& ty);
Type cod_ty(const Type& ty);
bool is_prod_ty(const Type& ty);
Type fst_ty(const Type& ty);
Type snd_ty(const Type& ty);

}  // namespace eda::kernel
