#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kernel/error.h"
#include "kernel/intern.h"

namespace eda::kernel {

class Type;
class Term;

namespace detail {
struct TypeNode;
}  // namespace detail

/// A simple type of higher-order logic: either a type variable or the
/// application of an n-ary type operator to argument types.  Values are
/// immutable and cheap to copy (one interned pointer).
///
/// Types are *hash-consed*: every constructor returns the canonical node for
/// its structure, so structural equality IS pointer identity and
/// `operator==` is a single comparison.  Interned nodes live in a permanent
/// arena, which makes node pointers valid memoisation keys for the lifetime
/// of the process.
///
/// The primitive operators installed by the kernel are `bool` (arity 0) and
/// `fun` (arity 2); theories register further operators (`prod`, `num`, ...)
/// through the Signature.
class Type {
 public:
  enum class Kind { Var, App };

  /// Make a type variable, e.g. `Type::var("'a")`.
  static Type var(std::string name);
  /// Make an operator application, e.g. `Type::app("fun", {a, b})`.
  /// Arity checking against the signature happens in Signature::check.
  static Type app(std::string op, std::vector<Type> args);

  Kind kind() const;
  bool is_var() const;
  bool is_app() const;

  /// Variable name or operator name.
  const std::string& name() const;
  /// Operator arguments (empty for variables and nullary operators).
  const std::vector<Type>& args() const;

  /// Hash-consing makes structural equality a pointer comparison.
  bool operator==(const Type& other) const { return node_ == other.node_; }
  bool operator!=(const Type& other) const { return node_ != other.node_; }
  /// Total structural order (for use as a map key).
  static int compare(const Type& a, const Type& b);
  bool operator<(const Type& other) const { return compare(*this, other) < 0; }

  /// Structural hash, precomputed at intern time.
  std::size_t hash() const;

  /// Collect the names of all type variables occurring in this type.
  void collect_vars(std::set<std::string>& out) const;
  /// O(1): precomputed at intern time.
  bool has_vars() const;

  /// Stable identity of the interned node (valid for the whole process).
  const void* node_id() const { return node_; }

  /// Render as text, e.g. `('a -> bool) # num`.
  std::string to_string() const;

  /// Interning statistics (distinct nodes, table hits, arena bytes).
  static detail::InternStats intern_stats();

 private:
  explicit Type(const detail::TypeNode* node) : node_(node) {}
  const detail::TypeNode* node_;

  friend Term eq_const(const Type& ty);
};

namespace detail {

/// The interned representation of a Type.  Construction happens only inside
/// Type::var / Type::app, which guarantee one node per structure.
struct TypeNode {
  TypeNode(Type::Kind kind_, std::string name_, std::vector<Type> args_,
           std::size_t shash_, bool poly_)
      : kind(kind_),
        name(std::move(name_)),
        args(std::move(args_)),
        shash(shash_),
        poly(poly_) {}

  Type::Kind kind;
  std::string name;
  std::vector<Type> args;
  std::size_t shash;  ///< structural hash (the intern-table key)
  bool poly;          ///< contains a type variable
  /// Lazy cache for the interned `(=) : ty -> ty -> bool` node at this
  /// element type (an opaque TermNode*; the kernel layers Type below Term,
  /// so the pointer is typed at the use site in terms.cpp).  mk_eq is the
  /// hottest constructor in the prover; caching on the type node makes
  /// eq_const one acquire load.  Racing writers store the same canonical
  /// pointer, so a plain atomic store suffices.
  mutable std::atomic<const void*> eq_const{nullptr};
};

}  // namespace detail

inline Type::Kind Type::kind() const { return node_->kind; }
inline bool Type::is_var() const { return node_->kind == Kind::Var; }
inline bool Type::is_app() const { return node_->kind == Kind::App; }
inline const std::string& Type::name() const { return node_->name; }
inline const std::vector<Type>& Type::args() const { return node_->args; }
inline std::size_t Type::hash() const { return node_->shash; }
inline bool Type::has_vars() const { return node_->poly; }

/// Substitution of types for type-variable names.
using TypeSubst = std::map<std::string, Type>;

/// Apply a type substitution.
Type type_subst(const TypeSubst& theta, const Type& ty);

/// Match `pattern` against `concrete`, extending `theta`; returns false on
/// mismatch (including conflicting bindings).
bool type_match(const Type& pattern, const Type& concrete, TypeSubst& theta);

// --- Convenience constructors for pervasive types ------------------------

Type bool_ty();
/// Function type `a -> b`.
Type fun_ty(const Type& a, const Type& b);
/// Product type `a # b` (registered by the pair theory).
Type prod_ty(const Type& a, const Type& b);
/// Natural numbers (registered by the num theory).
Type num_ty();

/// The canonical type variables 'a, 'b, 'c, 'd used by polymorphic constants.
Type alpha_ty();
Type beta_ty();
Type gamma_ty();
Type delta_ty();

/// Destructor helpers; throw KernelError when the shape does not match.
bool is_fun_ty(const Type& ty);
Type dom_ty(const Type& ty);
Type cod_ty(const Type& ty);
bool is_prod_ty(const Type& ty);
Type fst_ty(const Type& ty);
Type snd_ty(const Type& ty);

}  // namespace eda::kernel
