#pragma once

#include <cstddef>
#include <cstdint>

namespace eda::kernel {

/// Fibonacci-multiply a hash so its entropy reaches the top bits.
/// Structural and pointer-derived hashes carry their information in the
/// low/middle bits (arena-allocated nodes share alignment, structural
/// hashes are built bottom-up), so the recurring ROADMAP trap is a shard
/// selector computing `h % kShards` directly and collapsing everything
/// into shard 0.  Every selector — GoalCache, ConcurrentMemo, the
/// eda_cached daemon — must go through this one mixer.
inline std::size_t shard_mix(std::size_t h) {
  return h * static_cast<std::size_t>(0x9e3779b97f4a7c15ULL);
}

/// Shard index for hash `h` over `shards` shards: multiply-mix, then take
/// the HIGH bits (width-relative shift — a literal >>32 would be UB on
/// 32-bit targets) before reducing.
inline std::size_t shard_index_of(std::size_t h, std::size_t shards) {
  return (shard_mix(h) >> (sizeof(std::size_t) * 4)) % shards;
}

}  // namespace eda::kernel
