#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "kernel/error.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "kernel/types.h"

namespace eda::kernel {

/// Raised on any malformation while decoding: truncated input, bad magic,
/// version skew, checksum mismatch, out-of-range node references or
/// ill-typed reconstructed terms.  Loaders catch it and fall back to a cold
/// start — a persisted cache is an optimisation, never an obligation.
class SerializeError : public KernelError {
 public:
  explicit SerializeError(const std::string& what) : KernelError(what) {}
};

/// Cache-file format version.  Bump on ANY layout change: decoders reject
/// other versions wholesale (a persistent cache is regenerable, so skew
/// handling is "ignore and start cold", never migration).
inline constexpr std::uint32_t kSerializeVersion = 1;

/// Compact binary serializer for interned Type/Term DAGs plus arbitrary
/// client records that reference them.
///
/// Hash-consing makes the representation natural: every distinct node is
/// written ONCE into a topologically ordered node table (children strictly
/// before parents), and every later occurrence — in other nodes or in the
/// client payload — is a fixed-width index into that table.  A term that is
/// a 2^40-leaf equality tower therefore serializes in O(DAG size), exactly
/// the kernel's in-memory cost model.
///
/// Layout of `finish()` (all integers little-endian, fixed width):
///
///   "EDAC"                     4-byte magic
///   u32  version               kSerializeVersion
///   u64  checksum              FNV-1a 64 of everything below
///   u32  type node count       then one record per type node
///   u32  term node count       then one record per term node
///   payload bytes              the client's records, in call order
///
/// Deserialization re-interns every node through the public Type/Term
/// constructors, so a round trip preserves pointer identity with whatever
/// is already interned in the process: alpha hashes, cached free-variable
/// sets and `node_id()`-keyed memo entries all come back for free.
class Encoder {
 public:
  // Scalar payload writers.
  void u8(std::uint8_t v) { put_u8(payload_, v); }
  void u32(std::uint32_t v) { put_u32(payload_, v); }
  void u64(std::uint64_t v) { put_u64(payload_, v); }
  void f64(double v);
  void str(const std::string& s) { put_str(payload_, s); }

  /// Write a node reference into the payload, registering the node (and,
  /// transitively, its sub-DAG) in the node tables on first sight.
  void type(const Type& ty) { put_u32(payload_, type_index(ty)); }
  void term(const Term& t) { put_u32(payload_, term_index(t)); }

  /// A theorem: hypotheses, conclusion and oracle tags.
  void thm(const Thm& th);

  /// Assemble header + node tables + payload.
  std::string finish() const;

 private:
  static void put_u8(std::string& out, std::uint8_t v);
  static void put_u32(std::string& out, std::uint32_t v);
  static void put_u64(std::string& out, std::uint64_t v);
  static void put_str(std::string& out, const std::string& s);

  std::uint32_t type_index(const Type& ty);
  std::uint32_t term_index(const Term& t);

  std::unordered_map<const void*, std::uint32_t> type_ids_, term_ids_;
  std::string type_table_, term_table_, payload_;
};

/// Decoder for Encoder output.  The constructor validates the header
/// (magic, version, checksum) and re-interns the full node tables; payload
/// readers then hand back canonical Type/Term values by index.  Every read
/// is bounds-checked and every reconstruction runs through the type-checked
/// kernel constructors, so arbitrary corrupt input produces SerializeError,
/// never a crash or an ill-typed term.
class Decoder {
 public:
  explicit Decoder(std::string_view bytes);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();

  Type type();
  Term term();
  Thm thm();

  /// True once the whole payload has been consumed (a loader asserting
  /// this catches trailing-garbage / schema-drift corruption).
  bool at_end() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  const Type& type_at(std::uint32_t idx) const;
  const Term& term_at(std::uint32_t idx) const;
  void parse_tables();

  std::string_view data_;
  std::size_t pos_ = 0;
  std::vector<Type> types_;
  std::vector<Term> terms_;
};

/// FNV-1a 64 over a byte range — the cache-file checksum.  Each step is a
/// bijection on the running state, so two equal-length inputs differing
/// anywhere hash differently; truncation is caught separately by the
/// bounds-checked reads.
std::uint64_t fnv1a64(std::string_view bytes);

}  // namespace eda::kernel
