#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace eda::kernel {

/// Number of worker threads a default-constructed pool uses: the
/// `EDA_THREADS` environment variable when set (clamped to >= 1), else
/// `std::thread::hardware_concurrency()`.
unsigned default_thread_count();

/// Override the size of the process-global pool.  Must be called before the
/// first use of `ThreadPool::global()`; later calls have no effect (the
/// global pool is built once and intentionally leaked).
void set_global_thread_count(unsigned threads);

/// A small work-stealing thread pool.
///
/// Each worker owns a deque: it pushes and pops its own work LIFO (cache
/// locality for nested submissions) and steals FIFO from the other workers
/// when its deque runs dry.  External submissions are distributed
/// round-robin.  The deques are mutex-guarded — the tasks scheduled here
/// (proof obligations, verification runs, benchmark rows) are
/// coarse-grained, so queue overhead is noise and the simple locking
/// discipline keeps the pool trivially TSan-clean.
///
/// The pool is a scheduling substrate only: kernel-level thread safety
/// (interning, memo tables, per-node caches) is provided by those
/// structures themselves, not by the pool.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = default_thread_count());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-global pool, created on first use and leaked (worker
  /// threads park until process exit; joining at static-destruction time
  /// is a shutdown-order hazard for no benefit).
  static ThreadPool& global();

  unsigned thread_count() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueue a task.  From a worker thread of this pool the task goes to
  /// that worker's own deque (stealable by the others).
  void submit(std::function<void()> task);

  /// Enqueue a callable and get a future for its result.
  template <typename F>
  auto async(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    submit([task] { (*task)(); });
    return fut;
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  void worker_loop(std::size_t index);
  bool try_run_one(std::size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex sleep_mu_;
  std::condition_variable wake_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> rr_{0};
  std::atomic<bool> stop_{false};
};

namespace detail {

/// Shared state of one parallel_for: indices are claimed from an atomic
/// counter, so completion never depends on pool scheduling — the caller
/// participates and the loop finishes even on a saturated (or nested)
/// pool.  The first exception is captured and rethrown on the caller.
template <typename F>
struct ForState {
  explicit ForState(std::size_t n_, F& body_) : n(n_), body(&body_) {}

  std::size_t n;
  F* body;  ///< lives in the caller's frame; caller outlives all claims
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex mu;
  std::condition_variable cv;

  void run() {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) {
        // Drain remaining indices as no-ops so `done` still reaches `n`.
        std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        finish_one();
        continue;
      }
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*body)(i);
      } catch (...) {
        bool expected = false;
        if (failed.compare_exchange_strong(expected, true)) {
          std::lock_guard<std::mutex> lock(mu);
          error = std::current_exception();
        }
      }
      finish_one();
    }
  }

  void finish_one() {
    if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(mu);
      cv.notify_all();
    }
  }
};

}  // namespace detail

/// Run `body(i)` for i in [0, n), distributing iterations over `pool` while
/// the calling thread also participates.  Blocks until every iteration
/// finished; rethrows the first exception (remaining iterations are
/// skipped, in-flight ones run to completion).  Safe to nest: claims are
/// counter-based, so progress never waits on a free pool slot.
template <typename F>
void parallel_for(std::size_t n, F&& body, ThreadPool& pool) {
  if (n == 0) return;
  unsigned workers = pool.thread_count();
  if (n == 1 || workers == 0) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  using State = detail::ForState<std::remove_reference_t<F>>;
  auto st = std::make_shared<State>(n, body);
  std::size_t helpers = std::min<std::size_t>(workers, n - 1);
  for (std::size_t k = 0; k < helpers; ++k) {
    pool.submit([st] { st->run(); });
  }
  st->run();
  std::unique_lock<std::mutex> lock(st->mu);
  st->cv.wait(lock, [&] {
    return st->done.load(std::memory_order_acquire) == st->n;
  });
  if (st->failed.load(std::memory_order_relaxed)) {
    std::rethrow_exception(st->error);
  }
}

/// Overload on the global pool.  The pool is only instantiated when there
/// is genuinely parallel work: a 0/1-iteration loop runs inline without
/// spawning the process-wide worker threads.
template <typename F>
void parallel_for(std::size_t n, F&& body) {
  if (n == 0) return;
  if (n == 1) {
    body(std::size_t{0});
    return;
  }
  parallel_for(n, std::forward<F>(body), ThreadPool::global());
}

/// Map `fn` over `items` in parallel; results keep the input order.  The
/// result type must be default-constructible (slots are pre-allocated).
template <typename T, typename F>
auto parallel_map(const std::vector<T>& items, F&& fn, ThreadPool& pool)
    -> std::vector<std::invoke_result_t<F&, const T&>> {
  using R = std::invoke_result_t<F&, const T&>;
  std::vector<R> out(items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i]); }, pool);
  return out;
}

/// Overload on the global pool (instantiated only for >1 item).
template <typename T, typename F>
auto parallel_map(const std::vector<T>& items, F&& fn)
    -> std::vector<std::invoke_result_t<F&, const T&>> {
  using R = std::invoke_result_t<F&, const T&>;
  std::vector<R> out(items.size());
  parallel_for(
      items.size(), [&](std::size_t i) { out[i] = fn(items[i]); });
  return out;
}

}  // namespace eda::kernel
