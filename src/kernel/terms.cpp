#include "kernel/terms.h"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <set>

namespace eda::kernel {

namespace {

std::size_t combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

// --- Hashing (alpha-invariant) --------------------------------------------
//
// Bound variables hash by de-Bruijn index so that alpha-equivalent terms get
// equal hashes, matching operator==.  Comb nodes reuse child hashes; Abs
// nodes re-traverse their body with the binder pushed onto the environment
// (abstractions are rare and shallow in circuit terms, so this stays cheap).

static std::size_t hash_name_ty(std::size_t tag, const std::string& name,
                                const Type& ty) {
  return combine(combine(tag, std::hash<std::string>{}(name)), ty.hash());
}

Term Term::var(std::string name, Type ty) {
  if (name.empty()) throw KernelError("Term::var: empty name");
  std::size_t h = hash_name_ty(0xB1, name, ty);
  return Term(std::make_shared<Node>(Kind::Var, std::move(name), std::move(ty),
                                     nullptr, nullptr, h));
}

Term Term::constant(std::string name, Type ty) {
  if (name.empty()) throw KernelError("Term::constant: empty name");
  std::size_t h = hash_name_ty(0xC0, name, ty);
  return Term(std::make_shared<Node>(Kind::Const, std::move(name),
                                     std::move(ty), nullptr, nullptr, h));
}

namespace {

// Alpha-invariant hash with an explicit binder environment and a
// per-binder-frame memo (see definition below).
std::size_t hash_with_env(const Term& t, std::vector<Term>& binders,
                          std::map<const void*, std::size_t>& memo);

}  // namespace

Term Term::comb(Term f, Term x) {
  if (!is_fun_ty(f.type())) {
    throw KernelError("Term::comb: operator is not a function: " +
                      f.to_string() + " : " + f.type().to_string());
  }
  if (dom_ty(f.type()) != x.type()) {
    throw KernelError("Term::comb: type mismatch applying " + f.to_string() +
                      " : " + f.type().to_string() + " to " + x.to_string() +
                      " : " + x.type().to_string());
  }
  std::size_t h = combine(combine(0xAF, f.hash()), x.hash());
  return Term(std::make_shared<Node>(Kind::Comb, std::string(),
                                     cod_ty(f.type()), f.node_, x.node_, h));
}

Term Term::abs(Term v, Term body) {
  if (!v.is_var()) throw KernelError("Term::abs: binder must be a variable");
  Term tmp(std::make_shared<Node>(Kind::Abs, std::string(),
                                  fun_ty(v.type(), body.type()), v.node_,
                                  body.node_, 0));
  std::vector<Term> binders;
  // Alpha-invariant hash for the whole abstraction (bound occurrences hash
  // by de-Bruijn index), keeping hashes consistent with operator==.
  std::map<const void*, std::size_t> memo;
  std::size_t h = hash_with_env(tmp, binders, memo);
  return Term(std::make_shared<Node>(Kind::Abs, std::string(),
                                     tmp.node_->ty, v.node_, body.node_, h));
}

namespace {

// The memo is valid for one fixed binder stack; crossing an Abs switches
// to a fresh memo for the body (the de-Bruijn indices below differ).  On
// binder-free shared structure — the common case in compiled circuits —
// every DAG node is hashed once.
std::size_t hash_with_env(const Term& t, std::vector<Term>& binders,
                          std::map<const void*, std::size_t>& memo) {
  if (auto hit = memo.find(t.node_id()); hit != memo.end()) {
    return hit->second;
  }
  std::size_t h = 0;
  switch (t.kind()) {
    case Term::Kind::Var: {
      h = hash_name_ty(0xB1, t.name(), t.type());
      for (std::size_t i = binders.size(); i-- > 0;) {
        const Term& b = binders[i];
        if (b.name() == t.name() && b.type() == t.type()) {
          h = combine(combine(0xB0, binders.size() - 1 - i),
                      t.type().hash());
          break;
        }
      }
      break;
    }
    case Term::Kind::Const:
      h = hash_name_ty(0xC0, t.name(), t.type());
      break;
    case Term::Kind::Comb:
      h = combine(combine(0xAF, hash_with_env(t.rator(), binders, memo)),
                  hash_with_env(t.rand(), binders, memo));
      break;
    case Term::Kind::Abs: {
      binders.push_back(t.bound_var());
      std::map<const void*, std::size_t> fresh;
      std::size_t hb = hash_with_env(t.body(), binders, fresh);
      binders.pop_back();
      h = combine(combine(0xAB, t.bound_var().type().hash()), hb);
      break;
    }
  }
  memo.emplace(t.node_id(), h);
  return h;
}

}  // namespace

const std::string& Term::name() const {
  if (!is_var() && !is_const()) {
    throw KernelError("Term::name: not a variable or constant");
  }
  return node_->name;
}

Term Term::rator() const {
  if (!is_comb()) throw KernelError("Term::rator: not an application");
  return Term::from(node_->a);
}

Term Term::rand() const {
  if (!is_comb()) throw KernelError("Term::rand: not an application");
  return Term::from(node_->b);
}

Term Term::bound_var() const {
  if (!is_abs()) throw KernelError("Term::bound_var: not an abstraction");
  return Term::from(node_->a);
}

Term Term::body() const {
  if (!is_abs()) throw KernelError("Term::body: not an abstraction");
  return Term::from(node_->b);
}

// --- Alpha comparison ------------------------------------------------------

int alpha_compare_impl(const Term& a, const Term& b,
                       std::vector<std::pair<const void*, const void*>>& env);

int Term::compare(const Term& a, const Term& b) {
  std::vector<std::pair<const void*, const void*>> env;
  return alpha_compare_impl(a, b, env);
}

bool Term::operator==(const Term& other) const {
  if (node_ == other.node_) return true;
  if (node_->hash != other.node_->hash) return false;
  return compare(*this, other) == 0;
}

namespace {

// Innermost binder index for a variable occurrence, matching by name and
// type so that structurally-distinct but equal Var nodes bind correctly
// (with shadowing semantics).  `side` selects binder column 0 or 1.
std::ptrdiff_t binder_index(const Term& v,
                            const std::vector<std::array<Term, 2>>& env,
                            int side) {
  for (std::size_t i = env.size(); i-- > 0;) {
    const Term& b = env[i][static_cast<std::size_t>(side)];
    if (b.name() == v.name() && b.type() == v.type()) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

// `asym` counts enclosing binder pairs whose two columns differ (by name or
// type).  When it is zero, every pending binder maps a variable to itself on
// both sides, so pointer-identical subterms are alpha-equal and the walk can
// stop — this keeps comparison linear in the term *DAG*, not its tree
// unfolding (terms built by the rules share structure aggressively).
int alpha_compare_env(const Term& a, const Term& b,
                      std::vector<std::array<Term, 2>>& env, int asym) {
  if (asym == 0 && a.identical(b)) return 0;
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case Term::Kind::Var: {
      std::ptrdiff_t ia = binder_index(a, env, 0);
      std::ptrdiff_t ib = binder_index(b, env, 1);
      if (ia != ib) return ia < ib ? -1 : 1;
      if (ia >= 0) return Type::compare(a.type(), b.type());
      if (int c = a.name().compare(b.name()); c != 0) return c < 0 ? -1 : 1;
      return Type::compare(a.type(), b.type());
    }
    case Term::Kind::Const: {
      if (int c = a.name().compare(b.name()); c != 0) return c < 0 ? -1 : 1;
      return Type::compare(a.type(), b.type());
    }
    case Term::Kind::Comb: {
      if (int c = alpha_compare_env(a.rator(), b.rator(), env, asym); c != 0)
        return c;
      return alpha_compare_env(a.rand(), b.rand(), env, asym);
    }
    case Term::Kind::Abs: {
      Term va = a.bound_var(), vb = b.bound_var();
      if (int c = Type::compare(va.type(), vb.type()); c != 0) return c;
      env.push_back({va, vb});
      bool same = va.name() == vb.name() && va.type() == vb.type();
      int c = alpha_compare_env(a.body(), b.body(), env, asym + (same ? 0 : 1));
      env.pop_back();
      return c;
    }
  }
  return 0;  // unreachable
}

}  // namespace

int alpha_compare_impl(const Term& a, const Term& b,
                       std::vector<std::pair<const void*, const void*>>& env) {
  (void)env;
  std::vector<std::array<Term, 2>> e;
  return alpha_compare_env(a, b, e, 0);
}

std::string Term::to_string() const {
  switch (kind()) {
    case Kind::Var:
      return node_->name;
    case Kind::Const:
      return node_->name;
    case Kind::Comb: {
      Term f = Term::from(node_->a), x = Term::from(node_->b);
      std::string fs = f.to_string();
      if (f.is_abs()) fs = "(" + fs + ")";
      std::string xs = x.to_string();
      if (x.is_comb() || x.is_abs()) xs = "(" + xs + ")";
      return fs + " " + xs;
    }
    case Kind::Abs: {
      Term v = Term::from(node_->a), b = Term::from(node_->b);
      return "\\" + v.to_string() + ". " + b.to_string();
    }
  }
  return "?";
}

// --- Free variables --------------------------------------------------------

namespace {

// `visited` is valid for one fixed bound stack; an Abs recurses into its
// body with a fresh set.  Shared binder-free structure is walked once.
void collect_free_vars_rec(const Term& t, std::vector<Term>& bound,
                           std::set<Term>& out,
                           std::set<const void*>& visited) {
  if (!visited.insert(t.node_id()).second) return;
  switch (t.kind()) {
    case Term::Kind::Var:
      for (const Term& b : bound) {
        if (b.name() == t.name() && b.type() == t.type()) return;
      }
      out.insert(t);
      return;
    case Term::Kind::Const:
      return;
    case Term::Kind::Comb:
      collect_free_vars_rec(t.rator(), bound, out, visited);
      collect_free_vars_rec(t.rand(), bound, out, visited);
      return;
    case Term::Kind::Abs: {
      bound.push_back(t.bound_var());
      std::set<const void*> fresh;
      collect_free_vars_rec(t.body(), bound, out, fresh);
      bound.pop_back();
      return;
    }
  }
}

}  // namespace

void collect_free_vars(const Term& t, std::set<Term>& out) {
  std::vector<Term> bound;
  std::set<const void*> visited;
  collect_free_vars_rec(t, bound, out, visited);
}

std::set<Term> free_vars(const Term& t) {
  std::set<Term> out;
  collect_free_vars(t, out);
  return out;
}

bool is_free_in(const Term& v, const Term& t) {
  std::set<Term> fv = free_vars(t);
  return fv.count(v) > 0;
}

namespace {
// Type variables are independent of the binder environment, so one visited
// set keeps the walk linear in the term DAG.
void collect_term_type_vars_rec(const Term& t, std::set<std::string>& out,
                                std::set<const void*>& visited) {
  if (!visited.insert(t.node_id()).second) return;
  switch (t.kind()) {
    case Term::Kind::Var:
    case Term::Kind::Const:
      t.type().collect_vars(out);
      return;
    case Term::Kind::Comb:
      collect_term_type_vars_rec(t.rator(), out, visited);
      collect_term_type_vars_rec(t.rand(), out, visited);
      return;
    case Term::Kind::Abs:
      collect_term_type_vars_rec(t.bound_var(), out, visited);
      collect_term_type_vars_rec(t.body(), out, visited);
      return;
  }
}
}  // namespace

void collect_term_type_vars(const Term& t, std::set<std::string>& out) {
  std::set<const void*> visited;
  collect_term_type_vars_rec(t, out, visited);
}

// --- Substitution ----------------------------------------------------------

Term variant(const std::set<Term>& avoid, const Term& v) {
  if (!v.is_var()) throw KernelError("variant: not a variable");
  std::set<std::string> names;
  for (const Term& a : avoid) names.insert(a.name());
  std::string name = v.name();
  while (names.count(name) > 0) name += "'";
  if (name == v.name()) return v;
  return Term::var(name, v.type());
}

namespace {

/// Memoised substitution core.  The memo is keyed on shared node identity
/// and is valid only for one fixed theta: whenever an Abs case builds a
/// *different* substitution for its body (shadowing removal, pruning or
/// renaming), that body is processed with a fresh memo.  Under heavily
/// shared binder-free structure — exactly what the circuit compiler and
/// the instantiation rules produce — each DAG node is visited once.
Term vsubst_memo(const TermSubst& theta, const Term& t,
                 std::map<const void*, Term>& memo) {
  if (auto hit = memo.find(t.node_id()); hit != memo.end()) {
    return hit->second;
  }
  auto remember = [&](Term out) {
    memo.emplace(t.node_id(), out);
    return out;
  };
  switch (t.kind()) {
    case Term::Kind::Var: {
      auto it = theta.find(t);
      if (it == theta.end()) return t;
      if (it->second.type() != t.type()) {
        throw KernelError("vsubst: type mismatch substituting for " +
                          t.to_string());
      }
      return it->second;
    }
    case Term::Kind::Const:
      return t;
    case Term::Kind::Comb: {
      Term f = vsubst_memo(theta, t.rator(), memo);
      Term x = vsubst_memo(theta, t.rand(), memo);
      if (f.identical(t.rator()) && x.identical(t.rand())) return remember(t);
      return remember(Term::comb(f, x));
    }
    case Term::Kind::Abs: {
      const Term v = t.bound_var();
      // Remove any binding of the bound variable itself.
      TermSubst inner = theta;
      inner.erase(v);
      if (inner.empty()) return remember(t);
      // Drop bindings whose key is not free in the body (cheap win and
      // avoids spurious capture detection).
      std::set<Term> body_fv = free_vars(t.body());
      for (auto it = inner.begin(); it != inner.end();) {
        if (body_fv.count(it->first) == 0) {
          it = inner.erase(it);
        } else {
          ++it;
        }
      }
      if (inner.empty()) return remember(t);
      // Capture check: does v occur free in any image?
      bool capture = false;
      for (const auto& [key, img] : inner) {
        if (is_free_in(v, img)) {
          capture = true;
          break;
        }
      }
      if (!capture) {
        std::map<const void*, Term> fresh;
        Term b = vsubst_memo(inner, t.body(), fresh);
        if (b.identical(t.body())) return remember(t);
        return remember(Term::abs(v, b));
      }
      // Rename the binder away from everything in sight.
      std::set<Term> avoid = body_fv;
      for (const auto& [key, img] : inner) collect_free_vars(img, avoid);
      Term v2 = variant(avoid, v);
      TermSubst rename;
      rename.emplace(v, v2);
      std::map<const void*, Term> fresh1;
      Term body2 = vsubst_memo(rename, t.body(), fresh1);
      std::map<const void*, Term> fresh2;
      return remember(Term::abs(v2, vsubst_memo(inner, body2, fresh2)));
    }
  }
  return t;  // unreachable
}

}  // namespace

Term vsubst(const TermSubst& theta, const Term& t) {
  if (theta.empty()) return t;
  std::map<const void*, Term> memo;
  return vsubst_memo(theta, t, memo);
}

namespace {

/// Memoised core of type_inst.  Type instantiation is context-free (the
/// per-Abs clash analysis depends only on the subterm), so one memo keyed
/// on node identity is sound for the whole call and keeps the walk linear
/// in the term DAG.
Term type_inst_memo(const TypeSubst& theta, const Term& t,
                    std::map<const void*, Term>& memo) {
  if (auto hit = memo.find(t.node_id()); hit != memo.end()) {
    return hit->second;
  }
  auto remember = [&](Term out) {
    memo.emplace(t.node_id(), out);
    return out;
  };
  switch (t.kind()) {
    case Term::Kind::Var:
      return remember(Term::var(t.name(), type_subst(theta, t.type())));
    case Term::Kind::Const:
      return remember(Term::constant(t.name(), type_subst(theta, t.type())));
    case Term::Kind::Comb:
      return remember(Term::comb(type_inst_memo(theta, t.rator(), memo),
                                 type_inst_memo(theta, t.rand(), memo)));
    case Term::Kind::Abs: {
      Term v = t.bound_var();
      Term v2 = Term::var(v.name(), type_subst(theta, v.type()));
      // Capture check: a free variable of the body, distinct from the
      // binder, may coincide with the instantiated binder.
      std::set<Term> body_fv = free_vars(t.body());
      bool clash = false;
      for (const Term& u : body_fv) {
        if (u == v) continue;
        Term u2 = Term::var(u.name(), type_subst(theta, u.type()));
        if (u2 == v2) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        return remember(Term::abs(v2, type_inst_memo(theta, t.body(), memo)));
      }
      // Rename the binder (at its *original* type) first, then instantiate.
      std::set<Term> avoid = body_fv;
      Term v_fresh = variant(avoid, v);
      TermSubst rename;
      rename.emplace(v, v_fresh);
      Term body2 = vsubst(rename, t.body());
      return remember(
          Term::abs(Term::var(v_fresh.name(), type_subst(theta, v.type())),
                    type_inst_memo(theta, body2, memo)));
    }
  }
  return t;  // unreachable
}

}  // namespace

Term type_inst(const TypeSubst& theta, const Term& t) {
  if (theta.empty()) return t;
  std::map<const void*, Term> memo;
  return type_inst_memo(theta, t, memo);
}

// --- Equality helpers ------------------------------------------------------

Term eq_const(const Type& ty) {
  return Term::constant("=", fun_ty(ty, fun_ty(ty, bool_ty())));
}

Term mk_eq(const Term& a, const Term& b) {
  if (a.type() != b.type()) {
    throw KernelError("mk_eq: sides have different types: " +
                      a.type().to_string() + " vs " + b.type().to_string());
  }
  return Term::comb(Term::comb(eq_const(a.type()), a), b);
}

bool is_eq(const Term& t) {
  return t.is_comb() && t.rator().is_comb() && t.rator().rator().is_const() &&
         t.rator().rator().name() == "=";
}

Term eq_lhs(const Term& t) {
  if (!is_eq(t)) throw KernelError("eq_lhs: not an equality: " + t.to_string());
  return t.rator().rand();
}

Term eq_rhs(const Term& t) {
  if (!is_eq(t)) throw KernelError("eq_rhs: not an equality: " + t.to_string());
  return t.rand();
}

std::pair<Term, std::vector<Term>> strip_comb(const Term& t) {
  std::vector<Term> args;
  Term f = t;
  while (f.is_comb()) {
    args.push_back(f.rand());
    f = f.rator();
  }
  std::reverse(args.begin(), args.end());
  return {f, args};
}

Term list_comb(Term f, const std::vector<Term>& args) {
  for (const Term& a : args) f = Term::comb(std::move(f), a);
  return f;
}

}  // namespace eda::kernel
