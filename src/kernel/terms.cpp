#include "kernel/terms.h"

#include <algorithm>
#include <array>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

namespace eda::kernel {

namespace {

using detail::TermNode;

std::size_t combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::size_t ptr_hash(const void* p) {
  return std::hash<const void*>{}(p);
}

/// The global term interner; intentionally leaked like the type interner so
/// node pointers stay valid memoisation keys for the process lifetime.
/// Thread-safe: sharded, lock-free lookups, per-shard insert mutex
/// (see intern.h).
detail::InternTable<TermNode>& interner() {
  static auto* in = new detail::InternTable<TermNode>();
  return *in;
}

}  // namespace

// --- Hashing (alpha-invariant) --------------------------------------------
//
// Bound variables hash by de-Bruijn index so that alpha-equivalent terms get
// equal hashes, matching operator==.  Comb nodes reuse child hashes; Abs
// nodes re-traverse their body with the binder pushed onto the environment
// (abstractions are rare and shallow in circuit terms, so this stays cheap).
// Thanks to interning every hash is computed once per distinct node, ever.

static std::size_t hash_name_ty(std::size_t tag, const std::string& name,
                                const Type& ty) {
  return combine(combine(tag, std::hash<std::string>{}(name)), ty.hash());
}

namespace {

// Alpha-invariant hash with an explicit binder environment and a
// per-binder-frame memo (see definition below).
std::size_t hash_with_env(const Term& t, std::vector<Term>& binders,
                          std::map<const void*, std::size_t>& memo);

}  // namespace

Term Term::var(std::string name, Type ty) {
  if (name.empty()) throw KernelError("Term::var: empty name");
  std::size_t h = hash_name_ty(0xB1, name, ty);
  const TermNode* n = interner().intern(
      h,
      [&](const TermNode* c) {
        return c->kind == Kind::Var && c->ty == ty && c->name == name;
      },
      [&](detail::Arena& arena) {
        bool poly = ty.has_vars();
        return arena.create<TermNode>(Kind::Var, std::move(name),
                                      std::move(ty), nullptr, nullptr, h, h,
                                      poly);
      });
  return Term(n);
}

Term Term::constant(std::string name, Type ty) {
  if (name.empty()) throw KernelError("Term::constant: empty name");
  std::size_t h = hash_name_ty(0xC0, name, ty);
  const TermNode* n = interner().intern(
      h,
      [&](const TermNode* c) {
        return c->kind == Kind::Const && c->ty == ty && c->name == name;
      },
      [&](detail::Arena& arena) {
        bool poly = ty.has_vars();
        return arena.create<TermNode>(Kind::Const, std::move(name),
                                      std::move(ty), nullptr, nullptr, h, h,
                                      poly);
      });
  return Term(n);
}

Term Term::comb(Term f, Term x) {
  if (!is_fun_ty(f.type())) {
    throw KernelError("Term::comb: operator is not a function: " +
                      f.to_string() + " : " + f.type().to_string());
  }
  if (dom_ty(f.type()) != x.type()) {
    throw KernelError("Term::comb: type mismatch applying " + f.to_string() +
                      " : " + f.type().to_string() + " to " + x.to_string() +
                      " : " + x.type().to_string());
  }
  std::size_t sh = combine(combine(0xAF7, ptr_hash(f.node_)),
                           ptr_hash(x.node_));
  const TermNode* n = interner().intern(
      sh,
      [&](const TermNode* c) {
        return c->kind == Kind::Comb && c->a == f.node_ && c->b == x.node_;
      },
      [&](detail::Arena& arena) {
        std::size_t h = combine(combine(0xAF, f.hash()), x.hash());
        return arena.create<TermNode>(Kind::Comb, std::string(),
                                      cod_ty(f.type()), f.node_, x.node_, h,
                                      sh, f.node_->poly || x.node_->poly);
      });
  return Term(n);
}

Term Term::abs(Term v, Term body) {
  if (!v.is_var()) throw KernelError("Term::abs: binder must be a variable");
  std::size_t sh = combine(combine(0xAB5, ptr_hash(v.node_)),
                           ptr_hash(body.node_));
  const TermNode* n = interner().intern(
      sh,
      [&](const TermNode* c) {
        return c->kind == Kind::Abs && c->a == v.node_ && c->b == body.node_;
      },
      [&](detail::Arena& arena) {
        // Alpha-invariant hash for the whole abstraction (bound occurrences
        // hash by de-Bruijn index), keeping hashes consistent with
        // operator==.
        std::vector<Term> binders{v};
        std::map<const void*, std::size_t> memo;
        std::size_t hb = hash_with_env(body, binders, memo);
        std::size_t h = combine(combine(0xAB, v.type().hash()), hb);
        return arena.create<TermNode>(Kind::Abs, std::string(),
                                      fun_ty(v.type(), body.type()), v.node_,
                                      body.node_, h, sh,
                                      v.node_->poly || body.node_->poly);
      });
  return Term(n);
}

detail::InternStats Term::intern_stats() {
  auto& in = interner();
  return {in.size(), in.hits(), in.arena_bytes()};
}

namespace {

// The memo is valid for one fixed binder stack; crossing an Abs switches
// to a fresh memo for the body (the de-Bruijn indices below differ).  On
// binder-free shared structure — the common case in compiled circuits —
// every DAG node is hashed once.
std::size_t hash_with_env(const Term& t, std::vector<Term>& binders,
                          std::map<const void*, std::size_t>& memo) {
  if (auto hit = memo.find(t.node_id()); hit != memo.end()) {
    return hit->second;
  }
  std::size_t h = 0;
  switch (t.kind()) {
    case Term::Kind::Var: {
      h = hash_name_ty(0xB1, t.name(), t.type());
      for (std::size_t i = binders.size(); i-- > 0;) {
        // Interning makes "same name and type" node identity.
        if (binders[i].identical(t)) {
          h = combine(combine(0xB0, binders.size() - 1 - i),
                      t.type().hash());
          break;
        }
      }
      break;
    }
    case Term::Kind::Const:
      h = hash_name_ty(0xC0, t.name(), t.type());
      break;
    case Term::Kind::Comb:
      h = combine(combine(0xAF, hash_with_env(t.rator(), binders, memo)),
                  hash_with_env(t.rand(), binders, memo));
      break;
    case Term::Kind::Abs: {
      binders.push_back(t.bound_var());
      std::map<const void*, std::size_t> fresh;
      std::size_t hb = hash_with_env(t.body(), binders, fresh);
      binders.pop_back();
      h = combine(combine(0xAB, t.bound_var().type().hash()), hb);
      break;
    }
  }
  memo.emplace(t.node_id(), h);
  return h;
}

}  // namespace

const std::string& Term::name() const {
  if (!is_var() && !is_const()) {
    throw KernelError("Term::name: not a variable or constant");
  }
  return node_->name;
}

Term Term::rator() const {
  if (!is_comb()) throw KernelError("Term::rator: not an application");
  return Term::from(node_->a);
}

Term Term::rand() const {
  if (!is_comb()) throw KernelError("Term::rand: not an application");
  return Term::from(node_->b);
}

Term Term::bound_var() const {
  if (!is_abs()) throw KernelError("Term::bound_var: not an abstraction");
  return Term::from(node_->a);
}

Term Term::body() const {
  if (!is_abs()) throw KernelError("Term::body: not an abstraction");
  return Term::from(node_->b);
}

// --- Alpha comparison ------------------------------------------------------

bool Term::operator==(const Term& other) const {
  // Hash-consing: structurally identical terms are one node, so only
  // alpha-equivalent terms with differently-spelt binders take the walk.
  if (node_ == other.node_) return true;
  if (node_->hash != other.node_->hash) return false;
  return compare(*this, other) == 0;
}

namespace {

// Innermost binder index for a variable occurrence.  Interning collapses
// equal variables to one node, so binder matching (with shadowing
// semantics) is pointer identity.  `side` selects binder column 0 or 1.
std::ptrdiff_t binder_index(const Term& v,
                            const std::vector<std::array<Term, 2>>& env,
                            int side) {
  for (std::size_t i = env.size(); i-- > 0;) {
    if (env[i][static_cast<std::size_t>(side)].identical(v)) {
      return static_cast<std::ptrdiff_t>(i);
    }
  }
  return -1;
}

// `asym` counts enclosing binder pairs whose two columns differ.  When it
// is zero, every pending binder maps a variable to itself on both sides, so
// pointer-identical subterms are alpha-equal and the walk can stop — this
// keeps comparison linear in the term *DAG*, not its tree unfolding (and
// with hash-consing the identical() fast path fires for every structurally
// equal pair, however it was built).
int alpha_compare_env(const Term& a, const Term& b,
                      std::vector<std::array<Term, 2>>& env, int asym) {
  if (asym == 0 && a.identical(b)) return 0;
  if (a.kind() != b.kind()) {
    return static_cast<int>(a.kind()) < static_cast<int>(b.kind()) ? -1 : 1;
  }
  switch (a.kind()) {
    case Term::Kind::Var: {
      std::ptrdiff_t ia = binder_index(a, env, 0);
      std::ptrdiff_t ib = binder_index(b, env, 1);
      if (ia != ib) return ia < ib ? -1 : 1;
      if (ia >= 0) return Type::compare(a.type(), b.type());
      if (int c = a.name().compare(b.name()); c != 0) return c < 0 ? -1 : 1;
      return Type::compare(a.type(), b.type());
    }
    case Term::Kind::Const: {
      if (int c = a.name().compare(b.name()); c != 0) return c < 0 ? -1 : 1;
      return Type::compare(a.type(), b.type());
    }
    case Term::Kind::Comb: {
      if (int c = alpha_compare_env(a.rator(), b.rator(), env, asym); c != 0)
        return c;
      return alpha_compare_env(a.rand(), b.rand(), env, asym);
    }
    case Term::Kind::Abs: {
      Term va = a.bound_var(), vb = b.bound_var();
      if (int c = Type::compare(va.type(), vb.type()); c != 0) return c;
      env.push_back({va, vb});
      bool same = va.identical(vb);
      int c = alpha_compare_env(a.body(), b.body(), env, asym + (same ? 0 : 1));
      env.pop_back();
      return c;
    }
  }
  return 0;  // unreachable
}

}  // namespace

int Term::compare(const Term& a, const Term& b) {
  std::vector<std::array<Term, 2>> env;
  return alpha_compare_env(a, b, env, 0);
}

std::string Term::to_string() const {
  switch (kind()) {
    case Kind::Var:
      return node_->name;
    case Kind::Const:
      return node_->name;
    case Kind::Comb: {
      Term f = Term::from(node_->a), x = Term::from(node_->b);
      std::string fs = f.to_string();
      if (f.is_abs()) fs = "(" + fs + ")";
      std::string xs = x.to_string();
      if (x.is_comb() || x.is_abs()) xs = "(" + xs + ")";
      return fs + " " + xs;
    }
    case Kind::Abs: {
      Term v = Term::from(node_->a), b = Term::from(node_->b);
      return "\\" + v.to_string() + ". " + b.to_string();
    }
  }
  return "?";
}

// --- Free variables --------------------------------------------------------

// Free variables are a per-node attribute (fv(\v. b) = fv(b) \ {v} with
// interned binder identity), so the set is computed bottom-up once per
// interned node and cached on the node forever.  Every layer above the
// kernel — substitution pruning, the ABS side condition, the backward
// synthesis engine — hits this cache.
//
// Concurrency: the cache slot is an atomic pointer published with a
// release CAS.  Racing threads may compute the set redundantly; exactly
// one publication wins and the losers' sets are deleted, so readers only
// ever observe null or a fully-built, permanent set.
const std::set<Term>& free_vars_set(const Term& t) {
  const TermNode* n = t.node_;
  if (const auto* cached = n->fv.load(std::memory_order_acquire)) {
    return *cached;
  }
  auto* out = new std::set<Term>();
  switch (n->kind) {
    case Term::Kind::Var:
      out->insert(t);
      break;
    case Term::Kind::Const:
      break;
    case Term::Kind::Comb: {
      const std::set<Term>& fa = free_vars_set(Term::from(n->a));
      const std::set<Term>& fb = free_vars_set(Term::from(n->b));
      *out = fa;
      out->insert(fb.begin(), fb.end());
      break;
    }
    case Term::Kind::Abs: {
      *out = free_vars_set(Term::from(n->b));
      out->erase(Term::from(n->a));
      break;
    }
  }
  const std::set<Term>* expected = nullptr;
  if (!n->fv.compare_exchange_strong(expected, out,
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
    delete out;
    return *expected;
  }
  return *out;
}

void collect_free_vars(const Term& t, std::set<Term>& out) {
  const std::set<Term>& fv = free_vars_set(t);
  out.insert(fv.begin(), fv.end());
}

std::set<Term> free_vars(const Term& t) { return free_vars_set(t); }

bool is_free_in(const Term& v, const Term& t) {
  return free_vars_set(t).count(v) > 0;
}

namespace {
// Type variables are independent of the binder environment, so one visited
// set keeps the walk linear in the term DAG.  Subterms whose `poly` flag is
// clear are skipped outright.
void collect_term_type_vars_rec(const Term& t, std::set<std::string>& out,
                                std::set<const void*>& visited) {
  if (!t.has_type_vars()) return;
  if (!visited.insert(t.node_id()).second) return;
  switch (t.kind()) {
    case Term::Kind::Var:
    case Term::Kind::Const:
      t.type().collect_vars(out);
      return;
    case Term::Kind::Comb:
      collect_term_type_vars_rec(t.rator(), out, visited);
      collect_term_type_vars_rec(t.rand(), out, visited);
      return;
    case Term::Kind::Abs:
      collect_term_type_vars_rec(t.bound_var(), out, visited);
      collect_term_type_vars_rec(t.body(), out, visited);
      return;
  }
}
}  // namespace

void collect_term_type_vars(const Term& t, std::set<std::string>& out) {
  std::set<const void*> visited;
  collect_term_type_vars_rec(t, out, visited);
}

// --- Substitution ----------------------------------------------------------

Term variant(const std::set<Term>& avoid, const Term& v) {
  if (!v.is_var()) throw KernelError("variant: not a variable");
  std::set<std::string> names;
  for (const Term& a : avoid) names.insert(a.name());
  std::string name = v.name();
  while (names.count(name) > 0) name += "'";
  if (name == v.name()) return v;
  return Term::var(name, v.type());
}

namespace {

/// True when no key of `theta` occurs free in `t` — the subtree can be
/// returned unchanged.  The cached per-node free-variable sets make this an
/// O(|theta| log |fv|) test, which prunes substitution to the spine that
/// actually mentions the substituted variables.
bool subst_irrelevant(const TermSubst& theta, const Term& t) {
  const std::set<Term>& fv = free_vars_set(t);
  for (const auto& [key, img] : theta) {
    (void)img;
    if (fv.count(key) > 0) return false;
  }
  return true;
}

/// Memoised substitution core.  The memo is keyed on interned node identity
/// and is valid only for one fixed theta: whenever an Abs case builds a
/// *different* substitution for its body (shadowing removal, pruning or
/// renaming), that body is processed with a fresh memo.  Under heavily
/// shared binder-free structure — exactly what the circuit compiler and
/// the instantiation rules produce — each DAG node is visited once.
Term vsubst_memo(const TermSubst& theta, const Term& t,
                 std::map<const void*, Term>& memo) {
  // Memo first: revisits of shared DAG nodes must not re-pay the
  // O(|theta|) relevance scan.
  if (auto hit = memo.find(t.node_id()); hit != memo.end()) {
    return hit->second;
  }
  if (subst_irrelevant(theta, t)) return t;
  auto remember = [&](Term out) {
    memo.emplace(t.node_id(), out);
    return out;
  };
  switch (t.kind()) {
    case Term::Kind::Var: {
      auto it = theta.find(t);
      if (it == theta.end()) return t;
      if (it->second.type() != t.type()) {
        throw KernelError("vsubst: type mismatch substituting for " +
                          t.to_string());
      }
      return it->second;
    }
    case Term::Kind::Const:
      return t;
    case Term::Kind::Comb: {
      Term f = vsubst_memo(theta, t.rator(), memo);
      Term x = vsubst_memo(theta, t.rand(), memo);
      if (f.identical(t.rator()) && x.identical(t.rand())) return remember(t);
      return remember(Term::comb(f, x));
    }
    case Term::Kind::Abs: {
      const Term v = t.bound_var();
      // Remove any binding of the bound variable itself and drop bindings
      // whose key is not free in the body (cheap via the cached fv sets;
      // also avoids spurious capture detection).
      const std::set<Term>& body_fv = free_vars_set(t.body());
      TermSubst inner;
      for (const auto& [key, img] : theta) {
        if (!key.identical(v) && body_fv.count(key) > 0) {
          inner.emplace(key, img);
        }
      }
      if (inner.empty()) return remember(t);
      // Capture check: does v occur free in any image?
      bool capture = false;
      for (const auto& [key, img] : inner) {
        (void)key;
        if (is_free_in(v, img)) {
          capture = true;
          break;
        }
      }
      if (!capture) {
        std::map<const void*, Term> fresh;
        Term b = vsubst_memo(inner, t.body(), fresh);
        if (b.identical(t.body())) return remember(t);
        return remember(Term::abs(v, b));
      }
      // Rename the binder away from everything in sight.
      std::set<Term> avoid = body_fv;
      for (const auto& [key, img] : inner) {
        (void)key;
        collect_free_vars(img, avoid);
      }
      Term v2 = variant(avoid, v);
      TermSubst rename;
      rename.emplace(v, v2);
      std::map<const void*, Term> fresh1;
      Term body2 = vsubst_memo(rename, t.body(), fresh1);
      std::map<const void*, Term> fresh2;
      return remember(Term::abs(v2, vsubst_memo(inner, body2, fresh2)));
    }
  }
  return t;  // unreachable
}

}  // namespace

Term vsubst(const TermSubst& theta, const Term& t) {
  if (theta.empty()) return t;
  std::map<const void*, Term> memo;
  return vsubst_memo(theta, t, memo);
}

namespace {

/// Memoised core of type_inst.  Type instantiation is context-free (the
/// per-Abs clash analysis depends only on the subterm), so one memo keyed
/// on node identity is sound for the whole call and keeps the walk linear
/// in the term DAG.  Ground subterms (poly flag clear) are returned
/// unchanged without any walk.
Term type_inst_memo(const TypeSubst& theta, const Term& t,
                    std::map<const void*, Term>& memo) {
  if (!t.has_type_vars()) return t;
  if (auto hit = memo.find(t.node_id()); hit != memo.end()) {
    return hit->second;
  }
  auto remember = [&](Term out) {
    memo.emplace(t.node_id(), out);
    return out;
  };
  switch (t.kind()) {
    case Term::Kind::Var:
      return remember(Term::var(t.name(), type_subst(theta, t.type())));
    case Term::Kind::Const:
      return remember(Term::constant(t.name(), type_subst(theta, t.type())));
    case Term::Kind::Comb:
      return remember(Term::comb(type_inst_memo(theta, t.rator(), memo),
                                 type_inst_memo(theta, t.rand(), memo)));
    case Term::Kind::Abs: {
      Term v = t.bound_var();
      Term v2 = Term::var(v.name(), type_subst(theta, v.type()));
      // Capture check: a free variable of the body, distinct from the
      // binder, may coincide with the instantiated binder.
      const std::set<Term>& body_fv = free_vars_set(t.body());
      bool clash = false;
      for (const Term& u : body_fv) {
        if (u == v) continue;
        Term u2 = Term::var(u.name(), type_subst(theta, u.type()));
        if (u2 == v2) {
          clash = true;
          break;
        }
      }
      if (!clash) {
        return remember(Term::abs(v2, type_inst_memo(theta, t.body(), memo)));
      }
      // Rename the binder (at its *original* type) first, then instantiate.
      std::set<Term> avoid = body_fv;
      Term v_fresh = variant(avoid, v);
      TermSubst rename;
      rename.emplace(v, v_fresh);
      Term body2 = vsubst(rename, t.body());
      return remember(
          Term::abs(Term::var(v_fresh.name(), type_subst(theta, v.type())),
                    type_inst_memo(theta, body2, memo)));
    }
  }
  return t;  // unreachable
}

}  // namespace

Term type_inst(const TypeSubst& theta, const Term& t) {
  if (theta.empty() || !t.has_type_vars()) return t;
  std::map<const void*, Term> memo;
  return type_inst_memo(theta, t, memo);
}

// --- Equality helpers ------------------------------------------------------

Term eq_const(const Type& ty) {
  // mk_eq is the single hottest constructor in the prover (every REFL,
  // TRANS, hypothesis and circuit equation goes through it); skipping the
  // three intern probes (which hash "=" and rebuild the fun-type spine)
  // matters.  The cache slot lives on the interned TypeNode itself, so a
  // hit is one acquire load — no map, no lock, no TLS.  Racing threads
  // compute the same canonical node and store the same pointer, so a plain
  // atomic store (no CAS) publishes safely.
  const detail::TypeNode* tn = ty.node_;
  if (const void* hit = tn->eq_const.load(std::memory_order_acquire)) {
    return Term::from(static_cast<const TermNode*>(hit));
  }
  Term c = Term::constant("=", fun_ty(ty, fun_ty(ty, bool_ty())));
  tn->eq_const.store(c.node_, std::memory_order_release);
  return c;
}

Term mk_eq(const Term& a, const Term& b) {
  if (a.type() != b.type()) {
    throw KernelError("mk_eq: sides have different types: " +
                      a.type().to_string() + " vs " + b.type().to_string());
  }
  return Term::comb(Term::comb(eq_const(a.type()), a), b);
}

bool is_eq(const Term& t) {
  return t.is_comb() && t.rator().is_comb() && t.rator().rator().is_const() &&
         t.rator().rator().name() == "=";
}

Term eq_lhs(const Term& t) {
  if (!is_eq(t)) throw KernelError("eq_lhs: not an equality: " + t.to_string());
  return t.rator().rand();
}

Term eq_rhs(const Term& t) {
  if (!is_eq(t)) throw KernelError("eq_rhs: not an equality: " + t.to_string());
  return t.rand();
}

std::pair<Term, std::vector<Term>> strip_comb(const Term& t) {
  std::vector<Term> args;
  Term f = t;
  while (f.is_comb()) {
    args.push_back(f.rand());
    f = f.rator();
  }
  std::reverse(args.begin(), args.end());
  return {f, args};
}

Term list_comb(Term f, const std::vector<Term>& args) {
  for (const Term& a : args) f = Term::comb(std::move(f), a);
  return f;
}

}  // namespace eda::kernel
