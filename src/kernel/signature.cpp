#include "kernel/signature.h"

#include <mutex>

namespace eda::kernel {

Signature& Signature::instance() {
  static Signature sig;
  return sig;
}

Signature::Signature() {
  // Primitive signature of the logic: bool, fun and polymorphic equality.
  type_ops_.emplace("bool", 0);
  type_ops_.emplace("fun", 2);
  consts_.emplace("=", fun_ty(alpha_ty(), fun_ty(alpha_ty(), bool_ty())));
}

void Signature::declare_type(const std::string& name, std::size_t arity) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = type_ops_.emplace(name, arity);
  if (!inserted && it->second != arity) {
    throw KernelError("declare_type: arity clash for " + name);
  }
}

bool Signature::has_type(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return type_ops_.count(name) > 0;
}

std::size_t Signature::type_arity(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = type_ops_.find(name);
  if (it == type_ops_.end()) {
    throw KernelError("type_arity: undeclared type operator " + name);
  }
  return it->second;
}

void Signature::check_type_unlocked(const Type& ty) const {
  if (ty.is_var()) return;
  auto it = type_ops_.find(ty.name());
  if (it == type_ops_.end()) {
    throw KernelError("check_type: undeclared type operator " + ty.name());
  }
  if (it->second != ty.args().size()) {
    throw KernelError("check_type: wrong arity for " + ty.name());
  }
  for (const Type& a : ty.args()) check_type_unlocked(a);
}

void Signature::check_type(const Type& ty) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  check_type_unlocked(ty);
}

void Signature::declare_const_unlocked(const std::string& name,
                                       const Type& generic_ty) {
  check_type_unlocked(generic_ty);
  auto [it, inserted] = consts_.emplace(name, generic_ty);
  if (!inserted && it->second != generic_ty) {
    throw KernelError("declare_const: type clash for " + name);
  }
}

void Signature::declare_const(const std::string& name,
                              const Type& generic_ty) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  declare_const_unlocked(name, generic_ty);
}

bool Signature::has_const(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return consts_.count(name) > 0;
}

Type Signature::const_type_unlocked(const std::string& name) const {
  auto it = consts_.find(name);
  if (it == consts_.end()) {
    throw KernelError("const_type: undeclared constant " + name);
  }
  return it->second;
}

Type Signature::const_type(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return const_type_unlocked(name);
}

Term Signature::mk_const(const std::string& name) const {
  // const_type takes the shared lock; interning happens outside it.
  return Term::constant(name, const_type(name));
}

Term Signature::mk_const_at(const std::string& name,
                            const Type& concrete) const {
  Type generic = const_type(name);
  TypeSubst theta;
  if (!type_match(generic, concrete, theta)) {
    throw KernelError("mk_const_at: " + concrete.to_string() +
                      " is not an instance of the generic type " +
                      generic.to_string() + " of " + name);
  }
  return Term::constant(name, concrete);
}

Thm Signature::new_definition(const std::string& name, const Term& rhs) {
  if (!free_vars(rhs).empty()) {
    throw KernelError("new_definition: right-hand side has free variables");
  }
  // Soundness side condition: every type variable of the body must appear
  // in the type of the new constant, otherwise distinct instances would be
  // forced equal.
  std::set<std::string> body_tyvars, ty_tyvars;
  collect_term_type_vars(rhs, body_tyvars);
  rhs.type().collect_vars(ty_tyvars);
  for (const std::string& v : body_tyvars) {
    if (ty_tyvars.count(v) == 0) {
      throw KernelError("new_definition: type variable " + v +
                        " of the body does not occur in the constant type");
    }
  }
  std::string key = "DEF:" + name;
  Term def_eq = mk_eq(Term::constant(name, rhs.type()), rhs);
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (auto it = theorems_.find(key); it != theorems_.end()) {
    if (it->second.concl() == def_eq) return it->second;
    throw KernelError("new_definition: conflicting redefinition of " + name);
  }
  if (consts_.count(name) > 0) {
    throw KernelError("new_definition: constant already declared: " + name);
  }
  declare_const_unlocked(name, rhs.type());
  Thm th({}, def_eq, {});
  theorems_.emplace(key, th);
  return th;
}

Thm Signature::new_axiom(const std::string& thm_name, const Term& prop) {
  if (prop.type() != bool_ty()) {
    throw KernelError("new_axiom: formula is not boolean");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (auto it = axioms_.find(thm_name); it != axioms_.end()) {
    if (it->second.concl() == prop) return it->second;
    throw KernelError("new_axiom: conflicting axiom " + thm_name);
  }
  Thm th({}, prop, {});
  axioms_.emplace(thm_name, th);
  theorems_.emplace(thm_name, th);
  return th;
}

std::optional<Thm> Signature::find_theorem(const std::string& thm_name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = theorems_.find(thm_name);
  if (it == theorems_.end()) return std::nullopt;
  return it->second;
}

Thm Signature::theorem(const std::string& thm_name) const {
  auto th = find_theorem(thm_name);
  if (!th) throw KernelError("theorem: unknown theorem " + thm_name);
  return *th;
}

void Signature::store_theorem(const std::string& thm_name, const Thm& th) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = theorems_.emplace(thm_name, th);
  if (!inserted) {
    if (it->second.concl() == th.concl()) return;
    throw KernelError("store_theorem: name clash for " + thm_name);
  }
}

std::map<std::string, Thm> Signature::axioms() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return axioms_;
}

}  // namespace eda::kernel
