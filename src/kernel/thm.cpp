#include "kernel/thm.h"

#include <algorithm>
#include <atomic>

namespace eda::kernel {

namespace {
// Relaxed atomic: the counter is a statistic (the paper's rule-count cost
// model), not a synchronisation point, and must not serialise parallel
// proof replay.  Incremented with a plain load+store rather than a locked
// RMW — Thm construction is the hottest path in the prover, and losing the
// odd increment under contention is acceptable for a statistic (exact in
// single-threaded runs, approximate otherwise; same policy as the intern
// tables' hit counters).
std::atomic<std::uint64_t> g_theorem_count{0};
}  // namespace

std::uint64_t Thm::theorems_constructed() {
  return g_theorem_count.load(std::memory_order_relaxed);
}

Thm::Thm(std::vector<Term> hyps, Term concl, std::set<std::string> oracles)
    : hyps_(std::move(hyps)),
      concl_(std::move(concl)),
      oracles_(std::move(oracles)) {
  g_theorem_count.store(g_theorem_count.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
}

std::vector<Term> Thm::hyp_union(const std::vector<Term>& a,
                                 const std::vector<Term>& b) {
  std::vector<Term> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out),
                 [](const Term& x, const Term& y) { return x < y; });
  return out;
}

std::vector<Term> Thm::hyp_remove(const std::vector<Term>& hs, const Term& t) {
  std::vector<Term> out;
  out.reserve(hs.size());
  for (const Term& h : hs) {
    if (!(h == t)) out.push_back(h);
  }
  return out;
}

std::set<std::string> Thm::tag_union(const Thm& a, const Thm& b) {
  std::set<std::string> tags = a.oracles_;
  tags.insert(b.oracles_.begin(), b.oracles_.end());
  return tags;
}

std::string Thm::to_string() const {
  std::string s;
  for (std::size_t i = 0; i < hyps_.size(); ++i) {
    if (i > 0) s += ", ";
    s += hyps_[i].to_string();
  }
  if (!hyps_.empty()) s += " ";
  s += "|- " + concl_.to_string();
  if (!oracles_.empty()) {
    s += "   [oracles:";
    for (const std::string& t : oracles_) s += " " + t;
    s += "]";
  }
  return s;
}

Thm Thm::refl(const Term& t) { return Thm({}, mk_eq(t, t), {}); }

Thm Thm::trans(const Thm& ab, const Thm& bc) {
  if (!is_eq(ab.concl_) || !is_eq(bc.concl_)) {
    throw KernelError("TRANS: conclusions must be equations");
  }
  if (!(eq_rhs(ab.concl_) == eq_lhs(bc.concl_))) {
    throw KernelError("TRANS: middle terms differ:\n  " +
                      eq_rhs(ab.concl_).to_string() + "\n  " +
                      eq_lhs(bc.concl_).to_string());
  }
  return Thm(hyp_union(ab.hyps_, bc.hyps_),
             mk_eq(eq_lhs(ab.concl_), eq_rhs(bc.concl_)), tag_union(ab, bc));
}

Thm Thm::mk_comb(const Thm& fg, const Thm& xy) {
  if (!is_eq(fg.concl_) || !is_eq(xy.concl_)) {
    throw KernelError("MK_COMB: conclusions must be equations");
  }
  Term f = eq_lhs(fg.concl_), g = eq_rhs(fg.concl_);
  Term x = eq_lhs(xy.concl_), y = eq_rhs(xy.concl_);
  // Term::comb performs the type check.
  return Thm(hyp_union(fg.hyps_, xy.hyps_),
             mk_eq(Term::comb(f, x), Term::comb(g, y)), tag_union(fg, xy));
}

Thm Thm::abs(const Term& v, const Thm& th) {
  if (!v.is_var()) throw KernelError("ABS: binder must be a variable");
  if (!is_eq(th.concl_)) throw KernelError("ABS: conclusion must be equation");
  for (const Term& h : th.hyps_) {
    if (is_free_in(v, h)) {
      throw KernelError("ABS: variable " + v.to_string() +
                        " is free in a hypothesis");
    }
  }
  return Thm(th.hyps_,
             mk_eq(Term::abs(v, eq_lhs(th.concl_)),
                   Term::abs(v, eq_rhs(th.concl_))),
             th.oracles_);
}

Thm Thm::beta(const Term& redex) {
  if (!redex.is_comb() || !redex.rator().is_abs()) {
    throw KernelError("BETA: not a beta-redex: " + redex.to_string());
  }
  Term lam = redex.rator();
  Term arg = redex.rand();
  TermSubst theta;
  theta.emplace(lam.bound_var(), arg);
  return Thm({}, mk_eq(redex, vsubst(theta, lam.body())), {});
}

Thm Thm::assume(const Term& p) {
  if (p.type() != bool_ty()) {
    throw KernelError("ASSUME: term is not boolean: " + p.to_string());
  }
  return Thm({p}, p, {});
}

Thm Thm::eq_mp(const Thm& pq, const Thm& p) {
  if (!is_eq(pq.concl_)) throw KernelError("EQ_MP: first arg not an equation");
  if (!(eq_lhs(pq.concl_) == p.concl_)) {
    throw KernelError("EQ_MP: mismatch:\n  " + eq_lhs(pq.concl_).to_string() +
                      "\n  " + p.concl_.to_string());
  }
  return Thm(hyp_union(pq.hyps_, p.hyps_), eq_rhs(pq.concl_),
             tag_union(pq, p));
}

Thm Thm::deduct_antisym(const Thm& p, const Thm& q) {
  std::vector<Term> hyps =
      hyp_union(hyp_remove(p.hyps_, q.concl_), hyp_remove(q.hyps_, p.concl_));
  return Thm(std::move(hyps), mk_eq(p.concl_, q.concl_), tag_union(p, q));
}

Thm Thm::inst_type(const TypeSubst& theta, const Thm& th) {
  // Identity instantiation (empty theta, or a fully ground theorem — the
  // common case once monomorphic rules are cached) is a no-op.
  if (theta.empty()) return th;
  bool ground = !th.concl_.has_type_vars();
  for (const Term& h : th.hyps_) ground = ground && !h.has_type_vars();
  if (ground) return th;
  std::vector<Term> hyps;
  hyps.reserve(th.hyps_.size());
  for (const Term& h : th.hyps_) hyps.push_back(type_inst(theta, h));
  std::sort(hyps.begin(), hyps.end());
  hyps.erase(std::unique(hyps.begin(), hyps.end(),
                         [](const Term& a, const Term& b) { return a == b; }),
             hyps.end());
  return Thm(std::move(hyps), type_inst(theta, th.concl_), th.oracles_);
}

Thm Thm::inst(const TermSubst& theta, const Thm& th) {
  for (const auto& [key, img] : theta) {
    if (!key.is_var()) throw KernelError("INST: key is not a variable");
    if (key.type() != img.type()) {
      throw KernelError("INST: type mismatch for " + key.to_string());
    }
  }
  if (theta.empty()) return th;
  std::vector<Term> hyps;
  hyps.reserve(th.hyps_.size());
  for (const Term& h : th.hyps_) hyps.push_back(vsubst(theta, h));
  std::sort(hyps.begin(), hyps.end());
  hyps.erase(std::unique(hyps.begin(), hyps.end(),
                         [](const Term& a, const Term& b) { return a == b; }),
             hyps.end());
  return Thm(std::move(hyps), vsubst(theta, th.concl_), th.oracles_);
}

Thm Thm::alpha(const Term& a, const Term& b) {
  if (!(a == b)) {
    throw KernelError("ALPHA: terms are not alpha-equivalent:\n  " +
                      a.to_string() + "\n  " + b.to_string());
  }
  return Thm({}, mk_eq(a, b), {});
}

Thm Oracle::admit(const std::string& tag, const Term& concl) {
  if (concl.type() != bool_ty()) {
    throw KernelError("Oracle::admit: formula is not boolean");
  }
  if (tag.empty()) throw KernelError("Oracle::admit: empty tag");
  return Thm({}, concl, {tag});
}

}  // namespace eda::kernel
