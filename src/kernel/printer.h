#pragma once

#include <string>

#include "kernel/terms.h"
#include "kernel/thm.h"

namespace eda::kernel {

/// Pretty-printer with fixity knowledge for the theories in this
/// repository.  Purely presentational; nothing in the trusted core depends
/// on it.  Renders:
///   * infixes:  = <=> /\ \/ ==> + - * DIV MOD EXP < <= and the pair comma
///   * binders:  `!`, `?`, lambda
///   * numerals: NUMERAL (BIT1 (BIT0 _0)) as decimal
///   * COND c a b  as  (if c then a else b)
std::string pretty(const Term& t);
std::string pretty(const Thm& th);

/// Pretty with the top-level type appended, e.g. `x + 1 : num`.
std::string pretty_typed(const Term& t);

}  // namespace eda::kernel
