#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "kernel/types.h"

namespace eda::kernel {

/// A term of higher-order logic: variable, constant instance, application
/// or lambda abstraction.  Immutable, shared representation; all
/// constructors type-check and throw KernelError on violation, so every
/// `Term` value is well-typed by construction.
class Term {
 public:
  enum class Kind { Var, Const, Comb, Abs };

  /// A variable `name : ty`.
  static Term var(std::string name, Type ty);
  /// An instance of a constant at a (possibly specialized) type.  The kernel
  /// does not consult the signature here; `Signature::mk_const` is the
  /// checked entry point used by everything above the kernel.
  static Term constant(std::string name, Type ty);
  /// Application `f x`; requires `f : a -> b`, `x : a`.
  static Term comb(Term f, Term x);
  /// Abstraction `\v. body`; `v` must be a Var.
  static Term abs(Term v, Term body);

  Kind kind() const { return node_->kind; }
  bool is_var() const { return kind() == Kind::Var; }
  bool is_const() const { return kind() == Kind::Const; }
  bool is_comb() const { return kind() == Kind::Comb; }
  bool is_abs() const { return kind() == Kind::Abs; }

  /// Name of a Var or Const (throws otherwise).
  const std::string& name() const;
  /// Type of the term (always available).
  const Type& type() const { return node_->ty; }

  /// Operator / operand of a Comb (throw otherwise).
  Term rator() const;
  Term rand() const;
  /// Bound variable / body of an Abs (throw otherwise).
  Term bound_var() const;
  Term body() const;

  /// Alpha-equivalence (`\x. x` equals `\y. y`).
  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  /// Total order modulo alpha-equivalence; used to keep hypothesis sets
  /// canonical inside theorems.
  static int compare(const Term& a, const Term& b);
  bool operator<(const Term& other) const { return compare(*this, other) < 0; }

  std::size_t hash() const { return node_->hash; }

  /// Pointer identity of the shared representation: true implies structural
  /// equality.  Comparison exploits this to stay linear in the *DAG* size of
  /// heavily shared terms — the kernel's cost model ("pointers, no copying",
  /// paper section III.A) depends on it.
  bool identical(const Term& other) const { return node_ == other.node_; }

  /// Stable identity of the shared node, usable as a memoisation key while
  /// the Term (or any copy) is alive.  Substitution uses it to visit each
  /// *DAG* node once instead of exploding shared structure into a tree.
  const void* node_id() const { return node_.get(); }

  /// Render with minimal fixity knowledge (full printer lives in printer.h).
  std::string to_string() const;

 private:
  struct Node {
    Kind kind;
    std::string name;        // Var / Const
    Type ty;                 // type of the whole term
    std::shared_ptr<const Node> a, b;  // Comb: rator/rand; Abs: var/body
    std::size_t hash;

    Node(Kind k, std::string n, Type t, std::shared_ptr<const Node> x,
         std::shared_ptr<const Node> y, std::size_t h)
        : kind(k), name(std::move(n)), ty(std::move(t)), a(std::move(x)),
          b(std::move(y)), hash(h) {}
  };
  explicit Term(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  static Term from(std::shared_ptr<const Node> n) { return Term(std::move(n)); }
  std::shared_ptr<const Node> node_;

  friend int alpha_compare_impl(const Term&, const Term&,
                                std::vector<std::pair<const void*, const void*>>&);
};

/// Term-for-variable substitution.  Keys must be Var terms; the map is
/// ordered by Term::compare.
using TermSubst = std::map<Term, Term>;

/// Free variables of a term, added to `out`.
void collect_free_vars(const Term& t, std::set<Term>& out);
std::set<Term> free_vars(const Term& t);
bool is_free_in(const Term& v, const Term& t);

/// All type variables occurring anywhere in the term.
void collect_term_type_vars(const Term& t, std::set<std::string>& out);

/// Capture-avoiding substitution of terms for free variables.  Every key
/// must be a Var whose type equals its image's type; bound variables are
/// renamed as needed.
Term vsubst(const TermSubst& theta, const Term& t);

/// Instantiate type variables throughout a term, renaming bound term
/// variables when instantiation would cause capture.
Term type_inst(const TypeSubst& theta, const Term& t);

/// A variant of variable `v` (same type, primed name) that is not free in
/// any of `avoid`.
Term variant(const std::set<Term>& avoid, const Term& v);

// --- Equality-specific helpers (the `=` constant is primitive) ------------

/// The equality constant at element type `ty`: `(=) : ty -> ty -> bool`.
Term eq_const(const Type& ty);
/// `a = b` as a term (types must agree).
Term mk_eq(const Term& a, const Term& b);
bool is_eq(const Term& t);
Term eq_lhs(const Term& t);
Term eq_rhs(const Term& t);

/// Strip an application spine: `f x y z` -> (f, [x, y, z]).
std::pair<Term, std::vector<Term>> strip_comb(const Term& t);
/// Build an application spine.
Term list_comb(Term f, const std::vector<Term>& args);

}  // namespace eda::kernel
