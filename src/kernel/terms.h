#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "kernel/types.h"

namespace eda::kernel {

class Term;

namespace detail {
struct TermNode;
}  // namespace detail

/// A term of higher-order logic: variable, constant instance, application
/// or lambda abstraction.  Immutable, shared representation; all
/// constructors type-check and throw KernelError on violation, so every
/// `Term` value is well-typed by construction.
///
/// Terms are *hash-consed*: each constructor interns its node, so
/// structurally identical terms (same names, same binder spellings) are one
/// node and `identical()` is the equality fast path.  Alpha-equivalent but
/// differently-spelt abstractions (`\x. x` vs `\y. y`) remain distinct
/// nodes that compare equal via `operator==`.  Interned nodes live in a
/// permanent arena, so `node_id()` is a valid memoisation key for the whole
/// process, and per-node attributes (alpha-invariant hash, free-variable
/// set, type-variable flag) are computed once per node, ever.
class Term {
 public:
  enum class Kind { Var, Const, Comb, Abs };

  /// A variable `name : ty`.
  static Term var(std::string name, Type ty);
  /// An instance of a constant at a (possibly specialized) type.  The kernel
  /// does not consult the signature here; `Signature::mk_const` is the
  /// checked entry point used by everything above the kernel.
  static Term constant(std::string name, Type ty);
  /// Application `f x`; requires `f : a -> b`, `x : a`.
  static Term comb(Term f, Term x);
  /// Abstraction `\v. body`; `v` must be a Var.
  static Term abs(Term v, Term body);

  Kind kind() const;
  bool is_var() const { return kind() == Kind::Var; }
  bool is_const() const { return kind() == Kind::Const; }
  bool is_comb() const { return kind() == Kind::Comb; }
  bool is_abs() const { return kind() == Kind::Abs; }

  /// Name of a Var or Const (throws otherwise).
  const std::string& name() const;
  /// Type of the term (always available).
  const Type& type() const;

  /// Operator / operand of a Comb (throw otherwise).
  Term rator() const;
  Term rand() const;
  /// Bound variable / body of an Abs (throw otherwise).
  Term bound_var() const;
  Term body() const;

  /// Alpha-equivalence (`\x. x` equals `\y. y`).  Interning makes the
  /// structural case a pointer comparison; only differently-spelt binders
  /// fall through to the alpha walk.
  bool operator==(const Term& other) const;
  bool operator!=(const Term& other) const { return !(*this == other); }
  /// Total order modulo alpha-equivalence; used to keep hypothesis sets
  /// canonical inside theorems.
  static int compare(const Term& a, const Term& b);
  bool operator<(const Term& other) const { return compare(*this, other) < 0; }

  /// Alpha-invariant hash, precomputed at intern time.
  std::size_t hash() const;

  /// Pointer identity of the interned representation: true iff the terms
  /// are structurally identical (hash-consing guarantees the converse too).
  /// Comparison exploits this to stay linear in the *DAG* size of heavily
  /// shared terms — the kernel's cost model ("pointers, no copying", paper
  /// section III.A) depends on it.
  bool identical(const Term& other) const { return node_ == other.node_; }

  /// Stable identity of the interned node, usable as a memoisation key for
  /// the lifetime of the process (interned nodes are never freed).
  const void* node_id() const { return node_; }

  /// O(1): does any type inside the term mention a type variable?
  /// (Precomputed at intern time; type instantiation of a ground term is
  /// the identity.)
  bool has_type_vars() const;

  /// Render with minimal fixity knowledge (full printer lives in printer.h).
  std::string to_string() const;

  /// Interning statistics (distinct nodes, table hits, arena bytes).
  static detail::InternStats intern_stats();

 private:
  explicit Term(const detail::TermNode* node) : node_(node) {}
  static Term from(const detail::TermNode* n) { return Term(n); }
  const detail::TermNode* node_;

  friend const std::set<Term>& free_vars_set(const Term& t);
  friend Term eq_const(const Type& ty);
};

namespace detail {

/// The interned representation of a Term.  Construction happens only inside
/// the four Term constructors, which guarantee one node per structure.
struct TermNode {
  TermNode(Term::Kind kind_, std::string name_, Type ty_, const TermNode* a_,
           const TermNode* b_, std::size_t hash_, std::size_t shash_,
           bool poly_)
      : kind(kind_),
        name(std::move(name_)),
        ty(std::move(ty_)),
        a(a_),
        b(b_),
        hash(hash_),
        shash(shash_),
        poly(poly_) {}

  Term::Kind kind;
  std::string name;  ///< Var / Const
  Type ty;           ///< type of the whole term
  const TermNode* a; ///< Comb: rator; Abs: binder
  const TermNode* b; ///< Comb: rand;  Abs: body
  std::size_t hash;  ///< alpha-invariant hash
  std::size_t shash; ///< structural hash (the intern-table key)
  bool poly;         ///< some type inside the term has type variables
  /// Lazily built free-variable set, owned by the node (permanent, like the
  /// node itself).  Published with a release CAS so concurrent readers
  /// either see null (and compute) or a fully-built set; the losing
  /// computation is discarded (free_vars_set in terms.cpp).
  mutable std::atomic<const std::set<Term>*> fv{nullptr};
};

}  // namespace detail

inline Term::Kind Term::kind() const { return node_->kind; }
inline const Type& Term::type() const { return node_->ty; }
inline std::size_t Term::hash() const { return node_->hash; }
inline bool Term::has_type_vars() const { return node_->poly; }

/// Term-for-variable substitution.  Keys must be Var terms; the map is
/// ordered by Term::compare.
using TermSubst = std::map<Term, Term>;

/// The free variables of `t`, cached on the interned node: the first call
/// per node computes the set, every later call (for the process lifetime)
/// returns the same reference.  This is the workhorse behind
/// `free_vars` / `is_free_in` / substitution pruning.
const std::set<Term>& free_vars_set(const Term& t);

/// Free variables of a term, added to `out`.
void collect_free_vars(const Term& t, std::set<Term>& out);
std::set<Term> free_vars(const Term& t);
bool is_free_in(const Term& v, const Term& t);

/// All type variables occurring anywhere in the term.
void collect_term_type_vars(const Term& t, std::set<std::string>& out);

/// Capture-avoiding substitution of terms for free variables.  Every key
/// must be a Var whose type equals its image's type; bound variables are
/// renamed as needed.
Term vsubst(const TermSubst& theta, const Term& t);

/// Instantiate type variables throughout a term, renaming bound term
/// variables when instantiation would cause capture.
Term type_inst(const TypeSubst& theta, const Term& t);

/// A variant of variable `v` (same type, primed name) that is not free in
/// any of `avoid`.
Term variant(const std::set<Term>& avoid, const Term& v);

// --- Equality-specific helpers (the `=` constant is primitive) ------------

/// The equality constant at element type `ty`: `(=) : ty -> ty -> bool`.
Term eq_const(const Type& ty);
/// `a = b` as a term (types must agree).
Term mk_eq(const Term& a, const Term& b);
bool is_eq(const Term& t);
Term eq_lhs(const Term& t);
Term eq_rhs(const Term& t);

/// Strip an application spine: `f x y z` -> (f, [x, y, z]).
std::pair<Term, std::vector<Term>> strip_comb(const Term& t);
/// Build an application spine.
Term list_comb(Term f, const std::vector<Term>& args);

}  // namespace eda::kernel
