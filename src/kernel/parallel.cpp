#include "kernel/parallel.h"

#include <cstdlib>

namespace eda::kernel {

namespace {

// Identity of the current thread within a pool, for LIFO self-submission.
// A thread belongs to at most one pool (pools never share workers).
thread_local ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_worker_index = 0;

std::atomic<unsigned> g_global_threads{0};  // 0 = use default_thread_count()

}  // namespace

unsigned default_thread_count() {
  if (const char* env = std::getenv("EDA_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void set_global_thread_count(unsigned threads) {
  g_global_threads.store(threads == 0 ? 1 : threads,
                         std::memory_order_relaxed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool* pool = new ThreadPool(
      g_global_threads.load(std::memory_order_relaxed) != 0
          ? g_global_threads.load(std::memory_order_relaxed)
          : default_thread_count());
  return *pool;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned k = 0; k < threads; ++k) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (unsigned k = 0; k < threads; ++k) {
    threads_.emplace_back([this, k] { worker_loop(k); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    wake_.notify_all();
  }
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t target;
  if (tl_pool == this) {
    target = tl_worker_index;  // keep nested work local, stealable
  } else {
    target = rr_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  }
  // Count before publishing the task: a worker that pops it immediately
  // must never observe (and underflow) a not-yet-incremented counter.
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->queue.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    wake_.notify_one();
  }
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  // Own deque first, newest-first.
  {
    Worker& w = *workers_[self];
    std::lock_guard<std::mutex> lock(w.mu);
    if (!w.queue.empty()) {
      task = std::move(w.queue.back());
      w.queue.pop_back();
    }
  }
  // Then steal oldest-first from the others.
  if (!task) {
    for (std::size_t k = 1; k < workers_.size() && !task; ++k) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.front());
        victim.queue.pop_front();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tl_pool = this;
  tl_worker_index = index;
  for (;;) {
    if (try_run_one(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mu_);
    wake_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

}  // namespace eda::kernel
