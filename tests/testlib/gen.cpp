#include "testlib/gen.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "theories/numeral.h"

namespace eda::testlib {

std::uint64_t stimulus_seed() {
  // Resolved and logged exactly once; function-local static init is
  // thread-safe, so concurrent first calls agree on the value.
  static const std::uint64_t seed = [] {
    std::uint64_t s = 0x5eedf17eULL;
    if (const char* env = std::getenv("EDA_SEED")) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0') {
        s = static_cast<std::uint64_t>(v);
      } else {
        std::fprintf(stderr,
                     "testlib: malformed EDA_SEED '%s' ignored, using "
                     "default\n",
                     env);
      }
    }
    std::printf("testlib: stimulus seed %llu (override with EDA_SEED)\n",
                static_cast<unsigned long long>(s));
    std::fflush(stdout);
    return s;
  }();
  return seed;
}

namespace k = eda::kernel;
using k::Term;
using k::Type;

TermGen::TermGen(std::uint64_t seed, std::string binder_salt)
    : rng_(seed), binder_salt_(std::move(binder_salt)) {}

std::uint64_t TermGen::u64() { return rng_(); }

int TermGen::range(int lo, int hi) {
  return lo + static_cast<int>(rng_() % static_cast<std::uint64_t>(
                                            hi - lo + 1));
}

Type TermGen::random_type(int depth) {
  if (depth <= 0 || range(0, 2) == 0) {
    return range(0, 1) == 0 ? k::bool_ty() : k::num_ty();
  }
  Type a = random_type(depth - 1);
  Type b = random_type(depth - 1);
  return range(0, 1) == 0 ? k::fun_ty(a, b) : k::prod_ty(a, b);
}

Term TermGen::random_term(const Type& ty, int depth) {
  // Leaf: an in-scope bound variable of the right type when one exists
  // (and the dice agree), else a free variable from a deliberately small
  // pool — shared spellings force interner sharing across generated terms.
  auto make_leaf = [&]() -> Term {
    std::vector<Term> candidates;
    for (const Term& v : scope_) {
      if (v.type() == ty) candidates.push_back(v);
    }
    // One draw decides both "use a bound var?" and which pool name —
    // consuming the SAME rng stream regardless of the outcome keeps two
    // salt-variant generators in lockstep.
    int pick = range(0, 3);
    if (!candidates.empty() && pick != 0) {
      return candidates[static_cast<std::size_t>(
          range(0, static_cast<int>(candidates.size()) - 1))];
    }
    return Term::var("x" + std::to_string(range(0, 3)), ty);
  };
  if (depth <= 0) return make_leaf();
  int choice = range(0, 5);
  if (choice == 0) return make_leaf();
  if (ty == k::bool_ty() && choice <= 2) {
    Type elem = random_type(1);
    Term lhs = random_term(elem, depth - 1);
    Term rhs = random_term(elem, depth - 1);
    return k::mk_eq(lhs, rhs);
  }
  if (k::is_fun_ty(ty) && choice <= 4) {
    Term v = Term::var(binder_salt_ + std::to_string(binder_count_++),
                       k::dom_ty(ty));
    scope_.push_back(v);
    Term body = random_term(k::cod_ty(ty), depth - 1);
    scope_.pop_back();
    return Term::abs(v, body);
  }
  // Application: pick a small argument type, build f : a -> ty and x : a.
  Type arg = random_type(1);
  Term f = random_term(k::fun_ty(arg, ty), depth - 1);
  Term x = random_term(arg, depth - 1);
  return Term::comb(f, x);
}

Term TermGen::random_goal(int depth) {
  return random_term(k::bool_ty(), depth);
}

std::vector<const void*> build_family(int rounds) {
  std::vector<const void*> ids;
  Term t = Term::var("x", k::bool_ty());
  ids.push_back(t.node_id());
  for (int i = 0; i < rounds; ++i) {
    t = k::mk_eq(t, t);
    ids.push_back(t.node_id());
    Term leaf = Term::var("y" + std::to_string(i % 7), k::bool_ty());
    ids.push_back(k::mk_eq(leaf, leaf).node_id());
    Term n = eda::thy::mk_numeral(static_cast<std::uint64_t>(i % 97));
    ids.push_back(n.node_id());
  }
  return ids;
}

Term eq_tower(int depth, const std::string& leaf) {
  Term t = Term::var(leaf, k::bool_ty());
  for (int i = 0; i < depth; ++i) t = k::mk_eq(t, t);
  return t;
}

namespace {

/// Shared body of random_netlist / random_netlist_multi: the machine
/// without its output list.  Returns the literal construction order so the
/// wrappers can tap outputs.  The rng stream is consumed identically for
/// both wrappers — same seed, same internal logic.
circuit::GateNetlist random_machine(std::uint64_t seed, int inputs,
                                    int gates, int ffs,
                                    std::vector<circuit::LitId>& lits) {
  using circuit::GateNetlist;
  using circuit::GateOp;
  using circuit::LitId;
  std::mt19937_64 rng(seed);
  auto pick = [&rng](int n) {
    return static_cast<int>(rng() % static_cast<std::uint64_t>(n));
  };
  GateNetlist net;
  for (int i = 0; i < inputs; ++i) {
    lits.push_back(net.add_input("in" + std::to_string(i)));
  }
  for (int i = 0; i < ffs; ++i) {
    lits.push_back(net.add_dff("ff" + std::to_string(i), (rng() & 1) != 0));
  }
  for (int i = 0; i < gates; ++i) {
    GateOp op = static_cast<GateOp>(
        static_cast<int>(GateOp::And) + pick(3));  // And / Or / Xor
    if (pick(5) == 0) op = GateOp::Not;
    LitId a = lits[static_cast<std::size_t>(pick(
        static_cast<int>(lits.size())))];
    LitId b = lits[static_cast<std::size_t>(pick(
        static_cast<int>(lits.size())))];
    lits.push_back(op == GateOp::Not ? net.add_gate(op, a)
                                     : net.add_gate(op, a, b));
  }
  for (int i = 0; i < ffs; ++i) {
    // Next-state from the tail of the literal list: every flop depends on
    // recent logic, keeping the machine connected.
    LitId next = lits[lits.size() - 1 -
                      static_cast<std::size_t>(pick(
                          static_cast<int>(lits.size()) / 2 + 1))];
    net.set_dff_next(net.dffs()[static_cast<std::size_t>(i)], next);
  }
  return net;
}

}  // namespace

circuit::GateNetlist random_netlist(std::uint64_t seed, int inputs,
                                    int gates, int ffs) {
  std::vector<circuit::LitId> lits;
  circuit::GateNetlist net = random_machine(seed, inputs, gates, ffs, lits);
  net.add_output("out", lits.back());
  net.validate();
  return net;
}

circuit::GateNetlist random_netlist_multi(std::uint64_t seed, int inputs,
                                          int gates, int ffs, int outputs) {
  std::vector<circuit::LitId> lits;
  circuit::GateNetlist net = random_machine(seed, inputs, gates, ffs, lits);
  if (outputs <= 0 || static_cast<std::size_t>(outputs) > lits.size()) {
    throw std::out_of_range("random_netlist_multi: bad output count");
  }
  // Tap distinct literals from the tail: out0 is the last literal (same
  // cone as random_netlist's "out"), out1 the one before, and so on.
  for (int i = 0; i < outputs; ++i) {
    net.add_output("out" + std::to_string(i),
                   lits[lits.size() - 1 - static_cast<std::size_t>(i)]);
  }
  net.validate();
  return net;
}

circuit::GateNetlist mutate_cone(const circuit::GateNetlist& net,
                                 std::size_t output_idx, ConeEdit edit) {
  using circuit::GateNetlist;
  using circuit::GateOp;
  using circuit::LitId;
  if (output_idx >= net.outputs().size()) {
    throw std::out_of_range("mutate_cone: bad output index");
  }
  // Rebuild node-for-node (the netlist API has no output re-pointing), so
  // every original literal keeps its id and the inverters append at the
  // end — the other cones' canonical extraction never sees them.
  GateNetlist out;
  for (const circuit::GateNode& n : net.nodes()) {
    switch (n.op) {
      case GateOp::Const0:
        out.add_const(false);
        break;
      case GateOp::Const1:
        out.add_const(true);
        break;
      case GateOp::Input:
        out.add_input(n.name);
        break;
      case GateOp::Dff:
        out.add_dff(n.name, n.init);
        break;
      case GateOp::Not:
        out.add_gate(GateOp::Not, n.a);
        break;
      default:
        out.add_gate(n.op, n.a, n.b);
        break;
    }
  }
  for (LitId d : net.dffs()) out.set_dff_next(d, net.node(d).next);
  for (std::size_t i = 0; i < net.outputs().size(); ++i) {
    const auto& [name, lit] = net.outputs()[i];
    LitId target = lit;
    if (i == output_idx) {
      switch (edit) {
        case ConeEdit::Equivalent:
          target = out.add_gate(GateOp::Not, out.add_gate(GateOp::Not, lit));
          break;
        case ConeEdit::EquivalentOpaque: {
          if (net.inputs().empty()) {
            throw std::out_of_range(
                "mutate_cone: EquivalentOpaque needs a primary input");
          }
          LitId red = out.add_gate(GateOp::And, lit, net.inputs().front());
          target = out.add_gate(GateOp::Or, lit, red);
          break;
        }
        case ConeEdit::Different:
          target = out.add_gate(GateOp::Not, lit);
          break;
      }
    }
    out.add_output(name, target);
  }
  out.validate();
  return out;
}

}  // namespace eda::testlib
