#pragma once

// Shared seeded generators for the test suites.  Every suite that needs
// random terms, the overlapping concurrency term family, equality towers
// or random gate netlists draws them from here, so "the same seed" means
// the same objects across test_kernel, test_parallel, test_serialize and
// friends — and a distribution fix lands everywhere at once.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "circuit/bitblast.h"
#include "kernel/terms.h"
#include "kernel/types.h"

namespace eda::testlib {

/// Deterministic generator of random *well-typed* kernel terms.
///
/// All structural decisions (shapes, types, which variable a leaf picks)
/// are driven by `seed` alone; `binder_salt` only affects the SPELLING of
/// bound-variable names.  Two generators with equal seeds and different
/// salts therefore produce pairwise alpha-equivalent terms that intern to
/// distinct nodes whenever an abstraction occurs — exactly the pairs the
/// goal-cache and serializer property tests need.
class TermGen {
 public:
  explicit TermGen(std::uint64_t seed, std::string binder_salt = "b");

  /// Random type of bounded depth: bool / num leaves, fun/prod interior.
  kernel::Type random_type(int depth);
  /// Random well-typed term of exactly type `ty`, at most `depth` deep.
  kernel::Term random_term(const kernel::Type& ty, int depth);
  /// Random boolean term — the shape goal caches key on.
  kernel::Term random_goal(int depth);

  std::uint64_t u64();
  /// Uniform integer in [lo, hi].
  int range(int lo, int hi);

 private:
  std::mt19937_64 rng_;
  std::string binder_salt_;
  int binder_count_ = 0;
  std::vector<kernel::Term> scope_;  ///< bound variables, innermost last
};

/// The overlapping term family the concurrency tests build from every
/// thread: equality towers over a shared leaf pool plus numerals.  Returns
/// the node ids in build order so cross-thread runs can be compared for
/// pointer identity.
std::vector<const void*> build_family(int rounds);

/// `depth`-high doubling equality tower over one boolean leaf — the 2^depth
/// tree-size / O(depth) DAG-size shape the interning tests lean on.
kernel::Term eq_tower(int depth, const std::string& leaf = "x");

/// Random (valid, cycle-free) gate netlist: `inputs` primary inputs,
/// `ffs` flip-flops, `gates` random gates over earlier literals, plus one
/// output per flip-flop chain tail.  Deterministic in `seed`.
circuit::GateNetlist random_netlist(std::uint64_t seed, int inputs,
                                    int gates, int ffs);

}  // namespace eda::testlib
