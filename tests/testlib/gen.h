#pragma once

// Shared seeded generators for the test suites.  Every suite that needs
// random terms, the overlapping concurrency term family, equality towers
// or random gate netlists draws them from here, so "the same seed" means
// the same objects across test_kernel, test_parallel, test_serialize and
// friends — and a distribution fix lands everywhere at once.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "circuit/bitblast.h"
#include "kernel/terms.h"
#include "kernel/types.h"

namespace eda::testlib {

/// The suite-wide base seed for every randomized test and bench stimulus:
/// the EDA_SEED environment variable when set (decimal or 0x-hex, full
/// token), else a fixed default.  Resolved once per process and logged to
/// stdout on first use, so every ctest log and bench JSON records the seed
/// it actually ran under — a failing randomized case replays exactly with
/// `EDA_SEED=<logged value>`.  Suites deriving many seeds should offset
/// from this base (seed + case index), keeping cases distinct but all
/// anchored to the one logged value.
std::uint64_t stimulus_seed();

/// Deterministic generator of random *well-typed* kernel terms.
///
/// All structural decisions (shapes, types, which variable a leaf picks)
/// are driven by `seed` alone; `binder_salt` only affects the SPELLING of
/// bound-variable names.  Two generators with equal seeds and different
/// salts therefore produce pairwise alpha-equivalent terms that intern to
/// distinct nodes whenever an abstraction occurs — exactly the pairs the
/// goal-cache and serializer property tests need.
class TermGen {
 public:
  explicit TermGen(std::uint64_t seed, std::string binder_salt = "b");

  /// Random type of bounded depth: bool / num leaves, fun/prod interior.
  kernel::Type random_type(int depth);
  /// Random well-typed term of exactly type `ty`, at most `depth` deep.
  kernel::Term random_term(const kernel::Type& ty, int depth);
  /// Random boolean term — the shape goal caches key on.
  kernel::Term random_goal(int depth);

  std::uint64_t u64();
  /// Uniform integer in [lo, hi].
  int range(int lo, int hi);

 private:
  std::mt19937_64 rng_;
  std::string binder_salt_;
  int binder_count_ = 0;
  std::vector<kernel::Term> scope_;  ///< bound variables, innermost last
};

/// The overlapping term family the concurrency tests build from every
/// thread: equality towers over a shared leaf pool plus numerals.  Returns
/// the node ids in build order so cross-thread runs can be compared for
/// pointer identity.
std::vector<const void*> build_family(int rounds);

/// `depth`-high doubling equality tower over one boolean leaf — the 2^depth
/// tree-size / O(depth) DAG-size shape the interning tests lean on.
kernel::Term eq_tower(int depth, const std::string& leaf = "x");

/// Random (valid, cycle-free) gate netlist: `inputs` primary inputs,
/// `ffs` flip-flops, `gates` random gates over earlier literals, plus one
/// output per flip-flop chain tail.  Deterministic in `seed`.
circuit::GateNetlist random_netlist(std::uint64_t seed, int inputs,
                                    int gates, int ffs);

/// Multi-output variant: the same random machine (identical rng stream, so
/// equal seeds share all internal logic with random_netlist) but with
/// `outputs` primary outputs tapping distinct literals from the tail of
/// the construction — the N-cone designs the incremental-verification
/// tests and the bench edit-replay leg mutate one cone of.  Requires
/// outputs <= inputs + ffs + gates.
circuit::GateNetlist random_netlist_multi(std::uint64_t seed, int inputs,
                                          int gates, int ffs, int outputs);

/// The two single-cone edits with KNOWN semantics, applied at one primary
/// output's tap (so every other output's cone — including cones sharing
/// logic with the edited one — is structurally untouched):
///
///   Equivalent — insert a double inverter before the output.  The cone's
///     structure (and hence its canonical hash) changes, its function does
///     not: the mutated design must still verify EQUIV.
///   EquivalentOpaque — insert the absorption redundancy
///     Or(x, And(x, in0)) before the output.  Also function-preserving,
///     but unlike the double inverter it is NOT removed by syntactic
///     simplification (no local rewrite rule fires), so proving the
///     mutated cone equivalent costs a real engine run — the edit the
///     bench uses to measure incremental re-verification honestly.
///     Requires the netlist to have at least one primary input.
///   Different  — insert a single inverter.  The output is complemented on
///     EVERY input and state, so the design is NONEQUIV with this output
///     as the counterexample.
enum class ConeEdit { Equivalent, EquivalentOpaque, Different };

/// Rebuild `net` with `edit` applied to outputs()[output_idx].  Node ids
/// of the original netlist are preserved (new inverters append at the
/// end); throws std::out_of_range on a bad index.
circuit::GateNetlist mutate_cone(const circuit::GateNetlist& net,
                                 std::size_t output_idx, ConeEdit edit);

}  // namespace eda::testlib
