// Property tests over random circuits for the newer formal steps:
// register permutation, XOR re-encoding, dead-register elimination,
// forward/backward round trips, and the retime-match verifier.  Each
// property is swept over seeds with TEST_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>

#include "hash/backward.h"
#include "logic/bool_thms.h"
#include "hash/compound.h"
#include "hash/encode_step.h"
#include "hash/redundancy.h"
#include "hash/retime_step.h"
#include "verify/retime_match.h"

namespace c = eda::circuit;
namespace h = eda::hash;
namespace v = eda::verify;

namespace {

struct RandomCircuit {
  c::Rtl rtl;
  h::Cut legal_cut;
  int width = 4;
};

/// Stratified random circuit: an f-layer over registers/constants (a legal
/// forward cut), then a g-layer over everything, outputs and feedback from
/// the g-layer.  Mirrors the generator in test_property.cpp.
RandomCircuit make_random(std::uint32_t seed) {
  std::mt19937 rng(seed);
  RandomCircuit out;
  c::Rtl& r = out.rtl;
  out.width = 2 + static_cast<int>(rng() % 5);
  int width = out.width;

  std::vector<c::SignalId> inputs;
  int nin = 1 + static_cast<int>(rng() % 2);
  for (int k = 0; k < nin; ++k) {
    inputs.push_back(r.add_input("in" + std::to_string(k), width));
  }
  std::vector<c::SignalId> regs;
  int nreg = 2 + static_cast<int>(rng() % 3);
  for (int k = 0; k < nreg; ++k) {
    regs.push_back(r.add_reg("r" + std::to_string(k), width, rng() & 7));
  }
  c::SignalId konst = r.add_const(width, 1 + (rng() & 3));

  auto pick = [&](const std::vector<c::SignalId>& pool) {
    return pool[rng() % pool.size()];
  };
  auto word_op = [&](const std::vector<c::SignalId>& pool) {
    c::SignalId a = pick(pool), b = pick(pool);
    switch (rng() % 5) {
      case 0: return r.add_op(c::Op::Add, {a, b});
      case 1: return r.add_op(c::Op::Sub, {a, b});
      case 2: return r.add_op(c::Op::Xor, {a, b});
      case 3: return r.add_op(c::Op::And, {a, b});
      default: return r.add_op(c::Op::Not, {a});
    }
  };

  std::vector<c::SignalId> f_pool = regs;
  f_pool.push_back(konst);
  int nf = 1 + static_cast<int>(rng() % 3);
  for (int k = 0; k < nf; ++k) {
    c::SignalId s = word_op(f_pool);
    out.legal_cut.f_nodes.push_back(s);
    f_pool.push_back(s);
  }
  std::vector<c::SignalId> g_pool = f_pool;
  for (c::SignalId i : inputs) g_pool.push_back(i);
  int ng = 2 + static_cast<int>(rng() % 4);
  c::SignalId last = g_pool.back();
  for (int k = 0; k < ng; ++k) {
    last = word_op(g_pool);
    g_pool.push_back(last);
  }
  // Anchor the output on a register so at least one register is live.
  r.add_output("y", r.add_op(c::Op::Xor, {last, regs[0]}));
  for (c::SignalId reg : regs) {
    c::SignalId nxt = word_op(g_pool);
    r.set_reg_next(reg, nxt);
  }
  r.validate();
  return out;
}

}  // namespace

class StepProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StepProperty, RandomPermutationPreservesBehaviour) {
  RandomCircuit rc = make_random(GetParam());
  std::mt19937 rng(GetParam() * 31 + 1);
  std::vector<std::size_t> perm(rc.rtl.regs().size());
  for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = k;
  std::shuffle(perm.begin(), perm.end(), rng);
  h::FormalEncodeResult res = h::formal_permute_registers(rc.rtl, perm);
  EXPECT_TRUE(res.theorem.is_pure());
  EXPECT_TRUE(c::simulation_equivalent(rc.rtl, res.encoded, 200, GetParam()));
}

TEST_P(StepProperty, RandomXorMasksPreserveBehaviour) {
  RandomCircuit rc = make_random(GetParam());
  std::mt19937 rng(GetParam() * 77 + 5);
  std::vector<std::uint64_t> masks;
  for (c::SignalId r : rc.rtl.regs()) {
    masks.push_back(rng() & rc.rtl.mask(r));
  }
  h::FormalEncodeResult res = h::formal_xor_reencode(rc.rtl, masks);
  for (const std::string& tag : res.theorem.oracles()) {
    EXPECT_EQ(tag, "NUM_COMPUTE");
  }
  EXPECT_TRUE(c::simulation_equivalent(rc.rtl, res.encoded, 200, GetParam()));
}

TEST_P(StepProperty, DeadRegisterRemovalMatchesConventional) {
  RandomCircuit rc = make_random(GetParam());
  // Graft a dead subsystem onto the random circuit: a free-running counter
  // and a register chasing it.
  c::Rtl rtl = rc.rtl;
  auto d1 = rtl.add_reg("dead1", rc.width, 3);
  auto d2 = rtl.add_reg("dead2", rc.width, 1);
  rtl.set_reg_next(
      d1, rtl.add_op(c::Op::Add, {d1, rtl.add_const(rc.width, 1)}));
  rtl.set_reg_next(d2, rtl.add_op(c::Op::Xor, {d1, d2}));
  rtl.validate();

  auto dead = h::find_dead_registers(rtl);
  // At least the two grafted registers; the random core may contribute
  // its own dead state as well.
  ASSERT_GE(dead.size(), 2u);
  h::FormalDeadRemovalResult res = h::formal_remove_dead_registers(rtl);
  EXPECT_TRUE(res.theorem.is_pure());
  EXPECT_EQ(res.stripped.regs().size(), rtl.regs().size() - dead.size());
  EXPECT_TRUE(c::simulation_equivalent(rtl, res.stripped, 200, GetParam()));
  c::Rtl conv = h::conventional_remove_dead(rtl);
  EXPECT_TRUE(h::compile(conv).h == h::compile(res.stripped).h);
}

TEST_P(StepProperty, ForwardBackwardRoundTripIsIdentity) {
  RandomCircuit rc = make_random(GetParam());
  std::optional<h::FormalRetimeResult> fwd_opt;
  try {
    fwd_opt = h::formal_retime(rc.rtl, rc.legal_cut);
  } catch (const h::CutError&) {
    GTEST_SKIP() << "degenerate cut (f-node unused)";
  }
  const h::FormalRetimeResult& fwd = *fwd_opt;
  h::RetimeMapping map = h::conventional_retime_mapped(rc.rtl, rc.legal_cut);
  h::BackwardCut inv = h::inverse_of_forward_cut(map, rc.legal_cut);
  if (inv.f_nodes.empty()) GTEST_SKIP() << "cut vanished in the mapping";
  h::FormalBackwardResult bwd = h::formal_backward_retime(fwd.retimed, inv);
  // The chain composes (the middle descriptions agree exactly) and the
  // round trip is behaviourally the identity.  Syntactic identity is
  // asserted on the canonical circuits in test_backward.cpp; on random
  // circuits the forward step may legitimately sweep dead f-nodes, so the
  // restored netlist can be a cleaned-up variant of the original.
  auto chain = h::compose_steps(fwd.theorem, bwd.theorem);
  auto body = chain.concl();
  while (eda::logic::is_forall(body)) {
    body = eda::logic::dest_forall(body).second;
  }
  h::CompiledCircuit orig = h::compile(rc.rtl);
  auto [lf, largs] = eda::kernel::strip_comb(eda::kernel::eq_lhs(body));
  EXPECT_TRUE(largs[0] == orig.h);
  EXPECT_TRUE(largs[1] == orig.q);
  EXPECT_TRUE(
      c::simulation_equivalent(rc.rtl, bwd.retimed, 200, GetParam()));
}

TEST_P(StepProperty, RetimeMatchAcceptsConventionalRetimings) {
  RandomCircuit rc = make_random(GetParam());
  c::Rtl retimed;
  try {
    retimed = h::conventional_retime(rc.rtl, rc.legal_cut);
  } catch (const h::CutError&) {
    GTEST_SKIP() << "degenerate cut";
  }
  v::RetimeMatchResult res = v::verify_retiming(rc.rtl, retimed, GetParam());
  EXPECT_TRUE(res.equivalent) << res.reason;
}

TEST_P(StepProperty, CompoundPermuteXorStripChains) {
  // A three-step chain across *different* formal step kinds on a random
  // circuit, composed into one theorem whose ends are the first and last
  // compiled descriptions.
  RandomCircuit rc = make_random(GetParam());
  c::Rtl rtl = rc.rtl;
  auto d = rtl.add_reg("dead", rc.width, 2);
  rtl.set_reg_next(d, rtl.add_op(c::Op::Add, {d, rtl.add_const(rc.width, 1)}));
  rtl.validate();

  h::FormalDeadRemovalResult strip = h::formal_remove_dead_registers(rtl);
  std::vector<std::uint64_t> masks(strip.stripped.regs().size(), 5);
  for (std::size_t k = 0; k < masks.size(); ++k) {
    masks[k] &= strip.stripped.mask(strip.stripped.regs()[k]);
  }
  h::FormalEncodeResult xr = h::formal_xor_reencode(strip.stripped, masks);
  auto chain = h::compose_steps(strip.theorem, xr.theorem);

  h::CompiledCircuit first = h::compile(rtl);
  h::CompiledCircuit last = h::compile(xr.encoded);
  auto body = chain.concl();
  while (eda::logic::is_forall(body)) {
    body = eda::logic::dest_forall(body).second;
  }
  auto [lf, largs] = eda::kernel::strip_comb(eda::kernel::eq_lhs(body));
  auto [rf, rargs] = eda::kernel::strip_comb(eda::kernel::eq_rhs(body));
  EXPECT_TRUE(largs[0] == first.h);
  EXPECT_TRUE(rargs[0] == last.h);
  EXPECT_TRUE(rargs[1] == last.q);
  EXPECT_TRUE(c::simulation_equivalent(rtl, xr.encoded, 200, GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StepProperty,
                         ::testing::Range(1u, 21u));
