// Tests for the retiming-specific structural verifier (paper ref [8],
// Huang/Cheng/Chen): accepts pure retimings — forward, backward and
// multi-step — and rejects resynthesis, corrupted initial values and
// plain logic changes.

#include <gtest/gtest.h>

#include "bench_gen/fig2.h"
#include "hash/backward.h"
#include "hash/logic_opt.h"
#include "hash/retime_step.h"
#include "verify/retime_match.h"

namespace c = eda::circuit;
namespace h = eda::hash;
namespace v = eda::verify;
using c::Op;
using c::Rtl;
using c::SignalId;

TEST(RetimeMatch, AcceptsIdenticalCircuits) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  v::RetimeMatchResult res = v::verify_retiming(fig2.rtl, fig2.rtl);
  EXPECT_TRUE(res.equivalent) << res.reason;
  for (const auto& [node, lag] : res.lag) EXPECT_EQ(lag, 0);
}

TEST(RetimeMatch, AcceptsForwardRetiming) {
  auto fig2 = eda::bench_gen::make_fig2(8);
  Rtl retimed = h::conventional_retime(fig2.rtl, fig2.good_cut);
  v::RetimeMatchResult res = v::verify_retiming(fig2.rtl, retimed);
  EXPECT_TRUE(res.equivalent) << res.reason;
  // The incrementer moved by exactly one register position.
  int max_lag = 0;
  for (const auto& [node, lag] : res.lag) {
    max_lag = std::max(max_lag, std::abs(lag));
  }
  EXPECT_EQ(max_lag, 1);
}

TEST(RetimeMatch, AcceptsMultiStepRetiming) {
  auto deep = eda::bench_gen::make_fig2_deep(4, 3);
  h::Cut cut;
  cut.f_nodes.assign(deep.inc_nodes.begin(), deep.inc_nodes.begin() + 2);
  Rtl once = h::conventional_retime(deep.rtl, cut);
  v::RetimeMatchResult res = v::verify_retiming(deep.rtl, once);
  EXPECT_TRUE(res.equivalent) << res.reason;
}

TEST(RetimeMatch, AcceptsBackwardRetiming) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  h::RetimeMapping map =
      h::conventional_retime_mapped(fig2.rtl, fig2.good_cut);
  h::BackwardCut inv = h::inverse_of_forward_cut(map, fig2.good_cut);
  Rtl back = h::conventional_backward_retime(map.rtl, inv);
  v::RetimeMatchResult res = v::verify_retiming(map.rtl, back);
  EXPECT_TRUE(res.equivalent) << res.reason;
}

TEST(RetimeMatch, RejectsCorruptedInitialValue) {
  auto fig2 = eda::bench_gen::make_fig2(4);
  Rtl retimed = h::conventional_retime(fig2.rtl, fig2.good_cut);
  // Re-build the retimed netlist with a wrong initial value.
  Rtl bad;
  std::map<SignalId, SignalId> ctx;
  for (std::size_t k = 0; k < retimed.nodes().size(); ++k) {
    SignalId s = static_cast<SignalId>(k);
    const c::Node& n = retimed.nodes()[k];
    switch (n.op) {
      case Op::Input:
        ctx[s] = bad.add_input(n.name, n.width);
        break;
      case Op::Reg:
        ctx[s] = bad.add_reg(n.name, n.width, n.value ^ 1);  // corrupt
        break;
      case Op::Const:
        ctx[s] = n.width == 0 ? bad.add_const_flag(n.value != 0)
                              : bad.add_const(n.width, n.value);
        break;
      default: {
        std::vector<SignalId> ops;
        for (SignalId o : n.operands) ops.push_back(ctx.at(o));
        ctx[s] = bad.add_op(n.op, std::move(ops));
      }
    }
  }
  for (SignalId r : retimed.regs()) {
    bad.set_reg_next(ctx.at(r), ctx.at(retimed.node(r).next));
  }
  for (const auto& o : retimed.outputs()) {
    bad.add_output(o.name, ctx.at(o.signal));
  }

  v::RetimeMatchResult res = v::verify_retiming(fig2.rtl, bad);
  EXPECT_FALSE(res.equivalent);
  EXPECT_NE(res.reason.find("transient"), std::string::npos);
}

TEST(RetimeMatch, RejectsResynthesizedCircuit) {
  // (R+1)+1 vs R+2 are I/O-equivalent, but resynthesis changed the
  // combinational skeleton: the matcher must give up.  This is exactly
  // the combinability drawback the paper pins on specialised verifiers —
  // HASH handles the compound step, the matcher cannot.
  Rtl a;
  SignalId ia = a.add_input("i", 4);
  SignalId ra = a.add_reg("R", 4, 0);
  SignalId p1 = a.add_op(Op::Add, {ra, a.add_const(4, 1)});
  SignalId p2 = a.add_op(Op::Add, {p1, a.add_const(4, 1)});
  a.set_reg_next(ra, a.add_op(Op::Xor, {p2, ia}));
  a.add_output("y", p2);

  Rtl b;
  SignalId ib = b.add_input("i", 4);
  SignalId rb = b.add_reg("R", 4, 0);
  SignalId q2 = b.add_op(Op::Add, {rb, b.add_const(4, 2)});
  b.set_reg_next(rb, b.add_op(Op::Xor, {q2, ib}));
  b.add_output("y", q2);

  ASSERT_TRUE(c::simulation_equivalent(a, b, 200, 3));
  v::RetimeMatchResult res = v::verify_retiming(a, b);
  EXPECT_FALSE(res.equivalent);
}

TEST(RetimeMatch, RejectsDifferentLogic) {
  Rtl a;
  SignalId ia = a.add_input("i", 4);
  SignalId ra = a.add_reg("R", 4, 0);
  a.set_reg_next(ra, a.add_op(Op::Add, {ra, ia}));
  a.add_output("y", ra);
  Rtl b;
  SignalId ib = b.add_input("i", 4);
  SignalId rb = b.add_reg("R", 4, 0);
  b.set_reg_next(rb, b.add_op(Op::Xor, {rb, ib}));  // different op
  b.add_output("y", rb);
  v::RetimeMatchResult res = v::verify_retiming(a, b);
  EXPECT_FALSE(res.equivalent);
}

TEST(RetimeMatch, RejectsInterfaceMismatch) {
  auto f4 = eda::bench_gen::make_fig2(4);
  Rtl one_in;
  SignalId i = one_in.add_input("i", 4);
  SignalId r = one_in.add_reg("R", 4, 0);
  one_in.set_reg_next(r, one_in.add_op(Op::Add, {r, i}));
  one_in.add_output("y", r);
  v::RetimeMatchResult res = v::verify_retiming(f4.rtl, one_in);
  EXPECT_FALSE(res.equivalent);
  EXPECT_NE(res.reason.find("interface"), std::string::npos);
}
