// Tests for the pair/num/numeral/automata theories and the central
// RETIMING_THM proof.

#include <gtest/gtest.h>

#include "kernel/printer.h"
#include "kernel/signature.h"
#include "logic/rewrite.h"
#include "theories/automata_theory.h"
#include "theories/num_theory.h"
#include "theories/numeral.h"
#include "theories/pair_theory.h"
#include "theories/retiming_thm.h"

namespace k = eda::kernel;
namespace l = eda::logic;
namespace thy = eda::thy;
using k::Term;
using k::Thm;
using k::Type;

namespace {

struct Init {
  Init() {
    thy::init_pair();
    thy::init_num();
    thy::init_numeral();
    thy::init_automata();
  }
};
const Init kInit;

Term nv(const std::string& n) { return Term::var(n, k::num_ty()); }

}  // namespace

TEST(Pair, BuildersAndDestructors) {
  Term x = nv("x"), y = nv("y");
  Term p = thy::mk_pair(x, y);
  EXPECT_TRUE(thy::is_pair(p));
  auto [a, b] = thy::dest_pair(p);
  EXPECT_EQ(a, x);
  EXPECT_EQ(b, y);
  EXPECT_EQ(p.type(), k::prod_ty(k::num_ty(), k::num_ty()));
  EXPECT_EQ(thy::mk_fst(p).type(), k::num_ty());
}

TEST(Pair, TupleNesting) {
  Term x = nv("x"), y = nv("y"), z = nv("z");
  Term t = thy::mk_tuple({x, y, z});
  auto [a, rest] = thy::dest_pair(t);
  EXPECT_EQ(a, x);
  auto [b, c] = thy::dest_pair(rest);
  EXPECT_EQ(b, y);
  EXPECT_EQ(c, z);
  EXPECT_EQ(thy::mk_tuple({x}), x);
}

TEST(Pair, ProjectionRewrites) {
  Term x = nv("x"), y = nv("y");
  Thm th = l::rewr_conv(thy::fst_pair())(thy::mk_fst(thy::mk_pair(x, y)));
  EXPECT_EQ(k::eq_rhs(th.concl()), x);
  Thm th2 = l::rewr_conv(thy::snd_pair())(thy::mk_snd(thy::mk_pair(x, y)));
  EXPECT_EQ(k::eq_rhs(th2.concl()), y);
  EXPECT_TRUE(th.is_pure());
}

TEST(Num, InductionDerivesAddZeroRight) {
  Thm th = thy::add_zero_right();
  EXPECT_TRUE(th.hyps().empty());
  EXPECT_TRUE(th.is_pure());
  // |- !n. n + _0 = n : spec at SUC _0 gives SUC _0 + _0 = SUC _0.
  Term one = thy::mk_suc(thy::zero_tm());
  Thm at_one = l::spec(one, th);
  EXPECT_EQ(at_one.concl(),
            k::mk_eq(thy::mk_arith("+", one, thy::zero_tm()), one));
}

TEST(Num, PrimRecAxioms) {
  Thm pr0 = thy::prim_rec_0();
  EXPECT_TRUE(l::is_forall(pr0.concl()));
  Thm prs = thy::prim_rec_suc();
  EXPECT_TRUE(l::is_forall(prs.concl()));
}

TEST(Numeral, RoundTrip) {
  for (std::uint64_t n : {0ULL, 1ULL, 2ULL, 5ULL, 255ULL, 1000000007ULL}) {
    Term t = thy::mk_numeral(n);
    auto back = thy::dest_numeral(t);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, n);
  }
}

TEST(Numeral, PrinterShowsDecimal) {
  EXPECT_EQ(eda::kernel::pretty(thy::mk_numeral(42)), "42");
}

TEST(Numeral, GroundEval) {
  Term t = thy::mk_arith("+", thy::mk_numeral(2), thy::mk_numeral(3));
  auto v = thy::eval_ground_num(t);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 5u);
  Term m = thy::mk_arith(
      "MOD", thy::mk_arith("+", thy::mk_numeral(7), thy::mk_numeral(1)),
      thy::mk_arith("EXP", thy::mk_numeral(2), thy::mk_numeral(3)));
  EXPECT_EQ(*thy::eval_ground_num(m), 0u);
  // Non-ground fails.
  EXPECT_FALSE(thy::eval_ground_num(nv("x")).has_value());
}

TEST(Numeral, ComputeOracleTagged) {
  Term t = thy::mk_arith("*", thy::mk_numeral(6), thy::mk_numeral(7));
  Thm th = thy::num_compute_conv(t);
  EXPECT_EQ(k::eq_rhs(th.concl()), thy::mk_numeral(42));
  EXPECT_FALSE(th.is_pure());
  EXPECT_EQ(th.oracles().count(thy::kNumComputeTag), 1u);
}

TEST(Numeral, ComputePredicates) {
  Term t = k::mk_eq(thy::mk_numeral(4), thy::mk_numeral(4));
  Thm th = thy::num_compute_conv(t);
  EXPECT_EQ(k::eq_rhs(th.concl()), l::truth_tm());
  Term t2 = thy::mk_arith("<", thy::mk_numeral(4), thy::mk_numeral(3));
  Thm th2 = thy::num_compute_conv(t2);
  EXPECT_EQ(k::eq_rhs(th2.concl()), l::falsity_tm());
}

namespace {

// A tiny concrete transition function h : (num # num) -> (num # num),
// h (i, s) = (s, i):  output the register, store the input.
Term tiny_h() {
  Type nn = k::prod_ty(k::num_ty(), k::num_ty());
  Term p = Term::var("p", nn);
  return Term::abs(p, thy::mk_pair(thy::mk_snd(p), thy::mk_fst(p)));
}

}  // namespace

TEST(Automata, StateTheorems) {
  Thm s0 = thy::state_0();
  EXPECT_TRUE(s0.hyps().empty());
  EXPECT_TRUE(s0.is_pure());
  Thm ss = thy::state_suc();
  EXPECT_TRUE(ss.is_pure());
  Thm ae = thy::automaton_expand();
  EXPECT_TRUE(ae.is_pure());
}

TEST(Automata, State0Instantiates) {
  Term h = tiny_h();
  Term q = thy::mk_numeral(7);
  Term i = Term::var("i", k::fun_ty(k::num_ty(), k::num_ty()));
  Thm inst = l::pspec_list({h, q, i}, thy::state_0());
  EXPECT_EQ(k::eq_rhs(inst.concl()), q);
  EXPECT_EQ(k::eq_lhs(inst.concl()),
            thy::mk_state(h, q, i, thy::zero_tm()));
}

TEST(Automata, MkAutomatonTypeChecks) {
  Term h = tiny_h();
  Term q = nv("q");
  Term i = Term::var("i", k::fun_ty(k::num_ty(), k::num_ty()));
  Term t = nv("t");
  Term a = thy::mk_automaton(h, q, i, t);
  EXPECT_EQ(a.type(), k::num_ty());
  // A non-pair-shaped h is rejected.
  Term bad_h = Term::var("h", k::fun_ty(k::num_ty(), k::num_ty()));
  EXPECT_THROW(thy::mk_automaton(bad_h, q, i, t), k::KernelError);
}

TEST(Automata, MismatchedStateTypesRejected) {
  // h : (num # num) -> (num # (num # num)) — the paper's false-cut failure
  // mode: left and right state types differ, so no automaton term exists.
  Type nn = k::num_ty();
  Type bad = k::fun_ty(k::prod_ty(nn, nn),
                       k::prod_ty(nn, k::prod_ty(nn, nn)));
  Term h = Term::var("h", bad);
  EXPECT_THROW(thy::mk_automaton(h, nv("q"),
                                 Term::var("i", k::fun_ty(nn, nn)), nv("t")),
               k::KernelError);
}

TEST(Retiming, TheoremProvedAndPure) {
  Thm th = thy::retiming_thm();
  EXPECT_TRUE(th.hyps().empty());
  // The central claim of the reproduction: the universal retiming theorem
  // is derived purely from the rules and the documented axiom base — no
  // compute oracle involved.
  EXPECT_TRUE(th.is_pure());
  // Shape: !f g q i t. AUTOMATON h1 q i t = AUTOMATON h2 (f q) i t.
  auto [vars, body] = l::strip_forall(th.concl());
  ASSERT_EQ(vars.size(), 5u);
  EXPECT_TRUE(k::is_eq(body));
}

TEST(Retiming, CachedOnSecondCall) {
  Thm a = thy::retiming_thm();
  Thm b = thy::retiming_thm();
  EXPECT_EQ(a.concl(), b.concl());
}

TEST(Retiming, H1H2TypeDiscipline) {
  // f : num -> num#num (duplicate register), g consumes (input # num#num).
  Type n = k::num_ty();
  Term f = Term::var("f", k::fun_ty(n, k::prod_ty(n, n)));
  Term g = Term::var(
      "g", k::fun_ty(k::prod_ty(n, k::prod_ty(n, n)), k::prod_ty(n, n)));
  Term h1 = thy::mk_h1(f, g);
  Term h2 = thy::mk_h2(f, g);
  // h1 : (num # num) -> (num # num);  h2 : (num # (num#num)) -> same state.
  EXPECT_EQ(k::dom_ty(h1.type()), k::prod_ty(n, n));
  EXPECT_EQ(k::dom_ty(h2.type()), k::prod_ty(n, k::prod_ty(n, n)));
  // Wrong pairing is rejected.
  Term g_bad = Term::var("g", k::fun_ty(k::prod_ty(n, n), k::prod_ty(n, n)));
  EXPECT_THROW(thy::mk_h1(f, g_bad), k::KernelError);
}

TEST(Retiming, InstantiatesByMatching) {
  // Instantiate the universal theorem with concrete f and g, as the
  // synthesis procedure does (paper, fig. 3).
  Type n = k::num_ty();
  Term f = Term::var("f0", k::fun_ty(n, n));
  Term g = Term::var("g0", k::fun_ty(k::prod_ty(n, n), k::prod_ty(n, n)));
  Term q = Term::var("q0", n);
  Term i = Term::var("i0", k::fun_ty(k::num_ty(), n));
  Term t = nv("t0");
  Thm inst = l::pspec_list({f, g, q, i, t}, thy::retiming_thm());
  EXPECT_TRUE(k::is_eq(inst.concl()));
  EXPECT_TRUE(inst.is_pure());
  // Left side is AUTOMATON h1 q i t for h1 built from f, g.
  Term lhs = k::eq_lhs(inst.concl());
  auto [head, args] = k::strip_comb(lhs);
  EXPECT_EQ(head.name(), "AUTOMATON");
  ASSERT_EQ(args.size(), 4u);
  EXPECT_EQ(args[0], thy::mk_h1(f, g));
  EXPECT_EQ(args[1], q);
}
