// Tests for the multi-circuit verification service (src/service/): the
// shared goal cache, manifest/sweep front ends, JSON output, failure
// isolation, and service-vs-serial result equivalence.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_gen/fig2.h"
#include "circuit/bitblast.h"
#include "hash/retime_step.h"
#include "io/blif.h"
#include "kernel/goal_cache.h"
#include "kernel/terms.h"
#include "service/manifest.h"
#include "service/sweep.h"
#include "service/verify_service.h"
#include "testlib/gen.h"
#include "verify/parallel_verify.h"

namespace svc = eda::service;
namespace k = eda::kernel;

namespace {

svc::JobSpec job(const std::string& circuit, svc::Method method,
                 double timeout = 30.0) {
  svc::JobSpec spec;
  spec.circuit = circuit;
  spec.method = method;
  spec.timeout_sec = timeout;
  return spec;
}

/// (jobs, share) options — the old flat positional init, regrouped.
svc::ServiceOptions sopts(unsigned jobs, bool share = true) {
  svc::ServiceOptions opts;
  opts.jobs = jobs;
  opts.cache.share = share;
  return opts;
}

/// Write a netlist to a BLIF file under the test temp dir.
std::string write_blif_file(const eda::circuit::GateNetlist& net,
                            const std::string& stem) {
  std::string path = ::testing::TempDir() + "/" + stem + ".blif";
  std::ofstream(path) << eda::io::write_blif(net, stem);
  return path;
}

}  // namespace

// --- Kernel goal cache -----------------------------------------------------

TEST(GoalCache, DuplicateGoalsAreOneProofManyHits) {
  k::GoalCache<int> cache;
  k::Term goal = k::mk_eq(k::Term::var("x", k::bool_ty()),
                          k::Term::var("x", k::bool_ty()));
  int proofs = 0;
  for (int i = 0; i < 5; ++i) {
    bool hit = false;
    int v = cache.get_or_prove(goal, [&] { return ++proofs; }, &hit);
    EXPECT_EQ(v, 1);
    EXPECT_EQ(hit, i > 0);
  }
  EXPECT_EQ(proofs, 1);
  k::GoalCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 4u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_DOUBLE_EQ(st.hit_rate(), 0.8);
}

TEST(GoalCache, RejectedValuesStayUncachedAndRetry) {
  // Values failing the should_cache predicate (e.g. engine runs that blew
  // their resource budget) are returned but never published: a later
  // submission of the goal retries instead of inheriting the failure.
  k::GoalCache<int> cache;
  k::Term goal = k::Term::var("g", k::bool_ty());
  auto accept_nonneg = [](int v) { return v >= 0; };
  bool hit = true;
  int v = cache.get_or_prove_if(goal, [] { return -1; }, accept_nonneg,
                                &hit);
  EXPECT_EQ(v, -1);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The retry computes afresh and, succeeding, publishes.
  v = cache.get_or_prove_if(goal, [] { return 5; }, accept_nonneg, &hit);
  EXPECT_EQ(v, 5);
  EXPECT_FALSE(hit);
  v = cache.get_or_prove_if(goal, [] { return 9; }, accept_nonneg, &hit);
  EXPECT_EQ(v, 5);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(GoalCache, AlphaEquivalentGoalsShareOneEntry) {
  // \x. x and \y. y are different interned nodes but alpha-equal: the
  // cache must treat them as one goal.
  k::GoalCache<int> cache;
  k::Term x = k::Term::var("x", k::bool_ty());
  k::Term y = k::Term::var("y", k::bool_ty());
  k::Term idx = k::Term::abs(x, x);
  k::Term idy = k::Term::abs(y, y);
  ASSERT_FALSE(idx.identical(idy));
  ASSERT_TRUE(idx == idy);
  cache.get_or_prove(idx, [] { return 7; });
  bool hit = false;
  EXPECT_EQ(cache.get_or_prove(idy, [] { return 8; }, &hit), 7);
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.stats().entries, 1u);
}

// --- Method / manifest / sweep front ends ----------------------------------

TEST(ServiceFrontEnd, MethodNamesRoundTrip) {
  for (svc::Method m :
       {svc::Method::Hash, svc::Method::Match, svc::Method::Eijk,
        svc::Method::EijkPlus, svc::Method::Smv, svc::Method::Sis}) {
    std::optional<svc::Method> back = svc::parse_method(svc::method_name(m));
    ASSERT_TRUE(back.has_value()) << svc::method_name(m);
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(svc::parse_method("bmc").has_value());
}

TEST(ServiceFrontEnd, ManifestParsing) {
  std::string text =
      "# full-line comment\n"
      "\n"
      "fig2:4    eijk\n"
      "mult:8    hash   timeout=2.5 name=m8   # trailing comment\n"
      "pipe:4:2  match  seed=9\n";
  std::vector<svc::JobSpec> specs = svc::parse_manifest_string(text);
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].circuit, "fig2:4");
  EXPECT_EQ(specs[0].method, svc::Method::Eijk);
  EXPECT_EQ(specs[1].name, "m8");
  EXPECT_DOUBLE_EQ(specs[1].timeout_sec, 2.5);
  EXPECT_EQ(specs[2].seed, 9u);
  EXPECT_EQ(specs[2].method, svc::Method::Match);

  EXPECT_THROW(svc::parse_manifest_string("fig2:4\n"), svc::ServiceError);
  EXPECT_THROW(svc::parse_manifest_string("fig2:4 warp\n"),
               svc::ServiceError);
  EXPECT_THROW(svc::parse_manifest_string("fig2:4 eijk timeout\n"),
               svc::ServiceError);
  // Strict value parsing: trailing garbage and wrapped seeds are errors,
  // not silent near-misses.
  EXPECT_THROW(svc::parse_manifest_string("fig2:4 eijk timeout=1O\n"),
               svc::ServiceError);
  EXPECT_THROW(svc::parse_manifest_string("fig2:4 eijk seed=-1\n"),
               svc::ServiceError);
  EXPECT_THROW(svc::parse_manifest_string("fig2:4 eijk seed=5000000000\n"),
               svc::ServiceError);
}

TEST(ServiceFrontEnd, HashInsideTokenIsNotAComment) {
  // Sweep-generated names contain '#'; only a '#' opening a token starts
  // a comment.
  std::vector<svc::JobSpec> specs = svc::parse_manifest_string(
      "fig2:4 hash name=fig2:4/hash#0 timeout=30  # real comment\n");
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].name, "fig2:4/hash#0");
  EXPECT_DOUBLE_EQ(specs[0].timeout_sec, 30.0);
}

TEST(ServiceFrontEnd, SweepGridExpansion) {
  svc::SweepGrid grid = svc::parse_sweep_spec(
      "widths=2,4;depths=1,2;methods=hash,match;copies=2;timeout=3");
  ASSERT_EQ(grid.widths.size(), 2u);
  ASSERT_EQ(grid.depths.size(), 2u);
  ASSERT_EQ(grid.methods.size(), 2u);
  EXPECT_EQ(grid.copies, 2);
  std::vector<svc::JobSpec> specs = svc::make_sweep(grid);
  // width x depth x method x copies.
  ASSERT_EQ(specs.size(), 16u);
  EXPECT_EQ(specs[0].circuit, "fig2:2");
  EXPECT_EQ(specs[0].name, "fig2:2/hash#0");
  EXPECT_DOUBLE_EQ(specs[0].timeout_sec, 3.0);
  // Depth 2 rows use the deep-pipeline circuit.
  EXPECT_EQ(specs[4].circuit, "fig2deep:2:2");
  // Duplicates are adjacent copies of one obligation.
  EXPECT_EQ(specs[1].circuit, specs[0].circuit);
  EXPECT_EQ(specs[1].method, specs[0].method);

  EXPECT_THROW(svc::parse_sweep_spec("widths=0"), svc::ServiceError);
  EXPECT_THROW(svc::parse_sweep_spec("gauge=3"), svc::ServiceError);
}

// --- The service itself ----------------------------------------------------

TEST(VerifyService, SecondIdenticalObligationIsACacheHit) {
  svc::VerifyService service(sopts(1));
  // Serial submission: deterministic hit attribution.
  svc::JobResult first = service.run_one(job("fig2:4", svc::Method::Eijk));
  svc::JobResult again = service.run_one(job("fig2:4", svc::Method::Eijk));
  svc::JobResult other = service.run_one(job("fig2:4", svc::Method::Match));
  ASSERT_TRUE(first.ok) << first.error;
  ASSERT_TRUE(again.ok) << again.error;
  ASSERT_TRUE(other.ok) << other.error;
  EXPECT_FALSE(first.theorem_cache_hit);
  EXPECT_FALSE(first.result_cache_hit);
  // Identical job: both the synthesis theorem and the engine verdict are
  // served from the shared cache.
  EXPECT_TRUE(again.theorem_cache_hit);
  EXPECT_TRUE(again.result_cache_hit);
  EXPECT_TRUE(again.equivalent);
  // Different method over the same circuit still shares the theorem.
  EXPECT_TRUE(other.theorem_cache_hit);
  svc::ServiceStats st = service.stats();
  EXPECT_EQ(st.jobs, 3u);
  EXPECT_EQ(st.theorems.hits, 2u);
  EXPECT_EQ(st.theorems.misses, 1u);
  EXPECT_EQ(st.results.hits, 1u);
  EXPECT_EQ(st.results.misses, 1u);
}

TEST(VerifyService, SharedCacheOffProvesEveryObligation) {
  svc::VerifyService service(sopts(1, false));
  service.run_one(job("fig2:3", svc::Method::Hash));
  svc::JobResult again = service.run_one(job("fig2:3", svc::Method::Hash));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_FALSE(again.theorem_cache_hit);
  EXPECT_EQ(service.stats().theorems.hits, 0u);
  EXPECT_EQ(service.stats().theorems.misses, 0u);
}

TEST(VerifyService, ResultsKeepSubmitOrder) {
  svc::VerifyService service(sopts(4));
  std::vector<svc::JobSpec> specs;
  for (int n = 2; n <= 6; ++n) {
    svc::JobSpec spec = job("fig2:" + std::to_string(n), svc::Method::Hash);
    spec.name = "j" + std::to_string(n);
    specs.push_back(spec);
  }
  std::vector<svc::JobResult> results = service.run_batch(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].name, specs[i].name);
    EXPECT_TRUE(results[i].ok) << results[i].error;
    EXPECT_TRUE(results[i].equivalent);
  }
}

TEST(VerifyService, FailureIsolation) {
  svc::VerifyService service(sopts(2));
  std::vector<svc::JobSpec> specs{
      job("fig2:4", svc::Method::Eijk),
      job("warp:9", svc::Method::Eijk),            // unknown generator
      job("blif:/nonexistent,a", svc::Method::Smv),  // unreadable netlist
      job("blif:x,y", svc::Method::Hash),          // method needs RTL
      job("fig2:5", svc::Method::Match),
      job("fig2:4", svc::Method::Eijk, -1.0),      // invalid timeout
  };
  std::vector<svc::JobResult> results = service.run_batch(specs);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_TRUE(results[0].ok) << results[0].error;
  EXPECT_TRUE(results[0].equivalent);
  EXPECT_FALSE(results[1].ok);
  EXPECT_NE(results[1].error.find("unknown circuit spec"),
            std::string::npos);
  EXPECT_FALSE(results[2].ok);
  EXPECT_FALSE(results[3].ok);
  EXPECT_NE(results[3].error.find("needs an RTL"), std::string::npos);
  // The good jobs around the failures are untouched.
  EXPECT_TRUE(results[4].ok) << results[4].error;
  EXPECT_TRUE(results[4].equivalent);
  EXPECT_FALSE(results[5].ok);
  EXPECT_NE(results[5].error.find("timeout"), std::string::npos);
  EXPECT_EQ(service.stats().failed, 4u);
}

TEST(VerifyService, BlifPairJobsVerifyFiles) {
  // Round-trip a retimed pair through BLIF files and check them as a
  // netlist-vs-netlist service job.
  eda::bench_gen::Fig2 fig2 = eda::bench_gen::make_fig2(3);
  eda::hash::FormalRetimeResult res =
      eda::hash::formal_retime(fig2.rtl, fig2.good_cut);
  std::string dir = ::testing::TempDir();
  std::string pa = dir + "/svc_a.blif";
  std::string pb = dir + "/svc_b.blif";
  {
    std::ofstream(pa) << eda::io::write_blif(
        eda::circuit::bit_blast(fig2.rtl), "a");
    std::ofstream(pb) << eda::io::write_blif(
        eda::circuit::bit_blast(res.retimed), "b");
  }
  svc::VerifyService service(sopts(1));
  svc::JobResult r =
      service.run_one(job("blif:" + pa + "," + pb, svc::Method::Eijk));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.equivalent);
  EXPECT_GT(r.ff, 0);
  EXPECT_FALSE(r.result_cache_hit);
  // The same pair again: the verdict is keyed on the structural netlist
  // hashes, so the engine does not run twice.
  svc::JobResult again =
      service.run_one(job("blif:" + pa + "," + pb, svc::Method::Eijk));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.result_cache_hit);
  EXPECT_TRUE(again.equivalent);
  EXPECT_EQ(service.stats().results.hits, 1u);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(VerifyService, WarmStartAcrossServiceInstances) {
  // The restart scenario: service 1 proves a mixed batch and persists its
  // caches; service 2 (fresh caches, as after a process restart) loads the
  // file and re-runs the identical batch with ZERO theorem misses — every
  // obligation is served by a theorem proved "in a previous life".
  std::string path = ::testing::TempDir() + "/svc_warm.bin";
  std::vector<svc::JobSpec> specs{
      job("fig2:3", svc::Method::Hash),
      job("fig2:4", svc::Method::Eijk),
      job("mult:3", svc::Method::Hash),
      job("fig2:4", svc::Method::Match),
  };
  {
    svc::VerifyService cold(sopts(2));
    std::vector<svc::JobResult> results = cold.run_batch(specs);
    for (const svc::JobResult& r : results) ASSERT_TRUE(r.ok) << r.error;
    cold.save_cache(path);
  }
  svc::VerifyService warm(sopts(2));
  svc::CacheLoadResult lr = warm.load_cache(path);
  ASSERT_TRUE(lr.loaded) << lr.note;
  EXPECT_EQ(lr.theorems, 3u);  // fig2:3, fig2:4, mult:3
  EXPECT_GE(lr.verdicts, 1u);  // the completed eijk verdict
  std::vector<svc::JobResult> results = warm.run_batch(specs);
  for (const svc::JobResult& r : results) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.theorem_cache_hit) << r.name;
  }
  svc::ServiceStats st = warm.stats();
  EXPECT_EQ(st.theorems.misses, 0u);
  EXPECT_EQ(st.theorems.hits, specs.size());
  EXPECT_EQ(st.results.misses, 0u);
  std::remove(path.c_str());
}

TEST(VerifyService, WarmStartKeepsVerdictProvenanceHonest) {
  // Loaded entries must not inflate the statistics: a freshly loaded
  // service has zero hits/misses until traffic actually arrives.
  std::string path = ::testing::TempDir() + "/svc_honest.bin";
  {
    svc::VerifyService cold(sopts(1));
    cold.run_one(job("fig2:3", svc::Method::Hash));
    cold.save_cache(path);
  }
  svc::VerifyService warm(sopts(1));
  svc::CacheLoadResult lr = warm.load_cache(path);
  ASSERT_TRUE(lr.loaded) << lr.note;
  svc::ServiceStats st = warm.stats();
  EXPECT_EQ(st.theorems.hits, 0u);
  EXPECT_EQ(st.theorems.misses, 0u);
  EXPECT_EQ(st.theorems.entries, 1u);
  std::remove(path.c_str());
}

TEST(VerifyService, BatchMatchesSerialVerdicts) {
  // The parallel, cache-sharing service must produce exactly the verdicts
  // of the direct serial pipeline (formal_retime + run_check).
  std::vector<svc::JobSpec> specs;
  for (int n = 3; n <= 5; ++n) {
    specs.push_back(job("fig2:" + std::to_string(n), svc::Method::Eijk));
    specs.push_back(job("fig2:" + std::to_string(n), svc::Method::Sis));
  }
  svc::VerifyService service(sopts(4));
  std::vector<svc::JobResult> batched = service.run_batch(specs);

  for (std::size_t i = 0; i < specs.size(); ++i) {
    int n = 3 + static_cast<int>(i) / 2;
    eda::bench_gen::Fig2 fig2 = eda::bench_gen::make_fig2(n);
    eda::hash::FormalRetimeResult res =
        eda::hash::formal_retime(fig2.rtl, fig2.good_cut);
    eda::circuit::GateNetlist ga = eda::circuit::bit_blast(fig2.rtl);
    eda::circuit::GateNetlist gb = eda::circuit::bit_blast(res.retimed);
    eda::verify::VerifyOptions opts;
    opts.timeout_sec = 30.0;
    eda::verify::Engine eng = (i % 2 == 0) ? eda::verify::Engine::Eijk
                                           : eda::verify::Engine::SisFsm;
    eda::verify::VerifyResult serial =
        eda::verify::run_check({&ga, &gb, eng, opts});
    ASSERT_TRUE(batched[i].ok) << batched[i].error;
    EXPECT_EQ(batched[i].completed, serial.completed) << "job " << i;
    EXPECT_EQ(batched[i].equivalent, serial.equivalent) << "job " << i;
    EXPECT_EQ(batched[i].ff, ga.ff_count());
  }
}

TEST(VerifyService, StreamingSubmitDrain) {
  svc::VerifyService service(sopts(2));
  service.submit(job("fig2:3", svc::Method::Hash));
  service.submit(job("fig2:4", svc::Method::Hash));
  std::vector<svc::JobResult> first = service.drain();
  ASSERT_EQ(first.size(), 2u);
  // The stream restarts empty; stats accumulate across drains.
  service.submit(job("fig2:3", svc::Method::Hash));
  std::vector<svc::JobResult> second = service.drain();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_TRUE(second[0].theorem_cache_hit);
  EXPECT_EQ(service.stats().jobs, 3u);
  EXPECT_TRUE(service.drain().empty());
}

// --- Incremental (cone-partitioned) blif-pair jobs -------------------------

namespace {

svc::ServiceOptions inc_opts(unsigned jobs = 1, bool share = true) {
  svc::ServiceOptions opts;
  opts.jobs = jobs;
  opts.cache.share = share;
  opts.incremental = true;
  return opts;
}

}  // namespace

TEST(IncrementalService, ReprovesOnlyTheChangedConeAcrossRestart) {
  using eda::testlib::ConeEdit;
  const int kCones = 5;
  eda::circuit::GateNetlist a =
      eda::testlib::random_netlist_multi(81, 5, 60, 3, kCones);
  eda::circuit::GateNetlist b = a;
  for (int i = 0; i < kCones; ++i) {
    b = eda::testlib::mutate_cone(b, static_cast<std::size_t>(i),
                                  ConeEdit::EquivalentOpaque);
  }
  std::string pa = write_blif_file(a, "inc_a");
  std::string pb = write_blif_file(b, "inc_b");
  std::string pe = write_blif_file(
      eda::testlib::mutate_cone(b, 3, ConeEdit::Equivalent), "inc_e");
  std::string cache = ::testing::TempDir() + "/inc_cache.bin";

  {
    svc::VerifyService cold(inc_opts());
    svc::JobResult r =
        cold.run_one(job("blif:" + pa + "," + pb, svc::Method::Eijk));
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.equivalent);
    EXPECT_EQ(r.cones, static_cast<std::size_t>(kCones));
    EXPECT_EQ(r.cones_reproved, static_cast<std::size_t>(kCones));
    EXPECT_EQ(r.cone_hits, 0u);
    EXPECT_FALSE(r.result_cache_hit);
    cold.save_cache(cache);
  }
  // Fresh service instance = process restart; only the cache file carries
  // over.  The replay of the 1-cone edit must re-prove exactly that cone.
  svc::VerifyService warm(inc_opts());
  ASSERT_TRUE(warm.load_cache(cache).loaded);
  svc::JobResult r =
      warm.run_one(job("blif:" + pa + "," + pe, svc::Method::Eijk));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.equivalent);
  EXPECT_EQ(r.cones, static_cast<std::size_t>(kCones));
  EXPECT_EQ(r.cones_reproved, 1u);
  EXPECT_EQ(r.cone_hits, static_cast<std::size_t>(kCones - 1));
  // And an untouched resubmission is a full cache hit.
  svc::JobResult same =
      warm.run_one(job("blif:" + pa + "," + pb, svc::Method::Eijk));
  EXPECT_TRUE(same.result_cache_hit);
  EXPECT_EQ(same.cones_reproved, 0u);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
  std::remove(pe.c_str());
  std::remove(cache.c_str());
}

TEST(IncrementalService, NonequivNamesTheDifferingOutput) {
  using eda::testlib::ConeEdit;
  eda::circuit::GateNetlist a =
      eda::testlib::random_netlist_multi(83, 4, 40, 2, 4);
  eda::circuit::GateNetlist b =
      eda::testlib::mutate_cone(a, 2, ConeEdit::Different);
  std::string pa = write_blif_file(a, "neq_a");
  std::string pb = write_blif_file(b, "neq_b");
  svc::VerifyService service(inc_opts());
  svc::JobResult r =
      service.run_one(job("blif:" + pa + "," + pb, svc::Method::Eijk));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.completed);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.counterexample, "out2");
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(IncrementalService, StitchedVerdictsAgreeWithWholeNetlistPath) {
  // The acceptance property: over a seeded corpus of edited pairs, the
  // cone-partitioned path and the whole-netlist path reach the same
  // verdict.
  using eda::testlib::ConeEdit;
  for (std::uint64_t seed : {101u, 102u, 103u}) {
    eda::circuit::GateNetlist a =
        eda::testlib::random_netlist_multi(seed, 4, 50, 3, 3);
    for (ConeEdit edit : {ConeEdit::Equivalent, ConeEdit::EquivalentOpaque,
                          ConeEdit::Different}) {
      eda::circuit::GateNetlist b = eda::testlib::mutate_cone(
          a, static_cast<std::size_t>(seed % 3), edit);
      std::string pa = write_blif_file(a, "agree_a");
      std::string pb = write_blif_file(b, "agree_b");
      svc::JobSpec spec = job("blif:" + pa + "," + pb, svc::Method::Eijk);
      svc::VerifyService inc(inc_opts());
      svc::VerifyService whole(sopts(1));
      svc::JobResult ri = inc.run_one(spec);
      svc::JobResult rw = whole.run_one(spec);
      ASSERT_TRUE(ri.ok) << ri.error;
      ASSERT_TRUE(rw.ok) << rw.error;
      EXPECT_EQ(ri.completed, rw.completed)
          << "seed " << seed << " edit " << static_cast<int>(edit);
      EXPECT_EQ(ri.equivalent, rw.equivalent)
          << "seed " << seed << " edit " << static_cast<int>(edit);
      std::remove(pa.c_str());
      std::remove(pb.c_str());
    }
  }
}

TEST(IncrementalService, FallsBackOnOutputCountMismatch) {
  // No positional cone pairing exists: the job takes the whole-netlist
  // path, which diagnoses the interface mismatch as engine failure
  // (incomplete), not a crash — and reports no cone accounting.
  eda::circuit::GateNetlist a =
      eda::testlib::random_netlist_multi(91, 4, 30, 2, 3);
  eda::circuit::GateNetlist b =
      eda::testlib::random_netlist_multi(91, 4, 30, 2, 2);
  std::string pa = write_blif_file(a, "mis_a");
  std::string pb = write_blif_file(b, "mis_b");
  svc::VerifyService service(inc_opts());
  svc::JobResult r =
      service.run_one(job("blif:" + pa + "," + pb, svc::Method::Eijk));
  EXPECT_EQ(r.cones, 0u);
  EXPECT_FALSE(r.ok && r.completed && r.equivalent);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

TEST(IncrementalService, NoSharedCacheStillStitchesWithoutCaching) {
  using eda::testlib::ConeEdit;
  eda::circuit::GateNetlist a =
      eda::testlib::random_netlist_multi(97, 4, 40, 2, 3);
  eda::circuit::GateNetlist b =
      eda::testlib::mutate_cone(a, 0, ConeEdit::EquivalentOpaque);
  std::string pa = write_blif_file(a, "nc_a");
  std::string pb = write_blif_file(b, "nc_b");
  svc::VerifyService service(inc_opts(1, /*share=*/false));
  svc::JobSpec spec = job("blif:" + pa + "," + pb, svc::Method::Eijk);
  svc::JobResult r1 = service.run_one(spec);
  svc::JobResult r2 = service.run_one(spec);
  for (const svc::JobResult& r : {r1, r2}) {
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.equivalent);
    EXPECT_EQ(r.cones, 3u);
    EXPECT_EQ(r.cones_reproved, 3u);  // nothing is ever served from cache
    EXPECT_EQ(r.cone_hits, 0u);
  }
  EXPECT_EQ(service.stats().results.hits, 0u);
  std::remove(pa.c_str());
  std::remove(pb.c_str());
}

// --- JSON output -----------------------------------------------------------

TEST(ServiceJson, ShapeAndEscaping) {
  svc::VerifyService service(sopts(1));
  std::vector<svc::JobResult> results;
  results.push_back(service.run_one(job("fig2:4", svc::Method::Eijk)));
  results.push_back(service.run_one(job("warp:1", svc::Method::Eijk)));
  std::string json =
      svc::results_to_json(results, service.stats(), /*threads=*/1);

  for (const char* key :
       {"\"service\": \"eda_service\"", "\"jobs\": 2", "\"failed\": 1",
        "\"threads\": 1", "\"wall_sec\"", "\"cpu_sec\"",
        "\"theorem_cache\"", "\"result_cache\"", "\"hit_rate\"",
        "\"results\"", "\"method\": \"eijk\"", "\"ok\": true",
        "\"ok\": false", "\"equivalent\": true", "\"theorem_cache_hit\"",
        "\"result_cache_hit\"", "\"synth_sec\"", "\"verify_sec\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // The error message carries the quoted circuit spec; it must arrive
  // escaped, leaving the JSON balanced.
  EXPECT_NE(json.find("unknown circuit spec"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}
