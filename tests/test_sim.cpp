// Bit-parallel simulation pre-filter (sim/bitsim.h) and the batched BDD
// kernel (verify/batch_bdd.h).
//
// The sim tests pin the dual-rail lane semantics against the scalar
// GateSimulator: wherever a lane claims a KNOWN output bit, that bit must
// equal the scalar simulation of the same stimulus — from the netlist's
// declared flop init AND from an adversarial one, because the X-pessimistic
// init only marks a bit known when it is independent of the initial state.
// That independence is exactly what makes sim refutation sound against
// every engine's init semantics.
//
// The batch tests pin the shared-pool kernel to the per-job engines:
// verdict-identical on every engine and on every edit class, so the
// service can route obligations to either path freely.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/bitblast.h"
#include "sim/bitsim.h"
#include "testlib/gen.h"
#include "verify/batch_bdd.h"
#include "verify/cone.h"
#include "verify/parallel_verify.h"

namespace c = eda::circuit;
namespace sim = eda::sim;
namespace v = eda::verify;
namespace tl = eda::testlib;

namespace {

// Scalar replay of word stimulus: lane `lane` of each stimulus word, from
// flop init `init` (empty = the netlist's declared init).
std::vector<std::vector<bool>> scalar_run(
    const c::GateNetlist& net,
    const std::vector<std::vector<std::uint64_t>>& words, int lane,
    const std::vector<bool>& init) {
  c::GateSimulator gs(net);
  if (!init.empty()) gs.set_dff_state(init);
  std::vector<std::vector<bool>> outs;
  for (const std::vector<std::uint64_t>& w : words) {
    std::vector<bool> bits(w.size());
    for (std::size_t k = 0; k < w.size(); ++k) {
      bits[k] = ((w[k] >> lane) & 1) != 0;
    }
    outs.push_back(gs.step(bits));
  }
  return outs;
}

}  // namespace

// ~1000 seeded co-sim cases: 125 random machines x 8 audited lanes.
TEST(BitSim, LaneSemanticsMatchScalarCoSim) {
  const std::uint64_t base = tl::stimulus_seed();
  const int kNets = 125, kLanes = 8, kFrames = 4;
  for (int n = 0; n < kNets; ++n) {
    std::uint64_t s = base + static_cast<std::uint64_t>(n);
    std::mt19937_64 rng(s ^ 0xc0517);
    const int inputs = 3 + static_cast<int>(rng() % 5);
    const int gates = 30 + static_cast<int>(rng() % 60);
    const int ffs = static_cast<int>(rng() % 5);  // 0 = combinational
    c::GateNetlist net = tl::random_netlist(s, inputs, gates, ffs);

    sim::BitSimulator bs(net);
    std::vector<std::vector<std::uint64_t>> words(
        kFrames, std::vector<std::uint64_t>(net.inputs().size()));
    for (auto& frame : words) {
      for (std::uint64_t& w : frame) w = rng();
    }
    std::vector<sim::Packet> packets;
    for (const auto& frame : words) {
      bs.step(frame);
      packets.push_back(bs.output(0));
    }
    if (ffs == 0) {
      // No state, no X: every lane of a combinational net is known.
      for (const sim::Packet& p : packets) {
        EXPECT_EQ(p.known, ~0ull) << "net " << n;
      }
    }
    // Adversarial init: complement of the declared one.
    std::vector<bool> flip;
    for (c::LitId d : net.dffs()) flip.push_back(!net.node(d).init);
    for (int lane = 0; lane < kLanes; ++lane) {
      std::vector<std::vector<bool>> declared =
          scalar_run(net, words, lane, {});
      std::vector<std::vector<bool>> adversarial =
          scalar_run(net, words, lane, flip);
      for (int f = 0; f < kFrames; ++f) {
        if (((packets[static_cast<std::size_t>(f)].known >> lane) & 1) == 0) {
          continue;  // X lane: no claim to audit
        }
        bool val =
            ((packets[static_cast<std::size_t>(f)].val >> lane) & 1) != 0;
        EXPECT_EQ(val, declared[static_cast<std::size_t>(f)][0])
            << "net " << n << " lane " << lane << " frame " << f;
        EXPECT_EQ(val, adversarial[static_cast<std::size_t>(f)][0])
            << "net " << n << " lane " << lane << " frame " << f
            << " (known bit depends on flop init)";
      }
    }
  }
}

// A refutation is not a claim, it is a witness: the returned stimulus must
// replay to a real mismatch on the scalar simulator — again from both the
// declared and an adversarial flop init.
TEST(BitSim, CounterexampleReplaysToRealMismatch) {
  const std::uint64_t base = tl::stimulus_seed();
  int refuted = 0;
  for (int n = 0; n < 40; ++n) {
    std::uint64_t s = base + 1000 + static_cast<std::uint64_t>(n);
    c::GateNetlist a = tl::random_netlist_multi(s, 5, 80, 3, 4);
    c::GateNetlist b =
        tl::mutate_cone(a, static_cast<std::size_t>(n) % 4,
                        tl::ConeEdit::Different);
    sim::SimOptions opts;
    opts.seed = base;
    sim::RefuteResult r = sim::refute(a, b, opts);
    if (!r.refuted) continue;  // X-dominated output: legitimately unseen
    ++refuted;
    ASSERT_EQ(r.cex.frames.size(),
              static_cast<std::size_t>(r.cex.frame) + 1);
    std::vector<bool> flip_a, flip_b;
    for (c::LitId d : a.dffs()) flip_a.push_back(!a.node(d).init);
    for (c::LitId d : b.dffs()) flip_b.push_back(!b.node(d).init);
    for (int adversarial = 0; adversarial < 2; ++adversarial) {
      c::GateSimulator sa(a), sb(b);
      if (adversarial) {
        sa.set_dff_state(flip_a);
        sb.set_dff_state(flip_b);
      }
      std::vector<bool> oa, ob;
      for (const std::vector<bool>& frame : r.cex.frames) {
        oa = sa.step(frame);
        ob = sb.step(frame);
      }
      EXPECT_NE(oa[r.cex.output_index], ob[r.cex.output_index])
          << "seed " << s << (adversarial ? " adversarial" : " declared")
          << " init: counterexample does not replay";
    }
    EXPECT_EQ(r.cex.output,
              a.outputs()[r.cex.output_index].first);
  }
  // The corpus is random, but a pre-filter that refutes almost nothing is
  // broken; well over half of single-inverter edits are observable.
  EXPECT_GE(refuted, 20);
}

// Function-preserving edits must NEVER be refuted — neither the foldable
// double inverter nor the opaque absorption redundancy.  The opaque edit
// must additionally survive the whole engine-free fast path (identity,
// miter fold, sim), because it is the edit class the engines exist for.
TEST(BitSim, EquivalentEditsNotRefutedAndOpaqueReachesEngine) {
  const std::uint64_t base = tl::stimulus_seed();
  for (int n = 0; n < 20; ++n) {
    std::uint64_t s = base + 2000 + static_cast<std::uint64_t>(n);
    c::GateNetlist a = tl::random_netlist_multi(s, 5, 60, 3, 4);
    for (tl::ConeEdit e :
         {tl::ConeEdit::Equivalent, tl::ConeEdit::EquivalentOpaque}) {
      std::size_t idx = static_cast<std::size_t>(n) % 4;
      c::GateNetlist b = tl::mutate_cone(a, idx, e);
      sim::SimOptions opts;
      opts.seed = base + static_cast<std::uint64_t>(n);
      EXPECT_FALSE(sim::refute(a, b, opts).refuted) << "seed " << s;
      if (e != tl::ConeEdit::EquivalentOpaque) continue;
      std::vector<v::ConePair> pairs = v::pair_cones(a, b);
      v::ConeJob job;
      job.pair = &pairs[idx];
      job.sim.seed = opts.seed;
      std::uint64_t spent = 0;
      EXPECT_FALSE(v::check_cone_fast(job, &spent).has_value())
          << "seed " << s << ": opaque edit settled without an engine";
      EXPECT_GT(spent, 0u) << "pass-through must report stimulus spent";
    }
  }
}

// The shared-pool batched kernel must be verdict-identical to the per-job
// engines, across every engine and both verdict polarities.
TEST(BatchBdd, VerdictsIdenticalToPerJobEngines) {
  const std::uint64_t base = tl::stimulus_seed();
  std::vector<c::GateNetlist> keep;  // stable addresses for CheckJob
  keep.reserve(64);
  std::vector<v::CheckJob> jobs;
  for (int n = 0; n < 6; ++n) {
    std::uint64_t s = base + 3000 + static_cast<std::uint64_t>(n);
    c::GateNetlist a = tl::random_netlist(s, 4, 40, 2);
    tl::ConeEdit e = n % 3 == 0   ? tl::ConeEdit::Different
                     : n % 3 == 1 ? tl::ConeEdit::Equivalent
                                  : tl::ConeEdit::EquivalentOpaque;
    c::GateNetlist b = tl::mutate_cone(a, 0, e);
    keep.push_back(std::move(a));
    keep.push_back(std::move(b));
    for (v::Engine eng : {v::Engine::Eijk, v::Engine::EijkPlus,
                          v::Engine::Smv, v::Engine::SisFsm}) {
      v::CheckJob job;
      job.a = &keep[keep.size() - 2];
      job.b = &keep[keep.size() - 1];
      job.engine = eng;
      job.opts.timeout_sec = 30.0;
      jobs.push_back(job);
    }
  }
  std::vector<v::VerifyResult> batched = v::check_batch(jobs);
  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    v::VerifyResult solo = v::run_check(jobs[i]);
    ASSERT_TRUE(solo.completed) << "job " << i;
    EXPECT_TRUE(batched[i].completed) << "job " << i;
    EXPECT_EQ(batched[i].equivalent, solo.equivalent)
        << "job " << i << ": batched kernel disagrees with "
        << v::engine_name(jobs[i].engine);
  }
}

// End-to-end cone path: batched pipeline == per-cone pipeline on a
// multi-cone design with one edit of each class.
TEST(BatchBdd, ConePipelineMatchesPerConeVerdicts) {
  const std::uint64_t base = tl::stimulus_seed();
  c::GateNetlist a = tl::random_netlist_multi(base + 4000, 5, 120, 3, 6);
  c::GateNetlist b = tl::mutate_cone(a, 1, tl::ConeEdit::Equivalent);
  b = tl::mutate_cone(b, 3, tl::ConeEdit::EquivalentOpaque);
  b = tl::mutate_cone(b, 5, tl::ConeEdit::Different);
  std::vector<v::ConePair> pairs = v::pair_cones(a, b);
  std::vector<v::ConeJob> jobs(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    jobs[i].pair = &pairs[i];
    jobs[i].sim.seed = base;
  }
  std::vector<v::VerifyResult> batched = v::check_cones_batched(jobs);
  ASSERT_EQ(batched.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    v::VerifyResult solo = v::check_cone(jobs[i]);
    ASSERT_TRUE(solo.completed) << "cone " << i;
    EXPECT_TRUE(batched[i].completed) << "cone " << i;
    EXPECT_EQ(batched[i].equivalent, solo.equivalent) << "cone " << i;
    EXPECT_EQ(batched[i].sim_refuted, solo.sim_refuted) << "cone " << i;
  }
  // The one Different cone is NONEQUIV however it was settled; under the
  // default seed the sim tier catches it (pinned so the tier is known to
  // fire in CI), and a sim refutation must name the cone's output.
  EXPECT_FALSE(batched[5].equivalent);
  if (base == 0x5eedf17eULL) {
    EXPECT_TRUE(batched[5].sim_refuted);
  }
  if (batched[5].sim_refuted) {
    EXPECT_EQ(batched[5].counterexample, a.outputs()[5].first);
  }
  for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{3}, std::size_t{4}}) {
    EXPECT_TRUE(batched[i].equivalent) << "cone " << i;
  }
}
