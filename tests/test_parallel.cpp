// Concurrency tests for PR 3: the sharded interner, the thread pool, the
// concurrent memo tables and the parallel verification pipeline.  These are
// also the designated ThreadSanitizer workload (CI runs them under
// -DEDA_TSAN=ON), so they favour many small racy windows over long runs.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_gen/fig2.h"
#include "hash/compile.h"
#include "hash/eval.h"
#include "hash/retime_step.h"
#include "kernel/memo.h"
#include "kernel/parallel.h"
#include "kernel/terms.h"
#include "kernel/thm.h"
#include "logic/bool_thms.h"
#include "testlib/gen.h"
#include "theories/num_theory.h"
#include "theories/numeral.h"
#include "verify/retime_match.h"

namespace k = eda::kernel;
using eda::testlib::build_family;
using k::Term;
using k::Type;

namespace {

constexpr int kThreads = 8;

}  // namespace

// --- Sharded interner ------------------------------------------------------

TEST(ConcurrentIntern, PointerIdentityAcrossThreads) {
  // N threads race to build the same overlapping term family; hash-consing
  // must give all of them the identical node for each structure.
  std::vector<std::vector<const void*>> ids(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&ids, t] { ids[static_cast<std::size_t>(t)] = build_family(200); });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    ASSERT_EQ(ids[0].size(), ids[static_cast<std::size_t>(t)].size());
    for (std::size_t i = 0; i < ids[0].size(); ++i) {
      EXPECT_EQ(ids[0][i], ids[static_cast<std::size_t>(t)][i])
          << "thread " << t << " interned a different node at step " << i;
    }
  }
}

TEST(ConcurrentIntern, StructuralEqualityIsPointerIdentity) {
  // Build the same deep structure on every thread through different
  // construction orders and check equality via both operator== and
  // identical().
  std::vector<Term> results;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Term a = Term::var("p", k::bool_ty());
      Term acc = a;
      // Odd threads build left-to-right, even threads build the subterms
      // first — same resulting structure.
      if (t % 2 == 0) {
        Term sub = k::mk_eq(a, a);
        acc = k::mk_eq(sub, sub);
      } else {
        acc = k::mk_eq(k::mk_eq(a, a), k::mk_eq(a, a));
      }
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(acc);
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_TRUE(results[0].identical(results[i]));
    EXPECT_TRUE(results[0] == results[i]);
  }
}

TEST(ConcurrentIntern, ChurnStress) {
  // Heavy mixed workload: construction, cached free-vars, substitution,
  // alpha comparison and type interning from all threads at once, with
  // per-thread disjoint names mixed in to force concurrent *inserts* (not
  // just hits) in every shard.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 120; ++i) {
        Term x = Term::var("x", k::bool_ty());
        Term own = Term::var("t" + std::to_string(t) + "_" +
                                 std::to_string(i),
                             k::bool_ty());
        Term body = k::mk_eq(k::mk_eq(x, own), x);
        Term lam = Term::abs(x, body);
        // Free vars of \x. (x = own) = x are {own}.
        const std::set<Term>& fv = k::free_vars_set(lam);
        if (fv.size() != 1 || fv.count(own) == 0) {
          failures.fetch_add(1);
        }
        // Substitute through the shared spine.
        k::TermSubst theta;
        theta.emplace(own, x);
        Term sub = k::vsubst(theta, body);
        if (!(sub == k::mk_eq(k::mk_eq(x, x), x))) failures.fetch_add(1);
        // Alpha-equivalent but differently-spelt binder.
        Term y = Term::var("y_" + std::to_string(i % 5), k::bool_ty());
        Term lam2 = Term::abs(y, k::mk_eq(k::mk_eq(y, own), y));
        if (!(lam == lam2)) failures.fetch_add(1);
        // Theorem construction bumps the (atomic) global counter.
        k::Thm::refl(body);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentIntern, StatsAreSane) {
  auto before = Term::intern_stats();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] { build_family(50); });
  }
  for (std::thread& th : threads) th.join();
  auto after = Term::intern_stats();
  EXPECT_GE(after.live_nodes, before.live_nodes);
  EXPECT_GT(after.hits, before.hits);
  EXPECT_GE(after.arena_bytes, before.arena_bytes);
}

// --- Concurrent memo tables ------------------------------------------------

TEST(ConcurrentMemo, FirstInsertWinsAndIsShared) {
  k::ConcurrentMemo<int, int> memo;
  std::atomic<int> computed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int key = 0; key < 64; ++key) {
        int got = memo.get_or_compute(key, [&] {
          computed.fetch_add(1);
          return key * 10;
        });
        EXPECT_EQ(got, key * 10);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(memo.size(), 64u);
  // Races may compute a key a few extra times, but never unboundedly.
  EXPECT_GE(computed.load(), 64);
  EXPECT_LE(computed.load(), 64 * kThreads);
}

TEST(ConcurrentMemo, GroundEvalAcrossThreads) {
  eda::hash::init_hash_constants();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t i = 0; i < 24; ++i) {
        Term sum = eda::thy::mk_arith("+", eda::thy::mk_numeral(i),
                                      eda::thy::mk_numeral(i + 1));
        k::Thm th = eda::hash::ground_eval(sum);
        auto v = eda::thy::dest_numeral(k::eq_rhs(th.concl()));
        if (!v || *v != 2 * i + 1) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ConcurrentInit, RacingTheoryInitIsSafe) {
  // All threads hit the lazy theory initialisation paths at once; the
  // InitOnce guards must serialise the bodies without deadlocking on the
  // re-entrant init call graph.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      eda::logic::init_bool();
      eda::thy::init_numeral();
      eda::hash::init_hash_constants();
      // Touch each theory after init.
      (void)eda::thy::mk_numeral(42);
      (void)eda::logic::truth_tm();
    });
  }
  for (std::thread& th : threads) th.join();
  SUCCEED();
}

// --- Thread pool -----------------------------------------------------------

TEST(ThreadPool, ParallelForCoversAllIndices) {
  k::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  k::parallel_for(
      hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); }, pool);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  k::ThreadPool pool(4);
  EXPECT_THROW(
      k::parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          pool),
      std::runtime_error);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  k::ThreadPool pool(2);
  std::atomic<int> total{0};
  k::parallel_for(
      8,
      [&](std::size_t) {
        k::parallel_for(
            8, [&](std::size_t) { total.fetch_add(1); }, pool);
      },
      pool);
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ParallelMapKeepsOrder) {
  k::ThreadPool pool(4);
  std::vector<int> xs(257);
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<int>(i);
  std::vector<int> ys =
      k::parallel_map(xs, [](const int& x) { return x * 2; }, pool);
  ASSERT_EQ(ys.size(), xs.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    ASSERT_EQ(ys[i], static_cast<int>(i) * 2);
  }
}

// --- Parallel verification pipeline ----------------------------------------

TEST(ParallelVerify, BatchMatchesSerial) {
  // Retime a family of circuits, then verify all obligations in parallel
  // and compare with the serial verdicts.  This is the end-to-end path the
  // table drivers use, including concurrent kernel inference inside
  // formal_retime.
  std::vector<eda::bench_gen::Fig2> circuits;
  std::vector<eda::circuit::Rtl> retimed;
  for (int n = 2; n <= 5; ++n) {
    circuits.push_back(eda::bench_gen::make_fig2(n));
  }
  // Run the HASH retiming steps concurrently (kernel inference under
  // contention), keeping results in order.
  retimed.resize(circuits.size(), eda::circuit::Rtl{});
  k::parallel_for(circuits.size(), [&](std::size_t i) {
    retimed[i] =
        eda::hash::formal_retime(circuits[i].rtl, circuits[i].good_cut)
            .retimed;
  });
  std::vector<eda::verify::RetimeJob> jobs;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    jobs.push_back({&circuits[i].rtl, &retimed[i], 1});
  }
  std::vector<eda::verify::RetimeMatchResult> par =
      eda::verify::verify_retimings(jobs);
  ASSERT_EQ(par.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    eda::verify::RetimeMatchResult ser =
        eda::verify::verify_retiming(*jobs[i].a, *jobs[i].b, jobs[i].seed);
    EXPECT_EQ(par[i].equivalent, ser.equivalent) << "obligation " << i;
    EXPECT_TRUE(par[i].equivalent) << par[i].reason;
    EXPECT_EQ(par[i].lag, ser.lag);
  }
}
