// Tests for the FSM substrate: the explicit Mealy machine, KISS2 I/O,
// Moore partition-refinement minimisation, state encodings, and synthesis
// to the word-level netlist consumed by the formal steps.

#include <gtest/gtest.h>

#include <random>

#include "fsm/encode.h"
#include "fsm/fsm.h"
#include "fsm/kiss2.h"
#include "fsm/minimize.h"
#include "hash/redundancy.h"

namespace c = eda::circuit;
namespace f = eda::fsm;
using f::Encoding;
using f::Fsm;
using f::StateId;

namespace {

/// A 1-in/1-out sequence detector for "11" with a redundant duplicate of
/// one state and an unreachable state — the canonical minimisation fixture.
Fsm make_detector_with_redundancy() {
  Fsm fsm(1, 1);
  StateId s0 = fsm.add_state("idle");
  StateId s1 = fsm.add_state("one");
  StateId s1b = fsm.add_state("one_dup");   // behaves exactly like "one"
  StateId dead = fsm.add_state("nowhere");  // unreachable
  fsm.add_transition("0", s0, s0, "0");
  fsm.add_transition("1", s0, s1, "0");
  fsm.add_transition("0", s1, s0, "0");
  fsm.add_transition("1", s1, s1b, "1");
  fsm.add_transition("0", s1b, s0, "0");
  fsm.add_transition("1", s1b, s1b, "1");
  fsm.add_transition("0", dead, s0, "0");
  fsm.add_transition("1", dead, s1, "0");
  fsm.set_reset_state(s0);
  return fsm;
}

/// Random complete deterministic machine: one row per (state, input).
Fsm make_random_fsm(int states, int ibits, int obits, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Fsm fsm(ibits, obits);
  for (int s = 0; s < states; ++s) fsm.add_state("s" + std::to_string(s));
  const std::uint64_t space = 1ULL << ibits;
  for (int s = 0; s < states; ++s) {
    for (std::uint64_t in = 0; in < space; ++in) {
      std::string pat;
      for (int b = ibits - 1; b >= 0; --b) {
        pat.push_back(((in >> b) & 1) ? '1' : '0');
      }
      std::string outp;
      for (int b = 0; b < obits; ++b) {
        outp.push_back((rng() & 1) ? '1' : '0');
      }
      fsm.add_transition(pat, s,
                         static_cast<StateId>(rng() % states), outp);
    }
  }
  fsm.set_reset_state(0);
  return fsm;
}

}  // namespace

TEST(Fsm, PatternMatchingMsbFirst) {
  EXPECT_TRUE(Fsm::matches("1-0", 0b100));
  EXPECT_TRUE(Fsm::matches("1-0", 0b110));
  EXPECT_FALSE(Fsm::matches("1-0", 0b101));
  EXPECT_FALSE(Fsm::matches("1-0", 0b000));
  EXPECT_TRUE(Fsm::matches("---", 0b111));
}

TEST(Fsm, DeterminismValidation) {
  Fsm fsm(2, 1);
  StateId s = fsm.add_state("a");
  fsm.add_transition("1-", s, s, "1");
  fsm.add_transition("-1", s, s, "0");  // overlaps on input 11
  EXPECT_THROW(fsm.validate_deterministic(), f::FsmError);

  Fsm gap(1, 1);
  StateId g = gap.add_state("a");
  gap.add_transition("1", g, g, "1");  // no row for input 0
  EXPECT_THROW(gap.validate_deterministic(), f::FsmError);
}

TEST(Fsm, SimulateDetector) {
  Fsm fsm = make_detector_with_redundancy();
  fsm.validate_deterministic();
  auto outs = fsm.simulate({1, 1, 1, 0, 1, 1});
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{0, 1, 1, 0, 0, 1}));
}

TEST(Minimize, CollapsesDuplicateAndDropsUnreachable) {
  Fsm fsm = make_detector_with_redundancy();
  f::MinimizeResult res = f::minimize(fsm);
  EXPECT_EQ(res.fsm.state_count(), 2);  // idle + one
  EXPECT_TRUE(f::fsm_equivalent(fsm, res.fsm));
  // "one" and "one_dup" fall into the same class; "nowhere" is gone.
  EXPECT_EQ(res.state_class[1], res.state_class[2]);
  EXPECT_EQ(res.state_class[3], -1);
}

TEST(Minimize, FixpointOnAlreadyMinimal) {
  Fsm fsm = make_detector_with_redundancy();
  f::MinimizeResult once = f::minimize(fsm);
  f::MinimizeResult twice = f::minimize(once.fsm);
  EXPECT_EQ(once.fsm.state_count(), twice.fsm.state_count());
}

TEST(Minimize, RandomMachinesStayEquivalent) {
  for (std::uint32_t seed = 1; seed <= 12; ++seed) {
    Fsm fsm = make_random_fsm(8, 2, 2, seed);
    f::MinimizeResult res = f::minimize(fsm);
    EXPECT_LE(res.fsm.state_count(), fsm.state_count());
    EXPECT_TRUE(f::fsm_equivalent(fsm, res.fsm)) << "seed " << seed;
  }
}

TEST(Kiss2, RoundTrip) {
  Fsm fsm = make_detector_with_redundancy();
  std::string text = f::write_kiss2(fsm);
  Fsm back = f::parse_kiss2_string(text);
  EXPECT_EQ(back.state_count(), fsm.state_count());
  EXPECT_EQ(back.input_bits(), fsm.input_bits());
  EXPECT_TRUE(f::fsm_equivalent(fsm, back));
}

TEST(Kiss2, ParsesCommentsAndReset) {
  const char* text =
      "# a tiny toggler\n"
      ".i 1\n.o 1\n.p 2\n.s 2\n.r off\n"
      "- off on  1\n"
      "- on  off 0\n"
      ".e\n";
  Fsm fsm = f::parse_kiss2_string(text);
  EXPECT_EQ(fsm.state_count(), 2);
  EXPECT_EQ(fsm.state_name(fsm.reset_state()), "off");
  auto outs = fsm.simulate({0, 0, 0});
  EXPECT_EQ(outs, (std::vector<std::uint64_t>{1, 0, 1}));
}

TEST(Kiss2, RejectsMalformed) {
  EXPECT_THROW(f::parse_kiss2_string(".i 1\n"), f::FsmError);
  EXPECT_THROW(f::parse_kiss2_string(".i 1\n.o 1\n.q bogus\n"),
               f::FsmError);
  EXPECT_THROW(f::parse_kiss2_string(".i 1\n.o 1\n0 a\n"), f::FsmError);
}

struct EncodingCase {
  Encoding enc;
};

class SynthesisTest : public ::testing::TestWithParam<Encoding> {};

TEST_P(SynthesisTest, NetlistMatchesMachine) {
  Fsm fsm = f::minimize(make_detector_with_redundancy()).fsm;
  c::Rtl rtl = f::synthesize(fsm, GetParam());
  EXPECT_TRUE(f::netlist_matches_fsm(rtl, fsm, 300, 7));
}

TEST_P(SynthesisTest, RandomMachinesMatch) {
  for (std::uint32_t seed = 1; seed <= 6; ++seed) {
    Fsm fsm = make_random_fsm(5, 2, 3, seed);
    c::Rtl rtl = f::synthesize(fsm, GetParam());
    EXPECT_TRUE(f::netlist_matches_fsm(rtl, fsm, 200, seed))
        << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, SynthesisTest,
                         ::testing::Values(Encoding::Binary, Encoding::Gray,
                                           Encoding::OneHot),
                         [](const auto& info) {
                           return std::string(f::encoding_name(info.param)) ==
                                          "one-hot"
                                      ? "OneHot"
                                      : f::encoding_name(info.param);
                         });

TEST(Synthesis, StateCodesAreDistinct) {
  Fsm fsm = make_random_fsm(7, 2, 1, 99);
  for (Encoding e :
       {Encoding::Binary, Encoding::Gray, Encoding::OneHot}) {
    auto codes = f::state_codes(fsm, e);
    std::set<std::uint64_t> uniq(codes.begin(), codes.end());
    EXPECT_EQ(uniq.size(), codes.size()) << f::encoding_name(e);
  }
}

TEST(Synthesis, GrayNeighbouringStatesDifferInOneBit) {
  Fsm fsm = make_random_fsm(8, 1, 1, 3);
  auto codes = f::state_codes(fsm, Encoding::Gray);
  for (std::size_t k = 1; k < codes.size(); ++k) {
    EXPECT_EQ(__builtin_popcountll(codes[k - 1] ^ codes[k]), 1);
  }
}

TEST(Integration, SynthesizedFsmSurvivesFormalSteps) {
  // Synthesise, then run the formal dead-register remover: the synthesised
  // netlist has exactly one (live) register, so the remover must refuse.
  Fsm fsm = f::minimize(make_detector_with_redundancy()).fsm;
  c::Rtl rtl = f::synthesize(fsm, Encoding::Binary);
  EXPECT_THROW(eda::hash::formal_remove_dead_registers(rtl),
               eda::hash::RedundancyError);
}
